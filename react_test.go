package react_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"react"
)

// TestPublicAPIEndToEnd exercises the documented quick-start path.
func TestPublicAPIEndToEnd(t *testing.T) {
	buf := react.NewREACT(react.DefaultConfig())
	dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
	res, err := react.Run(react.SimConfig{
		Frontend: react.NewFrontend(react.RFCart(1), nil),
		Buffer:   buf,
		Device:   dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffer != "REACT" || res.Workload != "DE" {
		t.Errorf("labels %q/%q", res.Buffer, res.Workload)
	}
	if res.Metrics["blocks"] <= 0 {
		t.Error("no work done")
	}
	if e := res.EnergyBalanceError(); e > 1e-9 {
		t.Errorf("energy balance error %g", e)
	}
}

func TestAllBuffersThroughFacade(t *testing.T) {
	buffers := []react.Buffer{
		react.NewStatic(react.StaticConfig{C: 770e-6, VMax: 3.6}),
		react.NewMorphy(react.DefaultMorphyConfig()),
		react.NewREACT(react.DefaultConfig()),
	}
	for _, buf := range buffers {
		prof := react.DefaultProfile()
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFObstructed(1), nil),
			Buffer:   buf,
			Device:   react.NewDevice(prof, react.NewSenseCompute(prof.SleepI)),
		})
		if err != nil {
			t.Fatalf("%s: %v", buf.Name(), err)
		}
		if res.Duration <= 0 {
			t.Errorf("%s: no simulated time", buf.Name())
		}
	}
}

func TestEquationHelpers(t *testing.T) {
	// Equation 1 at N=2, C_unit=5 mF, C_last=770 µF, V_low=1.9 V.
	v := react.VoltageAfterReclaim(2, 5e-3, 770e-6, 1.9)
	want := (2*1.9*2.5e-3 + 1.9*770e-6) / (770e-6 + 2.5e-3)
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("Equation 1 = %g, want %g", v, want)
	}
	limit := react.MaxUnitCapacitance(2, 770e-6, 1.9, 3.5)
	if limit <= 5e-3 {
		t.Errorf("Table 1 bank 5 must satisfy Equation 2, limit %g", limit)
	}
}

func TestLevelForThroughFacade(t *testing.T) {
	buf := react.NewREACT(react.DefaultConfig())
	lvl, ok := react.LevelFor(buf, 5e-3)
	if !ok || lvl == 0 {
		t.Errorf("LevelFor(5 mJ) = %d,%v", lvl, ok)
	}
}

func TestTraceHelpers(t *testing.T) {
	traces := react.EvaluationTraces(1)
	if len(traces) != 5 {
		t.Fatalf("want 5 evaluation traces, got %d", len(traces))
	}
	if react.PedestrianSolar(1).Duration() != 3500 {
		t.Error("pedestrian trace duration")
	}
	if react.NightTrace(1).Stats().Mean > 1e-3 {
		t.Error("night trace too strong")
	}
	var b strings.Builder
	if err := traces[0].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := react.ReadTraceCSV("rt", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Power) != len(traces[0].Power) {
		t.Error("CSV round trip lost samples")
	}
}

func TestConverterConstructors(t *testing.T) {
	for _, c := range []react.Converter{
		react.IdentityConverter(), react.RFRectifierConverter(), react.SolarBoostConverter(),
	} {
		if c.Name() == "" {
			t.Error("converter must be named")
		}
		if out := c.Deliver(10e-3, 2.5); out < 0 || out > 10e-3 {
			t.Errorf("%s: Deliver out of range: %g", c.Name(), out)
		}
	}
}

func TestBankStateConstants(t *testing.T) {
	if react.Disconnected.String() != "disconnected" ||
		react.Series.String() != "series" ||
		react.Parallel.String() != "parallel" {
		t.Error("bank state names")
	}
}

// TestREACTBufferIntrospection checks the adaptive buffer's exported
// inspection surface.
func TestREACTBufferIntrospection(t *testing.T) {
	buf := react.NewREACT(react.DefaultConfig())
	if got := buf.MaxLevel(); got != 10 {
		t.Errorf("max level %d, want 10 (5 banks × 2 steps)", got)
	}
	if len(buf.Banks()) != 5 {
		t.Errorf("banks %d, want 5", len(buf.Banks()))
	}
	if buf.Config().MaxCapacitance() < 18e-3 {
		t.Error("capacitance range top")
	}
	if buf.Level() != 0 {
		t.Error("fresh buffer starts at level 0")
	}
}

// TestScenarioAPI exercises the scenario registry surface: listing,
// lookup, JSON parsing, and an end-to-end run of a fast catalogue entry.
func TestScenarioAPI(t *testing.T) {
	nonPaper := 0
	for _, s := range react.Scenarios() {
		if !s.Paper {
			nonPaper++
		}
	}
	if nonPaper < 8 {
		t.Fatalf("registry ships %d non-paper scenarios, want >= 8", nonPaper)
	}
	if _, ok := react.ScenarioByName("energy-attack"); !ok {
		t.Fatal("energy-attack must be registered")
	}
	if _, ok := react.ScenarioByName("paper-de-rf-cart"); !ok {
		t.Fatal("the paper grid must be registered")
	}

	run, err := react.RunScenario(context.Background(), "tiny-cap-degraded", react.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != len(run.Spec.Buffers) {
		t.Fatalf("got %d results for %d buffers", len(run.Results), len(run.Spec.Buffers))
	}
	if res, ok := run.Result("330 µF aged"); !ok || res.Buffer != "330 µF aged" {
		t.Errorf("custom static buffer missing from the run: %v %v", ok, res.Buffer)
	}

	spec, err := react.ParseScenario([]byte(`{
		"name": "adhoc-json",
		"trace": {"gen": "steady", "mean": 0.005, "duration": 30},
		"workload": {"bench": "DE"},
		"buffers": [{"preset": "770 µF"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec.Run(context.Background(), nil, react.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Results[0].Metrics["blocks"] == 0 {
		t.Error("JSON-built scenario did no work")
	}
	if _, err := react.ParseScenario([]byte(`{"name":"bad","trace":{"gen":"nope"},"workload":{"bench":"DE"},"buffers":[{"preset":"770 µF"}]}`)); err == nil {
		t.Error("unknown generator must fail validation")
	}
}

// TestServiceFacade boots an in-process reactd, dials it through the
// exported client surface, and exercises Run, RunAsync and the
// content-addressed cache end to end.
func TestServiceFacade(t *testing.T) {
	srv, err := react.NewService(react.ServiceConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client, err := react.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	spec := json.RawMessage(`{
		"name": "facade-smoke",
		"trace": {"gen": "steady", "mean": 0.01, "duration": 30},
		"workload": {"bench": "DE"},
		"buffers": [{"preset": "770 µF"}, {"preset": "REACT"}]
	}`)
	st, err := client.Run(ctx, react.RunRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := st.Result("REACT")
	if !ok || res.Metrics["blocks"] <= 0 {
		t.Fatalf("no REACT result in %+v", st.Cells)
	}

	// The identical submission is served from the cache without simulating.
	rr, err := client.RunAsync(ctx, react.RunRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Submitted.Cached {
		t.Error("identical resubmission must be a cache hit")
	}
	again, err := rr.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2, _ := again.Result("REACT"); r2.Metrics["blocks"] != res.Metrics["blocks"] {
		t.Error("cached result diverged from the original")
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheMisses != 1 || m.SimsCompleted != 2 {
		t.Errorf("misses %d sims %d, want 1 simulation of 2 cells total", m.CacheMisses, m.SimsCompleted)
	}

	infos, err := client.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(react.Scenarios()) {
		t.Errorf("service lists %d scenarios, registry has %d", len(infos), len(react.Scenarios()))
	}
}

func TestExploreFacade(t *testing.T) {
	space, err := react.ParseExploreSpace([]byte(`{
		"spec": {
			"name": "facade-explore",
			"trace": {"gen": "steady", "mean": 0.01, "duration": 20},
			"workload": {"bench": "DE"},
			"buffers": [{"preset": "REACT"}]
		},
		"static": {"from": 500e-6, "to": 5e-3, "points": 3},
		"presets": ["REACT"],
		"pareto": [{"x": "c", "y": "latency"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := react.Explore(ctx, space, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 || len(res.Frontiers) != 1 {
		t.Fatalf("exploration wrong: evaluated %d, %d frontiers", res.Evaluated, len(res.Frontiers))
	}

	// The async handle delivers the same result.
	job := react.ExploreAsync(ctx, space, 2)
	async, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(async, res) {
		t.Error("async exploration diverged from the synchronous one")
	}

	// And the remote path serves the identical result from a daemon.
	srv, err := react.NewService(react.ServiceConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client, err := react.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Explore(ctx, space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Result, res) {
		t.Error("remote exploration diverged from the local one")
	}
}
