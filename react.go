// Package react is a simulation library for energy-adaptive buffering in
// batteryless, energy-harvesting systems. It reproduces REACT (Williams &
// Hicks, ASPLOS 2024): a buffer built from a small last-level capacitor
// plus isolated, reconfigurable capacitor banks that expand to capture
// surplus power and reconfigure into series to reclaim charge under
// deficit — combining the reactivity of small static buffers with the
// capacity of large ones.
//
// The library bundles everything needed to study such systems end to end:
//
//   - circuit-level capacitor physics with exact charge-sharing losses
//   - the REACT buffer and controller, static baselines, and the Morphy
//     unified switched-capacitor baseline
//   - synthetic RF/solar harvesting traces matched to the paper's Table 3,
//     plus CSV import for real recordings
//   - an MSP430-class device model with the paper's four benchmarks (data
//     encryption, sense-and-compute, radio transmit, packet forwarding)
//   - a discrete-time simulation engine with full energy-conservation
//     accounting
//
// # Quick start
//
//	buf := react.NewREACT(react.DefaultConfig())
//	dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
//	res, err := react.Run(react.SimConfig{
//		Frontend: react.NewFrontend(react.RFCart(1), nil),
//		Buffer:   buf,
//		Device:   dev,
//	})
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the paper-reproduction harness.
package react

import (
	"context"
	"fmt"
	"io"

	"react/internal/buffer"
	"react/internal/capybara"
	"react/internal/ckpt"
	"react/internal/core"
	"react/internal/explore"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/morphy"
	"react/internal/radio"
	"react/internal/runner"
	"react/internal/scenario"
	"react/internal/service"
	"react/internal/sim"
	"react/internal/timekeeper"
	"react/internal/trace"
	"react/internal/workload"
)

// Core buffer types.
type (
	// Buffer is the common interface over every energy-buffer design.
	Buffer = buffer.Buffer
	// Leveler is the capacitance-level interface adaptive buffers expose
	// for software-directed longevity guarantees.
	Leveler = buffer.Leveler
	// Ledger is the energy accounting every buffer maintains.
	Ledger = buffer.Ledger
	// StaticConfig describes a fixed-size buffer capacitor.
	StaticConfig = buffer.StaticConfig
	// DewdropConfig describes an adaptive-enable-voltage buffer (§2.4).
	DewdropConfig = buffer.DewdropConfig
	// DewdropBuffer is the Dewdrop baseline implementation.
	DewdropBuffer = buffer.Dewdrop
	// Config describes a REACT buffer (last-level buffer, banks,
	// thresholds, overheads).
	Config = core.Config
	// BankSpec describes one reconfigurable REACT bank.
	BankSpec = core.BankSpec
	// BankState is a bank's switch state (disconnected/series/parallel).
	BankState = core.BankState
	// REACTBuffer is the adaptive buffer implementation.
	REACTBuffer = core.Buffer
	// MorphyConfig describes the Morphy baseline array.
	MorphyConfig = morphy.Config
	// MorphyBuffer is the Morphy baseline implementation.
	MorphyBuffer = morphy.Buffer
	// CapybaraConfig describes the Capybara-style multiplexed static
	// array baseline (§2.3 related work).
	CapybaraConfig = capybara.Config
	// CapybaraBuffer is the Capybara-style baseline implementation.
	CapybaraBuffer = capybara.Buffer
	// Timekeeper is a remanence-based outage clock (citation [8]).
	Timekeeper = timekeeper.Clock
)

// Bank switch states.
const (
	Disconnected = core.Disconnected
	Series       = core.Series
	Parallel     = core.Parallel
)

// Trace and frontend types.
type (
	// Trace is a harvested-power time series.
	Trace = trace.Trace
	// TraceStats summarizes a trace (Table 3 columns).
	TraceStats = trace.Stats
	// Converter models a harvester power-conversion stage.
	Converter = harvest.Converter
	// Frontend replays a trace through a converter into a buffer.
	Frontend = harvest.Frontend
)

// Device and simulation types.
type (
	// Profile is the device's electrical envelope.
	Profile = mcu.Profile
	// Device is the computational backend.
	Device = mcu.Device
	// Workload is a benchmark program running on the device.
	Workload = mcu.Workload
	// Env is the execution environment a workload sees each step.
	Env = mcu.Env
	// SimConfig configures one simulation run.
	SimConfig = sim.Config
	// Result is a completed run's outcome.
	Result = sim.Result
	// Sample is one recorded voltage/state point.
	Sample = sim.Sample
)

// NewREACT builds a REACT buffer from cfg.
func NewREACT(cfg Config) *REACTBuffer { return core.New(cfg) }

// DefaultConfig returns the paper's Table 1 REACT implementation
// (770 µF last-level buffer, five banks, 770 µF–18.03 mF).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewStatic builds a fixed-size buffer.
func NewStatic(cfg StaticConfig) Buffer { return buffer.NewStatic(cfg) }

// NewDewdrop builds a Dewdrop-style buffer (§2.4 related work): a static
// capacitor whose enable voltage adapts to the pending task's energy.
func NewDewdrop(cfg DewdropConfig) *DewdropBuffer { return buffer.NewDewdrop(cfg) }

// NewMorphy builds a Morphy unified switched-capacitor buffer.
func NewMorphy(cfg MorphyConfig) *MorphyBuffer { return morphy.New(cfg) }

// DefaultMorphyConfig returns the paper's Morphy baseline (8×2 mF, eleven
// configurations spanning 0.25–16 mF).
func DefaultMorphyConfig() MorphyConfig { return morphy.DefaultConfig() }

// NewCapybara builds a Capybara-style multiplexed static array.
func NewCapybara(cfg CapybaraConfig) *CapybaraBuffer { return capybara.New(cfg) }

// DefaultCapybaraConfig returns a four-bank array matching REACT's total
// capacitance.
func DefaultCapybaraConfig() CapybaraConfig { return capybara.DefaultConfig() }

// NewTimekeeper returns a remanence outage clock with a multi-minute range.
func NewTimekeeper() *Timekeeper { return timekeeper.DefaultClock() }

// LevelFor returns the smallest capacitance level whose guarantee covers
// the requested energy.
func LevelFor(l Leveler, energy float64) (int, bool) { return buffer.LevelFor(l, energy) }

// VoltageAfterReclaim computes the paper's Equation 1: the rail voltage
// after a parallel→series charge reclamation.
func VoltageAfterReclaim(n int, cUnit, cLast, vLow float64) float64 {
	return core.VoltageAfterReclaim(n, cUnit, cLast, vLow)
}

// MaxUnitCapacitance computes the paper's Equation 2: the largest bank
// capacitor for which reclamation spikes stay below vHigh.
func MaxUnitCapacitance(n int, cLast, vLow, vHigh float64) float64 {
	return core.MaxUnitCapacitance(n, cLast, vLow, vHigh)
}

// Synthetic evaluation traces (deterministic per seed; see Table 3).
func RFCart(seed uint64) *Trace          { return trace.RFCart(seed) }
func RFObstructed(seed uint64) *Trace    { return trace.RFObstructed(seed) }
func RFMobile(seed uint64) *Trace        { return trace.RFMobile(seed) }
func SolarCampus(seed uint64) *Trace     { return trace.SolarCampus(seed) }
func SolarCommute(seed uint64) *Trace    { return trace.SolarCommute(seed) }
func PedestrianSolar(seed uint64) *Trace { return trace.Fig1Pedestrian(seed) }
func NightTrace(seed uint64) *Trace      { return trace.Night(seed) }

// Stress traces beyond the paper's Table 3 (deterministic per seed), used
// by the scenario catalogue.
func EnergyAttackTrace(seed uint64) *Trace    { return trace.EnergyAttack(seed) }
func ColdStartTrace(seed uint64) *Trace       { return trace.ColdStart(seed) }
func NightHeavySolarTrace(seed uint64) *Trace { return trace.NightHeavySolar(seed) }
func Solar72hTrace(seed uint64) *Trace        { return trace.Solar72h(seed) }

// SteadyTrace returns a constant-power trace at 1 s spacing.
func SteadyTrace(name string, mean, duration float64) *Trace {
	return trace.Steady(name, mean, duration)
}

// TraceByName builds any registered synthetic trace generator by its
// canonical name ("rf-cart", "energy-attack", ...); TraceGenerators lists
// them.
func TraceByName(name string, seed uint64) (*Trace, error) { return trace.ByName(name, seed) }

// TraceGenerators returns the canonical generator names, sorted.
func TraceGenerators() []string { return trace.GeneratorNames() }

// EvaluationTraces returns the five Table 3 traces in order.
func EvaluationTraces(seed uint64) []*Trace { return trace.Evaluation(seed) }

// ReadTraceCSV parses a "time_s,power_w" trace recording.
func ReadTraceCSV(name string, r io.Reader) (*Trace, error) { return trace.ReadCSV(name, r) }

// NewFrontend pairs a trace with a converter (nil means the trace records
// delivered power directly, as the paper's replay frontend does).
func NewFrontend(tr *Trace, conv Converter) *Frontend { return harvest.NewFrontend(tr, conv) }

// Converter models.
func IdentityConverter() Converter    { return harvest.Identity{} }
func RFRectifierConverter() Converter { return harvest.DefaultRF() }
func SolarBoostConverter() Converter  { return harvest.DefaultSolar() }

// NewDevice couples a device profile with a workload.
func NewDevice(prof Profile, wl Workload) *Device { return mcu.NewDevice(prof, wl) }

// DefaultProfile returns the paper's testbed envelope (3.3 V enable, 1.8 V
// brownout, 1.5 mA active, 4 µA sleep).
func DefaultProfile() Profile { return mcu.DefaultProfile() }

// ProfileNames lists the registered device profiles ("default",
// "degraded", ...) accepted by scenario device specs.
func ProfileNames() []string { return mcu.ProfileNames() }

// Checkpoint schemes: pluggable backup/restore strategies a device can
// carry (set Device.Scheme, or the scenario spec's device checkpoint
// block).
type (
	// CheckpointConfig is the JSON-expressible scheme selection.
	CheckpointConfig = ckpt.Config
	// CheckpointScheme is a built trigger/cost policy.
	CheckpointScheme = ckpt.Scheme
)

// CheckpointSchemes lists the registered scheme names ("none", "odab",
// "periodic").
func CheckpointSchemes() []string { return ckpt.Names() }

// NewCheckpointScheme builds a scheme from its configuration; the "none"
// scheme (and the zero config) build the nil scheme — a flat-boot device.
func NewCheckpointScheme(cfg CheckpointConfig) (CheckpointScheme, error) { return ckpt.Build(cfg) }

// Benchmark workloads (§4.2).
func NewDataEncryption(activeI float64) Workload { return workload.NewDataEncryption(activeI) }
func NewSenseCompute(sleepI float64) Workload    { return workload.NewSenseCompute(sleepI) }
func NewRadioTransmit(sleepI float64) Workload   { return workload.NewRadioTransmit(sleepI) }

// Extended benchmark workloads (the scenario catalogue's ML and MIX).
func NewMLInference(sleepI float64) Workload { return workload.NewMLInference(sleepI) }
func NewMixedDuty(sleepI float64) Workload   { return workload.NewMixedDuty(sleepI) }

// NewSenseComputeWithTimekeeper builds the SC workload tracking its
// deadlines with a remanence timekeeper instead of a perfect clock; the
// workload reports the resulting scheduling error as "timing_err_mean".
func NewSenseComputeWithTimekeeper(sleepI float64, clock *Timekeeper) Workload {
	w := workload.NewSenseCompute(sleepI)
	w.Clock = clock
	return w
}

// NewPacketForward builds the PF workload over a Poisson arrival schedule.
func NewPacketForward(sleepI float64, seed uint64, duration, meanInterarrival float64) Workload {
	return workload.NewPacketForward(sleepI, radio.Arrivals(seed, duration, meanInterarrival))
}

// Run executes a simulation to completion.
func Run(cfg SimConfig) (Result, error) { return sim.Run(cfg) }

// Scenario-subsystem types: the declarative layer that names a trace, a
// converter, a device profile, a workload and a buffer set, and runs the
// combination through the experiment engine. The registry ships the
// paper's full evaluation grid plus the extended stress catalogue
// (energy attacks, cold starts, multi-day persistence, ML inference,
// packet storms); `reactsim -list` prints it.
type (
	// Scenario is a declarative simulation scenario (spec + knobs).
	Scenario = scenario.Spec
	// ScenarioTrace selects a scenario's harvested-power input.
	ScenarioTrace = scenario.TraceSpec
	// ScenarioDevice selects a scenario's device platform.
	ScenarioDevice = scenario.DeviceSpec
	// ScenarioWorkload selects a scenario's benchmark program.
	ScenarioWorkload = scenario.WorkloadSpec
	// ScenarioBuffer selects one energy buffer of a scenario.
	ScenarioBuffer = scenario.BufferSpec
	// ScenarioStatic describes a custom fixed-size buffer capacitor.
	ScenarioStatic = scenario.StaticSpec
	// ScenarioOptions tunes one scenario run (seed, workers, timestep).
	ScenarioOptions = scenario.RunOptions
	// ScenarioRun is a completed scenario: one Result per buffer.
	ScenarioRun = scenario.Run
)

// Scenarios returns every registered scenario (the extended catalogue
// first, then the paper grid), as independent clones.
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioByName returns a clone of the named registered scenario.
func ScenarioByName(name string) (*Scenario, bool) { return scenario.Lookup(name) }

// RegisterScenario validates s and adds it to the process-wide registry,
// making it runnable by name (including from `reactsim -scenario`).
func RegisterScenario(s *Scenario) error { return scenario.Register(s) }

// ParseScenario builds and validates a Scenario from its JSON encoding.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.ParseSpec(data) }

// RunScenario runs the named registered scenario: every buffer in its set,
// scheduled over the experiment engine's worker pool.
func RunScenario(ctx context.Context, name string, opt ScenarioOptions) (*ScenarioRun, error) {
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("react: unknown scenario %q (react.Scenarios lists the registry)", name)
	}
	return s.Run(ctx, nil, opt)
}

// Design-space exploration types: the subsystem that turns the scenario
// layer into an optimizer — a declarative Space (a base scenario crossed
// with capacitance lattices, preset subsets, timestep values, seed ranges
// and JSON-patchable knobs) explored by an exhaustive grid or an adaptive
// bisection toward a metric target, with Pareto frontiers extracted over
// chosen metric pairs. `reactsim -explore` and reactd's POST /explorations
// drive the same engine.
type (
	// ExploreSpace is a declarative design-space exploration.
	ExploreSpace = explore.Space
	// ExploreStaticAxis is a capacitance lattice of custom static buffers.
	ExploreStaticAxis = explore.StaticAxis
	// ExplorePatchAxis varies one JSON-expressible spec knob.
	ExplorePatchAxis = explore.PatchAxis
	// ExploreTarget is a metric goal ("latency ≤ 0.5", "blocks ≥ 100").
	ExploreTarget = explore.Target
	// ExploreMetricPair selects one Pareto frontier's two objectives.
	ExploreMetricPair = explore.MetricPair
	// ExploreResult is a completed exploration: points, bests, frontiers.
	ExploreResult = explore.Result
	// ExplorePointResult is one lattice point's outcome.
	ExplorePointResult = explore.PointResult
	// ExploreBest is one bisection (or grid scan) outcome.
	ExploreBest = explore.Best
	// ExploreFrontier is one extracted Pareto frontier.
	ExploreFrontier = explore.Frontier
	// ExploreJob is a background exploration's handle (ExploreAsync).
	ExploreJob = explore.Job
	// ExplorationStatus is a remote exploration's submit/poll view.
	ExplorationStatus = service.ExploreStatus
	// RemoteExploration is a submitted remote exploration's handle
	// (Client.ExploreAsync).
	RemoteExploration = service.RemoteExploration
)

// ParseExploreSpace builds and validates an ExploreSpace from its JSON
// encoding — the same format `reactsim -explore` reads and POST
// /explorations accepts.
func ParseExploreSpace(data []byte) (*ExploreSpace, error) { return explore.ParseSpace(data) }

// Explore runs a design-space exploration locally: every probed point
// simulates over the experiment engine's worker pool (0 = GOMAXPROCS),
// deduplicated by content address within the exploration. The result is
// deterministic for any worker count and bit-identical to what a reactd
// serves for the same space and seeds.
func Explore(ctx context.Context, space *ExploreSpace, workers int) (*ExploreResult, error) {
	return explore.Run(ctx, space, explore.Local(workers))
}

// ExploreAsync starts Explore in the background and returns immediately;
// Wait the handle for the result, or Cancel it between batches.
func ExploreAsync(ctx context.Context, space *ExploreSpace, workers int) *ExploreJob {
	return explore.Async(ctx, space, explore.Local(workers))
}

// Simulation-service types: the reactd daemon's building blocks (serve
// scenarios over HTTP with a content-addressed, single-flight result
// cache) and the Go client that talks to one.
type (
	// ServiceServer is the reactd HTTP handler: an async run queue over the
	// experiment engine plus the result cache. Serve it with net/http and
	// shut it down with Close.
	ServiceServer = service.Server
	// ServiceConfig tunes a ServiceServer (worker pool, cache size).
	ServiceConfig = service.Config
	// ServiceMetrics is the GET /metrics report.
	ServiceMetrics = service.Metrics
	// Client talks to a running reactd; create one with Dial.
	Client = service.Client
	// RemoteRun is a submitted run's poll/wait/cancel handle.
	RemoteRun = service.RemoteRun
	// RunRequest submits a run: a registered scenario name or an inline
	// JSON spec, plus optional seed and timestep. Seed 0 means "unset"
	// (the spec's seed applies, defaulting to 1).
	RunRequest = service.RunRequest
	// RunStatus is a run's submit/poll view, including partial results.
	RunStatus = service.RunStatus
	// RunCell is one buffer's slot in a RunStatus.
	RunCell = service.CellStatus
	// RunCellResult is one buffer's completed metrics.
	RunCellResult = service.CellResult
	// ServiceScenarioInfo is one GET /scenarios registry entry.
	ServiceScenarioInfo = service.ScenarioInfo
	// SweepRequest submits a sweep: one spec crossed with a seed list or
	// range, an optional timestep axis, and an optional buffer subset.
	SweepRequest = service.SweepRequest
	// SweepStatus is a sweep's submit/poll view: resolved axes, per-cell
	// results, and (once done) per-(buffer, dt) summary rows.
	SweepStatus = service.SweepStatus
	// SweepCell is one (buffer, dt, seed) cell of a SweepStatus.
	SweepCell = service.SweepCellStatus
	// SweepSummaryRow is one aggregate row of a completed sweep.
	SweepSummaryRow = service.SweepSummary
	// RemoteSweep is a submitted sweep's poll/wait/cancel handle
	// (Client.SweepAsync).
	RemoteSweep = service.RemoteSweep
	// SeedSummary is one cell's across-seed statistics, as computed by
	// AggregateSeeds.
	SeedSummary = scenario.SeedSummary
	// MeanStd is an across-seed mean and population standard deviation.
	MeanStd = scenario.MeanStd
)

// NewService builds a reactd server for embedding: mount it on any
// net/http mux or serve it directly. It fails only on an invalid cluster
// configuration (ServiceConfig.Peers/Self).
func NewService(cfg ServiceConfig) (*ServiceServer, error) { return service.New(cfg) }

// Dial connects to a reactd server ("http://host:port") and verifies it
// responds. Client.Run submits and waits; Client.RunAsync returns a
// RemoteRun handle for polling, partial results and cancellation.
// Client.Sweep and Client.SweepAsync submit seed × dt × buffer sweeps,
// and Client.Explore/ExploreAsync submit design-space explorations; all of
// them share cells with runs and each other through the daemon's
// content-addressed cache. Every request the client issues is bounded by
// a per-request timeout (service.DefaultRequestTimeout unless overridden
// with service.WithRequestTimeout), so a hung daemon fails calls instead
// of pinning them.
func Dial(baseURL string, opts ...service.DialOption) (*Client, error) {
	return service.Dial(baseURL, opts...)
}

// DialContext is Dial bounded by the caller's context: cancel it and the
// liveness probe is abandoned with it.
func DialContext(ctx context.Context, baseURL string, opts ...service.DialOption) (*Client, error) {
	return service.DialContext(ctx, baseURL, opts...)
}

// FingerprintScenario returns the content address of the runs a scenario
// spec produces under the given options: a stable SHA-256 over the
// canonicalized physics (trace, converter, device, workload, buffers,
// timestep, tail cap, seed). Equal fingerprints mean bit-identical
// results; the service deduplicates whole-run submissions on it.
func FingerprintScenario(s *Scenario, opt ScenarioOptions) (string, error) {
	return s.FingerprintRun(opt)
}

// FingerprintScenarioCell returns the content address of buffer i's cell
// of a scenario under the given options — the granularity the service's
// result cache operates at. A cell's address equals the run address of
// the equivalent single-buffer spec, so runs and sweeps that overlap on a
// buffer share the cached simulation.
func FingerprintScenarioCell(s *Scenario, i int, opt ScenarioOptions) (string, error) {
	return s.FingerprintCell(i, opt)
}

// AggregateSeeds summarizes a multi-seed sweep of one cell: per-metric
// across-seed mean and population standard deviation, latency over the
// started runs only. It is the same computation `reactsim -seeds` prints
// and reactd's sweep summaries report.
func AggregateSeeds(results []Result) SeedSummary { return scenario.AggregateSeeds(results) }

// Experiment-engine types: the shared orchestration layer every multi-run
// workload (grids, sweeps, benchmarks, tools) schedules through.
type (
	// Runner is a bounded worker pool with deterministic dispatch, context
	// cancellation, per-job error capture and progress callbacks. The zero
	// value uses GOMAXPROCS workers.
	Runner = runner.Runner
	// RunProgress reports one completed job to Runner.OnProgress.
	RunProgress = runner.Progress
	// ResultGrid is a dense benchmark × trace × buffer result store.
	ResultGrid = runner.Grid
	// GridCellFunc simulates one cell of a result grid.
	GridCellFunc = runner.CellFunc
)

// NewResultGrid builds an empty dense result grid over the given axes.
func NewResultGrid(benchmarks []string, traces []*Trace, buffers []string) *ResultGrid {
	return runner.NewGrid(benchmarks, traces, buffers)
}

// RunGrid populates a result grid by running cell for every benchmark ×
// trace × buffer combination over r's worker pool (nil r uses the default
// pool sized to GOMAXPROCS).
func RunGrid(ctx context.Context, r *Runner, benchmarks []string, traces []*Trace, buffers []string, cell GridCellFunc) (*ResultGrid, error) {
	return runner.RunGrid(ctx, r, benchmarks, traces, buffers, cell)
}

// Sweep runs fn once per point over r's worker pool and returns the results
// in point order — the primitive for multi-seed runs, capacitance sweeps,
// DT sweeps and any other parameter study.
func Sweep[P, R any](ctx context.Context, r *Runner, points []P, fn func(ctx context.Context, p P) (R, error)) ([]R, error) {
	return runner.Sweep(ctx, r, points, fn)
}

// SweepSeeds returns the n deterministic sweep seeds 1..n.
func SweepSeeds(n int) []uint64 { return runner.Seeds(n) }

// Linspace returns n evenly spaced sweep values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 { return runner.Linspace(lo, hi, n) }

// Logspace returns n logarithmically spaced sweep values from lo to hi
// inclusive (both positive).
func Logspace(lo, hi float64, n int) []float64 { return runner.Logspace(lo, hi, n) }
