// Benchmarks regenerating every table and figure in the paper's evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outputs). Heavy benchmarks simulate full power traces, so each iteration
// is seconds long and `go test -bench=.` runs them once; the reported
// custom metrics are the table's headline values.
//
// Every multi-run benchmark schedules its simulations through the shared
// experiment engine (react.RunGrid / react.Sweep over internal/runner)
// rather than looping ad hoc, so the benchmarks exercise the same
// orchestration path as the experiments package and the cmd/ tools.
//
// Ablation benchmarks (A1–A4 in DESIGN.md) probe the design choices the
// paper calls out: ideal diodes vs Schottky isolation, controller poll
// rate, bank granularity, and integration timestep.
package react_test

import (
	"context"
	"testing"

	"react"
	"react/internal/experiments"
	"react/internal/trace"
)

// rfTraces returns the three short RF traces — enough for a representative
// benchmark iteration at a few seconds per run.
func rfTraces() []*react.Trace {
	return []*react.Trace{react.RFCart(1), react.RFObstructed(1), react.RFMobile(1)}
}

// runCell adapts the experiments cell factory to the engine's grid signature.
func runCell(_ context.Context, bench string, tr *react.Trace, buf string) (react.Result, error) {
	return experiments.RunCell(tr, buf, bench, experiments.Options{})
}

// benchTable2 runs one Table 2 benchmark column set over the RF traces and
// reports the REACT and static means.
func benchTable2(b *testing.B, bench string) {
	b.ReportAllocs()
	perf := func(r react.Result) float64 { return experiments.Perf(bench, r) }
	for i := 0; i < b.N; i++ {
		g, err := react.RunGrid(context.Background(), nil,
			[]string{bench}, rfTraces(), []string{"REACT", "770 µF", "17 mF"}, runCell)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.MeanOverTraces(bench, "REACT", perf), "react_"+bench)
		b.ReportMetric(g.MeanOverTraces(bench, "770 µF", perf), "static770u_"+bench)
		b.ReportMetric(g.MeanOverTraces(bench, "17 mF", perf), "static17m_"+bench)
	}
}

// BenchmarkTable2_DE regenerates the Data Encryption columns of Table 2.
func BenchmarkTable2_DE(b *testing.B) { benchTable2(b, "DE") }

// BenchmarkTable2_SC regenerates the Sense-and-Compute columns of Table 2.
func BenchmarkTable2_SC(b *testing.B) { benchTable2(b, "SC") }

// BenchmarkTable2_RT regenerates the Radio Transmission columns of Table 2.
func BenchmarkTable2_RT(b *testing.B) { benchTable2(b, "RT") }

// BenchmarkTable3_Traces regenerates Table 3: synthesizing the five
// evaluation traces and computing their statistics.
func BenchmarkTable3_Traces(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		traces := react.EvaluationTraces(uint64(i + 1))
		var cv float64
		for _, tr := range traces {
			cv += tr.Stats().CV
		}
		b.ReportMetric(cv/5, "mean_cv")
	}
}

// BenchmarkTable4_Latency regenerates the latency table on the RF traces
// and reports the REACT-vs-17 mF speedup (paper: 7.7x over all traces).
func BenchmarkTable4_Latency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := react.RunGrid(context.Background(), nil,
			[]string{"DE"}, rfTraces(), []string{"REACT", "17 mF"}, runCell)
		if err != nil {
			b.Fatal(err)
		}
		var reactLat, bigLat float64
		n := 0
		for _, tr := range g.Traces {
			rr := g.At("DE", tr.Name, "REACT")
			rb := g.At("DE", tr.Name, "17 mF")
			if rr.Latency >= 0 && rb.Latency >= 0 {
				reactLat += rr.Latency
				bigLat += rb.Latency
				n++
			}
		}
		b.ReportMetric(reactLat/float64(n), "react_latency_s")
		b.ReportMetric(bigLat/reactLat, "speedup_vs_17mF")
	}
}

// BenchmarkTable5_PF regenerates the Packet Forwarding table on the RF
// traces.
func BenchmarkTable5_PF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := react.Sweep(context.Background(), nil, rfTraces(),
			func(_ context.Context, tr *react.Trace) (react.Result, error) {
				return experiments.RunCell(tr, "REACT", "PF", experiments.Options{})
			})
		if err != nil {
			b.Fatal(err)
		}
		var rx, tx float64
		for _, r := range res {
			rx += r.Metrics["rx"]
			tx += r.Metrics["tx"]
		}
		b.ReportMetric(rx/3, "react_rx")
		b.ReportMetric(tx/3, "react_tx")
	}
}

// BenchmarkSeedSweep (ours) exercises the multi-seed Sweep path the engine
// opens beyond the paper's fixed grid: DE on five fresh RF Cart instances,
// reporting the across-seed mean and spread of the figure of merit.
func BenchmarkSeedSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blocks, err := react.Sweep(context.Background(), nil, react.SweepSeeds(5),
			func(_ context.Context, seed uint64) (float64, error) {
				r, err := experiments.RunCell(react.RFCart(seed), "REACT", "DE",
					experiments.Options{Seed: seed})
				if err != nil {
					return 0, err
				}
				return experiments.Perf("DE", r), nil
			})
		if err != nil {
			b.Fatal(err)
		}
		var sum, sumSq float64
		for _, v := range blocks {
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(len(blocks))
		b.ReportMetric(mean, "blocks_mean")
		variance := sumSq/float64(len(blocks)) - mean*mean
		if variance < 0 {
			variance = 0 // rounding when the per-seed values coincide
		}
		b.ReportMetric(variance, "blocks_var")
	}
}

// BenchmarkFigure1 regenerates the Figure 1 static-buffer comparison on the
// pedestrian solar trace.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure1(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(runs[0].Result.Cycles), "cycles_1mF")
		b.ReportMetric(runs[1].Result.Latency/runs[0].Result.Latency, "charge_ratio")
	}
}

// BenchmarkFigure6 regenerates the Figure 6 voltage recordings (SC under
// RF Mobile, four buffers).
func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure6(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(series["REACT"])), "samples")
	}
}

// BenchmarkFigure7 regenerates the full evaluation grid (4 benchmarks ×
// 5 traces × 5 buffers) and reports the paper's headline improvements.
// One iteration takes about a minute.
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunGrid(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		f := experiments.ComputeFigure7(g)
		b.ReportMetric(f.Improvement["770 µF"]*100, "gain_vs_770uF_pct")
		b.ReportMetric(f.Improvement["10 mF"]*100, "gain_vs_10mF_pct")
		b.ReportMetric(f.Improvement["17 mF"]*100, "gain_vs_17mF_pct")
		b.ReportMetric(f.Improvement["Morphy"]*100, "gain_vs_Morphy_pct")
	}
}

// BenchmarkBackgroundStats regenerates the §2.1 background analysis.
func BenchmarkBackgroundStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bg, err := experiments.RunBackground(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bg.DutySmall*100, "duty_1mF_pct")
		b.ReportMetric(bg.DutyLarge*100, "duty_300mF_pct")
	}
}

// BenchmarkOverhead regenerates the §5.1 overhead characterization.
func BenchmarkOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := experiments.RunOverhead(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(o.SoftwarePenalty*100, "sw_penalty_pct")
		b.ReportMetric(o.HardwareDrawW*1e6, "hw_draw_uW")
	}
}

// BenchmarkSwitchingLoss measures the §3.3.1 worked example: the cost of
// computing one dissipative reconfiguration of a unified eight-capacitor
// array (E10 in DESIGN.md), and reports the loss fraction.
func BenchmarkSwitchingLoss(b *testing.B) {
	b.ReportAllocs()
	var frac float64
	for i := 0; i < b.N; i++ {
		m := react.NewMorphy(react.DefaultMorphyConfig())
		m.Harvest(0.5 * 250e-6 * 3.4 * 3.4)
		before := m.Stored()
		for m.Level() < m.MaxLevel() {
			m.Tick(0, 0.1, false)
			m.Harvest(1e-3) // keep it above V_high so the ladder climbs
		}
		frac = 1 - m.Stored()/(before+m.Ledger().Harvested-0.5*250e-6*3.4*3.4)
	}
	b.ReportMetric(frac*100, "loss_pct")
}

// BenchmarkBankSizing measures the Equation 1/2 computations (E11).
func BenchmarkBankSizing(b *testing.B) {
	b.ReportAllocs()
	var v float64
	for i := 0; i < b.N; i++ {
		v += react.VoltageAfterReclaim(3, 880e-6, 770e-6, 1.9)
		v += react.MaxUnitCapacitance(3, 770e-6, 1.9, 3.5)
	}
	b.ReportMetric(react.VoltageAfterReclaim(2, 5e-3, 770e-6, 1.9), "eq1_spike_v")
	_ = v
}

// BenchmarkReclamation measures the §3.3.4 charge-reclamation path: a full
// REACT contraction cascade from charged-parallel to disconnected (E12).
func BenchmarkReclamation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := react.NewREACT(react.DefaultConfig())
		// Charge fully with the device on so the controller expands.
		for tick := 0; buf.Level() < buf.MaxLevel() && tick < 400000; tick++ {
			buf.Harvest(40e-3 * 1e-3)
			buf.Tick(float64(tick)*1e-3, 1e-3, true)
		}
		// Drain with reclamation.
		for tick := 0; buf.Level() > 0 && tick < 4000000; tick++ {
			buf.Draw(8e-3 * 1e-3)
			buf.Tick(float64(tick)*1e-3, 1e-3, true)
		}
		b.ReportMetric(buf.Ledger().SwitchLoss*1e3, "switch_loss_mJ")
	}
}

// sweepBlocks runs one DE simulation per point through the engine and
// returns the completed-block counts in point order.
func sweepBlocks[P any](b *testing.B, points []P, cfg func(P) react.SimConfig) []float64 {
	b.Helper()
	blocks, err := react.Sweep(context.Background(), nil, points,
		func(_ context.Context, p P) (float64, error) {
			res, err := react.Run(cfg(p))
			if err != nil {
				return 0, err
			}
			return res.Metrics["blocks"], nil
		})
	if err != nil {
		b.Fatal(err)
	}
	return blocks
}

// BenchmarkAblationDiode (A1) compares REACT built with active ideal
// diodes against Schottky isolation diodes on the bursty RF Cart trace.
func BenchmarkAblationDiode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blocks := sweepBlocks(b, []float64{0, 0.3}, func(drop float64) react.SimConfig {
			cfg := react.DefaultConfig()
			cfg.DiodeDrop = drop
			return react.SimConfig{
				Frontend: react.NewFrontend(react.RFCart(1), nil),
				Buffer:   react.NewREACT(cfg),
				Device:   react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3)),
			}
		})
		ideal, schottky := blocks[0], blocks[1]
		b.ReportMetric(ideal, "blocks_ideal")
		b.ReportMetric(schottky, "blocks_schottky")
		b.ReportMetric((ideal/schottky-1)*100, "ideal_gain_pct")
	}
}

// BenchmarkAblationPollRate (A2) sweeps the controller polling rate.
func BenchmarkAblationPollRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blocks := sweepBlocks(b, []float64{1, 10, 100}, func(hz float64) react.SimConfig {
			cfg := react.DefaultConfig()
			cfg.PollHz = hz
			// The paper's 1.8 % penalty is measured at 10 Hz; scale with rate.
			cfg.SoftwareOverhead = 0.018 * hz / 10
			return react.SimConfig{
				Frontend: react.NewFrontend(react.RFCart(1), nil),
				Buffer:   react.NewREACT(cfg),
				Device:   react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3)),
			}
		})
		b.ReportMetric(blocks[0], "blocks_1Hz")
		b.ReportMetric(blocks[1], "blocks_10Hz")
		b.ReportMetric(blocks[2], "blocks_100Hz")
	}
}

// BenchmarkAblationBanks (A3) sweeps how finely the bank fabric is divided.
func BenchmarkAblationBanks(b *testing.B) {
	b.ReportAllocs()
	full := react.DefaultConfig().Banks
	// One big bank with the same total capacitance (2 × 8.63 mF).
	coarse := []react.BankSpec{{N: 2, UnitC: 8.63e-3, LeakI: 2e-6, VRated: 6.3}}
	for i := 0; i < b.N; i++ {
		blocks := sweepBlocks(b, [][]react.BankSpec{full, coarse}, func(banks []react.BankSpec) react.SimConfig {
			cfg := react.DefaultConfig()
			cfg.Banks = banks
			return react.SimConfig{
				Frontend: react.NewFrontend(react.RFCart(1), nil),
				Buffer:   react.NewREACT(cfg),
				Device:   react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3)),
			}
		})
		b.ReportMetric(blocks[0], "blocks_5banks")
		b.ReportMetric(blocks[1], "blocks_1bank")
	}
}

// BenchmarkAblationTimestep (A4) checks result stability across integration
// timesteps (0.5 ms vs 2 ms vs the default 1 ms).
func BenchmarkAblationTimestep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blocks, err := react.Sweep(context.Background(), nil, []float64{0.5e-3, 1e-3, 2e-3},
			func(_ context.Context, dt float64) (float64, error) {
				r, err := experiments.RunCell(react.RFCart(1), "REACT", "DE", experiments.Options{DT: dt})
				if err != nil {
					return 0, err
				}
				return r.Metrics["blocks"], nil
			})
		if err != nil {
			b.Fatal(err)
		}
		fine, def, coarse := blocks[0], blocks[1], blocks[2]
		b.ReportMetric(def, "blocks_1ms")
		b.ReportMetric((fine/def-1)*100, "drift_0.5ms_pct")
		b.ReportMetric((coarse/def-1)*100, "drift_2ms_pct")
	}
}

// BenchmarkSimThroughput measures raw engine speed: simulated seconds per
// wall-clock second for a REACT buffer under load.
func BenchmarkSimThroughput(b *testing.B) {
	b.ReportAllocs()
	buf := react.NewREACT(react.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Harvest(5e-3 * 1e-3)
		buf.Draw(2e-3 * 1e-3)
		buf.Tick(float64(i)*1e-3, 1e-3, true)
	}
}

// BenchmarkTraceGeneration measures synthetic-trace synthesis speed.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = trace.SolarCampus(uint64(i + 1))
	}
}

// BenchmarkExtensionCapybara (ours) compares the Capybara-style
// multiplexed static array (§2.3 related work) against REACT on the bursty
// RF Cart trace: discrete pre-provisioned banks versus a continuously
// reconfigurable fabric.
func BenchmarkExtensionCapybara(b *testing.B) {
	b.ReportAllocs()
	mk := []func() react.Buffer{
		func() react.Buffer { return react.NewCapybara(react.DefaultCapybaraConfig()) },
		func() react.Buffer { return react.NewREACT(react.DefaultConfig()) },
	}
	for i := 0; i < b.N; i++ {
		blocks := sweepBlocks(b, mk, func(newBuf func() react.Buffer) react.SimConfig {
			return react.SimConfig{
				Frontend: react.NewFrontend(react.RFCart(1), nil),
				Buffer:   newBuf(),
				Device:   react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3)),
			}
		})
		capy, reactBlocks := blocks[0], blocks[1]
		b.ReportMetric(capy, "blocks_capybara")
		b.ReportMetric(reactBlocks, "blocks_react")
		b.ReportMetric((reactBlocks/capy-1)*100, "react_gain_pct")
	}
}

// BenchmarkExtensionTimekeeper (ours) measures the scheduling error the SC
// benchmark accumulates when deadlines survive power failures through a
// remanence timekeeper instead of a perfect external clock.
func BenchmarkExtensionTimekeeper(b *testing.B) {
	b.ReportAllocs()
	prof := react.DefaultProfile()
	mk := []func() react.Workload{
		func() react.Workload { return react.NewSenseCompute(prof.SleepI) },
		func() react.Workload {
			return react.NewSenseComputeWithTimekeeper(prof.SleepI, react.NewTimekeeper())
		},
	}
	for i := 0; i < b.N; i++ {
		res, err := react.Sweep(context.Background(), nil, mk,
			func(_ context.Context, newWL func() react.Workload) (react.Result, error) {
				return react.Run(react.SimConfig{
					Frontend: react.NewFrontend(react.RFMobile(1), nil),
					Buffer:   react.NewREACT(react.DefaultConfig()),
					Device:   react.NewDevice(prof, newWL()),
				})
			})
		if err != nil {
			b.Fatal(err)
		}
		perfect, remanence := res[0], res[1]
		b.ReportMetric(perfect.Metrics["samples"], "samples_perfect")
		b.ReportMetric(remanence.Metrics["samples"], "samples_remanence")
		b.ReportMetric(remanence.Metrics["timing_err_mean"], "timing_err_s")
	}
}

// BenchmarkAblationEnableVoltage (A5, ours) probes the Dewdrop idea the
// paper discusses in §2.4: lowering the enable voltage on a static buffer
// trades stored energy at wake-up for responsiveness — without escaping
// the size tradeoff.
func BenchmarkAblationEnableVoltage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		samples, err := react.Sweep(context.Background(), nil, []float64{2.2, 3.3},
			func(_ context.Context, vEnable float64) (float64, error) {
				prof := react.DefaultProfile()
				prof.VEnable = vEnable
				res, err := react.Run(react.SimConfig{
					Frontend: react.NewFrontend(react.RFObstructed(1), nil),
					Buffer: react.NewStatic(react.StaticConfig{
						Name: "770 µF", C: 770e-6, VMax: 3.6, LeakI: 0.77e-6, VRated: 6.3,
					}),
					Device: react.NewDevice(prof, react.NewSenseCompute(prof.SleepI)),
				})
				if err != nil {
					return 0, err
				}
				return res.Metrics["samples"], nil
			})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(samples[0], "samples_enable2.2V")
		b.ReportMetric(samples[1], "samples_enable3.3V")
	}
}

// BenchmarkAblationLLB (A6, ours) sweeps REACT's last-level buffer size:
// the knob trading cold-start latency against the minimum work quantum.
func BenchmarkAblationLLB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := react.Sweep(context.Background(), nil, []float64{330e-6, 770e-6, 2e-3},
			func(_ context.Context, llb float64) (react.Result, error) {
				cfg := react.DefaultConfig()
				cfg.LLB.C = llb
				return react.Run(react.SimConfig{
					Frontend: react.NewFrontend(react.RFMobile(1), nil),
					Buffer:   react.NewREACT(cfg),
					Device:   react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3)),
				})
			})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].Latency, "latency_330uF")
		b.ReportMetric(res[1].Latency, "latency_770uF")
		b.ReportMetric(res[2].Latency, "latency_2mF")
		b.ReportMetric(res[0].Metrics["blocks"], "blocks_330uF")
		b.ReportMetric(res[1].Metrics["blocks"], "blocks_770uF")
		b.ReportMetric(res[2].Metrics["blocks"], "blocks_2mF")
	}
}

// BenchmarkAblationThresholds (A7, ours) sweeps the undervoltage
// reclamation trigger V_low. Too close to the brownout voltage risks dying
// before reclaiming; too high reclaims early and wastes headroom.
func BenchmarkAblationThresholds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx, err := react.Sweep(context.Background(), nil, []float64{1.85, 1.9, 2.2},
			func(_ context.Context, vLow float64) (float64, error) {
				cfg := react.DefaultConfig()
				cfg.VLow = vLow
				res, err := react.Run(react.SimConfig{
					Frontend: react.NewFrontend(react.RFCart(1), nil),
					Buffer:   react.NewREACT(cfg),
					Device:   react.NewDevice(react.DefaultProfile(), react.NewRadioTransmit(react.DefaultProfile().SleepI)),
				})
				if err != nil {
					return 0, err
				}
				return res.Metrics["tx"], nil
			})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tx[0], "tx_vlow1.85")
		b.ReportMetric(tx[1], "tx_vlow1.90")
		b.ReportMetric(tx[2], "tx_vlow2.20")
	}
}

// BenchmarkExtensionDewdrop (ours) evaluates the Dewdrop baseline (§2.4):
// an adaptive enable voltage makes a small static buffer wake exactly when
// the next transmission is affordable, beating the fixed-enable static on
// RT — but it cannot escape the capacity limit the way REACT does.
func BenchmarkExtensionDewdrop(b *testing.B) {
	b.ReportAllocs()
	prof := react.DefaultProfile()
	txEnergy := 4.95e-3 * 1.4
	mk := []func() react.Buffer{
		func() react.Buffer {
			return react.NewStatic(react.StaticConfig{
				Name: "2.2 mF", C: 2.2e-3, VMax: 3.6, LeakI: 2.2e-6, VRated: 6.3,
			})
		},
		func() react.Buffer {
			return react.NewDewdrop(react.DewdropConfig{
				C: 2.2e-3, VMax: 3.6, VMin: prof.VBrownout,
				LeakI: 2.2e-6, VRated: 6.3, TaskEnergy: txEnergy,
			})
		},
		func() react.Buffer { return react.NewREACT(react.DefaultConfig()) },
	}
	for i := 0; i < b.N; i++ {
		tx, err := react.Sweep(context.Background(), nil, mk,
			func(_ context.Context, newBuf func() react.Buffer) (float64, error) {
				res, err := react.Run(react.SimConfig{
					Frontend: react.NewFrontend(react.RFCart(1), nil),
					Buffer:   newBuf(),
					Device:   react.NewDevice(prof, react.NewRadioTransmit(prof.SleepI)),
				})
				if err != nil {
					return 0, err
				}
				return res.Metrics["tx"], nil
			})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tx[0], "tx_static")
		b.ReportMetric(tx[1], "tx_dewdrop")
		b.ReportMetric(tx[2], "tx_react")
	}
}
