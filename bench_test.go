// Benchmarks regenerating every table and figure in the paper's evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outputs). Heavy benchmarks simulate full power traces, so each iteration
// is seconds long and `go test -bench=.` runs them once; the reported
// custom metrics are the table's headline values.
//
// Ablation benchmarks (A1–A4 in DESIGN.md) probe the design choices the
// paper calls out: ideal diodes vs Schottky isolation, controller poll
// rate, bank granularity, and integration timestep.
package react_test

import (
	"testing"

	"react"
	"react/internal/experiments"
	"react/internal/trace"
)

// rfTraces returns the three short RF traces — enough for a representative
// benchmark iteration at a few seconds per run.
func rfTraces() []*react.Trace {
	return []*react.Trace{react.RFCart(1), react.RFObstructed(1), react.RFMobile(1)}
}

// meanPerf runs one benchmark over the RF traces for one buffer and
// returns the mean figure of merit.
func meanPerf(b *testing.B, bench, buf string) float64 {
	b.Helper()
	var sum float64
	for _, tr := range rfTraces() {
		r, err := experiments.RunCell(tr, buf, bench, experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sum += experiments.Perf(bench, r)
	}
	return sum / 3
}

// benchTable2 runs one Table 2 benchmark column set and reports the REACT
// and best-static means.
func benchTable2(b *testing.B, bench string) {
	for i := 0; i < b.N; i++ {
		reactMean := meanPerf(b, bench, "REACT")
		small := meanPerf(b, bench, "770 µF")
		large := meanPerf(b, bench, "17 mF")
		b.ReportMetric(reactMean, "react_"+bench)
		b.ReportMetric(small, "static770u_"+bench)
		b.ReportMetric(large, "static17m_"+bench)
	}
}

// BenchmarkTable2_DE regenerates the Data Encryption columns of Table 2.
func BenchmarkTable2_DE(b *testing.B) { benchTable2(b, "DE") }

// BenchmarkTable2_SC regenerates the Sense-and-Compute columns of Table 2.
func BenchmarkTable2_SC(b *testing.B) { benchTable2(b, "SC") }

// BenchmarkTable2_RT regenerates the Radio Transmission columns of Table 2.
func BenchmarkTable2_RT(b *testing.B) { benchTable2(b, "RT") }

// BenchmarkTable3_Traces regenerates Table 3: synthesizing the five
// evaluation traces and computing their statistics.
func BenchmarkTable3_Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces := react.EvaluationTraces(uint64(i + 1))
		var cv float64
		for _, tr := range traces {
			cv += tr.Stats().CV
		}
		b.ReportMetric(cv/5, "mean_cv")
	}
}

// BenchmarkTable4_Latency regenerates the latency table on the RF traces
// and reports the REACT-vs-17 mF speedup (paper: 7.7x over all traces).
func BenchmarkTable4_Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var reactLat, bigLat float64
		n := 0
		for _, tr := range rfTraces() {
			rr, err := experiments.RunCell(tr, "REACT", "DE", experiments.Options{})
			if err != nil {
				b.Fatal(err)
			}
			rb, err := experiments.RunCell(tr, "17 mF", "DE", experiments.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if rr.Latency >= 0 && rb.Latency >= 0 {
				reactLat += rr.Latency
				bigLat += rb.Latency
				n++
			}
		}
		b.ReportMetric(reactLat/float64(n), "react_latency_s")
		b.ReportMetric(bigLat/reactLat, "speedup_vs_17mF")
	}
}

// BenchmarkTable5_PF regenerates the Packet Forwarding table on the RF
// traces.
func BenchmarkTable5_PF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rx, tx float64
		for _, tr := range rfTraces() {
			r, err := experiments.RunCell(tr, "REACT", "PF", experiments.Options{})
			if err != nil {
				b.Fatal(err)
			}
			rx += r.Metrics["rx"]
			tx += r.Metrics["tx"]
		}
		b.ReportMetric(rx/3, "react_rx")
		b.ReportMetric(tx/3, "react_tx")
	}
}

// BenchmarkFigure1 regenerates the Figure 1 static-buffer comparison on the
// pedestrian solar trace.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure1(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(runs[0].Result.Cycles), "cycles_1mF")
		b.ReportMetric(runs[1].Result.Latency/runs[0].Result.Latency, "charge_ratio")
	}
}

// BenchmarkFigure6 regenerates the Figure 6 voltage recordings (SC under
// RF Mobile, four buffers).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure6(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(series["REACT"])), "samples")
	}
}

// BenchmarkFigure7 regenerates the full evaluation grid (4 benchmarks ×
// 5 traces × 5 buffers) and reports the paper's headline improvements.
// One iteration takes about a minute.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunGrid(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		f := experiments.ComputeFigure7(g)
		b.ReportMetric(f.Improvement["770 µF"]*100, "gain_vs_770uF_pct")
		b.ReportMetric(f.Improvement["10 mF"]*100, "gain_vs_10mF_pct")
		b.ReportMetric(f.Improvement["17 mF"]*100, "gain_vs_17mF_pct")
		b.ReportMetric(f.Improvement["Morphy"]*100, "gain_vs_Morphy_pct")
	}
}

// BenchmarkBackgroundStats regenerates the §2.1 background analysis.
func BenchmarkBackgroundStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bg, err := experiments.RunBackground(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bg.DutySmall*100, "duty_1mF_pct")
		b.ReportMetric(bg.DutyLarge*100, "duty_300mF_pct")
	}
}

// BenchmarkOverhead regenerates the §5.1 overhead characterization.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := experiments.RunOverhead(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(o.SoftwarePenalty*100, "sw_penalty_pct")
		b.ReportMetric(o.HardwareDrawW*1e6, "hw_draw_uW")
	}
}

// BenchmarkSwitchingLoss measures the §3.3.1 worked example: the cost of
// computing one dissipative reconfiguration of a unified eight-capacitor
// array (E10 in DESIGN.md), and reports the loss fraction.
func BenchmarkSwitchingLoss(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		m := react.NewMorphy(react.DefaultMorphyConfig())
		m.Harvest(0.5 * 250e-6 * 3.4 * 3.4)
		before := m.Stored()
		for m.Level() < m.MaxLevel() {
			m.Tick(0, 0.1, false)
			m.Harvest(1e-3) // keep it above V_high so the ladder climbs
		}
		frac = 1 - m.Stored()/(before+m.Ledger().Harvested-0.5*250e-6*3.4*3.4)
	}
	b.ReportMetric(frac*100, "loss_pct")
}

// BenchmarkBankSizing measures the Equation 1/2 computations (E11).
func BenchmarkBankSizing(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v += react.VoltageAfterReclaim(3, 880e-6, 770e-6, 1.9)
		v += react.MaxUnitCapacitance(3, 770e-6, 1.9, 3.5)
	}
	b.ReportMetric(react.VoltageAfterReclaim(2, 5e-3, 770e-6, 1.9), "eq1_spike_v")
	_ = v
}

// BenchmarkReclamation measures the §3.3.4 charge-reclamation path: a full
// REACT contraction cascade from charged-parallel to disconnected (E12).
func BenchmarkReclamation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buf := react.NewREACT(react.DefaultConfig())
		// Charge fully with the device on so the controller expands.
		for tick := 0; buf.Level() < buf.MaxLevel() && tick < 400000; tick++ {
			buf.Harvest(40e-3 * 1e-3)
			buf.Tick(float64(tick)*1e-3, 1e-3, true)
		}
		// Drain with reclamation.
		for tick := 0; buf.Level() > 0 && tick < 4000000; tick++ {
			buf.Draw(8e-3 * 1e-3)
			buf.Tick(float64(tick)*1e-3, 1e-3, true)
		}
		b.ReportMetric(buf.Ledger().SwitchLoss*1e3, "switch_loss_mJ")
	}
}

// BenchmarkAblationDiode (A1) compares REACT built with active ideal
// diodes against Schottky isolation diodes on the bursty RF Cart trace.
func BenchmarkAblationDiode(b *testing.B) {
	run := func(drop float64) float64 {
		cfg := react.DefaultConfig()
		cfg.DiodeDrop = drop
		dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFCart(1), nil),
			Buffer:   react.NewREACT(cfg),
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["blocks"]
	}
	for i := 0; i < b.N; i++ {
		ideal := run(0)
		schottky := run(0.3)
		b.ReportMetric(ideal, "blocks_ideal")
		b.ReportMetric(schottky, "blocks_schottky")
		b.ReportMetric((ideal/schottky-1)*100, "ideal_gain_pct")
	}
}

// BenchmarkAblationPollRate (A2) sweeps the controller polling rate.
func BenchmarkAblationPollRate(b *testing.B) {
	run := func(hz float64) float64 {
		cfg := react.DefaultConfig()
		cfg.PollHz = hz
		// The paper's 1.8 % penalty is measured at 10 Hz; scale with rate.
		cfg.SoftwareOverhead = 0.018 * hz / 10
		dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFCart(1), nil),
			Buffer:   react.NewREACT(cfg),
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["blocks"]
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1), "blocks_1Hz")
		b.ReportMetric(run(10), "blocks_10Hz")
		b.ReportMetric(run(100), "blocks_100Hz")
	}
}

// BenchmarkAblationBanks (A3) sweeps how finely the bank fabric is divided.
func BenchmarkAblationBanks(b *testing.B) {
	run := func(banks []react.BankSpec) float64 {
		cfg := react.DefaultConfig()
		cfg.Banks = banks
		dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFCart(1), nil),
			Buffer:   react.NewREACT(cfg),
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["blocks"]
	}
	full := react.DefaultConfig().Banks
	// One big bank with the same total capacitance (2 × 8.63 mF).
	coarse := []react.BankSpec{{N: 2, UnitC: 8.63e-3, LeakI: 2e-6, VRated: 6.3}}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(full), "blocks_5banks")
		b.ReportMetric(run(coarse), "blocks_1bank")
	}
}

// BenchmarkAblationTimestep (A4) checks result stability across integration
// timesteps (0.5 ms vs 2 ms vs the default 1 ms).
func BenchmarkAblationTimestep(b *testing.B) {
	run := func(dt float64) float64 {
		r, err := experiments.RunCell(react.RFCart(1), "REACT", "DE", experiments.Options{DT: dt})
		if err != nil {
			b.Fatal(err)
		}
		return r.Metrics["blocks"]
	}
	for i := 0; i < b.N; i++ {
		fine := run(0.5e-3)
		def := run(1e-3)
		coarse := run(2e-3)
		b.ReportMetric(def, "blocks_1ms")
		b.ReportMetric((fine/def-1)*100, "drift_0.5ms_pct")
		b.ReportMetric((coarse/def-1)*100, "drift_2ms_pct")
	}
}

// BenchmarkSimThroughput measures raw engine speed: simulated seconds per
// wall-clock second for a REACT buffer under load.
func BenchmarkSimThroughput(b *testing.B) {
	buf := react.NewREACT(react.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Harvest(5e-3 * 1e-3)
		buf.Draw(2e-3 * 1e-3)
		buf.Tick(float64(i)*1e-3, 1e-3, true)
	}
}

// BenchmarkTraceGeneration measures synthetic-trace synthesis speed.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = trace.SolarCampus(uint64(i + 1))
	}
}

// BenchmarkExtensionCapybara (ours) compares the Capybara-style
// multiplexed static array (§2.3 related work) against REACT on the bursty
// RF Cart trace: discrete pre-provisioned banks versus a continuously
// reconfigurable fabric.
func BenchmarkExtensionCapybara(b *testing.B) {
	run := func(buf react.Buffer) float64 {
		dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFCart(1), nil),
			Buffer:   buf,
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["blocks"]
	}
	for i := 0; i < b.N; i++ {
		capy := run(react.NewCapybara(react.DefaultCapybaraConfig()))
		reactBlocks := run(react.NewREACT(react.DefaultConfig()))
		b.ReportMetric(capy, "blocks_capybara")
		b.ReportMetric(reactBlocks, "blocks_react")
		b.ReportMetric((reactBlocks/capy-1)*100, "react_gain_pct")
	}
}

// BenchmarkExtensionTimekeeper (ours) measures the scheduling error the SC
// benchmark accumulates when deadlines survive power failures through a
// remanence timekeeper instead of a perfect external clock.
func BenchmarkExtensionTimekeeper(b *testing.B) {
	run := func(wl react.Workload) react.Result {
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFMobile(1), nil),
			Buffer:   react.NewREACT(react.DefaultConfig()),
			Device:   react.NewDevice(react.DefaultProfile(), wl),
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	prof := react.DefaultProfile()
	for i := 0; i < b.N; i++ {
		perfect := run(react.NewSenseCompute(prof.SleepI))
		remanence := run(react.NewSenseComputeWithTimekeeper(prof.SleepI, react.NewTimekeeper()))
		b.ReportMetric(perfect.Metrics["samples"], "samples_perfect")
		b.ReportMetric(remanence.Metrics["samples"], "samples_remanence")
		b.ReportMetric(remanence.Metrics["timing_err_mean"], "timing_err_s")
	}
}

// BenchmarkAblationEnableVoltage (A5, ours) probes the Dewdrop idea the
// paper discusses in §2.4: lowering the enable voltage on a static buffer
// trades stored energy at wake-up for responsiveness — without escaping
// the size tradeoff.
func BenchmarkAblationEnableVoltage(b *testing.B) {
	run := func(vEnable float64) float64 {
		prof := react.DefaultProfile()
		prof.VEnable = vEnable
		dev := react.NewDevice(prof, react.NewSenseCompute(prof.SleepI))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFObstructed(1), nil),
			Buffer: react.NewStatic(react.StaticConfig{
				Name: "770 µF", C: 770e-6, VMax: 3.6, LeakI: 0.77e-6, VRated: 6.3,
			}),
			Device: dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["samples"]
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(2.2), "samples_enable2.2V")
		b.ReportMetric(run(3.3), "samples_enable3.3V")
	}
}

// BenchmarkAblationLLB (A6, ours) sweeps REACT's last-level buffer size:
// the knob trading cold-start latency against the minimum work quantum.
func BenchmarkAblationLLB(b *testing.B) {
	run := func(llb float64) (latency, blocks float64) {
		cfg := react.DefaultConfig()
		cfg.LLB.C = llb
		dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFMobile(1), nil),
			Buffer:   react.NewREACT(cfg),
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Latency, res.Metrics["blocks"]
	}
	for i := 0; i < b.N; i++ {
		lat3, bl3 := run(330e-6)
		lat7, bl7 := run(770e-6)
		lat2m, bl2m := run(2e-3)
		b.ReportMetric(lat3, "latency_330uF")
		b.ReportMetric(lat7, "latency_770uF")
		b.ReportMetric(lat2m, "latency_2mF")
		b.ReportMetric(bl3, "blocks_330uF")
		b.ReportMetric(bl7, "blocks_770uF")
		b.ReportMetric(bl2m, "blocks_2mF")
	}
}

// BenchmarkAblationThresholds (A7, ours) sweeps the undervoltage
// reclamation trigger V_low. Too close to the brownout voltage risks dying
// before reclaiming; too high reclaims early and wastes headroom.
func BenchmarkAblationThresholds(b *testing.B) {
	run := func(vLow float64) float64 {
		cfg := react.DefaultConfig()
		cfg.VLow = vLow
		dev := react.NewDevice(react.DefaultProfile(), react.NewRadioTransmit(react.DefaultProfile().SleepI))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFCart(1), nil),
			Buffer:   react.NewREACT(cfg),
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["tx"]
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1.85), "tx_vlow1.85")
		b.ReportMetric(run(1.9), "tx_vlow1.90")
		b.ReportMetric(run(2.2), "tx_vlow2.20")
	}
}

// BenchmarkExtensionDewdrop (ours) evaluates the Dewdrop baseline (§2.4):
// an adaptive enable voltage makes a small static buffer wake exactly when
// the next transmission is affordable, beating the fixed-enable static on
// RT — but it cannot escape the capacity limit the way REACT does.
func BenchmarkExtensionDewdrop(b *testing.B) {
	prof := react.DefaultProfile()
	txEnergy := 4.95e-3 * 1.4
	run := func(buf react.Buffer) float64 {
		dev := react.NewDevice(prof, react.NewRadioTransmit(prof.SleepI))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(react.RFCart(1), nil),
			Buffer:   buf,
			Device:   dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Metrics["tx"]
	}
	for i := 0; i < b.N; i++ {
		static := run(react.NewStatic(react.StaticConfig{
			Name: "2.2 mF", C: 2.2e-3, VMax: 3.6, LeakI: 2.2e-6, VRated: 6.3,
		}))
		dewdrop := run(react.NewDewdrop(react.DewdropConfig{
			C: 2.2e-3, VMax: 3.6, VMin: prof.VBrownout,
			LeakI: 2.2e-6, VRated: 6.3, TaskEnergy: txEnergy,
		}))
		reactTx := run(react.NewREACT(react.DefaultConfig()))
		b.ReportMetric(static, "tx_static")
		b.ReportMetric(dewdrop, "tx_dewdrop")
		b.ReportMetric(reactTx, "tx_react")
	}
}
