package workload

import (
	"math"
	"testing"

	"react/internal/mcu"
	"react/internal/radio"
	"react/internal/timekeeper"
)

func env(v, c float64) *mcu.Env {
	return &mcu.Env{Voltage: v, VMin: 1.8, Capacitance: c}
}

func TestDataEncryptionCompletesBlocks(t *testing.T) {
	w := NewDataEncryption(1e-3)
	e := env(3.3, 1e-3)
	for i := 0; i < 1000; i++ {
		e.Now = float64(i) * 1e-3
		if got := w.Step(e, 1e-3); got != 1e-3 {
			t.Fatalf("DE current %g, want active", got)
		}
	}
	// 1 s of CPU at 250 ms per block = 4 blocks.
	if got := w.Metrics()["blocks"]; got != 4 {
		t.Errorf("blocks %g, want 4", got)
	}
	if w.Digest() == [16]byte{} {
		t.Error("completed blocks must actually run the cipher")
	}
}

func TestDataEncryptionOverheadSlowsProgress(t *testing.T) {
	plain := NewDataEncryption(1e-3)
	taxed := NewDataEncryption(1e-3)
	e := env(3.3, 1e-3)
	taxedEnv := env(3.3, 1e-3)
	taxedEnv.OverheadFrac = 0.018
	for i := 0; i < 100000; i++ {
		plain.Step(e, 1e-3)
		taxed.Step(taxedEnv, 1e-3)
	}
	p, q := plain.Metrics()["blocks"], taxed.Metrics()["blocks"]
	penalty := 1 - q/p
	if math.Abs(penalty-0.018) > 0.01 {
		t.Errorf("software penalty %.3f, want ≈0.018", penalty)
	}
}

func TestDataEncryptionLosesInFlightBlock(t *testing.T) {
	w := NewDataEncryption(1e-3)
	e := env(3.3, 1e-3)
	for i := 0; i < 200; i++ { // 200 ms: most of a block
		w.Step(e, 1e-3)
	}
	w.PowerLost(0.2)
	for i := 0; i < 100; i++ { // another 100 ms after reboot
		w.Step(e, 1e-3)
	}
	if got := w.Metrics()["blocks"]; got != 0 {
		t.Errorf("blocks %g, want 0 — the in-flight block was volatile", got)
	}
}

func TestSenseComputeSamplesOnDeadline(t *testing.T) {
	w := NewSenseCompute(4e-6)
	e := env(3.3, 1e-3)
	dt := 1e-3
	for i := 0; i <= 11000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	// Deadlines at 0, 5, 10 s within 11 s.
	if got := w.Metrics()["samples"]; got != 3 {
		t.Errorf("samples %g, want 3", got)
	}
	if got := w.Metrics()["missed"]; got != 0 {
		t.Errorf("missed %g, want 0", got)
	}
}

func TestSenseComputeSleepCurrentIncludesMic(t *testing.T) {
	w := NewSenseCompute(4e-6)
	e := env(3.3, 1e-3)
	e.Now = 2.5 // between deadlines
	w.next = 5  // pretend the first deadline passed
	if got := w.Step(e, 1e-3); got <= 4e-6 {
		t.Errorf("sleep current %g should include the always-on microphone", got)
	}
}

func TestSenseComputeMissesWhileOff(t *testing.T) {
	w := NewSenseCompute(4e-6)
	w.PowerOn(17) // boot at t=17: deadlines 0, 5, 10, 15 are gone
	if got := w.Metrics()["missed"]; got != 4 {
		t.Errorf("missed %g, want 4", got)
	}
}

func TestSenseComputeInterruptedBurstFails(t *testing.T) {
	w := NewSenseCompute(4e-6)
	e := env(3.3, 1e-3)
	e.Now = 0
	w.Step(e, 1e-3) // deadline at 0 starts a burst
	w.PowerLost(0.001)
	if got := w.Metrics()["failed"]; got != 1 {
		t.Errorf("failed %g, want 1", got)
	}
	if got := w.Metrics()["samples"]; got != 0 {
		t.Errorf("samples %g, want 0", got)
	}
}

func TestRadioTransmitBlindWithoutLevels(t *testing.T) {
	w := NewRadioTransmit(4e-6)
	e := env(3.3, 770e-6) // no Levels: static buffer semantics
	if got := w.Step(e, 1e-3); got != w.Radio.TX.Current {
		t.Errorf("static buffer should transmit blindly, current %g", got)
	}
}

// fakeLeveler grants a fixed guarantee ladder for gating tests.
type fakeLeveler struct{ level int }

func (f *fakeLeveler) Level() int    { return f.level }
func (f *fakeLeveler) MaxLevel() int { return 10 }
func (f *fakeLeveler) GuaranteedEnergy(level int) float64 {
	return float64(level) * 2e-3 // 2 mJ per level
}

func TestRadioTransmitWaitsForLevel(t *testing.T) {
	w := NewRadioTransmit(4e-6)
	lv := &fakeLeveler{level: 0}
	e := env(3.3, 770e-6)
	e.Levels = lv
	if got := w.Step(e, 1e-3); got != w.SleepI {
		t.Errorf("should sleep awaiting the level guarantee, current %g", got)
	}
	// Level satisfied and the instantaneous estimate covers the cost.
	lv.level = 10
	e.Capacitance = 10e-3
	if got := w.Step(e, 1e-3); got != w.Radio.TX.Current {
		t.Errorf("should transmit once guaranteed, current %g", got)
	}
}

func TestRadioTransmitStaleLevelBlocksTransmit(t *testing.T) {
	w := NewRadioTransmit(4e-6)
	lv := &fakeLeveler{level: 10}
	e := env(2.0, 770e-6) // level high but rail nearly drained
	e.Levels = lv
	if got := w.Step(e, 1e-3); got != w.SleepI {
		t.Errorf("stale level must not trigger a doomed transmission, current %g", got)
	}
}

func TestRadioTransmitCountsCompletions(t *testing.T) {
	w := NewRadioTransmit(4e-6)
	e := env(3.3, 10e-3)
	ticks := int(w.Radio.TX.Duration/1e-3) + 2
	for i := 0; i < ticks; i++ {
		w.Step(e, 1e-3)
	}
	if got := w.Metrics()["tx"]; got != 1 {
		t.Errorf("tx %g, want 1", got)
	}
}

func TestRadioTransmitFailureCounted(t *testing.T) {
	w := NewRadioTransmit(4e-6)
	e := env(3.3, 10e-3)
	w.Step(e, 1e-3) // starts TX
	w.PowerLost(0.001)
	if got := w.Metrics()["failed"]; got != 1 {
		t.Errorf("failed %g, want 1", got)
	}
	if got := w.Metrics()["tx"]; got != 0 {
		t.Errorf("tx %g, want 0", got)
	}
}

func pfWith(arrivals []radio.Packet) *PacketForward {
	return NewPacketForward(4e-6, arrivals)
}

func TestPacketForwardReceivesOnArrival(t *testing.T) {
	w := pfWith([]radio.Packet{{Arrival: 0.01, Seq: 0}})
	e := env(3.3, 10e-3)
	dt := 1e-3
	for i := 0; i <= 100; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	if got := w.Metrics()["rx"]; got != 1 {
		t.Errorf("rx %g, want 1", got)
	}
}

func TestPacketForwardTransmitsQueued(t *testing.T) {
	w := pfWith([]radio.Packet{{Arrival: 0.01, Seq: 0}})
	e := env(3.3, 10e-3)
	dt := 1e-3
	for i := 0; i <= 1000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	if got := w.Metrics()["tx"]; got != 1 {
		t.Errorf("tx %g, want 1", got)
	}
}

func TestPacketForwardMissesWhileOff(t *testing.T) {
	w := pfWith([]radio.Packet{{Arrival: 1}, {Arrival: 2}, {Arrival: 30}})
	w.PowerOn(10) // boots after the first two packets passed
	if got := w.Metrics()["missed"]; got != 2 {
		t.Errorf("missed %g, want 2", got)
	}
}

func TestPacketForwardRxPreemptsTxWait(t *testing.T) {
	// Two arrivals; the workload is gated on a transmit level it never
	// reaches, but must still receive the second packet (§5.4.1 fungible
	// energy: receive preempts the transmit reservation).
	w := pfWith([]radio.Packet{{Arrival: 0.01}, {Arrival: 1.0}})
	lv := &fakeLeveler{level: 0} // transmit guarantee never satisfied
	e := env(3.3, 10e-3)
	e.Levels = lv
	dt := 1e-3
	for i := 0; i <= 2000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	if got := w.Metrics()["rx"]; got != 2 {
		t.Errorf("rx %g, want 2 — receive must preempt the transmit wait", got)
	}
	if got := w.Metrics()["tx"]; got != 0 {
		t.Errorf("tx %g, want 0 while gated", got)
	}
}

func TestPacketForwardInterruptedRxLosesPacket(t *testing.T) {
	w := pfWith([]radio.Packet{{Arrival: 0.01}})
	e := env(3.3, 10e-3)
	e.Now = 0.01
	w.Step(e, 1e-3) // starts the receive window
	w.PowerLost(0.011)
	m := w.Metrics()
	if m["rx"] != 0 || m["rx_failed"] != 1 || m["missed"] != 1 {
		t.Errorf("interrupted receive misaccounted: %v", m)
	}
}

func TestPacketForwardInterruptedTxDropsPacket(t *testing.T) {
	w := pfWith([]radio.Packet{{Arrival: 0.01}})
	e := env(3.3, 10e-3)
	dt := 1e-3
	// Receive the packet, then start transmitting.
	for i := 0; i <= 100; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	w.PowerLost(0.2)
	m := w.Metrics()
	if m["tx_failed"] != 1 {
		t.Errorf("tx_failed %g, want 1", m["tx_failed"])
	}
	// The packet is gone: running on gives no retry.
	for i := 200; i <= 1000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	if m := w.Metrics(); m["tx"] != 0 {
		t.Errorf("tx %g, want 0 after the doomed attempt", m["tx"])
	}
}

func TestWorkloadNames(t *testing.T) {
	if NewDataEncryption(1e-3).Name() != "DE" ||
		NewSenseCompute(1e-6).Name() != "SC" ||
		NewRadioTransmit(1e-6).Name() != "RT" ||
		pfWith(nil).Name() != "PF" {
		t.Error("workload names must match the paper's benchmark names")
	}
}

func TestSenseComputeWithTimekeeperAccumulatesSkew(t *testing.T) {
	w := NewSenseCompute(4e-6)
	w.Clock = timekeeper.DefaultClock()
	e := env(3.3, 1e-3)
	dt := 1e-3
	// Run 2 s, lose power for 40 s, come back: the remanence estimate is
	// imperfect, so the believed clock skews but the schedule resumes.
	for i := 0; i <= 2000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	w.PowerLost(2.0)
	w.PowerOn(42.0)
	for i := 42000; i <= 60000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	m := w.Metrics()
	if m["samples"] < 3 {
		t.Errorf("sampling should resume after the outage, got %g", m["samples"])
	}
	if m["missed"] < 7 {
		t.Errorf("deadlines during the 40 s outage are missed, got %g", m["missed"])
	}
	if _, ok := m["timing_err_mean"]; !ok {
		t.Error("timing error metric missing")
	}
}

func TestSenseComputeSaturatedClockRestartsSchedule(t *testing.T) {
	w := NewSenseCompute(4e-6)
	w.Clock = timekeeper.DefaultClock()
	e := env(3.3, 1e-3)
	e.Now = 0
	w.Step(e, 1e-3)
	w.PowerLost(0.5)
	// An outage far past the clock's range: software cannot know how long
	// it was dark and restarts the schedule from its believed present.
	w.PowerOn(2000)
	if w.next <= 2000+w.skew {
		t.Errorf("schedule must restart in the future, next=%g", w.next)
	}
}

func TestMLInferenceProgressAndCheckpointing(t *testing.T) {
	w := NewMLInference(4e-6)
	e := env(3.3, 17e-3) // no Leveler: segments start whenever stepped
	dt := 1e-3
	// One segment is SegTime of compute plus CkptTime of write; run long
	// enough for several full inferences.
	for i := 0; i < 20000; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	m := w.Metrics()
	if m["inferences"] < 4 {
		t.Errorf("expected several inferences on steady power, got %v", m)
	}
	if m["ckpts"] < m["inferences"]*float64(w.Segments) {
		t.Errorf("every segment must checkpoint: %v", m)
	}
}

func TestMLInferencePowerLossLosesOnlyInFlightSegment(t *testing.T) {
	w := NewMLInference(4e-6)
	e := env(3.3, 17e-3)
	dt := 1e-3
	// Complete exactly one segment (compute + checkpoint), then die
	// mid-way through the second.
	steps := int((w.SegTime+w.Ckpt.Time)/dt) + 2
	for i := 0; i < steps; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	if w.Metrics()["ckpts"] != 1 {
		t.Fatalf("setup: want exactly 1 checkpoint, got %v", w.Metrics())
	}
	for i := 0; i < 100; i++ { // into the second segment
		w.Step(e, dt)
	}
	w.PowerLost(e.Now)
	m := w.Metrics()
	if m["lost_segments"] != 1 {
		t.Errorf("in-flight segment must be lost: %v", m)
	}
	if m["ckpts"] != 1 {
		t.Errorf("checkpointed progress must survive power loss: %v", m)
	}
	if w.inSeg || w.inCkpt {
		t.Error("power loss must clear volatile execution state")
	}
}

func TestMLInferenceWaitsForLongevityGuarantee(t *testing.T) {
	lv := &fakeLeveler{level: 0}
	e := env(3.3, 770e-6)
	e.Levels = lv
	w := NewMLInference(4e-6)
	if i := w.Step(e, 1e-3); i != w.SleepI {
		t.Errorf("below the guaranteed level the workload must sleep, drew %g", i)
	}
	lv.level = 10
	e.Capacitance = 17e-3
	if i := w.Step(e, 1e-3); i != w.InferI {
		t.Errorf("at a guaranteed level the segment must start, drew %g", i)
	}
}

func TestMixedDutySensesThenFlushes(t *testing.T) {
	w := NewMixedDuty(4e-6)
	e := env(3.3, 17e-3)
	dt := 1e-3
	// Run past BatchN sensing periods plus slack for the flush.
	steps := int(float64(w.BatchN+2)*w.Period/dt) + int(w.Radio.TX.Duration/dt) + 100
	for i := 0; i < steps; i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	m := w.Metrics()
	if m["samples"] < float64(w.BatchN) {
		t.Fatalf("sensing cadence broken: %v", m)
	}
	if m["tx"] < 1 {
		t.Errorf("a full batch must be transmitted: %v", m)
	}
	if m["backlog"] >= float64(w.BatchN) {
		t.Errorf("flush must drain the backlog below one batch: %v", m)
	}
}

func TestMixedDutyPowerLossKeepsPendingSamples(t *testing.T) {
	w := NewMixedDuty(4e-6)
	e := env(3.3, 17e-3)
	dt := 1e-3
	// Collect a few samples, then lose power mid-burst.
	for i := 0; i < int(2.5*w.Period/dt); i++ {
		e.Now = float64(i) * dt
		w.Step(e, dt)
	}
	pendingBefore := w.pending
	if pendingBefore == 0 {
		t.Fatal("setup: expected pending samples")
	}
	e.Now += w.Period
	w.Step(e, dt) // start a burst
	w.PowerLost(e.Now)
	if w.pending != pendingBefore {
		t.Errorf("FRAM-held samples must survive: %d != %d", w.pending, pendingBefore)
	}
	if w.Metrics()["failed"] != 1 {
		t.Errorf("interrupted burst must count as failed: %v", w.Metrics())
	}
	w.PowerOn(e.Now + 10*w.Period)
	if w.Metrics()["missed"] < 5 {
		t.Errorf("deadlines during the outage must be missed: %v", w.Metrics())
	}
}

func TestDataEncryptionBackupFreezesProgress(t *testing.T) {
	w := NewDataEncryption(0.6e-3)
	e := env(3.3, 10e-3)
	// Accumulate a partial block, then suspend for a checkpoint: the
	// progress must survive (pure compute is freezeable), unlike a raw
	// power loss which discards it.
	w.Step(e, 100e-3)
	if w.progress <= 0 {
		t.Fatal("setup: expected partial-block progress")
	}
	before := w.progress
	w.Backup(0.1)
	if w.progress != before {
		t.Errorf("backup discarded the partial block: %g -> %g", before, w.progress)
	}
	w.PowerLost(0.2)
	if w.progress != 0 {
		t.Error("power loss must discard the partial block")
	}
}

func TestMixedDutyLostWorkAccounting(t *testing.T) {
	w := NewMixedDuty(4e-6)
	e := env(3.3, 10e-3)
	e.Now = w.Period // trigger a sensing burst
	w.Step(e, 1e-3)
	if !w.inBurst {
		t.Fatal("setup: expected an in-flight burst")
	}
	w.PowerLost(e.Now)
	if w.LostWork() != 1 {
		t.Errorf("a burst cut by power loss drops its sample: LostWork = %g, want 1", w.LostWork())
	}
	if w.Metrics()["failed"] != 1 {
		t.Errorf("failure counter must still move: %v", w.Metrics())
	}

	// A checkpoint suspension accounts identically; an aborted batch
	// transmission loses no samples (they survive in FRAM).
	e.Now += w.Period
	w.Step(e, 1e-3)
	if !w.inBurst {
		t.Fatal("setup: expected a second burst")
	}
	w.Backup(e.Now)
	if w.LostWork() != 2 {
		t.Errorf("a burst cut by a backup drops its sample: LostWork = %g, want 2", w.LostWork())
	}
	w.pending = w.BatchN
	w.inTX = true
	w.Backup(e.Now + 0.01)
	if w.LostWork() != 2 {
		t.Errorf("an aborted transmission must lose no samples: LostWork = %g", w.LostWork())
	}
	if w.Metrics()["tx_failed"] != 1 {
		t.Errorf("aborted transmission must count as failed: %v", w.Metrics())
	}
	if w.pending != w.BatchN {
		t.Error("pending samples must survive the aborted flush")
	}
}
