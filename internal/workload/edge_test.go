package workload

import (
	"testing"

	"react/internal/buffer"
	"react/internal/core"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/radio"
	"react/internal/sim"
	"react/internal/simtest"
	"react/internal/trace"
)

// staticBuf builds the plain fixed-size capacitor the edge cases exercise.
func staticBuf(c float64) buffer.Buffer {
	return buffer.NewStatic(buffer.StaticConfig{
		Name: "static", C: c, VMax: 3.6, LeakI: c * 1e-3, VRated: 6.3,
	})
}

// TestPFZeroInterarrivalCompletes drives the degenerate PF configuration —
// a zero mean packet interarrival — through a full simulation. The arrival
// generator resolves it to an empty schedule (the only finite reading), so
// the run must terminate normally with no traffic rather than hang
// generating infinitely many packets.
func TestPFZeroInterarrivalCompletes(t *testing.T) {
	tr := trace.RFCart(1)
	wl := NewPacketForward(4e-6, radio.Arrivals(1, tr.Duration()+120, 0))
	res, err := sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(tr, nil),
		Buffer:   core.New(core.DefaultConfig()),
		Device:   mcu.NewDevice(mcu.DefaultProfile(), wl),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration < tr.Duration() {
		t.Errorf("run ended at %g s, before the %g s trace", res.Duration, tr.Duration())
	}
	m := res.Metrics
	if m["rx"] != 0 || m["tx"] != 0 || m["missed"] != 0 {
		t.Errorf("no-traffic run must move no packets: %v", m)
	}
	simtest.CheckBalance(t, "PF/zero-interarrival", res, 1e-6)
}

// TestRTOnStaticBufferNeverDeadlocks checks §3.4.1's flip side: without a
// Leveler the RT workload transmits blindly — it must keep attempting
// (and mostly failing) rather than waiting forever for a guarantee no
// static buffer can give, and the simulation must still terminate.
func TestRTOnStaticBufferNeverDeadlocks(t *testing.T) {
	tr := trace.Steady("steady 2 mW", 2e-3, 120)
	res, err := sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(tr, nil),
		Buffer:   staticBuf(770e-6),
		Device:   mcu.NewDevice(mcu.DefaultProfile(), NewRadioTransmit(4e-6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration > tr.Duration()+600+1 {
		t.Errorf("run overran the drain cap: %g s", res.Duration)
	}
	m := res.Metrics
	if m["tx"]+m["failed"] == 0 {
		t.Errorf("a blind static buffer must at least attempt transmissions: %v", m)
	}
	simtest.CheckBalance(t, "RT/static", res, 1e-6)
}

// TestSCAcrossNightGap runs Sense-and-Compute across the full night trace:
// the device browns out in the darkness, deadline accounting must absorb
// the multi-minute gaps (every deadline is sampled, missed, or failed),
// and the PowerOn catch-up must not spin.
func TestSCAcrossNightGap(t *testing.T) {
	tr := trace.Night(1)
	wl := NewSenseCompute(4e-6)
	res, err := sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(tr, nil),
		Buffer:   staticBuf(10e-3),
		Device:   mcu.NewDevice(mcu.DefaultProfile(), wl),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m["missed"] == 0 {
		t.Errorf("a night gap must cost deadlines: %v", m)
	}
	deadlines := res.Duration/wl.Period + 1
	accounted := m["samples"] + m["missed"] + m["failed"]
	if accounted > deadlines+1 {
		t.Errorf("accounted %g deadlines, only %g occurred", accounted, deadlines)
	}
	// The catch-up loop must have advanced the schedule past the end.
	if wl.next < res.Duration-wl.Period {
		t.Errorf("deadline schedule stalled at %g s of %g", wl.next, res.Duration)
	}
	simtest.CheckBalance(t, "SC/night", res, 1e-6)
}
