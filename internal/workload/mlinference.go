package workload

import (
	"react/internal/ckpt"
	"react/internal/mcu"
)

// MLInference is the ML benchmark the scenario registry adds beyond the
// paper's four: on-device neural inference partitioned into segments with a
// non-volatile checkpoint after each, the memory-aware-partitioning
// structure of Gomez et al. ("Memory-Aware Partitioning of Machine Learning
// Applications for Optimal Energy Use in Batteryless Systems").
//
// Each segment is an atomic burst of compute followed by an FRAM checkpoint
// write; losing power mid-segment wastes only that segment, because the
// previous checkpoint persists. On buffers exposing capacitance levels the
// workload waits in deep sleep until one segment (compute + checkpoint) is
// guaranteed, mirroring the §3.4.1 longevity discipline.
//
// The per-segment checkpoint is a workload-managed scheme: its burst is
// expressed through the shared cost model (ckpt.Cost) the device-level
// schemes use, but the trigger is the workload's own segment boundary —
// which is why an attached device scheme adds nothing for ML beyond what
// the segment grain already persists.
type MLInference struct {
	SleepI  float64 // deep-sleep current between segments
	InferI  float64 // current during a compute segment
	SegTime float64 // active seconds per segment
	// Ckpt is the FRAM checkpoint burst written after each segment.
	Ckpt ckpt.Cost
	// Segments is the partition count per full inference; progress across
	// segment boundaries survives power loss.
	Segments int

	seg      int // checkpointed segments of the current inference (non-volatile)
	inSeg    bool
	segLeft  float64
	inCkpt   bool
	ckptLeft float64

	inferences float64
	ckpts      float64
	lostSegs   float64
}

// NewMLInference builds the ML workload with representative costs: four
// ~2 mJ segments per inference (a small quantized CNN on an MSP430-class
// core) and a 0.1 s FRAM checkpoint burst after each.
func NewMLInference(sleepI float64) *MLInference {
	return &MLInference{
		SleepI:   sleepI,
		InferI:   2.5e-3,
		SegTime:  0.8,
		Ckpt:     ckpt.FRAMSegment(),
		Segments: 4,
	}
}

// Name implements mcu.Workload.
func (w *MLInference) Name() string { return "ML" }

// segmentEnergy is the cost of one segment plus its checkpoint at voltage v.
func (w *MLInference) segmentEnergy(v float64) float64 {
	return (w.SegTime*w.InferI + w.Ckpt.Time*w.Ckpt.I) * v
}

// Step implements mcu.Workload.
func (w *MLInference) Step(env *mcu.Env, dt float64) float64 {
	if w.inSeg {
		w.segLeft -= dt * (1 - env.OverheadFrac)
		if w.segLeft <= 0 {
			w.inSeg = false
			w.inCkpt = true
			w.ckptLeft = w.Ckpt.Time
		}
		return w.InferI
	}
	if w.inCkpt {
		w.ckptLeft -= dt
		if w.ckptLeft <= 0 {
			w.inCkpt = false
			w.ckpts++
			w.seg++
			if w.seg >= w.Segments {
				w.seg = 0
				w.inferences++
			}
		}
		return w.Ckpt.I
	}
	if !readyForAtomic(env, w.segmentEnergy(env.Voltage)) {
		return w.SleepI // gather energy for the next segment
	}
	w.inSeg = true
	w.segLeft = w.SegTime
	return w.InferI
}

// PowerOn implements mcu.Workload: the checkpointed segment count was
// restored from FRAM; nothing else to do.
func (w *MLInference) PowerOn(now float64) {}

// PowerLost implements mcu.Workload: the in-flight segment (or its
// unfinished checkpoint) is volatile and is lost; checkpointed segments
// survive.
func (w *MLInference) PowerLost(now float64) {
	if w.inSeg || w.inCkpt {
		w.inSeg = false
		w.inCkpt = false
		w.lostSegs++
	}
}

// Backup implements mcu.Workload: the workload deliberately checkpoints
// only at segment boundaries (the Gomez et al. partition model), so a
// device-scheme suspension mid-segment abandons the partial segment just
// as power loss would; completed segments are already persistent.
func (w *MLInference) Backup(now float64) { w.PowerLost(now) }

// Metrics implements mcu.Workload.
func (w *MLInference) Metrics() map[string]float64 {
	return map[string]float64{
		"inferences":    w.inferences,
		"ckpts":         w.ckpts,
		"lost_segments": w.lostSegs,
	}
}
