package workload

import (
	"react/internal/mcu"
)

// MLInference is the ML benchmark the scenario registry adds beyond the
// paper's four: on-device neural inference partitioned into segments with a
// non-volatile checkpoint after each, the memory-aware-partitioning
// structure of Gomez et al. ("Memory-Aware Partitioning of Machine Learning
// Applications for Optimal Energy Use in Batteryless Systems").
//
// Each segment is an atomic burst of compute followed by an FRAM checkpoint
// write; losing power mid-segment wastes only that segment, because the
// previous checkpoint persists. On buffers exposing capacitance levels the
// workload waits in deep sleep until one segment (compute + checkpoint) is
// guaranteed, mirroring the §3.4.1 longevity discipline.
type MLInference struct {
	SleepI   float64 // deep-sleep current between segments
	InferI   float64 // current during a compute segment
	SegTime  float64 // active seconds per segment
	CkptI    float64 // current during the FRAM checkpoint write
	CkptTime float64 // checkpoint write time, seconds
	// Segments is the partition count per full inference; progress across
	// segment boundaries survives power loss.
	Segments int

	seg      int // checkpointed segments of the current inference (non-volatile)
	inSeg    bool
	segLeft  float64
	inCkpt   bool
	ckptLeft float64

	inferences float64
	ckpts      float64
	lostSegs   float64
}

// NewMLInference builds the ML workload with representative costs: four
// ~2 mJ segments per inference (a small quantized CNN on an MSP430-class
// core) and a 0.1 s FRAM checkpoint burst after each.
func NewMLInference(sleepI float64) *MLInference {
	return &MLInference{
		SleepI:   sleepI,
		InferI:   2.5e-3,
		SegTime:  0.8,
		CkptI:    3e-3,
		CkptTime: 0.1,
		Segments: 4,
	}
}

// Name implements mcu.Workload.
func (w *MLInference) Name() string { return "ML" }

// segmentEnergy is the cost of one segment plus its checkpoint at voltage v.
func (w *MLInference) segmentEnergy(v float64) float64 {
	return (w.SegTime*w.InferI + w.CkptTime*w.CkptI) * v
}

// Step implements mcu.Workload.
func (w *MLInference) Step(env *mcu.Env, dt float64) float64 {
	if w.inSeg {
		w.segLeft -= dt * (1 - env.OverheadFrac)
		if w.segLeft <= 0 {
			w.inSeg = false
			w.inCkpt = true
			w.ckptLeft = w.CkptTime
		}
		return w.InferI
	}
	if w.inCkpt {
		w.ckptLeft -= dt
		if w.ckptLeft <= 0 {
			w.inCkpt = false
			w.ckpts++
			w.seg++
			if w.seg >= w.Segments {
				w.seg = 0
				w.inferences++
			}
		}
		return w.CkptI
	}
	if !readyForAtomic(env, w.segmentEnergy(env.Voltage)) {
		return w.SleepI // gather energy for the next segment
	}
	w.inSeg = true
	w.segLeft = w.SegTime
	return w.InferI
}

// PowerOn implements mcu.Workload: the checkpointed segment count was
// restored from FRAM; nothing else to do.
func (w *MLInference) PowerOn(now float64) {}

// PowerLost implements mcu.Workload: the in-flight segment (or its
// unfinished checkpoint) is volatile and is lost; checkpointed segments
// survive.
func (w *MLInference) PowerLost(now float64) {
	if w.inSeg || w.inCkpt {
		w.inSeg = false
		w.inCkpt = false
		w.lostSegs++
	}
}

// Metrics implements mcu.Workload.
func (w *MLInference) Metrics() map[string]float64 {
	return map[string]float64{
		"inferences":    w.inferences,
		"ckpts":         w.ckpts,
		"lost_segments": w.lostSegs,
	}
}
