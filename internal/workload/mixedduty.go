package workload

import (
	"react/internal/mcu"
	"react/internal/radio"
)

// MixedDuty is the MIX benchmark the scenario registry adds beyond the
// paper's four: periodic cheap sensing (reactivity-bound, like SC) feeding
// a non-volatile sample store that is flushed over the radio in atomic
// batches (persistence-bound, like RT). It exercises both demands in one
// program — the regime where a buffer must stay small enough to catch
// deadlines yet grow large enough to afford transmissions.
type MixedDuty struct {
	Radio  radio.Profile
	SleepI float64

	Period    float64 // sensing deadline spacing, seconds
	BurstTime float64 // sensing burst length
	BurstI    float64 // current during a sensing burst
	// BatchN is how many samples accumulate (in FRAM, surviving outages)
	// before the workload transmits the batch as one atomic operation.
	BatchN int

	next      float64
	inBurst   bool
	burstLeft float64
	inTX      bool
	txLeft    float64
	pending   int // samples waiting to be flushed (non-volatile)

	samples  float64
	missed   float64
	failedRd float64 // sensing bursts cut by power loss
	tx       float64
	failedTX float64
	lost     float64 // in-flight samples dropped when a burst was cut
}

// NewMixedDuty builds the MIX workload: a 2 s sensing cadence and
// eight-sample transmit batches over the default radio.
func NewMixedDuty(sleepI float64) *MixedDuty {
	return &MixedDuty{
		Radio:     radio.DefaultProfile(),
		SleepI:    sleepI,
		Period:    2,
		BurstTime: 50e-3,
		BurstI:    2e-3,
		BatchN:    8,
	}
}

// Name implements mcu.Workload.
func (w *MixedDuty) Name() string { return "MIX" }

// Step implements mcu.Workload.
func (w *MixedDuty) Step(env *mcu.Env, dt float64) float64 {
	if w.inBurst {
		w.burstLeft -= dt * (1 - env.OverheadFrac)
		if w.burstLeft <= 0 {
			w.inBurst = false
			w.samples++
			w.pending++
		}
		return w.BurstI
	}
	if w.inTX {
		w.txLeft -= dt
		if w.txLeft <= 0 {
			w.inTX = false
			w.tx++
			w.pending -= w.BatchN
			if w.pending < 0 {
				w.pending = 0
			}
		}
		return w.Radio.TX.Current
	}
	// Sensing deadlines preempt the pending flush: reactivity first, the
	// same receive-or-lose priority the PF benchmark applies (§5.4.1).
	if env.Now >= w.next {
		for w.next <= env.Now-dt {
			w.next += w.Period
			w.missed++
		}
		w.next += w.Period
		w.inBurst = true
		w.burstLeft = w.BurstTime
		return w.BurstI
	}
	if w.pending >= w.BatchN {
		if !readyForAtomic(env, w.Radio.TX.Energy(env.Voltage)) {
			return w.SleepI // charge toward the batch-flush guarantee
		}
		w.inTX = true
		w.txLeft = w.Radio.TX.Duration
		return w.Radio.TX.Current
	}
	return w.SleepI
}

// PowerOn implements mcu.Workload: deadlines that expired while off are
// missed; the pending-sample count was restored from FRAM.
func (w *MixedDuty) PowerOn(now float64) {
	for w.next <= now {
		w.next += w.Period
		w.missed++
	}
}

// PowerLost implements mcu.Workload: an interrupted burst yields no sample
// and an interrupted batch transmission is wasted energy; the pending
// samples themselves survive in FRAM and will be retried. The
// partially-acquired sample of a cut burst is in-flight work the failure
// counter alone doesn't expose — it also accrues to LostWork.
func (w *MixedDuty) PowerLost(now float64) {
	if w.inBurst {
		w.inBurst = false
		w.failedRd++
		w.lost++
	}
	if w.inTX {
		w.inTX = false
		w.failedTX++
	}
}

// Backup implements mcu.Workload: timed sensor reads and radio bursts
// cannot be frozen mid-air, so a checkpoint suspension aborts them with
// the same accounting as power loss; the pending FRAM samples survive in
// the image either way.
func (w *MixedDuty) Backup(now float64) { w.PowerLost(now) }

// LostWork implements mcu.LostWorker: cumulative in-flight samples
// dropped when sensing bursts were cut (by brownout or by a checkpoint
// suspension). Batch transmissions lose no samples — pending counts
// survive in FRAM and are retried.
func (w *MixedDuty) LostWork() float64 { return w.lost }

// Metrics implements mcu.Workload.
func (w *MixedDuty) Metrics() map[string]float64 {
	return map[string]float64{
		"samples":   w.samples,
		"missed":    w.missed,
		"failed":    w.failedRd,
		"tx":        w.tx,
		"tx_failed": w.failedTX,
		"backlog":   float64(w.pending),
	}
}
