// Package workload implements the paper's four software benchmarks (§4.2):
//
//   - DE (Data Encryption): continuous software AES-128 — no reactivity or
//     persistence demands; measures raw throughput and overheads.
//   - SC (Sense and Compute): wake every five seconds to sample and filter
//     a microphone — reactivity-bound, low persistence.
//   - RT (Radio Transmission): send buffered data over radio — atomic,
//     energy-intensive, persistence-bound, no deadline.
//   - PF (Packet Forwarding): receive unpredictable packets and retransmit
//     them — demands both reactivity and persistence.
//
// RT and PF use the buffer's capacitance-level interface when available
// (REACT, Morphy) to implement the §3.4.1 software-directed longevity
// guarantee: sleep until the level implies enough stored energy for the
// atomic operation, instead of attempting doomed transmissions.
package workload

import (
	"math"

	"react/internal/aes"
	"react/internal/buffer"
	"react/internal/dsp"
	"react/internal/mcu"
	"react/internal/radio"
	"react/internal/rng"
	"react/internal/timekeeper"
)

// LongevityMargin scales the energy requirement used when picking a minimum
// capacitance level for an atomic operation, covering conversion losses and
// the sleep current burned while waiting.
const LongevityMargin = 1.4

// readyForAtomic decides whether software should start an atomic operation
// costing `need` joules. On buffers exposing capacitance levels (REACT,
// Morphy) it implements the §3.4.1 longevity guarantee: the level must have
// reached the one whose guarantee covers the cost, and the coarse energy
// estimate from the present level and voltage must still cover it (a level
// reached earlier can be stale after a previous operation drained the
// buffer). Static buffers have no such interface — they attempt the
// operation blindly, which is exactly how the paper's baselines waste
// energy on doomed transmissions.
func readyForAtomic(env *mcu.Env, need float64) bool {
	if env.Levels == nil {
		return true
	}
	need *= LongevityMargin
	lvl, ok := buffer.LevelFor(env.Levels, need)
	if ok && env.Levels.Level() < lvl {
		return false
	}
	return env.UsableEnergy() >= need
}

// DataEncryption is the DE benchmark. Progress is measured in completed
// AES-128 blocks; each block costs a fixed amount of active CPU time, and
// the buffer's software overhead fraction slows progress (this is how the
// paper measures REACT's 1.8 % software penalty).
type DataEncryption struct {
	// ActiveI is the device current while encrypting.
	ActiveI float64
	// BlockTime is the active CPU time per counted encryption unit: one
	// 160-byte record (ten AES blocks) on an MSP430-class core, which
	// lands the counts in the paper's Table 2 magnitude range.
	BlockTime float64

	cipher   *aes.Cipher
	state    [16]byte
	progress float64
	blocks   float64
}

// NewDataEncryption builds the DE workload with the device's active
// current and the default per-block cost.
func NewDataEncryption(activeI float64) *DataEncryption {
	key := []byte("react-de-bench-k")
	c, err := aes.New(key)
	if err != nil {
		panic("workload: static AES key must be valid: " + err.Error())
	}
	return &DataEncryption{ActiveI: activeI, BlockTime: 250e-3, cipher: c}
}

// Name implements mcu.Workload.
func (w *DataEncryption) Name() string { return "DE" }

// Step implements mcu.Workload.
func (w *DataEncryption) Step(env *mcu.Env, dt float64) float64 {
	w.progress += dt * (1 - env.OverheadFrac)
	for w.progress >= w.BlockTime {
		w.progress -= w.BlockTime
		// Do the actual encryption: chain the state so the work cannot be
		// optimized away and stays verifiable.
		w.cipher.Encrypt(w.state[:], w.state[:])
		w.blocks++
	}
	return w.ActiveI
}

// PowerOn implements mcu.Workload.
func (w *DataEncryption) PowerOn(now float64) {}

// PowerLost implements mcu.Workload: the in-flight block is volatile state
// and is lost.
func (w *DataEncryption) PowerLost(now float64) { w.progress = 0 }

// Backup implements mcu.Workload: encryption is pure compute, so the
// backup image freezes the partial block and it resumes after restore —
// the progress a checkpoint scheme saves that a raw brownout destroys.
func (w *DataEncryption) Backup(now float64) {}

// Metrics implements mcu.Workload.
func (w *DataEncryption) Metrics() map[string]float64 {
	return map[string]float64{"blocks": w.blocks}
}

// Digest returns the chained cipher state — a checksum of all work done.
func (w *DataEncryption) Digest() [16]byte { return w.state }

// SenseCompute is the SC benchmark: a deadline fires every Period seconds;
// if the device is awake it runs a Burst of sampling plus digital filtering.
// Deadlines that pass while the device is off are missed — the reactivity
// cost Table 2 exposes for large static buffers.
type SenseCompute struct {
	Period    float64 // deadline spacing (paper: 5 s)
	BurstTime float64 // sampling+filter burst length
	BurstI    float64 // current during the burst (MCU active + microphone)
	SleepI    float64 // deep-sleep current between deadlines

	// Clock, when set, is a remanence timekeeper (the paper's citation
	// [8]) used to re-synchronize the deadline schedule after power
	// failures. When nil the workload assumes perfect timekeeping, which
	// matches the paper's testbed (a secondary MSP430 delivers events).
	Clock *timekeeper.Clock

	next      float64 // next deadline, in the device's believed time
	skew      float64 // believed time − true time, from clock error
	offAt     float64 // true time of the last power loss
	wasOff    bool
	inBurst   bool
	burstLeft float64
	filter    *dsp.Biquad
	noise     *rng.Source

	samples   float64
	missed    float64
	failed    float64
	lastRMS   float64
	timingSum float64 // accumulated |burst start − true schedule slot|
}

// NewSenseCompute builds the SC workload with paper-representative costs.
// The sleepI argument is the MCU's deep-sleep current; the microphone
// (SPU0414 class, ≈120 µA) stays powered so it is ready at each deadline —
// the paper emulates exactly this with an always-on resistor load.
func NewSenseCompute(sleepI float64) *SenseCompute {
	const micI = 120e-6
	return &SenseCompute{
		Period:    5,
		BurstTime: 50e-3,
		BurstI:    2e-3,
		SleepI:    sleepI + micI,
		filter:    dsp.NewLowPass(8000, 500, 0.707),
		noise:     rng.New(0x5c),
	}
}

// Name implements mcu.Workload.
func (w *SenseCompute) Name() string { return "SC" }

// Step implements mcu.Workload.
func (w *SenseCompute) Step(env *mcu.Env, dt float64) float64 {
	if w.inBurst {
		w.burstLeft -= dt * (1 - env.OverheadFrac)
		if w.burstLeft <= 0 {
			w.finishBurst()
		}
		return w.BurstI
	}
	believed := env.Now + w.skew
	if believed >= w.next {
		// Catch up: any deadline older than this step was missed (the
		// device was asleep but did not act — only possible right after
		// boot, handled in PowerOn; this guards drift).
		for w.next <= believed-dt {
			w.next += w.Period
			w.missed++
		}
		w.next += w.Period
		w.inBurst = true
		w.burstLeft = w.BurstTime
		// Timing error against the true schedule grid: how far this
		// burst starts from the nearest k·Period instant.
		off := math.Mod(env.Now, w.Period)
		if off > w.Period/2 {
			off = w.Period - off
		}
		w.timingSum += off
		return w.BurstI
	}
	return w.SleepI
}

// finishBurst performs the actual signal processing: filter a block of
// synthetic microphone samples and record the RMS.
func (w *SenseCompute) finishBurst() {
	w.inBurst = false
	block := make([]float64, 64)
	for i := range block {
		block[i] = w.noise.Norm()
	}
	w.lastRMS = w.filter.ProcessBlock(block)
	w.samples++
}

// PowerOn implements mcu.Workload: deadlines that expired while off are
// missed. With a remanence timekeeper the outage length is only estimated,
// so the believed clock accumulates skew; without one, timekeeping is
// perfect (an external reference, as on the paper's testbed).
func (w *SenseCompute) PowerOn(now float64) {
	if w.Clock != nil && w.wasOff {
		gap := now - w.offAt
		w.Clock.Decay(gap)
		est, ok := w.Clock.Elapsed()
		if ok {
			w.skew += est - gap
		} else {
			// The cell saturated: software has no idea how long it was
			// dark. Restart the schedule from the believed present.
			w.next = now + w.skew + w.Period
		}
	}
	w.wasOff = false
	believed := now + w.skew
	for w.next <= believed {
		w.next += w.Period
		w.missed++
	}
}

// PowerLost implements mcu.Workload: an interrupted burst yields no sample,
// and the timekeeper cell is armed to measure the coming outage.
func (w *SenseCompute) PowerLost(now float64) {
	if w.inBurst {
		w.inBurst = false
		w.failed++
	}
	w.offAt = now
	w.wasOff = true
	if w.Clock != nil {
		w.Clock.Arm()
	}
}

// Backup implements mcu.Workload: a timed sensor read cannot be frozen
// mid-air, so an interrupted burst fails exactly as on power loss, and the
// timekeeper cell is armed in case the scheme gates the device off after
// the burst (re-arming is overwritten by any later real power loss).
func (w *SenseCompute) Backup(now float64) { w.PowerLost(now) }

// Metrics implements mcu.Workload.
func (w *SenseCompute) Metrics() map[string]float64 {
	m := map[string]float64{
		"samples": w.samples,
		"missed":  w.missed,
		"failed":  w.failed,
	}
	if w.samples > 0 {
		m["timing_err_mean"] = w.timingSum / w.samples
	}
	return m
}

// RadioTransmit is the RT benchmark: an endless backlog of buffered data to
// transmit. Each transmission is atomic; on buffers with capacitance
// levels the workload waits in deep sleep for a level guaranteeing the
// transmission energy, otherwise it transmits blindly.
type RadioTransmit struct {
	Radio  radio.Profile
	SleepI float64

	inTX   bool
	txLeft float64

	tx     float64
	failed float64
}

// NewRadioTransmit builds the RT workload.
func NewRadioTransmit(sleepI float64) *RadioTransmit {
	return &RadioTransmit{Radio: radio.DefaultProfile(), SleepI: sleepI}
}

// Name implements mcu.Workload.
func (w *RadioTransmit) Name() string { return "RT" }

// Step implements mcu.Workload.
func (w *RadioTransmit) Step(env *mcu.Env, dt float64) float64 {
	if w.inTX {
		w.txLeft -= dt
		if w.txLeft <= 0 {
			w.inTX = false
			w.tx++
		}
		return w.Radio.TX.Current
	}
	if !readyForAtomic(env, w.Radio.TX.Energy(env.Voltage)) {
		return w.SleepI // §3.4.1: gather energy before the atomic op
	}
	w.inTX = true
	w.txLeft = w.Radio.TX.Duration
	return w.Radio.TX.Current
}

// PowerOn implements mcu.Workload.
func (w *RadioTransmit) PowerOn(now float64) {}

// PowerLost implements mcu.Workload: a transmission cut short is wasted
// energy (the paper's "doomed-to-fail transmissions").
func (w *RadioTransmit) PowerLost(now float64) {
	if w.inTX {
		w.inTX = false
		w.failed++
	}
}

// Backup implements mcu.Workload: a radio transmission cannot be frozen
// mid-air — cutting one for a checkpoint burst wastes it just like a
// brownout would.
func (w *RadioTransmit) Backup(now float64) { w.PowerLost(now) }

// Metrics implements mcu.Workload.
func (w *RadioTransmit) Metrics() map[string]float64 {
	return map[string]float64{"tx": w.tx, "failed": w.failed}
}

// PacketForward is the PF benchmark: packets arrive unpredictably; each
// must be received exactly when it arrives (reactivity) and retransmitted
// later (persistence). Receiving preempts waiting-to-transmit — the §5.4.1
// fungible-energy behaviour.
type PacketForward struct {
	Radio    radio.Profile
	SleepI   float64
	Arrivals []radio.Packet

	nextIdx int
	queue   *radio.Queue

	inRX   bool
	rxLeft float64
	rxPkt  radio.Packet

	inTX   bool
	txLeft float64
	txPkt  radio.Packet

	rx       float64
	tx       float64
	missed   float64
	rxFailed float64
	txFailed float64
}

// NewPacketForward builds the PF workload over an arrival schedule. The
// sleepI argument is the MCU's deep-sleep current; on top of it the device
// keeps a wake-up receiver listening so unpredictable packets can be
// caught at all (the paper's PF peripherals are emulated the same way).
func NewPacketForward(sleepI float64, arrivals []radio.Packet) *PacketForward {
	const wakeupRxI = 20e-6
	return &PacketForward{
		Radio:    radio.DefaultProfile(),
		SleepI:   sleepI + wakeupRxI,
		Arrivals: arrivals,
		queue:    radio.NewQueue(8),
	}
}

// Name implements mcu.Workload.
func (w *PacketForward) Name() string { return "PF" }

// Step implements mcu.Workload.
func (w *PacketForward) Step(env *mcu.Env, dt float64) float64 {
	if w.inRX {
		w.rxLeft -= dt
		if w.rxLeft <= 0 {
			w.inRX = false
			w.rx++
			w.queue.Push(w.rxPkt)
		}
		return w.Radio.RX.Current
	}
	if w.inTX {
		w.txLeft -= dt
		if w.txLeft <= 0 {
			w.inTX = false
			w.tx++
		}
		return w.Radio.TX.Current
	}
	// A new arrival preempts everything else (receive-or-lose): software
	// disregards any pending transmit-longevity wait to serve it (§5.4.1).
	// Arrivals that slipped past while busy or asleep within this step, or
	// that find the buffer too depleted to finish a receive window, are
	// missed.
	for w.nextIdx < len(w.Arrivals) && w.Arrivals[w.nextIdx].Arrival <= env.Now {
		pkt := w.Arrivals[w.nextIdx]
		w.nextIdx++
		if pkt.Arrival <= env.Now-dt {
			w.missed++
			continue
		}
		if env.Levels != nil && env.UsableEnergy() < w.Radio.RX.Energy(env.Voltage)*LongevityMargin {
			w.missed++
			continue
		}
		w.inRX = true
		w.rxLeft = w.Radio.RX.Duration
		w.rxPkt = pkt
		return w.Radio.RX.Current
	}
	if w.queue.Len() > 0 {
		if !readyForAtomic(env, w.Radio.TX.Energy(env.Voltage)) {
			return w.SleepI // charge toward the transmit guarantee
		}
		pkt, _ := w.queue.Pop()
		w.inTX = true
		w.txLeft = w.Radio.TX.Duration
		w.txPkt = pkt
		return w.Radio.TX.Current
	}
	return w.SleepI
}

// PowerOn implements mcu.Workload: arrivals that occurred while off were
// missed.
func (w *PacketForward) PowerOn(now float64) {
	for w.nextIdx < len(w.Arrivals) && w.Arrivals[w.nextIdx].Arrival <= now {
		w.nextIdx++
		w.missed++
	}
}

// PowerLost implements mcu.Workload: an interrupted receive loses the
// packet, and an interrupted transmission loses it too — the energy spent
// is wasted (the paper's "doomed-to-fail transmissions") and the device
// goes back to listening after it recovers rather than burning every
// future charge cycle on retries.
func (w *PacketForward) PowerLost(now float64) {
	if w.inRX {
		w.inRX = false
		w.rxFailed++
		w.missed++
	}
	if w.inTX {
		w.inTX = false
		w.txFailed++
	}
}

// Backup implements mcu.Workload: in-flight radio operations cannot be
// suspended — an interrupted receive loses its packet and an interrupted
// transmission is wasted energy, the same accounting as power loss. The
// queued packets survive in the image.
func (w *PacketForward) Backup(now float64) { w.PowerLost(now) }

// Metrics implements mcu.Workload.
func (w *PacketForward) Metrics() map[string]float64 {
	return map[string]float64{
		"rx":        w.rx,
		"tx":        w.tx,
		"missed":    w.missed,
		"rx_failed": w.rxFailed,
		"tx_failed": w.txFailed,
		"dropped":   float64(w.queue.Dropped),
	}
}
