// Package runner is the shared orchestration layer for every multi-run
// workload in this repository: a bounded worker pool with deterministic job
// dispatch, context cancellation, per-job error capture and optional
// progress reporting, plus a dense grid result store and a generic sweep
// primitive built on top of it.
//
// The experiments package, the cmd/ tools and the top-level benchmarks all
// schedule simulations through this package instead of hand-rolling
// goroutine fan-out. Because every job writes only its own pre-allocated
// slot, results are deterministic for any worker count: the same seeds
// produce the same sim.Result values whether a batch runs on one worker or
// sixty-four.
package runner

import (
	"context"
	"math"
	"runtime"
	"sync"
)

// Progress reports one completed job to a Runner's OnProgress callback.
type Progress struct {
	// Done is the number of jobs completed so far, including this one.
	Done int
	// Total is the batch size.
	Total int
	// Index identifies the job that just finished.
	Index int
	// Err is the job's error, if it failed.
	Err error
}

// Runner executes batches of independent jobs over a bounded worker pool.
// The zero value (and a nil *Runner) is ready to use and sizes the pool to
// GOMAXPROCS. A Runner carries no per-batch state and may be reused and
// shared across concurrent batches.
type Runner struct {
	// Workers bounds the concurrency; 0 or negative means GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is called after every job completes.
	// Calls are serialized, but jobs finish — and therefore report — in
	// arbitrary order; Progress.Done is monotonic regardless.
	OnProgress func(Progress)
}

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// Do runs fn(ctx, i) for every i in [0, n) across the worker pool and waits
// for completion. Jobs are dispatched strictly in index order, so a
// single-worker runner executes the batch sequentially in order.
//
// Every job runs to completion even when a sibling fails; after the batch
// drains, the first error by job index (not by completion time) is
// returned, so the reported error is deterministic across worker counts.
// When ctx is cancelled, dispatch stops, in-flight jobs finish, and
// ctx.Err() is returned.
func (r *Runner) Do(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := r.workers()
	if workers > n {
		workers = n
	}

	jobs := make(chan int) // unbuffered, so dispatch order is pickup order
	errs := make([]error, n)
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				err := fn(ctx, i)
				mu.Lock()
				errs[i] = err
				done++
				if r != nil && r.OnProgress != nil {
					r.OnProgress(Progress{Done: done, Total: n, Index: i, Err: err})
				}
				mu.Unlock()
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sweep runs fn once per point over r's worker pool and returns the results
// in point order — the primitive behind multi-seed runs, capacitance
// sweeps, DT sweeps and any other parameter study. A nil runner uses the
// default pool. On error the results gathered so far are discarded and the
// first failing point's error (by index) is returned.
func Sweep[P, R any](ctx context.Context, r *Runner, points []P, fn func(ctx context.Context, p P) (R, error)) ([]R, error) {
	out := make([]R, len(points))
	err := r.Do(ctx, len(points), func(ctx context.Context, i int) error {
		res, err := fn(ctx, points[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Slots returns the worker-pool size the runner would use for an unbounded
// batch — the partition width for callers that pre-chunk work into one
// contiguous piece per worker (see Chunks). A nil runner reports the
// default pool size.
func (r *Runner) Slots() int { return r.workers() }

// Chunks partitions [0, n) into at most parts contiguous half-open ranges
// [lo, hi) of near-equal size, in order. It is the batching complement to
// Do: jobs that would queue behind a full pool are merged into one chunk
// instead, so a lockstep executor can run them over a single trace pass
// while a pool with slots to spare still gets one chunk per slot. n <= 0
// yields no chunks; parts <= 0 is treated as one.
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + (n-lo)/(parts-p)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// Seeds returns the n deterministic sweep seeds 1..n (seed 0 means "default"
// throughout the repository, so sweeps start at 1).
func Seeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}

// Linspace returns n evenly spaced values from lo to hi inclusive — the
// usual axis for capacitance and threshold sweeps. n <= 0 is an empty
// axis.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	v := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range v {
		v[i] = lo + float64(i)*step
	}
	v[n-1] = hi
	return v
}

// Logspace returns n logarithmically spaced values from lo to hi inclusive
// (both must be positive) — the usual axis for DT and buffer-size sweeps
// spanning decades. n <= 0 is an empty axis.
func Logspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	v := make([]float64, n)
	ratio := hi / lo
	for i := range v {
		v[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	v[n-1] = hi
	return v
}
