package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"react/internal/buffer"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/sim"
	"react/internal/trace"
	"react/internal/workload"
)

func TestDoSequentialOrder(t *testing.T) {
	r := &Runner{Workers: 1}
	var order []int
	err := r.Do(context.Background(), 10, func(_ context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker ran out of order: %v", order)
		}
	}
}

func TestDoNilRunnerAndZeroJobs(t *testing.T) {
	var r *Runner
	ran := 0
	if err := r.Do(context.Background(), 3, func(_ context.Context, i int) error {
		ran++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("nil runner ran %d of 3 jobs", ran)
	}
	if err := r.Do(context.Background(), 0, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestDoErrorFirstByIndex: with several failing jobs, the reported error is
// the lowest-index failure regardless of worker count or completion order,
// and every job still runs.
func TestDoErrorFirstByIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		r := &Runner{Workers: workers}
		var ran atomic.Int32
		err := r.Do(context.Background(), 20, func(_ context.Context, i int) error {
			ran.Add(1)
			if i == 7 || i == 13 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Errorf("workers=%d: want first error by index, got %v", workers, err)
		}
		if ran.Load() != 20 {
			t.Errorf("workers=%d: a failure stopped the batch early: %d of 20 ran", workers, ran.Load())
		}
	}
}

// TestDoCancellation: cancelling the context mid-batch stops dispatch,
// returns ctx.Err(), and leaves the undispatched tail unrun.
func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Workers: 1}
	var ran atomic.Int32
	err := r.Do(ctx, 1000, func(_ context.Context, i int) error {
		if i == 4 {
			cancel()
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1000 || n < 5 {
		t.Fatalf("cancellation mid-grid should stop dispatch: %d of 1000 ran", n)
	}
}

func TestDoProgress(t *testing.T) {
	var events []Progress
	r := &Runner{Workers: 3, OnProgress: func(p Progress) { events = append(events, p) }}
	if err := r.Do(context.Background(), 12, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(events) != 12 {
		t.Fatalf("want 12 progress events, got %d", len(events))
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != 12 {
			t.Fatalf("event %d: Done=%d Total=%d", i, p.Done, p.Total)
		}
	}
}

func TestGridIndexing(t *testing.T) {
	traces := []*trace.Trace{
		{Name: "t0", DT: 1, Power: []float64{1e-3}},
		{Name: "t1", DT: 1, Power: []float64{2e-3}},
	}
	g := NewGrid([]string{"A", "B", "C"}, traces, []string{"x", "y"})
	if g.Len() != 12 {
		t.Fatalf("Len = %d, want 12", g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		bench, tr, buf := g.Cell(i)
		if got := g.Index(bench, tr.Name, buf); got != i {
			t.Fatalf("Cell/Index round trip: %d -> (%s,%s,%s) -> %d", i, bench, tr.Name, buf, got)
		}
	}
	g.Set("B", "t1", "y", sim.Result{Latency: 42})
	if got := g.At("B", "t1", "y").Latency; got != 42 {
		t.Fatalf("At after Set = %g", got)
	}
	seen := 0
	g.Each(func(bench string, tr *trace.Trace, buf string, r sim.Result) { seen++ })
	if seen != 12 {
		t.Fatalf("Each visited %d cells", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown axis name must panic")
		}
	}()
	g.At("A", "t0", "nope")
}

func TestSweepOrderAndError(t *testing.T) {
	vals, err := Sweep(context.Background(), nil, []int{10, 20, 30},
		func(_ context.Context, p int) (int, error) { return p * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 20 || vals[1] != 40 || vals[2] != 60 {
		t.Fatalf("sweep results out of order: %v", vals)
	}
	_, err = Sweep(context.Background(), nil, []int{1, 2},
		func(_ context.Context, p int) (int, error) {
			if p == 2 {
				return 0, errors.New("boom")
			}
			return p, nil
		})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("sweep error not propagated: %v", err)
	}
}

func TestAxisHelpers(t *testing.T) {
	if s := Seeds(3); s[0] != 1 || s[2] != 3 {
		t.Errorf("Seeds(3) = %v", s)
	}
	lin := Linspace(0, 10, 5)
	if lin[0] != 0 || lin[4] != 10 || lin[2] != 5 {
		t.Errorf("Linspace = %v", lin)
	}
	log := Logspace(1e-3, 1, 4)
	if log[0] != 1e-3 || log[3] != 1 {
		t.Errorf("Logspace endpoints = %v", log)
	}
	if len(Linspace(1, 2, 1)) != 1 || len(Logspace(1, 2, 1)) != 1 {
		t.Error("single-point axis lengths")
	}
	if len(Linspace(1, 2, 0)) != 0 || len(Logspace(1, 2, -3)) != 0 {
		t.Error("empty axes must have no points")
	}
}

// simCell builds a deterministic simulation cell: a static buffer sized by
// the buffer axis name, driven by the cell's trace, running DE.
func simCell(_ context.Context, bench string, tr *trace.Trace, buf string) (sim.Result, error) {
	size := map[string]float64{"small": 770e-6, "large": 10e-3}[buf]
	return sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(tr, nil),
		Buffer: buffer.NewStatic(buffer.StaticConfig{
			Name: buf, C: size, VMax: 3.6, LeakI: size * 1e-3, VRated: 6.3,
		}),
		Device: mcu.NewDevice(mcu.DefaultProfile(), workload.NewDataEncryption(0.6e-3)),
	})
}

func burstTrace(name string) *trace.Trace {
	tr := &trace.Trace{Name: name, DT: 1, Power: make([]float64, 120)}
	for i := range tr.Power {
		if i%10 < 3 {
			tr.Power[i] = 30e-3
		} else {
			tr.Power[i] = 0.3e-3
		}
	}
	return tr
}

// TestRunGridDeterministicAcrossWorkers: the same grid produces bit-equal
// results whether it runs on one worker or many — the property the dense
// slice-per-job design guarantees.
func TestRunGridDeterministicAcrossWorkers(t *testing.T) {
	benches := []string{"DE"}
	traces := []*trace.Trace{burstTrace("b0"), burstTrace("b1")}
	buffers := []string{"small", "large"}

	ref, err := RunGrid(context.Background(), &Runner{Workers: 1}, benches, traces, buffers, simCell)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		g, err := RunGrid(context.Background(), &Runner{Workers: workers}, benches, traces, buffers, simCell)
		if err != nil {
			t.Fatal(err)
		}
		g.Each(func(bench string, tr *trace.Trace, buf string, r sim.Result) {
			want := ref.At(bench, tr.Name, buf)
			if r.OnTime != want.OnTime || r.Latency != want.Latency ||
				r.Ledger != want.Ledger || r.Stored != want.Stored {
				t.Errorf("workers=%d: %s/%s/%s differs from sequential run",
					workers, bench, tr.Name, buf)
			}
			for k, v := range want.Metrics {
				if r.Metrics[k] != v {
					t.Errorf("workers=%d: %s/%s/%s metric %s: %g != %g",
						workers, bench, tr.Name, buf, k, r.Metrics[k], v)
				}
			}
		})
	}
}

// TestRunGridErrorLabelsCell: a failing cell's error carries its grid
// coordinates.
func TestRunGridErrorLabelsCell(t *testing.T) {
	traces := []*trace.Trace{burstTrace("b0")}
	_, err := RunGrid(context.Background(), nil, []string{"DE"}, traces, []string{"small", "bad"},
		func(ctx context.Context, bench string, tr *trace.Trace, buf string) (sim.Result, error) {
			if buf == "bad" {
				return sim.Result{}, errors.New("no such buffer")
			}
			return simCell(ctx, bench, tr, buf)
		})
	if err == nil {
		t.Fatal("want error from failing cell")
	}
	if want := "DE/b0/bad: no such buffer"; err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
}
