package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsBatchToCompletion(t *testing.T) {
	var ran [8]int32
	j := Submit(context.Background(), &Runner{Workers: 3}, len(ran), func(_ context.Context, i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if j.Running() {
		t.Error("a drained job must not report running")
	}
	done, failed, total := j.Progress()
	if done != len(ran) || failed != 0 || total != len(ran) {
		t.Errorf("progress %d/%d failed %d, want %d/%d failed 0", done, total, failed, len(ran), len(ran))
	}
	for i, n := range ran {
		if n != 1 {
			t.Errorf("job %d ran %d times", i, n)
		}
	}
}

func TestSubmitReportsFirstErrorByIndex(t *testing.T) {
	j := Submit(context.Background(), nil, 6, func(_ context.Context, i int) error {
		if i == 2 || i == 4 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err := j.Wait(); err == nil || err.Error() != "job 2 failed" {
		t.Errorf("want the first error by index, got %v", err)
	}
	if _, failed, _ := j.Progress(); failed != 2 {
		t.Errorf("failed count %d, want 2", failed)
	}
}

func TestSubmitCancelStopsDispatch(t *testing.T) {
	started := make(chan int, 64)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var j *Job
	j = Submit(context.Background(), &Runner{Workers: 1}, 64, func(ctx context.Context, i int) error {
		started <- i
		if i == 0 {
			wg.Done()
			<-release
		}
		return nil
	})
	wg.Wait() // job 0 is in flight on the single worker
	j.Cancel()
	close(release)
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	close(started)
	n := 0
	for range started {
		n++
	}
	if n >= 64 {
		t.Errorf("cancellation did not stop dispatch: %d jobs started", n)
	}
	if done, _, total := j.Progress(); done >= total {
		t.Errorf("progress %d/%d after cancel, want a partial batch", done, total)
	}
}

func TestSubmitHonoursParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := Submit(ctx, nil, 4, func(_ context.Context, i int) error { return nil })
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("want the parent cancellation, got %v", err)
	}
}

func TestJobProgressIsObservableMidFlight(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	j := Submit(context.Background(), &Runner{Workers: 1}, 3, func(_ context.Context, i int) error {
		once.Do(func() { close(first) })
		if i == 1 {
			<-release
		}
		return nil
	})
	<-first
	if !j.Running() {
		t.Error("job must report running while jobs remain")
	}
	deadline := time.After(5 * time.Second)
	for {
		if done, _, _ := j.Progress(); done >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("progress never advanced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}
