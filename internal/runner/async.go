package runner

import (
	"context"
	"sync"
)

// Job is the handle to a batch running asynchronously on a Runner — the
// submit/poll/cancel primitive the service layer builds its run queue on.
// A Job is created by Submit and is safe for concurrent use.
type Job struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	total     int
	completed int
	failed    int
	err       error
}

// Submit starts fn(ctx, i) for every i in [0, n) over r's worker pool in
// the background and returns immediately. The batch has Do's semantics —
// index-ordered dispatch, every job runs to completion even when a sibling
// fails, first error by index — but completion is observed through the
// returned handle instead of a blocking call. Cancelling the handle (or
// ctx) stops dispatch and lets in-flight jobs finish.
func Submit(ctx context.Context, r *Runner, n int, fn func(ctx context.Context, i int) error) *Job {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	j := &Job{cancel: cancel, done: make(chan struct{}), total: n}
	go func() {
		defer cancel() // release the derived context once the batch drains
		err := r.Do(ctx, n, func(ctx context.Context, i int) error {
			err := fn(ctx, i)
			j.mu.Lock()
			j.completed++
			if err != nil {
				j.failed++
			}
			j.mu.Unlock()
			return err
		})
		j.mu.Lock()
		j.err = err
		j.mu.Unlock()
		close(j.done)
	}()
	return j
}

// Cancel stops dispatching new jobs; in-flight jobs finish. Wait (or Done)
// still reports completion afterwards, with context.Canceled as the error.
// Cancel is idempotent.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the batch has fully drained.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the batch drains and returns its outcome: nil when
// every job succeeded, the first error by index when one failed, or the
// context's error when the batch was cancelled.
func (j *Job) Wait() error {
	<-j.done
	return j.Err()
}

// Err returns the batch outcome, or nil while the batch is still running
// (poll Running to distinguish "running" from "succeeded").
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Running reports whether the batch is still draining.
func (j *Job) Running() bool {
	select {
	case <-j.done:
		return false
	default:
		return true
	}
}

// Progress returns how many jobs have finished (including failed ones, as
// the second count) out of the batch total.
func (j *Job) Progress() (completed, failed, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed, j.failed, j.total
}
