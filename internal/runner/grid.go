package runner

import (
	"context"
	"fmt"

	"react/internal/sim"
	"react/internal/trace"
)

// Grid is a dense result store over the evaluation's three axes. Cells live
// in one flat slice indexed benchmark-major (benchmark × trace × buffer),
// replacing the triple-nested maps the grid-shaped drivers used to carry:
// O(1) typed access, cache-friendly iteration, and no per-lookup hashing.
type Grid struct {
	Benchmarks []string
	Traces     []*trace.Trace
	Buffers    []string

	results  []sim.Result
	benchIdx map[string]int
	traceIdx map[string]int
	bufIdx   map[string]int
}

// NewGrid builds an empty grid over the given axes. Axis names must be
// unique — duplicates would make the name-based accessors silently read
// one cell for several coordinates, so they panic (a caller bug, like the
// unknown-name panics in Index). Multi-seed studies over same-named
// traces belong in a Sweep, or need per-seed trace names.
func NewGrid(benchmarks []string, traces []*trace.Trace, buffers []string) *Grid {
	g := &Grid{
		Benchmarks: benchmarks,
		Traces:     traces,
		Buffers:    buffers,
		results:    make([]sim.Result, len(benchmarks)*len(traces)*len(buffers)),
		benchIdx:   make(map[string]int, len(benchmarks)),
		traceIdx:   make(map[string]int, len(traces)),
		bufIdx:     make(map[string]int, len(buffers)),
	}
	for i, b := range benchmarks {
		if _, dup := g.benchIdx[b]; dup {
			panic("runner: duplicate benchmark " + b)
		}
		g.benchIdx[b] = i
	}
	for i, tr := range traces {
		if _, dup := g.traceIdx[tr.Name]; dup {
			panic("runner: duplicate trace " + tr.Name)
		}
		g.traceIdx[tr.Name] = i
	}
	for i, b := range buffers {
		if _, dup := g.bufIdx[b]; dup {
			panic("runner: duplicate buffer " + b)
		}
		g.bufIdx[b] = i
	}
	return g
}

// Len returns the number of cells.
func (g *Grid) Len() int { return len(g.results) }

func (g *Grid) flatten(b, t, u int) int {
	return (b*len(g.Traces)+t)*len(g.Buffers) + u
}

// Index returns the flat cell index for named axes values. Unknown names
// panic — the axes are fixed at construction, so a miss is a caller bug,
// exactly like the experiment factories' unknown-name panics.
func (g *Grid) Index(bench, traceName, buffer string) int {
	b, ok := g.benchIdx[bench]
	if !ok {
		panic("runner: unknown benchmark " + bench)
	}
	t, ok := g.traceIdx[traceName]
	if !ok {
		panic("runner: unknown trace " + traceName)
	}
	u, ok := g.bufIdx[buffer]
	if !ok {
		panic("runner: unknown buffer " + buffer)
	}
	return g.flatten(b, t, u)
}

// At returns the result of one named cell.
func (g *Grid) At(bench, traceName, buffer string) sim.Result {
	return g.results[g.Index(bench, traceName, buffer)]
}

// Set stores the result of one named cell.
func (g *Grid) Set(bench, traceName, buffer string, r sim.Result) {
	g.results[g.Index(bench, traceName, buffer)] = r
}

// Cell returns the axes values of flat index i.
func (g *Grid) Cell(i int) (bench string, tr *trace.Trace, buffer string) {
	nb := len(g.Buffers)
	nt := len(g.Traces)
	return g.Benchmarks[i/(nt*nb)], g.Traces[(i/nb)%nt], g.Buffers[i%nb]
}

// Each calls fn for every cell in benchmark-major order.
func (g *Grid) Each(fn func(bench string, tr *trace.Trace, buffer string, r sim.Result)) {
	for i, r := range g.results {
		bench, tr, buffer := g.Cell(i)
		fn(bench, tr, buffer, r)
	}
}

// MeanOverTraces returns the mean of metric(result) across the trace axis
// for one benchmark × buffer column — the aggregation every table and
// figure performs.
func (g *Grid) MeanOverTraces(bench, buffer string, metric func(sim.Result) float64) float64 {
	if len(g.Traces) == 0 {
		return 0
	}
	var sum float64
	for _, tr := range g.Traces {
		sum += metric(g.At(bench, tr.Name, buffer))
	}
	return sum / float64(len(g.Traces))
}

// CellFunc simulates one grid cell.
type CellFunc func(ctx context.Context, bench string, tr *trace.Trace, buffer string) (sim.Result, error)

// BatchCellFunc simulates one benchmark × trace group of grid cells — the
// whole buffer row — in one call, returning results index-parallel to the
// grid's buffer axis.
type BatchCellFunc func(ctx context.Context, bench string, tr *trace.Trace, buffers []string) ([]sim.Result, error)

// RunGridBatched populates a new grid like RunGrid, but dispatches one job
// per benchmark × trace group instead of one per cell, so a group's buffers
// can share a single lockstep pass over the trace (scenario.RunBatch). The
// flat grid layout is buffer-minor, so each group fills one contiguous
// results stripe. Group errors are labeled with their coordinates; the
// first failing group in grid order is reported.
func RunGridBatched(ctx context.Context, r *Runner, benchmarks []string, traces []*trace.Trace, buffers []string, group BatchCellFunc) (*Grid, error) {
	g := NewGrid(benchmarks, traces, buffers)
	nb := len(buffers)
	err := r.Do(ctx, len(benchmarks)*len(traces), func(ctx context.Context, gi int) error {
		bench := benchmarks[gi/len(traces)]
		tr := traces[gi%len(traces)]
		res, err := group(ctx, bench, tr, buffers)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", bench, tr.Name, err)
		}
		if len(res) != nb {
			return fmt.Errorf("%s/%s: group returned %d results for %d buffers", bench, tr.Name, len(res), nb)
		}
		copy(g.results[gi*nb:(gi+1)*nb], res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// RunGrid populates a new grid by running cell for every benchmark × trace ×
// buffer combination over r's worker pool (nil r uses the default pool).
// Cell errors are labeled with their coordinates; the first failing cell in
// grid order is reported.
func RunGrid(ctx context.Context, r *Runner, benchmarks []string, traces []*trace.Trace, buffers []string, cell CellFunc) (*Grid, error) {
	g := NewGrid(benchmarks, traces, buffers)
	err := r.Do(ctx, g.Len(), func(ctx context.Context, i int) error {
		bench, tr, buffer := g.Cell(i)
		res, err := cell(ctx, bench, tr, buffer)
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", bench, tr.Name, buffer, err)
		}
		g.results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
