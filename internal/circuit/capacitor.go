// Package circuit models the analog energy-storage elements that batteryless
// buffers are built from: capacitors, series chains, diodes, and the
// charge-sharing physics of switched-capacitor networks.
//
// Everything is charge-based. A capacitor stores charge Q on capacitance C;
// voltage is Q/C and energy is Q²/(2C). Reconfiguring a charged network
// conserves charge at every node but not energy: connecting elements at
// different potentials in parallel dissipates the difference in the switch
// resistance. The solvers in this package compute that dissipation exactly
// (E_before − E_after), which is the quantity REACT's bank-isolation design
// exists to avoid and the quantity that sinks Morphy-style unified arrays.
//
// Units are SI throughout: farads, coulombs, volts, joules, seconds, amps.
package circuit

// Capacitor is a single energy-storage element.
//
// The zero value is an empty 0 F capacitor and is not useful; construct with
// a positive capacitance. VMax, when positive, is the maximum operating
// voltage: charge pushed above it is clipped (discarded as heat by the
// protection circuit). LeakI is the leakage current at VRated; actual
// leakage scales linearly with the present voltage.
type Capacitor struct {
	C      float64 // capacitance, farads
	Q      float64 // stored charge, coulombs
	LeakI  float64 // leakage current at VRated, amps
	VRated float64 // voltage at which LeakI is specified
	VMax   float64 // maximum operating voltage; 0 disables clipping
}

// Voltage returns the terminal voltage Q/C.
func (c *Capacitor) Voltage() float64 {
	if c.C == 0 {
		return 0
	}
	return c.Q / c.C
}

// Energy returns the stored energy Q²/(2C).
func (c *Capacitor) Energy() float64 {
	if c.C == 0 {
		return 0
	}
	return c.Q * c.Q / (2 * c.C)
}

// Capacitance returns C. It exists so *Capacitor satisfies Node.
func (c *Capacitor) Capacitance() float64 { return c.C }

// AddCharge moves dq onto (or, if negative, off) the capacitor. Charge may
// not go negative; over-draw is truncated at empty. The return value is the
// charge actually moved.
func (c *Capacitor) AddCharge(dq float64) float64 {
	if c.Q+dq < 0 {
		dq = -c.Q
	}
	c.Q += dq
	return dq
}

// SetVoltage forces the capacitor to voltage v, discarding or creating
// charge as needed. Intended for initial conditions only.
func (c *Capacitor) SetVoltage(v float64) {
	c.Q = v * c.C
}

// Clip enforces the maximum operating voltage and returns the energy
// discarded (0 when within limits or when VMax is unset).
func (c *Capacitor) Clip() float64 {
	if c.VMax <= 0 || c.Voltage() <= c.VMax {
		return 0
	}
	before := c.Energy()
	c.Q = c.VMax * c.C
	return before - c.Energy()
}

// Leak removes leakage charge for an interval dt and returns the energy
// lost. Leakage current scales linearly with voltage relative to VRated,
// which matches datasheet behaviour closely enough for the µA currents
// involved.
func (c *Capacitor) Leak(dt float64) float64 {
	if c.LeakI <= 0 || c.Q <= 0 {
		return 0
	}
	v := c.Voltage()
	scale := 1.0
	if c.VRated > 0 {
		scale = v / c.VRated
	}
	dq := c.LeakI * scale * dt
	if dq > c.Q {
		dq = c.Q
	}
	before := c.Energy()
	c.Q -= dq
	return before - c.Energy()
}
