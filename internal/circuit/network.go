package circuit

import "math"

// Node is any storage element that presents a two-terminal capacitive
// interface: an equivalent capacitance, a terminal voltage, and the ability
// to accept terminal charge. Single capacitors, series chains, and REACT
// banks all satisfy it, which lets the charge-sharing solvers below operate
// on heterogeneous networks.
type Node interface {
	// Capacitance is the equivalent capacitance seen at the terminal.
	Capacitance() float64
	// Voltage is the terminal voltage.
	Voltage() float64
	// AddCharge moves dq through the terminal (negative to withdraw) and
	// returns the charge actually moved (withdrawals stop at empty).
	AddCharge(dq float64) float64
	// Energy is the total energy stored inside the element.
	Energy() float64
}

// Chain is a set of capacitors connected in series. Terminal charge passes
// through every member equally; terminal voltage is the sum of member
// voltages. Members need not hold equal charge — an imbalanced chain is how
// Morphy-style networks lose energy when later re-paralleled.
type Chain struct {
	Caps []*Capacitor

	// seriesC caches the series-equivalent capacitance. Member capacitances
	// are fixed for the life of a chain (only charge moves), so NewChain
	// computes it once; Capacitance is on the simulation's per-tick path.
	seriesC   float64
	hasCached bool
}

// NewChain builds a series chain over caps.
func NewChain(caps ...*Capacitor) *Chain {
	return &Chain{Caps: caps, seriesC: seriesCapacitance(caps), hasCached: true}
}

func seriesCapacitance(caps []*Capacitor) float64 {
	inv := 0.0
	for _, c := range caps {
		if c.C == 0 {
			return 0
		}
		inv += 1 / c.C
	}
	if inv == 0 {
		return 0
	}
	return 1 / inv
}

// Capacitance returns the series-equivalent capacitance 1/Σ(1/Cᵢ).
func (ch *Chain) Capacitance() float64 {
	if ch.hasCached {
		return ch.seriesC
	}
	return seriesCapacitance(ch.Caps)
}

// Voltage returns the terminal voltage Σ Vᵢ.
func (ch *Chain) Voltage() float64 {
	v := 0.0
	for _, c := range ch.Caps {
		v += c.Voltage()
	}
	return v
}

// Energy returns the total stored energy Σ qᵢ²/(2Cᵢ).
func (ch *Chain) Energy() float64 {
	e := 0.0
	for _, c := range ch.Caps {
		e += c.Energy()
	}
	return e
}

// AddCharge moves dq through the chain terminal: every member's charge
// changes by dq (series current is common). A member whose charge crosses
// zero keeps conducting and charges in reverse — exactly what happens to a
// drained capacitor in a series string without bypass diodes. Discharge is
// bounded by the terminal voltage reaching zero, not by any single member.
func (ch *Chain) AddCharge(dq float64) float64 {
	for _, c := range ch.Caps {
		c.Q += dq
	}
	return dq
}

// EqualizeParallel connects the nodes in parallel and lets charge
// redistribute until all terminal voltages are equal, conserving total
// terminal charge. It returns the common final voltage and the energy
// dissipated in the interconnect (always ≥ 0 up to rounding).
//
// This is the lossy operation at the heart of the paper's §3.3.1 analysis:
// a unified switched-capacitor array pays it on every reconfiguration,
// while REACT's isolated banks never connect charged elements at different
// potentials.
func EqualizeParallel(nodes ...Node) (v, loss float64) {
	if len(nodes) == 0 {
		return 0, 0
	}
	var csum, qsum float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, n := range nodes {
		c := n.Capacitance()
		nv := n.Voltage()
		csum += c
		qsum += c * nv
		if nv < minV {
			minV = nv
		}
		if nv > maxV {
			maxV = nv
		}
	}
	if csum == 0 {
		return 0, 0
	}
	v = qsum / csum
	// Fast path: a network already within a nanovolt of equal is equalized
	// in steady state (the redistribution and its dissipation are below
	// rounding), and simulation loops call this every tick.
	if maxV-minV < 1e-9 {
		return v, 0
	}
	var before float64
	for _, n := range nodes {
		before += n.Energy()
	}
	after := 0.0
	for _, n := range nodes {
		n.AddCharge(n.Capacitance() * (v - n.Voltage()))
		after += n.Energy()
	}
	loss = before - after
	if loss < 0 && loss > -1e-15 {
		loss = 0 // rounding guard
	}
	return v, loss
}

// TransferOneWay conducts charge from src to dst through a diode with
// forward drop vDrop, stopping when V(src) = V(dst) + vDrop (or immediately
// if src is not above that level). It returns the charge moved and the
// energy dissipated in the diode and interconnect.
func TransferOneWay(src, dst Node, vDrop float64) (dq, loss float64) {
	vs, vd := src.Voltage(), dst.Voltage()
	if vs <= vd+vDrop {
		return 0, 0
	}
	cs, cd := src.Capacitance(), dst.Capacitance()
	if cs == 0 || cd == 0 {
		return 0, 0
	}
	// Charge balance: vs - dq/cs = vd + dq/cd + vDrop.
	dq = (vs - vd - vDrop) * cs * cd / (cs + cd)
	before := src.Energy() + dst.Energy()
	src.AddCharge(-dq)
	dst.AddCharge(dq)
	loss = before - src.Energy() - dst.Energy()
	if loss < 0 && loss > -1e-15 {
		loss = 0
	}
	return dq, loss
}

// StoreEnergy delivers dE joules into the node at constant power through a
// diode with forward drop vDrop, integrating the charge exactly (including
// from zero volts). It returns the charge delivered and the energy lost in
// the drop; the remainder, dE − loss, ends up stored.
//
// Derivation: pushing charge dq into capacitance C at initial voltage v
// stores v·dq + dq²/(2C); the source additionally pays vDrop·dq. Solving
// dE = (v+vDrop)·dq + dq²/(2C) for dq gives the quadratic below.
func StoreEnergy(n Node, dE, vDrop float64) (dq, loss float64) {
	if dE <= 0 {
		return 0, 0
	}
	c := n.Capacitance()
	if c == 0 {
		return 0, dE // nowhere to put it; burned in the source
	}
	v := n.Voltage() + vDrop
	dq = c * (math.Sqrt(v*v+2*dE/c) - v)
	n.AddCharge(dq)
	loss = vDrop * dq
	return dq, loss
}

// DrawEnergy withdraws up to dE joules from the node and returns the energy
// actually removed (less than dE only if the node empties first). The
// withdrawal integrates charge exactly over the voltage sag.
func DrawEnergy(n Node, dE float64) float64 {
	if dE <= 0 {
		return 0
	}
	c := n.Capacitance()
	v := n.Voltage()
	if c == 0 || v <= 0 {
		return 0
	}
	before := n.Energy()
	// Energy extractable at the terminal before voltage reaches zero.
	maxTerm := c * v * v / 2
	var dq float64
	// v·dq − dq²/(2C) = dE  ⇒  dq = C(v − sqrt(v² − 2dE/C)). When dE is
	// within rounding of maxTerm the radicand can come out negative even
	// though dE < maxTerm held; both cases drain the node fully.
	if rad := v*v - 2*dE/c; dE < maxTerm && rad > 0 {
		dq = c * (v - math.Sqrt(rad))
	} else {
		dq = c * v
	}
	n.AddCharge(-dq)
	drawn := before - n.Energy()
	if drawn < 0 {
		drawn = 0
	}
	return drawn
}
