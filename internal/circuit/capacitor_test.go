package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestCapacitorVoltageEnergy(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(3.3)
	approx(t, c.Voltage(), 3.3, 1e-12, "voltage")
	approx(t, c.Energy(), 0.5*1e-3*3.3*3.3, 1e-12, "energy")
	approx(t, c.Capacitance(), 1e-3, 0, "capacitance")
}

func TestCapacitorZeroValue(t *testing.T) {
	var c Capacitor
	if c.Voltage() != 0 || c.Energy() != 0 {
		t.Errorf("zero-value capacitor should report zero V and E, got %g V %g J", c.Voltage(), c.Energy())
	}
}

func TestCapacitorAddChargeTruncatesAtEmpty(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(1.0) // Q = 1 mC
	moved := c.AddCharge(-2e-3)
	approx(t, moved, -1e-3, 1e-15, "over-withdrawal truncated")
	approx(t, c.Q, 0, 1e-15, "charge empties exactly")
}

func TestCapacitorClip(t *testing.T) {
	c := &Capacitor{C: 1e-3, VMax: 3.6}
	c.SetVoltage(4.0)
	lost := c.Clip()
	approx(t, c.Voltage(), 3.6, 1e-12, "clipped voltage")
	want := 0.5 * 1e-3 * (4.0*4.0 - 3.6*3.6)
	approx(t, lost, want, 1e-12, "clipped energy")
	if c.Clip() != 0 {
		t.Error("second clip should discard nothing")
	}
}

func TestCapacitorClipDisabled(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(100)
	if c.Clip() != 0 {
		t.Error("VMax=0 must disable clipping")
	}
}

func TestCapacitorLeakScalesWithVoltage(t *testing.T) {
	c := &Capacitor{C: 1e-3, LeakI: 28e-6, VRated: 6.3}
	c.SetVoltage(3.15) // half of rated -> half leakage current
	before := c.Q
	lost := c.Leak(1.0)
	wantDQ := 14e-6 // 28 µA * 0.5 * 1 s
	approx(t, before-c.Q, wantDQ, 1e-12, "leaked charge")
	if lost <= 0 {
		t.Error("leak must lose energy")
	}
}

func TestCapacitorLeakEmptiesNoFurther(t *testing.T) {
	c := &Capacitor{C: 1e-9, LeakI: 1e-3, VRated: 1}
	c.SetVoltage(1)
	c.Leak(1e6)
	if c.Q < 0 {
		t.Errorf("leak drove charge negative: %g", c.Q)
	}
}

func TestCapacitorLeakZeroCurrent(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(3)
	if c.Leak(100) != 0 {
		t.Error("no leakage current specified, no energy should be lost")
	}
}

func TestChainEquivalents(t *testing.T) {
	a := &Capacitor{C: 2e-3}
	b := &Capacitor{C: 2e-3}
	ch := NewChain(a, b)
	approx(t, ch.Capacitance(), 1e-3, 1e-15, "two equal caps in series halve capacitance")
	a.SetVoltage(1.5)
	b.SetVoltage(2.0)
	approx(t, ch.Voltage(), 3.5, 1e-12, "chain voltage sums members")
	approx(t, ch.Energy(), a.Energy()+b.Energy(), 1e-15, "chain energy sums members")
}

func TestChainAddChargeCommonCurrent(t *testing.T) {
	a := &Capacitor{C: 1e-3}
	b := &Capacitor{C: 2e-3}
	ch := NewChain(a, b)
	ch.AddCharge(1e-3)
	approx(t, a.Q, 1e-3, 1e-15, "series member charge a")
	approx(t, b.Q, 1e-3, 1e-15, "series member charge b")
	approx(t, ch.Voltage(), 1.0+0.5, 1e-12, "voltage after charging")
}

func TestChainWithdrawReverseCharges(t *testing.T) {
	a := &Capacitor{C: 1e-3}
	b := &Capacitor{C: 1e-3}
	a.Q = 1e-3
	b.Q = 2e-3
	ch := NewChain(a, b)
	moved := ch.AddCharge(-1.5e-3)
	approx(t, moved, -1.5e-3, 1e-15, "series current keeps flowing through a drained member")
	approx(t, a.Q, -0.5e-3, 1e-15, "drained member charges in reverse")
	approx(t, b.Q, 0.5e-3, 1e-15, "other member discharges normally")
	approx(t, ch.Voltage(), 0, 1e-12, "terminal voltage nets to zero")
}

// TestPaperLossFourCap reproduces the first worked example in §3.3.1: four
// capacitors C in series charged to total V; one capacitor is removed from
// the chain and placed in parallel with the remaining three-series chain.
// The paper derives a final voltage of 3V/8 and a 25 % energy loss.
func TestPaperLossFourCap(t *testing.T) {
	const C, V = 1e-3, 4.0
	caps := make([]*Capacitor, 4)
	for i := range caps {
		caps[i] = &Capacitor{C: C}
		caps[i].SetVoltage(V / 4) // series charging leaves members equal
	}
	full := NewChain(caps...)
	eOld := full.Energy()
	approx(t, eOld, 0.5*(C/4)*V*V, 1e-12, "E_old = ½(C/4)V²")

	three := NewChain(caps[0], caps[1], caps[2])
	single := NewChain(caps[3])
	vNew, loss := EqualizeParallel(three, single)

	approx(t, vNew, 3*V/8, 1e-9, "final voltage 3V/8")
	eNew := three.Energy() + single.Energy()
	approx(t, eNew/eOld, 0.75, 1e-9, "75 % of energy conserved")
	approx(t, loss, 0.25*eOld, 1e-9, "25 % dissipated")
}

// TestPaperLossEightCap reproduces the second worked example in §3.3.1: an
// eight-capacitor array transitions from all-parallel to
// seven-series-one-parallel, wasting 56.25 % of its stored energy.
func TestPaperLossEightCap(t *testing.T) {
	const C, V = 2e-3, 3.0
	caps := make([]*Capacitor, 8)
	for i := range caps {
		caps[i] = &Capacitor{C: C}
		caps[i].SetVoltage(V) // all-parallel: every member at V
	}
	eOld := 8 * 0.5 * C * V * V

	seven := NewChain(caps[:7]...)
	one := NewChain(caps[7])
	_, loss := EqualizeParallel(seven, one)

	eNew := seven.Energy() + one.Energy()
	approx(t, eNew/eOld, 0.4375, 1e-9, "43.75 % of energy conserved")
	approx(t, loss/eOld, 0.5625, 1e-9, "56.25 % dissipated")
}

func TestEqualizeParallelEqualVoltagesLossless(t *testing.T) {
	a := &Capacitor{C: 1e-3}
	b := &Capacitor{C: 5e-3}
	a.SetVoltage(2.5)
	b.SetVoltage(2.5)
	v, loss := EqualizeParallel(a, b)
	approx(t, v, 2.5, 1e-12, "equal-voltage equalization keeps voltage")
	approx(t, loss, 0, 1e-12, "equal-voltage equalization is lossless")
}

func TestEqualizeParallelEmpty(t *testing.T) {
	v, loss := EqualizeParallel()
	if v != 0 || loss != 0 {
		t.Error("no nodes, no effect")
	}
}

func TestTransferOneWayBlocksReverse(t *testing.T) {
	lo := &Capacitor{C: 1e-3}
	hi := &Capacitor{C: 1e-3}
	lo.SetVoltage(1.0)
	hi.SetVoltage(3.0)
	dq, loss := TransferOneWay(lo, hi, 0)
	if dq != 0 || loss != 0 {
		t.Error("diode must not conduct from low to high")
	}
}

func TestTransferOneWayEqualizes(t *testing.T) {
	src := &Capacitor{C: 1e-3}
	dst := &Capacitor{C: 1e-3}
	src.SetVoltage(3.0)
	dst.SetVoltage(1.0)
	dq, loss := TransferOneWay(src, dst, 0)
	approx(t, src.Voltage(), 2.0, 1e-9, "source settles at midpoint")
	approx(t, dst.Voltage(), 2.0, 1e-9, "dest settles at midpoint")
	approx(t, dq, 1e-3, 1e-12, "transferred charge")
	// Equal caps from 3 V and 1 V: loss = ¼C(ΔV)² = ¼·1e-3·4 = 1 mJ.
	approx(t, loss, 1e-3, 1e-9, "conduction loss")
}

func TestTransferOneWaySchottkyDropStopsEarly(t *testing.T) {
	src := &Capacitor{C: 1e-3}
	dst := &Capacitor{C: 1e-3}
	src.SetVoltage(3.0)
	dst.SetVoltage(1.0)
	_, _ = TransferOneWay(src, dst, 0.3)
	approx(t, src.Voltage()-dst.Voltage(), 0.3, 1e-9, "conduction stops at the forward drop")
}

func TestStoreEnergyFromZeroVolts(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	dq, loss := StoreEnergy(c, 1e-3, 0)
	approx(t, loss, 0, 1e-15, "ideal diode, no drop loss")
	approx(t, c.Energy(), 1e-3, 1e-12, "all energy stored")
	if dq <= 0 {
		t.Error("charge must be delivered")
	}
}

func TestStoreEnergyWithDropLoses(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(2.0)
	dq, loss := StoreEnergy(c, 1e-3, 0.3)
	approx(t, loss, 0.3*dq, 1e-15, "drop loss = vDrop·dq")
	approx(t, c.Energy()-0.5*1e-3*4, 1e-3-loss, 1e-9, "stored = delivered − loss")
}

func TestStoreEnergyNowhere(t *testing.T) {
	ch := NewChain()
	_, loss := StoreEnergy(ch, 1e-3, 0)
	approx(t, loss, 1e-3, 0, "zero capacitance burns the energy")
}

func TestDrawEnergyExact(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(3.0)
	before := c.Energy()
	got := DrawEnergy(c, 1e-3)
	approx(t, got, 1e-3, 1e-12, "requested energy drawn")
	approx(t, before-c.Energy(), 1e-3, 1e-12, "stored energy fell by the same amount")
}

func TestDrawEnergyDrainsCompletely(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	c.SetVoltage(2.0)
	avail := c.Energy()
	got := DrawEnergy(c, 10*avail)
	approx(t, got, avail, 1e-12, "over-draw returns what was available")
	approx(t, c.Voltage(), 0, 1e-12, "capacitor empty")
}

func TestDrawEnergyFromEmpty(t *testing.T) {
	c := &Capacitor{C: 1e-3}
	if DrawEnergy(c, 1) != 0 {
		t.Error("nothing to draw from an empty capacitor")
	}
}

// Property: equalizing any pair of randomly charged capacitors conserves
// charge exactly and never creates energy.
func TestEqualizeParallelProperties(t *testing.T) {
	f := func(c1u, c2u, v1u, v2u uint16) bool {
		c1 := 1e-6 + float64(c1u)*1e-7
		c2 := 1e-6 + float64(c2u)*1e-7
		v1 := float64(v1u) / 1e4 * 5
		v2 := float64(v2u) / 1e4 * 5
		a := &Capacitor{C: c1}
		b := &Capacitor{C: c2}
		a.SetVoltage(v1)
		b.SetVoltage(v2)
		qBefore := a.Q + b.Q
		eBefore := a.Energy() + b.Energy()
		_, loss := EqualizeParallel(a, b)
		qAfter := a.Q + b.Q
		eAfter := a.Energy() + b.Energy()
		chargeOK := math.Abs(qBefore-qAfter) <= 1e-12*(1+math.Abs(qBefore))
		energyOK := loss >= 0 && math.Abs(eBefore-eAfter-loss) <= 1e-9*(1+eBefore)
		voltOK := math.Abs(a.Voltage()-b.Voltage()) <= 1e-9
		return chargeOK && energyOK && voltOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a store/draw round trip through an ideal diode returns the
// energy put in, to numerical tolerance.
func TestStoreDrawRoundTrip(t *testing.T) {
	f := func(cu, eu uint16) bool {
		c := &Capacitor{C: 1e-6 + float64(cu)*1e-7}
		dE := 1e-9 + float64(eu)*1e-8
		StoreEnergy(c, dE, 0)
		got := DrawEnergy(c, dE)
		return math.Abs(got-dE) <= 1e-9*(1+dE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: one-way transfer never pushes the destination above the source's
// original voltage and always dissipates a non-negative amount.
func TestTransferOneWayProperties(t *testing.T) {
	f := func(v1u, v2u uint16) bool {
		src := &Capacitor{C: 2e-3}
		dst := &Capacitor{C: 0.5e-3}
		vs := float64(v1u) / 1e4 * 5
		vd := float64(v2u) / 1e4 * 5
		src.SetVoltage(vs)
		dst.SetVoltage(vd)
		qBefore := src.Q + dst.Q
		_, loss := TransferOneWay(src, dst, 0)
		if loss < 0 {
			return false
		}
		if dst.Voltage() > vs+1e-9 && vs > vd {
			return false
		}
		return math.Abs(src.Q+dst.Q-qBefore) <= 1e-12*(1+qBefore)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Regression: drawing almost exactly the stored energy used to produce a
// NaN when rounding pushed the discriminant v² − 2dE/C fractionally
// negative while dE was still below the computed extractable maximum.
func TestDrawEnergyExactDrainNoNaN(t *testing.T) {
	c := &Capacitor{C: 1e-6 + float64(0x2540)*1e-7}
	dE := 1e-9 + float64(0x557e)*1e-8
	StoreEnergy(c, dE, 0)
	got := DrawEnergy(c, dE)
	if math.IsNaN(got) || math.Abs(got-dE) > 1e-9*(1+dE) {
		t.Errorf("round trip of %.12g returned %.12g", dE, got)
	}
	if c.Q < 0 || math.IsNaN(c.Q) {
		t.Errorf("charge corrupted: %g", c.Q)
	}
}
