package radio

import (
	"math"
	"testing"
)

func TestOpEnergy(t *testing.T) {
	p := DefaultProfile()
	// 150 ms at 10 mA and 3.3 V ≈ 4.95 mJ: more than the usable energy of
	// the 770 µF buffer (≈2.9 mJ between 3.3 V and 1.8 V), so blind
	// transmissions there are doomed without input power (§5.4).
	e := p.TX.Energy(3.3)
	if math.Abs(e-4.95e-3) > 1e-9 {
		t.Errorf("TX energy %g J, want 4.95 mJ", e)
	}
	if p.RX.Energy(3.3) >= e {
		t.Error("receive window must cost far less than a transmission")
	}
}

func TestArrivalsDeterministicAndSorted(t *testing.T) {
	a := Arrivals(7, 300, 8)
	b := Arrivals(7, 300, 8)
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatal("same seed, different schedules")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedules")
		}
		if i > 0 && a[i].Arrival <= a[i-1].Arrival {
			t.Fatal("arrivals must be strictly increasing")
		}
		if a[i].Arrival >= 300 {
			t.Fatal("arrival beyond duration")
		}
		if a[i].Seq != i {
			t.Fatal("sequence numbers must be consecutive")
		}
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	a := Arrivals(3, 100000, 8)
	got := float64(len(a))
	want := 100000.0 / 8
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("arrival count %.0f, want ≈%.0f", got, want)
	}
}

func TestQueueFIFOAndOverflow(t *testing.T) {
	q := NewQueue(2)
	q.Push(Packet{Seq: 0})
	q.Push(Packet{Seq: 1})
	q.Push(Packet{Seq: 2}) // evicts 0
	if q.Dropped != 1 {
		t.Errorf("dropped %d, want 1", q.Dropped)
	}
	p, ok := q.Pop()
	if !ok || p.Seq != 1 {
		t.Errorf("pop = %v,%v, want seq 1", p, ok)
	}
	p, ok = q.Pop()
	if !ok || p.Seq != 2 {
		t.Errorf("pop = %v,%v, want seq 2", p, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Error("empty queue must report not-ok")
	}
	if q.Len() != 0 {
		t.Error("length after drain")
	}
}

func TestArrivalsDegenerateInputs(t *testing.T) {
	// A zero (or negative) mean interarrival would degenerate to infinitely
	// many packets at t=0; the only finite schedule is an empty one.
	if ps := Arrivals(1, 300, 0); ps != nil {
		t.Errorf("zero interarrival produced %d packets, want none", len(ps))
	}
	if ps := Arrivals(1, 300, -5); ps != nil {
		t.Errorf("negative interarrival produced %d packets, want none", len(ps))
	}
	if ps := Arrivals(1, 0, 6); ps != nil {
		t.Errorf("zero duration produced %d packets, want none", len(ps))
	}
}
