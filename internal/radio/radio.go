// Package radio models the sub-GHz transceiver the RT and PF benchmarks
// exercise: fixed-cost atomic transmissions (the paper's canonical
// high-persistence operation), receive windows, and packet arrival
// processes for the Packet Forwarding workload.
package radio

import (
	"react/internal/rng"
)

// Op describes the power/time cost of one radio operation. Transmissions
// are atomic: losing power mid-operation wastes the energy spent so far
// (§4.2 — "radio transmissions are atomic and energy-intensive").
type Op struct {
	Duration float64 // seconds
	Current  float64 // amps drawn while active
}

// Energy returns the operation cost at supply voltage v.
func (o Op) Energy(v float64) float64 {
	return o.Duration * o.Current * v
}

// Profile bundles the radio's operation costs. Defaults follow the class of
// parts the paper cites (ZL70251 transceiver, RFicient wake-up receiver).
type Profile struct {
	TX Op // transmit one buffered packet to the base station
	RX Op // receive window for one incoming packet
}

// DefaultProfile returns transmit and receive costs representative of the
// paper's radio benchmarks: a 150 ms, 10 mA atomic transmission (≈5 mJ at
// 3.3 V — more than the smallest buffer can hold between its operating
// voltages, which is what makes blind transmissions doomed there) and a
// 50 ms, 5 mA receive window.
func DefaultProfile() Profile {
	return Profile{
		TX: Op{Duration: 0.15, Current: 10e-3},
		RX: Op{Duration: 0.05, Current: 5e-3},
	}
}

// Packet is one unit of forwarded data.
type Packet struct {
	Arrival float64 // seconds into the run
	Seq     int
}

// Arrivals generates a Poisson packet-arrival schedule over [0, duration)
// with the given mean interarrival time. The schedule is deterministic for
// a seed, which keeps the Packet Forwarding experiment repeatable the way
// the paper's secondary event-delivery MSP430 does.
//
// A non-positive mean interarrival time yields an empty schedule: a zero
// mean would place infinitely many packets at t=0 (the exponential
// interarrival degenerates to zero forever), so "no traffic" is the only
// finite reading. Storm scenarios want a small positive mean instead.
func Arrivals(seed uint64, duration, meanInterarrival float64) []Packet {
	if meanInterarrival <= 0 || duration <= 0 {
		return nil
	}
	r := rng.New(seed)
	var ps []Packet
	t := r.Exp(meanInterarrival)
	for t < duration {
		ps = append(ps, Packet{Arrival: t, Seq: len(ps)})
		t += r.Exp(meanInterarrival)
	}
	return ps
}

// Queue is the bounded packet buffer the PF workload holds between receive
// and retransmit. Overflow drops the oldest packet.
type Queue struct {
	ps  []Packet
	max int
	// Dropped counts packets lost to overflow.
	Dropped int
}

// NewQueue returns a queue holding at most max packets.
func NewQueue(max int) *Queue {
	return &Queue{max: max}
}

// Push appends a packet, evicting the oldest on overflow.
func (q *Queue) Push(p Packet) {
	if len(q.ps) == q.max {
		q.ps = q.ps[1:]
		q.Dropped++
	}
	q.ps = append(q.ps, p)
}

// Pop removes and returns the oldest packet.
func (q *Queue) Pop() (Packet, bool) {
	if len(q.ps) == 0 {
		return Packet{}, false
	}
	p := q.ps[0]
	q.ps = q.ps[1:]
	return p, true
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.ps) }
