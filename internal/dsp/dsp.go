// Package dsp implements the digital filtering used by the Sense-and-
// Compute benchmark: the paper's SC workload wakes every five seconds to
// sample a low-power MEMS microphone and digitally filter the reading.
//
// The package provides a direct-form-II biquad section (for the anti-alias
// low-pass the benchmark applies) and a small FIR filter, both implemented
// from scratch.
package dsp

import "math"

// Biquad is a second-order IIR section in direct form II transposed.
type Biquad struct {
	b0, b1, b2 float64 // feed-forward
	a1, a2     float64 // feedback (a0 normalized to 1)
	z1, z2     float64 // state
}

// NewLowPass designs a Butterworth-style low-pass biquad with cutoff fc and
// quality q at sample rate fs (RBJ audio-EQ cookbook form). It panics if
// fc is not below the Nyquist rate — a construction-time configuration
// error.
func NewLowPass(fs, fc, q float64) *Biquad {
	if fc <= 0 || fc >= fs/2 {
		panic("dsp: cutoff must be in (0, fs/2)")
	}
	w0 := 2 * math.Pi * fc / fs
	alpha := math.Sin(w0) / (2 * q)
	cos := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cos) / 2 / a0,
		b1: (1 - cos) / a0,
		b2: (1 - cos) / 2 / a0,
		a1: -2 * cos / a0,
		a2: (1 - alpha) / a0,
	}
}

// Process filters one sample.
func (f *Biquad) Process(x float64) float64 {
	y := f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y
}

// ProcessBlock filters a block in place and returns the RMS of the output —
// the quantity the SC benchmark reports per sample burst.
func (f *Biquad) ProcessBlock(samples []float64) float64 {
	var sumSq float64
	for i, x := range samples {
		y := f.Process(x)
		samples[i] = y
		sumSq += y * y
	}
	if len(samples) == 0 {
		return 0
	}
	return math.Sqrt(sumSq / float64(len(samples)))
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// FIR is a finite-impulse-response filter.
type FIR struct {
	taps  []float64
	delay []float64
	pos   int
}

// NewFIR builds a FIR filter over the given tap coefficients.
func NewFIR(taps []float64) *FIR {
	return &FIR{taps: append([]float64(nil), taps...), delay: make([]float64, len(taps))}
}

// MovingAverage returns an n-tap moving-average FIR.
func MovingAverage(n int) *FIR {
	taps := make([]float64, n)
	for i := range taps {
		taps[i] = 1 / float64(n)
	}
	return NewFIR(taps)
}

// Process filters one sample.
func (f *FIR) Process(x float64) float64 {
	f.delay[f.pos] = x
	var y float64
	idx := f.pos
	for _, t := range f.taps {
		y += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return y
}
