package dsp

import (
	"math"
	"testing"
)

// TestLowPassAttenuatesHighFrequency drives the biquad with a low tone and
// a high tone; the low tone must pass nearly unchanged while the high tone
// is strongly attenuated.
func TestLowPassAttenuatesHighFrequency(t *testing.T) {
	const fs, fc = 8000.0, 500.0
	gain := func(freq float64) float64 {
		f := NewLowPass(fs, fc, 0.707)
		var peak float64
		n := int(fs) // one second
		for i := 0; i < n; i++ {
			y := f.Process(math.Sin(2 * math.Pi * freq * float64(i) / fs))
			if i > n/2 && math.Abs(y) > peak { // skip transient
				peak = math.Abs(y)
			}
		}
		return peak
	}
	low := gain(50)
	high := gain(3000)
	if low < 0.9 {
		t.Errorf("passband gain %.3f, want ≈1", low)
	}
	if high > 0.1 {
		t.Errorf("stopband gain %.3f, want strong attenuation", high)
	}
}

func TestLowPassBadCutoffPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cutoff above Nyquist must panic")
		}
	}()
	NewLowPass(8000, 5000, 0.707)
}

func TestProcessBlockRMS(t *testing.T) {
	f := NewLowPass(8000, 3999, 0.707) // nearly all-pass
	samples := make([]float64, 256)
	for i := range samples {
		samples[i] = 1.0
	}
	rms := f.ProcessBlock(samples)
	if rms < 0.8 || rms > 1.2 {
		t.Errorf("DC RMS through near-all-pass = %.3f, want ≈1", rms)
	}
	if got := f.ProcessBlock(nil); got != 0 {
		t.Errorf("empty block RMS = %g, want 0", got)
	}
}

func TestBiquadReset(t *testing.T) {
	f := NewLowPass(8000, 500, 0.707)
	f.Process(1)
	f.Process(1)
	f.Reset()
	if f.z1 != 0 || f.z2 != 0 {
		t.Error("reset must clear state")
	}
}

func TestMovingAverageConvergesToMean(t *testing.T) {
	f := MovingAverage(4)
	var y float64
	for i := 0; i < 16; i++ {
		y = f.Process(2.0)
	}
	if math.Abs(y-2.0) > 1e-12 {
		t.Errorf("steady-state output %g, want 2", y)
	}
}

func TestFIRImpulseResponse(t *testing.T) {
	taps := []float64{0.5, 0.3, 0.2}
	f := NewFIR(taps)
	var got []float64
	got = append(got, f.Process(1))
	got = append(got, f.Process(0))
	got = append(got, f.Process(0))
	got = append(got, f.Process(0))
	want := []float64{0.5, 0.3, 0.2, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("impulse[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
