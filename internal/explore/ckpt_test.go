package explore

// The checkpoint axis in design-space exploration: scheme knobs are plain
// JSON-pointer patches, so they sweep jointly with capacitance, timestep,
// and workload partitioning without any explore-layer special casing.

import (
	"strings"
	"testing"

	"react/internal/ckpt"
	"react/internal/scenario"
)

// ckptSpec is testSpec with a periodic checkpoint scheme attached.
func ckptSpec() *scenario.Spec {
	s := testSpec()
	s.Device.Checkpoint = &ckpt.Config{Scheme: "periodic", Interval: 5}
	return s
}

func TestPatchCheckpointKnob(t *testing.T) {
	sp := &Space{
		Spec:    ckptSpec(),
		Presets: []string{"REACT"},
		Patches: []PatchAxis{{Path: "/device/checkpoint/interval", Values: []float64{1, 2, 4}}},
	}
	plan, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 3 {
		t.Fatalf("%d points, want 3", len(plan.Points))
	}
	fps := map[string]bool{}
	for _, pt := range plan.Points {
		want := pt.Params["/device/checkpoint/interval"]
		ck := pt.Spec.Device.Checkpoint
		if ck == nil || ck.Interval != want {
			t.Errorf("patch not applied: checkpoint %+v, param %g", ck, want)
		}
		fp, err := pt.Spec.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fps[fp] = true
	}
	if len(fps) != 3 {
		t.Errorf("%d distinct cell addresses, want 3 (interval must separate them)", len(fps))
	}
}

// TestPatchCheckpointRequiresScheme: sweeping a scheme knob over a
// scheme-less base creates a checkpoint block with no scheme — the "none"
// canonical form, which takes no knobs. The sweep must fail at Resolve,
// not silently explore three identical flat-boot devices.
func TestPatchCheckpointRequiresScheme(t *testing.T) {
	sp := &Space{
		Spec:    testSpec(),
		Presets: []string{"REACT"},
		Patches: []PatchAxis{{Path: "/device/checkpoint/interval", Values: []float64{1, 2, 4}}},
	}
	_, err := sp.Resolve()
	if err == nil || !strings.Contains(err.Error(), "takes no") {
		t.Errorf("knob sweep over a scheme-less base must fail loudly, got %v", err)
	}
}

// TestPatchSegmentsJointWithCapacitance is the joint sweep the catalogue's
// recorded exploration uses: ML partition count × buffer capacitance. The
// whole-number patch values must land in the int Segments field.
func TestPatchSegmentsJointWithCapacitance(t *testing.T) {
	base := testSpec()
	base.Workload = scenario.WorkloadSpec{Bench: "ML"}
	sp := &Space{
		Spec:    base,
		Static:  &StaticAxis{From: 1e-3, To: 10e-3, Points: 3},
		Patches: []PatchAxis{{Path: "/workload/segments", Values: []float64{2, 4, 8}}},
	}
	plan, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 9 {
		t.Fatalf("%d points, want 3 segments × 3 capacitances", len(plan.Points))
	}
	if len(plan.groups) != 3 {
		t.Fatalf("%d bisection groups, want one per segments value", len(plan.groups))
	}
	for _, pt := range plan.Points {
		if got := float64(pt.Spec.Workload.Segments); got != pt.Params["/workload/segments"] {
			t.Errorf("segments patch not applied: %g vs %g", got, pt.Params["/workload/segments"])
		}
	}
}
