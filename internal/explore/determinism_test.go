package explore

import (
	"context"
	"reflect"
	"testing"

	"react/internal/scenario"
)

// TestExploreDeterminism is the exploration determinism suite: the same
// space at fixed seeds produces a bit-identical result — points, metrics,
// bests and frontiers — whether the local evaluator runs one worker or
// eight, and across back-to-back runs.
func TestExploreDeterminism(t *testing.T) {
	sp := &Space{
		Spec: &scenario.Spec{
			Name:     "explore-det",
			Trace:    scenario.TraceSpec{Gen: "steady", Mean: 0.008, Duration: 30},
			Workload: scenario.WorkloadSpec{Bench: "DE"},
			Buffers:  scenario.Presets("REACT"),
		},
		Static:  &StaticAxis{From: 500e-6, To: 5e-3, Points: 3},
		Presets: []string{"770 µF"},
		Seeds:   []uint64{1, 2},
		Pareto:  []MetricPair{{X: MetricC, Y: MetricLatency}, {X: MetricDead, Y: MetricEfficiency}},
	}
	ref, err := Run(context.Background(), sp, Local(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got, err := Run(context.Background(), sp, Local(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: exploration result diverged from the single-worker reference", workers)
		}
	}

	// Bisection too: the probe sequence is data-dependent but the data is
	// deterministic, so the evaluated set and the best point are stable.
	sp.Strategy = StrategyBisect
	sp.Presets = nil
	sp.Pareto = nil
	min := 0.5
	sp.Target = &Target{Metric: MetricDuty, Min: &min}
	ref, err = Run(context.Background(), sp, Local(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), sp, Local(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("bisection result diverged across worker counts")
	}
}
