package explore

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"react/internal/runner"
	"react/internal/scenario"
	"react/internal/sim"
)

// testSpec is a tiny valid inline base: a 30 s steady trace driving DE.
func testSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:     "explore-test",
		Trace:    scenario.TraceSpec{Gen: "steady", Mean: 0.01, Duration: 30},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  scenario.Presets("REACT"),
	}
}

func f64(v float64) *float64 { return &v }

// fakeEval fabricates results from a point's capacitance without
// simulating: blocks rises linearly with C, latency with C, duty falls.
// It also counts evaluated cells.
func fakeEval(count *int) Evaluator {
	return func(_ context.Context, cells []Cell) ([]sim.Result, error) {
		out := make([]sim.Result, len(cells))
		for i, c := range cells {
			*count++
			cap := 0.0
			if st := c.Spec.Buffers[0].Static; st != nil {
				cap = st.C
			}
			out[i] = sim.Result{
				Latency:  cap * 100,
				OnTime:   10 - cap*100,
				Duration: 10,
				Metrics:  map[string]float64{"blocks": cap * 1e6},
			}
		}
		return out, nil
	}
}

func TestResolveLatticeShape(t *testing.T) {
	sp := &Space{
		Spec:    testSpec(),
		Static:  &StaticAxis{From: 1e-4, To: 1e-2, Points: 5},
		Presets: []string{"REACT", "Morphy"},
		DTs:     []float64{0, 2e-3},
		Patches: []PatchAxis{{Path: "/workload/active_i", Values: []float64{0.5e-3, 1e-3}}},
		Seeds:   []uint64{1, 2},
	}
	plan, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// 2 patch values × 2 dts × (5 statics + 2 presets) = 28 points.
	if len(plan.Points) != 28 {
		t.Fatalf("%d points, want 28", len(plan.Points))
	}
	if len(plan.groups) != 4 {
		t.Fatalf("%d bisection groups, want one per (patch, dt)", len(plan.groups))
	}
	lattice := runner.Logspace(1e-4, 1e-2, 5)
	for g, group := range plan.groups {
		if len(group) != 5 {
			t.Fatalf("group %d has %d static points, want 5", g, len(group))
		}
		for i, pi := range group {
			pt := plan.Points[pi]
			if pt.C != lattice[i] {
				t.Errorf("group %d point %d: C %g, want %g", g, i, pt.C, lattice[i])
			}
			if len(pt.Spec.Buffers) != 1 || pt.Spec.Buffers[0].Static == nil {
				t.Errorf("point %d is not a single static-buffer spec", pi)
			}
		}
	}
	// Axis coordinates resolved: dt 0 became the spec default, the patch
	// landed in the derived workload, and labels are unique.
	seen := map[string]bool{}
	for _, pt := range plan.Points {
		if pt.DT != 1e-3 && pt.DT != 2e-3 {
			t.Errorf("unresolved dt %g", pt.DT)
		}
		if pt.Spec.DT != pt.DT {
			t.Errorf("derived spec dt %g != point dt %g", pt.Spec.DT, pt.DT)
		}
		ai := pt.Params["/workload/active_i"]
		if pt.Spec.Workload.ActiveI != ai {
			t.Errorf("patch not applied: spec active_i %g, param %g", pt.Spec.Workload.ActiveI, ai)
		}
		key := fmt.Sprintf("%s|%g|%g", pt.Buffer, pt.DT, ai)
		if seen[key] {
			t.Errorf("duplicate point %s", key)
		}
		seen[key] = true
	}
}

func TestResolveRejections(t *testing.T) {
	base := func() *Space {
		return &Space{Spec: testSpec(), Static: &StaticAxis{From: 1e-4, To: 1e-2, Points: 4}}
	}
	cases := map[string]func(*Space){
		"no base":          func(sp *Space) { sp.Spec = nil },
		"name and spec":    func(sp *Space) { sp.Scenario = "energy-attack" },
		"unknown scenario": func(sp *Space) { sp.Spec = nil; sp.Scenario = "nope" },
		"no buffer axis":   func(sp *Space) { sp.Static = nil },
		"zero from":        func(sp *Space) { sp.Static.From = 0 },
		"NaN from":         func(sp *Space) { sp.Static.From = math.NaN() },
		"to below from":    func(sp *Space) { sp.Static.To = 1e-5 },
		"zero points":      func(sp *Space) { sp.Static.Points = 0 },
		"bad scale":        func(sp *Space) { sp.Static.Scale = "cubic" },
		"unknown preset":   func(sp *Space) { sp.Presets = []string{"not-a-buffer"} },
		"duplicate preset": func(sp *Space) { sp.Presets = []string{"REACT", "REACT"} },
		"both seed forms":  func(sp *Space) { sp.Seeds = []uint64{1}; sp.SeedTo = 3 },
		"zero seed":        func(sp *Space) { sp.Seeds = []uint64{0} },
		"duplicate seed":   func(sp *Space) { sp.Seeds = []uint64{2, 2} },
		"empty seed range": func(sp *Space) { sp.SeedFrom = 5; sp.SeedTo = 2 },
		"from without to":  func(sp *Space) { sp.SeedFrom = 5 },
		"duplicate dt":     func(sp *Space) { sp.DTs = []float64{0, 1e-3} },
		"negative dt":      func(sp *Space) { sp.DTs = []float64{-1} },
		"bad strategy":     func(sp *Space) { sp.Strategy = "anneal" },
		"degenerate lattice": func(sp *Space) {
			sp.Static = &StaticAxis{From: 1e-3, To: 1e-3, Points: 5}
		},
		"target sans static axis": func(sp *Space) {
			sp.Static = nil
			sp.Presets = []string{"REACT"}
			sp.Target = &Target{Metric: "duty", Min: f64(0.5)}
		},
		"bisect sans axis": func(sp *Space) { sp.Strategy = StrategyBisect; sp.Static = nil; sp.Presets = []string{"REACT"} },
		"bisect w presets": func(sp *Space) {
			sp.Strategy = StrategyBisect
			sp.Presets = []string{"REACT"}
			sp.Target = &Target{Metric: "duty", Min: f64(0.5)}
		},
		"bisect sans goal": func(sp *Space) { sp.Strategy = StrategyBisect },
		"target both ends": func(sp *Space) { sp.Target = &Target{Metric: "duty", Min: f64(0.5), Max: f64(0.9)} },
		"target no metric": func(sp *Space) { sp.Target = &Target{Max: f64(1)} },
		"target NaN bound": func(sp *Space) { sp.Target = &Target{Metric: "duty", Min: f64(math.NaN())} },
		"pareto same axis": func(sp *Space) { sp.Pareto = []MetricPair{{X: "c", Y: "c"}} },
		"patch into buffers": func(sp *Space) {
			sp.Patches = []PatchAxis{{Path: "/buffers/0/static/c", Values: []float64{1}}}
		},
		"patch the seed":   func(sp *Space) { sp.Patches = []PatchAxis{{Path: "/seed", Values: []float64{2}}} },
		"patch no pointer": func(sp *Space) { sp.Patches = []PatchAxis{{Path: "workload", Values: []float64{1}}} },
		"patch no values":  func(sp *Space) { sp.Patches = []PatchAxis{{Path: "/workload/period", Values: nil}} },
		"patch NaN value":  func(sp *Space) { sp.Patches = []PatchAxis{{Path: "/workload/period", Values: []float64{math.NaN()}}} },
		"patch dup values": func(sp *Space) { sp.Patches = []PatchAxis{{Path: "/workload/period", Values: []float64{1, 1}}} },
		"patch dup paths": func(sp *Space) {
			sp.Patches = []PatchAxis{{Path: "/workload/period", Values: []float64{1}}, {Path: "/workload/period", Values: []float64{2}}}
		},
		"patch typo path":   func(sp *Space) { sp.Patches = []PatchAxis{{Path: "/workload/perod", Values: []float64{1}}} },
		"oversized lattice": func(sp *Space) { sp.Static.Points = 3000; sp.SeedFrom = 1; sp.SeedTo = 2 },
		// The patch cross product alone explodes past the bound: it must be
		// rejected arithmetically, before any expansion work happens.
		"oversized patch cross": func(sp *Space) {
			vals := make([]float64, 100)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			sp.Patches = []PatchAxis{
				{Path: "/workload/period", Values: vals},
				{Path: "/workload/active_i", Values: vals},
				{Path: "/trace/mean", Values: vals},
			}
		},
	}
	for label, mutate := range cases {
		sp := base()
		mutate(sp)
		if _, err := sp.Resolve(); err == nil {
			t.Errorf("%s: Resolve must reject it", label)
		}
	}
	if _, err := base().Resolve(); err != nil {
		t.Fatalf("the base space must resolve: %v", err)
	}
}

func TestParseSpaceRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpace([]byte(`{"scenario":"energy-attack","presets":["REACT"],"statik":{}}`)); err == nil {
		t.Fatal("a typo'd axis name must be rejected")
	}
	sp, err := ParseSpace([]byte(`{"scenario":"energy-attack","presets":["REACT","770 µF"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scenario != "energy-attack" {
		t.Fatalf("parsed space wrong: %+v", sp)
	}
}

func TestBisectFindsMinimalLatticePoint(t *testing.T) {
	// blocks = C·1e6 rises with capacitance; the target floor lands inside
	// the lattice, so bisection must return the first lattice point at or
	// above it and probe only O(log n) points.
	const n = 33
	lattice := runner.Logspace(1e-4, 1e-1, n)
	sp := &Space{
		Spec:     testSpec(),
		Static:   &StaticAxis{From: 1e-4, To: 1e-1, Points: n},
		Strategy: StrategyBisect,
		Target:   &Target{Metric: "blocks", Min: f64(3000)}, // C ≥ 3 mF
	}
	count := 0
	res, err := Run(context.Background(), sp, fakeEval(&count))
	if err != nil {
		t.Fatal(err)
	}
	want := -1
	for i, c := range lattice {
		if c*1e6 >= 3000 {
			want = i
			break
		}
	}
	if len(res.Best) != 1 || !res.Best[0].Satisfied || res.Best[0].Point != want {
		t.Fatalf("best %+v, want point %d", res.Best, want)
	}
	if maxEvals := 2 + bits(n); res.Evaluated > maxEvals || count > maxEvals {
		t.Errorf("bisection evaluated %d points (%d cells), want ≤ %d", res.Evaluated, count, maxEvals)
	}
	if res.Evaluated != res.Best[0].Evaluations {
		t.Errorf("evaluation accounting: result %d, best %d", res.Evaluated, res.Best[0].Evaluations)
	}
	for i, pr := range res.Points {
		if !pr.Evaluated && pr.Summary != nil {
			t.Errorf("unevaluated point %d carries a summary", i)
		}
	}

	// Unsatisfiable: the floor is above the whole lattice — two probes.
	sp.Target = &Target{Metric: "blocks", Min: f64(1e9)}
	count = 0
	res, err = Run(context.Background(), sp, fakeEval(&count))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0].Satisfied || res.Best[0].Point != -1 || res.Evaluated != 2 {
		t.Fatalf("unsatisfiable bisection wrong: %+v (evaluated %d)", res.Best[0], res.Evaluated)
	}

	// Met at the lower edge: a single probe suffices.
	sp.Target = &Target{Metric: "blocks", Min: f64(1)}
	res, err = Run(context.Background(), sp, fakeEval(new(int)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best[0].Satisfied || res.Best[0].Point != 0 || res.Evaluated != 1 {
		t.Fatalf("met-at-lo bisection wrong: %+v (evaluated %d)", res.Best[0], res.Evaluated)
	}
}

// bits returns ceil(log2(n)) + 1, the binary-search probe bound.
func bits(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b + 1
}

// TestUnknownMetricNamesAreRejected pins the typo guard: a target or
// Pareto pair naming a metric no evaluated point carries fails the run
// instead of masquerading as an empty frontier or an unsatisfiable
// bisection.
func TestUnknownMetricNamesAreRejected(t *testing.T) {
	base := &Space{Spec: testSpec(), Static: &StaticAxis{From: 1e-4, To: 1e-2, Points: 4}}
	sp := *base
	sp.Pareto = []MetricPair{{X: "latencyy", Y: "c"}}
	if _, err := Run(context.Background(), &sp, fakeEval(new(int))); err == nil || !strings.Contains(err.Error(), "latencyy") {
		t.Errorf("typo'd pareto metric must fail naming the metric, got %v", err)
	}
	sp = *base
	sp.Strategy = StrategyBisect
	sp.Target = &Target{Metric: "dead_tme", Max: f64(0.5)}
	if _, err := Run(context.Background(), &sp, fakeEval(new(int))); err == nil || !strings.Contains(err.Error(), "dead_tme") {
		t.Errorf("typo'd target metric must fail naming the metric, got %v", err)
	}
	// Legitimate names — built-ins, counters the workload reports, and
	// axis pseudo-metrics — pass.
	sp = *base
	sp.Target = &Target{Metric: "blocks", Min: f64(1)}
	sp.Pareto = []MetricPair{{X: MetricC, Y: MetricDead}}
	if _, err := Run(context.Background(), &sp, fakeEval(new(int))); err != nil {
		t.Errorf("known metrics spuriously rejected: %v", err)
	}
}

func TestGridTargetScansMinimalPoint(t *testing.T) {
	sp := &Space{
		Spec:   testSpec(),
		Static: &StaticAxis{From: 1e-4, To: 1e-1, Points: 8},
		Target: &Target{Metric: "blocks", Min: f64(3000)},
	}
	res, err := Run(context.Background(), sp, fakeEval(new(int)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 8 {
		t.Fatalf("grid evaluated %d points, want all 8", res.Evaluated)
	}
	lattice := runner.Logspace(1e-4, 1e-1, 8)
	want := -1
	for i, c := range lattice {
		if c*1e6 >= 3000 {
			want = i
			break
		}
	}
	if len(res.Best) != 1 || !res.Best[0].Satisfied || res.Best[0].Point != want {
		t.Fatalf("grid best %+v, want point %d", res.Best, want)
	}
}

func TestFrontierExtraction(t *testing.T) {
	// Hand-built points: latency minimize, blocks maximize. Point 1 is
	// dominated by point 0 (slower, no more blocks); point 3 never
	// started, so it has no latency value and is excluded.
	points := []PointResult{
		{Evaluated: true, Metrics: map[string]float64{"latency": 1, "blocks": 10}},
		{Evaluated: true, Metrics: map[string]float64{"latency": 2, "blocks": 10}},
		{Evaluated: true, Metrics: map[string]float64{"latency": 3, "blocks": 20}},
		{Evaluated: true, Metrics: map[string]float64{"blocks": 99}},
		{Evaluated: false, Metrics: nil},
	}
	f := extractFrontier(points, MetricPair{X: "latency", Y: "blocks"})
	if !reflect.DeepEqual(f.Points, []int{0, 2}) {
		t.Fatalf("frontier %v, want [0 2]", f.Points)
	}
	// Size-vs-dead-time: both minimized; the cheap-but-dead and the
	// big-but-alive ends both survive, the strictly-worse middle dies.
	points = []PointResult{
		{Evaluated: true, C: 1e-4, DT: 1e-3, Metrics: map[string]float64{"dead_time": 0.5}},
		{Evaluated: true, C: 1e-3, DT: 1e-3, Metrics: map[string]float64{"dead_time": 0.6}},
		{Evaluated: true, C: 1e-2, DT: 1e-3, Metrics: map[string]float64{"dead_time": 0.1}},
	}
	f = extractFrontier(points, MetricPair{X: "c", Y: "dead_time"})
	if !reflect.DeepEqual(f.Points, []int{0, 2}) {
		t.Fatalf("c-vs-dead frontier %v, want [0 2]", f.Points)
	}
}

func TestPointMetrics(t *testing.T) {
	results := []sim.Result{
		{Latency: 2, OnTime: 5, Duration: 10, Metrics: map[string]float64{"blocks": 4}},
		{Latency: 4, OnTime: 3, Duration: 10, Metrics: map[string]float64{"blocks": 8}},
	}
	results[0].Ledger.Harvested = 10
	results[0].Ledger.Consumed = 4
	results[1].Ledger.Harvested = 10
	results[1].Ledger.Consumed = 6
	sum, m := PointMetrics(results)
	if sum.Seeds != 2 || m[MetricLatency] != 3 || m["blocks"] != 6 {
		t.Fatalf("metrics wrong: %+v / %+v", sum, m)
	}
	if math.Abs(m[MetricDuty]-0.4) > 1e-15 || math.Abs(m[MetricDead]-0.6) > 1e-15 {
		t.Errorf("duty/dead wrong: %+v", m)
	}
	if math.Abs(m[MetricEfficiency]-0.5) > 1e-15 {
		t.Errorf("efficiency %g, want 0.5", m[MetricEfficiency])
	}
	// No seed started: the latency metric is absent, not a sentinel.
	_, m = PointMetrics([]sim.Result{{Latency: -1, Duration: 10, Metrics: map[string]float64{}}})
	if _, ok := m[MetricLatency]; ok {
		t.Error("never-started point must not carry a latency metric")
	}
}

// TestExploreLocalGrid runs a real (tiny) exploration through the local
// evaluator: a three-point capacitance lattice plus a preset, with a
// frontier over size vs latency.
func TestExploreLocalGrid(t *testing.T) {
	sp := &Space{
		Spec:    testSpec(),
		Static:  &StaticAxis{From: 500e-6, To: 10e-3, Points: 3},
		Presets: []string{"REACT"},
		Pareto:  []MetricPair{{X: MetricC, Y: MetricLatency}},
	}
	res, err := Run(context.Background(), sp, Local(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 || len(res.Points) != 4 {
		t.Fatalf("evaluated %d of %d points, want 4 of 4", res.Evaluated, len(res.Points))
	}
	for i, pr := range res.Points {
		if pr.Summary == nil || pr.Summary.Seeds != 1 {
			t.Fatalf("point %d: missing summary", i)
		}
		if _, ok := pr.Metrics[MetricDuty]; !ok {
			t.Fatalf("point %d: missing duty metric", i)
		}
		if pr.Metrics[MetricEfficiency] <= 0 || pr.Metrics[MetricEfficiency] > 1 {
			t.Errorf("point %d: efficiency %g out of (0, 1]", i, pr.Metrics[MetricEfficiency])
		}
	}
	if res.Points[3].Buffer != "REACT" || res.Points[3].C != 0 {
		t.Errorf("preset point wrong: %+v", res.Points[3])
	}
	// On a steady trace, latency rises with capacitance, so every static
	// point is Pareto-optimal for (c, latency) — and the preset (no c) is
	// excluded.
	if len(res.Frontiers) != 1 {
		t.Fatalf("%d frontiers, want 1", len(res.Frontiers))
	}
	for _, pi := range res.Frontiers[0].Points {
		if res.Points[pi].C == 0 {
			t.Errorf("preset point %d on a c-frontier", pi)
		}
	}
	if len(res.Frontiers[0].Points) == 0 {
		t.Error("empty frontier")
	}
	// The static labels read as capacitances.
	if !strings.Contains(res.Points[0].Buffer, "µF") {
		t.Errorf("static label %q not a capacitance", res.Points[0].Buffer)
	}
}
