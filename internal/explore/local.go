package explore

import (
	"context"
	"sync"

	"react/internal/runner"
	"react/internal/sim"
)

// Local returns an in-process Evaluator: cells simulate over the
// experiment engine's bounded worker pool (workers 0 = GOMAXPROCS), and a
// fingerprint memo deduplicates repeated addresses — within a batch and
// across the evaluator's lifetime — so reusing one Local across
// explorations mirrors the service's content-addressed cell cache.
// Results are deterministic for any worker count.
func Local(workers int) Evaluator {
	r := &runner.Runner{Workers: workers}
	var mu sync.Mutex
	memo := map[string]sim.Result{}
	return func(ctx context.Context, cells []Cell) ([]sim.Result, error) {
		out := make([]sim.Result, len(cells))
		// Collapse the batch onto distinct content addresses; cells with no
		// canonical encoding (Go-only constructors) simulate individually.
		type job struct {
			cell Cell
			fp   string
			outs []int
		}
		var jobs []*job
		byFP := map[string]*job{}
		mu.Lock()
		for i, c := range cells {
			fp, _ := c.Spec.FingerprintCell(0, c.Opt)
			if fp != "" {
				if res, ok := memo[fp]; ok {
					out[i] = res
					continue
				}
				if j := byFP[fp]; j != nil {
					j.outs = append(j.outs, i)
					continue
				}
			}
			j := &job{cell: c, fp: fp, outs: []int{i}}
			if fp != "" {
				byFP[fp] = j
			}
			jobs = append(jobs, j)
		}
		mu.Unlock()
		results, err := runner.Sweep(ctx, r, jobs, func(ctx context.Context, j *job) (sim.Result, error) {
			return j.cell.Spec.Cell(0, j.cell.Opt)
		})
		if err != nil {
			return nil, err
		}
		mu.Lock()
		for k, j := range jobs {
			for _, i := range j.outs {
				out[i] = results[k]
			}
			if j.fp != "" {
				memo[j.fp] = results[k]
			}
		}
		mu.Unlock()
		return out, nil
	}
}
