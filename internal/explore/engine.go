package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"react/internal/scenario"
	"react/internal/sim"
)

// Point metric names every evaluated point carries, alongside the means of
// the workload's own counters. The axis pseudo-metrics "c" and "dt" are
// also addressable in targets and Pareto pairs.
const (
	// MetricLatency is the across-seed mean time-to-first-enable, present
	// only when at least one seed started.
	MetricLatency = "latency"
	// MetricDuty is the mean on-time fraction; MetricDead its complement
	// (the fraction of the run spent unpowered — "dead time").
	MetricDuty = "duty"
	MetricDead = "dead_time"
	// MetricEfficiency is the mean fraction of input energy (harvest plus
	// initial charge) the workload actually consumed.
	MetricEfficiency = "efficiency"
	// MetricC and MetricDT address the point's axis coordinates.
	MetricC  = "c"
	MetricDT = "dt"
)

// MetricDirection returns the optimization direction of a metric: -1 for
// smaller-is-better (latency, dead time, capacitance, timestep), +1 for
// larger-is-better (duty, efficiency, workload counters).
func MetricDirection(name string) int {
	switch name {
	case MetricLatency, MetricDead, MetricC, MetricDT:
		return -1
	}
	return 1
}

// Cell is one unit of exploration work: seed s of point p, as the derived
// single-buffer spec to simulate. Its content address is
// Spec.FingerprintCell(0, Opt) — the same address an equivalent run or
// sweep cell resolves to, which is what lets evaluators share caches.
type Cell struct {
	Point int
	Seed  uint64
	Spec  *scenario.Spec
	Opt   scenario.RunOptions
}

// Evaluator executes one batch of cells and returns their results in cell
// order. Local (in-process, over the experiment engine) and the service
// (shared content-addressed cell cache) both implement it.
type Evaluator func(ctx context.Context, cells []Cell) ([]sim.Result, error)

// PointResult is one lattice point's outcome. Unevaluated points (bisect
// skips most of the lattice) carry only their coordinates.
type PointResult struct {
	Buffer string             `json:"buffer"`
	C      float64            `json:"c,omitempty"`
	DT     float64            `json:"dt"`
	Params map[string]float64 `json:"params,omitempty"`

	Evaluated bool                  `json:"evaluated"`
	Summary   *scenario.SeedSummary `json:"summary,omitempty"`
	// Metrics are the point's scalar objectives: latency (if started),
	// duty, dead_time, efficiency, and each workload counter's mean.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Value returns the point's value for a metric or axis pseudo-metric.
func (pr *PointResult) Value(metric string) (float64, bool) {
	if v, ok := pr.Metrics[metric]; ok {
		return v, true
	}
	switch metric {
	case MetricC:
		if pr.C > 0 {
			return pr.C, true
		}
	case MetricDT:
		return pr.DT, true
	}
	v, ok := pr.Params[metric]
	return v, ok
}

// Best is one bisection (or grid scan) outcome: the minimal-capacitance
// lattice point meeting the target within one (patch, dt) group.
type Best struct {
	// DT and Params identify the group.
	DT     float64            `json:"dt"`
	Params map[string]float64 `json:"params,omitempty"`
	// Satisfied reports whether any probed point met the target; Point is
	// its index into Result.Points (-1 when unsatisfiable on the axis).
	Satisfied bool `json:"satisfied"`
	Point     int  `json:"point"`
	// Evaluations counts the lattice points this group probed.
	Evaluations int `json:"evaluations"`
}

// Frontier is one Pareto frontier: the indices of the non-dominated
// evaluated points for the pair's two objectives, sorted by X ascending.
type Frontier struct {
	X      string `json:"x"`
	Y      string `json:"y"`
	Points []int  `json:"points"`
}

// Result is a completed exploration. It is pure data — JSON-stable and
// deterministic for a given space and seed set, whichever evaluator (or
// worker count) produced it.
type Result struct {
	Scenario  string        `json:"scenario"`
	Strategy  string        `json:"strategy"`
	Seeds     []uint64      `json:"seeds"`
	Target    *Target       `json:"target,omitempty"`
	Points    []PointResult `json:"points"`
	Evaluated int           `json:"evaluated"`
	Best      []Best        `json:"best,omitempty"`
	Frontiers []Frontier    `json:"frontiers,omitempty"`
}

// PointMetrics computes one point's across-seed summary and scalar
// objectives from its per-seed results (in seed order). It is the single
// implementation both the local path and the service report through, so a
// remote exploration's numbers are bit-identical to a local one's.
func PointMetrics(results []sim.Result) (scenario.SeedSummary, map[string]float64) {
	sum := scenario.AggregateSeeds(results)
	m := map[string]float64{
		MetricDuty: sum.Duty.Mean,
		MetricDead: 1 - sum.Duty.Mean,
	}
	if sum.Started > 0 {
		m[MetricLatency] = sum.Latency.Mean
	}
	var eff float64
	for _, r := range results {
		if in := r.Ledger.Harvested + r.InitialStored; in > 0 {
			eff += r.Ledger.Consumed / in
		}
	}
	if len(results) > 0 {
		m[MetricEfficiency] = eff / float64(len(results))
	}
	for k, ms := range sum.Metrics {
		if _, clash := m[k]; !clash {
			m[k] = ms.Mean
		}
	}
	return sum, m
}

// Run resolves the space and executes it: the convenience over
// Space.Resolve plus Plan.Run.
func Run(ctx context.Context, sp *Space, ev Evaluator) (*Result, error) {
	plan, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	return plan.Run(ctx, ev)
}

// Run executes the plan over an evaluator and assembles the result:
// every point the strategy asked for is evaluated across the seed axis,
// targets are resolved, and the requested frontiers extracted.
func (p *Plan) Run(ctx context.Context, ev Evaluator) (*Result, error) {
	res := &Result{
		Scenario: p.Base.Name,
		Strategy: p.Strategy,
		Seeds:    p.Seeds,
		Target:   p.Target,
		Points:   make([]PointResult, len(p.Points)),
	}
	for i, pt := range p.Points {
		res.Points[i] = PointResult{Buffer: pt.Buffer, C: pt.C, DT: pt.DT, Params: pt.Params}
	}

	// evalPoints runs one batch: the not-yet-evaluated points of idx, each
	// across the full seed axis.
	evalPoints := func(idx []int) error {
		var fresh []int
		for _, pi := range idx {
			if !res.Points[pi].Evaluated {
				fresh = append(fresh, pi)
			}
		}
		if len(fresh) == 0 {
			return nil
		}
		cells := make([]Cell, 0, len(fresh)*len(p.Seeds))
		for _, pi := range fresh {
			for _, seed := range p.Seeds {
				cells = append(cells, Cell{
					Point: pi, Seed: seed,
					Spec: p.Points[pi].Spec,
					Opt:  scenario.RunOptions{Seed: seed},
				})
			}
		}
		results, err := ev(ctx, cells)
		if err != nil {
			return err
		}
		if len(results) != len(cells) {
			return fmt.Errorf("explore: evaluator returned %d results for %d cells", len(results), len(cells))
		}
		for j, pi := range fresh {
			seg := results[j*len(p.Seeds) : (j+1)*len(p.Seeds)]
			sum, metrics := PointMetrics(seg)
			res.Points[pi].Evaluated = true
			res.Points[pi].Summary = &sum
			res.Points[pi].Metrics = metrics
			res.Evaluated++
		}
		return nil
	}

	met := func(pi int) bool {
		v, ok := res.Points[pi].Value(p.Target.Metric)
		return p.Target.Met(v, ok)
	}

	switch p.Strategy {
	case StrategyGrid:
		all := make([]int, len(p.Points))
		for i := range all {
			all[i] = i
		}
		if err := evalPoints(all); err != nil {
			return nil, err
		}
		if p.Target != nil {
			// The grid scan finds the true minimal satisfying point per
			// group, monotone or not.
			for _, g := range p.groups {
				b := Best{DT: res.Points[g[0]].DT, Params: res.Points[g[0]].Params, Point: -1, Evaluations: len(g)}
				for _, pi := range g {
					if met(pi) {
						b.Satisfied, b.Point = true, pi
						break
					}
				}
				res.Best = append(res.Best, b)
			}
		}
	case StrategyBisect:
		// Binary search per group, assuming the target predicate flips at
		// most once — unmet to met — as capacitance grows. Probed points
		// are always lattice points, so a bisection after a covering grid
		// touches only already-cached addresses.
		for _, g := range p.groups {
			b := Best{DT: res.Points[g[0]].DT, Params: res.Points[g[0]].Params, Point: -1}
			evals := res.Evaluated
			lo, hi := 0, len(g)-1
			if err := evalPoints([]int{g[lo]}); err != nil {
				return nil, err
			}
			switch {
			case met(g[lo]):
				b.Satisfied, b.Point = true, g[lo]
			case lo == hi:
				// single-point lattice, already probed and unmet
			default:
				if err := evalPoints([]int{g[hi]}); err != nil {
					return nil, err
				}
				if met(g[hi]) {
					for hi-lo > 1 {
						mid := (lo + hi) / 2
						if err := evalPoints([]int{g[mid]}); err != nil {
							return nil, err
						}
						if met(g[mid]) {
							hi = mid
						} else {
							lo = mid
						}
					}
					b.Satisfied, b.Point = true, g[hi]
				}
			}
			b.Evaluations = res.Evaluated - evals
			res.Best = append(res.Best, b)
		}
	}

	// A typo'd metric name must fail loudly, not masquerade as an empty
	// frontier or an "unsatisfiable" bisection. Workload counters are only
	// knowable after simulation, so the check runs over the evaluated
	// points: a name is addressable if it is a built-in objective, an axis
	// pseudo-metric, a patch path, or a counter some evaluated point
	// actually reported.
	known := res.knownMetrics()
	if p.Target != nil && !known[p.Target.Metric] {
		return nil, fmt.Errorf("explore: target names unknown metric %q (known: %s)", p.Target.Metric, knownList(known))
	}
	for _, pair := range p.Pareto {
		if !known[pair.X] || !known[pair.Y] {
			return nil, fmt.Errorf("explore: pareto pair %s vs %s names an unknown metric (known: %s)", pair.X, pair.Y, knownList(known))
		}
		res.Frontiers = append(res.Frontiers, extractFrontier(res.Points, pair))
	}
	return res, nil
}

// knownMetrics collects every metric name addressable on this result's
// points: the built-in objectives and pseudo-metrics, patch paths, and
// the workload counters the evaluated points reported.
func (res *Result) knownMetrics() map[string]bool {
	known := map[string]bool{
		MetricLatency: true, MetricDuty: true, MetricDead: true,
		MetricEfficiency: true, MetricC: true, MetricDT: true,
	}
	for i := range res.Points {
		for k := range res.Points[i].Metrics {
			known[k] = true
		}
		for p := range res.Points[i].Params {
			known[p] = true
		}
	}
	return known
}

// knownList renders a known-metric set for error messages, sorted.
func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for k := range known {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// extractFrontier returns the non-dominated evaluated points for one
// objective pair, sorted by X ascending (index breaks ties). A point
// missing either value (latency when no seed started, "c" on a preset) is
// excluded.
func extractFrontier(points []PointResult, pair MetricPair) Frontier {
	f := Frontier{X: pair.X, Y: pair.Y, Points: []int{}}
	dx, dy := float64(MetricDirection(pair.X)), float64(MetricDirection(pair.Y))
	type cand struct {
		idx  int
		x, y float64
	}
	var cs []cand
	for i := range points {
		if !points[i].Evaluated {
			continue
		}
		x, okx := points[i].Value(pair.X)
		y, oky := points[i].Value(pair.Y)
		if okx && oky {
			cs = append(cs, cand{i, x, y})
		}
	}
	for _, c := range cs {
		dominated := false
		for _, o := range cs {
			if o.idx == c.idx {
				continue
			}
			// o dominates c when it is at least as good on both objectives
			// and strictly better on one.
			if dx*o.x >= dx*c.x && dy*o.y >= dy*c.y && (dx*o.x > dx*c.x || dy*o.y > dy*c.y) {
				dominated = true
				break
			}
		}
		if !dominated {
			f.Points = append(f.Points, c.idx)
		}
	}
	sort.SliceStable(f.Points, func(a, b int) bool {
		xa, _ := points[f.Points[a]].Value(pair.X)
		xb, _ := points[f.Points[b]].Value(pair.X)
		//lint:reactlint-ignore dtarith sort tie-break: only bit-equal keys may fall through to the index comparison, a tolerance would make the order input-dependent
		if xa != xb {
			return xa < xb
		}
		return f.Points[a] < f.Points[b]
	})
	return f
}

// Job is an exploration running in the background — the Async handle.
type Job struct {
	cancel context.CancelFunc
	done   chan struct{}
	res    *Result
	err    error
}

// Async starts Run in the background and returns immediately. Wait blocks
// for the outcome; Cancel aborts between batches and fails in-flight ones.
func Async(ctx context.Context, sp *Space, ev Evaluator) *Job {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	j := &Job{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer cancel()
		j.res, j.err = Run(ctx, sp, ev)
		close(j.done)
	}()
	return j
}

// Cancel stops the exploration; Wait still reports completion afterwards,
// with context.Canceled as the error. Idempotent.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the exploration has drained.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the exploration finishes and returns its outcome.
func (j *Job) Wait() (*Result, error) {
	<-j.done
	return j.res, j.err
}
