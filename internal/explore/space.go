// Package explore is the design-space exploration subsystem: it turns the
// declarative scenario layer and the experiment engine into an optimizer
// over energy-buffer designs.
//
// A Space names a base scenario and a set of parameter axes — a
// static-buffer capacitance lattice (log or linear), a preset-buffer
// subset, timestep values, seed ranges, and arbitrary JSON-patchable spec
// knobs — and a strategy: an exhaustive grid, or an adaptive bisection
// that finds the minimal capacitance meeting a metric target (mean event
// latency, dead time, a workload counter) to the lattice's tolerance.
// Pareto frontiers over chosen metric pairs (latency vs. efficiency, dead
// time vs. size) are extracted from the evaluated points.
//
// Every evaluated point is a derived single-buffer scenario spec, so it
// resolves to the same cell fingerprint (scenario.Spec.FingerprintCell)
// the service's content-addressed cache keys on: explorations dedupe
// against each other, against sweeps, and against plain runs — a
// bisection re-run after a covering grid performs zero new simulations,
// because bisection only ever probes points of the same lattice.
package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"react/internal/runner"
	"react/internal/scenario"
)

// maxCells bounds one exploration's fan-out (points × seeds), matching the
// service's sweep bound.
const maxCells = 4096

// Strategy names.
const (
	// StrategyGrid evaluates every lattice point.
	StrategyGrid = "grid"
	// StrategyBisect binary-searches the capacitance lattice for the
	// minimal point meeting the target, assuming the target predicate
	// flips at most once (unmet to met) as capacitance grows.
	StrategyBisect = "bisect"
)

// Space is a declarative design-space exploration: a base scenario crossed
// with parameter axes, a strategy, and the analyses to run over the
// evaluated points. It is JSON-parseable (ParseSpace) and the body of the
// service's POST /explorations.
type Space struct {
	// Scenario names a registered scenario as the base; Spec carries an
	// inline one. Exactly one must be set.
	Scenario string         `json:"scenario,omitempty"`
	Spec     *scenario.Spec `json:"spec,omitempty"`

	// Static sweeps a custom fixed-size buffer over a capacitance lattice.
	Static *StaticAxis `json:"static,omitempty"`
	// Presets adds stock buffer designs (scenario.PresetBuffers names) as
	// additional points of the buffer axis.
	Presets []string `json:"presets,omitempty"`
	// DTs is an optional timestep axis; 0 entries mean the spec's default.
	DTs []float64 `json:"dts,omitempty"`
	// Patches are extra spec axes: each multiplies the space by its values,
	// applied to the base spec at a JSON-pointer path.
	Patches []PatchAxis `json:"patches,omitempty"`

	// The seed axis: an explicit list (each ≥ 1), or a range
	// seed_from..seed_to (from defaults to 1). With neither, the spec's
	// resolved seed is the single point. Every point aggregates its metrics
	// across all seeds (scenario.AggregateSeeds).
	Seeds    []uint64 `json:"seeds,omitempty"`
	SeedFrom uint64   `json:"seed_from,omitempty"`
	SeedTo   uint64   `json:"seed_to,omitempty"`

	// Strategy selects how points are evaluated: "grid" (default) or
	// "bisect".
	Strategy string `json:"strategy,omitempty"`
	// Target is the metric goal bisection searches for; with the grid
	// strategy it marks the minimal satisfying point per group instead.
	Target *Target `json:"target,omitempty"`
	// Pareto lists the metric pairs to extract frontiers for.
	Pareto []MetricPair `json:"pareto,omitempty"`
}

// StaticAxis is a capacitance lattice of custom fixed-size buffers:
// Points values from From to To, log-spaced by default. The optional
// electrical fields apply to every lattice point (zero keeps the
// StaticSpec defaults). The lattice resolution is the bisection tolerance:
// adjacent log points differ by a factor of (To/From)^(1/(Points-1)).
type StaticAxis struct {
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
	Scale  string  `json:"scale,omitempty"` // "log" (default) or "linear"
	VMax   float64 `json:"v_max,omitempty"`
	LeakI  float64 `json:"leak_i,omitempty"`
	VRated float64 `json:"v_rated,omitempty"`
}

// values returns the lattice in ascending order.
func (ax *StaticAxis) values() []float64 {
	if ax.Scale == "linear" {
		return runner.Linspace(ax.From, ax.To, ax.Points)
	}
	return runner.Logspace(ax.From, ax.To, ax.Points)
}

// validate checks the axis shape; per-point electrical validity is caught
// by the derived specs' own validation.
func (ax *StaticAxis) validate() error {
	if !(ax.From > 0) || math.IsInf(ax.From, 1) {
		return fmt.Errorf("explore: static axis: from must be a positive, finite capacitance")
	}
	if !(ax.To >= ax.From) || math.IsInf(ax.To, 1) {
		return fmt.Errorf("explore: static axis: to must be finite and ≥ from")
	}
	if ax.Points < 1 || ax.Points > maxCells {
		return fmt.Errorf("explore: static axis: points must be in 1..%d", maxCells)
	}
	// A degenerate multi-point lattice would yield N identical cell
	// addresses — the same duplicate-axis-point mistake duplicate seeds
	// and timesteps are rejected for.
	//lint:reactlint-ignore dtarith validation of a literally zero-width range; nearly-equal bounds are a legitimate (if odd) lattice
	if ax.Points > 1 && ax.To == ax.From {
		return fmt.Errorf("explore: static axis: %d points over a zero-width range (set points to 1 or widen from..to)", ax.Points)
	}
	if ax.Scale != "" && ax.Scale != "log" && ax.Scale != "linear" {
		return fmt.Errorf("explore: static axis: unknown scale %q (want log or linear)", ax.Scale)
	}
	return nil
}

// PatchAxis varies one JSON-expressible spec knob: the value at a
// JSON-pointer path ("/workload/period", "/trace/mean", ...) takes each of
// Values in turn. Paths into the buffer set, the seed, or the timestep are
// rejected — those have first-class axes.
type PatchAxis struct {
	Path   string    `json:"path"`
	Values []float64 `json:"values"`
}

func (pa *PatchAxis) validate() error {
	if !strings.HasPrefix(pa.Path, "/") || pa.Path == "/" {
		return fmt.Errorf("explore: patch path %q: want a JSON pointer like /workload/period", pa.Path)
	}
	root := strings.SplitN(strings.TrimPrefix(pa.Path, "/"), "/", 2)[0]
	switch root {
	case "buffers", "seed", "dt":
		return fmt.Errorf("explore: patch path %q: %s has a first-class axis", pa.Path, root)
	}
	if len(pa.Values) == 0 {
		return fmt.Errorf("explore: patch %s: at least one value is required", pa.Path)
	}
	seen := map[float64]bool{}
	for _, v := range pa.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("explore: patch %s: values must be finite", pa.Path)
		}
		if seen[v] {
			return fmt.Errorf("explore: patch %s: duplicate value %g", pa.Path, v)
		}
		seen[v] = true
	}
	return nil
}

// Target is a metric goal: the metric compared against a bound. Exactly
// one of Max ("value ≤ max", e.g. latency or dead time ceilings) or Min
// ("value ≥ min", e.g. a throughput floor) must be set. A point whose
// metric has no value (latency when no seed ever started) never meets a
// target.
type Target struct {
	// Metric names a point metric: latency, duty, dead_time, efficiency,
	// or any workload counter mean.
	Metric string   `json:"metric"`
	Max    *float64 `json:"max,omitempty"`
	Min    *float64 `json:"min,omitempty"`
}

func (t *Target) validate() error {
	if t.Metric == "" {
		return fmt.Errorf("explore: target: metric is required")
	}
	if (t.Max == nil) == (t.Min == nil) {
		return fmt.Errorf("explore: target %s: exactly one of max or min is required", t.Metric)
	}
	bound := t.Max
	if bound == nil {
		bound = t.Min
	}
	if math.IsNaN(*bound) || math.IsInf(*bound, 0) {
		return fmt.Errorf("explore: target %s: bound must be finite", t.Metric)
	}
	return nil
}

// Met reports whether a metric value satisfies the target; ok is false
// when the point has no value for the metric.
func (t *Target) Met(v float64, ok bool) bool {
	if !ok {
		return false
	}
	if t.Max != nil {
		return v <= *t.Max
	}
	return v >= *t.Min
}

// String renders the goal ("latency ≤ 0.5").
func (t *Target) String() string {
	if t.Max != nil {
		return fmt.Sprintf("%s <= %g", t.Metric, *t.Max)
	}
	return fmt.Sprintf("%s >= %g", t.Metric, *t.Min)
}

// MetricPair selects one Pareto frontier: the two objectives, each a point
// metric or the axis pseudo-metrics "c" (capacitance) and "dt". Each
// metric's optimization direction is fixed (MetricDirection).
type MetricPair struct {
	X string `json:"x"`
	Y string `json:"y"`
}

func (mp *MetricPair) validate() error {
	if mp.X == "" || mp.Y == "" || mp.X == mp.Y {
		return fmt.Errorf("explore: pareto pair %q vs %q: want two distinct metrics", mp.X, mp.Y)
	}
	return nil
}

// Point is one resolved design point: a derived single-buffer spec plus
// its axis coordinates.
type Point struct {
	// Spec is the derived scenario: the base's physics with exactly one
	// buffer, the resolved timestep, and the point's patches applied.
	Spec *scenario.Spec
	// Buffer is the point's display name ("REACT", "1.29 mF", ...).
	Buffer string
	// C is the static-axis capacitance; 0 for preset points.
	C float64
	// DT is the resolved timestep.
	DT float64
	// Params maps each patch path to this point's value (nil without
	// patch axes).
	Params map[string]float64
}

// Plan is a resolved Space: the ordered point lattice, the seed axis, and
// the strategy state. Build one with Space.Resolve.
type Plan struct {
	// Base is the resolved base spec (registry clone or validated inline).
	Base *scenario.Spec
	// Points is the full lattice in evaluation order: for each patch
	// combination, for each timestep, the static lattice ascending then
	// the presets.
	Points []Point
	// Seeds is the resolved seed axis (never empty, never 0).
	Seeds []uint64
	// Strategy is the resolved strategy name.
	Strategy string
	// Target and Pareto echo the space.
	Target *Target
	Pareto []MetricPair
	// groups lists, per (patch, dt) combination, the indices of its
	// static-lattice points in ascending capacitance order — the bisection
	// search domains.
	groups [][]int
}

// ParseSpace builds and validates a Space from its JSON encoding. Unknown
// fields are rejected, so a typo'd axis fails loudly instead of silently
// exploring the wrong space.
func ParseSpace(data []byte) (*Space, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Space
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("explore: parsing space: %w", err)
	}
	if _, err := sp.Resolve(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// staticLabel is the display name of a capacitance lattice point. Six
// significant digits keep adjacent points of any realistic lattice
// distinct.
func staticLabel(c float64) string {
	switch {
	case c >= 1:
		return fmt.Sprintf("%.6g F", c)
	case c >= 1e-3:
		return fmt.Sprintf("%.6g mF", c*1e3)
	default:
		return fmt.Sprintf("%.6g µF", c*1e6)
	}
}

// patchSpec applies one patch combination to the base spec through its
// JSON encoding and re-validates. Unknown paths fail (the re-decode
// rejects unknown fields), so a typo never silently no-ops.
func patchSpec(base *scenario.Spec, patches []PatchAxis, choice []int) (*scenario.Spec, error) {
	data, err := json.Marshal(base)
	if err != nil {
		return nil, fmt.Errorf("explore: encoding base spec: %w", err)
	}
	var m map[string]any
	if err = json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("explore: decoding base spec: %w", err)
	}
	for k, pa := range patches {
		if err = setPointer(m, pa.Path, pa.Values[choice[k]]); err != nil {
			return nil, err
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("explore: encoding patched spec: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	dec.DisallowUnknownFields()
	var s scenario.Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("explore: patched spec does not decode (unknown patch path?): %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("explore: patched spec invalid: %w", err)
	}
	return &s, nil
}

// setPointer sets the value at a JSON-pointer path, creating intermediate
// objects a spec's omitempty encoding left out.
func setPointer(m map[string]any, path string, v float64) error {
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	cur := m
	for _, seg := range segs[:len(segs)-1] {
		next, ok := cur[seg].(map[string]any)
		if !ok {
			if cur[seg] != nil {
				return fmt.Errorf("explore: patch path %q: %q is not an object", path, seg)
			}
			next = map[string]any{}
			cur[seg] = next
		}
		cur = next
	}
	cur[segs[len(segs)-1]] = v
	return nil
}

// Resolve validates the space and expands it into a Plan: the base spec,
// the full point lattice in evaluation order, the seed axis and the
// strategy state. Every derived spec is validated, so a bad axis value
// (a non-finite capacitance, an out-of-range patch) fails here, before any
// simulation.
func (sp *Space) Resolve() (*Plan, error) {
	var base *scenario.Spec
	switch {
	case sp.Scenario != "" && sp.Spec != nil:
		return nil, fmt.Errorf("explore: set either scenario or spec, not both")
	case sp.Scenario != "":
		s, ok := scenario.Lookup(sp.Scenario)
		if !ok {
			return nil, fmt.Errorf("explore: unknown scenario %q", sp.Scenario)
		}
		base = s
	case sp.Spec != nil:
		base = sp.Spec.Clone()
		if err := base.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("explore: a space needs a scenario name or an inline spec")
	}

	if sp.Static == nil && len(sp.Presets) == 0 {
		return nil, fmt.Errorf("explore: a space needs a buffer axis (static range and/or presets)")
	}
	if sp.Static != nil {
		if err := sp.Static.validate(); err != nil {
			return nil, err
		}
	}
	seenPreset := map[string]bool{}
	for _, name := range sp.Presets {
		if _, err := scenario.NewPresetBuffer(name); err != nil {
			return nil, fmt.Errorf("explore: %w", err)
		}
		if seenPreset[name] {
			return nil, fmt.Errorf("explore: duplicate preset %q", name)
		}
		seenPreset[name] = true
	}
	if len(sp.Patches) > 0 && base.Trace.Loaded != nil {
		return nil, fmt.Errorf("explore: patches need a JSON-expressible spec (the base carries a loaded trace)")
	}
	seenPath := map[string]bool{}
	for i := range sp.Patches {
		if err := sp.Patches[i].validate(); err != nil {
			return nil, err
		}
		if seenPath[sp.Patches[i].Path] {
			return nil, fmt.Errorf("explore: duplicate patch path %q", sp.Patches[i].Path)
		}
		seenPath[sp.Patches[i].Path] = true
	}

	strategy := sp.Strategy
	if strategy == "" {
		strategy = StrategyGrid
	}
	if strategy != StrategyGrid && strategy != StrategyBisect {
		return nil, fmt.Errorf("explore: unknown strategy %q (want %s or %s)", strategy, StrategyGrid, StrategyBisect)
	}
	if sp.Target != nil {
		if err := sp.Target.validate(); err != nil {
			return nil, err
		}
	}
	if strategy == StrategyBisect {
		if len(sp.Presets) > 0 {
			return nil, fmt.Errorf("explore: bisect searches the capacitance lattice; presets have no place on that axis")
		}
		if sp.Target == nil {
			return nil, fmt.Errorf("explore: bisect needs a target")
		}
	}
	// A target is answered per static-lattice group (the minimal
	// capacitance meeting it), so without that axis it could only be
	// silently ignored — reject instead, whatever the strategy.
	if sp.Target != nil && sp.Static == nil {
		return nil, fmt.Errorf("explore: a target needs a static capacitance axis to scan")
	}
	for i := range sp.Pareto {
		if err := sp.Pareto[i].validate(); err != nil {
			return nil, err
		}
	}

	// The seed and dt axes follow the same rules sweeps resolve with —
	// one shared implementation in the scenario layer.
	seeds, err := base.ResolveSeedAxis(sp.Seeds, sp.SeedFrom, sp.SeedTo, maxCells)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	dts, err := base.ResolveDTAxis(sp.DTs)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}

	// The buffer axis: the capacitance lattice ascending, then the presets.
	var bufSpecs []scenario.BufferSpec
	var bufC []float64
	if sp.Static != nil {
		for _, c := range sp.Static.values() {
			bufSpecs = append(bufSpecs, scenario.BufferSpec{
				Label: staticLabel(c),
				Static: &scenario.StaticSpec{
					C: c, VMax: sp.Static.VMax, LeakI: sp.Static.LeakI, VRated: sp.Static.VRated,
				},
			})
			bufC = append(bufC, c)
		}
	}
	for _, name := range sp.Presets {
		bufSpecs = append(bufSpecs, scenario.BufferSpec{Preset: name})
		bufC = append(bufC, 0)
	}

	// Bound the space arithmetically BEFORE expanding anything: a small
	// request body can describe a huge cross product, and Resolve runs on
	// the service's submission path.
	nCombos := 1
	for _, pa := range sp.Patches {
		if nCombos > maxCells/len(pa.Values) {
			nCombos = maxCells + 1
			break
		}
		nCombos *= len(pa.Values)
	}
	nPoints := nCombos
	for _, n := range []int{len(dts), len(bufSpecs), len(seeds)} {
		if nPoints > maxCells/n {
			nPoints = maxCells + 1
			break
		}
		nPoints *= n
	}
	if nPoints > maxCells {
		return nil, fmt.Errorf("explore: %d patch combos × %d dts × %d buffers × %d seeds exceed the %d-cell bound",
			nCombos, len(dts), len(bufSpecs), len(seeds), maxCells)
	}

	// Patch combinations in axis order, first axis outermost.
	combos := [][]int{nil}
	for _, pa := range sp.Patches {
		var next [][]int
		for _, c := range combos {
			for vi := range pa.Values {
				next = append(next, append(append([]int(nil), c...), vi))
			}
		}
		combos = next
	}

	plan := &Plan{Base: base, Seeds: seeds, Strategy: strategy, Target: sp.Target, Pareto: sp.Pareto}
	nStatic := 0
	if sp.Static != nil {
		nStatic = sp.Static.Points
	}
	for _, choice := range combos {
		patched := base
		var params map[string]float64
		if len(sp.Patches) > 0 {
			if patched, err = patchSpec(base, sp.Patches, choice); err != nil {
				return nil, err
			}
			params = map[string]float64{}
			for k, pa := range sp.Patches {
				params[pa.Path] = pa.Values[choice[k]]
			}
		}
		for _, dt := range dts {
			if nStatic > 0 {
				plan.groups = append(plan.groups, make([]int, 0, nStatic))
			}
			for bi, bs := range bufSpecs {
				derived := patched.Clone()
				derived.Buffers = []scenario.BufferSpec{bs}
				derived.DT = dt
				if err := derived.Validate(); err != nil {
					return nil, fmt.Errorf("explore: point %q: %w", bs.DisplayName(), err)
				}
				if bi < nStatic {
					g := plan.groups[len(plan.groups)-1]
					plan.groups[len(plan.groups)-1] = append(g, len(plan.Points))
				}
				plan.Points = append(plan.Points, Point{
					Spec:   derived,
					Buffer: bs.DisplayName(),
					C:      bufC[bi],
					DT:     dt,
					Params: params,
				})
			}
		}
	}
	if total := len(plan.Points) * len(seeds); total > maxCells {
		return nil, fmt.Errorf("explore: %d cells (%d points × %d seeds) exceed the %d-cell bound",
			total, len(plan.Points), len(seeds), maxCells)
	}
	return plan, nil
}
