package scenario

import (
	"fmt"
	"sync"
)

// The process-wide scenario registry. Builtin scenarios (the extended
// catalogue plus the paper grid) register during init; programs may add
// their own with Register. Lookups hand out clones, so callers can tweak a
// spec without corrupting the registry.
var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
	regOrder []string
)

// Register validates the spec and adds it to the registry. Registering a
// duplicate name is an error.
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry[s.Name] = s.Clone()
	regOrder = append(regOrder, s.Name)
	return nil
}

// mustRegister is Register for the builtin catalogue, where a failure is a
// programming error.
func mustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns a clone of the named scenario.
func Lookup(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// Names returns every registered scenario name in registration order (the
// extended catalogue first, then the paper grid).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// All returns clones of every registered scenario in registration order.
func All() []*Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	specs := make([]*Spec, 0, len(regOrder))
	for _, name := range regOrder {
		specs = append(specs, registry[name].Clone())
	}
	return specs
}

// Extended returns the registered non-paper scenarios in registration
// order — the catalogue beyond the paper's evaluation grid.
func Extended() []*Spec {
	var out []*Spec
	for _, s := range All() {
		if !s.Paper {
			out = append(out, s)
		}
	}
	return out
}
