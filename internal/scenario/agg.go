package scenario

import (
	"math"
	"sort"

	"react/internal/sim"
)

// This file is the one implementation of across-seed aggregation: the mean
// and population standard deviation per metric that `reactsim -seeds`
// prints and the service's sweep resource reports. Both consumers call
// AggregateSeeds on the same per-seed sim.Results, so a remote sweep's
// summary rows are bit-identical to a local sweep of the same spec and
// seeds — there is no second copy of the math to drift.

// MeanStd is one aggregated statistic: the across-seed mean and population
// standard deviation.
type MeanStd struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// meanStd computes the population mean ± std over vs, guarding the
// negative-variance rounding corner the same way the CLI always has.
// Values are accumulated in ascending order, so the statistic depends only
// on the multiset of values — summary rows are bit-identical however the
// caller happened to order the per-seed results.
func meanStd(vs []float64) MeanStd {
	n := float64(len(vs))
	if n == 0 {
		return MeanStd{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	m := MeanStd{Mean: sum / n}
	if v := sumSq/n - m.Mean*m.Mean; v > 0 {
		m.Std = math.Sqrt(v)
	}
	return m
}

// SeedSummary aggregates one cell's results across seeds.
type SeedSummary struct {
	// Seeds is how many per-seed results were aggregated.
	Seeds int `json:"seeds"`
	// Started counts the seeds whose run reached the enable voltage;
	// Latency covers only those (-1 is the "never started" sentinel, not a
	// time), and is the zero value when no seed started.
	Started int     `json:"started"`
	Latency MeanStd `json:"latency_s"`
	// Duty is the on-time fraction over every seed.
	Duty MeanStd `json:"duty"`
	// Metrics aggregates each workload metric over every seed; the key set
	// is the first result's, matching the CLI's sweep report.
	Metrics map[string]MeanStd `json:"metrics"`
}

// AggregateSeeds summarizes a multi-seed sweep of one cell: the statistics
// `reactsim -seeds` reports, computed from the per-seed results in seed
// order.
func AggregateSeeds(results []sim.Result) SeedSummary {
	s := SeedSummary{Seeds: len(results), Metrics: map[string]MeanStd{}}
	if len(results) == 0 {
		return s
	}
	var lat, duty []float64
	for _, r := range results {
		if r.Latency >= 0 {
			lat = append(lat, r.Latency)
		}
		duty = append(duty, r.OnFraction())
	}
	s.Started = len(lat)
	s.Latency = meanStd(lat)
	s.Duty = meanStd(duty)
	for k := range results[0].Metrics {
		vs := make([]float64, len(results))
		for i, r := range results {
			vs[i] = r.Metrics[k]
		}
		s.Metrics[k] = meanStd(vs)
	}
	return s
}
