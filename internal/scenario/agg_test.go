package scenario_test

import (
	"math"
	"reflect"
	"testing"

	"react/internal/scenario"
	"react/internal/sim"
)

func TestAggregateSeeds(t *testing.T) {
	results := []sim.Result{
		{Latency: 2, OnTime: 5, Duration: 10, Metrics: map[string]float64{"blocks": 4}},
		{Latency: 4, OnTime: 2, Duration: 10, Metrics: map[string]float64{"blocks": 8}},
		{Latency: -1, OnTime: 0, Duration: 10, Metrics: map[string]float64{"blocks": 0}},
	}
	s := scenario.AggregateSeeds(results)
	if s.Seeds != 3 || s.Started != 2 {
		t.Fatalf("seeds %d started %d, want 3 and 2", s.Seeds, s.Started)
	}
	// Latency covers only the started runs: mean 3, population std 1.
	if s.Latency.Mean != 3 || s.Latency.Std != 1 {
		t.Errorf("latency %+v, want mean 3 std 1", s.Latency)
	}
	// Duty covers every run: (0.5 + 0.2 + 0) / 3.
	if math.Abs(s.Duty.Mean-0.7/3) > 1e-15 {
		t.Errorf("duty mean %g, want %g", s.Duty.Mean, 0.7/3)
	}
	if m := s.Metrics["blocks"]; m.Mean != 4 {
		t.Errorf("blocks mean %g, want 4", m.Mean)
	}
}

// TestAggregateSeedsSingleResult pins the n=1 corner: a population of one
// has zero spread, and the mean is the value itself — no NaN from the
// variance subtraction.
func TestAggregateSeedsSingleResult(t *testing.T) {
	s := scenario.AggregateSeeds([]sim.Result{
		{Latency: 0.37, OnTime: 6, Duration: 10, Metrics: map[string]float64{"blocks": 41}},
	})
	if s.Seeds != 1 || s.Started != 1 {
		t.Fatalf("seeds %d started %d, want 1 and 1", s.Seeds, s.Started)
	}
	for label, ms := range map[string]scenario.MeanStd{
		"latency": s.Latency, "duty": s.Duty, "blocks": s.Metrics["blocks"],
	} {
		if math.IsNaN(ms.Mean) || math.IsNaN(ms.Std) {
			t.Errorf("%s: NaN in %+v", label, ms)
		}
		if ms.Std != 0 {
			t.Errorf("%s: std %g over a single result, want exactly 0", label, ms.Std)
		}
	}
	if s.Latency.Mean != 0.37 || s.Metrics["blocks"].Mean != 41 {
		t.Errorf("single-result means wrong: %+v", s)
	}
}

// TestAggregateSeedsOrderInvariant pins determinism under shuffled result
// order: the summary depends only on the multiset of per-seed results, not
// on the order the caller assembled them in (meanStd accumulates in sorted
// order, so even floating-point rounding cannot differ).
func TestAggregateSeedsOrderInvariant(t *testing.T) {
	mk := func(perm []int) []sim.Result {
		// Values chosen to exercise rounding: their FP sums genuinely
		// depend on accumulation order without the sort.
		lat := []float64{0.1, 1e9, 0.3, -1, 7e-8}
		blocks := []float64{1e16, 3, 1e-3, 2.5, 1e16}
		out := make([]sim.Result, len(perm))
		for i, p := range perm {
			out[i] = sim.Result{
				Latency: lat[p], OnTime: float64(p), Duration: 10,
				Metrics: map[string]float64{"blocks": blocks[p]},
			}
		}
		return out
	}
	ref := scenario.AggregateSeeds(mk([]int{0, 1, 2, 3, 4}))
	for _, perm := range [][]int{
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{1, 4, 0, 3, 2},
	} {
		if got := scenario.AggregateSeeds(mk(perm)); !reflect.DeepEqual(got, ref) {
			t.Errorf("order %v: summary diverged:\n got %+v\nwant %+v", perm, got, ref)
		}
	}
}

func TestAggregateSeedsDegenerate(t *testing.T) {
	if s := scenario.AggregateSeeds(nil); s.Seeds != 0 || s.Started != 0 {
		t.Errorf("empty aggregation not zero: %+v", s)
	}
	// No seed ever started: the latency statistic stays the zero value
	// rather than dividing by zero.
	s := scenario.AggregateSeeds([]sim.Result{{Latency: -1, Duration: 1, Metrics: map[string]float64{}}})
	if s.Started != 0 || s.Latency.Mean != 0 || s.Latency.Std != 0 {
		t.Errorf("never-started aggregation wrong: %+v", s)
	}
}

func TestValidateRejectsNonFiniteTiming(t *testing.T) {
	for label, mutate := range map[string]func(*scenario.Spec){
		"NaN dt":       func(s *scenario.Spec) { s.DT = math.NaN() },
		"Inf dt":       func(s *scenario.Spec) { s.DT = math.Inf(1) },
		"NaN tail cap": func(s *scenario.Spec) { s.TailCap = math.NaN() },
		"Inf tail cap": func(s *scenario.Spec) { s.TailCap = math.Inf(1) },
		"negative dt":  func(s *scenario.Spec) { s.DT = -1 },
	} {
		s := fpSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate must reject it", label)
		}
	}
	if err := fpSpec().Validate(); err != nil {
		t.Fatalf("the base spec must validate: %v", err)
	}
}

func TestRunOptionsValidate(t *testing.T) {
	for label, opt := range map[string]scenario.RunOptions{
		"NaN dt":             {DT: math.NaN()},
		"Inf dt":             {DT: math.Inf(1)},
		"negative dt":        {DT: -1e-3},
		"NaN record dt":      {RecordDT: math.NaN()},
		"-Inf record dt":     {RecordDT: math.Inf(-1)},
		"negative record dt": {RecordDT: -0.5},
	} {
		if err := opt.Validate(); err == nil {
			t.Errorf("%s: Validate must reject it", label)
		}
		// And the guard holds at the simulation chokepoint: a bad option
		// never reaches sim.Run.
		if _, err := fpSpec().Cell(0, opt); err == nil {
			t.Errorf("%s: Cell must reject it", label)
		}
	}
	if err := (scenario.RunOptions{Seed: 5, DT: 2e-3, RecordDT: 0.5}).Validate(); err != nil {
		t.Errorf("well-formed options rejected: %v", err)
	}
}
