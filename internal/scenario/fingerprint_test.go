package scenario_test

import (
	"strings"
	"testing"

	"react/internal/buffer"
	"react/internal/scenario"
	"react/internal/trace"
)

func fpSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:     "fp-base",
		Trace:    scenario.TraceSpec{Gen: "rf-cart"},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  scenario.Presets("770 µF", "REACT"),
	}
}

func mustFP(t *testing.T, s *scenario.Spec, opt scenario.RunOptions) string {
	t.Helper()
	fp, err := s.FingerprintRun(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fp, scenario.FingerprintPrefix) {
		t.Fatalf("fingerprint %q missing the %q prefix", fp, scenario.FingerprintPrefix)
	}
	return fp
}

func TestFingerprintEqualSpecsHashEqual(t *testing.T) {
	a := mustFP(t, fpSpec(), scenario.RunOptions{})
	b := mustFP(t, fpSpec(), scenario.RunOptions{})
	if a != b {
		t.Errorf("equal specs hash differently: %s vs %s", a, b)
	}
	// Presentation metadata is not part of the run's identity.
	renamed := fpSpec()
	renamed.Name = "fp-other"
	renamed.Title = "a different catalogue entry"
	renamed.Long = true
	if got := mustFP(t, renamed, scenario.RunOptions{}); got != a {
		t.Error("metadata-only differences must not change the fingerprint")
	}
	// Worker count never affects results, so it never affects the address.
	if got := mustFP(t, fpSpec(), scenario.RunOptions{Workers: 7}); got != a {
		t.Error("worker count must not change the fingerprint")
	}
}

func TestFingerprintResolvesDefaults(t *testing.T) {
	base := mustFP(t, fpSpec(), scenario.RunOptions{})
	spelled := fpSpec()
	spelled.Seed = 1
	spelled.DT = 1e-3
	spelled.TailCap = 600
	if got := mustFP(t, spelled, scenario.RunOptions{}); got != base {
		t.Error("explicitly spelled-out defaults must hash like the defaulted spec")
	}
	// An option override and the equivalent spec field share an address.
	viaOpt := mustFP(t, fpSpec(), scenario.RunOptions{Seed: 3, DT: 2e-3})
	inSpec := fpSpec()
	inSpec.Seed = 3
	inSpec.DT = 2e-3
	if got := mustFP(t, inSpec, scenario.RunOptions{}); got != viaOpt {
		t.Error("RunOptions overrides must hash like the equivalent spec fields")
	}
}

func TestFingerprintSeparatesEveryPhysicsField(t *testing.T) {
	base := mustFP(t, fpSpec(), scenario.RunOptions{})
	seen := map[string]string{"base": base}
	variants := map[string]func(s *scenario.Spec, opt *scenario.RunOptions){
		"trace gen":      func(s *scenario.Spec, _ *scenario.RunOptions) { s.Trace.Gen = "rf-mobile" },
		"trace mean":     func(s *scenario.Spec, _ *scenario.RunOptions) { s.Trace.Mean = 5e-3 },
		"trace duration": func(s *scenario.Spec, _ *scenario.RunOptions) { s.Trace.Duration = 100 },
		"converter":      func(s *scenario.Spec, _ *scenario.RunOptions) { s.Converter = "rf-rectifier" },
		"device profile": func(s *scenario.Spec, _ *scenario.RunOptions) { s.Device.Profile = "degraded" },
		"device active":  func(s *scenario.Spec, _ *scenario.RunOptions) { s.Device.ActiveI = 2e-3 },
		"bench":          func(s *scenario.Spec, _ *scenario.RunOptions) { s.Workload.Bench = "SC" },
		"workload knob":  func(s *scenario.Spec, _ *scenario.RunOptions) { s.Workload.Period = 9 },
		"buffer set":     func(s *scenario.Spec, _ *scenario.RunOptions) { s.Buffers = scenario.Presets("REACT") },
		"buffer order":   func(s *scenario.Spec, _ *scenario.RunOptions) { s.Buffers = scenario.Presets("REACT", "770 µF") },
		"static buffer": func(s *scenario.Spec, _ *scenario.RunOptions) {
			s.Buffers = append(s.Buffers, scenario.BufferSpec{Label: "1 mF", Static: &scenario.StaticSpec{C: 1e-3}})
		},
		"dt":       func(s *scenario.Spec, _ *scenario.RunOptions) { s.DT = 5e-3 },
		"tail cap": func(s *scenario.Spec, _ *scenario.RunOptions) { s.TailCap = 120 },
		"seed":     func(s *scenario.Spec, _ *scenario.RunOptions) { s.Seed = 2 },
		"opt seed": func(_ *scenario.Spec, o *scenario.RunOptions) { o.Seed = 4 },
		"opt dt":   func(_ *scenario.Spec, o *scenario.RunOptions) { o.DT = 4e-3 },
		"record":   func(_ *scenario.Spec, o *scenario.RunOptions) { o.RecordDT = 0.5 },
	}
	for label, mutate := range variants {
		s, opt := fpSpec(), scenario.RunOptions{}
		mutate(s, &opt)
		fp := mustFP(t, s, opt)
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("%q collides with %q: %s", label, prev, fp)
			}
		}
		seen[label] = fp
	}
}

// TestFingerprintResolvesSpecLayerDefaults pins the canonicalization of
// the defaults the spec layer itself applies: a defaulted steady trace or
// static buffer and its spelled-out equivalent run identical physics and
// must share one address.
func TestFingerprintResolvesSpecLayerDefaults(t *testing.T) {
	steady := func(mean, dur float64) *scenario.Spec {
		s := fpSpec()
		s.Trace = scenario.TraceSpec{Gen: "steady", Mean: mean, Duration: dur}
		return s
	}
	if a, b := mustFP(t, steady(0, 0), scenario.RunOptions{}), mustFP(t, steady(10e-3, 300), scenario.RunOptions{}); a != b {
		t.Error("the steady generator's spelled-out defaults must hash like the defaulted form")
	}
	if a, b := mustFP(t, steady(0, 0), scenario.RunOptions{}), mustFP(t, steady(5e-3, 300), scenario.RunOptions{}); a == b {
		t.Error("a non-default steady mean must change the address")
	}

	static := func(st scenario.StaticSpec) *scenario.Spec {
		s := fpSpec()
		s.Buffers = []scenario.BufferSpec{{Label: "custom", Static: &st}}
		return s
	}
	bare := mustFP(t, static(scenario.StaticSpec{C: 2e-3}), scenario.RunOptions{})
	spelled := mustFP(t, static(scenario.StaticSpec{
		C: 2e-3, VMax: 3.6, LeakI: scenario.StaticLeak(2e-3), VRated: 6.3,
	}), scenario.RunOptions{})
	if bare != spelled {
		t.Error("a static buffer's spelled-out defaults must hash like the defaulted form")
	}
	if got := mustFP(t, static(scenario.StaticSpec{C: 2e-3, VMax: 3.0}), scenario.RunOptions{}); got == bare {
		t.Error("a non-default static VMax must change the address")
	}
}

// TestFingerprintIndependentOfJSONKeyOrder pins the canonicalization: an
// inline JSON submission hashes the same regardless of object key order,
// because specs are parsed into structs before encoding.
func TestFingerprintIndependentOfJSONKeyOrder(t *testing.T) {
	a := `{"name":"fp-json","trace":{"gen":"rf-cart"},"workload":{"bench":"SC","period":7},"buffers":[{"preset":"REACT"}],"dt":0.002}`
	b := `{"dt":0.002,"buffers":[{"preset":"REACT"}],"workload":{"period":7,"bench":"SC"},"trace":{"gen":"rf-cart"},"name":"fp-json"}`
	sa, err := scenario.ParseSpec([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := scenario.ParseSpec([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := mustFP(t, sa, scenario.RunOptions{}), mustFP(t, sb, scenario.RunOptions{}); fa != fb {
		t.Errorf("key order changed the fingerprint: %s vs %s", fa, fb)
	}
}

func TestFingerprintLoadedTraceContent(t *testing.T) {
	loaded := func(name string, bump float64) *scenario.Spec {
		tr := trace.Steady(name, 5e-3, 60)
		tr.Power[10] += bump
		s := fpSpec()
		s.Trace = scenario.TraceSpec{Loaded: tr}
		return s
	}
	a := mustFP(t, loaded("shared", 0), scenario.RunOptions{})
	if b := mustFP(t, loaded("shared", 0), scenario.RunOptions{}); b != a {
		t.Error("identical loaded traces must hash identically")
	}
	if b := mustFP(t, loaded("shared", 1e-3), scenario.RunOptions{}); b == a {
		t.Error("a changed sample must change the fingerprint")
	}
	// The name seeds event schedules (TraceSeed), so it is content too.
	if b := mustFP(t, loaded("renamed", 0), scenario.RunOptions{}); b == a {
		t.Error("the trace name must change the fingerprint")
	}
}

func TestFingerprintRejectsCustomConstructors(t *testing.T) {
	s := fpSpec()
	s.Buffers = append(s.Buffers, scenario.BufferSpec{
		Label: "custom",
		New:   func() buffer.Buffer { return buffer.NewStatic(buffer.StaticConfig{C: 1e-3, VMax: 3.6}) },
	})
	if _, err := s.Fingerprint(); err == nil {
		t.Error("a Go-only constructor has no canonical encoding and must not fingerprint")
	}
}

// TestFingerprintCell pins the cell-address contract the service's
// cell-granular cache is built on: a cell's address is the run address of
// the equivalent single-buffer spec, distinct per buffer, and shared
// between any two specs whose physics agree on that buffer.
func TestFingerprintCell(t *testing.T) {
	s := fpSpec() // buffers: 770 µF, REACT
	c0, err := s.FingerprintCell(0, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.FingerprintCell(1, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c0 == c1 {
		t.Error("different buffers must have different cell addresses")
	}

	// A single-buffer run IS its cell.
	solo := fpSpec()
	solo.Buffers = scenario.Presets("REACT")
	if fp := mustFP(t, solo, scenario.RunOptions{}); fp != c1 {
		t.Error("a one-buffer run must share its cell's address")
	}

	// Two specs with the same physics but different buffer sets share the
	// overlapping cell — the sharing the service cache exploits.
	other := fpSpec()
	other.Buffers = scenario.Presets("Morphy", "REACT", "770 µF")
	oc, err := other.FingerprintCell(1, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oc != c1 {
		t.Error("overlapping buffers across specs must share a cell address")
	}

	// Options participate exactly as they do in run addresses.
	seeded, err := s.FingerprintCell(1, scenario.RunOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if seeded == c1 {
		t.Error("the seed must separate cell addresses")
	}
	// Seed 1 spelled out resolves to the default address.
	explicit, err := s.FingerprintCell(1, scenario.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if explicit != c1 {
		t.Error("the explicit default seed must share the defaulted cell address")
	}

	if _, err := s.FingerprintCell(2, scenario.RunOptions{}); err == nil {
		t.Error("an out-of-range buffer index must not fingerprint")
	}
	custom := fpSpec()
	custom.Buffers = []scenario.BufferSpec{{
		Label: "custom",
		New:   func() buffer.Buffer { return buffer.NewStatic(buffer.StaticConfig{C: 1e-3, VMax: 3.6}) },
	}}
	if _, err := custom.FingerprintCell(0, scenario.RunOptions{}); err == nil {
		t.Error("a Go-only constructor cell has no canonical encoding and must not fingerprint")
	}
}

func TestRegisteredScenariosAllFingerprint(t *testing.T) {
	seen := map[string]string{}
	for _, s := range scenario.All() {
		fp, err := s.Fingerprint()
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share a fingerprint", s.Name, prev)
		}
		seen[fp] = s.Name
	}
}

// TestValidateRejectsLabelShadowingPreset covers the display-name collision
// Run.Result/CellNamed would otherwise silently shadow: a custom buffer
// whose label equals another buffer's preset name.
func TestValidateRejectsLabelShadowingPreset(t *testing.T) {
	s := fpSpec()
	s.Buffers = append(s.Buffers, scenario.BufferSpec{
		Label:  "REACT",
		Static: &scenario.StaticSpec{C: 1e-3},
	})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate buffer") {
		t.Errorf("label shadowing a preset must fail validation, got %v", err)
	}
}
