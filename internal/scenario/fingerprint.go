package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"react/internal/ckpt"
	"react/internal/trace"
)

// This file computes content addresses for scenario runs: a stable,
// canonical encoding of everything that determines a run's results, hashed
// with SHA-256. Two submissions with the same fingerprint produce
// bit-identical results (the engine is deterministic for any worker count),
// which is what lets the service layer deduplicate and cache runs.
//
// The canonical form excludes presentation metadata (Name, Title, Paper,
// Long) — it describes the physics, not the catalogue entry — and resolves
// the defaulted knobs the spec layer itself resolves (seed 0 → the spec's
// seed → 1; timestep 0 → the spec's → 1 ms; tail cap 0 → 600 s; the
// steady generator's mean/duration; a static buffer's VMax/LeakI/VRated),
// so a defaulted run and its explicitly spelled-out equivalent share one
// address. Workload-internal defaults (an SC period, a PF interarrival)
// are hashed raw: spelling one out produces a distinct address even when
// it matches the benchmark's built-in default — a dedup miss, never a
// false hit. Worker count is excluded: results are deterministic
// regardless of pool size.

// The fpcomplete analyzer cross-checks this file against the spec structs:
// every JSON-visible field of the types below must either feed the
// canonical form (mentioned here or wholesale-encoded through canonicalRun)
// or be explicitly allowlisted with a reason. A new physics knob that
// reaches none of the two breaks the build — a missed field would let two
// different runs share a cache address.
//
//lint:fpcomplete-target Spec TraceSpec DeviceSpec WorkloadSpec BufferSpec StaticSpec RunOptions ckpt.Config
//lint:fpcomplete-allow Spec.Name presentation metadata, not physics (canonical form comment above)
//lint:fpcomplete-allow Spec.Title presentation metadata, not physics
//lint:fpcomplete-allow Spec.Paper presentation metadata, not physics
//lint:fpcomplete-allow Spec.Long presentation metadata, not physics
//lint:fpcomplete-allow RunOptions.Workers results are deterministic regardless of pool size
//lint:fpcomplete-allow RunOptions.Probe observation hook: probes never change results (sim.Probe contract)

// FingerprintPrefix tags every fingerprint with the hash it was built from.
const FingerprintPrefix = "sha256:"

// canonicalRun is the hashed form of a Spec resolved against RunOptions.
// Field order (and therefore encoding) is fixed; bump the fingerprint
// version comment below when changing it.
type canonicalRun struct {
	Trace     canonicalTrace `json:"trace"`
	Converter string         `json:"converter"`
	Device    DeviceSpec     `json:"device"`
	Workload  WorkloadSpec   `json:"workload"`
	Buffers   []BufferSpec   `json:"buffers"`
	DT        float64        `json:"dt"`
	TailCap   float64        `json:"tail_cap"`
	Seed      uint64         `json:"seed"`
	RecordDT  float64        `json:"record_dt,omitempty"`
}

// canonicalTrace is the trace selection with a Loaded trace replaced by a
// digest of its content (name, spacing, and every sample — the name
// participates because event seeds derive from it).
type canonicalTrace struct {
	Gen      string  `json:"gen,omitempty"`
	Mean     float64 `json:"mean,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Digest   string  `json:"digest,omitempty"`
}

// traceDigest hashes a loaded trace's content.
func traceDigest(tr *trace.Trace) string {
	h := sha256.New()
	h.Write([]byte(tr.Name))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(tr.DT))
	h.Write(buf[:])
	for _, p := range tr.Power {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Fingerprint returns the content address of the runs this spec produces at
// its default options — the registry key the service's result cache uses
// for named-scenario submissions. Specs carrying a Go-only custom buffer
// constructor have no canonical encoding and return an error.
func (s *Spec) Fingerprint() (string, error) {
	return s.FingerprintRun(RunOptions{})
}

// FingerprintRun returns the content address of the spec resolved against
// opt: equal fingerprints mean bit-identical Run results. JSON field order
// of an inline submission never matters — specs are parsed into structs
// before encoding — and option defaults hash identically to their explicit
// values.
func (s *Spec) FingerprintRun(opt RunOptions) (string, error) {
	return s.fingerprintBuffers(opt, s.Buffers)
}

// FingerprintCell returns the content address of buffer i's cell under opt:
// the canonical physics (trace, converter, device, workload, resolved
// seed/timestep/tail cap) plus that one buffer. A cell's address equals the
// run address of the equivalent single-buffer spec, so a one-buffer run IS
// its cell — which is what lets the service cache share cells between runs
// and sweeps that overlap on any buffer.
func (s *Spec) FingerprintCell(i int, opt RunOptions) (string, error) {
	if i < 0 || i >= len(s.Buffers) {
		return "", fmt.Errorf("scenario %q: buffer index %d out of range", s.Name, i)
	}
	return s.fingerprintBuffers(opt, s.Buffers[i:i+1])
}

// fingerprintBuffers canonicalizes the spec's physics against opt with the
// given buffer subset and hashes the encoding.
func (s *Spec) fingerprintBuffers(opt RunOptions, buffers []BufferSpec) (string, error) {
	c := canonicalRun{
		Converter: s.Converter,
		Device:    s.Device,
		Workload:  s.Workload,
		DT:        s.DT,
		TailCap:   s.TailCap,
		Seed:      opt.seed(s),
		RecordDT:  opt.RecordDT,
	}
	if ck := c.Device.Checkpoint; ck != nil {
		// Resolve the scheme's defaulted knobs so a defaulted block and its
		// spelled-out equivalent share one address — and canonicalize the
		// explicit no-op ({"scheme": "none"} or {}) to the nil pointer, which
		// the encoder omits entirely: a scheme-less device keeps the address
		// it had before checkpoint schemes existed.
		res, err := ckpt.Resolve(*ck)
		if err != nil {
			return "", fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if res.Scheme == "none" {
			c.Device.Checkpoint = nil
		} else {
			c.Device.Checkpoint = &res
		}
	}
	if c.Converter == "" {
		c.Converter = "identity"
	}
	if opt.DT > 0 {
		c.DT = opt.DT
	}
	if c.DT == 0 {
		c.DT = 1e-3
	}
	if c.TailCap == 0 {
		c.TailCap = 600
	}
	c.Buffers = make([]BufferSpec, len(buffers))
	for i, bs := range buffers {
		if bs.New != nil {
			return "", fmt.Errorf("scenario %q: buffer %q: custom constructor buffers have no canonical encoding", s.Name, bs.DisplayName())
		}
		if bs.Static != nil {
			// Resolve the defaults BufferSpec.Build applies, mirroring it.
			st := *bs.Static
			if st.VMax <= 0 {
				st.VMax = 3.6
			}
			if st.LeakI <= 0 {
				st.LeakI = StaticLeak(st.C)
			}
			if st.VRated <= 0 {
				st.VRated = 6.3
			}
			bs.Static = &st
		}
		c.Buffers[i] = bs
	}
	ts := s.Trace
	c.Trace = canonicalTrace{Gen: ts.Gen, Mean: ts.Mean, Duration: ts.Duration}
	if ts.Gen == steadyGen {
		// Resolve the steady generator's defaults, mirroring TraceSpec.Build.
		if c.Trace.Mean <= 0 {
			c.Trace.Mean = 10e-3
		}
		if c.Trace.Duration <= 0 {
			c.Trace.Duration = 300
		}
	}
	if ts.Loaded != nil {
		c.Trace.Digest = traceDigest(ts.Loaded)
	}
	data, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("scenario %q: encoding canonical form: %w", s.Name, err)
	}
	return FingerprintPrefix + fmt.Sprintf("%x", sha256.Sum256(data)), nil
}
