package scenario_test

// The checkpoint axis at the scenario layer: the JSON-expressible
// DeviceSpec.Checkpoint block, its validation, and — most load-bearing —
// its fingerprint canonicalization. A scheme-less device must keep the
// content address it had before checkpoint schemes existed, and an
// explicit no-op block must collapse onto it, or every cached cell in a
// deployed service would be orphaned by this refactor.

import (
	"reflect"
	"strings"
	"testing"

	"react/internal/ckpt"
	"react/internal/scenario"
)

// TestFingerprintCheckpointCanonicalization pins the address algebra of
// the checkpoint block.
func TestFingerprintCheckpointCanonicalization(t *testing.T) {
	base := mustFP(t, fpSpec(), scenario.RunOptions{})

	// The explicit no-op forms collapse onto the legacy (nil) address.
	for _, cfg := range []ckpt.Config{{}, {Scheme: "none"}} {
		s := fpSpec()
		s.Device.Checkpoint = &cfg
		if got := mustFP(t, s, scenario.RunOptions{}); got != base {
			t.Errorf("explicit %+v checkpoint must share the scheme-less address", cfg)
		}
	}

	// A defaulted scheme block and its spelled-out equivalent are one run.
	odab := fpSpec()
	odab.Device.Checkpoint = &ckpt.Config{Scheme: "odab"}
	odabFP := mustFP(t, odab, scenario.RunOptions{})
	spelled := fpSpec()
	spelled.Device.Checkpoint = &ckpt.Config{
		Scheme: "odab", Margin: ckpt.DefaultMargin,
		BackupTime: ckpt.DefaultBackup().Time, BackupI: ckpt.DefaultBackup().I,
		RestoreTime: ckpt.DefaultRestore().Time, RestoreI: ckpt.DefaultRestore().I,
	}
	if got := mustFP(t, spelled, scenario.RunOptions{}); got != odabFP {
		t.Error("a spelled-out default odab block must hash like the defaulted one")
	}

	// Scheme choice and scheme knobs separate addresses.
	seen := map[string]string{"base": base, "odab": odabFP}
	variants := map[string]ckpt.Config{
		"periodic":          {Scheme: "periodic"},
		"periodic interval": {Scheme: "periodic", Interval: 2},
		"odab margin":       {Scheme: "odab", Margin: 2},
		"odab backup cost":  {Scheme: "odab", BackupTime: 0.2},
	}
	for label, cfg := range variants {
		s := fpSpec()
		s.Device.Checkpoint = &cfg
		fp := mustFP(t, s, scenario.RunOptions{})
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("%q collides with %q", label, prev)
			}
		}
		seen[label] = fp
	}
}

// TestEveryScenarioNoneSchemeKeepsAddress is the registry-wide equivalence
// suite: for every registered scenario, adding an explicit "none"
// checkpoint block changes neither validity nor the content address — so
// every one of the golden files also pins the explicit-none spelling.
func TestEveryScenarioNoneSchemeKeepsAddress(t *testing.T) {
	for _, name := range scenario.Names() {
		s, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("registry lists unknown scenario %q", name)
		}
		if s.Device.Checkpoint != nil {
			continue // scheme-bearing scenarios have their own addresses
		}
		want := mustFP(t, s, scenario.RunOptions{})
		c := s.Clone()
		c.Device.Checkpoint = &ckpt.Config{Scheme: "none"}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: explicit none must validate: %v", name, err)
		}
		if got := mustFP(t, c, scenario.RunOptions{}); got != want {
			t.Errorf("%s: explicit none checkpoint moved the content address", name)
		}
	}
}

// TestCellExplicitNoneBitIdentical runs one fast scenario's cell both ways:
// the explicit no-op block must be bit-identical to the nil pointer, not
// just address-identical.
func TestCellExplicitNoneBitIdentical(t *testing.T) {
	s, ok := scenario.Lookup("energy-attack")
	if !ok {
		t.Fatal("energy-attack scenario missing")
	}
	want, err := s.Cell(0, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Device.Checkpoint = &ckpt.Config{Scheme: "none"}
	got, err := c.Cell(0, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("explicit none checkpoint diverges from the scheme-less run")
	}
}

// TestValidateCheckpoint covers the checkpoint block's validation paths
// through Spec.Validate and ParseSpec.
func TestValidateCheckpoint(t *testing.T) {
	bad := fpSpec()
	bad.Device.Checkpoint = &ckpt.Config{Scheme: "flash"}
	err := bad.Validate()
	if err == nil || !strings.Contains(err.Error(), "none, odab, periodic") {
		t.Errorf("unknown scheme must fail listing the registry, got %v", err)
	}
	knob := fpSpec()
	knob.Device.Checkpoint = &ckpt.Config{Scheme: "none", Interval: 3}
	if err := knob.Validate(); err == nil {
		t.Error("a knob on the none scheme must be rejected")
	}

	parsed, err := scenario.ParseSpec([]byte(`{
		"name": "json-ckpt",
		"trace": {"gen": "rf-cart"},
		"device": {"checkpoint": {"scheme": "periodic", "interval": 2.5}},
		"workload": {"bench": "DE"},
		"buffers": [{"preset": "REACT"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Device.Checkpoint == nil || parsed.Device.Checkpoint.Interval != 2.5 {
		t.Errorf("checkpoint block lost in JSON round-trip: %+v", parsed.Device.Checkpoint)
	}
	if _, err := scenario.ParseSpec([]byte(`{
		"name": "json-ckpt-bad",
		"trace": {"gen": "rf-cart"},
		"device": {"checkpoint": {"scheme": "odab", "interval": 1}},
		"workload": {"bench": "DE"},
		"buffers": [{"preset": "REACT"}]
	}`)); err == nil || !strings.Contains(err.Error(), "interval") {
		t.Errorf("odab with an interval knob must be rejected, got %v", err)
	}
}

// TestCloneDeepCopiesCheckpoint: mutating a clone's checkpoint block must
// not reach back into the original (the explore layer patches clones).
func TestCloneDeepCopiesCheckpoint(t *testing.T) {
	s := fpSpec()
	s.Device.Checkpoint = &ckpt.Config{Scheme: "periodic", Interval: 1}
	c := s.Clone()
	c.Device.Checkpoint.Interval = 9
	if s.Device.Checkpoint.Interval != 1 {
		t.Error("Clone shares the checkpoint block with the original")
	}
}
