package scenario

import (
	"fmt"

	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/sim"
	"react/internal/trace"
)

// BatchItem names one cell — buffer index Buffer of Spec — for lockstep
// execution alongside other cells that share its (trace, seed, timestep)
// batch key.
type BatchItem struct {
	Spec   *Spec
	Buffer int
}

// dt resolves the effective integration timestep for a spec, including the
// engine's 1 ms default, so batch compatibility is judged on the value the
// engine will actually step with.
func (o RunOptions) dt(s *Spec) float64 {
	dt := o.DT
	if dt == 0 {
		dt = s.DT
	}
	if dt <= 0 {
		dt = 1e-3
	}
	return dt
}

// RunBatch materializes and simulates the given cells in lockstep over one
// shared trace pass (sim.RunBatch): the trace is built once and sampled
// once per tick for the whole batch. All items must agree on the batch
// key — the same TraceSpec, effective seed and effective timestep; the
// schedulers above (Spec.Run, the grid driver, reactd's cell fan-out) only
// group cells that do. Everything else (converter, device, workload,
// buffer, tail cap) is per-cell and may differ across specs.
//
// Results are index-parallel to items and bit-identical to running every
// cell alone through Cell: the trace content is deterministic in the seed,
// and the lockstep executor preserves the reference loop's arithmetic
// exactly. st, when non-nil, accumulates the executor's tick accounting.
func RunBatch(items []BatchItem, opt RunOptions, st *sim.Stats) ([]sim.Result, error) {
	if len(items) == 0 {
		return nil, nil
	}
	for _, it := range items {
		if it.Spec == nil {
			return nil, fmt.Errorf("scenario batch: nil spec")
		}
	}
	s0 := items[0].Spec
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s0.Name, err)
	}
	seed := opt.seed(s0)
	dt := opt.dt(s0)
	for _, it := range items {
		s := it.Spec
		if it.Buffer < 0 || it.Buffer >= len(s.Buffers) {
			return nil, fmt.Errorf("scenario %s: buffer index %d out of range", s.Name, it.Buffer)
		}
		if sd := opt.seed(s); sd != seed {
			return nil, fmt.Errorf("scenario %s: batch mixes seeds %d and %d", s.Name, seed, sd)
		}
		//lint:reactlint-ignore dtarith the batch key is exact identity: nearly-equal timesteps must not share a lockstep pass
		if d := opt.dt(s); d != dt {
			return nil, fmt.Errorf("scenario %s: batch mixes timesteps %g and %g", s.Name, dt, d)
		}
		if s.Trace != s0.Trace {
			return nil, fmt.Errorf("scenario %s: batch mixes trace specs (with scenario %s)", s.Name, s0.Name)
		}
	}

	tr, err := s0.Trace.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s0.Name, err)
	}
	cfgs := make([]sim.Config, len(items))
	for i := range items {
		if cfgs[i], err = buildCellConfig(items[i], tr, seed, dt, opt.RecordDT, opt.Probe); err != nil {
			return nil, err
		}
	}
	res, err := sim.RunBatch(cfgs, st)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s0.Name, err)
	}
	return res, nil
}

// buildCellConfig materializes one cell of a batch — converter, device
// profile, workload, buffer, and checkpoint scheme — wired to the shared
// trace. Errors carry the scenario/buffer context.
func buildCellConfig(it BatchItem, tr *trace.Trace, seed uint64, dt, recordDT float64, probe sim.Probe) (sim.Config, error) {
	s := it.Spec
	fail := func(err error) (sim.Config, error) {
		return sim.Config{}, fmt.Errorf("scenario %s: %s: %w", s.Name, s.Buffers[it.Buffer].DisplayName(), err)
	}
	conv, err := harvest.ByName(s.Converter)
	if err != nil {
		return fail(err)
	}
	prof, err := s.Device.Build()
	if err != nil {
		return fail(err)
	}
	wl, err := s.Workload.Build(tr, seed, prof)
	if err != nil {
		return fail(err)
	}
	buf, err := s.Buffers[it.Buffer].Build()
	if err != nil {
		return fail(err)
	}
	dev := mcu.NewDevice(prof, wl)
	if dev.Scheme, err = s.Device.BuildScheme(); err != nil {
		return fail(err)
	}
	return sim.Config{
		DT:        dt,
		Frontend:  harvest.NewFrontend(tr, conv),
		Buffer:    buf,
		Device:    dev,
		TailCap:   s.TailCap,
		RecordDT:  recordDT,
		Probe:     probe,
		ProbeCell: it.Buffer,
	}, nil
}
