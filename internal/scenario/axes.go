package scenario

import (
	"errors"
	"fmt"
)

// This file is the one implementation of the seed and timestep axes every
// multi-point resource resolves: the service's sweeps, the exploration
// subsystem's spaces, and any future axis-shaped API. One copy means the
// rules — seeds start at 1, duplicates double-weight statistics and are
// rejected, dt 0 means the spec's default and duplicates are detected
// after resolution — can never drift between consumers.

// ResolveSeed resolves the effective seed of the spec under an override:
// 0 means the spec's seed, which itself defaults to 1.
func (s *Spec) ResolveSeed(override uint64) uint64 {
	return RunOptions{Seed: override}.seed(s)
}

// ResolveDT resolves the effective timestep of the spec under an
// override, mirroring the engine's defaults (0 → the spec's → 1 ms).
func (s *Spec) ResolveDT(override float64) float64 {
	if override > 0 {
		return override
	}
	if s.DT > 0 {
		return s.DT
	}
	return 1e-3
}

// ResolveSeedAxis resolves a seed-axis request against the spec: an
// explicit list (each ≥ 1, distinct), a range from..to (from defaulting
// to 1, spanning at most maxCells seeds), or — with neither — the spec's
// single resolved seed. Exactly the axis `POST /sweeps` and explorations
// accept.
func (s *Spec) ResolveSeedAxis(list []uint64, from, to uint64, maxCells int) ([]uint64, error) {
	switch {
	case len(list) > 0:
		if from != 0 || to != 0 {
			return nil, errors.New("set either seeds or seed_from/seed_to, not both")
		}
		seen := map[uint64]bool{}
		for _, seed := range list {
			if seed == 0 {
				return nil, errors.New("seed 0 is not expressible (seeds start at 1)")
			}
			// A repeated seed would double-weight that run in every summary
			// statistic without simulating anything new.
			if seen[seed] {
				return nil, fmt.Errorf("duplicate seed %d", seed)
			}
			seen[seed] = true
		}
		return append([]uint64(nil), list...), nil
	case to != 0:
		if from == 0 {
			from = 1
		}
		if to < from {
			return nil, fmt.Errorf("empty seed range %d..%d", from, to)
		}
		if to-from >= uint64(maxCells) {
			return nil, fmt.Errorf("seed range %d..%d exceeds the %d-cell bound", from, to, maxCells)
		}
		seeds := make([]uint64, 0, to-from+1)
		for seed := from; seed <= to; seed++ {
			seeds = append(seeds, seed)
		}
		return seeds, nil
	case from != 0:
		return nil, errors.New("seed_from needs seed_to")
	default:
		return []uint64{s.ResolveSeed(0)}, nil
	}
}

// ResolveDTAxis resolves a timestep-axis request against the spec: each
// entry validated and resolved (0 means the spec's default) and
// duplicates rejected after resolution — 0 and the spec's spelled-out
// default are the same axis point and would yield two identical rows. An
// empty request is the spec's single resolved timestep.
func (s *Spec) ResolveDTAxis(list []float64) ([]float64, error) {
	if len(list) == 0 {
		return []float64{s.ResolveDT(0)}, nil
	}
	dts := make([]float64, 0, len(list))
	seen := map[float64]bool{}
	for _, dt := range list {
		if err := (RunOptions{DT: dt}).Validate(); err != nil {
			return nil, err
		}
		rdt := s.ResolveDT(dt)
		if seen[rdt] {
			return nil, fmt.Errorf("duplicate timestep %g", rdt)
		}
		seen[rdt] = true
		dts = append(dts, rdt)
	}
	return dts, nil
}
