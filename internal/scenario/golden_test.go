package scenario_test

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"react/internal/buffer"
	"react/internal/experiments"
	"react/internal/scenario"
	"react/internal/sim"
	"react/internal/simtest"
)

// The golden-metrics regression harness: every registered scenario (the
// extended catalogue and the paper grid) has a committed metrics snapshot
// at the pinned default seed. Any behavioural change to the simulation
// stack — buffers, workloads, traces, the hot loop — shows up as a golden
// diff, which makes this suite the tier-1 guard for future optimizations.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/scenario -run Golden -update

var update = flag.Bool("update", false, "rewrite the golden metric files")

// goldenTol is the comparison tolerance: effectively exact (the files
// store full float64 precision), with room for last-bit formatting noise.
const goldenTol = 1e-9

type goldenCell struct {
	Latency   float64            `json:"latency_s"`
	OnTime    float64            `json:"on_time_s"`
	Duration  float64            `json:"duration_s"`
	Cycles    int                `json:"cycles"`
	MeanCycle float64            `json:"mean_cycle_s"`
	Stored    float64            `json:"stored_j"`
	Ledger    buffer.Ledger      `json:"ledger"`
	Metrics   map[string]float64 `json:"metrics"`
}

type goldenFile struct {
	Scenario string                `json:"scenario"`
	Seed     uint64                `json:"seed"`
	Buffers  map[string]goldenCell `json:"buffers"`
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func toGolden(r sim.Result) goldenCell {
	return goldenCell{
		Latency:   r.Latency,
		OnTime:    r.OnTime,
		Duration:  r.Duration,
		Cycles:    r.Cycles,
		MeanCycle: r.MeanCycle,
		Stored:    r.Stored,
		Ledger:    r.Ledger,
		Metrics:   r.Metrics,
	}
}

func writeGolden(t *testing.T, g goldenFile) {
	t.Helper()
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath(g.Scenario)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(g.Scenario), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, name string) goldenFile {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("%s: %v", goldenPath(name), err)
	}
	return g
}

// near reports a-b within the golden tolerance, relative for large values.
func near(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= goldenTol*scale
}

func diffCell(t *testing.T, label string, got, want goldenCell) {
	t.Helper()
	check := func(field string, g, w float64) {
		if !near(g, w) {
			t.Errorf("%s: %s drifted: %.17g, golden %.17g", label, field, g, w)
		}
	}
	check("latency", got.Latency, want.Latency)
	check("on_time", got.OnTime, want.OnTime)
	check("duration", got.Duration, want.Duration)
	check("mean_cycle", got.MeanCycle, want.MeanCycle)
	check("stored", got.Stored, want.Stored)
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles drifted: %d, golden %d", label, got.Cycles, want.Cycles)
	}
	check("ledger.harvested", got.Ledger.Harvested, want.Ledger.Harvested)
	check("ledger.consumed", got.Ledger.Consumed, want.Ledger.Consumed)
	check("ledger.clipped", got.Ledger.Clipped, want.Ledger.Clipped)
	check("ledger.leaked", got.Ledger.Leaked, want.Ledger.Leaked)
	check("ledger.switch_loss", got.Ledger.SwitchLoss, want.Ledger.SwitchLoss)
	check("ledger.overhead", got.Ledger.Overhead, want.Ledger.Overhead)
	for k, w := range want.Metrics {
		g, ok := got.Metrics[k]
		if !ok {
			t.Errorf("%s: metric %q disappeared", label, k)
			continue
		}
		if !near(g, w) {
			t.Errorf("%s: metric %q drifted: %.17g, golden %.17g", label, k, g, w)
		}
	}
	for k := range got.Metrics {
		if _, ok := want.Metrics[k]; !ok {
			t.Errorf("%s: new metric %q not in golden (run -update)", label, k)
		}
	}
}

// TestGoldenScenarios runs every extended (non-paper) scenario at the
// pinned seed and diffs its metrics against the committed golden file.
// Long scenarios are skipped under -short.
func TestGoldenScenarios(t *testing.T) {
	for _, spec := range scenario.Extended() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Long {
				t.Skip("long scenario; run without -short")
			}
			run, err := spec.Run(context.Background(), nil, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got := goldenFile{Scenario: spec.Name, Seed: run.Seed, Buffers: map[string]goldenCell{}}
			for i, res := range run.Results {
				label := spec.Buffers[i].DisplayName()
				got.Buffers[label] = toGolden(res)
				simtest.CheckBalance(t, spec.Name+"/"+label, res, 1e-6)
			}
			if *update {
				writeGolden(t, got)
				return
			}
			want := readGolden(t, spec.Name)
			if want.Seed != got.Seed {
				t.Fatalf("golden seed %d, run seed %d", want.Seed, got.Seed)
			}
			for label, w := range want.Buffers {
				g, ok := got.Buffers[label]
				if !ok {
					t.Errorf("buffer %q disappeared from the scenario", label)
					continue
				}
				diffCell(t, spec.Name+"/"+label, g, w)
			}
			for label := range got.Buffers {
				if _, ok := want.Buffers[label]; !ok {
					t.Errorf("buffer %q not in golden (run -update)", label)
				}
			}
		})
	}
}

// TestGoldenPaperGrid runs the full paper evaluation through the
// registry-consuming grid path, diffs every cell against the paper
// scenarios' golden files, and pins the Figure 7 headline numbers to the
// values recorded in BENCH_1.json — a zero-diff guarantee that the
// scenario port did not move the paper's results.
func TestGoldenPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid takes ~1 minute")
	}
	g, err := experiments.RunGrid(experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Cell-level goldens, one file per paper scenario (bench × trace).
	for _, bench := range experiments.BenchmarkNames {
		for _, tr := range g.Traces {
			name := scenario.PaperName(bench, tr.Name)
			got := goldenFile{Scenario: name, Seed: 1, Buffers: map[string]goldenCell{}}
			for _, buf := range experiments.BufferNames {
				res := g.At(bench, tr.Name, buf)
				got.Buffers[buf] = toGolden(res)
				simtest.CheckBalance(t, name+"/"+buf, res, 1e-6)
			}
			if *update {
				writeGolden(t, got)
				continue
			}
			want := readGolden(t, name)
			for label, w := range want.Buffers {
				diffCell(t, name+"/"+label, got.Buffers[label], w)
			}
		}
	}

	// Headline check against the benchmark history file at the repo root.
	f := experiments.ComputeFigure7(g)
	recorded := readBench1Figure7(t)
	for buf, key := range map[string]string{
		"770 µF": "gain_vs_770uF_pct",
		"10 mF":  "gain_vs_10mF_pct",
		"17 mF":  "gain_vs_17mF_pct",
		"Morphy": "gain_vs_Morphy_pct",
	} {
		want, ok := recorded[key]
		if !ok {
			t.Fatalf("BENCH_1.json is missing %s", key)
		}
		got := f.Improvement[buf] * 100
		// BENCH_1 predates the sim-loop time fix that stopped a trace from
		// delivering one extra tick of its last sample (accumulated t lagged
		// the tick grid), which moved the headline gains by up to ~0.03 pp.
		// Compare against the recorded history at a tolerance that admits
		// that correction while still catching real regressions; the
		// per-cell golden files pin the current behaviour at 1e-9.
		const tol = 0.05
		if math.Abs(got-want) > tol {
			t.Errorf("Figure 7 %s: %.4f%% differs from BENCH_1's %.4f%%", buf, got, want)
		}
	}
}

// readBench1Figure7 extracts the recorded Figure 7 metrics from the
// repository's BENCH_1.json history file.
func readBench1Figure7(t *testing.T) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Benchmarks map[string]struct {
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	fig7, ok := hist.Benchmarks["BenchmarkFigure7"]
	if !ok {
		t.Fatal("BENCH_1.json has no BenchmarkFigure7 entry")
	}
	return fig7.Metrics
}

// TestGoldenFilesCoverEveryScenario fails when a registered scenario has
// no committed golden file — adding a scenario means committing its
// snapshot in the same change.
func TestGoldenFilesCoverEveryScenario(t *testing.T) {
	if *update {
		t.Skip("update run")
	}
	for _, name := range scenario.Names() {
		if _, err := os.Stat(goldenPath(name)); err != nil {
			t.Errorf("scenario %q has no golden file: %v (run: go test ./internal/scenario -run Golden -update)", name, err)
		}
	}
}
