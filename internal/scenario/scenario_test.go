package scenario_test

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"react/internal/scenario"
	"react/internal/trace"
)

func TestRegistryShipsCatalogueAndPaperGrid(t *testing.T) {
	extended := scenario.Extended()
	if len(extended) < 8 {
		t.Fatalf("registry ships %d extended scenarios, want >= 8", len(extended))
	}
	paper := 0
	for _, s := range scenario.All() {
		if s.Paper {
			paper++
		}
	}
	if want := len(scenario.PaperBenchmarks) * 5; paper != want {
		t.Errorf("registry ships %d paper scenarios, want %d", paper, want)
	}
	// Every name resolves and every registered spec validates.
	for _, name := range scenario.Names() {
		s, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("Names lists %q but Lookup misses it", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("registered scenario %q no longer validates: %v", name, err)
		}
	}
}

func TestPaperScenariosCoverTheEvaluationGrid(t *testing.T) {
	for _, bench := range scenario.PaperBenchmarks {
		for _, tr := range trace.Evaluation(1) {
			name := scenario.PaperName(bench, tr.Name)
			s, ok := scenario.Lookup(name)
			if !ok {
				t.Fatalf("paper cell %s/%s has no scenario %q", bench, tr.Name, name)
			}
			// The spec's generator must rebuild exactly this trace.
			built, err := s.Trace.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if built.Name != tr.Name {
				t.Errorf("%s: generator builds %q, want %q", name, built.Name, tr.Name)
			}
			if len(s.Buffers) != len(scenario.PaperBuffers) {
				t.Errorf("%s: %d buffers, want the paper's %d", name, len(s.Buffers), len(scenario.PaperBuffers))
			}
		}
	}
}

func TestLookupReturnsIndependentClones(t *testing.T) {
	a, _ := scenario.Lookup("energy-attack")
	a.Title = "mutated"
	a.Buffers[0] = scenario.BufferSpec{Preset: "REACT"}
	b, _ := scenario.Lookup("energy-attack")
	if b.Title == "mutated" || b.Buffers[0].Preset == "REACT" {
		t.Error("mutating a looked-up spec must not corrupt the registry")
	}
}

func TestRegisterRejectsDuplicatesAndInvalidSpecs(t *testing.T) {
	if err := scenario.Register(&scenario.Spec{
		Name:     "energy-attack",
		Trace:    scenario.TraceSpec{Gen: "rf-cart"},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  scenario.Presets("REACT"),
	}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration must fail, got %v", err)
	}
	bad := []*scenario.Spec{
		{Name: "", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: scenario.Presets("REACT")},
		{Name: "Bad Name", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: scenario.Presets("REACT")},
		{Name: "no-trace", Trace: scenario.TraceSpec{Gen: "warp-core"}, Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: scenario.Presets("REACT")},
		{Name: "no-bench", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Workload: scenario.WorkloadSpec{Bench: "XX"}, Buffers: scenario.Presets("REACT")},
		{Name: "no-buffers", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Workload: scenario.WorkloadSpec{Bench: "DE"}},
		{Name: "dup-buffers", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: scenario.Presets("REACT", "REACT")},
		{Name: "bad-converter", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Converter: "perpetuum", Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: scenario.Presets("REACT")},
		{Name: "bad-device", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Device: scenario.DeviceSpec{Profile: "quantum"}, Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: scenario.Presets("REACT")},
		{Name: "unlabeled-static", Trace: scenario.TraceSpec{Gen: "rf-cart"}, Workload: scenario.WorkloadSpec{Bench: "DE"}, Buffers: []scenario.BufferSpec{{Static: &scenario.StaticSpec{C: 1e-3}}}},
	}
	for _, s := range bad {
		if err := scenario.Register(s); err == nil {
			t.Errorf("spec %q must fail validation", s.Name)
		}
	}
}

// TestStaticSpecRejectsNonFiniteFields pins the NaN/Inf guard on custom
// static buffers: NaN passes any `<= 0` comparison, so every StaticSpec
// field must be demanded finite by name — and the same check must hold on
// both the validation path (Spec.Validate) and the construction path
// (BufferSpec.Build), which share one implementation.
func TestStaticSpecRejectsNonFiniteFields(t *testing.T) {
	mk := func(mutate func(*scenario.StaticSpec)) scenario.BufferSpec {
		st := &scenario.StaticSpec{C: 1e-3}
		mutate(st)
		return scenario.BufferSpec{Label: "custom", Static: st}
	}
	cases := map[string]scenario.BufferSpec{
		"NaN c":        mk(func(st *scenario.StaticSpec) { st.C = math.NaN() }),
		"+Inf c":       mk(func(st *scenario.StaticSpec) { st.C = math.Inf(1) }),
		"zero c":       mk(func(st *scenario.StaticSpec) { st.C = 0 }),
		"negative c":   mk(func(st *scenario.StaticSpec) { st.C = -1e-3 }),
		"NaN v_max":    mk(func(st *scenario.StaticSpec) { st.VMax = math.NaN() }),
		"Inf v_max":    mk(func(st *scenario.StaticSpec) { st.VMax = math.Inf(1) }),
		"NaN leak_i":   mk(func(st *scenario.StaticSpec) { st.LeakI = math.NaN() }),
		"-Inf leak_i":  mk(func(st *scenario.StaticSpec) { st.LeakI = math.Inf(-1) }),
		"NaN v_rated":  mk(func(st *scenario.StaticSpec) { st.VRated = math.NaN() }),
		"+Inf v_rated": mk(func(st *scenario.StaticSpec) { st.VRated = math.Inf(1) }),
	}
	for label, bs := range cases {
		spec := &scenario.Spec{
			Name:     "static-guard",
			Trace:    scenario.TraceSpec{Gen: "steady", Duration: 10},
			Workload: scenario.WorkloadSpec{Bench: "DE"},
			Buffers:  []scenario.BufferSpec{bs},
		}
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate must reject it", label)
		} else if !strings.Contains(err.Error(), "static") {
			t.Errorf("%s: error does not name the static field: %v", label, err)
		}
		if _, err := bs.Build(); err == nil {
			t.Errorf("%s: Build must reject it", label)
		}
	}
	// The well-formed defaults still build.
	good := scenario.BufferSpec{Label: "ok", Static: &scenario.StaticSpec{C: 1e-3}}
	if _, err := good.Build(); err != nil {
		t.Fatalf("defaulted static buffer must build: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range scenario.Extended() {
		data, err := s.JSON()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		back, err := scenario.ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: JSON round trip changed the spec:\n%s", s.Name, data)
		}
	}
}

func TestParseSpecRejectsMalformedJSON(t *testing.T) {
	if _, err := scenario.ParseSpec([]byte(`{"name":`)); err == nil {
		t.Error("truncated JSON must error")
	}
	if _, err := scenario.ParseSpec([]byte(`{"name":"x!","trace":{"gen":"rf-cart"},"workload":{"bench":"DE"},"buffers":[{"preset":"REACT"}]}`)); err == nil {
		t.Error("invalid slug must error")
	}
}

func TestCellNamedUnknownBufferErrors(t *testing.T) {
	s, _ := scenario.Lookup("energy-attack")
	if _, err := s.CellNamed("1 F", scenario.RunOptions{}); err == nil {
		t.Error("unknown buffer display name must error")
	}
}

func TestTraceSpecLoadedIsNotMutatedByKnobs(t *testing.T) {
	tr := trace.Steady("shared", 2e-3, 100)
	ts := scenario.TraceSpec{Loaded: tr, Mean: 4e-3, Duration: 50}
	built, err := ts.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if built == tr {
		t.Fatal("knobs on a loaded trace must clone before modifying")
	}
	if got := tr.Stats(); math.Abs(got.Mean-2e-3) > 1e-12 || got.Duration != 100 {
		t.Errorf("shared trace was mutated: %+v", got)
	}
	if got := built.Stats(); got.Duration != 50 || got.Mean < 3.9e-3 {
		t.Errorf("knobs not applied to the clone: %+v", got)
	}
	// Without knobs the loaded trace is shared as-is.
	same, err := scenario.TraceSpec{Loaded: tr}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if same != tr {
		t.Error("knobless loaded traces must pass through unchanged")
	}
}

func TestRunSeedPrecedence(t *testing.T) {
	s := &scenario.Spec{
		Name:     "seed-check",
		Seed:     5,
		Trace:    scenario.TraceSpec{Gen: "steady", Duration: 10},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  scenario.Presets("770 µF"),
	}
	specSeed, err := s.Run(context.Background(), nil, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if specSeed.Seed != 5 {
		t.Errorf("run used seed %d, want the spec's 5", specSeed.Seed)
	}
	optSeed, err := s.Run(context.Background(), nil, scenario.RunOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if optSeed.Seed != 9 {
		t.Errorf("run used seed %d, want the override 9", optSeed.Seed)
	}
}

// TestCustomConstructorBuffer checks the Go-only BufferSpec.New hook and
// that run results key by the custom label.
func TestCustomConstructorBuffer(t *testing.T) {
	s, _ := scenario.Lookup("tiny-cap-degraded")
	run, err := s.Run(context.Background(), nil, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := run.Result("330 µF aged")
	if !ok {
		t.Fatal("custom static buffer missing from results")
	}
	if res.Buffer != "330 µF aged" {
		t.Errorf("result buffer name %q, want the label", res.Buffer)
	}
}

// TestSpecJSONIsStable pins the wire shape of a representative spec so
// docs and external tooling don't drift silently.
func TestSpecJSONIsStable(t *testing.T) {
	s, _ := scenario.Lookup("dense-packet-storm")
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "title", "trace", "workload", "buffers"} {
		if _, ok := m[key]; !ok {
			t.Errorf("spec JSON lost key %q:\n%s", key, data)
		}
	}
}
