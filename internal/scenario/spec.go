// Package scenario is the declarative layer over the simulation substrate:
// a Spec names a trace, a converter, a device profile, a workload, and a
// set of buffers, and the package materializes and runs the combination
// through the shared experiment engine (internal/runner).
//
// Specs are constructible from Go (including programmatic traces and
// custom buffer constructors) and from JSON (ParseSpec), and a process-wide
// registry ships the paper's full evaluation grid plus the extended
// scenario catalogue — energy attacks, cold starts, multi-day persistence,
// ML inference, packet storms — so new workloads are runnable by name from
// the CLI and regression-tested against golden metrics without touching
// internal/experiments.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"react/internal/buffer"
	"react/internal/capybara"
	"react/internal/ckpt"
	"react/internal/core"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/morphy"
	"react/internal/radio"
	"react/internal/trace"
	"react/internal/workload"
)

// PaperBuffers lists the paper's five evaluated buffers in column order.
var PaperBuffers = []string{"770 µF", "10 mF", "17 mF", "Morphy", "REACT"}

// PresetBuffers is every buffer preset NewPresetBuffer can construct: the
// paper's five plus the related-work extensions.
var PresetBuffers = []string{"770 µF", "10 mF", "17 mF", "Morphy", "REACT", "Capybara", "Dewdrop"}

// PaperBenchmarks lists the paper's four benchmarks in presentation order.
var PaperBenchmarks = []string{"DE", "SC", "RT", "PF"}

// Benchmarks is every workload a WorkloadSpec can build: the paper's four
// plus the scenario extensions (partitioned ML inference, mixed duty).
var Benchmarks = []string{"DE", "SC", "RT", "PF", "ML", "MIX"}

// DEActiveI is the device current while running the DE benchmark. Software
// AES on a low-clocked MSP430-class core draws well under the generic
// active figure; ≈2 mW at 3.3 V keeps the benchmark's consumption below the
// traces' burst power, which is the regime the paper's Table 2 reflects
// (small buffers clip during bursts, large ones capture them).
const DEActiveI = 0.6e-3

// StaticLeak returns the leakage current (at 6.3 V rating) for a static
// buffer of capacitance c: 1 µA per mF, a low-leakage bulk-capacitor
// figure consistent with buffers that must hold charge across long
// recharge gaps.
func StaticLeak(c float64) float64 { return c * 1e-3 }

// Spec is one declarative scenario: everything needed to reproduce a set of
// runs from a seed. The zero values of the optional fields select the
// evaluation defaults, so a minimal spec is just a name, a trace, a
// workload, and a buffer list.
type Spec struct {
	// Name is the registry key and CLI handle: a lowercase kebab-case slug.
	Name string `json:"name"`
	// Title is the one-line human description shown by `reactsim -list`.
	Title string `json:"title,omitempty"`
	// Paper marks the scenarios that make up the paper's evaluation grid.
	Paper bool `json:"paper,omitempty"`
	// Long marks scenarios too heavy for -short test runs (multi-day
	// traces, large grids); the golden and determinism suites skip them
	// under -short.
	Long bool `json:"long,omitempty"`

	Trace     TraceSpec    `json:"trace"`
	Converter string       `json:"converter,omitempty"` // harvest.ByName key; "" = identity replay
	Device    DeviceSpec   `json:"device,omitempty"`
	Workload  WorkloadSpec `json:"workload"`
	Buffers   []BufferSpec `json:"buffers"`

	// DT is the integration timestep in seconds (default 1 ms).
	DT float64 `json:"dt,omitempty"`
	// TailCap bounds the post-trace drain phase (default 600 s).
	TailCap float64 `json:"tail_cap,omitempty"`
	// Seed is the default trace/event seed (default 1); RunOptions.Seed
	// overrides it per run.
	Seed uint64 `json:"seed,omitempty"`
}

// TraceSpec selects the harvested-power input. Exactly one of Gen or
// Loaded must be set: Gen names a deterministic synthetic generator
// (trace.ByName), Loaded carries a programmatic or file-loaded trace and
// is Go-only.
type TraceSpec struct {
	// Gen is the generator name ("rf-cart", "energy-attack", "steady", ...).
	Gen string `json:"gen,omitempty"`
	// Mean, when positive, rescales the built trace to this mean power in
	// watts (for "steady" it is the constant level, default 10 mW).
	Mean float64 `json:"mean,omitempty"`
	// Duration, when positive, clips the built trace to this many seconds
	// (for "steady" it is the length, default 300 s).
	Duration float64 `json:"duration,omitempty"`
	// Loaded bypasses Gen for programmatic specs. The trace is shared, not
	// copied: when Mean or Duration is also set the trace is cloned before
	// modification so concurrent cells never mutate a caller's trace.
	Loaded *trace.Trace `json:"-"`
}

// steadyGen is the parametric constant-power generator, handled here
// rather than in the trace registry because it takes knobs, not a seed.
const steadyGen = "steady"

// Build materializes the trace for a seed. Generated traces are fresh per
// call; Loaded traces are returned as-is unless a knob forces a clone.
func (ts TraceSpec) Build(seed uint64) (*trace.Trace, error) {
	tr := ts.Loaded
	switch {
	case tr != nil:
		if ts.Mean > 0 || ts.Duration > 0 {
			clone := *tr
			clone.Power = append([]float64(nil), tr.Power...)
			tr = &clone
		}
	case ts.Gen == steadyGen:
		mean, dur := ts.Mean, ts.Duration
		if mean <= 0 {
			mean = 10e-3
		}
		if dur <= 0 {
			dur = 300
		}
		return trace.Steady(fmt.Sprintf("Steady %.3g mW", mean*1e3), mean, dur), nil
	default:
		var err error
		if tr, err = trace.ByName(ts.Gen, seed); err != nil {
			return nil, err
		}
	}
	if ts.Duration > 0 {
		tr.Clip(ts.Duration)
	}
	if ts.Mean > 0 {
		tr.Scale(ts.Mean)
	}
	return tr, nil
}

// validate checks the trace selection without materializing it.
func (ts TraceSpec) validate() error {
	if ts.Loaded != nil {
		if ts.Gen != "" {
			return fmt.Errorf("trace: both Gen %q and Loaded set", ts.Gen)
		}
		return nil
	}
	if ts.Gen == steadyGen || trace.KnownGenerator(ts.Gen) {
		return nil
	}
	return fmt.Errorf("trace: unknown generator %q", ts.Gen)
}

// DeviceSpec selects the computational platform: a named profile plus
// field-level overrides (zero means "keep the profile's value") and an
// optional checkpoint scheme.
type DeviceSpec struct {
	// Profile names the base envelope (mcu.NamedProfile); mcu.ProfileNames
	// enumerates the registry.
	Profile   string  `json:"profile,omitempty"`
	VEnable   float64 `json:"v_enable,omitempty"`
	VBrownout float64 `json:"v_brownout,omitempty"`
	BootTime  float64 `json:"boot_time,omitempty"`
	ActiveI   float64 `json:"active_i,omitempty"`
	SleepI    float64 `json:"sleep_i,omitempty"`
	// Checkpoint selects a backup/restore scheme (ckpt.Names enumerates
	// them). Nil, and the canonical form of {"scheme": "none"}, mean the
	// legacy flat-boot device: every brownout loses volatile state.
	Checkpoint *ckpt.Config `json:"checkpoint,omitempty"`
}

// Build resolves the device profile.
func (ds DeviceSpec) Build() (mcu.Profile, error) {
	prof, err := mcu.NamedProfile(ds.Profile)
	if err != nil {
		return mcu.Profile{}, err
	}
	if ds.VEnable > 0 {
		prof.VEnable = ds.VEnable
	}
	if ds.VBrownout > 0 {
		prof.VBrownout = ds.VBrownout
	}
	if ds.BootTime > 0 {
		prof.BootTime = ds.BootTime
	}
	if ds.ActiveI > 0 {
		prof.ActiveI = ds.ActiveI
	}
	if ds.SleepI > 0 {
		prof.SleepI = ds.SleepI
	}
	return prof, nil
}

// BuildScheme resolves the checkpoint block into a scheme for
// mcu.Device.Scheme. Nil means the flat-boot default (as does an explicit
// "none" block — the two are one fingerprint, see canonicalCheckpoint).
func (ds DeviceSpec) BuildScheme() (ckpt.Scheme, error) {
	if ds.Checkpoint == nil {
		return nil, nil
	}
	return ckpt.Build(*ds.Checkpoint)
}

// validate checks the device selection, including the checkpoint block.
func (ds DeviceSpec) validate() error {
	if _, err := ds.Build(); err != nil {
		return err
	}
	if ds.Checkpoint != nil {
		if _, err := ckpt.Resolve(*ds.Checkpoint); err != nil {
			return err
		}
	}
	return nil
}

// WorkloadSpec selects the benchmark program and its knobs (zero values
// mean the benchmark's defaults).
type WorkloadSpec struct {
	// Bench is the benchmark name: DE, SC, RT, PF, ML, or MIX.
	Bench string `json:"bench"`
	// ActiveI overrides the DE encryption current.
	ActiveI float64 `json:"active_i,omitempty"`
	// Period overrides the SC deadline spacing or the MIX sensing cadence.
	Period float64 `json:"period,omitempty"`
	// Interarrival overrides the PF mean packet interarrival in seconds; 0
	// selects the trace-length heuristic the paper grid uses.
	Interarrival float64 `json:"interarrival,omitempty"`
	// Batch overrides the MIX transmit batch size.
	Batch int `json:"batch,omitempty"`
	// Segments overrides the ML partition count per inference.
	Segments int `json:"segments,omitempty"`
}

// TraceSeed derives a deterministic event seed from a trace name so
// arrival schedules are repeatable per trace but uncorrelated across
// traces.
func TraceSeed(name string, seed uint64) uint64 {
	h := seed*0x100000001b3 + 14695981039346656037
	for _, c := range name {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// pfInterarrival is the paper grid's packet-density heuristic: denser for
// the short RF traces, sparser for the long solar walks, keeping total
// arrivals in the range the paper reports.
func pfInterarrival(tr *trace.Trace) float64 {
	if tr.Duration() <= 1000 {
		return 6
	}
	return 12
}

// Build constructs a fresh workload instance for a trace, seed and device
// profile.
func (ws WorkloadSpec) Build(tr *trace.Trace, seed uint64, prof mcu.Profile) (mcu.Workload, error) {
	switch ws.Bench {
	case "DE":
		activeI := ws.ActiveI
		if activeI <= 0 {
			activeI = DEActiveI
		}
		return workload.NewDataEncryption(activeI), nil
	case "SC":
		w := workload.NewSenseCompute(prof.SleepI)
		if ws.Period > 0 {
			w.Period = ws.Period
		}
		return w, nil
	case "RT":
		return workload.NewRadioTransmit(prof.SleepI), nil
	case "PF":
		ia := ws.Interarrival
		if ia <= 0 {
			ia = pfInterarrival(tr)
		}
		arrivals := radio.Arrivals(TraceSeed(tr.Name, seed), tr.Duration()+120, ia)
		return workload.NewPacketForward(prof.SleepI, arrivals), nil
	case "ML":
		w := workload.NewMLInference(prof.SleepI)
		if ws.Segments > 0 {
			w.Segments = ws.Segments
		}
		return w, nil
	case "MIX":
		w := workload.NewMixedDuty(prof.SleepI)
		if ws.Period > 0 {
			w.Period = ws.Period
		}
		if ws.Batch > 0 {
			w.BatchN = ws.Batch
		}
		return w, nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (want one of %v)", ws.Bench, Benchmarks)
}

// validate checks the workload selection.
func (ws WorkloadSpec) validate() error {
	for _, b := range Benchmarks {
		if ws.Bench == b {
			return nil
		}
	}
	return fmt.Errorf("workload: unknown benchmark %q (want one of %v)", ws.Bench, Benchmarks)
}

// StaticSpec describes a custom fixed-size buffer capacitor, for scenarios
// that need sizes or ageing the presets don't cover.
type StaticSpec struct {
	// C is the capacitance in farads (required).
	C float64 `json:"c"`
	// VMax is the overvoltage-protection clip (default 3.6 V).
	VMax float64 `json:"v_max,omitempty"`
	// LeakI is the leakage current at the rated voltage (default the
	// 1 µA/mF StaticLeak figure).
	LeakI float64 `json:"leak_i,omitempty"`
	// VRated is the leakage-specification voltage (default 6.3 V).
	VRated float64 `json:"v_rated,omitempty"`
}

// validate checks the static parameters — the one implementation shared
// by BufferSpec.validate and BufferSpec.Build, so the two can never
// drift. NaN fails every comparison, so a plain `<= 0` check would wave a
// NaN capacitance straight through to the capacitor model; every field is
// therefore demanded finite by name, and C positive as well (the other
// fields keep "zero or negative selects the default").
func (st *StaticSpec) validate(label string) error {
	if math.IsNaN(st.C) || math.IsInf(st.C, 0) || st.C <= 0 {
		return fmt.Errorf("buffer %q: static c must be a positive, finite capacitance", label)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"v_max", st.VMax}, {"leak_i", st.LeakI}, {"v_rated", st.VRated}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("buffer %q: static %s must be finite (zero selects the default)", label, f.name)
		}
	}
	return nil
}

// BufferSpec selects one energy buffer of a scenario. Exactly one of
// Preset, Static, or New must be set.
type BufferSpec struct {
	// Preset names one of the stock designs (PresetBuffers).
	Preset string `json:"preset,omitempty"`
	// Static builds a custom fixed-size capacitor; requires Label.
	Static *StaticSpec `json:"static,omitempty"`
	// Label overrides the display name (required for Static and New).
	Label string `json:"label,omitempty"`
	// New is a Go-only custom constructor; requires Label. It must return
	// a fresh buffer per call.
	New func() buffer.Buffer `json:"-"`
}

// DisplayName is the buffer's name in results, golden files and tables.
func (bs BufferSpec) DisplayName() string {
	if bs.Label != "" {
		return bs.Label
	}
	return bs.Preset
}

// Build constructs a fresh buffer instance.
func (bs BufferSpec) Build() (buffer.Buffer, error) {
	switch {
	case bs.New != nil:
		return bs.New(), nil
	case bs.Static != nil:
		st := *bs.Static
		if err := st.validate(bs.DisplayName()); err != nil {
			return nil, err
		}
		if st.VMax <= 0 {
			st.VMax = 3.6
		}
		if st.LeakI <= 0 {
			st.LeakI = StaticLeak(st.C)
		}
		if st.VRated <= 0 {
			st.VRated = 6.3
		}
		return buffer.NewStatic(buffer.StaticConfig{
			Name: bs.DisplayName(), C: st.C, VMax: st.VMax, LeakI: st.LeakI, VRated: st.VRated,
		}), nil
	default:
		return NewPresetBuffer(bs.Preset)
	}
}

// validate checks the buffer selection without building it.
func (bs BufferSpec) validate() error {
	set := 0
	if bs.Preset != "" {
		set++
	}
	if bs.Static != nil {
		set++
	}
	if bs.New != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("buffer %q: exactly one of preset, static, or a constructor is required", bs.DisplayName())
	}
	if bs.Preset != "" {
		if _, err := NewPresetBuffer(bs.Preset); err != nil {
			return err
		}
		return nil
	}
	if bs.Label == "" {
		return fmt.Errorf("buffer: custom buffers need a label")
	}
	if bs.Static != nil {
		return bs.Static.validate(bs.Label)
	}
	return nil
}

// NewPresetBuffer constructs a fresh instance of one of the stock buffer
// designs: the paper's five evaluated buffers plus the related-work
// extensions "Capybara" and "Dewdrop".
func NewPresetBuffer(name string) (buffer.Buffer, error) {
	switch name {
	case "770 µF":
		return buffer.NewStatic(buffer.StaticConfig{
			Name: name, C: 770e-6, VMax: 3.6, LeakI: StaticLeak(770e-6), VRated: 6.3,
		}), nil
	case "10 mF":
		return buffer.NewStatic(buffer.StaticConfig{
			Name: name, C: 10e-3, VMax: 3.6, LeakI: StaticLeak(10e-3), VRated: 6.3,
		}), nil
	case "17 mF":
		return buffer.NewStatic(buffer.StaticConfig{
			Name: name, C: 17e-3, VMax: 3.6, LeakI: StaticLeak(17e-3), VRated: 6.3,
		}), nil
	case "Morphy":
		return morphy.New(morphy.DefaultConfig()), nil
	case "REACT":
		return core.New(core.DefaultConfig()), nil
	case "Capybara":
		return capybara.New(capybara.DefaultConfig()), nil
	case "Dewdrop":
		// Task-matched to the atomic radio transmission with the
		// workloads' longevity margin.
		return buffer.NewDewdrop(buffer.DewdropConfig{
			C: 2.2e-3, VMax: 3.6, VMin: 1.8,
			LeakI: StaticLeak(2.2e-3), VRated: 6.3,
			TaskEnergy: radio.DefaultProfile().TX.Energy(3.3) * workload.LongevityMargin,
		}), nil
	}
	return nil, fmt.Errorf("buffer: unknown preset %q (want one of %v)", name, PresetBuffers)
}

// Presets wraps buffer names as preset BufferSpecs — the common case.
func Presets(names ...string) []BufferSpec {
	specs := make([]BufferSpec, len(names))
	for i, n := range names {
		specs[i] = BufferSpec{Preset: n}
	}
	return specs
}

// Validate checks that the spec is well-formed and buildable: known trace
// generator, benchmark, converter and device profile, and a non-empty
// buffer set with unique display names.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	for _, c := range s.Name {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return fmt.Errorf("scenario %q: name must be a lowercase kebab-case slug", s.Name)
	}
	if err := s.Trace.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if _, err := harvest.ByName(s.Converter); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Device.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Workload.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if len(s.Buffers) == 0 {
		return fmt.Errorf("scenario %q: at least one buffer is required", s.Name)
	}
	seen := map[string]bool{}
	for _, bs := range s.Buffers {
		if err := bs.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		name := bs.DisplayName()
		if seen[name] {
			return fmt.Errorf("scenario %q: duplicate buffer %q", s.Name, name)
		}
		seen[name] = true
	}
	// NaN fails every comparison, so a plain `< 0` check would wave a
	// NaN timestep straight through to sim.Run; demand finite-and-non-
	// negative explicitly.
	if !isFiniteNonNegative(s.DT) || !isFiniteNonNegative(s.TailCap) {
		return fmt.Errorf("scenario %q: dt and tail_cap must be finite and non-negative (zero selects the default)", s.Name)
	}
	return nil
}

// isFiniteNonNegative reports whether x is a usable timing parameter: a
// real, non-negative number. Written so NaN (which fails all comparisons)
// lands on the rejecting side.
func isFiniteNonNegative(x float64) bool {
	return x >= 0 && !math.IsInf(x, 1)
}

// Clone returns a deep-enough copy: mutating the clone's slices and specs
// never affects the original (Loaded traces stay shared and are treated as
// immutable).
func (s *Spec) Clone() *Spec {
	c := *s
	c.Buffers = append([]BufferSpec(nil), s.Buffers...)
	for i := range c.Buffers {
		if st := c.Buffers[i].Static; st != nil {
			cp := *st
			c.Buffers[i].Static = &cp
		}
	}
	if ck := s.Device.Checkpoint; ck != nil {
		cp := *ck
		c.Device.Checkpoint = &cp
	}
	return &c
}

// ParseSpec builds and validates a Spec from its JSON encoding.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON renders the spec as indented JSON. Go-only fields (loaded traces,
// custom constructors) are omitted; such specs round-trip incompletely and
// JSON output is primarily for the registry's declarative scenarios.
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
