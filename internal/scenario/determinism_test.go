package scenario_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"react/internal/buffer"
	"react/internal/runner"
	"react/internal/scenario"
	"react/internal/sim"
	"react/internal/simtest"
)

// shortFastScenarios is the subset the heavy suites run under -short: the
// quickest catalogue entries, enough to keep the scenario layer guarded on
// every push (including the -race job) without dominating CI.
var shortFastScenarios = map[string]bool{
	"energy-attack":      true,
	"dense-packet-storm": true,
	"tiny-cap-degraded":  true,
}

// determinismSpecs picks the scenarios the determinism suite covers: the
// fast subset under -short; every extended scenario plus two paper cells
// otherwise.
func determinismSpecs(t *testing.T) []*scenario.Spec {
	if testing.Short() {
		var specs []*scenario.Spec
		for _, s := range scenario.Extended() {
			if shortFastScenarios[s.Name] {
				specs = append(specs, s)
			}
		}
		return specs
	}
	specs := scenario.Extended()
	for _, name := range []string{"paper-de-rf-cart", "paper-pf-rf-mobile"} {
		s, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("paper scenario %q missing", name)
		}
		specs = append(specs, s)
	}
	return specs
}

func equalResults(t *testing.T, label string, a, b sim.Result) {
	t.Helper()
	if a.Latency != b.Latency || a.OnTime != b.OnTime || a.Duration != b.Duration ||
		a.Cycles != b.Cycles || a.MeanCycle != b.MeanCycle ||
		a.Ledger != b.Ledger || a.Stored != b.Stored {
		t.Errorf("%s: runs differ bit-for-bit: %+v vs %+v", label, a, b)
		return
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Errorf("%s: metric sets differ", label)
		return
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("%s: metric %s differs: %g vs %g", label, k, v, b.Metrics[k])
		}
	}
}

// TestScenarioDeterminism extends the engine's worker-count determinism
// guarantee to the scenario layer: every covered scenario is bit-identical
// for a single-worker pool, an eight-worker pool, and a back-to-back
// repeat.
func TestScenarioDeterminism(t *testing.T) {
	for _, spec := range determinismSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Long {
				t.Skip("long scenario; run without -short")
			}
			ctx := context.Background()
			serial, err := spec.Run(ctx, &runner.Runner{Workers: 1}, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wide, err := spec.Run(ctx, &runner.Runner{Workers: 8}, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			again, err := spec.Run(ctx, &runner.Runner{Workers: 8}, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range spec.Buffers {
				label := spec.Name + "/" + spec.Buffers[i].DisplayName()
				equalResults(t, label+" (1 vs 8 workers)", serial.Results[i], wide.Results[i])
				equalResults(t, label+" (back-to-back)", wide.Results[i], again.Results[i])
			}
		})
	}
}

// TestScenarioBatchSizeDeterminism pins the batched executor's core
// contract at the scenario layer: splitting a scenario's buffers into
// lockstep batches of 1, 2, or all-at-once must leave every result
// bit-identical to the worker-pool path that spec.Run takes.
func TestScenarioBatchSizeDeterminism(t *testing.T) {
	for _, spec := range determinismSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Long {
				t.Skip("long scenario; run without -short")
			}
			run, err := spec.Run(context.Background(), &runner.Runner{Workers: 4}, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 2, len(spec.Buffers)} {
				for lo := 0; lo < len(spec.Buffers); lo += size {
					hi := lo + size
					if hi > len(spec.Buffers) {
						hi = len(spec.Buffers)
					}
					var items []scenario.BatchItem
					for i := lo; i < hi; i++ {
						items = append(items, scenario.BatchItem{Spec: spec, Buffer: i})
					}
					res, err := scenario.RunBatch(items, scenario.RunOptions{}, nil)
					if err != nil {
						t.Fatal(err)
					}
					for i := lo; i < hi; i++ {
						label := spec.Name + "/" + spec.Buffers[i].DisplayName()
						equalResults(t, fmt.Sprintf("%s (batch size %d)", label, size),
							run.Results[i], res[i-lo])
					}
				}
			}
		})
	}
}

// TestScenarioInvariants runs scenarios with every buffer wrapped in the
// simtest auditor: per-tick energy conservation, bounded rail voltage,
// monotonic time, and a physical recorded series — and, because the
// wrapper is pass-through, identical metrics to the unwrapped golden runs
// (the golden suite provides that cross-check).
func TestScenarioInvariants(t *testing.T) {
	names := []string{"energy-attack", "tiny-cap-degraded"}
	if !testing.Short() {
		names = nil
		for _, s := range scenario.Extended() {
			names = append(names, s.Name)
		}
		names = append(names, "paper-rt-rf-cart")
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := scenario.Lookup(name)
			if !ok {
				t.Fatalf("scenario %q missing", name)
			}
			var (
				mu   sync.Mutex
				recs []*simtest.Recorder
			)
			for i := range spec.Buffers {
				orig := spec.Buffers[i]
				spec.Buffers[i] = scenario.BufferSpec{
					Label: orig.DisplayName(),
					New: func() buffer.Buffer {
						b, err := orig.Build()
						if err != nil {
							panic(err)
						}
						cb, rec := simtest.Check(b, 0)
						mu.Lock()
						recs = append(recs, rec)
						mu.Unlock()
						return cb
					},
				}
			}
			run, err := spec.Run(context.Background(), nil, scenario.RunOptions{RecordDT: 2})
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(recs) != len(spec.Buffers) {
				t.Fatalf("%d auditors for %d buffers", len(recs), len(spec.Buffers))
			}
			for _, rec := range recs {
				if err := rec.Err(); err != nil {
					t.Error(err)
				}
				if rec.Ticks() == 0 {
					t.Error("auditor saw no ticks")
				}
			}
			for i, res := range run.Results {
				label := name + "/" + spec.Buffers[i].DisplayName()
				simtest.CheckBalance(t, label, res, 1e-6)
				simtest.CheckSamples(t, label, res.Samples, 0)
				if len(res.Samples) == 0 {
					t.Errorf("%s: no recorded samples despite RecordDT", label)
				}
			}
		})
	}
}
