package scenario

import (
	"context"
	"fmt"

	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/runner"
	"react/internal/sim"
)

// RunOptions tunes one scenario run; the zero value uses the spec's
// defaults.
type RunOptions struct {
	// Seed overrides the spec's trace/event seed. 0 means "unset": the
	// spec's seed applies, which itself defaults to 1 — an explicit seed 0
	// is not expressible anywhere in the stack, and sweeps start at 1.
	Seed uint64
	// Workers bounds the per-buffer worker pool when Run builds its own
	// runner (0 = GOMAXPROCS).
	Workers int
	// DT overrides the integration timestep.
	DT float64
	// RecordDT, when positive, records voltage/state series.
	RecordDT float64
	// Probe, when non-nil, observes every cell's device-level events
	// (sim.Probe); callbacks carry the cell's global buffer index. Probes
	// never change results, so the field is outside the fingerprint.
	Probe sim.Probe
}

// Validate checks the options' timing overrides: DT and RecordDT must be
// finite and non-negative (zero means "use the spec's default" / "don't
// record"). The check exists because NaN passes any `< 0` comparison and
// would otherwise reach sim.Run.
func (o RunOptions) Validate() error {
	if !isFiniteNonNegative(o.DT) {
		return fmt.Errorf("run options: dt must be finite and non-negative (zero keeps the spec's timestep)")
	}
	if !isFiniteNonNegative(o.RecordDT) {
		return fmt.Errorf("run options: record dt must be finite and non-negative (zero disables recording)")
	}
	return nil
}

// seed resolves the effective seed for a spec.
func (o RunOptions) seed(s *Spec) uint64 {
	switch {
	case o.Seed != 0:
		return o.Seed
	case s.Seed != 0:
		return s.Seed
	default:
		return 1
	}
}

// Run is a completed scenario: one sim.Result per buffer, index-parallel
// to Spec.Buffers.
type Run struct {
	Spec    *Spec
	Seed    uint64
	Results []sim.Result
}

// Result returns the run's result for a buffer display name.
func (r *Run) Result(buffer string) (sim.Result, bool) {
	for i, bs := range r.Spec.Buffers {
		if bs.DisplayName() == buffer {
			return r.Results[i], true
		}
	}
	return sim.Result{}, false
}

// Cell materializes and simulates buffer i of the spec — the unit the
// engine schedules. Every call builds fresh state (trace, workload,
// buffer, device), so concurrent cells share nothing.
func (s *Spec) Cell(i int, opt RunOptions) (sim.Result, error) {
	if i < 0 || i >= len(s.Buffers) {
		return sim.Result{}, fmt.Errorf("scenario %s: buffer index %d out of range", s.Name, i)
	}
	if err := opt.Validate(); err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	seed := opt.seed(s)
	tr, err := s.Trace.Build(seed)
	if err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	conv, err := harvest.ByName(s.Converter)
	if err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	prof, err := s.Device.Build()
	if err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	wl, err := s.Workload.Build(tr, seed, prof)
	if err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	buf, err := s.Buffers[i].Build()
	if err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	dev := mcu.NewDevice(prof, wl)
	if dev.Scheme, err = s.Device.BuildScheme(); err != nil {
		return sim.Result{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	dt := opt.DT
	if dt == 0 {
		dt = s.DT
	}
	return sim.Run(sim.Config{
		DT:        dt,
		Frontend:  harvest.NewFrontend(tr, conv),
		Buffer:    buf,
		Device:    dev,
		TailCap:   s.TailCap,
		RecordDT:  opt.RecordDT,
		Probe:     opt.Probe,
		ProbeCell: i,
	})
}

// CellNamed runs the buffer with the given display name.
func (s *Spec) CellNamed(buffer string, opt RunOptions) (sim.Result, error) {
	for i, bs := range s.Buffers {
		if bs.DisplayName() == buffer {
			return s.Cell(i, opt)
		}
	}
	return sim.Result{}, fmt.Errorf("scenario %s: no buffer %q", s.Name, buffer)
}

// Run simulates every buffer of the spec over r's worker pool (nil r uses
// a pool bounded by opt.Workers, or GOMAXPROCS). Results are deterministic
// for any worker count.
//
// The buffer axis is partitioned into one contiguous chunk per worker
// slot: with at least as many workers as buffers this degenerates to the
// old cell-per-job fan-out, and with fewer workers the cells that would
// have queued behind a busy pool share lockstep trace passes (RunBatch)
// instead. Chunking never changes results — only how many cells ride one
// pass.
func (s *Spec) Run(ctx context.Context, r *runner.Runner, opt RunOptions) (*Run, error) {
	if r == nil && opt.Workers > 0 {
		r = &runner.Runner{Workers: opt.Workers}
	}
	chunks := runner.Chunks(len(s.Buffers), r.Slots())
	results := make([]sim.Result, len(s.Buffers))
	err := r.Do(ctx, len(chunks), func(_ context.Context, ci int) error {
		lo, hi := chunks[ci][0], chunks[ci][1]
		items := make([]BatchItem, 0, hi-lo)
		for i := lo; i < hi; i++ {
			items = append(items, BatchItem{Spec: s, Buffer: i})
		}
		res, err := RunBatch(items, opt, nil)
		if err != nil {
			return err
		}
		copy(results[lo:hi], res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Run{Spec: s, Seed: opt.seed(s), Results: results}, nil
}
