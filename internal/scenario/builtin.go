package scenario

import (
	"fmt"
	"strings"

	"react/internal/ckpt"
)

// paperTraces maps the paper grid's generator names to the trace names
// they produce, in Table 3 order. The pairing is asserted by tests.
var paperTraces = []struct{ Gen, TraceName string }{
	{"rf-cart", "RF Cart"},
	{"rf-obstructed", "RF Obstructed"},
	{"rf-mobile", "RF Mobile"},
	{"solar-campus", "Solar Campus"},
	{"solar-commute", "Solar Commute"},
}

// PaperName returns the registry name of one paper-grid scenario: the
// benchmark run on the named evaluation trace ("DE" on "RF Cart" is
// "paper-de-rf-cart").
func PaperName(bench, traceName string) string {
	slug := strings.ToLower(strings.ReplaceAll(traceName, " ", "-"))
	return "paper-" + strings.ToLower(bench) + "-" + slug
}

func init() {
	// The extended catalogue: stress scenarios beyond the paper's §4.2
	// grid, drawn from the related work the repository tracks (memory-aware
	// ML partitioning, energy-attack mitigation, multi-day persistence).
	mustRegister(&Spec{
		Name:     "ml-inference",
		Title:    "partitioned on-device ML inference with FRAM checkpoints on pedestrian solar",
		Long:     true,
		Trace:    TraceSpec{Gen: "pedestrian", Duration: 1200},
		Workload: WorkloadSpec{Bench: "ML"},
		Buffers:  Presets("770 µF", "10 mF", "Morphy", "REACT"),
	})
	mustRegister(&Spec{
		Name:     "energy-attack",
		Title:    "adversarial harvest that droops right before each atomic transmission",
		Trace:    TraceSpec{Gen: "energy-attack"},
		Workload: WorkloadSpec{Bench: "RT"},
		Buffers:  Presets("770 µF", "10 mF", "Dewdrop", "REACT"),
	})
	mustRegister(&Spec{
		Name:     "cold-start",
		Title:    "from-dark deployment: 90 s of darkness, then a slow ramp (first-boot latency)",
		Trace:    TraceSpec{Gen: "cold-start"},
		Workload: WorkloadSpec{Bench: "DE"},
		Buffers:  Presets(PresetBuffers...),
	})
	mustRegister(&Spec{
		Name:  "night-heavy-solar",
		Title: "a day dominated by its night: sensing across a 20-minute dark gap",
		Trace: TraceSpec{Gen: "night-heavy-solar"},
		// The 40-minute trace at a 5 ms step keeps the scenario in the
		// fast tier without changing its day/night structure.
		DT:       5e-3,
		Workload: WorkloadSpec{Bench: "SC"},
		Buffers:  Presets("770 µF", "17 mF", "Morphy", "REACT"),
	})
	mustRegister(&Spec{
		Name:     "dense-packet-storm",
		Title:    "packet forwarding under a 1.5 s mean interarrival storm on RF Cart",
		Trace:    TraceSpec{Gen: "rf-cart"},
		Workload: WorkloadSpec{Bench: "PF", Interarrival: 1.5},
		Buffers:  Presets("770 µF", "10 mF", "Morphy", "REACT", "Capybara"),
	})
	mustRegister(&Spec{
		Name:  "long-haul-72h",
		Title: "three days of diurnal solar: persistence, leakage and night survival",
		Long:  true,
		Trace: TraceSpec{Gen: "solar-72h"},
		// A 0.2 s step keeps 72 h tractable; the workload has no
		// sub-second structure.
		DT:       0.2,
		Workload: WorkloadSpec{Bench: "DE"},
		Buffers:  Presets("17 mF", "Morphy", "REACT", "Capybara"),
	})
	mustRegister(&Spec{
		Name:     "tiny-cap-degraded",
		Title:    "aged hardware: a leaky 330 µF capacitor and a degraded MCU on weak RF",
		Trace:    TraceSpec{Gen: "rf-obstructed"},
		Device:   DeviceSpec{Profile: "degraded"},
		Workload: WorkloadSpec{Bench: "SC"},
		Buffers: append([]BufferSpec{{
			Label:  "330 µF aged",
			Static: &StaticSpec{C: 330e-6, LeakI: 5e-6},
		}}, Presets("770 µF", "REACT")...),
	})
	mustRegister(&Spec{
		Name:     "mixed-duty",
		Title:    "2 s sensing cadence feeding atomic batch transmissions on campus solar",
		Long:     true,
		Trace:    TraceSpec{Gen: "solar-campus", Duration: 1500},
		Workload: WorkloadSpec{Bench: "MIX"},
		Buffers:  Presets("770 µF", "10 mF", "Morphy", "REACT"),
	})
	mustRegister(&Spec{
		Name:     "ckpt-odab-de",
		Title:    "on-demand all-backup: suspend-with-image instead of brownout on weak RF",
		Trace:    TraceSpec{Gen: "rf-obstructed"},
		Device:   DeviceSpec{Checkpoint: &ckpt.Config{Scheme: "odab"}},
		Workload: WorkloadSpec{Bench: "DE"},
		Buffers:  Presets("770 µF", "10 mF", "REACT"),
	})
	mustRegister(&Spec{
		Name:  "ckpt-periodic-mix",
		Title: "1 s periodic snapshots under the mixed sensing/transmit duty on RF Cart",
		Trace: TraceSpec{Gen: "rf-cart"},
		Device: DeviceSpec{
			Checkpoint: &ckpt.Config{Scheme: "periodic", Interval: 1},
		},
		Workload: WorkloadSpec{Bench: "MIX"},
		Buffers:  Presets("770 µF", "10 mF", "REACT"),
	})

	// The paper grid: every §4.2 benchmark × Table 3 trace cell, each over
	// the five evaluated buffers. internal/experiments consumes these specs
	// to assemble its tables and figures, so the paper's evaluation is just
	// another set of registered scenarios.
	for _, bench := range PaperBenchmarks {
		for _, pt := range paperTraces {
			long := strings.HasPrefix(pt.Gen, "solar-")
			mustRegister(&Spec{
				Name:     PaperName(bench, pt.TraceName),
				Title:    fmt.Sprintf("paper grid: %s on %s", bench, pt.TraceName),
				Paper:    true,
				Long:     long,
				Trace:    TraceSpec{Gen: pt.Gen},
				Workload: WorkloadSpec{Bench: bench},
				Buffers:  Presets(PaperBuffers...),
			})
		}
	}
}
