package buffer

import (
	"fmt"
	"math"

	"react/internal/circuit"
)

// Dewdrop is the adaptive-enable-voltage baseline (Buettner et al.,
// NSDI'11) the paper discusses in §2.4: a single static capacitor whose
// wake-up voltage is matched to the energy of the next task instead of a
// fixed platform threshold. That makes all stored energy fungible — the
// system wakes exactly when the pending work is affordable — but, as the
// paper notes, "still suffers from the reactivity-longevity tradeoff of
// capacitor size": the capacitor is as fixed as any static buffer.
type Dewdrop struct {
	cap    circuit.Capacitor
	name   string
	vMin   float64
	vCeil  float64
	task   float64 // energy of the pending task, joules
	ledger Ledger
}

// DewdropConfig describes a Dewdrop buffer.
type DewdropConfig struct {
	Name   string
	C      float64 // farads
	VMax   float64 // overvoltage clip
	VMin   float64 // device brownout voltage (task energy is usable above it)
	LeakI  float64
	VRated float64
	// TaskEnergy is the energy the next quantum of work needs; the enable
	// voltage is derived from it. Software updates it as tasks change.
	TaskEnergy float64
	// VEnableCeil bounds the computed enable voltage (a task too big for
	// the capacitor would otherwise push it past the clip voltage).
	VEnableCeil float64
}

// NewDewdrop builds an adaptive-enable buffer.
func NewDewdrop(cfg DewdropConfig) *Dewdrop {
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("Dewdrop %.0f µF", cfg.C*1e6)
	}
	d := &Dewdrop{
		name:  name,
		vMin:  cfg.VMin,
		vCeil: cfg.VEnableCeil,
		cap: circuit.Capacitor{
			C: cfg.C, VMax: cfg.VMax,
			LeakI: cfg.LeakI, VRated: cfg.VRated,
		},
	}
	if d.vCeil == 0 {
		d.vCeil = cfg.VMax
	}
	d.SetTaskEnergy(cfg.TaskEnergy)
	return d
}

var (
	_ Buffer       = (*Dewdrop)(nil)
	_ EnableHinter = (*Dewdrop)(nil)
	_ Leveler      = (*Dewdrop)(nil)
)

// SetTaskEnergy updates the pending-task energy that drives the enable
// voltage (Dewdrop's software interface).
func (d *Dewdrop) SetTaskEnergy(e float64) { d.task = e }

// EnableVoltage implements EnableHinter: the voltage at which the
// capacitor holds the task energy above the brownout floor,
// √(2E/C + V_min²), clamped to the configured ceiling.
func (d *Dewdrop) EnableVoltage() float64 {
	if d.cap.C == 0 {
		return d.vCeil
	}
	v := math.Sqrt(2*d.task/d.cap.C + d.vMin*d.vMin)
	if v > d.vCeil {
		return d.vCeil
	}
	if v < d.vMin {
		return d.vMin
	}
	return v
}

// Name implements Buffer.
func (d *Dewdrop) Name() string { return d.name }

// Harvest implements Buffer.
func (d *Dewdrop) Harvest(dE float64) {
	if dE <= 0 {
		return
	}
	d.ledger.Harvested += dE
	circuit.StoreEnergy(&d.cap, dE, 0)
	d.ledger.Clipped += d.cap.Clip()
}

// Draw implements Buffer.
func (d *Dewdrop) Draw(dE float64) float64 {
	got := circuit.DrawEnergy(&d.cap, dE)
	d.ledger.Consumed += got
	return got
}

// OutputVoltage implements Buffer.
func (d *Dewdrop) OutputVoltage() float64 { return d.cap.Voltage() }

// Stored implements Buffer.
func (d *Dewdrop) Stored() float64 { return d.cap.Energy() }

// Capacitance implements Buffer.
func (d *Dewdrop) Capacitance() float64 { return d.cap.C }

// Tick implements Buffer.
func (d *Dewdrop) Tick(now, dt float64, deviceOn bool) {
	d.ledger.Leaked += d.cap.Leak(dt)
}

// QuiescentOff implements Quiescent: like Static, the off-tick is leakage
// only.
func (d *Dewdrop) QuiescentOff() bool { return d.cap.LeakI <= 0 || d.cap.Q <= 0 }

// Ledger implements Buffer.
func (d *Dewdrop) Ledger() *Ledger { return &d.ledger }

// SoftwareOverheadFraction implements Buffer: recomputing one square root
// per task is negligible.
func (d *Dewdrop) SoftwareOverheadFraction() float64 { return 0 }

// Dewdrop has exactly one capacitance configuration, so its "level ladder"
// is binary: level 1 means the task-matched enable voltage is reached and
// the pending task's energy is guaranteed. Exposing it through Leveler
// lets the RT/PF workloads gate atomic operations the way Dewdrop's
// runtime does — run one task per wake-up instead of attempting doomed
// repeats.

// Level implements Leveler.
func (d *Dewdrop) Level() int {
	if d.cap.Voltage() >= d.EnableVoltage()-1e-9 {
		return 1
	}
	return 0
}

// MaxLevel implements Leveler.
func (d *Dewdrop) MaxLevel() int { return 1 }

// GuaranteedEnergy implements Leveler.
func (d *Dewdrop) GuaranteedEnergy(level int) float64 {
	if level <= 0 {
		return 0
	}
	return d.task
}
