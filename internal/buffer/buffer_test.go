package buffer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func newTest() *Static {
	return NewStatic(StaticConfig{C: 1e-3, VMax: 3.6, LeakI: 1e-6, VRated: 6.3})
}

func TestStaticName(t *testing.T) {
	if got := newTest().Name(); !strings.Contains(got, "1000") {
		t.Errorf("derived name %q should mention the capacitance", got)
	}
	named := NewStatic(StaticConfig{Name: "primary", C: 1e-3})
	if named.Name() != "primary" {
		t.Errorf("explicit name lost: %q", named.Name())
	}
}

func TestStaticHarvestAndVoltage(t *testing.T) {
	s := newTest()
	s.Harvest(0.5 * 1e-3 * 3.3 * 3.3)
	if v := s.OutputVoltage(); math.Abs(v-3.3) > 1e-9 {
		t.Errorf("voltage %g, want 3.3", v)
	}
	if c := s.Capacitance(); c != 1e-3 {
		t.Errorf("capacitance %g", c)
	}
}

func TestStaticClipsAtVMax(t *testing.T) {
	s := newTest()
	s.Harvest(1) // far beyond capacity
	if v := s.OutputVoltage(); v > 3.6+1e-9 {
		t.Errorf("voltage %g exceeds clip", v)
	}
	if s.Ledger().Clipped <= 0 {
		t.Error("overvoltage energy must be clipped")
	}
}

func TestStaticDraw(t *testing.T) {
	s := newTest()
	s.Harvest(2e-3)
	got := s.Draw(1e-3)
	if math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("draw %g, want 1e-3", got)
	}
	if math.Abs(s.Ledger().Consumed-1e-3) > 1e-12 {
		t.Error("consumed not recorded")
	}
}

func TestStaticLeaksOverTime(t *testing.T) {
	s := newTest()
	s.Harvest(2e-3)
	before := s.Stored()
	for i := 0; i < 1000; i++ {
		s.Tick(float64(i), 1.0, false)
	}
	if s.Stored() >= before {
		t.Error("leakage must drain the buffer")
	}
	if s.Ledger().Leaked <= 0 {
		t.Error("leakage must be recorded")
	}
}

func TestStaticNoSoftwareOverhead(t *testing.T) {
	if newTest().SoftwareOverheadFraction() != 0 {
		t.Error("static buffers need no management software")
	}
}

func TestStaticIgnoresNonPositiveHarvest(t *testing.T) {
	s := newTest()
	s.Harvest(-1)
	s.Harvest(0)
	if s.Stored() != 0 || s.Ledger().Harvested != 0 {
		t.Error("non-positive harvest must be ignored")
	}
}

// Property: the ledger always balances for arbitrary harvest/draw
// sequences.
func TestStaticConservation(t *testing.T) {
	f := func(ops [20]uint16) bool {
		s := newTest()
		for i, op := range ops {
			e := float64(op) * 1e-7
			if i%2 == 0 {
				s.Harvest(e)
			} else {
				s.Draw(e)
			}
			s.Tick(float64(i), 0.5, true)
		}
		l := s.Ledger()
		in := l.Harvested
		out := l.Consumed + l.Clipped + l.Leaked + l.SwitchLoss + l.Overhead + s.Stored()
		return math.Abs(in-out) <= 1e-9*(1+in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLedgerTotalLoss(t *testing.T) {
	l := Ledger{Clipped: 1, Leaked: 2, SwitchLoss: 3, Overhead: 4}
	if l.TotalLoss() != 10 {
		t.Errorf("total loss %g, want 10", l.TotalLoss())
	}
}

// fakeLeveler exercises LevelFor.
type fakeLeveler struct{ guarantees []float64 }

func (f fakeLeveler) Level() int    { return 0 }
func (f fakeLeveler) MaxLevel() int { return len(f.guarantees) - 1 }
func (f fakeLeveler) GuaranteedEnergy(level int) float64 {
	if level < 0 {
		return 0
	}
	if level >= len(f.guarantees) {
		level = len(f.guarantees) - 1
	}
	return f.guarantees[level]
}

func TestLevelFor(t *testing.T) {
	l := fakeLeveler{guarantees: []float64{0, 1e-3, 5e-3, 20e-3}}
	if lvl, ok := LevelFor(l, 4e-3); !ok || lvl != 2 {
		t.Errorf("LevelFor(4 mJ) = %d,%v, want 2,true", lvl, ok)
	}
	if lvl, ok := LevelFor(l, 0); !ok || lvl != 0 {
		t.Errorf("LevelFor(0) = %d,%v, want 0,true", lvl, ok)
	}
	if _, ok := LevelFor(l, 1); ok {
		t.Error("unsatisfiable guarantee must report !ok")
	}
}
