package buffer

import (
	"fmt"

	"react/internal/circuit"
)

// Static is a fixed-size buffer capacitor — the conventional batteryless
// design point the paper's background section analyses. It charges whenever
// the harvester delivers power, clips at its maximum operating voltage
// (discarding surplus as heat), and leaks continuously.
type Static struct {
	cap    circuit.Capacitor
	name   string
	ledger Ledger
}

// StaticConfig describes a fixed buffer.
type StaticConfig struct {
	Name   string
	C      float64 // farads
	VMax   float64 // overvoltage clip point (e.g. 3.6 V)
	LeakI  float64 // leakage current at VRated
	VRated float64
}

// NewStatic builds a static buffer from cfg. A zero Name is derived from the
// capacitance.
func NewStatic(cfg StaticConfig) *Static {
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("%.0f µF static", cfg.C*1e6)
	}
	return &Static{
		name: name,
		cap: circuit.Capacitor{
			C:      cfg.C,
			VMax:   cfg.VMax,
			LeakI:  cfg.LeakI,
			VRated: cfg.VRated,
		},
	}
}

// Name implements Buffer.
func (s *Static) Name() string { return s.name }

// Harvest implements Buffer.
func (s *Static) Harvest(dE float64) {
	if dE <= 0 {
		return
	}
	s.ledger.Harvested += dE
	circuit.StoreEnergy(&s.cap, dE, 0)
	s.ledger.Clipped += s.cap.Clip()
}

// Draw implements Buffer.
func (s *Static) Draw(dE float64) float64 {
	got := circuit.DrawEnergy(&s.cap, dE)
	s.ledger.Consumed += got
	return got
}

// OutputVoltage implements Buffer.
func (s *Static) OutputVoltage() float64 { return s.cap.Voltage() }

// Stored implements Buffer.
func (s *Static) Stored() float64 { return s.cap.Energy() }

// Capacitance implements Buffer.
func (s *Static) Capacitance() float64 { return s.cap.C }

// Tick implements Buffer.
func (s *Static) Tick(now, dt float64, deviceOn bool) {
	s.ledger.Leaked += s.cap.Leak(dt)
}

// QuiescentOff implements Quiescent: a static buffer's off-tick is only
// leakage, which is a no-op exactly when Leak would return without touching
// the charge (no leakage current, or nothing left to leak).
func (s *Static) QuiescentOff() bool { return s.cap.LeakI <= 0 || s.cap.Q <= 0 }

// Ledger implements Buffer.
func (s *Static) Ledger() *Ledger { return &s.ledger }

// SoftwareOverheadFraction implements Buffer: static buffers need no
// management software.
func (s *Static) SoftwareOverheadFraction() float64 { return 0 }
