// Package buffer defines the common interface all energy-buffer designs
// implement — the static baselines, the Morphy unified array, and REACT —
// plus the energy ledger used to audit conservation across a simulation.
package buffer

// Ledger accumulates where every joule that entered a buffer went. The
// simulator asserts conservation: Harvested + initial stored = Consumed +
// Clipped + Leaked + SwitchLoss + Overhead + residual stored.
type Ledger struct {
	Harvested  float64 // energy delivered into the buffer by the frontend
	Consumed   float64 // energy delivered to the load
	Clipped    float64 // energy discarded by overvoltage protection
	Leaked     float64 // energy lost to capacitor leakage
	SwitchLoss float64 // energy dissipated in switches/diodes during reconfiguration and conduction
	Overhead   float64 // energy consumed by the buffer's own management hardware
}

// TotalLoss returns the energy lost to all non-load sinks.
func (l *Ledger) TotalLoss() float64 {
	return l.Clipped + l.Leaked + l.SwitchLoss + l.Overhead
}

// Buffer is an energy store between the harvesting frontend and the device.
//
// Call order within one simulation tick: Harvest, Draw (possibly several),
// then Tick to advance internal processes (diode relaxation, leakage,
// clipping, controller polling).
type Buffer interface {
	// Name identifies the design in tables ("770 µF", "REACT", ...).
	Name() string
	// Harvest deposits dE joules arriving from the frontend.
	Harvest(dE float64)
	// Draw withdraws up to dE joules for the load and returns the energy
	// actually supplied (less when the buffer runs dry).
	Draw(dE float64) float64
	// OutputVoltage is the supply rail voltage presented to the device.
	OutputVoltage() float64
	// Stored is the total energy currently held, including energy below
	// the device's operating range.
	Stored() float64
	// Capacitance is the present equivalent capacitance at the rail.
	Capacitance() float64
	// Tick advances time by dt seconds. deviceOn reports whether the
	// computational backend is powered, which gates software-polled
	// controllers (REACT's controller runs on the device itself).
	Tick(now, dt float64, deviceOn bool)
	// Ledger exposes the accumulated energy accounting.
	Ledger() *Ledger
	// SoftwareOverheadFraction is the fraction of device CPU time consumed
	// by the buffer's management software (0 for designs with no software
	// component or an externally powered controller).
	SoftwareOverheadFraction() float64
}

// Leveler is implemented by buffers whose capacitance level is a usable
// surrogate for stored energy (§3.4.1): software can wait for a level that
// guarantees enough energy for an atomic operation.
type Leveler interface {
	// Level is the current capacitance step (0 = minimum configuration).
	Level() int
	// MaxLevel is the largest reachable level.
	MaxLevel() int
	// GuaranteedEnergy returns the usable energy (above the device's
	// minimum operating voltage) that reaching the given level implies.
	GuaranteedEnergy(level int) float64
}

// LevelFor returns the smallest level whose guarantee covers the requested
// energy, or max level (and false) if no level guarantees it.
func LevelFor(l Leveler, energy float64) (int, bool) {
	for lvl := 0; lvl <= l.MaxLevel(); lvl++ {
		if l.GuaranteedEnergy(lvl) >= energy {
			return lvl, true
		}
	}
	return l.MaxLevel(), false
}

// EnableHinter is implemented by buffers that direct the power gate's
// enable voltage instead of accepting the platform default — the Dewdrop
// (NSDI'11) approach of waking the system at a task-matched voltage.
type EnableHinter interface {
	// EnableVoltage returns the buffer-recommended wake-up voltage.
	EnableVoltage() float64
}

// Quiescent is implemented by buffers that can prove a power-gated tick
// would change nothing. The batched simulator uses it to fast-forward dead
// time: while the device is off, the harvester delivers nothing, and the
// buffer is quiescent, entire tick stretches are exact no-ops and the clock
// can jump over them without stepping.
//
// QuiescentOff must return true only when Tick(now, dt, false) would leave
// every bit of buffer state unchanged for any now and dt — typically: no
// leakable charge, no overvoltage to clip, no pending internal relaxation,
// and any poll timer already at its device-off reset value. Buffers that
// cannot prove this (e.g. Morphy, whose externally powered controller polls
// regardless of device state) simply do not implement the interface and are
// always stepped tick by tick.
type Quiescent interface {
	QuiescentOff() bool
}
