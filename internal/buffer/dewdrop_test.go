package buffer

import (
	"math"
	"testing"
)

func newDewdrop(task float64) *Dewdrop {
	return NewDewdrop(DewdropConfig{
		C: 1e-3, VMax: 3.6, VMin: 1.8, TaskEnergy: task,
		LeakI: 1e-6, VRated: 6.3,
	})
}

func TestDewdropEnableMatchesTask(t *testing.T) {
	d := newDewdrop(1e-3) // 1 mJ task
	want := math.Sqrt(2*1e-3/1e-3 + 1.8*1.8)
	if got := d.EnableVoltage(); math.Abs(got-want) > 1e-12 {
		t.Errorf("enable %g, want %g", got, want)
	}
}

func TestDewdropEnableClampsToCeiling(t *testing.T) {
	d := newDewdrop(1) // 1 J: impossible on 1 mF
	if got := d.EnableVoltage(); got != 3.6 {
		t.Errorf("enable %g, want the 3.6 V ceiling", got)
	}
}

func TestDewdropZeroTaskWakesAtFloor(t *testing.T) {
	d := newDewdrop(0)
	if got := d.EnableVoltage(); got != 1.8 {
		t.Errorf("enable %g, want the 1.8 V floor", got)
	}
}

func TestDewdropTaskUpdate(t *testing.T) {
	d := newDewdrop(0.5e-3)
	small := d.EnableVoltage()
	d.SetTaskEnergy(2e-3)
	if d.EnableVoltage() <= small {
		t.Error("a bigger task must raise the enable voltage")
	}
}

func TestDewdropGuaranteeHolds(t *testing.T) {
	// Charged exactly to the enable voltage, the usable energy above the
	// brownout floor equals the task energy.
	task := 1.2e-3
	d := newDewdrop(task)
	v := d.EnableVoltage()
	d.Harvest(0.5 * 1e-3 * v * v)
	usable := d.Stored() - 0.5*1e-3*1.8*1.8
	if math.Abs(usable-task) > 1e-9 {
		t.Errorf("usable %g, want the task energy %g", usable, task)
	}
}

func TestDewdropBufferBasics(t *testing.T) {
	d := newDewdrop(1e-3)
	d.Harvest(2e-3)
	if d.Stored() <= 0 || d.OutputVoltage() <= 0 {
		t.Fatal("harvest had no effect")
	}
	got := d.Draw(1e-3)
	if math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("draw %g", got)
	}
	d.Harvest(1) // overcharge
	if d.Ledger().Clipped <= 0 {
		t.Error("clip not recorded")
	}
	d.Tick(0, 100, false)
	if d.Ledger().Leaked <= 0 {
		t.Error("leak not recorded")
	}
	if d.SoftwareOverheadFraction() != 0 {
		t.Error("overhead")
	}
	if d.Name() == "" {
		t.Error("name")
	}
}

func TestDewdropLevels(t *testing.T) {
	d := newDewdrop(1e-3)
	if d.Level() != 0 {
		t.Error("empty buffer is below its task level")
	}
	v := d.EnableVoltage()
	d.Harvest(0.5 * 1e-3 * v * v)
	if d.Level() != 1 {
		t.Error("charged to the enable voltage, the task level is reached")
	}
	if d.MaxLevel() != 1 {
		t.Error("one configuration, one level")
	}
	if d.GuaranteedEnergy(1) != 1e-3 || d.GuaranteedEnergy(0) != 0 {
		t.Error("guarantee ladder")
	}
	if lvl, ok := LevelFor(d, 0.9e-3); !ok || lvl != 1 {
		t.Errorf("LevelFor = %d,%v", lvl, ok)
	}
}
