package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFIPS197AppendixB checks the worked example from the standard.
func TestFIPS197AppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext %x, want %x", got, want)
	}
}

// TestFIPS197AppendixC checks the AES-128 known-answer vector.
func TestFIPS197AppendixC(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext %x, want %x", got, want)
	}
	back := make([]byte, 16)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Errorf("decrypt %x, want %x", back, pt)
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := New(make([]byte, 24)); err == nil {
		t.Error("24-byte key must be rejected (AES-128 only)")
	}
}

func TestInPlace(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	c, _ := New(key)
	buf := unhex(t, "00112233445566778899aabbccddeeff")
	orig := append([]byte(nil), buf...)
	c.Encrypt(buf, buf)
	c.Decrypt(buf, buf)
	if !bytes.Equal(buf, orig) {
		t.Error("in-place round trip failed")
	}
}

// TestAgainstStdlib cross-checks random keys and blocks against crypto/aes.
func TestAgainstStdlib(t *testing.T) {
	f := func(key, block [16]byte) bool {
		ours, err := New(key[:])
		if err != nil {
			return false
		}
		ref, err := stdaes.NewCipher(key[:])
		if err != nil {
			return false
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, block[:])
		ref.Encrypt(want, block[:])
		if !bytes.Equal(got, want) {
			return false
		}
		back := make([]byte, 16)
		ours.Decrypt(back, got)
		return bytes.Equal(back, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
