// Package capybara implements a Capybara-style reconfigurable static
// array (Colin et al., ASPLOS'18), the multiplexed-storage design the
// paper's §2.3 positions REACT against.
//
// Capybara provisions several discrete capacitor banks. One set is active
// (connected to the rail); the others are reserve banks that charge in the
// background from harvest surplus. Capacitance "modes" are the prefixes of
// the bank list: mode k connects banks 0..k in parallel. Stepping a mode up
// parallels a pre-charged reserve bank onto the rail (paying the
// charge-sharing loss for whatever voltage gap remains); stepping down
// disconnects the most recently added bank, stranding its charge on the
// reserve — the §2.3 criticism this baseline exists to exhibit:
//
//	"Reserving energy in secondary capacitors ... wastes energy as leakage
//	 when secondary buffers are only partially charged, failing to enable
//	 associated systems and keeping energy from higher-priority work."
//
// The controller mirrors REACT's comparator thresholds so the comparison
// isolates the storage architecture: overvoltage steps the mode up,
// undervoltage steps it down.
package capybara

import (
	"react/internal/buffer"
	"react/internal/circuit"
)

// Config describes a Capybara-style array.
type Config struct {
	// Banks are the capacitor sizes in connection order; bank 0 is always
	// active and plays the same reactivity role as REACT's last-level
	// buffer.
	Banks []float64
	// LeakI is leakage per farad at VRated (scaled per bank).
	LeakIPerF float64
	VRated    float64
	// VHigh, VLow, VMax mirror the REACT controller thresholds.
	VHigh, VLow, VMax float64
	// PollHz is the mode controller rate.
	PollHz float64
	// BaseOverheadW and OverheadPerBankW model the comparator and
	// load-switch driver draw, mirroring REACT's management hardware
	// budget so the architectures compare on storage organization alone.
	BaseOverheadW, OverheadPerBankW float64
}

// DefaultConfig provisions the same total capacitance as REACT's Table 1
// fabric (≈18 mF) across four discrete banks.
func DefaultConfig() Config {
	return Config{
		Banks:            []float64{770e-6, 2e-3, 5.26e-3, 10e-3},
		LeakIPerF:        1e-3, // 1 µA per mF at rated voltage
		VRated:           6.3,
		VHigh:            3.5,
		VLow:             1.9,
		VMax:             3.6,
		PollHz:           10,
		BaseOverheadW:    2e-6,
		OverheadPerBankW: 13.2e-6,
	}
}

// Buffer is a Capybara-style array. It implements buffer.Buffer and
// buffer.Leveler.
type Buffer struct {
	cfg    Config
	banks  []*circuit.Capacitor
	mode   int // banks 0..mode are active
	ledger buffer.Ledger
	poll   float64
}

var (
	_ buffer.Buffer  = (*Buffer)(nil)
	_ buffer.Leveler = (*Buffer)(nil)
)

// New builds the array with every bank empty and only bank 0 active.
func New(cfg Config) *Buffer {
	b := &Buffer{cfg: cfg}
	for _, c := range cfg.Banks {
		b.banks = append(b.banks, &circuit.Capacitor{
			C: c, LeakI: cfg.LeakIPerF * c, VRated: cfg.VRated, VMax: cfg.VMax,
		})
	}
	if cfg.PollHz > 0 {
		b.poll = 1 / cfg.PollHz
	}
	return b
}

// Name implements buffer.Buffer.
func (b *Buffer) Name() string { return "Capybara" }

// active returns the connected banks.
func (b *Buffer) active() []*circuit.Capacitor { return b.banks[:b.mode+1] }

// Harvest implements buffer.Buffer: the active set charges first (lowest
// voltage bank of the set, like any parallel rail); once the rail is full,
// surplus trickle-charges the reserve banks in priority order instead of
// being clipped — the Capybara advantage over a lone static buffer.
func (b *Buffer) Harvest(dE float64) {
	if dE <= 0 {
		return
	}
	b.ledger.Harvested += dE
	// Parallel rail: split across active banks by capacitance after
	// equalization; they stay equalized because they charge and discharge
	// together.
	var railC float64
	for _, c := range b.active() {
		railC += c.C
	}
	v := b.OutputVoltage()
	if v < b.cfg.VMax {
		room := 0.5*railC*b.cfg.VMax*b.cfg.VMax - 0.5*railC*v*v
		take := dE
		if take > room {
			take = room
		}
		for _, c := range b.active() {
			circuit.StoreEnergy(c, take*c.C/railC, 0)
		}
		dE -= take
	}
	// Surplus goes to reserves, in order, until each is full.
	for i := b.mode + 1; i < len(b.banks) && dE > 0; i++ {
		r := b.banks[i]
		room := 0.5*r.C*b.cfg.VMax*b.cfg.VMax - r.Energy()
		if room <= 0 {
			continue
		}
		take := dE
		if take > room {
			take = room
		}
		circuit.StoreEnergy(r, take, 0)
		dE -= take
	}
	// Whatever remains has nowhere to go.
	b.ledger.Clipped += dE
}

// Draw implements buffer.Buffer: the load is served by the active rail.
func (b *Buffer) Draw(dE float64) float64 {
	var railC float64
	for _, c := range b.active() {
		railC += c.C
	}
	var got float64
	for _, c := range b.active() {
		got += circuit.DrawEnergy(c, dE*c.C/railC)
	}
	b.ledger.Consumed += got
	return got
}

// OutputVoltage implements buffer.Buffer: the active banks stay equalized,
// so the capacitance-weighted mean is the rail voltage.
func (b *Buffer) OutputVoltage() float64 {
	var qc, cc float64
	for _, c := range b.active() {
		qc += c.Q
		cc += c.C
	}
	if cc == 0 {
		return 0
	}
	return qc / cc
}

// Stored implements buffer.Buffer (reserve charge included).
func (b *Buffer) Stored() float64 {
	var e float64
	for _, c := range b.banks {
		e += c.Energy()
	}
	return e
}

// Capacitance implements buffer.Buffer: the active rail capacitance.
func (b *Buffer) Capacitance() float64 {
	var cc float64
	for _, c := range b.active() {
		cc += c.C
	}
	return cc
}

// Tick implements buffer.Buffer.
func (b *Buffer) Tick(now, dt float64, deviceOn bool) {
	for _, c := range b.banks {
		b.ledger.Leaked += c.Leak(dt)
		b.ledger.Clipped += c.Clip()
	}
	if !deviceOn {
		// Capybara's mode logic runs on the device.
		b.poll = 1 / b.cfg.PollHz
		return
	}
	over := (b.cfg.BaseOverheadW + b.cfg.OverheadPerBankW*float64(b.mode+1)) * dt
	var drawn float64
	for _, c := range b.active() {
		drawn += circuit.DrawEnergy(c, over*c.C/b.Capacitance())
	}
	b.ledger.Overhead += drawn
	b.poll -= dt
	if b.poll <= 0 {
		b.poll += 1 / b.cfg.PollHz
		b.controllerPoll()
	}
}

// controllerPoll steps the mode ladder against the comparator thresholds.
func (b *Buffer) controllerPoll() {
	v := b.OutputVoltage()
	switch {
	case v >= b.cfg.VHigh && b.mode < len(b.banks)-1:
		// Connect the next reserve bank in parallel — but only once the
		// background charging has brought it near the rail voltage;
		// paralleling a half-charged reserve would dump the rail into it.
		// Until then the system waits, which is exactly the §2.3
		// speculation problem: capacity exists but is not usable yet.
		next := b.banks[b.mode+1]
		if next.Voltage() < v-0.25 {
			return
		}
		b.mode++
		_, loss := circuit.EqualizeParallel(b.railNodes()...)
		b.ledger.SwitchLoss += loss
	case v <= b.cfg.VLow && b.mode > 0:
		// Disconnect the most recently added bank. Its residual charge
		// strands on the reserve (recoverable only if the mode climbs
		// again) — unlike REACT's series reclamation there is no way to
		// boost it back onto the rail.
		b.mode--
	}
}

// railNodes returns the active banks as circuit nodes.
func (b *Buffer) railNodes() []circuit.Node {
	ns := make([]circuit.Node, 0, b.mode+1)
	for _, c := range b.active() {
		ns = append(ns, c)
	}
	return ns
}

// QuiescentOff implements buffer.Quiescent. A device-off tick leaks and
// clips every bank, then resets the poll phase; it is a no-op exactly when
// every bank has nothing to leak or clip and the poll timer already sits at
// its reset value (true from the first off-tick on, since the reset is
// idempotent). The comparisons mirror circuit.Capacitor.Leak/Clip and Tick
// bit for bit.
func (b *Buffer) QuiescentOff() bool {
	for _, c := range b.banks {
		if c.LeakI > 0 && c.Q > 0 {
			return false
		}
		if c.VMax > 0 && c.Voltage() > c.VMax {
			return false
		}
	}
	//lint:reactlint-ignore dtarith poll is assigned exactly 1/PollHz on re-arm, so bit-identity means the timer is freshly reset
	return b.poll == 1/b.cfg.PollHz
}

// Ledger implements buffer.Buffer.
func (b *Buffer) Ledger() *buffer.Ledger { return &b.ledger }

// SoftwareOverheadFraction implements buffer.Buffer: mode checks are a few
// comparisons per poll, far below REACT's bank state machines; treat as
// free.
func (b *Buffer) SoftwareOverheadFraction() float64 { return 0 }

// Level implements buffer.Leveler: the current mode.
func (b *Buffer) Level() int { return b.mode }

// MaxLevel implements buffer.Leveler.
func (b *Buffer) MaxLevel() int { return len(b.banks) - 1 }

// GuaranteedEnergy implements buffer.Leveler: reaching mode k required the
// rail at V_high on the mode k−1 capacitance.
func (b *Buffer) GuaranteedEnergy(level int) float64 {
	if level <= 0 {
		return 0
	}
	if level > b.MaxLevel() {
		level = b.MaxLevel()
	}
	var cc float64
	for _, c := range b.banks[:level] {
		cc += c.C
	}
	return 0.5 * cc * (b.cfg.VHigh*b.cfg.VHigh - 1.8*1.8)
}
