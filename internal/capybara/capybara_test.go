package capybara

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestStartsOnSmallestBank(t *testing.T) {
	b := New(DefaultConfig())
	approx(t, b.Capacitance(), 770e-6, 1e-12, "mode 0 = bank 0 only")
	if b.Level() != 0 {
		t.Error("fresh array starts at mode 0")
	}
}

func TestHarvestFillsRailThenReserves(t *testing.T) {
	b := New(DefaultConfig())
	railFull := 0.5 * 770e-6 * 3.6 * 3.6
	b.Harvest(railFull + 1e-3)
	approx(t, b.OutputVoltage(), 3.6, 1e-9, "rail charged to the clip voltage")
	if b.banks[1].Energy() < 0.99e-3 {
		t.Errorf("surplus should trickle into the first reserve, got %g J", b.banks[1].Energy())
	}
	if b.Ledger().Clipped > 1e-12 {
		t.Error("nothing should clip while reserves have room")
	}
}

func TestHarvestClipsWhenEverythingFull(t *testing.T) {
	b := New(DefaultConfig())
	b.Harvest(10) // far beyond total capacity
	if b.Ledger().Clipped <= 0 {
		t.Error("a totally full array must clip")
	}
	for i, c := range b.banks {
		if v := c.Voltage(); v > 3.6+1e-9 {
			t.Errorf("bank %d at %g V exceeds VMax", i, v)
		}
	}
}

func TestModeStepsUpOnOvervoltage(t *testing.T) {
	b := New(DefaultConfig())
	for i := 0; i < 400000 && b.Level() == 0; i++ {
		b.Harvest(20e-3 * 1e-3)
		b.Tick(float64(i)*1e-3, 1e-3, true)
	}
	if b.Level() != 1 {
		t.Fatalf("mode %d, want 1 after sustained surplus", b.Level())
	}
	// The reserve was background-charged, so the inrush loss is small
	// compared to the energy moved.
	if b.Ledger().SwitchLoss > 0.2e-3 {
		t.Errorf("pre-charged reserve should connect cheaply, lost %g J", b.Ledger().SwitchLoss)
	}
}

func TestModeStepsDownStrandsCharge(t *testing.T) {
	b := New(DefaultConfig())
	b.mode = 1
	for _, c := range b.active() {
		c.SetVoltage(2.0)
	}
	for i := 0; i < 200000 && b.Level() == 1; i++ {
		b.Draw(5e-3 * 1e-3)
		b.Tick(float64(i)*1e-3, 1e-3, true)
	}
	if b.Level() != 0 {
		t.Fatalf("mode %d, want 0 after sustained deficit", b.Level())
	}
	// The disconnected bank keeps its charge — stranded, not boostable.
	if b.banks[1].Energy() <= 0 {
		t.Error("disconnected bank should strand its residual charge")
	}
	if b.Capacitance() != 770e-6 {
		t.Error("rail shrinks back to bank 0")
	}
}

func TestDrawServesFromActiveRail(t *testing.T) {
	b := New(DefaultConfig())
	b.banks[0].SetVoltage(3.0)
	b.banks[1].SetVoltage(3.0) // reserve, not connected
	got := b.Draw(1e-3)
	approx(t, got, 1e-3, 1e-12, "draw served")
	approx(t, b.banks[1].Energy(), 0.5*2e-3*9, 1e-12, "reserve untouched by the load")
}

func TestGuaranteedEnergyMonotonic(t *testing.T) {
	b := New(DefaultConfig())
	prev := -1.0
	for lvl := 0; lvl <= b.MaxLevel(); lvl++ {
		g := b.GuaranteedEnergy(lvl)
		if g < prev {
			t.Errorf("guarantee not monotonic at %d", lvl)
		}
		prev = g
	}
	if b.GuaranteedEnergy(99) != b.GuaranteedEnergy(b.MaxLevel()) {
		t.Error("beyond-max clamps")
	}
}

func TestEnergyConservation(t *testing.T) {
	f := func(seed uint8) bool {
		b := New(DefaultConfig())
		s := uint64(seed)*2654435761 + 3
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := 0; i < 30000; i++ {
			b.Harvest(next() * 30e-3 * 1e-3)
			b.Draw(next() * 10e-3 * 1e-3)
			b.Tick(float64(i)*1e-3, 1e-3, next() < 0.7)
		}
		l := b.Ledger()
		in := l.Harvested
		out := l.Consumed + l.Clipped + l.Leaked + l.SwitchLoss + l.Overhead + b.Stored()
		return math.Abs(in-out) <= 1e-9*(1+in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "Capybara" {
		t.Error("name")
	}
}
