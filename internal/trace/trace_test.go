package trace

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestNonPositiveDTIsInert pins the degenerate-spacing guard: a trace whose
// DT is zero, negative, or NaN (hand-built, or the product of a buggy
// loader) has no extent in time and delivers no power, instead of injecting
// Inf/NaN into the simulation through the At position division.
func TestNonPositiveDTIsInert(t *testing.T) {
	for _, dt := range []float64{0, -1, math.NaN()} {
		tr := &Trace{DT: dt, Power: []float64{1, 2, 3}}
		if got := tr.Duration(); got != 0 {
			t.Errorf("DT=%g: Duration() = %g, want 0", dt, got)
		}
		for _, ts := range []float64{0, 0.5, 2} {
			if got := tr.At(ts); got != 0 {
				t.Errorf("DT=%g: At(%g) = %g, want 0", dt, ts, got)
			}
		}
	}
}

func TestAtInterpolates(t *testing.T) {
	tr := &Trace{DT: 1, Power: []float64{0, 2, 4}}
	cases := []struct{ ts, want float64 }{
		{0, 0}, {0.5, 1}, {1, 2}, {1.5, 3}, {2, 4}, {2.5, 4}, {5, 0}, {-1, 0},
	}
	for _, c := range cases {
		if got := tr.At(c.ts); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.ts, got, c.want)
		}
	}
}

func TestStatsBasics(t *testing.T) {
	tr := &Trace{DT: 2, Power: []float64{1, 3}}
	s := tr.Stats()
	if s.Duration != 4 {
		t.Errorf("duration %g, want 4", s.Duration)
	}
	if s.Mean != 2 {
		t.Errorf("mean %g, want 2", s.Mean)
	}
	if math.Abs(s.StdDev-1) > 1e-12 {
		t.Errorf("stddev %g, want 1", s.StdDev)
	}
	if math.Abs(s.CV-0.5) > 1e-12 {
		t.Errorf("cv %g, want 0.5", s.CV)
	}
	if s.Peak != 3 {
		t.Errorf("peak %g, want 3", s.Peak)
	}
	if math.Abs(s.Energy-8) > 1e-12 {
		t.Errorf("energy %g, want 8", s.Energy)
	}
}

func TestStatsEmpty(t *testing.T) {
	tr := &Trace{DT: 1}
	if s := tr.Stats(); s.Mean != 0 || s.CV != 0 {
		t.Error("empty trace stats should be zero")
	}
}

func TestScaleHitsExactMean(t *testing.T) {
	tr := &Trace{DT: 1, Power: []float64{1, 2, 3, 4}}
	tr.Scale(10)
	if s := tr.Stats(); math.Abs(s.Mean-10) > 1e-12 {
		t.Errorf("scaled mean %g, want 10", s.Mean)
	}
}

func TestEnergyAndTimeFractions(t *testing.T) {
	tr := &Trace{DT: 1, Power: []float64{1, 1, 1, 7}}
	if got := tr.EnergyFractionAbove(2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("energy fraction above = %g, want 0.7", got)
	}
	if got := tr.TimeFractionBelow(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("time fraction below = %g, want 0.75", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Name: "x", DT: 0.5, Power: []float64{0.001, 0.002, 0.0035}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("x", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DT != tr.DT {
		t.Errorf("dt %g, want %g", got.DT, tr.DT)
	}
	if len(got.Power) != len(tr.Power) {
		t.Fatalf("len %d, want %d", len(got.Power), len(tr.Power))
	}
	for i := range got.Power {
		if math.Abs(got.Power[i]-tr.Power[i]) > 1e-15 {
			t.Errorf("sample %d = %g, want %g", i, got.Power[i], tr.Power[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"time_s,power_w\n1,2\n",      // too few samples
		"time_s,power_w\n0,1\n0,2\n", // non-increasing time
		"time_s,power_w\nx,1\n1,2\n", // bad time
		"time_s,power_w\n0,y\n1,2\n", // bad power
	}
	for _, c := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

// TestReadCSVRejectsJitteredSpacing pins the uniform-spacing contract: DT
// is derived from the first two rows, and a later row that drifts off that
// grid — a jittered logger, a dropped sample — must be rejected with its
// row number rather than silently replayed on a stretched time base.
func TestReadCSVRejectsJitteredSpacing(t *testing.T) {
	jittered := "time_s,power_w\n0,1e-3\n0.5,1e-3\n1.0,1e-3\n1.5004,1e-3\n2.0,1e-3\n"
	_, err := ReadCSV("jitter", strings.NewReader(jittered))
	if err == nil {
		t.Fatal("a jittered CSV must not parse")
	}
	if !strings.Contains(err.Error(), "row 4") || !strings.Contains(err.Error(), "non-uniform") {
		t.Errorf("error should name row 4 and the non-uniform spacing, got: %v", err)
	}
	// A gap (dropped sample) is the same defect.
	gapped := "time_s,power_w\n0,1e-3\n0.5,1e-3\n1.5,1e-3\n"
	if _, err := ReadCSV("gap", strings.NewReader(gapped)); err == nil {
		t.Error("a gapped CSV must not parse")
	}
	// Sub-tolerance float noise (well inside 1e-9·DT) still parses: exact
	// decimal re-encodings of a written trace must round-trip.
	fine := "time_s,power_w\n0,1e-3\n0.5,1e-3\n1.0000000000001,1e-3\n"
	if _, err := ReadCSV("fine", strings.NewReader(fine)); err != nil {
		t.Errorf("sub-tolerance noise must parse, got: %v", err)
	}
}

// TestReadCSVAcceptsLargeUniformTimestamps pins the tolerance's ulp slack:
// a uniformly spaced recording whose decimal timestamps are large relative
// to DT parses even though nearest-double parsing drifts off the
// float64 product grid by more than 1e-9·DT.
func TestReadCSVAcceptsLargeUniformTimestamps(t *testing.T) {
	// Millisecond spacing starting deep into a multi-day recording:
	// ulp(260000)/2 ≈ 2.9e-11 > 1e-9·DT = 1e-12.
	var b strings.Builder
	b.WriteString("time_s,power_w\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "%.3f,1e-3\n", 260000+float64(i)/1000)
	}
	tr, err := ReadCSV("large", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("a uniform large-timestamp CSV must parse: %v", err)
	}
	// DT is a difference of two large parsed doubles, so it is only
	// accurate to ~ulp(260000); that inherent error is fine.
	if math.Abs(tr.DT-1e-3) > 1e-10 || len(tr.Power) != 2000 {
		t.Errorf("dt %g samples %d, want 1e-3 and 2000", tr.DT, len(tr.Power))
	}
	// Real jitter at that scale is still caught.
	jit := strings.Replace(b.String(), "260001.500", "260001.542", 1)
	if _, err := ReadCSV("large-jitter", strings.NewReader(jit)); err == nil {
		t.Error("genuine jitter must still be rejected at large timestamps")
	}
}

// TestReadCSVRejectsBadPower pins the sample validation: a harvested-power
// recording cannot carry negative, NaN, or infinite watts — any of them
// would inject non-physical energy into the simulation.
func TestReadCSVRejectsBadPower(t *testing.T) {
	cases := map[string]string{
		"negative": "time_s,power_w\n0,1e-3\n1,-2e-3\n2,1e-3\n",
		"NaN":      "time_s,power_w\n0,1e-3\n1,NaN\n2,1e-3\n",
		"+Inf":     "time_s,power_w\n0,1e-3\n1,+Inf\n2,1e-3\n",
		"NaN time": "time_s,power_w\n0,1e-3\nNaN,1e-3\n2,1e-3\n",
	}
	for label, c := range cases {
		_, err := ReadCSV("bad", strings.NewReader(c))
		if err == nil {
			t.Errorf("%s: must not parse", label)
			continue
		}
		if !strings.Contains(err.Error(), "row 2") {
			t.Errorf("%s: error should name row 2, got: %v", label, err)
		}
	}
}

// TestTinyGenerators pins the degenerate-length guard: both synthetic
// process generators must produce finite, positive power for n==1 (where
// the AR trend's 0/(n-1) position used to be NaN) and other tiny lengths.
func TestTinyGenerators(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		ar := arLogNormal("tiny-ar", 7, n, 1e-3, 0.5, 0.9, 1.35)
		if len(ar.Power) != n {
			t.Fatalf("arLogNormal n=%d produced %d samples", n, len(ar.Power))
		}
		for i, p := range ar.Power {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				t.Errorf("arLogNormal n=%d sample %d = %v, want finite non-negative", n, i, p)
			}
		}
		mb := markovBurst("tiny-mb", 7, n, 1e-3, 0.5e-3, 5e-3, 10, 3, 0.3)
		if len(mb.Power) != n {
			t.Fatalf("markovBurst n=%d produced %d samples", n, len(mb.Power))
		}
		for i, p := range mb.Power {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				t.Errorf("markovBurst n=%d sample %d = %v, want finite non-negative", n, i, p)
			}
		}
	}
}

// TestTable3Statistics checks that the synthetic evaluation traces match the
// paper's Table 3: exact duration and mean power, and coefficient of
// variation within a tolerance band (the CV of a finite random realization
// cannot be pinned exactly).
func TestTable3Statistics(t *testing.T) {
	want := []struct {
		name     string
		duration float64
		mean     float64 // watts
		cv       float64
	}{
		{"RF Cart", 313, 2.12e-3, 1.03},
		{"RF Obstructed", 313, 0.227e-3, 0.61},
		{"RF Mobile", 318, 0.5e-3, 1.66},
		{"Solar Campus", 3609, 5.18e-3, 2.07},
		{"Solar Commute", 6030, 0.148e-3, 3.33},
	}
	traces := Evaluation(1)
	for i, w := range want {
		s := traces[i].Stats()
		if traces[i].Name != w.name {
			t.Errorf("trace %d name %q, want %q", i, traces[i].Name, w.name)
		}
		if s.Duration != w.duration {
			t.Errorf("%s duration %g, want %g", w.name, s.Duration, w.duration)
		}
		if math.Abs(s.Mean-w.mean) > 1e-9 {
			t.Errorf("%s mean %g, want %g", w.name, s.Mean, w.mean)
		}
		if s.CV < w.cv*0.6 || s.CV > w.cv*1.5 {
			t.Errorf("%s CV %.2f, want within 40/50%% of %.2f", w.name, s.CV, w.cv)
		}
	}
}

// TestFig1TraceShape checks the §2.1.2 observations on the pedestrian solar
// trace: the large majority of time is low-power while the large majority of
// energy arrives in spikes.
func TestFig1TraceShape(t *testing.T) {
	tr := Fig1Pedestrian(1)
	if frac := tr.TimeFractionBelow(3e-3); frac < 0.6 {
		t.Errorf("time below 3 mW = %.2f, want most of the trace", frac)
	}
	if frac := tr.EnergyFractionAbove(10e-3); frac < 0.6 {
		t.Errorf("energy above 10 mW = %.2f, want most of the energy", frac)
	}
}

func TestDeterminism(t *testing.T) {
	a := RFCart(42)
	b := RFCart(42)
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			t.Fatalf("same seed produced different traces at sample %d", i)
		}
	}
	c := RFCart(43)
	same := true
	for i := range a.Power {
		if a.Power[i] != c.Power[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestNightTraceIsSteadyAndWeak(t *testing.T) {
	s := Night(1).Stats()
	if s.Mean > 1e-3 {
		t.Errorf("night trace mean %g W, want well under 1 mW", s.Mean)
	}
	if s.CV > 0.5 {
		t.Errorf("night trace CV %.2f, want steady (< 0.5)", s.CV)
	}
}

func TestSampleIndexing(t *testing.T) {
	tr := &Trace{Name: "s", DT: 0.5, Power: []float64{1, 2, 3}}
	if tr.Sample(-1) != 0 || tr.Sample(3) != 0 {
		t.Error("out-of-range samples must be 0")
	}
	for i, want := range tr.Power {
		if tr.Sample(i) != want {
			t.Errorf("Sample(%d) = %g, want %g", i, tr.Sample(i), want)
		}
	}
	// At sample instants, Sample and At agree.
	if tr.Sample(1) != tr.At(0.5) {
		t.Errorf("Sample(1)=%g, At(0.5)=%g", tr.Sample(1), tr.At(0.5))
	}
}
