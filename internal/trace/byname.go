package trace

import (
	"fmt"
	"sort"
)

// generators maps canonical kebab-case names to the deterministic trace
// generators, so declarative scenario specs (and the CLI) can request a
// trace by name. The generated Trace carries its own presentation name
// ("rf-cart" builds the trace named "RF Cart").
var generators = map[string]func(uint64) *Trace{
	"rf-cart":           RFCart,
	"rf-obstructed":     RFObstructed,
	"rf-mobile":         RFMobile,
	"solar-campus":      SolarCampus,
	"solar-commute":     SolarCommute,
	"pedestrian":        Fig1Pedestrian,
	"night":             Night,
	"energy-attack":     EnergyAttack,
	"cold-start":        ColdStart,
	"night-heavy-solar": NightHeavySolar,
	"solar-72h":         Solar72h,
}

// GeneratorNames returns every registered generator name, sorted.
func GeneratorNames() []string {
	names := make([]string, 0, len(generators))
	for n := range generators {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KnownGenerator reports whether ByName can build the named trace.
func KnownGenerator(name string) bool {
	_, ok := generators[name]
	return ok
}

// ByName builds the named synthetic trace for a seed. Every call returns a
// fresh Trace, so callers may mutate (Scale, Clip) without aliasing.
func ByName(name string, seed uint64) (*Trace, error) {
	gen, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown generator %q (want one of %v)", name, GeneratorNames())
	}
	return gen(seed), nil
}
