package trace

import (
	"math"
	"testing"
)

func TestByNameCoversAllGenerators(t *testing.T) {
	for _, name := range GeneratorNames() {
		if !KnownGenerator(name) {
			t.Fatalf("GeneratorNames lists unknown generator %q", name)
		}
		tr, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if tr.Name == "" || tr.DT <= 0 || len(tr.Power) == 0 {
			t.Errorf("ByName(%q) built a malformed trace: %+v", name, tr.Stats())
		}
		for i, p := range tr.Power {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("%s: bad power %g at sample %d", name, p, i)
			}
		}
	}
	if _, err := ByName("no-such-trace", 1); err == nil {
		t.Error("unknown generator must error")
	}
}

func TestByNameDeterministicAndFresh(t *testing.T) {
	a, _ := ByName("energy-attack", 7)
	b, _ := ByName("energy-attack", 7)
	if a == b {
		t.Fatal("ByName must return a fresh trace per call")
	}
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	c, _ := ByName("energy-attack", 8)
	same := true
	for i := range a.Power {
		if a.Power[i] != c.Power[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestEnergyAttackDroops(t *testing.T) {
	tr := EnergyAttack(1)
	// The attacker must repeatedly cut power: a meaningful fraction of the
	// trace is spent in the near-dark droop windows, yet the mean while
	// feeding stays high enough to tempt an accumulate-then-act policy.
	dark := tr.TimeFractionBelow(10e-6)
	if dark < 0.15 || dark > 0.8 {
		t.Errorf("droop windows cover %.0f%% of the trace, want 15-80%%", dark*100)
	}
	if s := tr.Stats(); s.Mean < 0.5e-3 {
		t.Errorf("feeding power too weak to bait the victim: mean %.3g mW", s.Mean*1e3)
	}
}

func TestColdStartShape(t *testing.T) {
	tr := ColdStart(1)
	for i := 0; i < 90; i++ {
		if tr.Power[i] != 0 {
			t.Fatalf("cold start must be dark for 90 s, sample %d is %g", i, tr.Power[i])
		}
	}
	var head, tail float64
	for i := 90; i < 150; i++ {
		head += tr.Power[i]
	}
	for i := len(tr.Power) - 60; i < len(tr.Power); i++ {
		tail += tr.Power[i]
	}
	if tail <= head {
		t.Errorf("power must ramp up: first lit minute %g J, last minute %g J", head, tail)
	}
}

func TestNightHeavySolarHasDarkMiddle(t *testing.T) {
	tr := NightHeavySolar(1)
	if d := tr.Duration(); d != 2400 {
		t.Fatalf("duration %g, want 2400", d)
	}
	var day, night float64
	for i := 0; i < 600; i++ {
		day += tr.Power[i]
	}
	for i := 600; i < 1800; i++ {
		night += tr.Power[i]
	}
	if night >= day/10 {
		t.Errorf("night energy %g J should be tiny next to day energy %g J", night, day)
	}
}

func TestSolar72hDiurnal(t *testing.T) {
	tr := Solar72h(1)
	if d := tr.Duration(); d != 3*86400 {
		t.Fatalf("duration %g, want 72 h", d)
	}
	// Midnight is dark, noon is lit, on every one of the three days.
	for day := 0; day < 3; day++ {
		base := day * 86400
		if p := tr.Power[base]; p != 0 {
			t.Errorf("day %d midnight power %g, want 0", day, p)
		}
		if p := tr.Power[base+12*3600]; p <= 0 {
			t.Errorf("day %d noon power %g, want > 0", day, p)
		}
	}
}

func TestSteady(t *testing.T) {
	tr := Steady("steady", 10e-3, 300)
	s := tr.Stats()
	if s.Duration != 300 || math.Abs(s.Mean-10e-3) > 1e-12 || s.CV > 1e-6 {
		t.Errorf("steady trace stats wrong: %+v", s)
	}
}

func TestClip(t *testing.T) {
	tr := &Trace{Name: "x", DT: 1, Power: []float64{1, 2, 3, 4, 5}}
	tr.Clip(3)
	if len(tr.Power) != 3 {
		t.Fatalf("clip to 3 s left %d samples", len(tr.Power))
	}
	tr.Clip(100) // beyond the end: no-op
	if len(tr.Power) != 3 {
		t.Fatalf("over-length clip changed the trace: %d samples", len(tr.Power))
	}
}

func TestConcat(t *testing.T) {
	a := &Trace{DT: 1, Power: []float64{1, 2}}
	b := &Trace{DT: 1, Power: []float64{3}}
	c := Concat("joined", a, b)
	if c.Name != "joined" || len(c.Power) != 3 || c.Power[2] != 3 {
		t.Errorf("concat wrong: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched DT must panic")
		}
	}()
	Concat("bad", a, &Trace{DT: 2, Power: []float64{1}})
}
