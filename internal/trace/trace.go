// Package trace provides harvested-power traces: the time series of power a
// harvester delivers to the energy buffer.
//
// The paper evaluates on three RF traces recorded in an office environment
// and two solar irradiance traces from the EnHANTs dataset, replayed through
// an Ekho-style programmable power frontend. Those recordings are not
// available, so this package synthesizes traces matched to the statistics
// the paper reports in Table 3 (duration, mean power, coefficient of
// variation) and to the qualitative structure described in §2 (short
// high-power spikes carrying most of the energy). Real recordings can be
// used instead via ReadCSV.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Trace is a uniformly sampled harvested-power time series.
type Trace struct {
	Name  string
	DT    float64   // sample spacing, seconds
	Power []float64 // harvested power at each sample, watts
}

// Duration returns the total trace length in seconds. A trace with a
// non-positive (or NaN) sample spacing has no extent in time and reports 0.
func (t *Trace) Duration() float64 {
	if !(t.DT > 0) {
		return 0
	}
	return float64(len(t.Power)) * t.DT
}

// At returns the harvested power at time ts (seconds), linearly
// interpolating between samples. Times outside the trace return 0 — after
// the recording ends the harvester delivers nothing, which is how the
// paper's "run until the buffer drains" tail behaves.
func (t *Trace) At(ts float64) float64 {
	// A non-positive (or NaN) DT would turn the position division below
	// into ±Inf/NaN and inject non-finite power into the simulation; such
	// a trace delivers nothing, matching Duration's "no extent" view.
	if ts < 0 || len(t.Power) == 0 || !(t.DT > 0) {
		return 0
	}
	pos := ts / t.DT
	i := int(pos)
	if i >= len(t.Power)-1 {
		if i >= len(t.Power) {
			return 0
		}
		return t.Power[i]
	}
	frac := pos - float64(i)
	return t.Power[i]*(1-frac) + t.Power[i+1]*frac
}

// Sample returns the recorded power at sample index i — the fast path for
// simulation loops whose timestep equals the sample spacing, where tick i
// lands exactly on sample i and interpolation degenerates to a lookup.
// Indices outside the recording return 0, matching At's tail behaviour.
func (t *Trace) Sample(i int) float64 {
	if i < 0 || i >= len(t.Power) {
		return 0
	}
	return t.Power[i]
}

// Stats summarizes a trace the way Table 3 does, plus the spike-energy
// measures used in §2.1.2.
type Stats struct {
	Duration float64 // seconds
	Mean     float64 // watts
	StdDev   float64 // watts
	CV       float64 // coefficient of variation, StdDev/Mean
	Peak     float64 // watts
	Energy   float64 // joules over the whole trace
}

// Stats computes summary statistics over the trace.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Duration = t.Duration()
	n := float64(len(t.Power))
	if n == 0 {
		return s
	}
	var sum, sumSq float64
	for _, p := range t.Power {
		sum += p
		sumSq += p * p
		if p > s.Peak {
			s.Peak = p
		}
	}
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	if s.Mean > 0 {
		s.CV = s.StdDev / s.Mean
	}
	s.Energy = sum * t.DT
	return s
}

// EnergyFractionAbove returns the fraction of total trace energy delivered
// while instantaneous power exceeds threshold watts. The paper's motivating
// observation (§2.1.2) is that 82 % of the pedestrian-solar trace's energy
// arrives above 10 mW.
func (t *Trace) EnergyFractionAbove(threshold float64) float64 {
	var above, total float64
	for _, p := range t.Power {
		total += p
		if p > threshold {
			above += p
		}
	}
	if total == 0 {
		return 0
	}
	return above / total
}

// TimeFractionBelow returns the fraction of trace time spent with
// instantaneous power below threshold watts.
func (t *Trace) TimeFractionBelow(threshold float64) float64 {
	if len(t.Power) == 0 {
		return 0
	}
	n := 0
	for _, p := range t.Power {
		if p < threshold {
			n++
		}
	}
	return float64(n) / float64(len(t.Power))
}

// Clip truncates the trace in place to at most the given length in seconds.
// Clipping to a length at or beyond the trace duration is a no-op.
func (t *Trace) Clip(seconds float64) {
	if t.DT <= 0 || seconds < 0 {
		return
	}
	n := int(seconds / t.DT)
	if n < len(t.Power) {
		t.Power = t.Power[:n]
	}
}

// Concat joins traces end to end under a new name. All parts must share the
// same sample spacing; a mismatch is a construction bug and panics.
func Concat(name string, parts ...*Trace) *Trace {
	if len(parts) == 0 {
		return &Trace{Name: name, DT: 1}
	}
	out := &Trace{Name: name, DT: parts[0].DT}
	for _, p := range parts {
		//lint:reactlint-ignore dtarith concatenation requires bit-identical sample spacing; a tolerance would splice mismatched grids
		if p.DT != out.DT {
			panic("trace: Concat over mismatched sample spacings")
		}
		out.Power = append(out.Power, p.Power...)
	}
	return out
}

// Scale multiplies every sample so the trace mean becomes mean watts.
func (t *Trace) Scale(mean float64) {
	s := t.Stats()
	if s.Mean == 0 {
		return
	}
	k := mean / s.Mean
	for i := range t.Power {
		t.Power[i] *= k
	}
}

// WriteCSV writes the trace as "time_s,power_w" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "power_w"}); err != nil {
		return err
	}
	for i, p := range t.Power {
		row := []string{
			strconv.FormatFloat(float64(i)*t.DT, 'g', -1, 64),
			strconv.FormatFloat(p, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any two-column
// time/power CSV with a header row and uniform spacing). The sample
// spacing is derived from the first two rows and every later timestamp
// must lie on that grid (within a 1e-9·DT tolerance); power samples must
// be finite and non-negative. Violations are rejected with the offending
// data-row number.
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) < 3 {
		return nil, errors.New("trace: need a header and at least two samples")
	}
	tr := &Trace{Name: name}
	times := make([]float64, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) < 2 {
			return nil, fmt.Errorf("trace: row %d has %d columns, want 2", i+1, len(row))
		}
		ts, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i+1, err)
		}
		p, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d power: %w", i+1, err)
		}
		if math.IsNaN(ts) || math.IsInf(ts, 0) {
			return nil, fmt.Errorf("trace: row %d: non-finite time %v", i+1, ts)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("trace: row %d: non-finite power %v", i+1, p)
		}
		if p < 0 {
			return nil, fmt.Errorf("trace: row %d: negative power %v (a harvester cannot deliver negative watts)", i+1, p)
		}
		times = append(times, ts)
		tr.Power = append(tr.Power, p)
	}
	tr.DT = times[1] - times[0]
	if tr.DT <= 0 {
		return nil, errors.New("trace: non-increasing timestamps")
	}
	// The contract is uniform spacing, and the simulation trusts it: a
	// jittered or gapped recording replayed on a DT grid would silently
	// stretch or compress time. Verify every consecutive difference
	// matches the spacing the first two rows imply — differences, not
	// absolute grid positions, because DT itself carries the timestamps'
	// representation error and an anchored grid times[0] + i·DT would
	// accumulate it linearly over a long recording. The tolerance is
	// 1e-9·DT plus a few ulps of the absolute timestamp (nearest-double
	// parsing of exact decimal stamps is not exact, and that noise must
	// not read as jitter).
	tol := 1e-9 * tr.DT
	for i := 1; i < len(times); i++ {
		eps := tol + 4*math.Abs(times[i])*2.220446049250313e-16 // 2^-52
		if d := times[i] - times[i-1] - tr.DT; d > eps || d < -eps {
			return nil, fmt.Errorf("trace: row %d: non-uniform spacing: step %v after row %d, want %v (from the first two rows)", i+1, times[i]-times[i-1], i, tr.DT)
		}
	}
	return tr, nil
}
