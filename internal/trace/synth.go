package trace

import (
	"math"

	"react/internal/rng"
)

// Synthetic evaluation traces. Each generator is deterministic for a given
// seed and is matched to the corresponding row of the paper's Table 3:
//
//	Trace           Time (s)  Avg Pow (mW)  Power CV
//	RF Cart         313       2.12          103 %
//	RF Obstruction  313       0.227         61 %
//	RF Mobile       318       0.5           166 %
//	Solar Campus    3609      5.18          207 %
//	Solar Commute   6030      0.148         333 %
//
// The RF traces are modelled as temporally correlated log-normal processes
// (office multipath fading plus motion), the solar traces as two-state
// shade/sun Markov processes with in-state fading — the structure §2
// describes, where most energy arrives in short high-power bursts.

// arLogNormal fills a trace with exp of an AR(1) process whose stationary
// log-std is sigma and whose per-step correlation is rho, then scales it to
// the requested mean. trend is a multiplicative factor applied linearly in
// log space from start (trend) to end (1/trend), used to front- or back-load
// energy.
func arLogNormal(name string, seed uint64, n int, mean, sigma, rho, trend float64) *Trace {
	r := rng.New(seed)
	t := &Trace{Name: name, DT: 1, Power: make([]float64, n)}
	x := r.Norm() // start in the stationary distribution
	innov := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		x = rho*x + innov*r.Norm()
		logTrend := 0.0
		// n==1 would make the 0/0 position NaN; a single sample sits at the
		// ramp's midpoint, where the trend factor is 1 (logTrend 0).
		if trend != 0 && trend != 1 && n > 1 {
			frac := float64(i) / float64(n-1)
			logTrend = math.Log(trend) * (1 - 2*frac)
		}
		t.Power[i] = math.Exp(sigma*x + logTrend)
	}
	t.Scale(mean)
	return t
}

// markovBurst fills a trace with a two-state process: a low state with mean
// lowMean and a high (burst) state with mean highMean; mean dwell times are
// lowDwell and highDwell seconds. Both states carry log-normal fading with
// log-std sigma. The result is scaled to the requested mean.
func markovBurst(name string, seed uint64, n int, mean, lowMean, highMean, lowDwell, highDwell, sigma float64) *Trace {
	r := rng.New(seed)
	t := &Trace{Name: name, DT: 1, Power: make([]float64, n)}
	high := false
	remaining := r.Exp(lowDwell)
	for i := 0; i < n; i++ {
		if remaining <= 0 {
			high = !high
			if high {
				remaining = r.Exp(highDwell)
			} else {
				remaining = r.Exp(lowDwell)
			}
		}
		base := lowMean
		if high {
			base = highMean
		}
		// Log-normal fading normalized to unit mean so `base` is the state mean.
		fade := math.Exp(sigma*r.Norm() - sigma*sigma/2)
		t.Power[i] = base * fade
		remaining--
	}
	t.Scale(mean)
	return t
}

// RFCart reproduces the "RF Cart" trace: a harvester on a moving cart near a
// 915 MHz transmitter. High average power, moderate volatility (CV ≈ 103 %),
// structured as near/far passes — while the cart is near, delivered power
// well exceeds a typical device's active draw, which is what makes small
// static buffers clip (§2.1.2).
func RFCart(seed uint64) *Trace {
	return markovBurst("RF Cart", seed^0xca7, 313, 2.12e-3,
		0.8e-3, 8e-3, 38, 13, 0.25)
}

// RFObstructed reproduces the "RF Obstruction" trace: a harvester behind
// office obstructions. Low power, low volatility (CV ≈ 61 %), slightly
// front-loaded so small buffers start quickly while the 17 mF buffer never
// accumulates its enable energy — the behaviour Table 4 reports.
func RFObstructed(seed uint64) *Trace {
	return arLogNormal("RF Obstructed", seed^0x0b5, 313, 0.227e-3, 0.565, 0.96, 1.35)
}

// RFMobile reproduces the "RF Mobile" trace: a harvester carried through an
// office. Mid power, high volatility (CV ≈ 166 %): long weak stretches with
// strong bursts when the carrier passes near the transmitter.
func RFMobile(seed uint64) *Trace {
	return markovBurst("RF Mobile", seed^0x30b, 318, 0.5e-3,
		0.09e-3, 2.8e-3, 26, 7, 0.5)
}

// SolarCampus reproduces the EnHANTs campus-walk irradiance trace: long
// deeply shaded stretches (well below a typical device's active draw)
// punctuated by strong outdoor bursts carrying most of the energy
// (CV ≈ 207 %).
func SolarCampus(seed uint64) *Trace {
	return markovBurst("Solar Campus", seed^0x5ca, 3609, 5.18e-3,
		0.25e-3, 21e-3, 300, 92, 0.35)
}

// SolarCommute reproduces the EnHANTs commute irradiance trace: nearly dark
// indoor/transit conditions with rare bright moments (CV ≈ 333 %).
func SolarCommute(seed uint64) *Trace {
	return markovBurst("Solar Commute", seed^0x5c0, 6030, 0.148e-3,
		0.02e-3, 2e-3, 300, 21, 0.3)
}

// Fig1Pedestrian generates the pedestrian solar-harvester trace used for
// Figure 1 and the §2.1 background analysis: a 22 %-efficient 5 cm² panel on
// a pedestrian (EnHANTs). Tuned so that most time is spent below 3 mW while
// most energy arrives in spikes above 10 mW.
func Fig1Pedestrian(seed uint64) *Trace {
	return markovBurst("Pedestrian Solar", seed^0xf16, 3500, 2.45e-3,
		0.45e-3, 17e-3, 260, 36, 0.4)
}

// Night generates the §2.1.2 night-time trace: a solar panel under faint
// artificial light, steady and very weak.
func Night(seed uint64) *Trace {
	return arLogNormal("Solar Night", seed^0x417, 1800, 0.30e-3, 0.2, 0.98, 1)
}

// Evaluation bundles the five Table 3 traces in presentation order.
func Evaluation(seed uint64) []*Trace {
	return []*Trace{
		RFCart(seed),
		RFObstructed(seed),
		RFMobile(seed),
		SolarCampus(seed),
		SolarCommute(seed),
	}
}

// The generators below go beyond the paper's Table 3: stress traces for the
// scenario registry (internal/scenario), modelled on the conditions the
// related work studies — adversarial energy attacks, cold starts, heavy
// night gaps, and multi-day persistence.

// Steady returns a constant-power trace at 1 s spacing — the bring-up and
// overhead-characterization input.
func Steady(name string, mean, duration float64) *Trace {
	n := int(duration)
	if n < 1 {
		n = 1
	}
	t := &Trace{Name: name, DT: 1, Power: make([]float64, n)}
	for i := range t.Power {
		t.Power[i] = mean
	}
	return t
}

// EnergyAttack synthesizes the adversarial trace studied by the
// energy-attack literature (Singhal et al., "Application-aware Energy
// Attack Mitigation"): the attacker supplies comfortable charging power but
// droops it the moment the victim has accumulated roughly the energy of its
// atomic operation, so a naive accumulate-then-act policy browns out just
// before acting — over and over.
func EnergyAttack(seed uint64) *Trace {
	const (
		n        = 420    // seconds
		pSupply  = 1.6e-3 // feeding power, watts
		eTrigger = 12e-3  // joules delivered before each cut (≈ TX cost × margin, plus conversion slack)
		gap      = 8      // droop length, seconds
		sigma    = 0.18   // in-state fading
	)
	r := rng.New(seed ^ 0xa77ac)
	t := &Trace{Name: "Energy Attack", DT: 1, Power: make([]float64, n)}
	acc, drop := 0.0, 0
	for i := range t.Power {
		fade := math.Exp(sigma*r.Norm() - sigma*sigma/2)
		if drop > 0 {
			drop--
			t.Power[i] = 2e-6 * fade // not truly dark: the victim sees a trickle
			continue
		}
		p := pSupply * fade
		t.Power[i] = p
		acc += p // 1 s per sample
		if acc >= eTrigger {
			acc = 0
			drop = gap + r.Intn(4) // jitter so cuts don't alias with deadlines
		}
	}
	return t
}

// ColdStart synthesizes a from-dark deployment: true darkness, then a slow
// ramp as the source comes up, then steady weak input — the first-boot
// latency scenario.
func ColdStart(seed uint64) *Trace {
	const (
		n     = 420
		dark  = 90  // seconds of zero input
		ramp  = 120 // seconds to full power
		pFull = 1.4e-3
		sigma = 0.25
	)
	r := rng.New(seed ^ 0xc01d)
	t := &Trace{Name: "Cold Start", DT: 1, Power: make([]float64, n)}
	for i := range t.Power {
		fade := math.Exp(sigma*r.Norm() - sigma*sigma/2)
		if i < dark {
			t.Power[i] = 0
			continue
		}
		frac := float64(i-dark) / ramp
		if frac > 1 {
			frac = 1
		}
		t.Power[i] = pFull * frac * fade
	}
	return t
}

// NightHeavySolar synthesizes a harvest day dominated by its night: a burst
// of strong daylight, a long near-dark night, and a weaker second day —
// the buffering-across-the-gap scenario.
func NightHeavySolar(seed uint64) *Trace {
	day1 := markovBurst("", seed^0x417e1, 600, 6e-3, 0.3e-3, 22e-3, 120, 45, 0.35)
	night := arLogNormal("", seed^0x417e2, 1200, 0.02e-3, 0.2, 0.98, 1)
	day2 := markovBurst("", seed^0x417e3, 600, 4e-3, 0.3e-3, 18e-3, 140, 40, 0.35)
	return Concat("Night-Heavy Solar", day1, night, day2)
}

// Solar72h synthesizes a three-day outdoor solar recording at 1 s
// resolution: a clear diurnal irradiance envelope with slow cloud fading
// and pitch-dark nights — the long-haul persistence scenario.
func Solar72h(seed uint64) *Trace {
	const (
		day   = 86400 // seconds
		n     = 3 * day
		pPeak = 9e-3
		rho   = 0.999 // slow cloud process
		sigma = 0.5
	)
	r := rng.New(seed ^ 0x72a)
	t := &Trace{Name: "Solar 72h", DT: 1, Power: make([]float64, n)}
	x := r.Norm()
	innov := math.Sqrt(1 - rho*rho)
	for i := range t.Power {
		x = rho*x + innov*r.Norm()
		tod := float64(i % day)
		// Sun above the horizon from 06:00 to 18:00.
		elev := math.Sin(math.Pi * (tod - 6*3600) / (12 * 3600))
		if elev <= 0 {
			t.Power[i] = 0
			continue
		}
		cloud := math.Exp(sigma*x - sigma*sigma/2)
		t.Power[i] = pPeak * math.Pow(elev, 1.5) * cloud
	}
	return t
}
