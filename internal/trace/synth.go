package trace

import (
	"math"

	"react/internal/rng"
)

// Synthetic evaluation traces. Each generator is deterministic for a given
// seed and is matched to the corresponding row of the paper's Table 3:
//
//	Trace           Time (s)  Avg Pow (mW)  Power CV
//	RF Cart         313       2.12          103 %
//	RF Obstruction  313       0.227         61 %
//	RF Mobile       318       0.5           166 %
//	Solar Campus    3609      5.18          207 %
//	Solar Commute   6030      0.148         333 %
//
// The RF traces are modelled as temporally correlated log-normal processes
// (office multipath fading plus motion), the solar traces as two-state
// shade/sun Markov processes with in-state fading — the structure §2
// describes, where most energy arrives in short high-power bursts.

// arLogNormal fills a trace with exp of an AR(1) process whose stationary
// log-std is sigma and whose per-step correlation is rho, then scales it to
// the requested mean. trend is a multiplicative factor applied linearly in
// log space from start (trend) to end (1/trend), used to front- or back-load
// energy.
func arLogNormal(name string, seed uint64, n int, mean, sigma, rho, trend float64) *Trace {
	r := rng.New(seed)
	t := &Trace{Name: name, DT: 1, Power: make([]float64, n)}
	x := r.Norm() // start in the stationary distribution
	innov := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		x = rho*x + innov*r.Norm()
		logTrend := 0.0
		if trend != 0 && trend != 1 {
			frac := float64(i) / float64(n-1)
			logTrend = math.Log(trend) * (1 - 2*frac)
		}
		t.Power[i] = math.Exp(sigma*x + logTrend)
	}
	t.Scale(mean)
	return t
}

// markovBurst fills a trace with a two-state process: a low state with mean
// lowMean and a high (burst) state with mean highMean; mean dwell times are
// lowDwell and highDwell seconds. Both states carry log-normal fading with
// log-std sigma. The result is scaled to the requested mean.
func markovBurst(name string, seed uint64, n int, mean, lowMean, highMean, lowDwell, highDwell, sigma float64) *Trace {
	r := rng.New(seed)
	t := &Trace{Name: name, DT: 1, Power: make([]float64, n)}
	high := false
	remaining := r.Exp(lowDwell)
	for i := 0; i < n; i++ {
		if remaining <= 0 {
			high = !high
			if high {
				remaining = r.Exp(highDwell)
			} else {
				remaining = r.Exp(lowDwell)
			}
		}
		base := lowMean
		if high {
			base = highMean
		}
		// Log-normal fading normalized to unit mean so `base` is the state mean.
		fade := math.Exp(sigma*r.Norm() - sigma*sigma/2)
		t.Power[i] = base * fade
		remaining--
	}
	t.Scale(mean)
	return t
}

// RFCart reproduces the "RF Cart" trace: a harvester on a moving cart near a
// 915 MHz transmitter. High average power, moderate volatility (CV ≈ 103 %),
// structured as near/far passes — while the cart is near, delivered power
// well exceeds a typical device's active draw, which is what makes small
// static buffers clip (§2.1.2).
func RFCart(seed uint64) *Trace {
	return markovBurst("RF Cart", seed^0xca7, 313, 2.12e-3,
		0.8e-3, 8e-3, 38, 13, 0.25)
}

// RFObstructed reproduces the "RF Obstruction" trace: a harvester behind
// office obstructions. Low power, low volatility (CV ≈ 61 %), slightly
// front-loaded so small buffers start quickly while the 17 mF buffer never
// accumulates its enable energy — the behaviour Table 4 reports.
func RFObstructed(seed uint64) *Trace {
	return arLogNormal("RF Obstructed", seed^0x0b5, 313, 0.227e-3, 0.565, 0.96, 1.35)
}

// RFMobile reproduces the "RF Mobile" trace: a harvester carried through an
// office. Mid power, high volatility (CV ≈ 166 %): long weak stretches with
// strong bursts when the carrier passes near the transmitter.
func RFMobile(seed uint64) *Trace {
	return markovBurst("RF Mobile", seed^0x30b, 318, 0.5e-3,
		0.09e-3, 2.8e-3, 26, 7, 0.5)
}

// SolarCampus reproduces the EnHANTs campus-walk irradiance trace: long
// deeply shaded stretches (well below a typical device's active draw)
// punctuated by strong outdoor bursts carrying most of the energy
// (CV ≈ 207 %).
func SolarCampus(seed uint64) *Trace {
	return markovBurst("Solar Campus", seed^0x5ca, 3609, 5.18e-3,
		0.25e-3, 21e-3, 300, 92, 0.35)
}

// SolarCommute reproduces the EnHANTs commute irradiance trace: nearly dark
// indoor/transit conditions with rare bright moments (CV ≈ 333 %).
func SolarCommute(seed uint64) *Trace {
	return markovBurst("Solar Commute", seed^0x5c0, 6030, 0.148e-3,
		0.02e-3, 2e-3, 300, 21, 0.3)
}

// Fig1Pedestrian generates the pedestrian solar-harvester trace used for
// Figure 1 and the §2.1 background analysis: a 22 %-efficient 5 cm² panel on
// a pedestrian (EnHANTs). Tuned so that most time is spent below 3 mW while
// most energy arrives in spikes above 10 mW.
func Fig1Pedestrian(seed uint64) *Trace {
	return markovBurst("Pedestrian Solar", seed^0xf16, 3500, 2.45e-3,
		0.45e-3, 17e-3, 260, 36, 0.4)
}

// Night generates the §2.1.2 night-time trace: a solar panel under faint
// artificial light, steady and very weak.
func Night(seed uint64) *Trace {
	return arLogNormal("Solar Night", seed^0x417, 1800, 0.30e-3, 0.2, 0.98, 1)
}

// Evaluation bundles the five Table 3 traces in presentation order.
func Evaluation(seed uint64) []*Trace {
	return []*Trace{
		RFCart(seed),
		RFObstructed(seed),
		RFMobile(seed),
		SolarCampus(seed),
		SolarCommute(seed),
	}
}
