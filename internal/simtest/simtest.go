// Package simtest provides the shared invariant checks the simulation
// tests assert — energy conservation per tick, rail voltage within bounds,
// monotonic simulated time — so the sim, workload, and scenario test
// suites exercise one set of checkers instead of each hand-rolling its
// own.
//
// The central tool is Check, which wraps any buffer.Buffer in a
// pass-through recorder that audits every Harvest/Draw/Tick against the
// buffer's own energy ledger. The wrapper preserves the optional Leveler
// and EnableHinter interfaces, so wrapping never changes simulation
// behaviour — a property the scenario determinism suite relies on.
package simtest

import (
	"fmt"
	"math"
	"testing"

	"react/internal/buffer"
	"react/internal/sim"
)

// VMaxBound is a rail-voltage ceiling above every design's overvoltage
// clip (3.6-3.65 V) plus the one-tick series-reclamation overshoot a
// unified switched-capacitor array exhibits between a contraction and the
// next clip (≈ 2×V_low ≈ 3.8 V — the spike the paper's Equation 1 bounds
// for REACT, and deliberately does not bound for Morphy). Any reading
// above it is a physics bug, not a tolerance artifact.
const VMaxBound = 4.0

// maxViolations bounds how many violations a recorder keeps; a broken
// buffer fails on the first few, and million-tick runs must not accumulate
// unbounded diagnostics.
const maxViolations = 8

// Recorder accumulates invariant violations observed by a checked buffer.
type Recorder struct {
	vmax       float64
	inner      buffer.Buffer
	lastNow    float64
	ticked     bool
	base       float64       // stored energy at wrap time
	baseLedger buffer.Ledger // ledger at wrap time
	ticks      int
	violations []string
}

func (r *Recorder) violate(format string, args ...any) {
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

// Err returns nil when every tick upheld the invariants, or an error
// describing the first violations.
func (r *Recorder) Err() error {
	if len(r.violations) == 0 {
		return nil
	}
	return fmt.Errorf("simtest: %s: %d violation(s) over %d ticks, first: %v",
		r.inner.Name(), len(r.violations), r.ticks, r.violations)
}

// Ticks returns how many Tick calls the recorder audited.
func (r *Recorder) Ticks() int { return r.ticks }

// checked is the pass-through buffer wrapper.
type checked struct {
	rec *Recorder
}

func (c *checked) Name() string { return c.rec.inner.Name() }

func (c *checked) Harvest(dE float64) {
	if dE < 0 || math.IsNaN(dE) {
		c.rec.violate("Harvest(%g): negative or NaN energy", dE)
	}
	c.rec.inner.Harvest(dE)
}

func (c *checked) Draw(dE float64) float64 {
	got := c.rec.inner.Draw(dE)
	if got < 0 || got > dE*(1+1e-9)+1e-15 {
		c.rec.violate("Draw(%g) returned %g: outside [0, requested]", dE, got)
	}
	return got
}

func (c *checked) OutputVoltage() float64 { return c.rec.inner.OutputVoltage() }
func (c *checked) Stored() float64        { return c.rec.inner.Stored() }
func (c *checked) Capacitance() float64   { return c.rec.inner.Capacitance() }
func (c *checked) Ledger() *buffer.Ledger { return c.rec.inner.Ledger() }
func (c *checked) SoftwareOverheadFraction() float64 {
	return c.rec.inner.SoftwareOverheadFraction()
}

func (c *checked) Tick(now, dt float64, deviceOn bool) {
	r := c.rec
	if r.ticked && now < r.lastNow {
		r.violate("Tick at t=%g after t=%g: simulated time moved backwards", now, r.lastNow)
	}
	r.lastNow, r.ticked = now, true
	r.inner.Tick(now, dt, deviceOn)
	r.ticks++

	// Voltage bound: checked after Tick, once overvoltage clipping has
	// been applied for the step.
	if v := r.inner.OutputVoltage(); v < -1e-12 || v > r.vmax || math.IsNaN(v) {
		r.violate("t=%g: rail voltage %g outside [0, %g]", now, v, r.vmax)
	}

	// Per-tick energy conservation: the stored energy change since wrap
	// must equal what the ledger says came in minus what it says went out.
	l := r.inner.Ledger()
	in := l.Harvested - r.baseLedger.Harvested
	out := (l.Consumed - r.baseLedger.Consumed) + (l.TotalLoss() - r.baseLedger.TotalLoss())
	dStored := r.inner.Stored() - r.base
	if err := math.Abs(dStored - (in - out)); err > 1e-9+1e-6*in {
		r.violate("t=%g: energy imbalance %g J (stored Δ%g, ledger in %g out %g)",
			now, err, dStored, in, out)
	}
}

// Interface-preserving wrapper variants.
type checkedLeveler struct {
	*checked
	lev buffer.Leveler
}

func (c *checkedLeveler) Level() int                         { return c.lev.Level() }
func (c *checkedLeveler) MaxLevel() int                      { return c.lev.MaxLevel() }
func (c *checkedLeveler) GuaranteedEnergy(level int) float64 { return c.lev.GuaranteedEnergy(level) }

type checkedHinter struct {
	*checked
	hint buffer.EnableHinter
}

func (c *checkedHinter) EnableVoltage() float64 { return c.hint.EnableVoltage() }

type checkedLevelerHinter struct {
	*checkedLeveler
	hint buffer.EnableHinter
}

func (c *checkedLevelerHinter) EnableVoltage() float64 { return c.hint.EnableVoltage() }

// Check wraps b in a pass-through auditor enforcing the per-tick
// invariants: non-negative harvest, draws within request, rail voltage in
// [0, vmax] after each tick, monotonic simulated time, and ledger-vs-stored
// energy conservation. vmax <= 0 selects VMaxBound. The wrapper preserves
// b's Leveler and EnableHinter interfaces, so simulations behave
// identically through it.
func Check(b buffer.Buffer, vmax float64) (buffer.Buffer, *Recorder) {
	if vmax <= 0 {
		vmax = VMaxBound
	}
	rec := &Recorder{
		vmax:       vmax,
		inner:      b,
		base:       b.Stored(),
		baseLedger: *b.Ledger(),
	}
	c := &checked{rec: rec}
	lev, isLev := b.(buffer.Leveler)
	hint, isHint := b.(buffer.EnableHinter)
	switch {
	case isLev && isHint:
		return &checkedLevelerHinter{&checkedLeveler{c, lev}, hint}, rec
	case isLev:
		return &checkedLeveler{c, lev}, rec
	case isHint:
		return &checkedHinter{c, hint}, rec
	default:
		return c, rec
	}
}

// PreCharge deposits energy joules into b and clears its ledger, so the
// charge reads as energy the buffer held before the simulation began — the
// construction-time state of pre-charged zero-harvest studies (energy
// attacks, cold starts). Call it before handing b to sim.Run, which records
// the buffer's starting energy as Result.InitialStored.
func PreCharge(b buffer.Buffer, energy float64) {
	b.Harvest(energy)
	*b.Ledger() = buffer.Ledger{}
}

// CheckBalance asserts the run's whole-trace energy conservation error is
// within tol (the suites use 1e-6, the bound the repository's ledger tests
// established).
func CheckBalance(tb testing.TB, label string, r sim.Result, tol float64) {
	tb.Helper()
	if e := r.EnergyBalanceError(); e > tol || math.IsNaN(e) {
		tb.Errorf("%s: energy balance error %g exceeds %g", label, e, tol)
	}
}

// CheckSamples asserts a recorded voltage series is physical: strictly
// monotonic simulated time and every rail voltage within [0, vmax]
// (vmax <= 0 selects VMaxBound).
func CheckSamples(tb testing.TB, label string, samples []sim.Sample, vmax float64) {
	tb.Helper()
	if vmax <= 0 {
		vmax = VMaxBound
	}
	for i, s := range samples {
		if i > 0 && s.T <= samples[i-1].T {
			tb.Errorf("%s: sample %d time %g not after %g", label, i, s.T, samples[i-1].T)
			return
		}
		if s.V < 0 || s.V > vmax || math.IsNaN(s.V) {
			tb.Errorf("%s: sample %d voltage %g outside [0, %g]", label, i, s.V, vmax)
			return
		}
	}
}
