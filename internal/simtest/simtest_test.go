package simtest

import (
	"strings"
	"testing"

	"react/internal/buffer"
	"react/internal/core"
	"react/internal/sim"
)

// leakyFake violates conservation: it harvests energy without recording it
// in the ledger, and its voltage can exceed any physical clip.
type leakyFake struct {
	stored float64
	ledger buffer.Ledger
}

func (f *leakyFake) Name() string { return "leaky-fake" }
func (f *leakyFake) Harvest(dE float64) {
	f.stored += 2 * dE // creates energy out of thin air
	f.ledger.Harvested += dE
}
func (f *leakyFake) Draw(dE float64) float64 {
	f.ledger.Consumed += dE
	f.stored -= dE
	return dE
}
func (f *leakyFake) OutputVoltage() float64              { return 5.0 } // above any clip
func (f *leakyFake) Stored() float64                     { return f.stored }
func (f *leakyFake) Capacitance() float64                { return 1e-3 }
func (f *leakyFake) Tick(now, dt float64, deviceOn bool) {}
func (f *leakyFake) Ledger() *buffer.Ledger              { return &f.ledger }
func (f *leakyFake) SoftwareOverheadFraction() float64   { return 0 }

func TestCheckCatchesNonConservingBuffer(t *testing.T) {
	b, rec := Check(&leakyFake{}, 0)
	b.Harvest(1e-3)
	b.Tick(0, 1e-3, false)
	err := rec.Err()
	if err == nil {
		t.Fatal("a buffer that doubles harvested energy must violate conservation")
	}
	if !strings.Contains(err.Error(), "imbalance") || !strings.Contains(err.Error(), "voltage") {
		t.Errorf("error should report both the imbalance and the voltage breach: %v", err)
	}
}

func TestCheckCatchesTimeTravel(t *testing.T) {
	st := buffer.NewStatic(buffer.StaticConfig{
		Name: "1 mF", C: 1e-3, VMax: 3.6, LeakI: 1e-6, VRated: 6.3,
	})
	b, rec := Check(st, 0)
	b.Tick(1.0, 1e-3, false)
	b.Tick(0.5, 1e-3, false)
	if rec.Err() == nil {
		t.Error("backwards simulated time must be a violation")
	}
}

func TestCheckPassesHonestBufferAndPreservesLeveler(t *testing.T) {
	b, rec := Check(core.New(core.DefaultConfig()), 0)
	if _, ok := b.(buffer.Leveler); !ok {
		t.Fatal("wrapping REACT must preserve its Leveler interface")
	}
	for i := 0; i < 5000; i++ {
		b.Harvest(4e-3 * 1e-3)
		b.Draw(1e-3 * 1e-3)
		b.Tick(float64(i)*1e-3, 1e-3, true)
	}
	if err := rec.Err(); err != nil {
		t.Errorf("honest buffer flagged: %v", err)
	}
	if rec.Ticks() != 5000 {
		t.Errorf("audited %d ticks, want 5000", rec.Ticks())
	}
}

func TestCheckSamplesFlagsBadSeries(t *testing.T) {
	good := []sim.Sample{{T: 0, V: 1}, {T: 1, V: 2}}
	CheckSamples(t, "good", good, 0) // must not fail the test

	bad := &testing.T{}
	CheckSamples(bad, "time", []sim.Sample{{T: 1, V: 1}, {T: 1, V: 1}}, 0)
	if !bad.Failed() {
		t.Error("non-increasing time must fail")
	}
	bad = &testing.T{}
	CheckSamples(bad, "voltage", []sim.Sample{{T: 0, V: 9}}, 0)
	if !bad.Failed() {
		t.Error("over-limit voltage must fail")
	}
}
