// Package harvest models the power-delivery frontend between an ambient
// energy source and the buffer: the converter chips whose load-dependent
// efficiency the paper's Ekho-style replay system emulates (§4.3), and the
// replay frontend itself.
package harvest

import (
	"fmt"
	"math"

	"react/internal/trace"
)

// Converter transforms harvested source power into power delivered to the
// buffer, as a function of the buffer voltage it is charging into.
type Converter interface {
	Name() string
	// Deliver returns the power (watts) delivered to a buffer at voltage
	// vBuf when the source provides pSource watts.
	Deliver(pSource, vBuf float64) float64
}

// Identity passes source power through unchanged. The paper's evaluation
// traces were recorded at the harvester output and replayed by a DAC driving
// the buffer directly, so replaying them needs no further conversion.
type Identity struct{}

// Name implements Converter.
func (Identity) Name() string { return "identity" }

// Deliver implements Converter.
func (Identity) Deliver(pSource, vBuf float64) float64 {
	if pSource < 0 {
		return 0
	}
	return pSource
}

// RFRectifier approximates a commercial 915 MHz RF-to-DC power harvester
// (Powercast P2110B class): a sensitivity floor below which nothing is
// delivered, efficiency that climbs steeply with input power, peaks around
// the milliwatt range, and rolls off slightly at high power.
type RFRectifier struct {
	// Floor is the minimum input power that produces any output (W).
	Floor float64
	// PeakEff is the peak conversion efficiency (0..1).
	PeakEff float64
	// PeakPower is the input power at which efficiency peaks (W).
	PeakPower float64
}

// DefaultRF returns parameters matching the P2110B datasheet shape:
// ~ -11 dBm sensitivity, ~55 % peak efficiency near 1 mW.
func DefaultRF() *RFRectifier {
	return &RFRectifier{Floor: 80e-6, PeakEff: 0.55, PeakPower: 1e-3}
}

// Name implements Converter.
func (r *RFRectifier) Name() string { return "rf-rectifier" }

// Deliver implements Converter.
func (r *RFRectifier) Deliver(pSource, vBuf float64) float64 {
	if pSource <= r.Floor {
		return 0
	}
	// Efficiency follows a log-parabola peaking at PeakPower, a standard
	// fit for rectenna efficiency curves.
	x := math.Log10(pSource / r.PeakPower)
	eff := r.PeakEff * (1 - 0.12*x*x)
	if eff < 0 {
		eff = 0
	}
	return pSource * eff
}

// SolarBoost approximates a solar energy-harvesting power-management chip
// (TI bq25570 class): an inefficient cold-start path until the storage
// element reaches the main-boost threshold, then a high-efficiency boost
// converter with a small quiescent draw.
type SolarBoost struct {
	// ColdStartV is the buffer voltage below which the chip runs its
	// low-efficiency cold-start charger.
	ColdStartV float64
	// ColdEff and MainEff are the two efficiency regimes (0..1).
	ColdEff, MainEff float64
	// QuiescentW is the chip's own draw while the main converter runs.
	QuiescentW float64
}

// DefaultSolar returns parameters matching the bq25570 datasheet shape.
func DefaultSolar() *SolarBoost {
	return &SolarBoost{ColdStartV: 1.8, ColdEff: 0.05, MainEff: 0.85, QuiescentW: 1.5e-6}
}

// Name implements Converter.
func (s *SolarBoost) Name() string { return "solar-boost" }

// Deliver implements Converter.
func (s *SolarBoost) Deliver(pSource, vBuf float64) float64 {
	if pSource <= 0 {
		return 0
	}
	if vBuf < s.ColdStartV {
		return pSource * s.ColdEff
	}
	out := pSource*s.MainEff - s.QuiescentW
	if out < 0 {
		return 0
	}
	return out
}

// ByName returns the named converter model, so declarative scenario specs
// can select the conversion stage without constructing it in code. The
// empty string and "identity" both mean pass-through replay (the paper's
// frontend); "rf-rectifier" and "solar-boost" select the datasheet-shaped
// defaults.
func ByName(name string) (Converter, error) {
	switch name {
	case "", "identity":
		return Identity{}, nil
	case "rf-rectifier":
		return DefaultRF(), nil
	case "solar-boost":
		return DefaultSolar(), nil
	}
	return nil, fmt.Errorf(`harvest: unknown converter %q (want "identity", "rf-rectifier", or "solar-boost")`, name)
}

// Frontend replays a power trace through a converter — the software
// equivalent of the paper's record-and-replay power controller.
type Frontend struct {
	Trace *trace.Trace
	Conv  Converter
}

// NewFrontend pairs a trace with a converter; a nil converter means
// Identity (replaying recorded harvester output directly).
func NewFrontend(tr *trace.Trace, conv Converter) *Frontend {
	if conv == nil {
		conv = Identity{}
	}
	return &Frontend{Trace: tr, Conv: conv}
}

// Power returns the power delivered to a buffer at voltage vBuf at time t.
func (f *Frontend) Power(t, vBuf float64) float64 {
	return f.Conv.Deliver(f.Trace.At(t), vBuf)
}

// Aligned reports whether a simulation loop of timestep dt steps exactly one
// trace sample per tick, enabling the PowerSample fast path. A trace with a
// non-positive sample spacing never aligns: it has no extent in time
// (Trace.At and Trace.Duration treat it as empty), so the index fast path
// must not replay its samples either.
func (f *Frontend) Aligned(dt float64) bool {
	//lint:reactlint-ignore dtarith exact identity IS the invariant: the index fast path is bit-identical to interpolation only when dt equals the sample spacing exactly
	return f.Trace != nil && dt > 0 && f.Trace.DT == dt
}

// PowerSample is the aligned fast path of Power: the power delivered to a
// buffer at voltage vBuf during tick i of a loop whose timestep equals the
// trace sample spacing. It indexes the power slice directly, skipping the
// per-tick time-to-position division and interpolation.
func (f *Frontend) PowerSample(i int, vBuf float64) float64 {
	return f.Conv.Deliver(f.Trace.Sample(i), vBuf)
}
