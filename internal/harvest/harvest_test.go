package harvest

import (
	"math"
	"testing"

	"react/internal/trace"
)

// TestAlignedRequiresPositiveSpacing pins the fast-path gate: a trace with
// a degenerate sample spacing must never take the index-per-tick path (it
// has no extent in time, so Trace.At treats it as empty), and alignment
// demands an exact spacing match.
func TestAlignedRequiresPositiveSpacing(t *testing.T) {
	bad := NewFrontend(&trace.Trace{DT: 0, Power: []float64{1, 2}}, nil)
	if bad.Aligned(0) {
		t.Error("a zero-DT trace must not align with a zero timestep")
	}
	ok := NewFrontend(&trace.Trace{DT: 1e-3, Power: []float64{1, 2}}, nil)
	if !ok.Aligned(1e-3) {
		t.Error("matching positive spacings must align")
	}
	if ok.Aligned(2e-3) {
		t.Error("mismatched spacings must not align")
	}
}

func TestIdentityPassesThrough(t *testing.T) {
	c := Identity{}
	if got := c.Deliver(5e-3, 2.0); got != 5e-3 {
		t.Errorf("identity delivered %g", got)
	}
	if got := c.Deliver(-1, 2.0); got != 0 {
		t.Error("negative source power must deliver nothing")
	}
	if c.Name() == "" {
		t.Error("converter must be named")
	}
}

func TestRFRectifierFloor(t *testing.T) {
	r := DefaultRF()
	if r.Deliver(10e-6, 2.0) != 0 {
		t.Error("input below the sensitivity floor must deliver nothing")
	}
}

func TestRFRectifierPeakEfficiency(t *testing.T) {
	r := DefaultRF()
	atPeak := r.Deliver(r.PeakPower, 2.0) / r.PeakPower
	if math.Abs(atPeak-r.PeakEff) > 1e-9 {
		t.Errorf("efficiency at peak %g, want %g", atPeak, r.PeakEff)
	}
	// Efficiency falls off both below and above the peak.
	below := r.Deliver(r.PeakPower/30, 2.0) / (r.PeakPower / 30)
	above := r.Deliver(r.PeakPower*30, 2.0) / (r.PeakPower * 30)
	if below >= atPeak || above >= atPeak {
		t.Errorf("efficiency curve should peak: below %.3f peak %.3f above %.3f", below, atPeak, above)
	}
	if below < 0 || above < 0 {
		t.Error("efficiency must never go negative")
	}
}

func TestRFRectifierNeverNegative(t *testing.T) {
	r := DefaultRF()
	for _, p := range []float64{1e-7, 1e-5, 1e-3, 1e-1, 10} {
		if out := r.Deliver(p, 2.0); out < 0 {
			t.Errorf("Deliver(%g) = %g", p, out)
		}
	}
}

func TestSolarBoostColdStart(t *testing.T) {
	s := DefaultSolar()
	cold := s.Deliver(10e-3, 1.0) // below the cold-start threshold
	main := s.Deliver(10e-3, 2.5) // main boost running
	if cold >= main {
		t.Errorf("cold start (%g) must be far less efficient than main boost (%g)", cold, main)
	}
	if math.Abs(cold-10e-3*s.ColdEff) > 1e-12 {
		t.Errorf("cold-start efficiency wrong: %g", cold)
	}
}

func TestSolarBoostQuiescentFloor(t *testing.T) {
	s := DefaultSolar()
	// Input so weak the quiescent draw eats it entirely.
	if out := s.Deliver(1e-6, 2.5); out != 0 {
		t.Errorf("sub-quiescent input should deliver nothing, got %g", out)
	}
	if s.Deliver(0, 2.5) != 0 {
		t.Error("zero input delivers nothing")
	}
}

func TestFrontendReplaysTrace(t *testing.T) {
	tr := &trace.Trace{Name: "t", DT: 1, Power: []float64{1e-3, 3e-3}}
	f := NewFrontend(tr, nil) // nil converter = identity
	if got := f.Power(0, 2.0); got != 1e-3 {
		t.Errorf("frontend power %g", got)
	}
	if got := f.Power(0.5, 2.0); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("frontend should interpolate, got %g", got)
	}
	if got := f.Power(100, 2.0); got != 0 {
		t.Error("past the trace end the frontend delivers nothing")
	}
}

func TestFrontendAppliesConverter(t *testing.T) {
	tr := &trace.Trace{Name: "t", DT: 1, Power: []float64{10e-3, 10e-3}}
	f := NewFrontend(tr, DefaultSolar())
	cold := f.Power(0, 1.0)
	main := f.Power(0, 2.5)
	if cold >= main {
		t.Error("converter must shape delivered power by buffer voltage")
	}
}

func TestFrontendAlignedFastPath(t *testing.T) {
	tr := &trace.Trace{Name: "s", DT: 1e-3, Power: []float64{1e-3, 2e-3}}
	f := NewFrontend(tr, nil)
	if !f.Aligned(1e-3) || f.Aligned(2e-3) {
		t.Error("alignment detection")
	}
	for i := range tr.Power {
		if f.PowerSample(i, 2.0) != f.Power(float64(i)*tr.DT, 2.0) {
			t.Errorf("sample %d: fast path %g != Power %g", i,
				f.PowerSample(i, 2.0), f.Power(float64(i)*tr.DT, 2.0))
		}
	}
	if f.PowerSample(99, 2.0) != 0 {
		t.Error("past-the-end sample must deliver 0")
	}
}

func TestConverterByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "identity",
		"identity":     "identity",
		"rf-rectifier": "rf-rectifier",
		"solar-boost":  "solar-boost",
	} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != want {
			t.Errorf("ByName(%q) = %q, want %q", name, c.Name(), want)
		}
	}
	if _, err := ByName("flux-capacitor"); err == nil {
		t.Error("unknown converter must error")
	}
}
