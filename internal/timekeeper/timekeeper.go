// Package timekeeper models remanence-based timekeeping for intermittent
// systems (de Winkel et al., ASPLOS'20 — the paper's citation [8] for how
// the Sense-and-Compute benchmark tracks deadlines across power failures).
//
// A batteryless device that loses power also loses its clock. A remanence
// timekeeper exploits the predictable decay of charge on a dedicated RC
// pair (or of SRAM cell contents): software writes a known value before
// dying; on reboot, the surviving analog level reveals roughly how long
// the outage lasted. The estimate is good within a bounded range and
// saturates beyond it — after that the system only knows "longer than the
// range".
package timekeeper

import "math"

// Clock is a remanence timekeeper: an RC decay cell sampled by an ADC.
type Clock struct {
	// Tau is the RC decay constant, seconds. The usable range is roughly
	// [Tau/50, 3·Tau] — below it the ADC cannot resolve the decay, above
	// it the cell has flattened into the noise floor.
	Tau float64
	// ADCBits is the sampling resolution (quantization error source).
	ADCBits int
	// NoiseFrac models component variation as a relative error on the
	// decayed voltage (temperature, leakage spread).
	NoiseFrac float64

	armed bool
	v0    float64 // voltage written at power-down
	v     float64 // present cell voltage
}

// DefaultClock returns a timekeeper covering multi-minute outages, the
// range the evaluation traces need.
func DefaultClock() *Clock {
	return &Clock{Tau: 100, ADCBits: 12, NoiseFrac: 0.01}
}

// MaxRange returns the longest outage the clock can still resolve.
func (c *Clock) MaxRange() float64 { return 3 * c.Tau }

// Arm charges the decay cell; call at power-down (or continuously while
// powered, as real systems do).
func (c *Clock) Arm() {
	c.armed = true
	c.v0 = 1
	c.v = 1
}

// Decay advances the cell by dt seconds of unpowered time.
func (c *Clock) Decay(dt float64) {
	if !c.armed {
		return
	}
	c.v *= math.Exp(-dt / c.Tau)
}

// Elapsed estimates the outage duration from the decayed, quantized cell
// voltage. ok is false when the cell has decayed beyond the resolvable
// range (the estimate then is the range floor — "at least this long").
func (c *Clock) Elapsed() (estimate float64, ok bool) {
	if !c.armed {
		return 0, false
	}
	v := c.v * (1 + c.NoiseFrac*noiseFor(c.v))
	// Quantize to the ADC grid.
	steps := math.Exp2(float64(c.ADCBits))
	v = math.Round(v*steps) / steps
	floor := c.v0 * math.Exp(-c.MaxRange()/c.Tau)
	if v <= floor {
		return c.MaxRange(), false
	}
	if v >= c.v0 {
		return 0, true
	}
	return -c.Tau * math.Log(v/c.v0), true
}

// noiseFor derives a deterministic pseudo-noise value in [−1, 1) from the
// cell voltage, so tests are reproducible while the error model still
// varies across readings.
func noiseFor(v float64) float64 {
	bits := math.Float64bits(v)
	bits ^= bits >> 33
	bits *= 0xff51afd7ed558ccd
	bits ^= bits >> 33
	return float64(bits%1000)/500 - 1
}
