package timekeeper

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnarmedClockReportsNothing(t *testing.T) {
	c := DefaultClock()
	if _, ok := c.Elapsed(); ok {
		t.Error("unarmed clock must not report an estimate")
	}
	c.Decay(10) // harmless before arming
	if _, ok := c.Elapsed(); ok {
		t.Error("still unarmed")
	}
}

func TestEstimateAccuracyInRange(t *testing.T) {
	for _, outage := range []float64{5, 20, 60, 150, 250} {
		c := DefaultClock()
		c.Arm()
		c.Decay(outage)
		got, ok := c.Elapsed()
		if !ok {
			t.Fatalf("outage %g s within range reported not-ok", outage)
		}
		// Remanence error is absolute (≈τ·noise), so allow a couple of
		// seconds on top of the 10 %% relative band.
		if err := math.Abs(got - outage); err > 0.10*outage+2.5 {
			t.Errorf("outage %g s estimated as %g s (%.2f s error)", outage, got, err)
		}
	}
}

func TestSaturationBeyondRange(t *testing.T) {
	c := DefaultClock()
	c.Arm()
	c.Decay(10 * c.Tau) // way past the resolvable range
	got, ok := c.Elapsed()
	if ok {
		t.Error("saturated clock must report not-ok")
	}
	if got != c.MaxRange() {
		t.Errorf("saturated estimate %g, want the range floor %g", got, c.MaxRange())
	}
}

func TestZeroOutage(t *testing.T) {
	c := DefaultClock()
	c.Arm()
	got, ok := c.Elapsed()
	if !ok || got > 2.5 {
		t.Errorf("no decay should read ≈0, got %g (%v)", got, ok)
	}
}

func TestRearmResets(t *testing.T) {
	c := DefaultClock()
	c.Arm()
	c.Decay(100)
	c.Arm() // reboot, write a fresh value
	got, ok := c.Elapsed()
	if !ok || got > 2.5 {
		t.Errorf("re-armed clock should read ≈0, got %g", got)
	}
}

// Property: estimates are monotone in the true outage (a longer outage
// never reads shorter), within the resolvable range.
func TestMonotonicity(t *testing.T) {
	f := func(a, b uint8) bool {
		t1 := 1 + float64(a) // 1..256 s
		t2 := 1 + float64(b)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t2 >= 280 { // stay inside the range
			return true
		}
		c1 := DefaultClock()
		c1.Arm()
		c1.Decay(t1)
		e1, _ := c1.Elapsed()
		c2 := DefaultClock()
		c2.Arm()
		c2.Decay(t2)
		e2, _ := c2.Elapsed()
		// Allow the quantization/noise floor as slack.
		return e2 >= e1-1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecayComposes(t *testing.T) {
	a := DefaultClock()
	a.Arm()
	a.Decay(30)
	a.Decay(30)
	b := DefaultClock()
	b.Arm()
	b.Decay(60)
	ea, _ := a.Elapsed()
	eb, _ := b.Elapsed()
	// The two cells land on almost (not bit-) identical voltages, so their
	// deterministic noise draws differ; allow the noise band.
	if math.Abs(ea-eb) > 3 {
		t.Errorf("split decay %g vs single decay %g", ea, eb)
	}
}
