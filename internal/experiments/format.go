package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result table, renderable as aligned text
// or CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(c))
			if i == 0 {
				// Left-align the row label column.
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row included).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	write(t.Header)
	for _, row := range t.Rows {
		write(row)
	}
	return b.String()
}
