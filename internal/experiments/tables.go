package experiments

import (
	"fmt"

	"react/internal/core"
	"react/internal/trace"
)

// Table1 reports the REACT implementation's bank configuration — the
// paper's Table 1.
func Table1() *Table {
	cfg := core.DefaultConfig()
	t := &Table{
		Title:  "Table 1: REACT bank sizes and configurations (bank 0 is the last-level buffer)",
		Header: []string{"Bank", "Capacitor Size (µF)", "Capacitor Count"},
	}
	t.AddRow("0", fmt.Sprintf("%.0f", cfg.LLB.C*1e6), "1")
	for i, b := range cfg.Banks {
		t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%.0f", b.UnitC*1e6), fmt.Sprintf("%d", b.N))
	}
	t.AddRow("range", fmt.Sprintf("%.0f–%.0f", cfg.LLB.C*1e6, cfg.MaxCapacitance()*1e6), "")
	return t
}

// Table3 reports the synthetic evaluation traces' statistics — the paper's
// Table 3.
func Table3(seed uint64) *Table {
	t := &Table{
		Title:  "Table 3: power trace details",
		Header: []string{"Trace", "Time (s)", "Avg. Pow. (mW)", "Power CV"},
	}
	for _, tr := range trace.Evaluation(seed) {
		s := tr.Stats()
		t.AddRow(tr.Name,
			fmt.Sprintf("%.0f", s.Duration),
			fmt.Sprintf("%.3g", s.Mean*1e3),
			fmt.Sprintf("%.0f%%", s.CV*100))
	}
	return t
}

// Table4 reports system latency (time to first enable) across traces and
// buffers — the paper's Table 4. A dash marks systems that never start.
func Table4(g *Grid) *Table {
	t := &Table{
		Title:  "Table 4: system latency (seconds) across traces and energy buffers",
		Header: append([]string{"Trace"}, BufferNames...),
	}
	// Latency is workload-invariant (charge physics only); use DE runs.
	sumRatio, nRatio := 0.0, 0
	for _, tr := range g.Traces {
		row := []string{tr.Name}
		var reactLat float64
		for _, buf := range BufferNames {
			r := g.At("DE", tr.Name, buf)
			if r.Latency < 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", r.Latency))
			if buf == "REACT" {
				reactLat = r.Latency
			}
		}
		if r := g.At("DE", tr.Name, "17 mF"); r.Latency > 0 && reactLat > 0 {
			sumRatio += r.Latency / reactLat
			nRatio++
		}
		t.AddRow(row...)
	}
	means := []string{"Mean"}
	for _, buf := range BufferNames {
		var sum float64
		n := 0
		for _, tr := range g.Traces {
			r := g.At("DE", tr.Name, buf)
			if r.Latency >= 0 {
				sum += r.Latency
				n++
			}
		}
		if n == 0 {
			means = append(means, "-")
		} else {
			means = append(means, fmt.Sprintf("%.2f", sum/float64(n)))
		}
	}
	t.AddRow(means...)
	if nRatio > 0 {
		t.Title += fmt.Sprintf("\n(REACT is %.1fx faster to start than the equal-capacity 17 mF buffer, paper: 7.7x)", sumRatio/float64(nRatio))
	}
	return t
}

// Table2 reports DE, SC and RT benchmark performance across traces and
// buffers — the paper's Table 2. Values are completed blocks (DE),
// successful samples (SC), and successful transmissions (RT).
func Table2(g *Grid) *Table {
	t := &Table{
		Title:  "Table 2: performance on the DE, SC, and RT benchmarks across traces and energy buffers",
		Header: []string{"Trace"},
	}
	benches := []string{"DE", "SC", "RT"}
	for _, bench := range benches {
		for _, buf := range BufferNames {
			t.Header = append(t.Header, bench+" "+buf)
		}
	}
	for _, tr := range g.Traces {
		row := []string{tr.Name}
		for _, bench := range benches {
			for _, buf := range BufferNames {
				row = append(row, fmt.Sprintf("%.0f", Perf(bench, g.At(bench, tr.Name, buf))))
			}
		}
		t.AddRow(row...)
	}
	means := []string{"Mean"}
	for _, bench := range benches {
		for _, buf := range BufferNames {
			var sum float64
			for _, tr := range g.Traces {
				sum += Perf(bench, g.At(bench, tr.Name, buf))
			}
			means = append(means, fmt.Sprintf("%.0f", sum/float64(len(g.Traces))))
		}
	}
	t.AddRow(means...)
	return t
}

// Table5 reports the Packet Forwarding benchmark — the paper's Table 5:
// packets successfully received and retransmitted.
func Table5(g *Grid) *Table {
	t := &Table{
		Title:  "Table 5: packets received and retransmitted during the PF benchmark",
		Header: []string{"Trace"},
	}
	for _, buf := range BufferNames {
		t.Header = append(t.Header, buf+" Rx", buf+" Tx")
	}
	for _, tr := range g.Traces {
		row := []string{tr.Name}
		for _, buf := range BufferNames {
			r := g.At("PF", tr.Name, buf)
			row = append(row, fmt.Sprintf("%.0f", r.Metrics["rx"]), fmt.Sprintf("%.0f", r.Metrics["tx"]))
		}
		t.AddRow(row...)
	}
	means := []string{"Mean"}
	for _, buf := range BufferNames {
		var rx, tx float64
		for _, tr := range g.Traces {
			r := g.At("PF", tr.Name, buf)
			rx += r.Metrics["rx"]
			tx += r.Metrics["tx"]
		}
		n := float64(len(g.Traces))
		means = append(means, fmt.Sprintf("%.0f", rx/n), fmt.Sprintf("%.0f", tx/n))
	}
	t.AddRow(means...)
	return t
}

// Figure7 computes mean benchmark performance normalized to REACT — the
// paper's Figure 7 — and the aggregate improvement headline numbers.
type Figure7 struct {
	// Normalized[bench][buffer] is mean-across-traces performance divided
	// by REACT's.
	Normalized map[string]map[string]float64
	// Improvement[buffer] is REACT's aggregate gain over that buffer,
	// averaged across benchmarks (paper: +39.1 % over 770 µF, +18.8 % over
	// 10 mF, +19.3 % over 17 mF, +26.2 % over Morphy).
	Improvement map[string]float64
}

// ComputeFigure7 evaluates the figure from a completed grid.
func ComputeFigure7(g *Grid) Figure7 {
	f := Figure7{
		Normalized:  map[string]map[string]float64{},
		Improvement: map[string]float64{},
	}
	for _, bench := range BenchmarkNames {
		f.Normalized[bench] = map[string]float64{}
		var reactMean float64
		for _, tr := range g.Traces {
			reactMean += Perf(bench, g.At(bench, tr.Name, "REACT"))
		}
		reactMean /= float64(len(g.Traces))
		for _, buf := range BufferNames {
			var mean float64
			for _, tr := range g.Traces {
				mean += Perf(bench, g.At(bench, tr.Name, buf))
			}
			mean /= float64(len(g.Traces))
			if reactMean > 0 {
				f.Normalized[bench][buf] = mean / reactMean
			}
		}
	}
	for _, buf := range BufferNames {
		if buf == "REACT" {
			continue
		}
		var sum float64
		n := 0
		for _, bench := range BenchmarkNames {
			if norm := f.Normalized[bench][buf]; norm > 0 {
				sum += 1/norm - 1
				n++
			}
		}
		if n > 0 {
			f.Improvement[buf] = sum / float64(n)
		}
	}
	return f
}

// Table reports the figure as a table (rows = benchmarks plus the mean).
func (f Figure7) Table() *Table {
	t := &Table{
		Title:  "Figure 7: mean benchmark performance normalized to REACT",
		Header: append([]string{"Benchmark"}, BufferNames...),
	}
	agg := map[string]float64{}
	for _, bench := range BenchmarkNames {
		row := []string{bench}
		for _, buf := range BufferNames {
			v := f.Normalized[bench][buf]
			agg[buf] += v
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(row...)
	}
	row := []string{"Mean"}
	for _, buf := range BufferNames {
		row = append(row, fmt.Sprintf("%.3f", agg[buf]/float64(len(BenchmarkNames))))
	}
	t.AddRow(row...)
	for _, buf := range []string{"770 µF", "10 mF", "17 mF", "Morphy"} {
		t.Title += fmt.Sprintf("\nREACT vs %s: %+.1f%%", buf, f.Improvement[buf]*100)
	}
	return t
}
