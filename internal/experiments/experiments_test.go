package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"react/internal/runner"
	"react/internal/sim"
	"react/internal/trace"
)

func TestBufferFactoryNames(t *testing.T) {
	for _, name := range BufferNames {
		b := NewBuffer(name)
		if b.Name() != name && !strings.Contains(b.Name(), "REACT") && b.Name() != "Morphy" {
			t.Errorf("buffer %q reports name %q", name, b.Name())
		}
		if b.Capacitance() <= 0 {
			t.Errorf("buffer %q has no capacitance", name)
		}
	}
}

func TestBufferFactoryUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown buffer name must panic")
		}
	}()
	NewBuffer("1 F")
}

func TestWorkloadFactory(t *testing.T) {
	tr := trace.RFCart(1)
	for _, bench := range BenchmarkNames {
		wl := NewWorkload(bench, tr, 1)
		if wl.Name() != bench {
			t.Errorf("workload %q reports name %q", bench, wl.Name())
		}
	}
}

func TestWorkloadFactoryUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown benchmark name must panic")
		}
	}()
	NewWorkload("XX", trace.RFCart(1), 1)
}

// TestCellEnergyConservation verifies the full-stack energy ledger balances
// for one cell of every buffer design.
func TestCellEnergyConservation(t *testing.T) {
	tr := trace.RFCart(1)
	for _, buf := range BufferNames {
		r, err := RunCell(tr, buf, "SC", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e := r.EnergyBalanceError(); e > 1e-6 {
			t.Errorf("%s: energy balance error %g", buf, e)
		}
	}
}

// TestLatencyShape checks the Table 4 relationships on the RF Obstructed
// trace: REACT matches the smallest static buffer's latency, Morphy starts
// even sooner (smaller minimum configuration), larger statics are much
// slower, and the 17 mF buffer never starts at all.
func TestLatencyShape(t *testing.T) {
	tr := trace.RFObstructed(1)
	lat := map[string]float64{}
	for _, buf := range BufferNames {
		r, err := RunCell(tr, buf, "DE", Options{})
		if err != nil {
			t.Fatal(err)
		}
		lat[buf] = r.Latency
	}
	if lat["17 mF"] >= 0 {
		t.Errorf("17 mF should never start on RF Obstructed, latency %.1f", lat["17 mF"])
	}
	if math.Abs(lat["REACT"]-lat["770 µF"]) > 0.1*lat["770 µF"]+1 {
		t.Errorf("REACT latency %.2f should match the 770 µF buffer's %.2f", lat["REACT"], lat["770 µF"])
	}
	if lat["Morphy"] >= lat["REACT"] {
		t.Errorf("Morphy (250 µF minimum) should start before REACT: %.2f vs %.2f", lat["Morphy"], lat["REACT"])
	}
	if lat["10 mF"] < 5*lat["770 µF"] {
		t.Errorf("10 mF latency %.2f should dwarf the 770 µF buffer's %.2f", lat["10 mF"], lat["770 µF"])
	}
}

// TestSmallBufferWinsLowPower checks the §2.1.2 crossover: under weak input
// (RF Obstructed) the small static buffer outperforms the large ones on DE.
func TestSmallBufferWinsLowPower(t *testing.T) {
	tr := trace.RFObstructed(1)
	perf := map[string]float64{}
	for _, buf := range []string{"770 µF", "10 mF", "17 mF"} {
		r, err := RunCell(tr, buf, "DE", Options{})
		if err != nil {
			t.Fatal(err)
		}
		perf[buf] = Perf("DE", r)
	}
	if perf["770 µF"] <= perf["10 mF"] || perf["770 µF"] <= perf["17 mF"] {
		t.Errorf("small buffer should win at low power: %v", perf)
	}
}

// TestLargeBufferWinsHighPower checks the opposite crossover on the bursty
// RF Cart trace, and that REACT captures the bursts at least as well as the
// large statics despite its small-buffer latency.
func TestLargeBufferWinsHighPower(t *testing.T) {
	tr := trace.RFCart(1)
	perf := map[string]float64{}
	for _, buf := range BufferNames {
		r, err := RunCell(tr, buf, "DE", Options{})
		if err != nil {
			t.Fatal(err)
		}
		perf[buf] = Perf("DE", r)
	}
	if perf["17 mF"] <= perf["770 µF"] {
		t.Errorf("large buffer should win at high power: %v", perf)
	}
	if perf["REACT"] <= perf["770 µF"] {
		t.Errorf("REACT should beat the equally-reactive static buffer on bursts: %v", perf)
	}
}

// TestDoomedTransmissions checks §5.4: the 770 µF buffer cannot hold a full
// transmission, so it completes none (or almost none) on a weak trace while
// wasting energy on failed attempts; REACT's longevity guarantee avoids the
// doomed attempts entirely.
func TestDoomedTransmissions(t *testing.T) {
	tr := trace.RFObstructed(1)
	small, err := RunCell(tr, "770 µF", "RT", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Metrics["tx"] > 2 {
		t.Errorf("770 µF should complete almost no transmissions, got %.0f", small.Metrics["tx"])
	}
	if small.Metrics["failed"] == 0 {
		t.Error("770 µF should waste energy on doomed transmissions")
	}
	react, err := RunCell(tr, "REACT", "RT", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if react.Metrics["tx"] < 5 {
		t.Errorf("REACT's longevity guarantee should enable transmissions, got %.0f", react.Metrics["tx"])
	}
	if react.Metrics["failed"] > react.Metrics["tx"]/2 {
		t.Errorf("REACT should rarely start a doomed transmission: %.0f failed of %.0f",
			react.Metrics["failed"], react.Metrics["tx"])
	}
}

// TestMorphySwitchingLossesVisible checks §5.5's mechanism: on a bursty
// trace Morphy dissipates far more in its switch fabric than REACT does.
func TestMorphySwitchingLossesVisible(t *testing.T) {
	tr := trace.RFCart(1)
	m, err := RunCell(tr, "Morphy", "RT", Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunCell(tr, "REACT", "RT", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ledger.SwitchLoss < 3*r.Ledger.SwitchLoss {
		t.Errorf("Morphy switch loss %.4f J should dwarf REACT's %.4f J",
			m.Ledger.SwitchLoss, r.Ledger.SwitchLoss)
	}
}

// TestGridShape runs the full evaluation grid and checks the paper's
// headline claims hold in shape: REACT has the best mean figure of merit on
// every benchmark's aggregate, beats every other buffer overall, and keeps
// the small-buffer latency. Skipped in -short mode (it simulates 100 runs).
func TestGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid takes ~1 minute")
	}
	g, err := RunGrid(Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := ComputeFigure7(g)
	for _, buf := range []string{"770 µF", "10 mF", "17 mF", "Morphy"} {
		if f.Improvement[buf] <= 0 {
			t.Errorf("REACT should beat %s in aggregate, improvement %.1f%%", buf, f.Improvement[buf]*100)
		}
	}
	// The equally-reactive small buffer must lose by a wide margin.
	if f.Improvement["770 µF"] < 0.2 {
		t.Errorf("REACT's gain over 770 µF is only %.1f%% — paper reports ~39%%", f.Improvement["770 µF"]*100)
	}
	// Latency means: REACT ≈ 770 µF, both far ahead of the big statics.
	var reactLat, smallLat, bigLat float64
	n := 0
	for _, tr := range g.Traces {
		reactLat += g.At("DE", tr.Name, "REACT").Latency
		smallLat += g.At("DE", tr.Name, "770 µF").Latency
		if l := g.At("DE", tr.Name, "17 mF").Latency; l >= 0 {
			bigLat += l
			n++
		}
	}
	if reactLat > smallLat*1.1 {
		t.Errorf("REACT mean latency %.1f should track the 770 µF buffer's %.1f", reactLat/5, smallLat/5)
	}
	if bigLat/float64(n) < 3*reactLat/5 {
		t.Errorf("17 mF mean latency %.1f should be several times REACT's %.1f", bigLat/float64(n), reactLat/5)
	}
	// Tables must render without panicking and with one row per trace.
	for _, tbl := range []*Table{Table2(g), Table4(g), Table5(g), f.Table()} {
		if len(tbl.Rows) < len(g.Traces) {
			t.Errorf("table %q has %d rows", tbl.Title, len(tbl.Rows))
		}
		if tbl.String() == "" || tbl.CSV() == "" {
			t.Errorf("table %q renders empty", tbl.Title)
		}
	}
}

// TestRunnerGridMatchesSequentialCells runs a reduced grid (every evaluated
// buffer plus the extensions, over the short RF traces) through the shared
// runner and checks two properties of the engine port: every cell's energy
// ledger balances, and every cell is bit-identical to running the same
// RunCell sequentially — scheduling through the worker pool changes
// nothing about the results.
func TestRunnerGridMatchesSequentialCells(t *testing.T) {
	traces := []*trace.Trace{trace.RFCart(1), trace.RFObstructed(1)}
	buffers := ExtendedBufferNames
	opt := Options{}
	g, err := runner.RunGrid(context.Background(), &runner.Runner{Workers: 4},
		[]string{"RT"}, traces, buffers,
		func(_ context.Context, bench string, tr *trace.Trace, buf string) (sim.Result, error) {
			return RunCell(tr, buf, bench, opt)
		})
	if err != nil {
		t.Fatal(err)
	}
	g.Each(func(bench string, tr *trace.Trace, buf string, r sim.Result) {
		if e := r.EnergyBalanceError(); e > 1e-6 {
			t.Errorf("%s/%s/%s: energy balance error %g", bench, tr.Name, buf, e)
		}
		want, err := RunCell(tr, buf, bench, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Latency != want.Latency || r.OnTime != want.OnTime ||
			r.Duration != want.Duration || r.Cycles != want.Cycles ||
			r.Ledger != want.Ledger || r.Stored != want.Stored {
			t.Errorf("%s/%s/%s: runner result differs from sequential RunCell", bench, tr.Name, buf)
		}
		for k, v := range want.Metrics {
			if r.Metrics[k] != v {
				t.Errorf("%s/%s/%s: metric %s: %g != %g", bench, tr.Name, buf, k, r.Metrics[k], v)
			}
		}
	})
}

// TestBackgroundShape checks the §2.1 narration: the reactivity-longevity
// tradeoff and the night-time behaviour.
func TestBackgroundShape(t *testing.T) {
	bg, err := RunBackground(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bg.LatencyLarge < 8*bg.LatencySmall {
		t.Errorf("large buffer should charge >8x slower: %.1f vs %.1f", bg.LatencyLarge, bg.LatencySmall)
	}
	if bg.CycleLarge < 10*bg.CycleSmall {
		t.Errorf("large buffer cycles should be much longer: %.0f vs %.0f", bg.CycleLarge, bg.CycleSmall)
	}
	if bg.DutyLarge <= bg.DutySmall {
		t.Errorf("on the bursty trace the large buffer should be on more: %.2f vs %.2f", bg.DutyLarge, bg.DutySmall)
	}
	if bg.NightDuty1mF <= bg.NightDuty10mF {
		t.Errorf("at night the small buffer should win: %.3f vs %.3f", bg.NightDuty1mF, bg.NightDuty10mF)
	}
	if bg.NightStarted300mF {
		t.Error("the 300 mF buffer must never start at night")
	}
	if bg.EnergyAbove10mW < 0.5 {
		t.Errorf("most pedestrian-trace energy should arrive in spikes, got %.2f", bg.EnergyAbove10mW)
	}
	if bg.TimeBelow3mW < 0.6 {
		t.Errorf("most pedestrian-trace time should be low-power, got %.2f", bg.TimeBelow3mW)
	}
	if bg.Table().String() == "" {
		t.Error("background table renders empty")
	}
}

// TestOverheadCharacterization checks §5.1: the 1.8 % software penalty and
// the ~68 µW hardware draw.
func TestOverheadCharacterization(t *testing.T) {
	o, err := RunOverhead(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.SoftwarePenalty < 0.005 || o.SoftwarePenalty > 0.04 {
		t.Errorf("software penalty %.3f, paper reports 0.018", o.SoftwarePenalty)
	}
	if o.HardwareDrawW < 30e-6 || o.HardwareDrawW > 120e-6 {
		t.Errorf("hardware draw %.1f µW, paper reports 68 µW", o.HardwareDrawW*1e6)
	}
	if o.Table().String() == "" {
		t.Error("overhead table renders empty")
	}
}

// TestFigure1Series checks that the Figure 1 reproduction exhibits the
// plotted behaviour: the 1 mF line clips at its maximum voltage during
// bursts while the 300 mF line climbs slowly and never clips.
func TestFigure1Series(t *testing.T) {
	runs, err := Figure1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(runs))
	}
	small, large := runs[0], runs[1]
	if small.Result.Cycles < 10*large.Result.Cycles {
		t.Errorf("1 mF should cycle far more often: %d vs %d", small.Result.Cycles, large.Result.Cycles)
	}
	if small.Result.Ledger.Clipped <= large.Result.Ledger.Clipped {
		t.Error("1 mF should clip more energy than 300 mF")
	}
	if len(small.Samples) == 0 || len(large.Samples) == 0 {
		t.Fatal("voltage series missing")
	}
	var peak float64
	for _, s := range large.Samples {
		if s.V > peak {
			peak = s.V
		}
	}
	if peak > 3.65 {
		t.Errorf("300 mF should stay within limits, peaked at %.2f V", peak)
	}
}

// TestFigure6Series checks the Figure 6 recording: four series, and REACT's
// capacitance actually varies over the run (the adaptive behaviour the
// figure illustrates).
func TestFigure6Series(t *testing.T) {
	series, err := Figure6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("want 4 series, got %d", len(series))
	}
	minC, maxC := math.Inf(1), 0.0
	for _, s := range series["REACT"] {
		minC = math.Min(minC, s.C)
		maxC = math.Max(maxC, s.C)
	}
	if maxC <= minC {
		t.Errorf("REACT capacitance never varied: %g..%g", minC, maxC)
	}
	var b strings.Builder
	if err := WriteSeriesCSV(&b, "REACT", series["REACT"]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "time_s,voltage_v") {
		t.Error("CSV header missing")
	}
}

func TestTable1Contents(t *testing.T) {
	tbl := Table1()
	s := tbl.String()
	for _, want := range []string{"770", "220", "440", "880", "5000", "18030"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Contents(t *testing.T) {
	tbl := Table3(1)
	if len(tbl.Rows) != 5 {
		t.Fatalf("want 5 traces, got %d", len(tbl.Rows))
	}
	s := tbl.String()
	for _, want := range []string{"RF Cart", "Solar Commute", "313", "6030"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow(`va"l`, "x,y")
	csv := tbl.CSV()
	if !strings.Contains(csv, `"va""l"`) || !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV escaping broken: %q", csv)
	}
}

// TestExtensionBuffersRun checks the related-work extension designs run
// end to end through the same harness and land between the worst and best
// of the paper's five on a representative cell.
func TestExtensionBuffersRun(t *testing.T) {
	tr := trace.RFCart(1)
	perf := map[string]float64{}
	for _, buf := range []string{"770 µF", "Capybara", "Dewdrop", "REACT"} {
		r, err := RunCell(tr, buf, "RT", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e := r.EnergyBalanceError(); e > 1e-6 {
			t.Errorf("%s: energy balance error %g", buf, e)
		}
		perf[buf] = Perf("RT", r)
	}
	if perf["Dewdrop"] <= perf["770 µF"] {
		t.Errorf("task-matched wake-up should beat the blind small static: %v", perf)
	}
	if perf["Capybara"] <= perf["770 µF"] {
		t.Errorf("federated reserves should beat the lone static: %v", perf)
	}
}

// TestREACTBeatsCapybaraOnThroughput: on compute-bound work over a bursty
// trace, REACT's lossless in-place reconfiguration beats the discrete-bank
// array (which waits on half-charged reserves before expanding).
func TestREACTBeatsCapybaraOnThroughput(t *testing.T) {
	tr := trace.RFCart(1)
	capy, err := RunCell(tr, "Capybara", "DE", Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := RunCell(tr, "REACT", "DE", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Perf("DE", re) <= Perf("DE", capy) {
		t.Errorf("REACT %g should beat Capybara %g on DE/RF Cart", Perf("DE", re), Perf("DE", capy))
	}
}
