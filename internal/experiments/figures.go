package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"react/internal/buffer"
	"react/internal/core"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/runner"
	"react/internal/sim"
	"react/internal/trace"
	"react/internal/workload"
)

// backgroundDevice returns the §2.1 analysis platform: a system drawing
// 1.5 mA in active mode, enabled at 3.6 V and cut off at 1.8 V, running
// continuously whenever powered.
func backgroundDevice() *mcu.Device {
	prof := mcu.Profile{
		VEnable:   3.6,
		VBrownout: 1.8,
		BootTime:  5e-3,
		ActiveI:   1.5e-3,
		SleepI:    4e-6,
	}
	return mcu.NewDevice(prof, workload.NewDataEncryption(prof.ActiveI))
}

// backgroundBuffer builds the static buffers used by the §2.1 analysis;
// they clip just above the enable voltage like the Figure 1 plot shows.
func backgroundBuffer(c float64) buffer.Buffer {
	return buffer.NewStatic(buffer.StaticConfig{
		Name: fmt.Sprintf("%g mF", c*1e3), C: c, VMax: 3.65,
		LeakI: staticLeak(c), VRated: 6.3,
	})
}

// Figure1Run holds one buffer's series for Figure 1.
type Figure1Run struct {
	Label   string
	Result  sim.Result
	Samples []sim.Sample
}

// Figure1 reproduces the paper's Figure 1: a 1 mF and a 300 mF static
// buffer on the simulated pedestrian solar harvester, with the harvested
// power series and each buffer's voltage/on-time series.
func Figure1(opt Options) ([]Figure1Run, error) {
	tr := trace.Fig1Pedestrian(opt.seed())
	return runner.Sweep(context.Background(), nil, []float64{1e-3, 300e-3},
		func(ctx context.Context, c float64) (Figure1Run, error) {
			buf := backgroundBuffer(c)
			res, err := sim.Run(sim.Config{
				DT:       opt.DT,
				Frontend: harvest.NewFrontend(tr, nil),
				Buffer:   buf,
				Device:   backgroundDevice(),
				RecordDT: 1.0,
			})
			if err != nil {
				return Figure1Run{}, err
			}
			return Figure1Run{Label: buf.Name(), Result: res, Samples: res.Samples}, nil
		})
}

// Background reproduces the quantitative claims woven through §2.1: the
// reactivity/longevity/efficiency profile of small vs large static buffers
// on the pedestrian trace, the spike statistics, and the night-time duty
// cycles.
type Background struct {
	// Pedestrian-trace facts (paper: 1 mF charges ≈8× sooner; mean cycle
	// 10 s vs 880 s; duty 27 % vs 49 %).
	LatencySmall, LatencyLarge float64
	CycleSmall, CycleLarge     float64
	DutySmall, DutyLarge       float64
	// Trace shape (paper: 82 % of energy above 10 mW, 77 % of time below
	// 3 mW).
	EnergyAbove10mW, TimeBelow3mW float64
	// Night duty cycles (paper: 5.7 % for 1 mF vs 3.3 % for 10 mF; the
	// 300 mF system never starts).
	NightDuty1mF, NightDuty10mF float64
	NightStarted300mF           bool
}

// RunBackground computes the §2.1 analysis.
func RunBackground(opt Options) (Background, error) {
	var bg Background
	ped := trace.Fig1Pedestrian(opt.seed())
	night := trace.Night(opt.seed())
	bg.EnergyAbove10mW = ped.EnergyFractionAbove(10e-3)
	bg.TimeBelow3mW = ped.TimeFractionBelow(3e-3)

	type point struct {
		tr *trace.Trace
		c  float64
	}
	points := []point{
		{ped, 1e-3}, {ped, 300e-3},
		{night, 1e-3}, {night, 10e-3}, {night, 300e-3},
	}
	res, err := runner.Sweep(context.Background(), nil, points,
		func(ctx context.Context, p point) (sim.Result, error) {
			return sim.Run(sim.Config{
				DT:       opt.DT,
				Frontend: harvest.NewFrontend(p.tr, nil),
				Buffer:   backgroundBuffer(p.c),
				Device:   backgroundDevice(),
			})
		})
	if err != nil {
		return bg, err
	}

	small, large := res[0], res[1]
	bg.LatencySmall, bg.LatencyLarge = small.Latency, large.Latency
	bg.CycleSmall, bg.CycleLarge = small.MeanCycle, large.MeanCycle
	bg.DutySmall = small.OnTime / ped.Duration()
	bg.DutyLarge = large.OnTime / ped.Duration()
	bg.NightDuty1mF = res[2].OnTime / night.Duration()
	bg.NightDuty10mF = res[3].OnTime / night.Duration()
	bg.NightStarted300mF = res[4].Latency >= 0
	return bg, nil
}

// Table renders the background analysis against the paper's claims.
func (bg Background) Table() *Table {
	t := &Table{
		Title:  "§2.1 background analysis: static buffer behaviour on the pedestrian solar trace",
		Header: []string{"Quantity", "Reproduced", "Paper"},
	}
	t.AddRow("charge-time ratio (large/small)", fmt.Sprintf("%.1fx", bg.LatencyLarge/bg.LatencySmall), ">8x")
	t.AddRow("mean power cycle, 1 mF", fmt.Sprintf("%.0f s", bg.CycleSmall), "10 s")
	t.AddRow("mean power cycle, 300 mF", fmt.Sprintf("%.0f s", bg.CycleLarge), "880 s")
	t.AddRow("duty cycle, 1 mF", fmt.Sprintf("%.0f%%", bg.DutySmall*100), "27%")
	t.AddRow("duty cycle, 300 mF", fmt.Sprintf("%.0f%%", bg.DutyLarge*100), "49%")
	t.AddRow("energy arriving above 10 mW", fmt.Sprintf("%.0f%%", bg.EnergyAbove10mW*100), "82%")
	t.AddRow("time spent below 3 mW", fmt.Sprintf("%.0f%%", bg.TimeBelow3mW*100), "77%")
	t.AddRow("night duty cycle, 1 mF", fmt.Sprintf("%.1f%%", bg.NightDuty1mF*100), "5.7%")
	t.AddRow("night duty cycle, 10 mF", fmt.Sprintf("%.1f%%", bg.NightDuty10mF*100), "3.3%")
	started := "never starts"
	if bg.NightStarted300mF {
		started = "starts (!)"
	}
	t.AddRow("night behaviour, 300 mF", started, "never starts")
	return t
}

// Figure6 reproduces the paper's Figure 6: buffer voltage and on-time for
// the SC benchmark under the RF Mobile trace, for the 770 µF and 10 mF
// statics, Morphy, and REACT.
func Figure6(opt Options) (map[string][]sim.Sample, error) {
	tr := trace.RFMobile(opt.seed())
	buffers := []string{"770 µF", "10 mF", "Morphy", "REACT"}
	series, err := runner.Sweep(context.Background(), nil, buffers,
		func(ctx context.Context, buf string) ([]sim.Sample, error) {
			o := opt
			if o.RecordDT == 0 {
				o.RecordDT = 0.5
			}
			r, err := RunCell(tr, buf, "SC", o)
			if err != nil {
				return nil, err
			}
			return r.Samples, nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]sim.Sample, len(buffers))
	for i, buf := range buffers {
		out[buf] = series[i]
	}
	return out, nil
}

// WriteSeriesCSV writes recorded samples as CSV with one series per column
// set: time, voltage, on, capacitance, power.
func WriteSeriesCSV(w io.Writer, label string, samples []sim.Sample) error {
	if _, err := fmt.Fprintf(w, "# %s\ntime_s,voltage_v,on,capacitance_f,power_w\n", label); err != nil {
		return err
	}
	for _, s := range samples {
		on := "0"
		if s.On {
			on = "1"
		}
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s\n",
			strconv.FormatFloat(s.T, 'g', -1, 64),
			strconv.FormatFloat(s.V, 'g', 6, 64),
			on,
			strconv.FormatFloat(s.C, 'g', 6, 64),
			strconv.FormatFloat(s.P, 'g', 6, 64))
		if err != nil {
			return err
		}
	}
	return nil
}

// Overhead reproduces the §5.1 characterization: REACT's software polling
// penalty on compute-bound work and its hardware power draw.
type Overhead struct {
	// SoftwarePenalty is the relative DE-throughput loss from the 10 Hz
	// poll (paper: 1.8 %).
	SoftwarePenalty float64
	// HardwareDrawW is the management power measured while running with
	// every bank engaged (paper: ≈68 µW total, ≈14 µW/bank).
	HardwareDrawW float64
	// PerBankW is HardwareDrawW divided by the bank count.
	PerBankW float64
}

// RunOverhead measures the overheads on steady power, the way §5.1 does
// (DE benchmark, constant supply, five minutes).
func RunOverhead(opt Options) (Overhead, error) {
	const duration = 300.0
	steady := &trace.Trace{Name: "steady 10 mW", DT: 1, Power: make([]float64, int(duration))}
	for i := range steady.Power {
		steady.Power[i] = 10e-3
	}

	res, err := runner.Sweep(context.Background(), nil,
		[]float64{core.DefaultConfig().SoftwareOverhead, 0},
		func(ctx context.Context, softwareOverhead float64) (sim.Result, error) {
			cfg := core.DefaultConfig()
			cfg.SoftwareOverhead = softwareOverhead
			return sim.Run(sim.Config{
				DT:       opt.DT,
				Frontend: harvest.NewFrontend(steady, nil),
				Buffer:   core.New(cfg),
				Device:   mcu.NewDevice(mcu.DefaultProfile(), workload.NewDataEncryption(DEActiveI)),
			})
		})
	if err != nil {
		return Overhead{}, err
	}
	withPoll, noPoll := res[0], res[1]

	var o Overhead
	if n := noPoll.Metrics["blocks"]; n > 0 {
		o.SoftwarePenalty = 1 - withPoll.Metrics["blocks"]/n
	}
	if withPoll.OnTime > 0 {
		o.HardwareDrawW = withPoll.Ledger.Overhead / withPoll.OnTime
	}
	o.PerBankW = o.HardwareDrawW / float64(len(core.DefaultConfig().Banks))
	return o, nil
}

// Table renders the overhead characterization against the paper's §5.1
// measurements.
func (o Overhead) Table() *Table {
	t := &Table{
		Title:  "§5.1 overhead characterization (DE benchmark, steady power)",
		Header: []string{"Quantity", "Reproduced", "Paper"},
	}
	t.AddRow("software polling penalty", fmt.Sprintf("%.1f%%", o.SoftwarePenalty*100), "1.8%")
	t.AddRow("hardware power draw", fmt.Sprintf("%.0f µW", o.HardwareDrawW*1e6), "68 µW")
	t.AddRow("per-bank draw", fmt.Sprintf("%.0f µW", o.PerBankW*1e6), "~14 µW")
	return t
}
