package experiments

import (
	"math"
	"testing"

	"react/internal/rng"
	"react/internal/trace"
)

// randomTrace builds a short, hostile power trace: bursts, nulls, spikes
// and ramps, designed to force frequent brownouts and controller activity.
func randomTrace(seed uint64) *trace.Trace {
	r := rng.New(seed)
	n := 60 + r.Intn(120)
	tr := &trace.Trace{Name: "fuzz", DT: 1, Power: make([]float64, n)}
	mode := 0
	for i := 0; i < n; i++ {
		if r.Float64() < 0.15 {
			mode = r.Intn(4)
		}
		switch mode {
		case 0: // null
			tr.Power[i] = 0
		case 1: // trickle
			tr.Power[i] = 0.05e-3 * r.Float64()
		case 2: // moderate
			tr.Power[i] = 2e-3 * r.Float64()
		default: // spike
			tr.Power[i] = 50e-3 * r.Float64()
		}
	}
	return tr
}

// TestFuzzAllCells drives every buffer × benchmark combination through
// hostile random traces and checks system-level invariants: no panics,
// energy conservation, sane accounting. This is the failure-injection net
// for the whole stack — brownouts land mid-boot, mid-burst, mid-TX and
// mid-reconfiguration.
func TestFuzzAllCells(t *testing.T) {
	maxSeed := uint64(6)
	if testing.Short() {
		maxSeed = 2 // the full six-seed sweep dominates the suite's runtime
	}
	for seed := uint64(1); seed <= maxSeed; seed++ {
		tr := randomTrace(seed)
		for _, buf := range BufferNames {
			for _, bench := range BenchmarkNames {
				r, err := RunCell(tr, buf, bench, Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, buf, bench, err)
				}
				if e := r.EnergyBalanceError(); e > 1e-6 {
					t.Errorf("seed %d %s/%s: energy balance error %g", seed, buf, bench, e)
				}
				if r.OnTime > r.Duration+1e-9 {
					t.Errorf("seed %d %s/%s: on-time %g exceeds duration %g", seed, buf, bench, r.OnTime, r.Duration)
				}
				if r.Latency >= 0 && r.Latency > r.Duration {
					t.Errorf("seed %d %s/%s: latency %g beyond duration %g", seed, buf, bench, r.Latency, r.Duration)
				}
				if r.Latency < 0 && r.OnTime > 0 {
					t.Errorf("seed %d %s/%s: on-time without ever starting", seed, buf, bench)
				}
				for k, v := range r.Metrics {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("seed %d %s/%s: metric %s = %g", seed, buf, bench, k, v)
					}
				}
				if r.Stored < -1e-12 {
					t.Errorf("seed %d %s/%s: negative residual energy %g", seed, buf, bench, r.Stored)
				}
			}
		}
	}
}

// TestFuzzAccountingConsistency checks the workload-specific accounting
// identities under hostile power: SC deadlines are either sampled, missed,
// or failed; PF packets are received, missed, or failed.
func TestFuzzAccountingConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tr := randomTrace(seed * 31)
		r, err := RunCell(tr, "REACT", "SC", Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		deadlines := math.Floor(r.Duration/5) + 1
		accounted := r.Metrics["samples"] + r.Metrics["missed"] + r.Metrics["failed"]
		// Accounting may lag by the deadlines still pending at shutdown.
		if accounted > deadlines+1 {
			t.Errorf("seed %d SC: %g accounted > %g deadlines", seed, accounted, deadlines)
		}

		p, err := RunCell(tr, "REACT", "PF", Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		handled := p.Metrics["rx"] + p.Metrics["missed"]
		arrivals := r.Duration / 6 * 3 // generous Poisson bound (short traces use a 6 s mean)
		if handled > arrivals {
			t.Errorf("seed %d PF: handled %g packets from ~%g arrivals", seed, handled, arrivals)
		}
		if p.Metrics["tx"] > p.Metrics["rx"] {
			t.Errorf("seed %d PF: transmitted %g > received %g", seed, p.Metrics["tx"], p.Metrics["rx"])
		}
	}
}

// TestFuzzDeterminism verifies a full simulation is bit-reproducible.
func TestFuzzDeterminism(t *testing.T) {
	tr := randomTrace(9)
	a, err := RunCell(tr, "REACT", "PF", Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(randomTrace(9), "REACT", "PF", Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.OnTime != b.OnTime || a.Latency != b.Latency {
		t.Error("identical inputs must reproduce identical runs")
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs: %g vs %g", k, v, b.Metrics[k])
		}
	}
}
