// Package experiments reproduces every table and figure in the paper's
// evaluation (§5) plus the §2 background analysis, mapping each onto the
// simulation substrate. The cmd/ tools and the top-level benchmarks are
// thin wrappers over this package; see DESIGN.md for the experiment index.
//
// Since the scenario subsystem landed, this package no longer owns the
// buffer/workload factories or the grid cells: the paper's evaluation grid
// is a set of registered scenarios (internal/scenario), and the factories
// here delegate to the scenario layer so the paper cells and the extended
// catalogue share one construction path.
package experiments

import (
	"context"
	"fmt"

	"react/internal/buffer"
	"react/internal/mcu"
	"react/internal/runner"
	"react/internal/scenario"
	"react/internal/sim"
	"react/internal/trace"
)

// BufferNames lists the five evaluated buffers in the paper's column order.
var BufferNames = scenario.PaperBuffers

// ExtendedBufferNames is every buffer preset the scenario layer can
// construct: the paper's five plus the related-work extensions.
var ExtendedBufferNames = scenario.PresetBuffers

// BenchmarkNames lists the four benchmarks in presentation order.
var BenchmarkNames = scenario.PaperBenchmarks

// DEActiveI is the device current while running the DE benchmark (see
// scenario.DEActiveI for the rationale).
const DEActiveI = scenario.DEActiveI

// staticLeak is the shared 1 µA/mF static-capacitor leakage figure.
func staticLeak(c float64) float64 { return scenario.StaticLeak(c) }

// NewBuffer constructs a fresh instance of one of the evaluated buffers.
// Beyond the paper's five (BufferNames), the related-work extensions
// "Capybara" and "Dewdrop" are also constructible for the ablation and
// extension experiments. It panics on an unknown name — the set is fixed.
func NewBuffer(name string) buffer.Buffer {
	b, err := scenario.NewPresetBuffer(name)
	if err != nil {
		panic("experiments: unknown buffer " + name)
	}
	return b
}

// NewWorkload constructs a fresh workload for a benchmark over a trace. It
// panics on an unknown benchmark name — the set is fixed.
func NewWorkload(bench string, tr *trace.Trace, seed uint64) mcu.Workload {
	wl, err := scenario.WorkloadSpec{Bench: bench}.Build(tr, seed, mcu.DefaultProfile())
	if err != nil {
		panic("experiments: unknown benchmark " + bench)
	}
	return wl
}

// Options tunes a run; the zero value uses the evaluation defaults.
type Options struct {
	Seed     uint64    // trace/event seed (default 1)
	DT       float64   // timestep (default 1 ms)
	RecordDT float64   // voltage recording interval, 0 = off
	Probe    sim.Probe // optional per-cell event observer (timeline recording)
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// scenarioOptions maps run options onto the scenario layer's.
func (o Options) scenarioOptions() scenario.RunOptions {
	return scenario.RunOptions{Seed: o.seed(), DT: o.DT, RecordDT: o.RecordDT, Probe: o.Probe}
}

// RunCell simulates one (trace × buffer × benchmark) cell of the
// evaluation grid through the scenario layer, with the trace supplied
// directly (the grid shares one materialized trace across its cells).
func RunCell(tr *trace.Trace, bufName, bench string, opt Options) (sim.Result, error) {
	sp := scenario.Spec{
		Name:     "adhoc-cell",
		Trace:    scenario.TraceSpec{Loaded: tr},
		Workload: scenario.WorkloadSpec{Bench: bench},
		Buffers:  scenario.Presets(bufName),
	}
	return sp.Cell(0, opt.scenarioOptions())
}

// Grid is the dense evaluation-grid result store (benchmark × trace ×
// buffer), shared with every other grid-shaped driver via internal/runner.
type Grid = runner.Grid

// RunGrid executes the complete evaluation (4 benchmarks × 5 traces × 5
// buffers) over the default worker pool and returns the populated grid.
func RunGrid(opt Options) (*Grid, error) {
	return RunGridOn(context.Background(), nil, opt)
}

// RunGridOn is RunGrid with an explicit context and runner, for callers
// that need cancellation, a bounded pool, or progress reporting. The grid
// cells are the registered paper scenarios: each (benchmark × trace) pair
// resolves through the scenario registry, so the paper's evaluation and
// the extended catalogue run through one definition of each cell. Each
// (benchmark × trace) group runs its five buffers in lockstep over a
// single pass of the shared trace (scenario.RunBatch).
func RunGridOn(ctx context.Context, r *runner.Runner, opt Options) (*Grid, error) {
	traces := trace.Evaluation(opt.seed())
	return runner.RunGridBatched(ctx, r, BenchmarkNames, traces, BufferNames,
		func(ctx context.Context, bench string, tr *trace.Trace, buffers []string) ([]sim.Result, error) {
			sp, ok := scenario.Lookup(scenario.PaperName(bench, tr.Name))
			if !ok {
				return nil, fmt.Errorf("paper scenario %q not registered", scenario.PaperName(bench, tr.Name))
			}
			// The grid shares each materialized trace across its 20 cells;
			// feed it to the spec (Lookup returns a clone) instead of
			// re-running the synthetic generator once per cell.
			sp.Trace = scenario.TraceSpec{Loaded: tr}
			items := make([]scenario.BatchItem, len(buffers))
			for i, name := range buffers {
				idx := -1
				for j, bs := range sp.Buffers {
					if bs.DisplayName() == name {
						idx = j
						break
					}
				}
				if idx < 0 {
					return nil, fmt.Errorf("scenario %s: no buffer %q", sp.Name, name)
				}
				items[i] = scenario.BatchItem{Spec: sp, Buffer: idx}
			}
			return scenario.RunBatch(items, opt.scenarioOptions(), nil)
		})
}

// Perf returns the figure of merit for one result: completed blocks (DE),
// successful samples (SC), successful transmissions (RT), and forwarded
// traffic rx+tx (PF).
func Perf(bench string, r sim.Result) float64 {
	switch bench {
	case "DE":
		return r.Metrics["blocks"]
	case "SC":
		return r.Metrics["samples"]
	case "RT":
		return r.Metrics["tx"]
	case "PF":
		return r.Metrics["rx"] + r.Metrics["tx"]
	}
	return 0
}
