// Package experiments reproduces every table and figure in the paper's
// evaluation (§5) plus the §2 background analysis, mapping each onto the
// simulation substrate. The cmd/ tools and the top-level benchmarks are
// thin wrappers over this package; see DESIGN.md for the experiment index.
package experiments

import (
	"context"

	"react/internal/buffer"
	"react/internal/capybara"
	"react/internal/core"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/morphy"
	"react/internal/radio"
	"react/internal/runner"
	"react/internal/sim"
	"react/internal/trace"
	"react/internal/workload"
)

// BufferNames lists the five evaluated buffers in the paper's column order.
var BufferNames = []string{"770 µF", "10 mF", "17 mF", "Morphy", "REACT"}

// ExtendedBufferNames is every buffer NewBuffer can construct: the paper's
// five plus the related-work extensions.
var ExtendedBufferNames = []string{"770 µF", "10 mF", "17 mF", "Morphy", "REACT", "Capybara", "Dewdrop"}

// BenchmarkNames lists the four benchmarks in presentation order.
var BenchmarkNames = []string{"DE", "SC", "RT", "PF"}

// staticLeak returns the leakage current (at 6.3 V rating) for a static
// buffer of capacitance c: 1 µA per mF, a low-leakage bulk-capacitor
// figure consistent with buffers that must hold charge across long
// recharge gaps.
func staticLeak(c float64) float64 { return c * 1e-3 }

// NewBuffer constructs a fresh instance of one of the evaluated buffers.
// Beyond the paper's five (BufferNames), the related-work extensions
// "Capybara" and "Dewdrop" are also constructible for the ablation and
// extension experiments. It panics on an unknown name — the set is fixed.
func NewBuffer(name string) buffer.Buffer {
	switch name {
	case "770 µF":
		return buffer.NewStatic(buffer.StaticConfig{
			Name: name, C: 770e-6, VMax: 3.6, LeakI: staticLeak(770e-6), VRated: 6.3,
		})
	case "10 mF":
		return buffer.NewStatic(buffer.StaticConfig{
			Name: name, C: 10e-3, VMax: 3.6, LeakI: staticLeak(10e-3), VRated: 6.3,
		})
	case "17 mF":
		return buffer.NewStatic(buffer.StaticConfig{
			Name: name, C: 17e-3, VMax: 3.6, LeakI: staticLeak(17e-3), VRated: 6.3,
		})
	case "Morphy":
		return morphy.New(morphy.DefaultConfig())
	case "REACT":
		return core.New(core.DefaultConfig())
	case "Capybara":
		return capybara.New(capybara.DefaultConfig())
	case "Dewdrop":
		// Task-matched to the atomic radio transmission with the
		// workloads' longevity margin.
		return buffer.NewDewdrop(buffer.DewdropConfig{
			C: 2.2e-3, VMax: 3.6, VMin: 1.8,
			LeakI: staticLeak(2.2e-3), VRated: 6.3,
			TaskEnergy: radio.DefaultProfile().TX.Energy(3.3) * workload.LongevityMargin,
		})
	}
	panic("experiments: unknown buffer " + name)
}

// pfInterarrival returns the mean packet interarrival time for the PF
// benchmark: denser for the short RF traces, sparser for the long solar
// walks, keeping total arrivals in the same range the paper reports.
func pfInterarrival(tr *trace.Trace) float64 {
	if tr.Duration() <= 1000 {
		return 6
	}
	return 12
}

// traceSeed derives a deterministic event seed from a trace name so PF
// arrival schedules are repeatable per trace but uncorrelated across
// traces.
func traceSeed(name string, seed uint64) uint64 {
	h := seed*0x100000001b3 + 14695981039346656037
	for _, c := range name {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// DEActiveI is the device current while running the DE benchmark. Software
// AES on a low-clocked MSP430-class core draws well under the generic
// active figure; ≈2 mW at 3.3 V keeps the benchmark's consumption below the
// traces' burst power, which is the regime the paper's Table 2 reflects
// (small buffers clip during bursts, large ones capture them).
const DEActiveI = 0.6e-3

// NewWorkload constructs a fresh workload for a benchmark over a trace.
func NewWorkload(bench string, tr *trace.Trace, seed uint64) mcu.Workload {
	prof := mcu.DefaultProfile()
	switch bench {
	case "DE":
		return workload.NewDataEncryption(DEActiveI)
	case "SC":
		return workload.NewSenseCompute(prof.SleepI)
	case "RT":
		return workload.NewRadioTransmit(prof.SleepI)
	case "PF":
		arrivals := radio.Arrivals(traceSeed(tr.Name, seed), tr.Duration()+120, pfInterarrival(tr))
		return workload.NewPacketForward(prof.SleepI, arrivals)
	}
	panic("experiments: unknown benchmark " + bench)
}

// Options tunes a run; the zero value uses the evaluation defaults.
type Options struct {
	Seed     uint64  // trace/event seed (default 1)
	DT       float64 // timestep (default 1 ms)
	RecordDT float64 // voltage recording interval, 0 = off
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// RunCell simulates one (trace × buffer × benchmark) cell of the
// evaluation grid.
func RunCell(tr *trace.Trace, bufName, bench string, opt Options) (sim.Result, error) {
	buf := NewBuffer(bufName)
	dev := mcu.NewDevice(mcu.DefaultProfile(), NewWorkload(bench, tr, opt.seed()))
	return sim.Run(sim.Config{
		DT:       opt.DT,
		Frontend: harvest.NewFrontend(tr, nil),
		Buffer:   buf,
		Device:   dev,
		RecordDT: opt.RecordDT,
	})
}

// Grid is the dense evaluation-grid result store (benchmark × trace ×
// buffer), shared with every other grid-shaped driver via internal/runner.
type Grid = runner.Grid

// RunGrid executes the complete evaluation (4 benchmarks × 5 traces × 5
// buffers) over the default worker pool and returns the populated grid.
func RunGrid(opt Options) (*Grid, error) {
	return RunGridOn(context.Background(), nil, opt)
}

// RunGridOn is RunGrid with an explicit context and runner, for callers
// that need cancellation, a bounded pool, or progress reporting.
func RunGridOn(ctx context.Context, r *runner.Runner, opt Options) (*Grid, error) {
	traces := trace.Evaluation(opt.seed())
	return runner.RunGrid(ctx, r, BenchmarkNames, traces, BufferNames,
		func(ctx context.Context, bench string, tr *trace.Trace, buf string) (sim.Result, error) {
			return RunCell(tr, buf, bench, opt)
		})
}

// Perf returns the figure of merit for one result: completed blocks (DE),
// successful samples (SC), successful transmissions (RT), and forwarded
// traffic rx+tx (PF).
func Perf(bench string, r sim.Result) float64 {
	switch bench {
	case "DE":
		return r.Metrics["blocks"]
	case "SC":
		return r.Metrics["samples"]
	case "RT":
		return r.Metrics["tx"]
	case "PF":
		return r.Metrics["rx"] + r.Metrics["tx"]
	}
	return 0
}
