package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"react/internal/ckpt"
	"react/internal/obs"
	"react/internal/scenario"
	"react/internal/sim"
	"react/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden timeline file")

// coldStartSpec crafts the canonical timeline fixture: a 60 s all-zero
// cold-start prefix (the dead time the batched executor fast-forwards
// over), then steady weak power under the on-demand all-backup checkpoint
// scheme, so the recording must contain at least one fast-forward span and
// several ckpt-backup instants. Everything is derived from tick
// arithmetic, so the recording is bit-identical across runs and worker
// counts.
func coldStartSpec() *scenario.Spec {
	p := make([]float64, 300)
	for i := 60; i < len(p); i++ {
		p[i] = 2.2e-3
	}
	return &scenario.Spec{
		Name:     "timeline-golden",
		Trace:    scenario.TraceSpec{Loaded: &trace.Trace{Name: "crafted-cold", DT: 1, Power: p}},
		Device:   scenario.DeviceSpec{Checkpoint: &ckpt.Config{Scheme: "odab"}},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  scenario.Presets("770 µF", "REACT"),
		DT:       1e-3,
	}
}

// TestSimTimelineGolden records the crafted cold-start run and compares
// the flushed Chrome trace-event JSON byte-for-byte against the golden
// file (regenerate with -update). It also asserts the structural
// properties the golden encodes: a fast-forward span covering the dead
// prefix, checkpoint backup instants, and valid trace-event JSON.
func TestSimTimelineGolden(t *testing.T) {
	spec := coldStartSpec()
	tl := obs.NewSimTimeline(0)
	for i, b := range spec.Buffers {
		tl.Label(i, b.DisplayName())
	}
	items := make([]scenario.BatchItem, len(spec.Buffers))
	for i := range items {
		items[i] = scenario.BatchItem{Spec: spec, Buffer: i}
	}
	var st sim.Stats
	if _, err := scenario.RunBatch(items, scenario.RunOptions{Probe: tl}, &st); err != nil {
		t.Fatal(err)
	}
	if tl.Dropped() != 0 {
		t.Fatalf("fixture run dropped %d events; raise the cap or shrink the fixture", tl.Dropped())
	}

	var buf bytes.Buffer
	if err := tl.Flush(&buf); err != nil {
		t.Fatal(err)
	}

	// Structural assertions, independent of the golden bytes.
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("flushed timeline is not valid trace-event JSON: %v", err)
	}
	var backups, ffwd int
	var ffwdDur float64
	for _, ev := range parsed.TraceEvents {
		switch ev.Name {
		case "ckpt-backup":
			backups++
		case "fast-forward":
			ffwd++
			if ev.Dur > ffwdDur {
				ffwdDur = ev.Dur
			}
		}
	}
	if backups < 2 {
		t.Errorf("recording has %d ckpt-backup instants, want several (odab under weak power)", backups)
	}
	if ffwd < 1 {
		t.Error("recording has no fast-forward span over a 60 s dead prefix")
	}
	// The park must cover (at least almost all of) the 60 s prefix; ts is
	// microseconds.
	if ffwdDur < 55e6 {
		t.Errorf("longest fast-forward span is %.0f µs, want ≥ 55 s", ffwdDur)
	}

	golden := filepath.Join("testdata", "timeline_cold_start.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/obs -run SimTimelineGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline diverges from golden %s (regenerate with -update if the change is intended); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}

	// A second flush of the same recorder is byte-identical: Flush is a
	// snapshot, not a drain.
	var again bytes.Buffer
	if err := tl.Flush(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("second Flush differs from the first")
	}
}
