package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the le-bucket edge semantics: buckets
// are inclusive upper bounds (v <= upper), exactly-on-boundary samples land
// in the boundary's own bucket, and everything above the last bound lands
// in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "boundary fixture", []float64{1, 2, 4})

	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 4, 4.5, 100} {
		h.Observe(v)
	}
	// Raw (non-cumulative) expectations per bucket:
	//   le=1:    0.5, 1            -> 2
	//   le=2:    1.0000001, 2      -> 2
	//   le=4:    3, 4              -> 2
	//   +Inf:    4.5, 100          -> 2
	cum := h.snapshot()
	want := []uint64{2, 4, 6, 8}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative bucket %d = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-116.0000001) > 1e-6 {
		t.Errorf("Sum = %g, want 116.0000001", sum)
	}
}

// TestHistogramEmpty: a never-observed histogram still renders a complete,
// parseable family with all-zero buckets.
func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_hist", "no samples", []float64{1})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	for _, key := range []string{`empty_hist_bucket{le="1"}`, `empty_hist_bucket{le="+Inf"}`, "empty_hist_sum", "empty_hist_count"} {
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing series %s in:\n%s", key, b.String())
		}
		if v != 0 {
			t.Errorf("%s = %g, want 0", key, v)
		}
	}
}

// TestWritePrometheusRoundTrip renders a mixed registry and re-reads it
// through the package's own grammar checker, pinning the format contract
// the CI scrape check relies on: sorted families, cumulative buckets,
// labeled info gauges, and escaped label values.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "a counter")
	g := r.Gauge("aa_gauge", "a gauge")
	r.GaugeFunc("fn_gauge", "computed", func() float64 { return 2.5 })
	r.InfoGauge("build_info", "labels", map[string]string{
		"version": "v1.2.3",
		"odd":     "quote\" slash\\ newline\n",
	})
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})

	c.Add(7)
	g.Set(-3.25)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	checks := map[string]float64{
		"zz_total":                      7,
		"aa_gauge":                      -3.25,
		"fn_gauge":                      2.5,
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    2,
		`lat_seconds_bucket{le="+Inf"}`: 3,
		"lat_seconds_count":             3,
	}
	for key, want := range checks {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("%s = %g (present %v), want %g", key, got, ok, want)
		}
	}
	if got := samples[`build_info{odd="quote\" slash\\ newline\n",version="v1.2.3"}`]; got != 1 {
		t.Errorf("info gauge with escaped labels missing or != 1 (got %g) in:\n%s", got, text)
	}

	// Families must render in sorted name order so scrapes diff cleanly.
	var families []string
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families = append(families, strings.Fields(rest)[0])
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Errorf("families out of order: %q before %q", families[i-1], families[i])
		}
	}
}

// TestRegistryPanics: the registration-time contract violations are
// programmer errors and must fail loudly at startup, not silently corrupt
// the exposition.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup_total", "first")
	mustPanic("duplicate name", func() { r.Counter("dup_total", "second") })
	mustPanic("invalid name", func() { r.Gauge("bad-name", "dashes are not allowed") })
	mustPanic("unsorted buckets", func() { r.Histogram("h", "x", []float64{1, 1}) })
}

// TestParsePrometheusRejects: the grammar checker actually rejects the
// malformed shapes CI depends on it catching.
func TestParsePrometheusRejects(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		"1leading_digit 3\n",
		`unterminated{le="1 3` + "\n",
		"name notanumber\n",
		"dup 1\ndup 2\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed exposition %q", bad)
		}
	}
}
