package obs

import (
	"errors"
	"fmt"
	"testing"
)

// TestTraceparentRoundTrip: a minted context renders a W3C traceparent and
// parses back to the same IDs.
func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	h := sc.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", h)
	}
	if got != sc {
		t.Fatalf("round trip %q: got %+v, want %+v", h, got, sc)
	}
}

// TestParseTraceparentRejects: malformed, zero-ID, and unknown-version
// headers are rejected rather than propagated.
func TestParseTraceparentRejects(t *testing.T) {
	valid := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}.Traceparent()
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("control header rejected")
	}
	for _, bad := range []string{
		"",
		"garbage",
		"01-" + valid[3:], // unknown version
		"00-0000000000000000000000000000000a-000000000000000b",      // missing flags
		"00-00000000000000000000000000000000-000000000000000b-01",   // zero trace id
		"00-0000000000000000000000000000000a-0000000000000000-01",   // zero span id
		"00-short-000000000000000b-01",                              // short trace id
		"00-0000000000000000000000000000000a-zzzzzzzzzzzzzzzz-01",   // non-hex span id
		"00-0000000000000000000000000000000a-000000000000000b-0100", // long flags
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
	}
}

// TestSpanStoreNesting: Start with an invalid parent mints a fresh trace
// root; children and events nest under it; BuildTree reassembles the tree.
func TestSpanStoreNesting(t *testing.T) {
	st := NewSpanStore(0, 0)
	root := st.Start(SpanContext{}, "run", "a", map[string]string{"scenario": "x"})
	if !root.Context().Valid() {
		t.Fatal("root span has no valid context")
	}
	child := st.Start(root.Context(), "batch", "a", nil)
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child did not inherit the trace ID")
	}
	st.Event(child.Context(), "disk-hit", "a", nil)
	child.SetAttr("cells", "3")
	child.End(nil)
	root.End(errors.New("boom"))

	spans, dropped := st.Spans(root.Context().TraceID)
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	trees := BuildTree(spans)
	if len(trees) != 1 || trees[0].Name != "run" {
		t.Fatalf("tree roots = %+v, want one 'run' root", trees)
	}
	if len(trees[0].Children) != 1 || trees[0].Children[0].Name != "batch" {
		t.Fatalf("root children = %+v, want one 'batch'", trees[0].Children)
	}
	batch := trees[0].Children[0]
	if len(batch.Children) != 1 || batch.Children[0].Name != "disk-hit" {
		t.Fatalf("batch children = %+v, want one 'disk-hit' event", batch.Children)
	}
	if batch.Attrs["cells"] != "3" {
		t.Errorf("SetAttr lost: attrs = %v", batch.Attrs)
	}
	if batch.EndUnixNs == 0 {
		t.Error("ended child still open")
	}
	if trees[0].Err != "boom" {
		t.Errorf("root error = %q, want boom", trees[0].Err)
	}
	// Nil-safety: the nil ActiveSpan path must not panic (spans are
	// dropped under load, and every End/SetAttr site relies on this).
	var nilSpan *ActiveSpan
	nilSpan.End(nil)
	nilSpan.SetAttr("k", "v")
	if nilSpan.Context().Valid() {
		t.Error("nil span has a valid context")
	}
	// Double End is a no-op, not a corruption.
	child.End(errors.New("late"))
	spans, _ = st.Spans(root.Context().TraceID)
	for _, sp := range spans {
		if sp.Name == "batch" && sp.Err != "" {
			t.Errorf("second End overwrote the span: %+v", sp)
		}
	}
}

// TestSpanStoreSpanCap: past maxSpans per trace, spans are counted dropped,
// not stored and not crashed on.
func TestSpanStoreSpanCap(t *testing.T) {
	st := NewSpanStore(4, 3)
	root := st.Start(SpanContext{}, "root", "", nil)
	for i := 0; i < 5; i++ {
		st.Event(root.Context(), fmt.Sprintf("e%d", i), "", nil)
	}
	spans, dropped := st.Spans(root.Context().TraceID)
	if len(spans) != 3 {
		t.Errorf("stored %d spans, want cap 3", len(spans))
	}
	if dropped != 3 || st.Dropped() != 3 {
		t.Errorf("dropped = %d (store %d), want 3", dropped, st.Dropped())
	}
}

// TestSpanStoreTraceEviction: a new trace past maxTraces evicts the
// least-recently-written one.
func TestSpanStoreTraceEviction(t *testing.T) {
	st := NewSpanStore(2, 16)
	a := st.Start(SpanContext{}, "a", "", nil)
	b := st.Start(SpanContext{}, "b", "", nil)
	// Touch a so b becomes the eviction victim.
	st.Event(a.Context(), "touch", "", nil)
	c := st.Start(SpanContext{}, "c", "", nil)

	if spans, _ := st.Spans(b.Context().TraceID); len(spans) != 0 {
		t.Errorf("LRU trace b survived eviction with %d spans", len(spans))
	}
	for name, sc := range map[string]SpanContext{"a": a.Context(), "c": c.Context()} {
		if spans, _ := st.Spans(sc.TraceID); len(spans) == 0 {
			t.Errorf("trace %s was evicted, want it retained", name)
		}
	}
}

// TestBuildTreeOrphans: spans whose parent is missing (remote fragments
// from an unreachable peer) surface as roots instead of vanishing, and
// duplicate span IDs (the same span fetched from two peers) collapse to
// one node.
func TestBuildTreeOrphans(t *testing.T) {
	spans := []Span{
		{TraceID: "t", SpanID: "aa", Name: "root", StartUnixNs: 1},
		{TraceID: "t", SpanID: "bb", ParentID: "aa", Name: "child", StartUnixNs: 2},
		{TraceID: "t", SpanID: "cc", ParentID: "missing", Name: "orphan", StartUnixNs: 3},
		{TraceID: "t", SpanID: "bb", ParentID: "aa", Name: "child", StartUnixNs: 2}, // duplicate
	}
	trees := BuildTree(spans)
	if len(trees) != 2 {
		t.Fatalf("got %d roots, want 2 (root + orphan)", len(trees))
	}
	if trees[0].Name != "root" || trees[1].Name != "orphan" {
		t.Fatalf("roots ordered %q, %q; want root, orphan", trees[0].Name, trees[1].Name)
	}
	if len(trees[0].Children) != 1 {
		t.Fatalf("duplicate span not collapsed: %d children", len(trees[0].Children))
	}
}
