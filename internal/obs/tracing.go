package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceparentHeader is the HTTP header carrying the trace context across
// peer forwards, in the W3C trace-context shape
// `00-<16-byte trace id hex>-<8-byte span id hex>-01`.
const TraceparentHeader = "Traceparent"

// TraceID identifies one distributed request tree (a run, sweep, or
// exploration and every batch, disk, and peer hop it fans out into).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// idFallback seeds distinct IDs if crypto/rand ever fails.
var idFallback atomic.Uint64

func randomBytes(b []byte) {
	if _, err := crand.Read(b); err != nil {
		n := idFallback.Add(1) ^ uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(n >> (8 * (i % 8)))
			if i%8 == 7 {
				n = n*0x9e3779b97f4a7c15 + 1
			}
		}
	}
}

// NewTraceID mints a random trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		randomBytes(t[:])
	}
	return t
}

// NewSpanID mints a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		randomBytes(s[:])
	}
	return s
}

// SpanContext is the propagated half of a span: enough to parent remote
// children and to render the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context carries a real trace.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the header value `00-<trace>-<span>-01`.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent decodes a traceparent header value. Unknown versions
// and malformed or all-zero IDs are rejected (ok=false); trace flags are
// accepted but ignored.
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return SpanContext{}, false
	}
	var sid SpanID
	if len(parts[2]) != 2*len(sid) {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sid[:], []byte(parts[2])); err != nil || sid.IsZero() {
		return SpanContext{}, false
	}
	if len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: sid}, true
}

// Span is one recorded operation. Times are unix nanoseconds; EndUnixNano
// is zero while the span is still open. Node names the cluster member
// that recorded the span so merged cross-peer trees stay attributable.
type Span struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	Node        string            `json:"node,omitempty"`
	StartUnixNs int64             `json:"start_unix_ns"`
	EndUnixNs   int64             `json:"end_unix_ns,omitempty"`
	Err         string            `json:"error,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// SpanTree is a span plus its resolved children, the wire shape of the
// /runs/{id}/trace endpoints.
type SpanTree struct {
	Span
	Children []*SpanTree `json:"children,omitempty"`
}

// BuildTree links spans into parent/child trees. Spans whose parent is
// absent (the root, or remote fragments whose parent lives on another
// node that could not be reached) become roots. Siblings are ordered by
// start time then span ID so the tree renders deterministically.
func BuildTree(spans []Span) []*SpanTree {
	// Index and link in slice order, never map order (the determinism
	// contract: a trace tree must marshal identically for any map seed).
	// Duplicate span IDs keep the first occurrence.
	nodes := make(map[string]*SpanTree, len(spans))
	all := make([]*SpanTree, 0, len(spans))
	for i := range spans {
		if _, dup := nodes[spans[i].SpanID]; dup {
			continue
		}
		n := &SpanTree{Span: spans[i]}
		nodes[spans[i].SpanID] = n
		all = append(all, n)
	}
	var roots []*SpanTree
	for _, n := range all {
		if p, ok := nodes[n.ParentID]; ok && n.ParentID != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ts []*SpanTree) {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].StartUnixNs != ts[j].StartUnixNs {
				return ts[i].StartUnixNs < ts[j].StartUnixNs
			}
			return ts[i].SpanID < ts[j].SpanID
		})
	}
	order(roots)
	for _, n := range all {
		order(n.Children)
	}
	return roots
}

// traceEntry holds one trace's spans plus bookkeeping for LRU eviction.
type traceEntry struct {
	spans   []Span
	open    map[SpanID]int // span ID -> index in spans, while open
	touched int64          // unix nanos of last write, for eviction
	dropped uint64
}

// SpanStore is a bounded in-memory span recorder: at most maxTraces
// traces (least-recently-written evicted first) of at most maxSpans
// spans each (excess spans counted, not stored).
type SpanStore struct {
	mu        sync.Mutex
	traces    map[TraceID]*traceEntry
	maxTraces int
	maxSpans  int
	dropped   atomic.Uint64
}

// NewSpanStore returns a store bounded to maxTraces traces of maxSpans
// spans each. Non-positive bounds fall back to 256 traces / 4096 spans.
func NewSpanStore(maxTraces, maxSpans int) *SpanStore {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	if maxSpans <= 0 {
		maxSpans = 4096
	}
	return &SpanStore{
		traces:    make(map[TraceID]*traceEntry),
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
	}
}

// Dropped returns the number of spans discarded because a trace hit its
// span cap.
func (st *SpanStore) Dropped() uint64 { return st.dropped.Load() }

// ActiveSpan is an open span; call End (or EndErr) exactly once.
type ActiveSpan struct {
	store *SpanStore
	sc    SpanContext
}

// Start opens a span. A valid parent nests the span inside the parent's
// trace; an invalid parent mints a fresh trace, making the span a root.
func (st *SpanStore) Start(parent SpanContext, name, node string, attrs map[string]string) *ActiveSpan {
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}
	parentID := ""
	if parent.TraceID.IsZero() {
		sc.TraceID = NewTraceID()
	} else if !parent.SpanID.IsZero() {
		parentID = parent.SpanID.String()
	}
	sp := Span{
		TraceID:     sc.TraceID.String(),
		SpanID:      sc.SpanID.String(),
		ParentID:    parentID,
		Name:        name,
		Node:        node,
		StartUnixNs: time.Now().UnixNano(),
		Attrs:       attrs,
	}
	st.add(sc.TraceID, sp, sc.SpanID)
	return &ActiveSpan{store: st, sc: sc}
}

// Event records an instant (zero-duration, already-closed) span.
func (st *SpanStore) Event(parent SpanContext, name, node string, attrs map[string]string) {
	if !parent.Valid() {
		return
	}
	now := time.Now().UnixNano()
	sp := Span{
		TraceID:     parent.TraceID.String(),
		SpanID:      NewSpanID().String(),
		ParentID:    parent.SpanID.String(),
		Name:        name,
		Node:        node,
		StartUnixNs: now,
		EndUnixNs:   now,
		Attrs:       attrs,
	}
	st.add(parent.TraceID, sp, SpanID{})
}

// AddRemote merges spans fetched from a peer into the local store,
// bucketed under their own trace IDs.
func (st *SpanStore) AddRemote(spans []Span) {
	for _, sp := range spans {
		tid, ok := ParseTraceID(sp.TraceID)
		if !ok {
			continue
		}
		st.add(tid, sp, SpanID{})
	}
}

func (st *SpanStore) add(tid TraceID, sp Span, open SpanID) {
	now := time.Now().UnixNano()
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.traces[tid]
	if e == nil {
		if len(st.traces) >= st.maxTraces {
			st.evictLocked()
		}
		e = &traceEntry{open: make(map[SpanID]int)}
		st.traces[tid] = e
	}
	e.touched = now
	if len(e.spans) >= st.maxSpans {
		e.dropped++
		st.dropped.Add(1)
		return
	}
	e.spans = append(e.spans, sp)
	if !open.IsZero() {
		e.open[open] = len(e.spans) - 1
	}
}

// evictLocked removes the least-recently-written trace.
func (st *SpanStore) evictLocked() {
	var victim TraceID
	oldest := int64(0)
	first := true
	for tid, e := range st.traces {
		if first || e.touched < oldest || (e.touched == oldest && tid.String() < victim.String()) {
			victim, oldest, first = tid, e.touched, false
		}
	}
	if !first {
		delete(st.traces, victim)
	}
}

// Context returns the span's propagation context (nil-safe).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return a.sc
}

// End closes the span, recording err if non-nil. Safe on a nil receiver
// and idempotent enough for deferred use (a second End is a no-op).
func (a *ActiveSpan) End(err error) {
	if a == nil || a.store == nil {
		return
	}
	st := a.store
	a.store = nil
	now := time.Now().UnixNano()
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.traces[a.sc.TraceID]
	if e == nil {
		return
	}
	i, ok := e.open[a.sc.SpanID]
	if !ok {
		return
	}
	delete(e.open, a.sc.SpanID)
	e.spans[i].EndUnixNs = now
	if err != nil {
		e.spans[i].Err = err.Error()
	}
	e.touched = now
}

// SetAttr annotates an open span.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil || a.store == nil {
		return
	}
	st := a.store
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.traces[a.sc.TraceID]
	if e == nil {
		return
	}
	i, ok := e.open[a.sc.SpanID]
	if !ok {
		return
	}
	if e.spans[i].Attrs == nil {
		e.spans[i].Attrs = make(map[string]string)
	}
	e.spans[i].Attrs[k] = v
}

// Spans returns a snapshot of the trace's spans ordered by start time
// then span ID, plus how many spans were dropped at the cap.
func (st *SpanStore) Spans(tid TraceID) (spans []Span, dropped uint64) {
	st.mu.Lock()
	e := st.traces[tid]
	if e != nil {
		spans = append([]Span(nil), e.spans...)
		dropped = e.dropped
	}
	st.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUnixNs != spans[j].StartUnixNs {
			return spans[i].StartUnixNs < spans[j].StartUnixNs
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return spans, dropped
}
