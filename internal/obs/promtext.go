package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsePrometheus validates r as Prometheus text exposition format and
// returns the parsed samples keyed by series (metric name plus rendered
// label set, e.g. `react_foo_bucket{le="1"}`). It is deliberately small —
// a grammar checker for CI and tests, not a full scrape client: it
// accepts HELP/TYPE/arbitrary comments, requires every sample line to be
// `name[{labels}] value [timestamp]`, and rejects malformed names,
// unterminated label quoting, and non-numeric values.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	samples := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, err := parseSeries(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("line %d: expected value [timestamp], got %q", lineNo, rest)
		}
		v, err := parseValue(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, fields[0], err)
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
			}
		}
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// parseSeries splits `name{labels}` off the front of line, returning the
// canonical series key (labels re-rendered in sorted order) and the rest.
func parseSeries(line string) (key, rest string, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", "", fmt.Errorf("no value after metric name %q", line)
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] != '{' {
		return name, line[i:], nil
	}
	labels, rest, err := parseLabels(line[i+1:])
	if err != nil {
		return "", "", fmt.Errorf("metric %s: %v", name, err)
	}
	if len(labels) == 0 {
		return name, rest, nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for j, k := range keys {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String(), rest, nil
}

// parseLabels consumes `k="v",...}` and returns the map plus the remainder.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label pair missing '=' in %q", s)
		}
		k := strings.TrimSpace(s[:eq])
		if !validLabelName(k) {
			return nil, "", fmt.Errorf("invalid label name %q", k)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value not quoted", k)
		}
		v, rest, err := unquoteLabel(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %v", k, err)
		}
		if _, dup := labels[k]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", k)
		}
		labels[k] = v
		s = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %s, got %q", k, s)
	}
}

// unquoteLabel reads a label value up to the closing quote, handling the
// exposition-format escapes \\ \" \n.
func unquoteLabel(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
