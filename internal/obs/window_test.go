package obs

import (
	"testing"
	"time"
)

// fakeClock drives a RateWindow through simulated seconds.
type fakeClock struct{ sec int64 }

func (c *fakeClock) now() time.Time { return time.Unix(c.sec, 0) }

func newTestWindow(seconds int, clk *fakeClock) *RateWindow {
	w := NewRateWindow(seconds)
	w.start = clk.sec
	w.now = clk.now
	return w
}

// TestRateWindowSliding: the estimate tracks the trailing window, so a
// burst ages out instead of diluting forever like a lifetime quotient.
func TestRateWindowSliding(t *testing.T) {
	clk := &fakeClock{sec: 1000}
	w := newTestWindow(10, clk)

	// 5 events/sec for 10 seconds: rate settles at 5.
	for i := 0; i < 10; i++ {
		w.Add(5)
		if i < 9 {
			clk.sec++
		}
	}
	if r := w.Rate(); r != 5 {
		t.Fatalf("steady rate = %g, want 5", r)
	}

	// 10 silent seconds: every bucket is stale, rate decays to zero.
	clk.sec += 10
	if r := w.Rate(); r != 0 {
		t.Fatalf("rate after silence = %g, want 0", r)
	}

	// A fresh burst registers immediately against the full window.
	w.Add(20)
	if r := w.Rate(); r != 2 {
		t.Fatalf("burst rate = %g, want 20/10 = 2", r)
	}
}

// TestRateWindowShortUptime: a daemon younger than the window divides by
// its actual uptime, so early estimates are not diluted by seconds that
// never existed.
func TestRateWindowShortUptime(t *testing.T) {
	clk := &fakeClock{sec: 2000}
	w := newTestWindow(60, clk)
	w.Add(8)
	clk.sec++ // 2 observed seconds of life
	w.Add(8)
	if r := w.Rate(); r != 8 {
		t.Fatalf("short-uptime rate = %g, want 16 events / 2 s = 8", r)
	}
}

// TestRateWindowBucketReuse: a bucket revisited a full window later is
// reset, not accumulated into.
func TestRateWindowBucketReuse(t *testing.T) {
	clk := &fakeClock{sec: 3000}
	w := newTestWindow(5, clk)
	w.Add(100)
	clk.sec += 5 // same ring slot, new epoch
	w.Add(10)
	if r := w.Rate(); r != 2 {
		t.Fatalf("rate = %g, want only the fresh bucket to count (10/5 = 2)", r)
	}
}
