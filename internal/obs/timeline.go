package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"react/internal/mcu"
	"react/internal/sim"
)

// traceEvent is one entry of the Chrome trace-event JSON array format
// (the JSON Perfetto and chrome://tracing load). Timestamps and durations
// are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace-event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Timeline track layout: each cell is a Perfetto "process" whose name is
// the cell's label; inside it, device-state spans and checkpoint instants
// render on one thread and fast-forward parks on another, with the buffer
// capacitance as a per-process counter track.
const (
	tidDevice = 1
	tidEngine = 2
)

// SimTimeline records a simulation run as a Chrome trace-event timeline.
// It implements sim.Probe: device-state spans ("booting"/"on"/"restoring"/
// "backing"; off time renders as gaps), checkpoint backup/restore instants,
// buffer-capacitance counter samples, and fast-forward park spans.
//
// All timestamps come from the probe's sim-time arguments (tick
// arithmetic), never the wall clock, so a recorded timeline is
// bit-identical across runs; Flush sorts events into a deterministic order
// even when cells were stepped by concurrent workers. The event buffer is
// bounded: past the cap new events are counted in Dropped and discarded.
type SimTimeline struct {
	mu     sync.Mutex
	events []traceEvent
	max    int
	labels map[int]string
	// openState tracks each cell's current device-state span.
	openState map[int]openSpan
	dropped   atomic.Uint64
}

type openSpan struct {
	state mcu.State
	since float64
}

// DefaultTimelineEvents bounds a timeline recording (~100 B/event in
// memory, a few hundred bytes serialized).
const DefaultTimelineEvents = 1 << 20

// NewSimTimeline returns a recorder holding at most maxEvents events;
// non-positive means DefaultTimelineEvents.
func NewSimTimeline(maxEvents int) *SimTimeline {
	if maxEvents <= 0 {
		maxEvents = DefaultTimelineEvents
	}
	return &SimTimeline{
		max:       maxEvents,
		labels:    make(map[int]string),
		openState: make(map[int]openSpan),
	}
}

// Label names a cell's track (e.g. the buffer preset) before or during
// recording; unlabeled cells render as "cell N".
func (tl *SimTimeline) Label(cell int, name string) {
	tl.mu.Lock()
	tl.labels[cell] = name
	tl.mu.Unlock()
}

// Dropped reports how many events were discarded at the buffer cap.
func (tl *SimTimeline) Dropped() uint64 { return tl.dropped.Load() }

func (tl *SimTimeline) add(ev traceEvent) {
	tl.mu.Lock()
	if len(tl.events) >= tl.max {
		tl.mu.Unlock()
		tl.dropped.Add(1)
		return
	}
	tl.events = append(tl.events, ev)
	tl.mu.Unlock()
}

// usec converts sim-time seconds to trace-event microseconds.
func usec(t float64) float64 { return t * 1e6 }

// DeviceState implements sim.Probe: close the previous state's span (off
// renders as a gap, not a span) and open the new one.
func (tl *SimTimeline) DeviceState(cell int, t float64, from, to mcu.State) {
	tl.mu.Lock()
	open, ok := tl.openState[cell]
	if !ok {
		open = openSpan{state: from}
	}
	tl.openState[cell] = openSpan{state: to, since: t}
	var ev *traceEvent
	if open.state != mcu.Off && len(tl.events) < tl.max {
		tl.events = append(tl.events, traceEvent{
			Name: open.state.String(), Ph: "X",
			Ts: usec(open.since), Dur: usec(t) - usec(open.since),
			Pid: cell + 1, Tid: tidDevice,
		})
		ev = &tl.events[len(tl.events)-1]
	}
	tl.mu.Unlock()
	if open.state != mcu.Off && ev == nil {
		tl.dropped.Add(1)
	}
}

// Checkpoint implements sim.Probe: instant markers for completed backup
// and restore bursts.
func (tl *SimTimeline) Checkpoint(cell int, t float64, backups, restores int) {
	if backups > 0 {
		tl.add(traceEvent{
			Name: "ckpt-backup", Ph: "i", Ts: usec(t), Pid: cell + 1, Tid: tidDevice,
			S: "t", Args: map[string]any{"completed": backups},
		})
	}
	if restores > 0 {
		tl.add(traceEvent{
			Name: "ckpt-restore", Ph: "i", Ts: usec(t), Pid: cell + 1, Tid: tidDevice,
			S: "t", Args: map[string]any{"completed": restores},
		})
	}
}

// BufferReconfig implements sim.Probe: a counter-track sample of the new
// equivalent capacitance.
func (tl *SimTimeline) BufferReconfig(cell int, t float64, c float64) {
	tl.add(traceEvent{
		Name: "capacitance", Ph: "C", Ts: usec(t), Pid: cell + 1, Tid: tidDevice,
		Args: map[string]any{"farads": c},
	})
}

// FastForward implements sim.Probe: the dead-time park as a span on the
// engine track.
func (tl *SimTimeline) FastForward(cell int, fromT, toT float64) {
	tl.add(traceEvent{
		Name: "fast-forward", Ph: "X",
		Ts: usec(fromT), Dur: usec(toT) - usec(fromT),
		Pid: cell + 1, Tid: tidEngine,
	})
}

// Retire implements sim.Probe: close any open state span and mark the end
// of the cell's run.
func (tl *SimTimeline) Retire(cell int, t float64) {
	tl.DeviceState(cell, t, mcu.Off, mcu.Off) // closes the open span, opens an off gap
	tl.add(traceEvent{
		Name: "retire", Ph: "i", Ts: usec(t), Pid: cell + 1, Tid: tidDevice, S: "t",
	})
}

var _ sim.Probe = (*SimTimeline)(nil)

// Flush writes the recording as Chrome trace-event JSON and resets
// nothing (it may be called repeatedly as the run grows). Events are
// sorted by (ts, pid, tid, name) so output does not depend on worker
// interleaving; per-cell process_name metadata precedes them.
func (tl *SimTimeline) Flush(w io.Writer) error {
	tl.mu.Lock()
	events := append([]traceEvent(nil), tl.events...)
	cells := make(map[int]string, len(tl.labels))
	for cell, name := range tl.labels {
		cells[cell] = name
	}
	tl.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		//lint:reactlint-ignore dtarith exact identity IS the invariant: equal-tick events share one bit-identical ts and must fall through to the pid/tid/name tiebreak
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	present := make(map[int]bool, len(cells))
	for cell := range cells {
		present[cell] = true
	}
	for i := range events {
		present[events[i].Pid-1] = true
	}
	pids := make([]int, 0, len(present))
	for cell := range present {
		pids = append(pids, cell)
	}
	sort.Ints(pids)
	meta := make([]traceEvent, 0, 3*len(pids))
	for _, cell := range pids {
		name, ok := cells[cell]
		if !ok {
			name = "cell " + strconv.Itoa(cell)
		}
		meta = append(meta,
			traceEvent{Name: "process_name", Ph: "M", Pid: cell + 1, Tid: tidDevice,
				Args: map[string]any{"name": name}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: cell + 1, Tid: tidDevice,
				Args: map[string]any{"name": "device"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: cell + 1, Tid: tidEngine,
				Args: map[string]any{"name": "engine"}},
		)
	}

	out := traceFile{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	}
	if d := tl.Dropped(); d > 0 {
		out.OtherData = map[string]any{"dropped_events": d}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
