// Package obs is the repo's stdlib-only observability layer: a metrics
// registry with Prometheus text exposition, trace/span recording with
// traceparent propagation, a sliding-window rate estimator, and a
// Perfetto-compatible simulation timeline recorder.
//
// The offline build cannot vendor prometheus/client_golang or
// opentelemetry, so this package reimplements the minimal slices the
// service needs on top of sync/atomic. Everything here is safe for
// concurrent use.
//
// Wall-clock reads are permitted in this package only: the reactlint
// determinism analyzer exempts internal/obs from its time.Now ban, while
// sim-layer probes (SimTimeline) must derive every timestamp from tick
// arithmetic so that recorded timelines stay bit-identical across runs.
package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v <= uppers[i]; one implicit +Inf bucket catches the rest. Buckets are
// chosen at registration and never change, so Observe is lock-free.
type Histogram struct {
	uppers  []float64
	counts  []atomic.Uint64 // len(uppers)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v: le buckets are inclusive
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with uppers plus +Inf.
func (h *Histogram) snapshot() []uint64 {
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum
}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered family: a single series (plus the synthetic
// _bucket/_sum/_count series for histograms).
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels map[string]string // constant labels, may be nil

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds registered metrics and renders them as Prometheus text
// exposition format (version 0.0.4).
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic("obs: invalid metric name " + strconv.Quote(m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.ordered = append(r.ordered, m)
}

// Counter registers and returns a new counter. Panics on duplicate names.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// InfoGauge registers a constant gauge of value 1 carrying labels, the
// Prometheus idiom for build/version info.
func (r *Registry) InfoGauge(name, help string, labels map[string]string) {
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.register(&metric{name: name, help: help, kind: kindGauge, labels: cp, gaugeFn: func() float64 { return 1 }})
}

// Histogram registers a histogram with the given inclusive bucket upper
// bounds, which must be sorted strictly increasing; a +Inf bucket is
// implicit. Panics on unsorted buckets or duplicate names.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic("obs: histogram buckets must be sorted strictly increasing: " + name)
		}
	}
	h := &Histogram{
		uppers: append([]float64(nil), uppers...),
		counts: make([]atomic.Uint64, len(uppers)+1),
	}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// WritePrometheus renders every registered metric in text exposition
// format, sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var b strings.Builder
	for _, m := range ms {
		b.WriteString("# HELP ")
		b.WriteString(m.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(m.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(m.name)
		b.WriteByte(' ')
		switch m.kind {
		case kindCounter:
			b.WriteString("counter")
		case kindGauge:
			b.WriteString("gauge")
		case kindHistogram:
			b.WriteString("histogram")
		}
		b.WriteByte('\n')
		switch m.kind {
		case kindCounter:
			writeSample(&b, m.name, m.labels, "", formatUint(m.counter.Load()))
		case kindGauge:
			v := 0.0
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			} else {
				v = m.gauge.Load()
			}
			writeSample(&b, m.name, m.labels, "", formatFloat(v))
		case kindHistogram:
			cum := m.hist.snapshot()
			for i, upper := range m.hist.uppers {
				writeSample(&b, m.name+"_bucket", m.labels, `le="`+formatFloat(upper)+`"`, formatUint(cum[i]))
			}
			writeSample(&b, m.name+"_bucket", m.labels, `le="+Inf"`, formatUint(cum[len(cum)-1]))
			writeSample(&b, m.name+"_sum", m.labels, "", formatFloat(m.hist.Sum()))
			writeSample(&b, m.name+"_count", m.labels, "", formatUint(m.hist.Count()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name{labels} value` line. extra is a pre-rendered
// label pair (the histogram le) appended after the sorted constant labels.
func writeSample(b *strings.Builder, name string, labels map[string]string, extra, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extra != "" {
		b.WriteByte('{')
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[k]))
			b.WriteByte('"')
		}
		if extra != "" {
			if len(keys) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// 100µs to ~100s in roughly 3x steps.
var DurationBuckets = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100}

// SizeBuckets is a count ladder (batch sizes, queue depths) in powers of two.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
