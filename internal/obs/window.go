package obs

import (
	"sync"
	"time"
)

// RateWindow estimates an event rate over a sliding window using a ring
// of per-second buckets. Add records events against the current wall
// second; Rate sums the buckets still inside the window and divides by
// the observed span. Unlike a lifetime counter/uptime quotient, the
// estimate tracks the recent rate and does not decay toward zero on a
// long-lived daemon.
type RateWindow struct {
	mu      sync.Mutex
	buckets []uint64
	epochs  []int64 // unix second each bucket was last written
	start   int64   // unix second of construction, for short-uptime spans
	now     func() time.Time
}

// NewRateWindow returns a window covering the past `seconds` seconds.
func NewRateWindow(seconds int) *RateWindow {
	if seconds < 1 {
		seconds = 1
	}
	return &RateWindow{
		buckets: make([]uint64, seconds),
		epochs:  make([]int64, seconds),
		start:   time.Now().Unix(),
		now:     time.Now,
	}
}

// Add records n events now.
func (w *RateWindow) Add(n uint64) {
	sec := w.now().Unix()
	i := int(sec % int64(len(w.buckets)))
	w.mu.Lock()
	if w.epochs[i] != sec {
		w.epochs[i] = sec
		w.buckets[i] = 0
	}
	w.buckets[i] += n
	w.mu.Unlock()
}

// Rate returns events per second over the window. Buckets older than the
// window (stale epochs) are ignored; on a daemon younger than the window
// the divisor is the actual uptime so early estimates are not diluted.
func (w *RateWindow) Rate() float64 {
	sec := w.now().Unix()
	span := int64(len(w.buckets))
	if up := sec - w.start + 1; up < span {
		span = up
	}
	if span < 1 {
		span = 1
	}
	var total uint64
	w.mu.Lock()
	for i := range w.buckets {
		if sec-w.epochs[i] < int64(len(w.buckets)) {
			total += w.buckets[i]
		}
	}
	w.mu.Unlock()
	return float64(total) / float64(span)
}
