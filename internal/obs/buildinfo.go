package obs

import (
	"context"
	"runtime/debug"
)

// BuildInfoLabels returns build metadata for the build-info gauge and the
// JSON metrics report: the main module version and Go toolchain, plus the
// VCS revision and commit time when the build was stamped with them.
func BuildInfoLabels() map[string]string {
	labels := map[string]string{"go_version": "unknown", "version": "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return labels
	}
	if bi.GoVersion != "" {
		labels["go_version"] = bi.GoVersion
	}
	if bi.Main.Version != "" {
		labels["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			labels["revision"] = s.Value
		case "vcs.time":
			labels["vcs_time"] = s.Value
		}
	}
	return labels
}

// spanCtxKey carries a SpanContext through a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc, for HTTP clients to inject the
// traceparent header on outgoing requests.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFromContext extracts the span context placed by
// ContextWithSpan, reporting whether one was present.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}
