package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
	c := New(8)
	if New(7).Uint64() == c.Uint64() {
		t.Error("different seeds should diverge immediately (splitmix64)")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean %.4f, want ≈0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(3)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f, want ≈1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.Exp(8)
		if x < 0 {
			t.Fatal("exponential variate must be non-negative")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-8) > 0.2 {
		t.Errorf("exponential mean %.3f, want ≈8", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("log-normal variate must be positive")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(6)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d of 7 values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero-value source should still generate values")
	}
}
