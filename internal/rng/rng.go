// Package rng provides a small deterministic pseudo-random number generator
// used to synthesize power traces and event arrival processes.
//
// Reproducibility across runs and platforms is a hard requirement for the
// experiment harness (every table in EXPERIMENTS.md must regenerate
// identically), so the package implements splitmix64 directly rather than
// depending on math/rand's unspecified seeding behaviour.
package rng

import "math"

// Source is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64-bit value in the sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (Box-Muller).
func (s *Source) Norm() float64 {
	// Reject u1 == 0 so the log is finite.
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(mu + sigma*N(0,1)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}
