package sim_test

import (
	"testing"

	"react/internal/core"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/sim"
	"react/internal/simtest"
	"react/internal/trace"
	"react/internal/workload"
)

// TestRunUpholdsPerTickInvariants drives a full REACT run through the
// shared invariant auditor: per-tick energy conservation, bounded rail
// voltage, monotonic simulated time, and a physical recorded series.
func TestRunUpholdsPerTickInvariants(t *testing.T) {
	buf, rec := simtest.Check(core.New(core.DefaultConfig()), 0)
	res, err := sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(trace.RFCart(1), nil),
		Buffer:   buf,
		Device:   mcu.NewDevice(mcu.DefaultProfile(), workload.NewDataEncryption(0.6e-3)),
		RecordDT: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Error(err)
	}
	if rec.Ticks() == 0 {
		t.Fatal("auditor saw no ticks")
	}
	simtest.CheckBalance(t, "REACT/DE/RF Cart", res, 1e-6)
	simtest.CheckSamples(t, "REACT/DE/RF Cart", res.Samples, 0)
	if res.Metrics["blocks"] == 0 {
		t.Error("wrapped run did no work — the auditor must be behaviour-preserving")
	}
}
