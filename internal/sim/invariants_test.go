package sim_test

import (
	"math"
	"testing"

	"react/internal/buffer"
	"react/internal/core"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/sim"
	"react/internal/simtest"
	"react/internal/trace"
	"react/internal/workload"
)

// TestRunUpholdsPerTickInvariants drives a full REACT run through the
// shared invariant auditor: per-tick energy conservation, bounded rail
// voltage, monotonic simulated time, and a physical recorded series.
func TestRunUpholdsPerTickInvariants(t *testing.T) {
	buf, rec := simtest.Check(core.New(core.DefaultConfig()), 0)
	res, err := sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(trace.RFCart(1), nil),
		Buffer:   buf,
		Device:   mcu.NewDevice(mcu.DefaultProfile(), workload.NewDataEncryption(0.6e-3)),
		RecordDT: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Error(err)
	}
	if rec.Ticks() == 0 {
		t.Fatal("auditor saw no ticks")
	}
	simtest.CheckBalance(t, "REACT/DE/RF Cart", res, 1e-6)
	simtest.CheckSamples(t, "REACT/DE/RF Cart", res.Samples, 0)
	if res.Metrics["blocks"] == 0 {
		t.Error("wrapped run did no work — the auditor must be behaviour-preserving")
	}
}

// TestZeroHarvestPreChargedRunIsConserved pins the energy-balance
// normalization for the cold-start/energy-attack family: a buffer that
// starts charged and harvests nothing merely spends its initial energy, and
// must report a (near-)zero conservation error — not a huge one from
// normalizing residual stored energy against a zero harvest.
func TestZeroHarvestPreChargedRunIsConserved(t *testing.T) {
	buf := buffer.NewStatic(buffer.StaticConfig{Name: "pre-charged 10 mF", C: 10e-3, VMax: 3.6})
	const initial = 0.060 // 3.46 V on 10 mF: above the 3.3 V enable
	simtest.PreCharge(buf, initial)
	dark := &trace.Trace{Name: "dark", DT: 1, Power: make([]float64, 30)}
	res, err := sim.Run(sim.Config{
		Frontend: harvest.NewFrontend(dark, nil),
		Buffer:   buf,
		Device:   mcu.NewDevice(mcu.DefaultProfile(), workload.NewDataEncryption(0.6e-3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Harvested != 0 {
		t.Fatalf("harvested %g J from a dark trace", res.Ledger.Harvested)
	}
	if math.Abs(res.InitialStored-initial) > 1e-12 {
		t.Errorf("InitialStored %g, want the pre-charge %g", res.InitialStored, initial)
	}
	if res.OnTime == 0 {
		t.Fatal("the pre-charge must power the device: the run moved no energy")
	}
	simtest.CheckBalance(t, "pre-charged dark run", res, 1e-6)
}
