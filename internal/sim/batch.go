package sim

import (
	"fmt"

	"react/internal/buffer"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/trace"
)

// Stats counts the work a batched run performed, for throughput accounting
// and the reactd /metrics counters. The counters are cell-granular: a batch
// of 4 cells stepping one tick adds 4 to TicksSimulated.
type Stats struct {
	// TicksSimulated is the number of cell-ticks executed by the discrete
	// loop.
	TicksSimulated uint64
	// TicksFastForwarded is the number of cell-ticks skipped by the
	// dead-time fast-forward — ticks proven to be exact no-ops (device off,
	// zero harvested power, quiescent buffer) and jumped over.
	TicksFastForwarded uint64
	// TracePasses is the number of batched passes over a trace: one per
	// RunBatch call, however many cells shared it.
	TracePasses uint64
	// Cells is the per-cell tick accounting: RunBatch appends one entry
	// per batch cell in config order, so a caller reusing one Stats across
	// batches sees the concatenation. The aggregate counters above are
	// always the sums over Cells.
	Cells []CellStats
}

// CellStats is one cell's share of a batch's tick accounting, the basis of
// the service layer's run-progress reporting.
type CellStats struct {
	TicksSimulated     uint64
	TicksFastForwarded uint64
}

// tickInf is an unreachable tick bound used as "no event scheduled".
const tickInf = int(^uint(0) >> 2)

// batchCell is the per-cell state of a lockstep batch.
type batchCell struct {
	buf  buffer.Buffer
	dev  *mcu.Device
	conv harvest.Converter
	// identity marks the pass-through converter, whose Deliver call is
	// inlined on the hot path (p = max(raw, 0), bit-identical).
	identity bool
	recordDT float64
	tailCap  float64
	// v is the rail voltage at the start of the tick, carried across ticks
	// exactly as the reference loop does.
	v       float64
	recIdx  int
	samples []Sample
	initial float64
	// quiet proves device-off ticks are no-ops; nil disables fast-forward
	// for this cell (it is then always stepped).
	quiet  buffer.Quiescent
	hinter buffer.EnableHinter
	done   bool
	result Result
	// ticks/ffTicks are this cell's share of the batch tick accounting.
	ticks   uint64
	ffTicks uint64
	// probe, when non-nil, observes this cell's events; the last* fields
	// are the change detectors behind its callbacks and are only touched
	// on the probe path.
	probe        Probe
	probeCell    int
	lastState    mcu.State
	lastCap      float64
	lastBackups  int
	lastRestores int
}

// observe fires the probe callbacks for whatever changed during the tick
// ending at sim time t. Only called when c.probe is non-nil.
func (c *batchCell) observe(t float64) {
	if st := c.dev.State(); st != c.lastState {
		c.probe.DeviceState(c.probeCell, t, c.lastState, st)
		c.lastState = st
	}
	if bk, rs := c.dev.Backups, c.dev.Restores; bk != c.lastBackups || rs != c.lastRestores {
		c.probe.Checkpoint(c.probeCell, t, bk-c.lastBackups, rs-c.lastRestores)
		c.lastBackups, c.lastRestores = bk, rs
	}
	//lint:reactlint-ignore dtarith change detection, not a tolerance check: any capacitance difference is a reconfiguration event
	if cp := c.buf.Capacitance(); cp != c.lastCap {
		c.probe.BufferReconfig(c.probeCell, t, cp)
		c.lastCap = cp
	}
}

// batch is the shared state of one lockstep pass over a trace.
type batch struct {
	cells    []batchCell
	tr       *trace.Trace
	dt       float64
	aligned  bool
	traceDur float64
	// zeroFrom/zeroTo memoize the most recent zero-run scan: every trace
	// sample in [zeroFrom, zeroTo) is exactly zero. The scan cursor only
	// moves forward with the clock, so total scan work is O(len(Power)).
	zeroFrom, zeroTo int
}

// RunBatch executes n simulation cells in lockstep over a single pass of
// one shared trace: per tick, the trace is sampled once and every live cell
// harvests, steps its device, and advances its buffer; cells retire
// individually as they finish their drain tails. All cells must share one
// *trace.Trace and one timestep (the lockstep clock); converters, buffers,
// devices, tail caps and recording cadences are per-cell.
//
// On top of the lockstep loop it fast-forwards dead time: when the trace is
// delivering exactly zero and every live cell is provably inert (device
// off, rail below its enable voltage, buffer quiescent), whole tick
// stretches are no-ops and the clock jumps to the next event — the end of
// the zero-power span, a recording point, or a cell's drain-phase bound.
// Skipped ticks are never near-events: the jump target is computed with the
// loop's own float arithmetic, so results are bit-identical to running
// RunReference per cell. st, when non-nil, accumulates the tick accounting.
func RunBatch(cfgs []Config, st *Stats) ([]Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	for _, cfg := range cfgs {
		if cfg.Frontend == nil || cfg.Buffer == nil || cfg.Device == nil {
			return nil, fmt.Errorf("sim: frontend, buffer and device are all required")
		}
	}
	dt := cfgs[0].DT
	if dt <= 0 {
		dt = 1e-3
	}
	tr := cfgs[0].Frontend.Trace
	for _, cfg := range cfgs[1:] {
		d := cfg.DT
		if d <= 0 {
			d = 1e-3
		}
		//lint:reactlint-ignore dtarith the batch key is exact identity: nearly-equal timesteps must not share a lockstep pass
		if d != dt {
			return nil, fmt.Errorf("sim: batched cells must share one timestep (have %g and %g)", dt, d)
		}
		if cfg.Frontend.Trace != tr {
			return nil, fmt.Errorf("sim: batched cells must share one trace")
		}
	}

	b := &batch{
		cells:    make([]batchCell, len(cfgs)),
		tr:       tr,
		dt:       dt,
		aligned:  cfgs[0].Frontend.Aligned(dt),
		traceDur: tr.Duration(),
	}
	for i, cfg := range cfgs {
		c := &b.cells[i]
		c.buf, c.dev, c.conv = cfg.Buffer, cfg.Device, cfg.Frontend.Conv
		_, c.identity = c.conv.(harvest.Identity)
		c.recordDT = cfg.RecordDT
		c.tailCap = cfg.TailCap
		if c.tailCap <= 0 {
			c.tailCap = 600
		}
		if c.recordDT > 0 {
			// Pre-size for the trace plus the bounded drain tail.
			c.samples = make([]Sample, 0, int((b.traceDur+c.tailCap)/c.recordDT)+2)
		}
		c.quiet, _ = cfg.Buffer.(buffer.Quiescent)
		c.hinter, _ = cfg.Buffer.(buffer.EnableHinter)
		c.initial = c.buf.Stored()
		c.v = c.buf.OutputVoltage()
		if cfg.Probe != nil {
			c.probe = cfg.Probe
			c.probeCell = cfg.ProbeCell
			c.lastState = c.dev.State()
			c.lastCap = c.buf.Capacitance()
			c.lastBackups = c.dev.Backups
			c.lastRestores = c.dev.Restores
		}
	}

	live := len(b.cells)
	for tick := 0; live > 0; {
		t := float64(tick) * dt
		var raw float64
		if b.aligned {
			raw = tr.Sample(tick)
		} else {
			raw = tr.At(t)
		}
		if raw == 0 {
			if wake := b.fastForwardFrom(tick); wake > tick {
				skipped := uint64(wake - tick)
				for i := range b.cells {
					c := &b.cells[i]
					if c.done {
						continue
					}
					c.ffTicks += skipped
					if c.probe != nil {
						c.probe.FastForward(c.probeCell, t, float64(wake)*dt)
					}
				}
				tick = wake
				continue
			}
		}
		for i := range b.cells {
			c := &b.cells[i]
			if c.done {
				continue
			}
			var p float64
			if c.identity {
				if raw > 0 {
					p = raw
				}
			} else {
				p = c.conv.Deliver(raw, c.v)
			}
			c.buf.Harvest(p * dt)
			c.dev.Step(t, dt, c.buf)
			c.buf.Tick(t, dt, c.dev.Powered())
			c.v = c.buf.OutputVoltage()
			if c.probe != nil {
				c.observe(t)
			}

			if c.recordDT > 0 && t >= float64(c.recIdx)*c.recordDT {
				c.samples = append(c.samples, Sample{
					T: t, V: c.v, On: c.dev.Powered(),
					C: c.buf.Capacitance(), P: p,
				})
				c.recIdx++
			}

			c.ticks++
			tEnd := float64(tick+1) * dt
			if tEnd >= b.traceDur {
				// Drain phase: the cell retires once its device is off and
				// the rail can no longer reach the enable voltage, or at
				// its tail cap.
				if (!c.dev.Powered() && c.v < c.dev.Prof.VEnable) || tEnd >= b.traceDur+c.tailCap {
					c.retire(tEnd)
					live--
				}
			}
		}
		tick++
	}

	if st != nil {
		for i := range b.cells {
			c := &b.cells[i]
			st.TicksSimulated += c.ticks
			st.TicksFastForwarded += c.ffTicks
			st.Cells = append(st.Cells, CellStats{
				TicksSimulated:     c.ticks,
				TicksFastForwarded: c.ffTicks,
			})
		}
		st.TracePasses++
	}
	results := make([]Result, len(b.cells))
	for i := range b.cells {
		results[i] = b.cells[i].result
	}
	return results, nil
}

// retire finalizes the cell's result at the end of tick time tEnd.
func (c *batchCell) retire(tEnd float64) {
	c.done = true
	c.result = Result{
		Buffer:        c.buf.Name(),
		Workload:      c.dev.WL.Name(),
		Latency:       c.dev.FirstOn,
		OnTime:        c.dev.OnTime,
		Duration:      tEnd,
		Cycles:        c.dev.Cycles,
		MeanCycle:     c.dev.MeanCycle(),
		Metrics:       c.dev.Metrics(),
		Ledger:        *c.buf.Ledger(),
		Stored:        c.buf.Stored(),
		InitialStored: c.initial,
		Samples:       c.samples,
	}
	if c.probe != nil {
		c.probe.Retire(c.probeCell, tEnd)
	}
}

// fastForwardFrom returns the first tick > tick the batch must actually
// execute, or tick itself when nothing is skippable. It may only advance
// the clock when every tick in [tick, wake) is provably a complete no-op
// for every live cell:
//
//   - the trace delivers exactly zero over the whole span (verified on the
//     raw samples, conservatively for interpolated reads), so each cell's
//     converter delivers zero and Harvest(0) returns immediately;
//   - every live device is Off with its rail below the effective enable
//     voltage, so Device.Step changes nothing;
//   - every live buffer proves its device-off Tick is a no-op (Quiescent).
//
// Frozen state stays frozen across the span, so one eligibility check
// covers every skipped tick. The wake tick is the earliest upcoming event:
// possible nonzero power, a due recording point, or a cell's drain-phase
// retirement bound — each computed with the main loop's own float
// arithmetic (undershooting a boundary only costs a few stepped ticks;
// overshooting would change results, so boundaries are walked exactly).
func (b *batch) fastForwardFrom(tick int) int {
	for i := range b.cells {
		c := &b.cells[i]
		if c.done {
			continue
		}
		if c.quiet == nil || c.dev.State() != mcu.Off {
			return tick
		}
		venable := c.dev.Prof.VEnable
		if c.hinter != nil {
			venable = c.hinter.EnableVoltage()
		}
		if c.v >= venable {
			return tick
		}
		if !c.identity && c.conv.Deliver(0, c.v) != 0 {
			return tick
		}
		if !c.quiet.QuiescentOff() {
			return tick
		}
	}
	wake := b.zeroRunEnd(tick)
	for i := range b.cells {
		c := &b.cells[i]
		if c.done {
			continue
		}
		if c.recordDT > 0 {
			if w := tickAtOrAfter(float64(c.recIdx)*c.recordDT, b.dt, tick); w < wake {
				wake = w
			}
		}
		// The drain check fires at the end of a tick: the first candidate
		// is the tick s with float64(s+1)*dt reaching the bound. A parked
		// cell below the platform enable voltage retires at the trace end;
		// one held above it by an enable hinter runs out its tail cap.
		end := b.traceDur
		if c.v >= c.dev.Prof.VEnable {
			end = b.traceDur + c.tailCap
		}
		if w := tickAtOrAfter(end, b.dt, tick+1) - 1; w < wake {
			wake = w
		}
	}
	return wake
}

// zeroRunEnd returns the first tick >= tick at which the shared trace could
// deliver nonzero power again, given it delivers zero at tick; tickInf when
// the trace is zero from here through its end (the post-trace tail delivers
// nothing forever). The answer is conservative: returning tick just means
// "no skip", never a wrong skip.
func (b *batch) zeroRunEnd(tick int) int {
	n := len(b.tr.Power)
	si := tick
	if !b.aligned {
		// Mirror Trace.At's index computation at this tick's time.
		si = int(float64(tick) * b.dt / b.tr.DT)
	}
	if si >= n {
		return tickInf
	}
	// Extend (or restart) the memoized all-zero sample run to cover si.
	if si < b.zeroFrom || si >= b.zeroTo {
		b.zeroFrom, b.zeroTo = si, si
		for b.zeroTo < n && b.tr.Power[b.zeroTo] == 0 {
			b.zeroTo++
		}
	}
	if si >= b.zeroTo {
		// The current sample is itself nonzero (an interpolated read can
		// still evaluate to zero); nothing provable, no skip.
		return tick
	}
	if b.zeroTo >= n {
		return tickInf
	}
	if b.aligned {
		// Tick i reads sample i directly: wake when the run ends.
		return b.zeroTo
	}
	// Interpolated reads at index i touch samples i and i+1, so At is
	// provably zero only while the index stays at or below zeroTo-2. Find
	// the first tick whose index — computed exactly as Trace.At computes
	// it — reaches zeroTo-1.
	s := tick
	if est := int(float64(b.zeroTo-1) * b.tr.DT / b.dt); est > s {
		s = est
	}
	idx := func(s int) int { return int(float64(s) * b.dt / b.tr.DT) }
	for idx(s) < b.zeroTo-1 {
		s++
	}
	for s > tick && idx(s-1) >= b.zeroTo-1 {
		s--
	}
	return s
}

// tickAtOrAfter returns the smallest tick s >= from with
// float64(s)*dt >= x, matching the main loop's float arithmetic exactly:
// the seed division may land a few ulps off, so the loops walk to the true
// boundary.
func tickAtOrAfter(x, dt float64, from int) int {
	q := x / dt
	if q > 1e15 {
		// Beyond any reachable run length (and any exactly-representable
		// int); treat as "never".
		return tickInf
	}
	s := from
	if est := int(q); est > s {
		s = est
	}
	for float64(s)*dt < x {
		s++
	}
	for s > from && float64(s-1)*dt >= x {
		s--
	}
	return s
}
