package sim

import "react/internal/mcu"

// Probe observes a run's device-level events as they happen: state
// transitions, checkpoint traffic, buffer reconfigurations, dead-time
// fast-forward parks, and cell retirement. It is the hook behind the
// timeline recorder (internal/obs.SimTimeline) and is opt-in per cell via
// Config.Probe.
//
// Contract:
//
//   - Every timestamp is simulation time derived from tick arithmetic
//     (float64(tick)*dt), never the wall clock — a probe must keep
//     recorded timelines bit-identical across runs (the reactlint
//     determinism contract covers implementations living under sim/).
//   - Callbacks run synchronously on the simulation goroutine, once per
//     observed change, in tick order per cell. A probe must not call back
//     into the engine or retain the device/buffer it is shown.
//   - The cell argument is Config.ProbeCell, so callers that split one
//     logical run across several batches can keep global cell identities.
//   - The nil-probe path is allocation-free and costs only a handful of
//     predictable branches per cell-tick (pinned by BenchmarkSimThroughput
//     against the BENCH_*.json records).
type Probe interface {
	// DeviceState reports that the cell's device left state from for state
	// to during the tick ending at sim time t. Transitions that begin and
	// end inside one tick (e.g. a zero-duration backup burst collapsing
	// On->Backing->Off into On->Off) are reported as the net transition;
	// Checkpoint still accounts the burst itself.
	DeviceState(cell int, t float64, from, to mcu.State)
	// Checkpoint reports completed checkpoint bursts: backups and restores
	// are the number of each that finished during the tick ending at t.
	Checkpoint(cell int, t float64, backups, restores int)
	// BufferReconfig reports that the buffer's equivalent capacitance
	// changed to c farads during the tick ending at sim time t — for the
	// REACT buffer, a reconfiguration of the capacitor bank.
	BufferReconfig(cell int, t float64, c float64)
	// FastForward reports a dead-time park: sim time [fromT, toT) was
	// proven inert for this cell and skipped without stepping. Only the
	// batched executor emits these; RunReference steps every tick.
	FastForward(cell int, fromT, toT float64)
	// Retire reports that the cell finished its run at sim time t.
	Retire(cell int, t float64)
}
