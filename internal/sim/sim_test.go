package sim

import (
	"math"
	"testing"

	"react/internal/buffer"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/trace"
)

// constWorkload draws a constant current and counts its steps.
type constWorkload struct {
	current float64
	steps   int
	losses  int
}

func (w *constWorkload) Name() string                          { return "const" }
func (w *constWorkload) Step(env *mcu.Env, dt float64) float64 { w.steps++; return w.current }
func (w *constWorkload) PowerOn(now float64)                   {}
func (w *constWorkload) PowerLost(now float64)                 { w.losses++ }
func (w *constWorkload) Backup(now float64)                    {}
func (w *constWorkload) Metrics() map[string]float64 {
	return map[string]float64{"steps": float64(w.steps)}
}

func steadyTrace(p float64, n int) *trace.Trace {
	tr := &trace.Trace{Name: "steady", DT: 1, Power: make([]float64, n)}
	for i := range tr.Power {
		tr.Power[i] = p
	}
	return tr
}

func testConfig(p float64, dur int, current float64) Config {
	return Config{
		Frontend: harvest.NewFrontend(steadyTrace(p, dur), nil),
		Buffer:   buffer.NewStatic(buffer.StaticConfig{C: 1e-3, VMax: 3.6}),
		Device:   mcu.NewDevice(mcu.DefaultProfile(), &constWorkload{current: current}),
	}
}

func TestRunRequiresComponents(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing components must be rejected")
	}
}

func TestSteadySurplusRunsContinuously(t *testing.T) {
	// 10 mW in, ~3 mW load: the system starts once and never stops.
	res, err := Run(testConfig(10e-3, 30, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < 0 || res.Latency > 2 {
		t.Errorf("latency %g, want under 2 s at 10 mW on 1 mF", res.Latency)
	}
	if res.OnFraction() < 0.8 {
		t.Errorf("duty %.2f, want near-continuous operation", res.OnFraction())
	}
	if res.Cycles > 1 {
		t.Errorf("cycles %d, want at most the final drain", res.Cycles)
	}
}

func TestDeficitCycles(t *testing.T) {
	// 1 mW in, ~5 mW load: classic intermittent operation.
	res, err := Run(testConfig(1e-3, 60, 1.5e-3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 3 {
		t.Errorf("cycles %d, want repeated charge/discharge bursts", res.Cycles)
	}
	if res.OnFraction() > 0.6 {
		t.Errorf("duty %.2f, too high for a 5x deficit", res.OnFraction())
	}
}

func TestNeverStarts(t *testing.T) {
	// 1 µW can never charge 1 mF to 3.3 V within 10 s against leakage.
	cfg := testConfig(1e-6, 10, 1e-3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != -1 {
		t.Errorf("latency %g, want -1 (never started)", res.Latency)
	}
	if res.OnTime != 0 {
		t.Error("system never on")
	}
}

func TestDrainPhaseExtendsPastTrace(t *testing.T) {
	// Strong charge, then the trace ends: the run continues until the
	// buffer drains below the enable voltage.
	res, err := Run(testConfig(20e-3, 10, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 10 {
		t.Errorf("duration %g, want a drain tail past the 10 s trace", res.Duration)
	}
	if res.Stored > 0.5*1e-3*3.3*3.3 {
		t.Error("buffer should have drained below the enable level")
	}
}

func TestTailCapBoundsRun(t *testing.T) {
	cfg := testConfig(20e-3, 10, 1e-6) // trivial load: drain would take ages
	cfg.TailCap = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration > 16 {
		t.Errorf("duration %g, want capped at trace+tail", res.Duration)
	}
}

func TestRecording(t *testing.T) {
	cfg := testConfig(10e-3, 20, 1e-3)
	cfg.RecordDT = 1.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 15 {
		t.Fatalf("recorded %d samples, want ~20", len(res.Samples))
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T <= res.Samples[i-1].T {
			t.Fatal("samples must be time-ordered")
		}
	}
	if res.Samples[5].C != 1e-3 {
		t.Error("sample capacitance missing")
	}
}

// TestRecordScheduleDoesNotDrift pins the recording cadence: point k is
// recorded on the first tick at or after k*RecordDT, for a RecordDT (0.1 s)
// that is not a binary fraction. An accumulated nextRecord += RecordDT
// schedule drifts off this grid over long runs, dropping or duplicating
// points near the boundaries.
func TestRecordScheduleDoesNotDrift(t *testing.T) {
	cfg := testConfig(10e-3, 60, 1e-3)
	cfg.RecordDT = 0.1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-3
	if want := int(res.Duration/cfg.RecordDT) - 1; len(res.Samples) < want {
		t.Fatalf("recorded %d samples over %.1f s, want at least %d", len(res.Samples), res.Duration, want)
	}
	for k, s := range res.Samples {
		// Point k lands on the first tick at or after its due instant —
		// within one timestep (plus an ulp of slack for the tick-grid
		// product rounding).
		due := float64(k) * cfg.RecordDT
		if s.T < due || s.T > due+dt*(1+1e-9) {
			t.Fatalf("sample %d at t=%.17g, want within one tick of its %.17g due time", k, s.T, due)
		}
	}
}

func TestEnergyBalance(t *testing.T) {
	res, err := Run(testConfig(5e-3, 60, 1.5e-3))
	if err != nil {
		t.Fatal(err)
	}
	if e := res.EnergyBalanceError(); e > 1e-9 {
		t.Errorf("energy balance error %g", e)
	}
	l := res.Ledger
	if l.Harvested <= 0 || l.Consumed <= 0 {
		t.Error("ledger not populated")
	}
}

func TestTimestepConvergence(t *testing.T) {
	run := func(dt float64) float64 {
		cfg := testConfig(2e-3, 120, 1.5e-3)
		cfg.DT = dt
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.OnTime
	}
	fine := run(0.25e-3)
	coarse := run(2e-3)
	if math.Abs(fine-coarse)/fine > 0.05 {
		t.Errorf("on-time diverges across timesteps: %.3f vs %.3f", fine, coarse)
	}
}

func TestOnFractionZeroDuration(t *testing.T) {
	var r Result
	if r.OnFraction() != 0 {
		t.Error("zero duration must yield zero duty")
	}
}

// TestAlignedFastPathMatchesInterpolation: when the trace sample spacing
// equals the timestep, Run takes the direct-indexing fast path; for a trace
// whose interpolation is exact (constant power), the result must match the
// interpolated path over an equivalent trace to within one boundary tick
// (accumulated floating-point time can land the last tick a hair before
// the trace end, giving the interpolated path one extra power sample).
func TestAlignedFastPathMatchesInterpolation(t *testing.T) {
	const p, dur = 5e-3, 60.0
	run := func(traceDT float64) Result {
		tr := &trace.Trace{Name: "steady", DT: traceDT, Power: make([]float64, int(dur/traceDT))}
		for i := range tr.Power {
			tr.Power[i] = p
		}
		cfg := Config{
			DT:       1e-3,
			Frontend: harvest.NewFrontend(tr, nil),
			Buffer:   buffer.NewStatic(buffer.StaticConfig{C: 1e-3, VMax: 3.6}),
			Device:   mcu.NewDevice(mcu.DefaultProfile(), &constWorkload{current: 1.5e-3}),
		}
		if cfg.Frontend.Aligned(cfg.DT) != (traceDT == 1e-3) {
			t.Fatalf("alignment detection wrong for trace DT %g", traceDT)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(1e-3)      // aligned: one sample per tick
	slow := run(1.0)       // interpolated: 1000 ticks per sample
	const tickE = p * 1e-3 // energy of one boundary tick
	if math.Abs(fast.OnTime-slow.OnTime) > 2e-3 || fast.Latency != slow.Latency ||
		math.Abs(fast.Ledger.Harvested-slow.Ledger.Harvested) > 1.5*tickE {
		t.Errorf("fast path diverges: on %g vs %g, harvested %g vs %g",
			fast.OnTime, slow.OnTime, fast.Ledger.Harvested, slow.Ledger.Harvested)
	}
}

// TestRecordingPreSizedCapacity: pre-sizing must not change what is
// recorded.
func TestRecordingPreSizedCapacity(t *testing.T) {
	cfg := testConfig(5e-3, 30, 1.5e-3)
	cfg.RecordDT = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(res.Duration / cfg.RecordDT)
	if len(res.Samples) < want-1 || len(res.Samples) > want+2 {
		t.Errorf("recorded %d samples over %.1f s at %.1f s spacing", len(res.Samples), res.Duration, cfg.RecordDT)
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T <= res.Samples[i-1].T {
			t.Fatal("samples out of order")
		}
	}
}
