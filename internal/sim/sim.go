// Package sim is the discrete-time engine coupling a harvesting frontend,
// an energy buffer, and the device running a workload — the software
// equivalent of the paper's testbed (§4): power replay into the buffer,
// power gate at the enable/brownout voltages, benchmark on top.
//
// Each tick (default 1 ms): harvest energy into the buffer, step the device
// (which draws its load), then advance the buffer's internal processes
// (diode relaxation, leakage, clipping, controller polling). After the
// trace ends the run continues until the device is off and cannot re-enable
// — the paper's "once the trace is complete, we let the system run until it
// drains the buffer capacitor".
package sim

import (
	"fmt"
	"math"

	"react/internal/buffer"
	"react/internal/harvest"
	"react/internal/mcu"
)

// Config describes one simulation run.
type Config struct {
	// DT is the integration timestep in seconds (default 1 ms).
	DT float64
	// Frontend supplies power (trace × converter).
	Frontend *harvest.Frontend
	// Buffer is the energy buffer under test.
	Buffer buffer.Buffer
	// Device is the computational backend with its workload attached.
	Device *mcu.Device
	// TailCap bounds the post-trace drain phase (default 600 s).
	TailCap float64
	// RecordDT, when positive, records the rail voltage, device state and
	// equivalent capacitance every RecordDT seconds (for the figures).
	RecordDT float64
	// Probe, when non-nil, observes the run's device-level events (state
	// transitions, checkpoints, reconfigurations, fast-forward parks) for
	// timeline recording. Probes never change results; the nil path costs
	// only a predictable branch per cell-tick.
	Probe Probe
	// ProbeCell is the cell index reported to Probe callbacks, letting a
	// caller that splits one logical run across several batches keep
	// global cell identities. Ignored when Probe is nil.
	ProbeCell int
}

// Sample is one recorded point of a run.
type Sample struct {
	T  float64 // seconds
	V  float64 // rail voltage
	On bool    // device powered
	C  float64 // equivalent buffer capacitance, farads
	P  float64 // harvested power being delivered, watts
}

// Result is the outcome of one run.
type Result struct {
	Buffer   string
	Workload string
	// Latency is the time to first enable (Table 4); −1 if the system
	// never starts.
	Latency float64
	// OnTime is the total powered time; Duration the full simulated time.
	OnTime, Duration float64
	// Cycles and MeanCycle summarize uninterrupted power cycles.
	Cycles    int
	MeanCycle float64
	// Metrics are the workload counters (blocks, samples, tx, rx, ...).
	Metrics map[string]float64
	// Ledger is the buffer's final energy accounting; Stored the residual.
	Ledger buffer.Ledger
	Stored float64
	// InitialStored is the energy the buffer held before the first tick —
	// nonzero for pre-charged buffers, and part of the conservation input
	// side alongside the harvested energy.
	InitialStored float64
	// Samples is the recording, when enabled.
	Samples []Sample
}

// OnFraction returns the duty cycle over the trace duration.
func (r Result) OnFraction() float64 {
	if r.Duration == 0 {
		return 0
	}
	return r.OnTime / r.Duration
}

// EnergyBalanceError returns the relative conservation error of the run —
// nonzero means the simulation created or destroyed energy. The input side
// counts the energy the buffer started with as well as the harvest, so a
// pre-charged zero-harvest run (an energy-attack or cold-start study) that
// merely spends its initial charge reports zero error, not a huge one. The
// error is normalized against the larger of the two sides; a run where both
// are zero moved no energy and is trivially conserved.
func (r Result) EnergyBalanceError() float64 {
	l := r.Ledger
	in := l.Harvested + r.InitialStored
	out := l.Consumed + l.Clipped + l.Leaked + l.SwitchLoss + l.Overhead + r.Stored
	denom := math.Max(in, out)
	if denom == 0 {
		return 0
	}
	return math.Abs(in-out) / denom
}

// Run executes the simulation to completion. It routes through the batched
// executor (RunBatch) with a batch of one, which adds dead-time
// fast-forward on top of the reference loop; results are bit-identical to
// RunReference (the equivalence suite in batch_test.go enforces this).
func Run(cfg Config) (Result, error) {
	res, err := RunBatch([]Config{cfg}, nil)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// RunReference executes the simulation to completion with the original
// per-tick loop. It is retained verbatim as the executable specification
// the batched executor is tested against: RunBatch must reproduce its
// results bit for bit, so any change here is a semantics change for the
// whole engine.
func RunReference(cfg Config) (Result, error) {
	if cfg.Frontend == nil || cfg.Buffer == nil || cfg.Device == nil {
		return Result{}, fmt.Errorf("sim: frontend, buffer and device are all required")
	}
	dt := cfg.DT
	if dt <= 0 {
		dt = 1e-3
	}
	tailCap := cfg.TailCap
	if tailCap <= 0 {
		tailCap = 600
	}

	buf, dev, fe := cfg.Buffer, cfg.Device, cfg.Frontend
	traceDur := fe.Trace.Duration()
	var samples []Sample
	if cfg.RecordDT > 0 {
		// Pre-size for the trace plus the bounded drain tail.
		samples = make([]Sample, 0, int((traceDur+tailCap)/cfg.RecordDT)+2)
	}
	// The record schedule is an integer index, not an accumulated float:
	// point k is due at k*RecordDT. Accumulating nextRecord += RecordDT
	// instead drifts over hundred-million-tick runs and occasionally drops
	// or duplicates points near the schedule boundaries.
	recIdx := 0

	// When the trace sample spacing equals the timestep, tick i reads
	// sample i directly instead of interpolating (fast path).
	aligned := fe.Aligned(dt)

	initialStored := buf.Stored()
	// Probe change detectors, mirroring the batched executor's: the
	// reference loop emits the same DeviceState/Checkpoint/BufferReconfig
	// stream (it never fast-forwards, so no FastForward events).
	var lastState mcu.State
	var lastCap float64
	var lastBackups, lastRestores int
	if cfg.Probe != nil {
		lastState = dev.State()
		lastCap = buf.Capacitance()
		lastBackups, lastRestores = dev.Backups, dev.Restores
	}
	// t is derived from the tick count, never accumulated: summing dt once
	// per tick builds up float error over long runs (2.6e8 ticks for the
	// 72 h scenario), skewing sample timestamps and the trace-end check.
	tEnd := 0.0
	// v is the rail voltage at the start of the tick. The buffer state does
	// not change between the end of one tick and the start of the next, so
	// it is computed once per tick (after Tick) and reused for recording,
	// the drain-phase check, and the next tick's power delivery.
	v := buf.OutputVoltage()
	for tick := 0; ; tick++ {
		t := float64(tick) * dt
		var p float64
		if aligned {
			p = fe.PowerSample(tick, v)
		} else {
			p = fe.Power(t, v)
		}
		buf.Harvest(p * dt)
		dev.Step(t, dt, buf)
		buf.Tick(t, dt, dev.Powered())
		v = buf.OutputVoltage()
		if cfg.Probe != nil {
			if st := dev.State(); st != lastState {
				cfg.Probe.DeviceState(cfg.ProbeCell, t, lastState, st)
				lastState = st
			}
			if bk, rs := dev.Backups, dev.Restores; bk != lastBackups || rs != lastRestores {
				cfg.Probe.Checkpoint(cfg.ProbeCell, t, bk-lastBackups, rs-lastRestores)
				lastBackups, lastRestores = bk, rs
			}
			//lint:reactlint-ignore dtarith change detection, not a tolerance check: any capacitance difference is a reconfiguration event
			if cp := buf.Capacitance(); cp != lastCap {
				cfg.Probe.BufferReconfig(cfg.ProbeCell, t, cp)
				lastCap = cp
			}
		}

		if cfg.RecordDT > 0 && t >= float64(recIdx)*cfg.RecordDT {
			samples = append(samples, Sample{
				T: t, V: v, On: dev.Powered(),
				C: buf.Capacitance(), P: p,
			})
			recIdx++
		}

		tEnd = float64(tick+1) * dt
		if tEnd >= traceDur {
			// Drain phase: stop once the device is off and the rail can
			// no longer reach the enable voltage (no input remains).
			if !dev.Powered() && v < dev.Prof.VEnable {
				break
			}
			if tEnd >= traceDur+tailCap {
				break
			}
		}
	}
	if cfg.Probe != nil {
		cfg.Probe.Retire(cfg.ProbeCell, tEnd)
	}

	return Result{
		Buffer:        buf.Name(),
		Workload:      dev.WL.Name(),
		Latency:       dev.FirstOn,
		OnTime:        dev.OnTime,
		Duration:      tEnd,
		Cycles:        dev.Cycles,
		MeanCycle:     dev.MeanCycle(),
		Metrics:       dev.Metrics(),
		Ledger:        *buf.Ledger(),
		Stored:        buf.Stored(),
		InitialStored: initialStored,
		Samples:       samples,
	}, nil
}
