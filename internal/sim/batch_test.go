package sim_test

// Equivalence suite for the batched executor: sim.RunBatch (lockstep
// multi-cell execution + dead-time fast-forward) must reproduce
// sim.RunReference bit for bit — not approximately — for any batch size,
// any timestep alignment, and any buffer/workload pairing. Everything here
// compares full Result values with reflect.DeepEqual: one ulp of drift is
// a failure.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"react/internal/buffer"
	"react/internal/ckpt"
	"react/internal/harvest"
	"react/internal/mcu"
	"react/internal/scenario"
	"react/internal/sim"
	"react/internal/trace"
)

// synthTrace builds a random piecewise-constant trace with injected
// zero-power runs — the dead time the fast-forward path exists to skip —
// interleaved with active segments at RF-harvest power levels.
func synthTrace(r *rand.Rand, n int) *trace.Trace {
	p := make([]float64, n)
	for i := 0; i < n; {
		run := 1 + r.Intn(n/6+1)
		level := 0.0
		if r.Intn(3) > 0 { // one third of the segments are dead time
			level = (0.5 + r.Float64()) * 4e-3
		}
		for j := 0; j < run && i < n; j++ {
			p[i] = level
			i++
		}
	}
	return &trace.Trace{Name: "synth", DT: 1e-3, Power: p}
}

// presetCell builds one fresh sim.Config over a shared trace. Every call
// constructs fresh mutable state (buffer, device, workload), so a
// reference run and a batched run of the same cell share nothing.
func presetCell(t *testing.T, tr *trace.Trace, bufName, bench string, dt float64, seed uint64, recordDT float64) sim.Config {
	t.Helper()
	buf, err := scenario.NewPresetBuffer(bufName)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := scenario.WorkloadSpec{Bench: bench}.Build(tr, seed, mcu.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		DT:       dt,
		Frontend: harvest.NewFrontend(tr, nil),
		Buffer:   buf,
		Device:   mcu.NewDevice(mcu.DefaultProfile(), wl),
		TailCap:  20,
		RecordDT: recordDT,
	}
}

// TestBatchOfOneMatchesReference is the randomized property: for random
// traces (with zero runs), aligned and non-aligned timesteps, every preset
// buffer and a mix of workloads, a batch of one returns exactly what the
// reference per-tick loop returns.
func TestBatchOfOneMatchesReference(t *testing.T) {
	buffers := []string{"770 µF", "10 mF", "17 mF", "Morphy", "REACT", "Capybara", "Dewdrop"}
	benches := []string{"DE", "SC", "RT", "PF"}
	for seed := uint64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		tr := synthTrace(r, 1500)
		for _, dt := range []float64{1e-3, 0.75e-3} {
			for i, bufName := range buffers {
				bench := benches[i%len(benches)]
				recordDT := 0.0
				if i%2 == 0 {
					recordDT = 0.5
				}
				want, err := sim.RunReference(presetCell(t, tr, bufName, bench, dt, seed, recordDT))
				if err != nil {
					t.Fatal(err)
				}
				var st sim.Stats
				got, err := sim.RunBatch([]sim.Config{presetCell(t, tr, bufName, bench, dt, seed, recordDT)}, &st)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[0], want) {
					t.Errorf("seed %d dt %g %s/%s: batch of one diverges from reference\n got %+v\nwant %+v",
						seed, dt, bufName, bench, got[0], want)
				}
				if total := uint64(want.Duration/dt + 0.5); st.TicksSimulated+st.TicksFastForwarded != total {
					t.Errorf("seed %d dt %g %s/%s: ticks %d simulated + %d fast-forwarded != %d total",
						seed, dt, bufName, bench, st.TicksSimulated, st.TicksFastForwarded, total)
				}
			}
		}
	}
}

// TestLockstepBatchMatchesReference runs a heterogeneous batch — every
// preset buffer, mixed workloads, including the never-quiescent Morphy —
// in one lockstep pass, in pairs, and one by one through the reference
// loop: all three must agree bitwise, so the batch size is unobservable.
func TestLockstepBatchMatchesReference(t *testing.T) {
	buffers := []string{"770 µF", "10 mF", "17 mF", "Morphy", "REACT", "Capybara", "Dewdrop"}
	benches := []string{"DE", "SC", "RT", "PF"}
	r := rand.New(rand.NewSource(7))
	tr := synthTrace(r, 1500)
	const seed, dt = 2, 1e-3

	mk := func(i int) sim.Config {
		return presetCell(t, tr, buffers[i], benches[i%len(benches)], dt, seed, 0)
	}
	want := make([]sim.Result, len(buffers))
	for i := range buffers {
		res, err := sim.RunReference(mk(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	all := make([]sim.Config, len(buffers))
	for i := range buffers {
		all[i] = mk(i)
	}
	got, err := sim.RunBatch(all, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buffers {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("full batch: cell %d (%s) diverges from reference", i, buffers[i])
		}
	}

	for lo := 0; lo < len(buffers); lo += 2 {
		hi := lo + 2
		if hi > len(buffers) {
			hi = len(buffers)
		}
		pair := make([]sim.Config, 0, 2)
		for i := lo; i < hi; i++ {
			pair = append(pair, mk(i))
		}
		res, err := sim.RunBatch(pair, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			if !reflect.DeepEqual(res[i-lo], want[i]) {
				t.Errorf("pair batch [%d,%d): cell %d (%s) diverges from reference", lo, hi, i, buffers[i])
			}
		}
	}
}

// TestFastForwardSkipsDeadTime crafts the case the fast-forward exists
// for — a long all-zero cold-start prefix — and asserts the batch both
// skipped ticks and still matched the reference bitwise, aligned and not.
func TestFastForwardSkipsDeadTime(t *testing.T) {
	p := make([]float64, 8000)
	for i := 5000; i < len(p); i++ {
		p[i] = 3e-3
	}
	tr := &trace.Trace{Name: "cold", DT: 1e-3, Power: p}
	for _, dt := range []float64{1e-3, 0.75e-3} {
		for _, bufName := range []string{"REACT", "770 µF", "Capybara"} {
			want, err := sim.RunReference(presetCell(t, tr, bufName, "DE", dt, 1, 0.5))
			if err != nil {
				t.Fatal(err)
			}
			var st sim.Stats
			got, err := sim.RunBatch([]sim.Config{presetCell(t, tr, bufName, "DE", dt, 1, 0.5)}, &st)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[0], want) {
				t.Errorf("dt %g %s: fast-forwarded run diverges from reference", dt, bufName)
			}
			if st.TicksFastForwarded == 0 {
				t.Errorf("dt %g %s: fast-forward never engaged over a 5000-sample dead prefix", dt, bufName)
			}
			if st.TracePasses != 1 {
				t.Errorf("dt %g %s: TracePasses = %d, want 1", dt, bufName, st.TracePasses)
			}
		}
	}
}

// TestRunBatchValidation covers the batch-compatibility errors: mixed
// timesteps, mixed traces, and a missing component.
func TestRunBatchValidation(t *testing.T) {
	tr := &trace.Trace{Name: "t", DT: 1e-3, Power: []float64{1e-3, 1e-3}}
	tr2 := &trace.Trace{Name: "t2", DT: 1e-3, Power: []float64{1e-3, 1e-3}}
	a := presetCell(t, tr, "770 µF", "DE", 1e-3, 1, 0)
	b := presetCell(t, tr, "770 µF", "DE", 2e-3, 1, 0)
	if _, err := sim.RunBatch([]sim.Config{a, b}, nil); err == nil || !strings.Contains(err.Error(), "timestep") {
		t.Errorf("mixed timesteps: err = %v, want timestep mismatch", err)
	}
	c := presetCell(t, tr2, "770 µF", "DE", 1e-3, 1, 0)
	if _, err := sim.RunBatch([]sim.Config{a, c}, nil); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("mixed traces: err = %v, want trace mismatch", err)
	}
	bad := presetCell(t, tr, "770 µF", "DE", 1e-3, 1, 0)
	bad.Buffer = nil
	if _, err := sim.RunBatch([]sim.Config{bad}, nil); err == nil {
		t.Error("nil buffer: expected an error")
	}
	if res, err := sim.RunBatch(nil, nil); err != nil || res != nil {
		t.Errorf("empty batch: got (%v, %v), want (nil, nil)", res, err)
	}
}

// schemeCell is presetCell with a checkpoint scheme attached to the
// device — the configuration the scenario layer builds for a spec with a
// checkpoint block.
func schemeCell(t *testing.T, tr *trace.Trace, bufName, bench, scheme string, dt float64, seed uint64) sim.Config {
	t.Helper()
	cfg := presetCell(t, tr, bufName, bench, dt, seed, 0)
	s, err := ckpt.Build(ckpt.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device.Scheme = s
	return cfg
}

// TestSchemeBatchMatchesReference extends the equivalence property to
// checkpoint-bearing devices: with backups firing mid-trace (periodic) and
// controlled suspends parking the device with a saved image (odab), the
// batched executor — including its dead-time fast-forward — must stay
// bit-identical to the reference loop. The randomized traces' zero-power
// runs are what make this a fast-forward soundness test: a backup or
// restore burst in flight holds the device in a powered state, so
// quiescence can never skip over a pending burst.
func TestSchemeBatchMatchesReference(t *testing.T) {
	buffers := []string{"770 µF", "10 mF", "REACT", "Dewdrop"}
	benches := []string{"DE", "SC", "MIX", "ML"}
	schemes := []string{"odab", "periodic"}
	for seed := uint64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(int64(40 + seed)))
		tr := synthTrace(r, 1500)
		for _, dt := range []float64{1e-3, 0.75e-3} {
			for i, bufName := range buffers {
				bench := benches[i%len(benches)]
				scheme := schemes[i%len(schemes)]
				want, err := sim.RunReference(schemeCell(t, tr, bufName, bench, scheme, dt, seed))
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.RunBatch([]sim.Config{schemeCell(t, tr, bufName, bench, scheme, dt, seed)}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[0], want) {
					t.Errorf("seed %d dt %g %s/%s/%s: scheme batch diverges from reference\n got %+v\nwant %+v",
						seed, dt, bufName, bench, scheme, got[0], want)
				}
			}
		}
	}
}

// TestSchemeMixedLockstepBatch runs scheme-bearing and scheme-less cells
// in one lockstep pass: per-cell schemes must not leak across the batch.
func TestSchemeMixedLockstepBatch(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	tr := synthTrace(r, 1500)
	const seed, dt = 1, 1e-3
	mk := func() []sim.Config {
		return []sim.Config{
			presetCell(t, tr, "770 µF", "DE", dt, seed, 0),
			schemeCell(t, tr, "770 µF", "DE", "odab", dt, seed),
			schemeCell(t, tr, "REACT", "MIX", "periodic", dt, seed),
			presetCell(t, tr, "REACT", "MIX", dt, seed, 0),
		}
	}
	cfgs := mk()
	want := make([]sim.Result, len(cfgs))
	for i, cfg := range mk() {
		res, err := sim.RunReference(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	got, err := sim.RunBatch(cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("mixed batch: cell %d diverges from reference", i)
		}
	}
	// The scheme runs differ from their scheme-less twins (the axis is
	// real) and carry the checkpoint counters.
	if reflect.DeepEqual(got[0].Metrics, got[1].Metrics) {
		t.Error("odab run is metric-identical to the flat-boot run; the scheme did nothing")
	}
	if _, ok := got[1].Metrics["ckpt_backups"]; !ok {
		t.Error("scheme run must surface ckpt_backups")
	}
	if _, ok := got[0].Metrics["ckpt_backups"]; ok {
		t.Error("scheme-less run must not surface checkpoint metrics")
	}
}

// TestSchemeFastForwardStillEngages pins that an odab device parked with
// a saved image over a long dead tail is still fast-forwardable — the
// suspend ends in Off, the one state quiescence may skip. The buffer is a
// leak-free static cap so the parked charge is provably quiescent; preset
// buffers leak, which (correctly) keeps them stepping tick by tick.
func TestSchemeFastForwardStillEngages(t *testing.T) {
	p := make([]float64, 9000)
	for i := 0; i < 3000; i++ {
		p[i] = 3e-3 // charge + run, then a 6000-sample dead tail
	}
	tr := &trace.Trace{Name: "fade", DT: 1e-3, Power: p}
	mk := func() sim.Config {
		wl, err := scenario.WorkloadSpec{Bench: "DE"}.Build(tr, 1, mcu.DefaultProfile())
		if err != nil {
			t.Fatal(err)
		}
		dev := mcu.NewDevice(mcu.DefaultProfile(), wl)
		dev.Scheme, err = ckpt.Build(ckpt.Config{Scheme: "odab"})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Config{
			DT:       1e-3,
			Frontend: harvest.NewFrontend(tr, nil),
			Buffer:   buffer.NewStatic(buffer.StaticConfig{C: 770e-6, VMax: 3.6}),
			Device:   dev,
			TailCap:  20,
		}
	}
	want, err := sim.RunReference(mk())
	if err != nil {
		t.Fatal(err)
	}
	var st sim.Stats
	got, err := sim.RunBatch([]sim.Config{mk()}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Error("fast-forwarded odab run diverges from reference")
	}
	if want.Metrics["ckpt_backups"] == 0 {
		t.Fatalf("setup: odab never backed up (metrics %v)", want.Metrics)
	}
	if st.TicksFastForwarded == 0 {
		t.Error("fast-forward never engaged over the dead tail of a suspended device")
	}
}
