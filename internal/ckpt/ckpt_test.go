package ckpt

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCostEnergy(t *testing.T) {
	c := Cost{Time: 0.1, I: 3e-3}
	if got, want := c.Energy(3.0), c.Time*c.I*3.0; got != want {
		t.Errorf("Energy = %g, want %g", got, want)
	}
	if (Cost{}).Energy(3.3) != 0 {
		t.Error("zero cost must be free")
	}
}

func TestNames(t *testing.T) {
	want := []string{"none", "odab", "periodic"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestBuildNone(t *testing.T) {
	for _, name := range []string{"", "none"} {
		s, err := Build(Config{Scheme: name})
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if s != nil {
			t.Errorf("Build(%q) = %T, want nil (the device fast path)", name, s)
		}
	}
}

func TestBuildODABDefaults(t *testing.T) {
	s, err := Build(Config{Scheme: "odab"})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := s.(*ODAB)
	if !ok {
		t.Fatalf("Build(odab) = %T", s)
	}
	if o.BackupCost != DefaultBackup() || o.RestoreCost != DefaultRestore() || o.Margin != DefaultMargin {
		t.Errorf("odab defaults not applied: %+v", o)
	}
	if !o.PowerDown() {
		t.Error("odab must gate off after its all-backup")
	}
	// The energy warning: trigger exactly when usable energy falls to
	// margin × backup energy.
	warn := o.BackupCost.Energy(3.0) * o.Margin
	if o.WillBackup(State{Voltage: 3.0, Usable: warn * 1.01}) {
		t.Error("odab fired above the warning threshold")
	}
	if !o.WillBackup(State{Voltage: 3.0, Usable: warn * 0.99}) {
		t.Error("odab did not fire below the warning threshold")
	}
}

func TestBuildPeriodicDefaults(t *testing.T) {
	s, err := Build(Config{Scheme: "periodic"})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.(*Periodic)
	if !ok {
		t.Fatalf("Build(periodic) = %T", s)
	}
	if p.Interval != DefaultInterval || p.BackupCost != DefaultBackup() {
		t.Errorf("periodic defaults not applied: %+v", p)
	}
	if p.PowerDown() {
		t.Error("periodic snapshots must resume, not gate off")
	}
	if p.WillBackup(State{SinceBackup: p.Interval - 0.1}) {
		t.Error("periodic fired before its interval")
	}
	if !p.WillBackup(State{SinceBackup: p.Interval}) {
		t.Error("periodic did not fire at its interval")
	}
}

func TestResolveCanonical(t *testing.T) {
	// A fully-spelled-out config and the defaulted one resolve identically.
	def, err := Resolve(Config{Scheme: "odab"})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Resolve(Config{
		Scheme: "odab", Margin: DefaultMargin,
		BackupTime: 0.1, BackupI: 3e-3, RestoreTime: 0.05, RestoreI: 3e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if def != explicit {
		t.Errorf("resolved forms differ:\n %+v\n %+v", def, explicit)
	}
	if none, _ := Resolve(Config{}); none.Scheme != "none" {
		t.Errorf("zero config resolved to %q, want none", none.Scheme)
	}
}

func TestResolveRejects(t *testing.T) {
	cases := []struct {
		cfg  Config
		frag string
	}{
		{Config{Scheme: "flash-dance"}, "unknown scheme"},
		{Config{Scheme: "none", BackupTime: 0.1}, "takes no backup_time"},
		{Config{Interval: 5}, "takes no interval"},
		{Config{Scheme: "odab", Interval: 5}, "takes no interval"},
		{Config{Scheme: "periodic", Margin: 2}, "takes no margin"},
		{Config{Scheme: "odab", Margin: math.NaN()}, "finite"},
		{Config{Scheme: "periodic", Interval: math.Inf(1)}, "finite"},
		{Config{Scheme: "odab", BackupI: -1e-3}, "non-negative"},
	}
	for _, c := range cases {
		if _, err := Resolve(c.cfg); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Resolve(%+v) err = %v, want %q", c.cfg, err, c.frag)
		}
	}
	// Unknown-scheme errors enumerate the registry.
	_, err := Resolve(Config{Scheme: "nope"})
	if err == nil || !strings.Contains(err.Error(), "none, odab, periodic") {
		t.Errorf("unknown-scheme error does not enumerate schemes: %v", err)
	}
}
