// Package ckpt models checkpoint (backup/restore) schemes for
// intermittently-powered devices: the policy that decides when the MCU
// suspends its workload to write a volatile-state image to non-volatile
// memory, what that backup burst costs, and what reloading the image costs
// on the next boot.
//
// The structure follows eh-sim's backup strategies: a scheme is a swappable
// strategy object with a trigger predicate (will_backup), per-event energy
// and time costs, and a post-backup disposition (ODAB gates the device off
// after its all-backup; periodic snapshots resume). The device model
// (internal/mcu) consults an attached Scheme once per tick while running;
// a nil scheme is the legacy flat-boot device and costs nothing on the
// tick path.
package ckpt

import (
	"fmt"
	"math"
	"strings"
)

// Cost is one backup or restore burst: Time seconds at I amps. The zero
// Cost is free and instantaneous.
type Cost struct {
	Time float64 `json:"time"`
	I    float64 `json:"i"`
}

// Energy is the burst's energy at supply voltage v.
func (c Cost) Energy(v float64) float64 { return c.Time * c.I * v }

// State is the device view a scheme's trigger policy reads each tick while
// the workload is running.
type State struct {
	// Now is the simulation time in seconds.
	Now float64
	// Voltage is the present supply voltage.
	Voltage float64
	// Usable is the energy software can extract before brownout,
	// ½·C·(V² − V_min²) — the same coarse estimate workloads gate atomic
	// operations on.
	Usable float64
	// SinceBackup is seconds since the last completed backup, or since
	// power-on if none has completed this cycle.
	SinceBackup float64
}

// Scheme is a checkpoint strategy. Implementations must be pure policy:
// the device model owns all bookkeeping (burst progress, image presence,
// counters), so one Scheme value may safely be shared by concurrent
// devices.
type Scheme interface {
	// Name is the registry key ("odab", "periodic").
	Name() string
	// WillBackup reports whether the device should suspend the workload
	// and write a backup now. Called once per tick while the workload
	// runs; never while booting, restoring, or mid-backup.
	WillBackup(st State) bool
	// Backup is the cost of writing the full volatile image.
	Backup() Cost
	// Restore is the cost of reloading the image after boot. A zero-time
	// restore completes within the boot tick.
	Restore() Cost
	// PowerDown reports whether a completed backup gates the device off
	// (eh-sim's ODAB "backup when moving to power-off mode") or lets the
	// workload resume (periodic snapshots).
	PowerDown() bool
}

// Default burst figures: an MSP430FR-class register+SRAM image write to
// FRAM, matching the ML workload's per-segment checkpoint burst (0.1 s at
// 3 mA), and a cheaper sequential read-back on restore.
func DefaultBackup() Cost  { return Cost{Time: 0.1, I: 3e-3} }
func DefaultRestore() Cost { return Cost{Time: 0.05, I: 3e-3} }

// DefaultMargin is ODAB's energy-warning multiplier over the backup cost,
// aligned with the workloads' atomic-operation longevity margin.
const DefaultMargin = 1.4

// DefaultInterval is the periodic scheme's snapshot cadence in seconds.
const DefaultInterval = 5.0

// FRAMSegment is the ML workload's per-segment checkpoint burst, expressed
// through the shared cost model.
func FRAMSegment() Cost { return Cost{Time: 0.1, I: 3e-3} }

// ODAB is eh-sim's on-demand all-backup scheme: run until the usable
// energy falls to within Margin of the backup cost, write the full image,
// and gate off — the checkpoint happens exactly once per power cycle, as
// late as the energy warning allows.
type ODAB struct {
	BackupCost  Cost
	RestoreCost Cost
	// Margin scales the warning threshold: backup triggers when the usable
	// energy drops to Margin × the backup burst's energy.
	Margin float64
}

func (o *ODAB) Name() string { return "odab" }
func (o *ODAB) WillBackup(st State) bool {
	return st.Usable <= o.BackupCost.Energy(st.Voltage)*o.Margin
}
func (o *ODAB) Backup() Cost    { return o.BackupCost }
func (o *ODAB) Restore() Cost   { return o.RestoreCost }
func (o *ODAB) PowerDown() bool { return true }

// Periodic writes a snapshot every Interval seconds of run time and
// resumes — bounded loss without an energy monitor, at a recurring cost.
type Periodic struct {
	// Interval is the snapshot cadence in seconds of powered run time.
	Interval    float64
	BackupCost  Cost
	RestoreCost Cost
}

func (p *Periodic) Name() string { return "periodic" }
func (p *Periodic) WillBackup(st State) bool {
	return st.SinceBackup >= p.Interval
}
func (p *Periodic) Backup() Cost    { return p.BackupCost }
func (p *Periodic) Restore() Cost   { return p.RestoreCost }
func (p *Periodic) PowerDown() bool { return false }

// Config is the declarative form of a scheme: a registry name plus knobs,
// JSON-expressible so scenario specs (and explore patch axes) can select
// and tune schemes. Zero knobs select the scheme's defaults; knobs that
// don't apply to the named scheme are rejected, so a config never
// silently ignores a field.
type Config struct {
	// Scheme names the strategy: "none" (or empty, the default),
	// "odab", or "periodic".
	Scheme string `json:"scheme,omitempty"`
	// Interval is the periodic snapshot cadence in seconds.
	Interval float64 `json:"interval,omitempty"`
	// Margin is ODAB's energy-warning multiplier over the backup cost.
	Margin float64 `json:"margin,omitempty"`
	// BackupTime/BackupI and RestoreTime/RestoreI override the burst
	// costs for any scheme that backs up.
	BackupTime  float64 `json:"backup_time,omitempty"`
	BackupI     float64 `json:"backup_i,omitempty"`
	RestoreTime float64 `json:"restore_time,omitempty"`
	RestoreI    float64 `json:"restore_i,omitempty"`
}

// registry lists the named schemes in presentation order; each entry
// builds its scheme from a resolved Config. "none" is listed for
// enumeration but builds no strategy object — Build returns nil, the
// device model's fast path.
var registry = []struct {
	name  string
	build func(Config) Scheme
}{
	{"none", func(Config) Scheme { return nil }},
	{"odab", func(c Config) Scheme {
		return &ODAB{
			BackupCost:  Cost{Time: c.BackupTime, I: c.BackupI},
			RestoreCost: Cost{Time: c.RestoreTime, I: c.RestoreI},
			Margin:      c.Margin,
		}
	}},
	{"periodic", func(c Config) Scheme {
		return &Periodic{
			Interval:    c.Interval,
			BackupCost:  Cost{Time: c.BackupTime, I: c.BackupI},
			RestoreCost: Cost{Time: c.RestoreTime, I: c.RestoreI},
		}
	}},
}

// Names lists the registered scheme names in presentation order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// knob pairs a Config field with its name for validation.
type knob struct {
	name string
	v    float64
}

// Resolve validates a config and returns its canonical form: the scheme
// name normalized ("" → "none"), applicable knobs defaulted, and errors
// for unknown schemes, non-finite or negative knobs, and knobs that don't
// apply to the named scheme. Two configs with equal resolved forms build
// identical schemes — the property the scenario fingerprint relies on.
func Resolve(cfg Config) (Config, error) {
	name := cfg.Scheme
	if name == "" {
		name = "none"
	}
	known := false
	for _, e := range registry {
		if e.name == name {
			known = true
			break
		}
	}
	if !known {
		return Config{}, fmt.Errorf("ckpt: unknown scheme %q (known: %s)", cfg.Scheme, strings.Join(Names(), ", "))
	}
	all := []knob{
		{"interval", cfg.Interval},
		{"margin", cfg.Margin},
		{"backup_time", cfg.BackupTime},
		{"backup_i", cfg.BackupI},
		{"restore_time", cfg.RestoreTime},
		{"restore_i", cfg.RestoreI},
	}
	for _, k := range all {
		if math.IsNaN(k.v) || math.IsInf(k.v, 0) || k.v < 0 {
			return Config{}, fmt.Errorf("ckpt: scheme %s: %s must be finite and non-negative (zero selects the default)", name, k.name)
		}
	}
	reject := func(ks ...knob) error {
		for _, k := range ks {
			if k.v != 0 {
				return fmt.Errorf("ckpt: scheme %s takes no %s knob", name, k.name)
			}
		}
		return nil
	}
	r := Config{Scheme: name}
	switch name {
	case "none":
		if err := reject(all...); err != nil {
			return Config{}, err
		}
		return r, nil
	case "odab":
		if err := reject(knob{"interval", cfg.Interval}); err != nil {
			return Config{}, err
		}
		r.Margin = cfg.Margin
		if r.Margin == 0 {
			r.Margin = DefaultMargin
		}
	case "periodic":
		if err := reject(knob{"margin", cfg.Margin}); err != nil {
			return Config{}, err
		}
		r.Interval = cfg.Interval
		if r.Interval == 0 {
			r.Interval = DefaultInterval
		}
	}
	r.BackupTime, r.BackupI = cfg.BackupTime, cfg.BackupI
	if r.BackupTime == 0 {
		r.BackupTime = DefaultBackup().Time
	}
	if r.BackupI == 0 {
		r.BackupI = DefaultBackup().I
	}
	r.RestoreTime, r.RestoreI = cfg.RestoreTime, cfg.RestoreI
	if r.RestoreTime == 0 {
		r.RestoreTime = DefaultRestore().Time
	}
	if r.RestoreI == 0 {
		r.RestoreI = DefaultRestore().I
	}
	return r, nil
}

// Build resolves a config and constructs its scheme. The "none" scheme
// (and the zero Config) builds nil: the device model treats a nil Scheme
// as the legacy flat-boot device, with no per-tick policy cost.
func Build(cfg Config) (Scheme, error) {
	r, err := Resolve(cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range registry {
		if e.name == r.Scheme {
			return e.build(r), nil
		}
	}
	// Unreachable: Resolve already rejected unknown names.
	return nil, fmt.Errorf("ckpt: unknown scheme %q", r.Scheme)
}
