package core

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func testBank(n int, unit float64) *Bank {
	return NewBank(BankSpec{N: n, UnitC: unit})
}

func TestBankCapacitancePerState(t *testing.T) {
	b := testBank(3, 220e-6)
	if b.Capacitance() != 0 {
		t.Error("disconnected bank must present no capacitance")
	}
	b.Reconfigure(Series)
	approx(t, b.Capacitance(), 220e-6/3, 1e-12, "series capacitance C/N")
	b.Reconfigure(Parallel)
	approx(t, b.Capacitance(), 3*220e-6, 1e-12, "parallel capacitance N·C")
}

func TestBankVoltagePerState(t *testing.T) {
	b := testBank(4, 1e-3)
	b.SetCapVoltage(1.5)
	b.Reconfigure(Series)
	approx(t, b.Voltage(), 6.0, 1e-12, "series terminal voltage N·V")
	b.Reconfigure(Parallel)
	approx(t, b.Voltage(), 1.5, 1e-12, "parallel terminal voltage V")
}

// TestBankReconfigurationLossless verifies the core REACT property (§3.3.3):
// switching a bank between series and parallel moves no charge between its
// equal-voltage capacitors, so stored energy is conserved exactly.
func TestBankReconfigurationLossless(t *testing.T) {
	b := testBank(3, 880e-6)
	b.Reconfigure(Parallel)
	b.SetCapVoltage(1.9)
	before := b.Energy()
	b.Reconfigure(Series)
	approx(t, b.Energy(), before, 0, "parallel→series conserves energy")
	approx(t, b.Voltage(), 3*1.9, 1e-12, "series boosts terminal voltage ×N")
	b.Reconfigure(Parallel)
	approx(t, b.Energy(), before, 0, "series→parallel conserves energy")
}

func TestBankAddChargeSeries(t *testing.T) {
	b := testBank(2, 1e-3)
	b.Reconfigure(Series)
	moved := b.AddCharge(1e-3)
	approx(t, moved, 1e-3, 0, "series accepts terminal charge")
	// Series: every capacitor carries the full dq -> per-cap V = 1 V,
	// terminal V = 2 V, stored energy = 2 × ½CV² = 1 mJ.
	approx(t, b.Voltage(), 2.0, 1e-12, "series terminal voltage")
	approx(t, b.Energy(), 1e-3, 1e-15, "series stored energy")
}

func TestBankAddChargeParallel(t *testing.T) {
	b := testBank(2, 1e-3)
	b.Reconfigure(Parallel)
	b.AddCharge(1e-3)
	// Parallel: dq splits across the two caps -> per-cap V = 0.5 V.
	approx(t, b.Voltage(), 0.5, 1e-12, "parallel terminal voltage")
	approx(t, b.Energy(), 0.25e-3, 1e-15, "parallel stored energy")
}

func TestBankAddChargeDisconnected(t *testing.T) {
	b := testBank(2, 1e-3)
	if b.AddCharge(1e-3) != 0 {
		t.Error("disconnected bank must not accept charge")
	}
}

func TestBankWithdrawTruncates(t *testing.T) {
	b := testBank(2, 1e-3)
	b.Reconfigure(Parallel)
	b.SetCapVoltage(1.0)
	moved := b.AddCharge(-5e-3)
	approx(t, moved, -2e-3, 1e-15, "withdrawal stops at empty (2 caps × 1 mC)")
	approx(t, b.Energy(), 0, 0, "bank empty")
}

func TestBankClipTerminal(t *testing.T) {
	b := testBank(2, 1e-3)
	b.Reconfigure(Series)
	b.SetCapVoltage(2.5) // terminal 5 V
	lost := b.ClipTerminal(3.6)
	approx(t, b.Voltage(), 3.6, 1e-12, "series terminal clipped")
	if lost <= 0 {
		t.Error("clip must discard energy")
	}
	if b.ClipTerminal(3.6) != 0 {
		t.Error("already within limits")
	}
}

func TestBankLeak(t *testing.T) {
	b := NewBank(BankSpec{N: 3, UnitC: 220e-6, LeakI: 28e-6, VRated: 6.3})
	b.SetCapVoltage(3.15)
	lost := b.Leak(1.0)
	if lost <= 0 {
		t.Error("charged bank must leak")
	}
	empty := NewBank(BankSpec{N: 3, UnitC: 220e-6, LeakI: 28e-6, VRated: 6.3})
	if empty.Leak(1.0) != 0 {
		t.Error("empty bank cannot leak")
	}
}

func TestBankStateString(t *testing.T) {
	cases := map[BankState]string{
		Disconnected: "disconnected",
		Series:       "series",
		Parallel:     "parallel",
		BankState(9): "BankState(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: for any charge level, reconfiguration never changes stored
// energy, and terminal charge moved in equals energy gained at the terminal
// voltage (first-order).
func TestBankReconfigureEnergyProperty(t *testing.T) {
	f := func(vu uint16, nu uint8) bool {
		n := 2 + int(nu)%4
		b := testBank(n, 470e-6)
		b.Reconfigure(Parallel)
		b.SetCapVoltage(float64(vu) / 65535 * 5)
		e := b.Energy()
		b.Reconfigure(Series)
		if math.Abs(b.Energy()-e) > 1e-18 {
			return false
		}
		b.Reconfigure(Parallel)
		return math.Abs(b.Energy()-e) <= 1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestReclamationQuadraticFactor reproduces §3.3.4: draining a bank in
// series down to V_low leaves ½·C_unit·V_low²/N unusable — an N² reduction
// versus disconnecting the parallel-configured bank at V_low, which strands
// ½·N·C_unit·V_low².
func TestReclamationQuadraticFactor(t *testing.T) {
	const n, unit, vLow = 4, 1e-3, 1.9
	// Parallel bank drained to V_low, then reclaimed via series and drained
	// to V_low again.
	b := testBank(n, unit)
	b.Reconfigure(Parallel)
	b.SetCapVoltage(vLow)
	stranded := 0.5 * unit * vLow * vLow / n
	b.Reconfigure(Series)
	approx(t, b.Voltage(), n*vLow, 1e-12, "reclamation boosts ×N")
	// Drain the series bank back down to terminal V_low.
	b.AddCharge(-(b.Voltage() - vLow) * b.Capacitance())
	approx(t, b.Energy(), stranded, 1e-12, "residual = ½·C_unit·V_low²/N")

	// Without reclamation the whole parallel cold-start energy strands.
	noReclaim := 0.5 * float64(n) * unit * vLow * vLow
	approx(t, noReclaim/b.Energy(), n*n, 1e-9, "reclamation wins by N²")
}
