// Package core implements REACT, the paper's primary contribution: an
// energy buffer built from a small static last-level buffer plus a fabric of
// mutually isolated, reconfigurable capacitor banks, managed by a polling
// software controller.
//
// Design summary (paper §3):
//
//   - Cold start charges only the last-level buffer (LLB), so the enable
//     latency matches the smallest static buffer.
//   - When the LLB reaches V_high (surplus power), the controller steps
//     capacity up: connect the next bank in series (C/N), then — on the
//     next overvoltage — reconfigure it to parallel (N·C).
//   - When the LLB falls to V_low (deficit), the controller steps down:
//     reconfigure the most recently paralleled bank back to series, which
//     multiplies its terminal voltage by N and reclaims charge that would
//     otherwise be stranded below the operating floor (§3.3.4), or
//     disconnect a drained series bank.
//   - Capacitors within a bank always hold equal charge and banks never
//     exchange charge directly (isolation diodes), so reconfiguration is
//     lossless — the property that separates REACT from unified
//     switched-capacitor arrays (§3.3.1 vs §3.3.2).
package core

import "fmt"

// BankState is the switch configuration of one capacitor bank.
type BankState int

const (
	// Disconnected banks hold their charge but neither charge nor supply.
	Disconnected BankState = iota
	// Series presents the N capacitors as one chain: capacitance C/N,
	// terminal voltage N·V_cap.
	Series
	// Parallel presents the N capacitors side by side: capacitance N·C,
	// terminal voltage V_cap.
	Parallel
)

// String implements fmt.Stringer.
func (s BankState) String() string {
	switch s {
	case Disconnected:
		return "disconnected"
	case Series:
		return "series"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("BankState(%d)", int(s))
}

// BankSpec describes one reconfigurable bank: N identical capacitors of
// UnitC farads each.
type BankSpec struct {
	N      int     // capacitors in the bank
	UnitC  float64 // capacitance per capacitor, farads
	LeakI  float64 // per-capacitor leakage current at VRated, amps
	VRated float64 // rating voltage for leakage scaling
}

// Bank is the runtime state of a reconfigurable capacitor bank. Because the
// capacitors within a bank are always switched together (all-series or
// all-parallel) and charge only through the common terminal, they hold equal
// charge at all times; the bank therefore tracks a single per-capacitor
// charge. It satisfies circuit.Node in every connected state.
type Bank struct {
	Spec  BankSpec
	State BankState
	q     float64 // charge per capacitor, coulombs
}

// NewBank returns a disconnected, empty bank.
func NewBank(spec BankSpec) *Bank {
	return &Bank{Spec: spec, State: Disconnected}
}

// Capacitance returns the equivalent capacitance at the bank terminal for
// the current configuration (0 when disconnected).
func (b *Bank) Capacitance() float64 {
	switch b.State {
	case Series:
		return b.Spec.UnitC / float64(b.Spec.N)
	case Parallel:
		return b.Spec.UnitC * float64(b.Spec.N)
	}
	return 0
}

// Voltage returns the terminal voltage for the current configuration. A
// disconnected bank reports the voltage it would present if reconnected in
// its last configuration state; by convention we report the per-capacitor
// voltage (series reconnect multiplies it by N).
func (b *Bank) Voltage() float64 {
	vCap := b.CapVoltage()
	switch b.State {
	case Series:
		return vCap * float64(b.Spec.N)
	case Parallel:
		return vCap
	}
	return vCap
}

// CapVoltage returns the voltage across each individual capacitor.
func (b *Bank) CapVoltage() float64 {
	if b.Spec.UnitC == 0 {
		return 0
	}
	return b.q / b.Spec.UnitC
}

// Energy returns the total energy stored across all N capacitors. It is
// configuration-independent — the invariant behind lossless reconfiguration.
func (b *Bank) Energy() float64 {
	if b.Spec.UnitC == 0 {
		return 0
	}
	return float64(b.Spec.N) * b.q * b.q / (2 * b.Spec.UnitC)
}

// AddCharge moves dq through the bank terminal. In series every capacitor
// carries the full dq; in parallel it divides evenly (the capacitors are
// identical). Withdrawals truncate at empty. Disconnected banks accept no
// charge.
func (b *Bank) AddCharge(dq float64) float64 {
	var perCap float64
	switch b.State {
	case Series:
		perCap = dq
	case Parallel:
		perCap = dq / float64(b.Spec.N)
	default:
		return 0
	}
	if b.q+perCap < 0 {
		perCap = -b.q
		switch b.State {
		case Series:
			dq = perCap
		case Parallel:
			dq = perCap * float64(b.Spec.N)
		}
	}
	b.q += perCap
	return dq
}

// SetCapVoltage forces every capacitor in the bank to voltage v. Intended
// for initial conditions and tests.
func (b *Bank) SetCapVoltage(v float64) {
	b.q = v * b.Spec.UnitC
}

// Reconfigure changes the bank switch state. The operation moves no charge
// between capacitors (break-before-make switches; capacitors within the
// bank are at equal voltage by construction), so stored energy is exactly
// conserved — assert with Energy() before/after if in doubt.
func (b *Bank) Reconfigure(state BankState) {
	b.State = state
}

// Leak drains leakage from every capacitor for dt seconds and returns the
// energy lost. Banks leak whether or not they are connected.
func (b *Bank) Leak(dt float64) float64 {
	if b.Spec.LeakI <= 0 || b.q <= 0 {
		return 0
	}
	v := b.CapVoltage()
	scale := 1.0
	if b.Spec.VRated > 0 {
		scale = v / b.Spec.VRated
	}
	dq := b.Spec.LeakI * scale * dt
	if dq > b.q {
		dq = b.q
	}
	before := b.Energy()
	b.q -= dq
	return before - b.Energy()
}

// ClipTerminal enforces a maximum terminal voltage (the rail's overvoltage
// protection) and returns the energy discarded.
func (b *Bank) ClipTerminal(vMax float64) float64 {
	if b.State == Disconnected || vMax <= 0 || b.Voltage() <= vMax {
		return 0
	}
	before := b.Energy()
	switch b.State {
	case Series:
		b.q = vMax / float64(b.Spec.N) * b.Spec.UnitC
	case Parallel:
		b.q = vMax * b.Spec.UnitC
	}
	return before - b.Energy()
}
