package core

import (
	"math"
	"testing"
	"testing/quick"

	"react/internal/buffer"
)

// smallConfig is a compact REACT instance used by controller tests: a
// 770 µF LLB plus two banks.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Banks = []BankSpec{
		{N: 3, UnitC: 440e-6},
		{N: 2, UnitC: 2e-3},
	}
	return cfg
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	approx(t, cfg.LLB.C, 770e-6, 1e-12, "last-level buffer")
	if len(cfg.Banks) != 5 {
		t.Fatalf("want 5 dynamic banks, got %d", len(cfg.Banks))
	}
	wantUnits := []float64{220e-6, 440e-6, 880e-6, 880e-6, 5e-3}
	wantCounts := []int{3, 3, 3, 3, 2}
	for i, b := range cfg.Banks {
		approx(t, b.UnitC, wantUnits[i], 1e-12, "bank unit size")
		if b.N != wantCounts[i] {
			t.Errorf("bank %d count %d, want %d", i+1, b.N, wantCounts[i])
		}
	}
	approx(t, cfg.MaxCapacitance(), 18.03e-3, 1e-6, "capacitance range top (18.03 mF)")
}

// TestDefaultConfigSatisfiesEquation2 checks every Table 1 bank against the
// §3.3.5 sizing bound: the reclamation spike must stay below V_high.
func TestDefaultConfigSatisfiesEquation2(t *testing.T) {
	cfg := DefaultConfig()
	for i, b := range cfg.Banks {
		vNew := VoltageAfterReclaim(b.N, b.UnitC, cfg.LLB.C, cfg.VLow)
		if vNew >= cfg.VHigh {
			t.Errorf("bank %d reclamation spike %.3f V exceeds V_high %.2f V", i+1, vNew, cfg.VHigh)
		}
		limit := MaxUnitCapacitance(b.N, cfg.LLB.C, cfg.VLow, cfg.VHigh)
		if b.UnitC >= limit {
			t.Errorf("bank %d unit %.0f µF exceeds Equation 2 limit %.0f µF", i+1, b.UnitC*1e6, limit*1e6)
		}
	}
}

// TestEquation1MatchesSimulation demotes a charged parallel bank to series
// and lets it equalize with the LLB through the output diode; the resulting
// LLB voltage must be exactly Equation 1.
func TestEquation1MatchesSimulation(t *testing.T) {
	cfg := smallConfig()
	b := New(cfg)
	bank := b.banks[1] // N=2, 2 mF
	bank.Reconfigure(Parallel)
	bank.SetCapVoltage(cfg.VLow)
	b.llb.SetVoltage(cfg.VLow)
	b.step = 4 // controller believes both banks are parallel

	bank.Reconfigure(Series)
	b.relax()

	want := VoltageAfterReclaim(2, 2e-3, cfg.LLB.C, cfg.VLow)
	approx(t, b.OutputVoltage(), want, 1e-9, "Equation 1 voltage after reclamation")
}

func TestEquation2Boundary(t *testing.T) {
	// At exactly the Equation 2 limit the post-reclamation voltage equals
	// V_high.
	const n, cLast, vLow, vHigh = 3, 770e-6, 1.9, 3.5
	limit := MaxUnitCapacitance(n, cLast, vLow, vHigh)
	v := VoltageAfterReclaim(n, limit, cLast, vLow)
	approx(t, v, vHigh, 1e-9, "boundary voltage = V_high")
	// N·V_low below V_high means the spike can never reach V_high.
	if !math.IsInf(MaxUnitCapacitance(1, cLast, vLow, vHigh), 1) {
		t.Error("unconstrained case should return +Inf")
	}
}

func TestColdStartChargesOnlyLLB(t *testing.T) {
	b := New(smallConfig())
	approx(t, b.Capacitance(), 770e-6, 1e-12, "cold-start capacitance = LLB only")
	b.Harvest(1e-3)
	if b.llb.Energy() < 0.99e-3 {
		t.Errorf("harvested energy should land on the LLB, got %g J", b.llb.Energy())
	}
	for i, bank := range b.banks {
		if bank.Energy() != 0 {
			t.Errorf("bank %d charged during cold start", i)
		}
	}
}

// TestControllerExpandSequence drives the buffer with surplus power and
// checks the §3.4 stepping: bank 0 series → bank 0 parallel → bank 1 series
// → bank 1 parallel.
func TestControllerExpandSequence(t *testing.T) {
	cfg := smallConfig()
	b := New(cfg)
	wantStates := [][2]BankState{
		{Series, Disconnected},
		{Parallel, Disconnected},
		{Parallel, Series},
		{Parallel, Parallel},
	}
	step := 0
	for i := 0; i < 400000 && step < 4; i++ {
		b.Harvest(20e-3 * 1e-3) // 20 mW surplus
		b.Tick(float64(i)*1e-3, 1e-3, true)
		if b.Level() > step {
			got := [2]BankState{b.banks[0].State, b.banks[1].State}
			if got != wantStates[step] {
				t.Fatalf("after step %d states = %v, want %v", step+1, got, wantStates[step])
			}
			step++
		}
	}
	if step != 4 {
		t.Fatalf("controller only reached step %d of 4", step)
	}
	if b.Level() != b.MaxLevel() {
		t.Errorf("level %d, want max %d", b.Level(), b.MaxLevel())
	}
}

// TestControllerContractSequence charges the buffer fully, then applies a
// heavy load and checks that the controller steps back down, reclaiming
// charge (voltage spikes above V_low after each demotion) until everything
// is disconnected.
func TestControllerContractSequence(t *testing.T) {
	cfg := smallConfig()
	b := New(cfg)
	// Start fully expanded and charged.
	b.step = 4
	b.banks[0].Reconfigure(Parallel)
	b.banks[0].SetCapVoltage(3.4)
	b.banks[1].Reconfigure(Parallel)
	b.banks[1].SetCapVoltage(3.4)
	b.llb.SetVoltage(3.4)

	sawReclaim := false
	for i := 0; i < 600000 && b.Level() > 0; i++ {
		before := b.OutputVoltage()
		b.Draw(8e-3 * 1e-3) // 8 mW load, no input
		b.Tick(float64(i)*1e-3, 1e-3, true)
		if b.OutputVoltage() > before+0.1 {
			sawReclaim = true // demotion spiked the rail upward
		}
	}
	if b.Level() != 0 {
		t.Fatalf("controller stuck at level %d", b.Level())
	}
	if !sawReclaim {
		t.Error("no reclamation voltage spike observed during contraction")
	}
	for i, bank := range b.banks {
		if bank.State != Disconnected {
			t.Errorf("bank %d still %v after full contraction", i, bank.State)
		}
	}
}

func TestControllerIdleWhenDeviceOff(t *testing.T) {
	b := New(smallConfig())
	for i := 0; i < 5000; i++ {
		b.Harvest(50e-3 * 1e-3)
		b.Tick(float64(i)*1e-3, 1e-3, false) // device off: no polling
	}
	if b.Level() != 0 {
		t.Error("controller must not reconfigure while the device is off")
	}
	if b.Ledger().Overhead != 0 {
		t.Error("no management draw while the device is off")
	}
}

func TestHarvestPrefersLowestNode(t *testing.T) {
	b := New(smallConfig())
	b.llb.SetVoltage(3.5)
	b.banks[0].Reconfigure(Series)
	b.step = 1
	// The fresh series bank is at 0 V: all harvest goes there while the
	// device runs from the LLB.
	b.Harvest(0.5e-3)
	if b.banks[0].Energy() < 0.49e-3 {
		t.Errorf("harvest should charge the empty bank, got %g J", b.banks[0].Energy())
	}
	approx(t, b.llb.Voltage(), 3.5, 1e-9, "LLB untouched by harvest")
}

func TestDrawFallsBackToBanks(t *testing.T) {
	b := New(smallConfig())
	b.llb.SetVoltage(2.0)
	b.banks[1].Reconfigure(Parallel)
	b.banks[1].SetCapVoltage(3.0)
	b.step = 4
	llbOnly := b.llb.Energy()
	got := b.Draw(llbOnly + 1e-3) // more than the LLB holds
	if got < llbOnly+0.99e-3 {
		t.Errorf("draw should pull from banks through the diode, got %g J", got)
	}
}

func TestGuaranteedEnergyMonotonic(t *testing.T) {
	b := New(DefaultConfig())
	prev := -1.0
	for lvl := 0; lvl <= b.MaxLevel(); lvl++ {
		g := b.GuaranteedEnergy(lvl)
		if g < prev {
			t.Errorf("guarantee not monotonic at level %d: %g < %g", lvl, g, prev)
		}
		prev = g
	}
	if b.GuaranteedEnergy(0) != 0 {
		t.Error("level 0 guarantees nothing")
	}
	if b.GuaranteedEnergy(b.MaxLevel()+5) != b.GuaranteedEnergy(b.MaxLevel()) {
		t.Error("levels beyond max clamp to max")
	}
}

func TestLevelFor(t *testing.T) {
	b := New(DefaultConfig())
	// A 12.4 mJ radio transmission needs a level whose guarantee covers it.
	lvl, ok := buffer.LevelFor(b, 12.4e-3)
	if !ok {
		t.Fatal("Table 1 configuration must be able to guarantee a radio TX")
	}
	if g := b.GuaranteedEnergy(lvl); g < 12.4e-3 {
		t.Errorf("level %d guarantees %g J < 12.4 mJ", lvl, g)
	}
	if lvl > 0 {
		if g := b.GuaranteedEnergy(lvl - 1); g >= 12.4e-3 {
			t.Errorf("level %d already sufficed", lvl-1)
		}
	}
	if _, ok := buffer.LevelFor(b, 1e6); ok {
		t.Error("megajoule guarantee should be impossible")
	}
}

// TestEnergyConservation runs a randomized harvest/draw schedule and checks
// the ledger balances: everything harvested is either delivered, lost to an
// accounted sink, or still stored.
func TestEnergyConservation(t *testing.T) {
	f := func(seed uint8) bool {
		b := New(smallConfig())
		s := uint64(seed)*2654435761 + 1
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := 0; i < 30000; i++ {
			b.Harvest(next() * 30e-3 * 1e-3)
			b.Draw(next() * 10e-3 * 1e-3)
			b.Tick(float64(i)*1e-3, 1e-3, next() < 0.7)
		}
		l := b.Ledger()
		in := l.Harvested
		out := l.Consumed + l.Clipped + l.Leaked + l.SwitchLoss + l.Overhead + b.Stored()
		return math.Abs(in-out) <= 1e-9*(1+in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSoftwareOverheadFraction(t *testing.T) {
	b := New(DefaultConfig())
	approx(t, b.SoftwareOverheadFraction(), 0.018, 0, "paper: 1.8 % at 10 Hz")
}
