package core

import (
	"math"

	"react/internal/buffer"
	"react/internal/circuit"
)

// Config describes a REACT buffer instance.
type Config struct {
	// LLB is the last-level buffer: the small static capacitor that alone
	// sets cold-start latency and smooths bank-switching transients.
	LLB buffer.StaticConfig
	// Banks are the reconfigurable banks in connection order.
	Banks []BankSpec
	// VHigh is the overvoltage threshold: the comparator level at which
	// the controller adds capacitance (paper: 3.5 V).
	VHigh float64
	// VLow is the undervoltage threshold at which the controller reclaims
	// charge by stepping capacitance down.
	VLow float64
	// VMax is the rail's absolute overvoltage-protection clip (3.6 V).
	VMax float64
	// VMin is the device's minimum operating voltage (1.8 V), used for
	// the level→energy guarantee computation.
	VMin float64
	// PollHz is the software controller polling rate (paper: 10 Hz).
	PollHz float64
	// BaseOverheadW is the draw of REACT's always-needed instrumentation
	// (the two threshold comparators) while the device is on.
	BaseOverheadW float64
	// OverheadPerBankW is the additional draw per connected bank (switch
	// drivers and isolation-diode comparators). The paper measures ≈68 µW
	// with the full five-bank array engaged, ≈14 µW per bank.
	OverheadPerBankW float64
	// SoftwareOverhead is the fraction of device CPU consumed by polling
	// (paper measures 1.8 % at 10 Hz).
	SoftwareOverhead float64
	// DiodeDrop is the forward drop of the isolation diodes; 0 models the
	// active ideal-diode circuits REACT uses, ~0.3 V a Schottky baseline.
	DiodeDrop float64
}

// DefaultConfig returns the paper's Table 1 implementation: a 770 µF
// last-level buffer plus five banks (3×220 µF, 3×440 µF, 3×880 µF, 3×880 µF,
// 2×5 mF) spanning 770 µF–18.03 mF, with the §4–5 thresholds.
func DefaultConfig() Config {
	ceramic := func(n int, unit float64) BankSpec {
		// Murata GRM31 class: 28 µA max leakage at 6.3 V per 220 µF;
		// scale with capacitance, derated to typical (×0.05).
		return BankSpec{N: n, UnitC: unit, LeakI: 28e-6 * 0.05 * (unit / 220e-6), VRated: 6.3}
	}
	return Config{
		LLB: buffer.StaticConfig{
			Name: "REACT LLB", C: 770e-6, VMax: 3.6,
			LeakI: 28e-6 * 0.05 * (770.0 / 220.0), VRated: 6.3,
		},
		Banks: []BankSpec{
			ceramic(3, 220e-6),
			ceramic(3, 440e-6),
			ceramic(3, 880e-6),
			ceramic(3, 880e-6),
			// Bank 5: supercapacitors, ~0.15 µA leakage at 5.5 V.
			{N: 2, UnitC: 5e-3, LeakI: 0.15e-6, VRated: 5.5},
		},
		VHigh:            3.5,
		VLow:             1.9,
		VMax:             3.6,
		VMin:             1.8,
		PollHz:           10,
		BaseOverheadW:    2e-6,
		OverheadPerBankW: 13.2e-6,
		SoftwareOverhead: 0.018,
		DiodeDrop:        0,
	}
}

// MaxCapacitance returns the equivalent capacitance with every bank in
// parallel — the top of the configuration range (18.03 mF for Table 1).
func (c Config) MaxCapacitance() float64 {
	total := c.LLB.C
	for _, b := range c.Banks {
		total += float64(b.N) * b.UnitC
	}
	return total
}

// Buffer is a REACT energy buffer. It implements buffer.Buffer and
// buffer.Leveler.
type Buffer struct {
	cfg    Config
	llb    circuit.Capacitor
	banks  []*Bank
	step   int // controller position in the expand sequence: 0..2·len(banks)
	ledger buffer.Ledger
	poll   float64 // seconds until the next controller poll

	// scratch backs connected() so the per-tick Harvest path does not
	// allocate; its contents are only valid within one call.
	scratch []circuit.Node

	// guarantee caches GuaranteedEnergy per level. The table depends only
	// on the immutable config, and workloads probe it every step through
	// buffer.LevelFor, so it is computed once at construction.
	guarantee []float64
}

var (
	_ buffer.Buffer  = (*Buffer)(nil)
	_ buffer.Leveler = (*Buffer)(nil)
)

// New builds a REACT buffer from cfg.
func New(cfg Config) *Buffer {
	b := &Buffer{
		cfg: cfg,
		llb: circuit.Capacitor{
			C: cfg.LLB.C, VMax: cfg.VMax,
			LeakI: cfg.LLB.LeakI, VRated: cfg.LLB.VRated,
		},
	}
	for _, spec := range cfg.Banks {
		b.banks = append(b.banks, NewBank(spec))
	}
	if b.poll == 0 && cfg.PollHz > 0 {
		b.poll = 1 / cfg.PollHz
	}
	b.guarantee = make([]float64, b.MaxLevel()+1)
	for lvl := 1; lvl <= b.MaxLevel(); lvl++ {
		c := b.capacitanceAtStep(lvl - 1)
		b.guarantee[lvl] = 0.5 * c * (b.cfg.VHigh*b.cfg.VHigh - b.cfg.VMin*b.cfg.VMin)
	}
	return b
}

// Name implements buffer.Buffer.
func (b *Buffer) Name() string { return "REACT" }

// Config returns the configuration the buffer was built with.
func (b *Buffer) Config() Config { return b.cfg }

// Banks exposes the bank states for inspection (tests, tracing).
func (b *Buffer) Banks() []*Bank { return b.banks }

// connected returns the nodes currently joined to the rail, LLB first. The
// slice is scratch storage shared across calls — do not retain it.
func (b *Buffer) connected() []circuit.Node {
	nodes := append(b.scratch[:0], &b.llb)
	for _, bank := range b.banks {
		if bank.State != Disconnected {
			nodes = append(nodes, bank)
		}
	}
	b.scratch = nodes
	return nodes
}

// Harvest implements buffer.Buffer. Incoming charge flows through the input
// ideal diodes to the lowest-voltage connected node — the paper's "current
// flows from the harvester to the lowest-voltage bank first". Nodes within
// 1 mV of the minimum share the charge in proportion to capacitance.
func (b *Buffer) Harvest(dE float64) {
	if dE <= 0 {
		return
	}
	b.ledger.Harvested += dE
	nodes := b.connected()
	minV := math.Inf(1)
	for _, n := range nodes {
		if v := n.Voltage(); v < minV {
			minV = v
		}
	}
	const tie = 1e-3
	var groupC float64
	for _, n := range nodes {
		if n.Voltage() <= minV+tie {
			groupC += n.Capacitance()
		}
	}
	if groupC == 0 {
		b.ledger.Clipped += dE
		return
	}
	for _, n := range nodes {
		if n.Voltage() > minV+tie {
			continue
		}
		share := dE * n.Capacitance() / groupC
		_, loss := circuit.StoreEnergy(n, share, b.cfg.DiodeDrop)
		b.ledger.SwitchLoss += loss
	}
	b.clip()
}

// Draw implements buffer.Buffer. The device is supplied from the LLB only;
// banks replenish it through their output diodes during Tick.
func (b *Buffer) Draw(dE float64) float64 {
	got := circuit.DrawEnergy(&b.llb, dE)
	if got < dE {
		// LLB alone could not cover the demand within this tick; let the
		// banks conduct immediately (the output diodes are not clocked).
		b.relax()
		got += circuit.DrawEnergy(&b.llb, dE-got)
	}
	b.ledger.Consumed += got
	return got
}

// OutputVoltage implements buffer.Buffer.
func (b *Buffer) OutputVoltage() float64 { return b.llb.Voltage() }

// Stored implements buffer.Buffer.
func (b *Buffer) Stored() float64 {
	e := b.llb.Energy()
	for _, bank := range b.banks {
		e += bank.Energy()
	}
	return e
}

// Capacitance implements buffer.Buffer: the equivalent capacitance at the
// rail (LLB plus connected banks).
func (b *Buffer) Capacitance() float64 {
	c := b.llb.C
	for _, bank := range b.banks {
		c += bank.Capacitance()
	}
	return c
}

// relax lets every connected bank above the LLB voltage conduct through its
// output ideal diode until no diode is forward-biased. Conduction loss (the
// charge-sharing dissipation of Eq. 1 transitions) is charged to the switch
// ledger.
func (b *Buffer) relax() {
	for iter := 0; iter < 4*len(b.banks)+4; iter++ {
		var donor *Bank
		best := b.llb.Voltage() + b.cfg.DiodeDrop + 1e-9
		for _, bank := range b.banks {
			if bank.State == Disconnected {
				continue
			}
			if v := bank.Voltage(); v > best {
				best = v
				donor = bank
			}
		}
		if donor == nil {
			return
		}
		_, loss := circuit.TransferOneWay(donor, &b.llb, b.cfg.DiodeDrop)
		b.ledger.SwitchLoss += loss
		b.ledger.Clipped += b.llb.Clip()
	}
}

// clip applies rail overvoltage protection to every connected node.
func (b *Buffer) clip() {
	b.ledger.Clipped += b.llb.Clip()
	for _, bank := range b.banks {
		b.ledger.Clipped += bank.ClipTerminal(b.cfg.VMax)
	}
}

// Tick implements buffer.Buffer.
func (b *Buffer) Tick(now, dt float64, deviceOn bool) {
	b.relax()
	// Leakage applies to every capacitor, connected or not.
	b.ledger.Leaked += b.llb.Leak(dt)
	for _, bank := range b.banks {
		b.ledger.Leaked += bank.Leak(dt)
	}
	b.clip()
	if !deviceOn {
		// REACT's controller runs on the device itself: no polling, no
		// management draw while the system is power-gated. Reset the poll
		// phase so a fresh boot polls after one period.
		b.poll = 1 / b.cfg.PollHz
		return
	}
	connected := 0
	for _, bank := range b.banks {
		if bank.State != Disconnected {
			connected++
		}
	}
	over := (b.cfg.BaseOverheadW + b.cfg.OverheadPerBankW*float64(connected)) * dt
	b.ledger.Overhead += circuit.DrawEnergy(&b.llb, over)
	b.poll -= dt
	if b.poll <= 0 {
		b.poll += 1 / b.cfg.PollHz
		b.controllerPoll()
	}
}

// controllerPoll is one iteration of the §3.4 state machine: compare the
// LLB voltage against the two comparator thresholds and step the expand
// sequence up or down by one.
func (b *Buffer) controllerPoll() {
	v := b.llb.Voltage()
	switch {
	case v >= b.cfg.VHigh:
		b.stepUp()
	case v <= b.cfg.VLow:
		b.stepDown()
	}
}

// stepUp adds capacitance: connect the next bank in series, or promote the
// most recently connected series bank to parallel.
func (b *Buffer) stepUp() {
	if b.step >= 2*len(b.banks) {
		return // fully expanded; surplus will clip
	}
	bank := b.banks[b.step/2]
	if b.step%2 == 0 {
		bank.Reconfigure(Series)
	} else {
		// Series → parallel: terminal voltage divides by N, no charge
		// moves between capacitors, stored energy conserved exactly.
		bank.Reconfigure(Parallel)
	}
	b.step++
}

// stepDown removes capacitance: demote the most recently paralleled bank to
// series (boosting its terminal voltage ×N — charge reclamation, §3.3.4) or
// disconnect a drained series bank.
func (b *Buffer) stepDown() {
	if b.step <= 0 {
		return // nothing connected beyond the LLB
	}
	b.step--
	bank := b.banks[b.step/2]
	if b.step%2 == 0 {
		// Reverse of "connect in series": disconnect. Residual charge
		// stays on the bank (it is stranded unless the bank reconnects).
		bank.Reconfigure(Disconnected)
	} else {
		// Reverse of "promote to parallel": back to series. The bank's
		// terminal voltage jumps ×N; the output diode will dump the
		// reclaimed charge into the LLB on the next relax.
		bank.Reconfigure(Series)
	}
	b.relax()
}

// QuiescentOff implements buffer.Quiescent. A device-off tick relaxes the
// output diodes, leaks and clips every capacitor, and resets the poll
// phase; it is a no-op exactly when no bank diode is forward-biased, no
// capacitor has charge to leak or clip, and the poll timer already sits at
// its reset value (true from the first off-tick on, since the reset is
// idempotent). Each comparison mirrors the corresponding Tick step bit for
// bit: the relax donor threshold, circuit.Capacitor.Leak/Clip, Bank.Leak,
// and Bank.ClipTerminal.
func (b *Buffer) QuiescentOff() bool {
	best := b.llb.Voltage() + b.cfg.DiodeDrop + 1e-9
	for _, bank := range b.banks {
		if bank.Spec.LeakI > 0 && bank.q > 0 {
			return false
		}
		if bank.State == Disconnected {
			continue
		}
		if v := bank.Voltage(); v > best || (b.cfg.VMax > 0 && v > b.cfg.VMax) {
			return false
		}
	}
	if b.llb.LeakI > 0 && b.llb.Q > 0 {
		return false
	}
	if b.llb.VMax > 0 && b.llb.Voltage() > b.llb.VMax {
		return false
	}
	//lint:reactlint-ignore dtarith poll is assigned exactly 1/PollHz on re-arm, so bit-identity means the timer is freshly reset
	return b.poll == 1/b.cfg.PollHz
}

// Ledger implements buffer.Buffer.
func (b *Buffer) Ledger() *buffer.Ledger { return &b.ledger }

// SoftwareOverheadFraction implements buffer.Buffer.
func (b *Buffer) SoftwareOverheadFraction() float64 { return b.cfg.SoftwareOverhead }

// Level implements buffer.Leveler: the controller's position in the expand
// sequence. Level 0 is the bare LLB; each bank contributes two levels
// (series, then parallel).
func (b *Buffer) Level() int { return b.step }

// MaxLevel implements buffer.Leveler.
func (b *Buffer) MaxLevel() int { return 2 * len(b.banks) }

// GuaranteedEnergy implements buffer.Leveler: reaching level k required the
// rail to be at V_high with the level k−1 capacitance connected, so at least
// the usable energy of that configuration (between V_high and the device
// floor V_min) was stored. Level 0 guarantees nothing.
func (b *Buffer) GuaranteedEnergy(level int) float64 {
	if level <= 0 {
		return 0
	}
	if level > b.MaxLevel() {
		level = b.MaxLevel()
	}
	return b.guarantee[level]
}

// capacitanceAtStep returns the equivalent rail capacitance after the first
// `step` controller actions.
func (b *Buffer) capacitanceAtStep(step int) float64 {
	c := b.cfg.LLB.C
	for i, spec := range b.cfg.Banks {
		switch {
		case step >= 2*(i+1):
			c += float64(spec.N) * spec.UnitC
		case step == 2*i+1:
			c += spec.UnitC / float64(spec.N)
		}
	}
	return c
}

// VoltageAfterReclaim computes Equation 1 of the paper: the LLB voltage
// immediately after a bank of N capacitors of size cUnit, demoted from
// parallel to series at trigger voltage vLow, equalizes with an LLB of size
// cLast also at vLow.
func VoltageAfterReclaim(n int, cUnit, cLast, vLow float64) float64 {
	cs := cUnit / float64(n)
	return (float64(n)*vLow*cs + vLow*cLast) / (cLast + cs)
}

// MaxUnitCapacitance computes Equation 2: the largest per-capacitor size
// for which the parallel→series reclamation spike stays below vHigh. It
// returns +Inf when the transition cannot exceed vHigh for any size
// (N·vLow ≤ vHigh).
func MaxUnitCapacitance(n int, cLast, vLow, vHigh float64) float64 {
	den := float64(n)*vLow - vHigh
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(n) * cLast * (vHigh - vLow) / den
}
