// Package mcu models the computational backend: an MSP430FR5994-class
// microcontroller behind a power gate that enables it when the buffer
// reaches the enable voltage (3.3 V) and cuts it off at the brownout
// voltage (1.8 V) — the intermittent-operation envelope of §4.
//
// The device draws state-dependent current from the buffer, boots for a
// fixed time after each power-up, and notifies its workload when power is
// gained or lost so atomic operations can fail realistically.
package mcu

import (
	"fmt"

	"react/internal/buffer"
)

// Profile is the electrical envelope of the device.
type Profile struct {
	VEnable   float64 // power-gate enable voltage
	VBrownout float64 // cutoff voltage; in-flight atomic ops fail here
	BootTime  float64 // seconds of active-current boot after power-up
	ActiveI   float64 // active-mode current, amps
	SleepI    float64 // deep-sleep current, amps
}

// DefaultProfile matches the paper's testbed: 3.3 V enable, 1.8 V cutoff,
// 1.5 mA active (a typical low-power MCU deployment, §2.1.1), 4 µA sleep,
// and a 5 ms boot/restore time.
func DefaultProfile() Profile {
	return Profile{
		VEnable:   3.3,
		VBrownout: 1.8,
		BootTime:  5e-3,
		ActiveI:   1.5e-3,
		SleepI:    4e-6,
	}
}

// DegradedProfile models an aged deployment of the same platform: sleep
// current tripled by electromigration and regulator drift, and a doubled
// boot time from slower flash — the device the degraded-hardware scenarios
// pair with worn-out buffer capacitors.
func DegradedProfile() Profile {
	p := DefaultProfile()
	p.SleepI = 12e-6
	p.BootTime = 10e-3
	return p
}

// NamedProfile returns a device profile by name, so declarative scenario
// specs can pick the platform without constructing it in code. The empty
// string and "default" are the paper's testbed; "degraded" is the aged
// variant.
func NamedProfile(name string) (Profile, error) {
	switch name {
	case "", "default":
		return DefaultProfile(), nil
	case "degraded":
		return DegradedProfile(), nil
	}
	return Profile{}, fmt.Errorf(`mcu: unknown device profile %q (want "default" or "degraded")`, name)
}

// State is the device power state.
type State int

const (
	// Off: the power gate holds the device unpowered.
	Off State = iota
	// Booting: powered, restoring state, not yet running the workload.
	Booting
	// On: running the workload.
	On
)

// Env is the view a workload gets of its execution environment on each
// step.
type Env struct {
	// Now is the simulation time in seconds.
	Now float64
	// Voltage is the present supply voltage.
	Voltage float64
	// VMin is the brownout voltage below which the device loses power.
	VMin float64
	// Capacitance is the buffer's present equivalent capacitance. With
	// Voltage it gives software the coarse stored-energy estimate the
	// paper describes ("capacitance level is an effective surrogate for
	// stored energy", §3.4.1).
	Capacitance float64
	// OverheadFrac is the fraction of CPU time consumed by the buffer's
	// management software (REACT's 10 Hz poll costs 1.8 %).
	OverheadFrac float64
	// Levels exposes the buffer's capacitance-level interface when the
	// buffer supports software-directed longevity (nil otherwise).
	Levels buffer.Leveler
}

// UsableEnergy estimates the energy software can still extract before the
// device browns out, from the observable capacitance level and rail
// voltage: ½·C·(V² − V_min²).
func (e *Env) UsableEnergy() float64 {
	if e.Voltage <= e.VMin {
		return 0
	}
	return 0.5 * e.Capacitance * (e.Voltage*e.Voltage - e.VMin*e.VMin)
}

// Workload is a benchmark program running on the device. Step is called
// only while the device is On.
type Workload interface {
	// Name identifies the benchmark ("DE", "SC", "RT", "PF").
	Name() string
	// Step advances the workload by dt seconds and returns the current
	// (amps) the device draws over that interval.
	Step(env *Env, dt float64) float64
	// PowerOn is called when boot completes at time now.
	PowerOn(now float64)
	// PowerLost is called on brownout; in-flight atomic work fails.
	PowerLost(now float64)
	// Metrics reports the benchmark counters.
	Metrics() map[string]float64
}

// Device couples a Profile with a Workload and tracks the on/off statistics
// the evaluation reports (latency, on-time, power-cycle lengths).
type Device struct {
	Prof Profile
	WL   Workload

	state    State
	bootLeft float64

	// FirstOn is the time the device first reached the enable voltage
	// (system latency, Table 4); −1 until it happens.
	FirstOn float64
	// OnTime accumulates powered seconds.
	OnTime float64
	// Cycles counts completed power cycles; CycleTime accumulates their
	// durations (mean cycle length is the §2.1.1 longevity measure).
	Cycles     int
	CycleTime  float64
	cycleStart float64

	// env is reused across steps so the workload's *Env view never escapes
	// to the heap on the tick path (a per-tick allocation at simulation
	// rates; workloads only read it within Step).
	env Env
	// bound caches the buffer's optional-interface lookups; a device steps
	// against one buffer for a whole run, so the per-tick type assertions
	// collapse to one pointer comparison.
	bound   buffer.Buffer
	hinter  buffer.EnableHinter
	leveler buffer.Leveler
}

// NewDevice builds a device in the Off state.
func NewDevice(prof Profile, wl Workload) *Device {
	return &Device{Prof: prof, WL: wl, FirstOn: -1}
}

// State returns the current power state.
func (d *Device) State() State { return d.state }

// Powered reports whether the device is drawing power (booting or on).
func (d *Device) Powered() bool { return d.state != Off }

// Step advances the device by dt seconds, drawing energy from buf.
func (d *Device) Step(now, dt float64, buf buffer.Buffer) {
	if d.bound != buf {
		d.bound = buf
		d.hinter, _ = buf.(buffer.EnableHinter)
		d.leveler, _ = buf.(buffer.Leveler)
	}
	v := buf.OutputVoltage()
	switch d.state {
	case Off:
		venable := d.Prof.VEnable
		if d.hinter != nil {
			venable = d.hinter.EnableVoltage()
		}
		if v >= venable {
			d.state = Booting
			d.bootLeft = d.Prof.BootTime
			if d.FirstOn < 0 {
				d.FirstOn = now
			}
			d.cycleStart = now
		}
		return
	case Booting, On:
		if v <= d.Prof.VBrownout {
			d.powerLost(now)
			return
		}
	}

	var current float64
	if d.state == Booting {
		current = d.Prof.ActiveI
		d.bootLeft -= dt
		if d.bootLeft <= 0 {
			d.state = On
			d.WL.PowerOn(now)
		}
	} else {
		d.env = Env{
			Now:          now,
			Voltage:      v,
			VMin:         d.Prof.VBrownout,
			Capacitance:  buf.Capacitance(),
			OverheadFrac: buf.SoftwareOverheadFraction(),
			Levels:       d.leveler,
		}
		current = d.WL.Step(&d.env, dt)
	}

	need := v * current * dt
	got := buf.Draw(need)
	d.OnTime += dt
	if got < need*(1-1e-9)-1e-15 {
		// The buffer ran dry mid-step: brownout.
		d.powerLost(now)
	}
}

// powerLost gates the device off and closes the current power cycle.
func (d *Device) powerLost(now float64) {
	if d.state == On {
		d.WL.PowerLost(now)
	}
	if d.state != Off {
		d.Cycles++
		d.CycleTime += now - d.cycleStart
	}
	d.state = Off
}

// MeanCycle returns the mean uninterrupted power-cycle length, or 0 when no
// cycle has completed.
func (d *Device) MeanCycle() float64 {
	if d.Cycles == 0 {
		return 0
	}
	return d.CycleTime / float64(d.Cycles)
}
