// Package mcu models the computational backend: an MSP430FR5994-class
// microcontroller behind a power gate that enables it when the buffer
// reaches the enable voltage (3.3 V) and cuts it off at the brownout
// voltage (1.8 V) — the intermittent-operation envelope of §4.
//
// The device draws state-dependent current from the buffer, boots for a
// fixed time after each power-up, and notifies its workload when power is
// gained or lost so atomic operations can fail realistically.
package mcu

import (
	"fmt"
	"strconv"
	"strings"

	"react/internal/buffer"
	"react/internal/ckpt"
)

// Profile is the electrical envelope of the device.
type Profile struct {
	VEnable   float64 // power-gate enable voltage
	VBrownout float64 // cutoff voltage; in-flight atomic ops fail here
	BootTime  float64 // seconds of active-current boot after power-up
	ActiveI   float64 // active-mode current, amps
	SleepI    float64 // deep-sleep current, amps
}

// DefaultProfile matches the paper's testbed: 3.3 V enable, 1.8 V cutoff,
// 1.5 mA active (a typical low-power MCU deployment, §2.1.1), 4 µA sleep,
// and a 5 ms boot/restore time.
func DefaultProfile() Profile {
	return Profile{
		VEnable:   3.3,
		VBrownout: 1.8,
		BootTime:  5e-3,
		ActiveI:   1.5e-3,
		SleepI:    4e-6,
	}
}

// DegradedProfile models an aged deployment of the same platform: sleep
// current tripled by electromigration and regulator drift, and a doubled
// boot time from slower flash — the device the degraded-hardware scenarios
// pair with worn-out buffer capacitors.
func DegradedProfile() Profile {
	p := DefaultProfile()
	p.SleepI = 12e-6
	p.BootTime = 10e-3
	return p
}

// profiles is the named-profile registry in presentation order, so the
// known platforms self-enumerate in error messages and CLI listings
// instead of living in a hand-listed switch.
var profiles = []struct {
	name  string
	build func() Profile
}{
	{"default", DefaultProfile},
	{"degraded", DegradedProfile},
}

// ProfileNames lists the registered device profiles in presentation order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.name
	}
	return names
}

// NamedProfile returns a device profile by name, so declarative scenario
// specs can pick the platform without constructing it in code. The empty
// string and "default" are the paper's testbed; "degraded" is the aged
// variant.
func NamedProfile(name string) (Profile, error) {
	if name == "" {
		name = "default"
	}
	for _, p := range profiles {
		if p.name == name {
			return p.build(), nil
		}
	}
	return Profile{}, fmt.Errorf("mcu: unknown device profile %q (known: %s)", name, strings.Join(ProfileNames(), ", "))
}

// State is the device power state.
type State int

const (
	// Off: the power gate holds the device unpowered.
	Off State = iota
	// Booting: powered, restoring state, not yet running the workload.
	Booting
	// On: running the workload.
	On
	// Restoring: powered, reloading the checkpoint image after boot (only
	// with a checkpoint scheme attached; appended after On so recorded
	// state series keep their numeric meaning).
	Restoring
	// Backing: powered, writing the volatile image to non-volatile memory
	// (only with a checkpoint scheme attached).
	Backing
)

// String names the state for logs and timeline tracks.
func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case Booting:
		return "booting"
	case On:
		return "on"
	case Restoring:
		return "restoring"
	case Backing:
		return "backing"
	}
	return "state(" + strconv.Itoa(int(s)) + ")"
}

// Env is the view a workload gets of its execution environment on each
// step.
type Env struct {
	// Now is the simulation time in seconds.
	Now float64
	// Voltage is the present supply voltage.
	Voltage float64
	// VMin is the brownout voltage below which the device loses power.
	VMin float64
	// Capacitance is the buffer's present equivalent capacitance. With
	// Voltage it gives software the coarse stored-energy estimate the
	// paper describes ("capacitance level is an effective surrogate for
	// stored energy", §3.4.1).
	Capacitance float64
	// OverheadFrac is the fraction of CPU time consumed by the buffer's
	// management software (REACT's 10 Hz poll costs 1.8 %).
	OverheadFrac float64
	// Levels exposes the buffer's capacitance-level interface when the
	// buffer supports software-directed longevity (nil otherwise).
	Levels buffer.Leveler
}

// UsableEnergy estimates the energy software can still extract before the
// device browns out, from the observable capacitance level and rail
// voltage: ½·C·(V² − V_min²).
func (e *Env) UsableEnergy() float64 {
	if e.Voltage <= e.VMin {
		return 0
	}
	return 0.5 * e.Capacitance * (e.Voltage*e.Voltage - e.VMin*e.VMin)
}

// Workload is a benchmark program running on the device. Step is called
// only while the device is On.
type Workload interface {
	// Name identifies the benchmark ("DE", "SC", "RT", "PF").
	Name() string
	// Step advances the workload by dt seconds and returns the current
	// (amps) the device draws over that interval.
	Step(env *Env, dt float64) float64
	// PowerOn is called when boot (and any checkpoint restore) completes
	// at time now.
	PowerOn(now float64)
	// PowerLost is called on brownout; in-flight atomic work fails.
	PowerLost(now float64)
	// Backup is called when an attached checkpoint scheme suspends the
	// workload at time now to write a backup image. The image captures
	// everything that survives power loss plus any freezeable volatile
	// compute; real-time operations in flight (radio bursts, timed sensor
	// reads, deadline-bound segments) cannot be suspended mid-air and
	// must be aborted with the workload's usual failure accounting.
	// Devices without a scheme never call it. Backup may be followed by
	// PowerLost in the same cycle (a brownout cutting the burst short);
	// implementations must tolerate the double notification.
	Backup(now float64)
	// Metrics reports the benchmark counters. Implementations allocate a
	// fresh map per call; the engine reads it exactly once, at cell
	// retirement — callers must not poll it on the tick path.
	Metrics() map[string]float64
}

// LostWorker is an optional Workload extension: benchmarks that can drop
// partially-acquired work in flight (a sample cut mid-burst) report the
// cumulative loss, in units of the workload's own progress counter.
// Device.Metrics surfaces it as "lost_work" on scheme-bearing runs.
type LostWorker interface {
	LostWork() float64
}

// Device couples a Profile with a Workload and tracks the on/off statistics
// the evaluation reports (latency, on-time, power-cycle lengths).
type Device struct {
	Prof Profile
	WL   Workload
	// Scheme, when non-nil, is the checkpoint backup/restore strategy the
	// device runs: its trigger policy is consulted once per tick while the
	// workload runs, backups suspend the workload for the scheme's burst,
	// and a saved image adds the scheme's restore burst after each boot.
	// A nil Scheme (the default, and what the "none" config builds) is
	// the legacy flat-boot device with no per-tick policy cost. Set it
	// before the first Step and never after.
	Scheme ckpt.Scheme

	state    State
	bootLeft float64

	// Checkpoint-burst bookkeeping; untouched when Scheme is nil.
	phaseLeft float64 // remaining seconds of the Backing/Restoring burst
	phaseI    float64 // burst current, amps
	hasCkpt   bool    // a completed image exists in non-volatile memory
	ckptAt    float64 // last backup completion (or power-on), for cadence
	// Backups and Restores count completed checkpoint bursts.
	Backups  int
	Restores int

	// FirstOn is the time the device first reached the enable voltage
	// (system latency, Table 4); −1 until it happens.
	FirstOn float64
	// OnTime accumulates powered seconds.
	OnTime float64
	// Cycles counts completed power cycles; CycleTime accumulates their
	// durations (mean cycle length is the §2.1.1 longevity measure).
	Cycles     int
	CycleTime  float64
	cycleStart float64

	// env is reused across steps so the workload's *Env view never escapes
	// to the heap on the tick path (a per-tick allocation at simulation
	// rates; workloads only read it within Step).
	env Env
	// bound caches the buffer's optional-interface lookups; a device steps
	// against one buffer for a whole run, so the per-tick type assertions
	// collapse to one pointer comparison.
	bound   buffer.Buffer
	hinter  buffer.EnableHinter
	leveler buffer.Leveler
}

// NewDevice builds a device in the Off state.
func NewDevice(prof Profile, wl Workload) *Device {
	return &Device{Prof: prof, WL: wl, FirstOn: -1}
}

// State returns the current power state.
func (d *Device) State() State { return d.state }

// Powered reports whether the device is drawing power (booting, running,
// or in a checkpoint burst).
func (d *Device) Powered() bool { return d.state != Off }

// Step advances the device by dt seconds, drawing energy from buf.
func (d *Device) Step(now, dt float64, buf buffer.Buffer) {
	if d.bound != buf {
		d.bound = buf
		d.hinter, _ = buf.(buffer.EnableHinter)
		d.leveler, _ = buf.(buffer.Leveler)
	}
	v := buf.OutputVoltage()
	if d.state == Off {
		venable := d.Prof.VEnable
		if d.hinter != nil {
			venable = d.hinter.EnableVoltage()
		}
		if v >= venable {
			d.state = Booting
			d.bootLeft = d.Prof.BootTime
			if d.FirstOn < 0 {
				d.FirstOn = now
			}
			d.cycleStart = now
		}
		return
	}
	if v <= d.Prof.VBrownout {
		d.powerLost(now)
		return
	}

	// An attached scheme's trigger preempts the workload's tick: the
	// device suspends the workload and spends this tick on the backup
	// burst instead.
	if d.state == On && d.Scheme != nil {
		d.maybeBackup(now, v, buf)
	}

	var current float64
	switch d.state {
	case Booting:
		current = d.Prof.ActiveI
		d.bootLeft -= dt
		if d.bootLeft <= 0 {
			d.finishBoot(now)
		}
	case Restoring:
		current = d.phaseI
		d.phaseLeft -= dt
		if d.phaseLeft <= 0 {
			d.Restores++
			d.turnOn(now)
		}
	case Backing:
		current = d.phaseI
		d.phaseLeft -= dt
		if d.phaseLeft <= 0 {
			d.finishBackup(now)
		}
	default: // On
		d.env = Env{
			Now:          now,
			Voltage:      v,
			VMin:         d.Prof.VBrownout,
			Capacitance:  buf.Capacitance(),
			OverheadFrac: buf.SoftwareOverheadFraction(),
			Levels:       d.leveler,
		}
		current = d.WL.Step(&d.env, dt)
	}

	need := v * current * dt
	got := buf.Draw(need)
	//lint:reactlint-ignore dtarith OnTime is a reported duty metric, never a schedule input, and the goldens pin this exact accumulation order
	d.OnTime += dt
	if got < need*(1-1e-9)-1e-15 {
		// The buffer ran dry mid-step: brownout.
		d.powerLost(now)
	}
}

// maybeBackup consults the scheme's trigger policy and, when it fires,
// suspends the workload and enters the backup burst. Only called while On
// with v above the brownout voltage.
func (d *Device) maybeBackup(now, v float64, buf buffer.Buffer) {
	st := ckpt.State{
		Now:         now,
		Voltage:     v,
		Usable:      0.5 * buf.Capacitance() * (v*v - d.Prof.VBrownout*d.Prof.VBrownout),
		SinceBackup: now - d.ckptAt,
	}
	if !d.Scheme.WillBackup(st) {
		return
	}
	bc := d.Scheme.Backup()
	d.WL.Backup(now)
	d.state = Backing
	d.phaseLeft = bc.Time
	d.phaseI = bc.I
}

// finishBoot moves a booted device to On — via the scheme's restore burst
// first when a saved image exists.
func (d *Device) finishBoot(now float64) {
	if d.Scheme != nil && d.hasCkpt {
		rc := d.Scheme.Restore()
		if rc.Time > 0 {
			d.state = Restoring
			d.phaseLeft = rc.Time
			d.phaseI = rc.I
			return
		}
		d.Restores++ // a free restore completes within the boot tick
	}
	d.turnOn(now)
}

// turnOn starts the workload and restarts the backup cadence clock.
func (d *Device) turnOn(now float64) {
	d.state = On
	d.ckptAt = now
	d.WL.PowerOn(now)
}

// finishBackup commits the image and applies the scheme's disposition:
// gate off (a controlled suspend — the image is safe, so the workload is
// not notified of a loss and the power cycle closes cleanly) or resume
// the workload where the burst left it.
func (d *Device) finishBackup(now float64) {
	d.hasCkpt = true
	d.Backups++
	d.ckptAt = now
	if d.Scheme.PowerDown() {
		d.Cycles++
		d.CycleTime += now - d.cycleStart
		d.state = Off
		return
	}
	d.state = On
}

// powerLost gates the device off and closes the current power cycle.
func (d *Device) powerLost(now float64) {
	switch d.state {
	case On, Backing:
		// A brownout mid-backup cuts the image write short: the volatile
		// state is lost exactly as in a raw brownout (any previously
		// completed image persists). The workload already saw Backup;
		// tolerating the double notification is part of its contract.
		d.WL.PowerLost(now)
	}
	if d.state != Off {
		d.Cycles++
		d.CycleTime += now - d.cycleStart
	}
	d.state = Off
}

// Metrics returns the workload's counters, augmented with the device's
// checkpoint accounting when a scheme is attached: "ckpt_backups" and
// "ckpt_restores" count completed bursts, and "lost_work" surfaces the
// workload's in-flight losses when it reports them (LostWorker). Without
// a scheme the workload's map is returned untouched, so legacy runs keep
// their exact metric key set. Like Workload.Metrics, it is read once, at
// retirement.
func (d *Device) Metrics() map[string]float64 {
	m := d.WL.Metrics()
	if d.Scheme == nil {
		return m
	}
	m["ckpt_backups"] = float64(d.Backups)
	m["ckpt_restores"] = float64(d.Restores)
	if lw, ok := d.WL.(LostWorker); ok {
		m["lost_work"] = lw.LostWork()
	}
	return m
}

// MeanCycle returns the mean uninterrupted power-cycle length, or 0 when no
// cycle has completed.
func (d *Device) MeanCycle() float64 {
	if d.Cycles == 0 {
		return 0
	}
	return d.CycleTime / float64(d.Cycles)
}
