package mcu

import (
	"math"
	"strings"
	"testing"

	"react/internal/buffer"
	"react/internal/ckpt"
)

// stubWorkload records lifecycle calls and draws a fixed current.
type stubWorkload struct {
	current  float64
	steps    int
	powerOn  int
	powerOff int
	backups  int
}

func (s *stubWorkload) Name() string { return "stub" }
func (s *stubWorkload) Step(env *Env, dt float64) float64 {
	s.steps++
	return s.current
}
func (s *stubWorkload) PowerOn(now float64)   { s.powerOn++ }
func (s *stubWorkload) PowerLost(now float64) { s.powerOff++ }
func (s *stubWorkload) Backup(now float64)    { s.backups++ }
func (s *stubWorkload) Metrics() map[string]float64 {
	return map[string]float64{"steps": float64(s.steps)}
}

func newBuf(c, v float64) *buffer.Static {
	b := buffer.NewStatic(buffer.StaticConfig{C: c, VMax: 3.6})
	b.Harvest(0.5 * c * v * v)
	return b
}

func TestDeviceStaysOffBelowEnable(t *testing.T) {
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(DefaultProfile(), wl)
	buf := newBuf(1e-3, 3.0) // below the 3.3 V enable
	for i := 0; i < 100; i++ {
		d.Step(float64(i)*1e-3, 1e-3, buf)
	}
	if d.Powered() || wl.steps > 0 {
		t.Error("device must stay gated below the enable voltage")
	}
	if d.FirstOn != -1 {
		t.Error("latency must stay unset")
	}
}

func TestDeviceBootsAtEnable(t *testing.T) {
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(DefaultProfile(), wl)
	buf := newBuf(1e-3, 3.4)
	for i := 0; i < 100; i++ {
		d.Step(float64(i)*1e-3, 1e-3, buf)
	}
	if d.State() != On {
		t.Fatalf("device state %v, want On", d.State())
	}
	if wl.powerOn != 1 {
		t.Errorf("PowerOn called %d times, want 1", wl.powerOn)
	}
	if math.Abs(d.FirstOn-0) > 1e-9 {
		t.Errorf("latency %g, want 0", d.FirstOn)
	}
	if wl.steps == 0 {
		t.Error("workload never stepped")
	}
}

func TestDeviceBrownsOutAtVMin(t *testing.T) {
	wl := &stubWorkload{current: 50e-3} // heavy load drains quickly
	d := NewDevice(DefaultProfile(), wl)
	buf := newBuf(100e-6, 3.4)
	for i := 0; i < 10000 && wl.powerOff == 0; i++ {
		d.Step(float64(i)*1e-3, 1e-3, buf)
	}
	if wl.powerOff != 1 {
		t.Fatal("workload never notified of power loss")
	}
	if d.State() != Off {
		t.Error("device must be off after brownout")
	}
	if d.Cycles != 1 {
		t.Errorf("cycles %d, want 1", d.Cycles)
	}
	if d.MeanCycle() <= 0 {
		t.Error("cycle length must be recorded")
	}
}

func TestDeviceDrawsFromBuffer(t *testing.T) {
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(DefaultProfile(), wl)
	buf := newBuf(10e-3, 3.4)
	before := buf.Stored()
	for i := 0; i < 1000; i++ {
		d.Step(float64(i)*1e-3, 1e-3, buf)
	}
	if buf.Stored() >= before {
		t.Error("running device must drain the buffer")
	}
	if d.OnTime <= 0 {
		t.Error("on-time must accumulate")
	}
}

func TestMeanCycleZeroWithoutCycles(t *testing.T) {
	d := NewDevice(DefaultProfile(), &stubWorkload{})
	if d.MeanCycle() != 0 {
		t.Error("no completed cycles, mean must be 0")
	}
}

func TestEnvUsableEnergy(t *testing.T) {
	e := &Env{Voltage: 3.3, VMin: 1.8, Capacitance: 1e-3}
	want := 0.5 * 1e-3 * (3.3*3.3 - 1.8*1.8)
	if got := e.UsableEnergy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("usable energy %g, want %g", got, want)
	}
	dead := &Env{Voltage: 1.5, VMin: 1.8, Capacitance: 1e-3}
	if dead.UsableEnergy() != 0 {
		t.Error("below VMin no energy is usable")
	}
}

func TestBootConsumesTime(t *testing.T) {
	prof := DefaultProfile()
	prof.BootTime = 50e-3
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(prof, wl)
	buf := newBuf(10e-3, 3.4)
	for i := 0; i < 30; i++ { // 30 ms < 50 ms boot
		d.Step(float64(i)*1e-3, 1e-3, buf)
	}
	if d.State() != Booting {
		t.Errorf("state %v, want Booting", d.State())
	}
	if wl.steps != 0 {
		t.Error("workload must not run during boot")
	}
}

// TestDefaultProfileValues pins the paper's testbed envelope.
func TestDefaultProfileValues(t *testing.T) {
	p := DefaultProfile()
	if p.VEnable != 3.3 || p.VBrownout != 1.8 {
		t.Errorf("operating envelope %g..%g, want 1.8..3.3", p.VBrownout, p.VEnable)
	}
	if p.ActiveI != 1.5e-3 {
		t.Errorf("active current %g, want 1.5 mA", p.ActiveI)
	}
}

// hintBuf wraps a static buffer with a custom enable voltage, exercising
// the EnableHinter hook (the Dewdrop mechanism).
type hintBuf struct {
	*buffer.Static
	enable float64
}

func (h hintBuf) EnableVoltage() float64 { return h.enable }

func TestDeviceHonoursEnableHint(t *testing.T) {
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(DefaultProfile(), wl)
	buf := hintBuf{Static: newBuf(1e-3, 2.5), enable: 2.2}
	// 2.5 V is below the default 3.3 V enable but above the 2.2 V hint.
	d.Step(0, 1e-3, buf)
	if !d.Powered() {
		t.Error("device must honour the buffer's enable hint")
	}
	d2 := NewDevice(DefaultProfile(), &stubWorkload{})
	d2.Step(0, 1e-3, newBuf(1e-3, 2.5))
	if d2.Powered() {
		t.Error("without a hint the platform default applies")
	}
}

func TestNamedProfile(t *testing.T) {
	def, err := NamedProfile("")
	if err != nil || def != DefaultProfile() {
		t.Errorf("empty name must be the default profile (err %v)", err)
	}
	deg, err := NamedProfile("degraded")
	if err != nil {
		t.Fatal(err)
	}
	if deg.SleepI <= def.SleepI || deg.BootTime <= def.BootTime {
		t.Errorf("degraded profile must sleep hungrier and boot slower: %+v", deg)
	}
	if deg.VEnable != def.VEnable || deg.VBrownout != def.VBrownout {
		t.Error("degradation must not move the power-gate envelope")
	}
	if _, err := NamedProfile("overclocked"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestProfileNamesEnumerate(t *testing.T) {
	names := ProfileNames()
	if len(names) < 2 || names[0] != "default" {
		t.Fatalf("ProfileNames() = %v", names)
	}
	for _, n := range names {
		if _, err := NamedProfile(n); err != nil {
			t.Errorf("listed profile %q does not build: %v", n, err)
		}
	}
	// Unknown-profile errors enumerate the registry.
	_, err := NamedProfile("overclocked")
	if err == nil || !strings.Contains(err.Error(), "default, degraded") {
		t.Errorf("error must list known profiles, got %v", err)
	}
}

func TestDeviceODABSuspendsBeforeBrownout(t *testing.T) {
	wl := &stubWorkload{current: 2e-3}
	d := NewDevice(DefaultProfile(), wl)
	d.Scheme, _ = ckpt.Build(ckpt.Config{Scheme: "odab"})
	buf := newBuf(1e-3, 3.5)
	sawBacking := false
	var now float64
	for i := 0; i < 5000 && d.State() != Off || i == 0; i++ {
		now = float64(i) * 1e-3
		d.Step(now, 1e-3, buf)
		if d.State() == Backing {
			sawBacking = true
		}
	}
	if !sawBacking {
		t.Fatal("odab never entered the backup burst")
	}
	if d.Backups != 1 {
		t.Fatalf("Backups = %d, want 1 (one all-backup per cycle)", d.Backups)
	}
	if wl.backups != 1 {
		t.Errorf("workload saw %d Backup calls, want 1", wl.backups)
	}
	if wl.powerOff != 0 {
		t.Errorf("a controlled suspend must not notify PowerLost (got %d)", wl.powerOff)
	}
	if buf.OutputVoltage() <= DefaultProfile().VBrownout {
		t.Error("odab must park above the brownout voltage, not ride it down")
	}
	if d.Cycles != 1 {
		t.Errorf("the suspend must close the power cycle: Cycles = %d", d.Cycles)
	}

	// Recharge: the next cycle boots, pays the restore burst, then runs.
	buf.Harvest(8e-3)
	sawRestoring := false
	for i := 0; i < 1000; i++ {
		d.Step(now+float64(i+1)*1e-3, 1e-3, buf)
		if d.State() == Restoring {
			sawRestoring = true
		}
		if d.State() == On {
			break
		}
	}
	if !sawRestoring {
		t.Error("a saved image must add a restore burst after boot")
	}
	if d.Restores != 1 {
		t.Errorf("Restores = %d, want 1", d.Restores)
	}
	if wl.powerOn != 2 {
		t.Errorf("workload powered on %d times, want 2", wl.powerOn)
	}
}

func TestDevicePeriodicBackupResumes(t *testing.T) {
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(DefaultProfile(), wl)
	d.Scheme, _ = ckpt.Build(ckpt.Config{Scheme: "periodic", Interval: 0.2})
	buf := newBuf(10e-3, 3.5)
	for i := 0; i < 1000; i++ { // 1 s: boot + ~2-3 snapshot cycles
		d.Step(float64(i)*1e-3, 1e-3, buf)
	}
	if d.Backups < 2 {
		t.Fatalf("Backups = %d, want several snapshots over 1 s at 0.2 s cadence", d.Backups)
	}
	if d.State() != On {
		t.Errorf("periodic snapshots must resume: state %v", d.State())
	}
	if d.Cycles != 0 || wl.powerOff != 0 {
		t.Errorf("no power cycle may close (Cycles %d, PowerLost %d)", d.Cycles, wl.powerOff)
	}
	if wl.backups != d.Backups {
		t.Errorf("workload saw %d Backup calls for %d backups", wl.backups, d.Backups)
	}
	if wl.powerOn != 1 {
		t.Errorf("workload powered on %d times, want 1", wl.powerOn)
	}
}

func TestDeviceMetricsMergeSchemeCounters(t *testing.T) {
	wl := &stubWorkload{current: 1e-3}
	d := NewDevice(DefaultProfile(), wl)
	m := d.Metrics()
	if _, ok := m["ckpt_backups"]; ok {
		t.Error("a scheme-less device must not add checkpoint metrics")
	}
	d.Scheme, _ = ckpt.Build(ckpt.Config{Scheme: "periodic"})
	d.Backups, d.Restores = 3, 2
	m = d.Metrics()
	if m["ckpt_backups"] != 3 || m["ckpt_restores"] != 2 {
		t.Errorf("scheme counters not merged: %v", m)
	}
	if m["steps"] != float64(wl.steps) {
		t.Error("workload counters must pass through")
	}
}
