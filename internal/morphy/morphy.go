// Package morphy implements the Morphy baseline (Yang et al., SenSys'21):
// a unified buffer of identical capacitors joined by a full switching
// network, reconfigurable in software across a ladder of series/parallel
// partitions.
//
// Unlike REACT's isolated banks, the whole array is one electrical network:
// every reconfiguration places capacitors (or series chains) at different
// potentials in parallel, and the equalizing current dissipates stored
// energy in the switches — the loss mechanism the paper analyses in §3.3.1
// and measures in §5.5. This package tracks per-capacitor charge, so those
// losses fall out of the charge-sharing physics exactly.
package morphy

import (
	"react/internal/buffer"
	"react/internal/circuit"
)

// Config describes a Morphy array.
type Config struct {
	// NumCaps identical capacitors of UnitC farads each.
	NumCaps int
	UnitC   float64
	// LeakI is per-capacitor leakage at VRated.
	LeakI  float64
	VRated float64
	// Partitions is the ladder of configurations in increasing equivalent
	// capacitance. Each partition lists series-chain lengths; the chains
	// are connected in parallel. Chain lengths must sum to NumCaps.
	Partitions [][]int
	// VHigh, VLow are the controller thresholds; VMax is the rail clip.
	VHigh, VLow, VMax float64
	// FabricEfficiency is the fraction of incoming charge that survives
	// the trip through the switching network. Unlike REACT's two ideal
	// diodes, every Morphy capacitor sits behind series power switches in
	// a fully connected fabric, and the design charges through charge-pump
	// restructuring; the original prototype reports meaningful conduction
	// loss on top of reconfiguration loss. Default 0.85.
	FabricEfficiency float64
	// PollHz is the controller polling rate. Morphy's controller is a
	// separate, independently powered microcontroller (the paper powers it
	// over USB), so it polls whether or not the main device is on.
	PollHz float64
}

// DefaultConfig mirrors the paper's Morphy implementation: eight 2 mF
// electrolytic capacitors (≈25.2 µA leakage at 6.3 V, derated to typical),
// eleven configurations spanning 0.25–16 mF.
func DefaultConfig() Config {
	return Config{
		NumCaps: 8,
		UnitC:   2e-3,
		LeakI:   25.2e-6 * 0.05,
		VRated:  6.3,
		Partitions: [][]int{
			{8},                      // 0.25 mF
			{4, 4},                   // 1 mF
			{3, 3, 2},                // 2.33 mF
			{4, 2, 2},                // 2.5 mF
			{2, 2, 2, 2},             // 4 mF
			{3, 2, 2, 1},             // 4.67 mF
			{3, 3, 1, 1},             // 5.33 mF
			{2, 2, 2, 1, 1},          // 7 mF
			{2, 2, 1, 1, 1, 1},       // 10 mF
			{2, 1, 1, 1, 1, 1, 1},    // 13 mF
			{1, 1, 1, 1, 1, 1, 1, 1}, // 16 mF
		},
		VHigh:            3.5,
		VLow:             1.9,
		VMax:             3.6,
		PollHz:           10,
		FabricEfficiency: 0.78,
	}
}

// Buffer is a Morphy array. It implements buffer.Buffer and buffer.Leveler.
type Buffer struct {
	cfg     Config
	caps    []*circuit.Capacitor
	chains  []*circuit.Chain
	nodes   []circuit.Node // chains as circuit nodes; rebuilt with chains
	idx     int            // current partition index
	ledger  buffer.Ledger
	poll    float64
	holdoff int // polls remaining before another reconfiguration is allowed
}

var (
	_ buffer.Buffer  = (*Buffer)(nil)
	_ buffer.Leveler = (*Buffer)(nil)
)

// New builds a Morphy buffer. It panics if a partition does not cover
// exactly NumCaps capacitors (a configuration bug, not a runtime state).
func New(cfg Config) *Buffer {
	for _, p := range cfg.Partitions {
		total := 0
		for _, m := range p {
			total += m
		}
		if total != cfg.NumCaps {
			panic("morphy: partition does not cover all capacitors")
		}
	}
	b := &Buffer{cfg: cfg}
	for i := 0; i < cfg.NumCaps; i++ {
		b.caps = append(b.caps, &circuit.Capacitor{
			C: cfg.UnitC, LeakI: cfg.LeakI, VRated: cfg.VRated,
		})
	}
	b.rebuild()
	if cfg.PollHz > 0 {
		b.poll = 1 / cfg.PollHz
	}
	return b
}

// rebuild reconstructs the chain list for the current partition. Each
// configuration starts its assignment at a different capacitor (rotating by
// the partition index): the fixed switch fabric's configurations do not
// nest, so stepping the ladder reshuffles which capacitors share a chain —
// and reshuffling charged capacitors into new chains is where the §3.3.1
// dissipation comes from.
func (b *Buffer) rebuild() {
	part := b.cfg.Partitions[b.idx]
	b.chains = b.chains[:0]
	at := b.idx
	n := len(b.caps)
	for _, m := range part {
		caps := make([]*circuit.Capacitor, m)
		for i := 0; i < m; i++ {
			caps[i] = b.caps[(at+i)%n]
		}
		at += m
		b.chains = append(b.chains, circuit.NewChain(caps...))
	}
	b.nodes = b.nodes[:0]
	for _, ch := range b.chains {
		b.nodes = append(b.nodes, ch)
	}
}

// Name implements buffer.Buffer.
func (b *Buffer) Name() string { return "Morphy" }

// equalize relaxes the parallel chain network, charging any imbalance to
// the switch-loss ledger.
func (b *Buffer) equalize() {
	_, loss := circuit.EqualizeParallel(b.nodes...)
	b.ledger.SwitchLoss += loss
}

// Harvest implements buffer.Buffer: charge splits across the paralleled
// chains in proportion to chain capacitance (they sit at a common rail),
// after paying the fabric conduction loss.
func (b *Buffer) Harvest(dE float64) {
	if dE <= 0 {
		return
	}
	b.ledger.Harvested += dE
	if eff := b.cfg.FabricEfficiency; eff > 0 && eff < 1 {
		b.ledger.SwitchLoss += dE * (1 - eff)
		dE *= eff
	}
	var total float64
	for _, ch := range b.chains {
		total += ch.Capacitance()
	}
	if total == 0 {
		b.ledger.Clipped += dE
		return
	}
	for _, ch := range b.chains {
		circuit.StoreEnergy(ch, dE*ch.Capacitance()/total, 0)
	}
	b.clip()
}

// Draw implements buffer.Buffer. The chains sit in parallel, so load
// current flows from whichever chain still holds charge; the proportional
// split is retried so an imbalanced (drained) chain does not starve the
// load while its neighbours remain charged.
func (b *Buffer) Draw(dE float64) float64 {
	var total float64
	for _, ch := range b.chains {
		total += ch.Capacitance()
	}
	if total == 0 {
		return 0
	}
	remaining := dE
	for iter := 0; iter < 4 && remaining > 1e-18; iter++ {
		var got float64
		for _, ch := range b.chains {
			got += circuit.DrawEnergy(ch, remaining*ch.Capacitance()/total)
		}
		remaining -= got
		if got == 0 {
			break
		}
	}
	consumed := dE - remaining
	b.ledger.Consumed += consumed
	return consumed
}

// OutputVoltage implements buffer.Buffer: the common rail voltage. The
// chains are kept equalized, so the capacitance-weighted mean is exact in
// steady state.
func (b *Buffer) OutputVoltage() float64 {
	var qc, c float64
	for _, ch := range b.chains {
		cc := ch.Capacitance()
		qc += cc * ch.Voltage()
		c += cc
	}
	if c == 0 {
		return 0
	}
	return qc / c
}

// Stored implements buffer.Buffer.
func (b *Buffer) Stored() float64 {
	var e float64
	for _, c := range b.caps {
		e += c.Energy()
	}
	return e
}

// Capacitance implements buffer.Buffer.
func (b *Buffer) Capacitance() float64 {
	var c float64
	for _, ch := range b.chains {
		c += ch.Capacitance()
	}
	return c
}

// clip enforces the rail overvoltage limit by discarding terminal charge.
func (b *Buffer) clip() {
	for _, ch := range b.chains {
		v := ch.Voltage()
		if b.cfg.VMax > 0 && v > b.cfg.VMax {
			before := ch.Energy()
			ch.AddCharge(-(v - b.cfg.VMax) * ch.Capacitance())
			b.ledger.Clipped += before - ch.Energy()
		}
	}
}

// Tick implements buffer.Buffer. Morphy's controller is externally powered,
// so polling proceeds regardless of deviceOn.
func (b *Buffer) Tick(now, dt float64, deviceOn bool) {
	b.equalize()
	for _, c := range b.caps {
		b.ledger.Leaked += c.Leak(dt)
	}
	b.clip()
	b.poll -= dt
	if b.poll <= 0 {
		b.poll += 1 / b.cfg.PollHz
		b.controllerPoll()
	}
}

// controllerPoll steps the partition ladder: up on overvoltage (more
// capacitance to absorb surplus), down on undervoltage (less capacitance to
// boost the rail). Every step reshuffles charged capacitors into new chains
// and pays the equalization loss.
//
// A reconfiguration holds off further steps for several polls: an expansion
// necessarily pulls the rail down (charge conservation across a larger
// equivalent capacitance), and reacting to that self-induced sag with an
// immediate contraction would oscillate the array, dissipating the buffer
// in the switches within seconds.
func (b *Buffer) controllerPoll() {
	if b.holdoff > 0 {
		b.holdoff--
		return
	}
	v := b.OutputVoltage()
	switch {
	case v >= b.cfg.VHigh && b.idx < len(b.cfg.Partitions)-1:
		b.idx++
		b.rebuild()
		b.equalize()
		b.holdoff = 10
	case v <= b.cfg.VLow && b.idx > 0:
		b.idx--
		b.rebuild()
		b.equalize()
		b.holdoff = 10
	}
}

// Ledger implements buffer.Buffer.
func (b *Buffer) Ledger() *buffer.Ledger { return &b.ledger }

// SoftwareOverheadFraction implements buffer.Buffer: the controller runs on
// a separate externally powered microcontroller, costing the device nothing.
func (b *Buffer) SoftwareOverheadFraction() float64 { return 0 }

// Level implements buffer.Leveler: the current partition index.
func (b *Buffer) Level() int { return b.idx }

// MaxLevel implements buffer.Leveler.
func (b *Buffer) MaxLevel() int { return len(b.cfg.Partitions) - 1 }

// GuaranteedEnergy implements buffer.Leveler: reaching level k required the
// rail at V_high on the level k−1 partition.
func (b *Buffer) GuaranteedEnergy(level int) float64 {
	if level <= 0 {
		return 0
	}
	if level > b.MaxLevel() {
		level = b.MaxLevel()
	}
	var c float64
	for _, m := range b.cfg.Partitions[level-1] {
		c += b.cfg.UnitC / float64(m)
	}
	// Usable energy between V_high and the 1.8 V device floor.
	return 0.5 * c * (b.cfg.VHigh*b.cfg.VHigh - 1.8*1.8)
}
