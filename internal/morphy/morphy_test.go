package morphy

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestDefaultLadder(t *testing.T) {
	b := New(DefaultConfig())
	// Smallest configuration: eight 2 mF capacitors in series = 250 µF,
	// the paper's quoted Morphy minimum.
	approx(t, b.Capacitance(), 250e-6, 1e-12, "minimum configuration")
	if b.MaxLevel() != 10 {
		t.Fatalf("want 11 configurations, got %d", b.MaxLevel()+1)
	}
	// The ladder must increase monotonically up to the 16 mF maximum.
	prev := 0.0
	for i := 0; i <= b.MaxLevel(); i++ {
		b.idx = i
		b.rebuild()
		c := b.Capacitance()
		if c <= prev {
			t.Errorf("partition %d capacitance %g not increasing", i, c)
		}
		prev = c
	}
	approx(t, prev, 16e-3, 1e-12, "maximum configuration")
}

func TestBadPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("partition not covering all capacitors must panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Partitions = [][]int{{3, 3}} // only 6 of 8 caps
	New(cfg)
}

// losslessConfig disables the fabric conduction loss for tests that check
// exact storage arithmetic.
func losslessConfig() Config {
	cfg := DefaultConfig()
	cfg.FabricEfficiency = 1
	return cfg
}

func TestHarvestAndVoltage(t *testing.T) {
	b := New(losslessConfig())
	b.Harvest(0.5 * 250e-6 * 3.0 * 3.0) // energy for 3 V on 250 µF
	approx(t, b.OutputVoltage(), 3.0, 1e-9, "rail voltage after charging")
	approx(t, b.Stored(), 0.5*250e-6*9, 1e-12, "stored energy")
}

func TestFabricConductionLoss(t *testing.T) {
	b := New(DefaultConfig())
	b.Harvest(1e-3)
	wantStored := 1e-3 * b.cfg.FabricEfficiency
	approx(t, b.Stored(), wantStored, 1e-12, "fabric skims its conduction loss")
	approx(t, b.Ledger().SwitchLoss, 1e-3-wantStored, 1e-12, "loss lands in the switch ledger")
}

func TestDrawReturnsEnergy(t *testing.T) {
	b := New(losslessConfig())
	b.Harvest(1.5e-3) // 3.46 V on 250 µF, below the 3.6 V clip
	got := b.Draw(1e-3)
	approx(t, got, 1e-3, 1e-12, "draw delivers requested energy")
	got = b.Draw(10)
	approx(t, got, 0.5e-3, 1e-9, "over-draw drains the rest")
}

// TestReconfigurationDissipates is the paper's central criticism of the
// unified design: stepping a charged array between partitions loses stored
// energy to equalizing currents.
func TestReconfigurationDissipates(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg)
	// Charge the full-parallel configuration, then walk the ladder down.
	b.idx = b.MaxLevel()
	b.rebuild()
	b.Harvest(0.5 * 16e-3 * 3.4 * 3.4)
	before := b.Stored()
	lossBefore := b.Ledger().SwitchLoss
	for b.idx > 0 {
		b.idx--
		b.rebuild()
		b.equalize()
	}
	if b.Ledger().SwitchLoss <= lossBefore {
		t.Error("walking the ladder must dissipate energy in the switches")
	}
	if b.Stored() >= before {
		t.Error("stored energy must fall across reconfigurations")
	}
	// The loss must be substantial — this is why Morphy underperforms.
	frac := (before - b.Stored()) / before
	if frac < 0.10 {
		t.Errorf("ladder walk lost only %.1f%% — expected significant dissipation", frac*100)
	}
}

// TestUniformChargeStepIsLossless: from a cold start, the first ladder step
// {8} → {4,4} splits a uniformly charged chain into two identical chains at
// the same terminal voltage, which costs nothing. Losses appear once
// asymmetric partitions create unequal chain voltages.
func TestUniformChargeStepIsLossless(t *testing.T) {
	b := New(losslessConfig())
	b.Harvest(1e-3) // uniform per-cap charge in {8}
	b.idx = 1       // {4,4}
	b.rebuild()
	b.equalize()
	approx(t, b.Ledger().SwitchLoss, 0, 1e-12, "{8}→{4,4} with equal charge is lossless")
	// Next step {4,4} → {3,3,2} mixes chain lengths: lossy.
	b.idx = 2
	b.rebuild()
	b.equalize()
	if b.Ledger().SwitchLoss <= 0 {
		t.Error("{4,4}→{3,3,2} must dissipate")
	}
}

func TestControllerStepsUpOnOvervoltage(t *testing.T) {
	b := New(DefaultConfig())
	start := b.Level()
	for i := 0; i < 300000 && b.Level() == start; i++ {
		b.Harvest(30e-3 * 1e-3)
		b.Tick(float64(i)*1e-3, 1e-3, false) // controller is externally powered
	}
	if b.Level() != start+1 {
		t.Fatalf("controller did not step up under surplus power (level %d)", b.Level())
	}
}

func TestControllerStepsDownOnUndervoltage(t *testing.T) {
	b := New(DefaultConfig())
	b.idx = 4 // 4 mF
	b.rebuild()
	b.Harvest(0.5 * 4e-3 * 2.2 * 2.2)
	for i := 0; i < 300000 && b.Level() == 4; i++ {
		b.Draw(10e-3 * 1e-3)
		b.Tick(float64(i)*1e-3, 1e-3, true)
	}
	if b.Level() != 3 {
		t.Fatalf("controller did not step down under deficit (level %d)", b.Level())
	}
}

func TestGuaranteedEnergyMonotonic(t *testing.T) {
	b := New(DefaultConfig())
	prev := -1.0
	for lvl := 0; lvl <= b.MaxLevel(); lvl++ {
		g := b.GuaranteedEnergy(lvl)
		if g < prev {
			t.Errorf("guarantee not monotonic at level %d: %g < %g", lvl, g, prev)
		}
		prev = g
	}
}

func TestClipAtVMax(t *testing.T) {
	b := New(DefaultConfig())
	for i := 0; i < 2000; i++ {
		b.Harvest(50e-3 * 1e-3)
		// No ticks: controller never expands, so the rail must clip.
	}
	if v := b.OutputVoltage(); v > b.cfg.VMax+1e-9 {
		t.Errorf("rail %g V exceeds VMax %g V", v, b.cfg.VMax)
	}
	if b.Ledger().Clipped <= 0 {
		t.Error("surplus must be clipped")
	}
}

// TestEnergyConservation checks the ledger balances over a random schedule.
func TestEnergyConservation(t *testing.T) {
	f := func(seed uint8) bool {
		b := New(DefaultConfig())
		s := uint64(seed)*0x9e3779b9 + 7
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := 0; i < 30000; i++ {
			b.Harvest(next() * 30e-3 * 1e-3)
			b.Draw(next() * 10e-3 * 1e-3)
			b.Tick(float64(i)*1e-3, 1e-3, true)
		}
		l := b.Ledger()
		in := l.Harvested
		out := l.Consumed + l.Clipped + l.Leaked + l.SwitchLoss + l.Overhead + b.Stored()
		return math.Abs(in-out) <= 1e-9*(1+in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "Morphy" {
		t.Error("name")
	}
}
