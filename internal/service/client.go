package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"react/internal/explore"
	"react/internal/obs"
)

// DefaultRequestTimeout bounds each HTTP request a Client issues unless
// WithRequestTimeout overrides it. Every request is individually bounded:
// a hung or stalled daemon fails the call instead of pinning it forever
// (Wait's polling loop then surfaces the error). The caller's context can
// always impose a shorter deadline.
const DefaultRequestTimeout = 30 * time.Second

// Client talks to a reactd server. Create with Dial; the zero value is not
// usable. A Client is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	reqTimeout time.Duration // per-request bound; <= 0 = none
}

// DialOption configures a Client at Dial time.
type DialOption func(*Client)

// WithRequestTimeout sets the per-request timeout (DefaultRequestTimeout
// otherwise). Zero or negative means no per-request bound — only the
// caller's context limits a call.
func WithRequestTimeout(d time.Duration) DialOption {
	return func(c *Client) { c.reqTimeout = d }
}

// Dial validates the base URL ("http://host:port") and probes the server's
// /metrics endpoint to fail fast on a wrong address. It is
// DialContext(context.Background(), ...) for callers with no context of
// their own; anything holding a cancellable context should pass it through
// DialContext so an interrupted caller also abandons the probe.
func Dial(baseURL string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), baseURL, opts...)
}

// DialContext is Dial bounded by the caller's context: the liveness probe
// runs under ctx (plus the client's per-request timeout, so an unbounded
// context still cannot pin the dial on a stalled daemon).
func DialContext(ctx context.Context, baseURL string, opts ...DialOption) (*Client, error) {
	c, err := newPeerClient(baseURL, DefaultRequestTimeout)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(c)
	}
	probeCtx := ctx
	if _, ok := ctx.Deadline(); !ok && c.reqTimeout <= 0 {
		// Neither the caller nor the per-request bound limits the probe:
		// fall back to the default so a stalled daemon cannot pin the dial.
		var cancel context.CancelFunc
		probeCtx, cancel = context.WithTimeout(ctx, DefaultRequestTimeout)
		defer cancel()
	}
	if _, err := c.Metrics(probeCtx); err != nil {
		return nil, fmt.Errorf("service: no reactd at %s: %w", c.base, err)
	}
	return c, nil
}

// newPeerClient builds a Client without the liveness probe — peers come
// and go, and cluster mode must start (and degrade gracefully) with a
// peer down, not refuse to.
func newPeerClient(baseURL string, timeout time.Duration) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("service: parsing %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("service: %q: want an http(s) base URL", baseURL)
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: &http.Client{}, reqTimeout: timeout}, nil
}

// do issues a request and decodes the JSON response (or the error
// envelope) into out. Each request is bounded by the client's per-request
// timeout on top of (never instead of) the caller's context.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	if c.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's span context (if any): the receiving server
	// parents the submission's root span under it, so cross-node work
	// stays one trace.
	if sc, ok := obs.SpanContextFromContext(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("service: %s %s: %s", method, path, eb.Error)
		}
		return fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Scenarios lists the server's registry.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var out struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	if err := c.do(ctx, http.MethodGet, "/scenarios", nil, &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}

// Metrics reads the server's cache/queue/throughput counters (the JSON
// report; GET /metrics itself now serves Prometheus text by default).
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics.json", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// TraceSpans reads the server's raw (node-local, flat) spans for a trace
// id — the cross-peer merge primitive behind the /trace view endpoints.
func (c *Client) TraceSpans(ctx context.Context, traceID string) (*TraceResponse, error) {
	var tr TraceResponse
	if err := c.do(ctx, http.MethodGet, "/traces/"+url.PathEscape(traceID), nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// viewTrace fetches one submission's assembled span tree.
func (c *Client) viewTrace(ctx context.Context, kind, id string) (*TraceResponse, error) {
	var tr TraceResponse
	if err := c.do(ctx, http.MethodGet, "/"+kind+"/"+url.PathEscape(id)+"/trace", nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// RunAsync submits a run and returns a handle immediately; the server
// simulates in the background (or serves the result cache). Poll or Wait
// the handle for results.
func (c *Client) RunAsync(ctx context.Context, req RunRequest) (*RemoteRun, error) {
	var st RunStatus
	if err := c.do(ctx, http.MethodPost, "/runs", req, &st); err != nil {
		return nil, err
	}
	return &RemoteRun{c: c, ID: st.ID, Submitted: &st}, nil
}

// Run submits and waits: the synchronous convenience over RunAsync. A
// failed or cancelled run returns the final status alongside an error.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunStatus, error) {
	rr, err := c.RunAsync(ctx, req)
	if err != nil {
		return nil, err
	}
	return rr.Wait(ctx)
}

// RemoteRun is a submitted run's handle.
type RemoteRun struct {
	c  *Client
	ID string
	// Submitted is the submission response — in particular its Cached and
	// Coalesced flags, which later polls do not repeat.
	Submitted *RunStatus
}

// Poll fetches the run's current status; completed cells carry results
// while the rest are still simulating.
func (r *RemoteRun) Poll(ctx context.Context) (*RunStatus, error) {
	var st RunStatus
	if err := r.c.do(ctx, http.MethodGet, "/runs/"+url.PathEscape(r.ID), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel asks the server to stop the run (in-flight cells finish; queued
// cells are dropped).
func (r *RemoteRun) Cancel(ctx context.Context) error {
	return r.c.do(ctx, http.MethodDelete, "/runs/"+url.PathEscape(r.ID), nil, nil)
}

// Trace fetches the run's span tree, merged across cluster peers.
func (r *RemoteRun) Trace(ctx context.Context) (*TraceResponse, error) {
	return r.c.viewTrace(ctx, "runs", r.ID)
}

// Wait polls until the run reaches a terminal state. A failed or cancelled
// run returns its final status alongside an error.
func (r *RemoteRun) Wait(ctx context.Context) (*RunStatus, error) {
	if r.Submitted != nil && Terminal(r.Submitted.Status) {
		return r.finish(r.Submitted)
	}
	delay := 10 * time.Millisecond
	for {
		st, err := r.Poll(ctx)
		if err != nil {
			return nil, err
		}
		if Terminal(st.Status) {
			return r.finish(st)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < 500*time.Millisecond {
			delay += delay / 2
		}
	}
}

func (r *RemoteRun) finish(st *RunStatus) (*RunStatus, error) {
	if st.Status == StatusDone {
		return st, nil
	}
	return st, fmt.Errorf("service: run %s %s: %s", st.ID, st.Status, st.Error)
}

// SweepAsync submits a sweep and returns a handle immediately; the server
// fans the seed × dt × buffer grid out in the background, sharing cells
// with the cache and any overlapping work in flight. Poll or Wait the
// handle for per-cell results and the final summary.
func (c *Client) SweepAsync(ctx context.Context, req SweepRequest) (*RemoteSweep, error) {
	var st SweepStatus
	if err := c.do(ctx, http.MethodPost, "/sweeps", req, &st); err != nil {
		return nil, err
	}
	return &RemoteSweep{c: c, ID: st.ID, Submitted: &st}, nil
}

// Sweep submits and waits: the synchronous convenience over SweepAsync. A
// failed or cancelled sweep returns the final status alongside an error.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepStatus, error) {
	rs, err := c.SweepAsync(ctx, req)
	if err != nil {
		return nil, err
	}
	return rs.Wait(ctx)
}

// RemoteSweep is a submitted sweep's handle.
type RemoteSweep struct {
	c  *Client
	ID string
	// Submitted is the submission response. Its CachedCells/
	// CoalescedCells/NewCells accounting is a property of the submission
	// and immutable, so later polls repeat the same values.
	Submitted *SweepStatus
}

// Poll fetches the sweep's current status; completed cells carry results
// while the rest are still simulating, and the summary rows appear once
// the sweep is done.
func (r *RemoteSweep) Poll(ctx context.Context) (*SweepStatus, error) {
	var st SweepStatus
	if err := r.c.do(ctx, http.MethodGet, "/sweeps/"+url.PathEscape(r.ID), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel asks the server to stop the sweep. Cells shared with other live
// work keep simulating; cells only this sweep wanted are dropped.
func (r *RemoteSweep) Cancel(ctx context.Context) error {
	return r.c.do(ctx, http.MethodDelete, "/sweeps/"+url.PathEscape(r.ID), nil, nil)
}

// Trace fetches the sweep's span tree, merged across cluster peers.
func (r *RemoteSweep) Trace(ctx context.Context) (*TraceResponse, error) {
	return r.c.viewTrace(ctx, "sweeps", r.ID)
}

// Wait polls until the sweep reaches a terminal state. A failed or
// cancelled sweep returns its final status alongside an error.
func (r *RemoteSweep) Wait(ctx context.Context) (*SweepStatus, error) {
	if r.Submitted != nil && Terminal(r.Submitted.Status) {
		return r.finish(r.Submitted)
	}
	delay := 10 * time.Millisecond
	for {
		st, err := r.Poll(ctx)
		if err != nil {
			return nil, err
		}
		if Terminal(st.Status) {
			return r.finish(st)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < 500*time.Millisecond {
			delay += delay / 2
		}
	}
}

func (r *RemoteSweep) finish(st *SweepStatus) (*SweepStatus, error) {
	if st.Status == StatusDone {
		return st, nil
	}
	return st, fmt.Errorf("service: sweep %s %s: %s", st.ID, st.Status, st.Error)
}

// ExploreAsync submits a design-space exploration and returns a handle
// immediately; the server probes the space in the background, every point
// attached to the shared content-addressed cell cache. Poll or Wait the
// handle for partial cells and the assembled result.
func (c *Client) ExploreAsync(ctx context.Context, space *explore.Space) (*RemoteExploration, error) {
	var st ExploreStatus
	if err := c.do(ctx, http.MethodPost, "/explorations", space, &st); err != nil {
		return nil, err
	}
	return &RemoteExploration{c: c, ID: st.ID, Submitted: &st}, nil
}

// Explore submits and waits: the synchronous convenience over
// ExploreAsync. The returned status carries the exploration's
// explore.Result — bit-identical to running the same space locally — or an
// error for a failed or cancelled exploration.
func (c *Client) Explore(ctx context.Context, space *explore.Space) (*ExploreStatus, error) {
	re, err := c.ExploreAsync(ctx, space)
	if err != nil {
		return nil, err
	}
	return re.Wait(ctx)
}

// RemoteExploration is a submitted exploration's handle.
type RemoteExploration struct {
	c  *Client
	ID string
	// Submitted is the submission response; cache accounting grows on
	// later polls as the strategy attaches further batches.
	Submitted *ExploreStatus
}

// Poll fetches the exploration's current status: probed cells carry
// results as they complete, and Result appears once the strategy drains.
func (r *RemoteExploration) Poll(ctx context.Context) (*ExploreStatus, error) {
	var st ExploreStatus
	if err := r.c.do(ctx, http.MethodGet, "/explorations/"+url.PathEscape(r.ID), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel asks the server to stop the exploration. Cells shared with other
// live work keep simulating; cells only this exploration wanted are
// dropped.
func (r *RemoteExploration) Cancel(ctx context.Context) error {
	return r.c.do(ctx, http.MethodDelete, "/explorations/"+url.PathEscape(r.ID), nil, nil)
}

// Trace fetches the exploration's span tree, merged across cluster peers
// — a cross-node exploration renders as one tree.
func (r *RemoteExploration) Trace(ctx context.Context) (*TraceResponse, error) {
	return r.c.viewTrace(ctx, "explorations", r.ID)
}

// Wait polls until the exploration reaches a terminal state. A failed or
// cancelled exploration returns its final status alongside an error.
func (r *RemoteExploration) Wait(ctx context.Context) (*ExploreStatus, error) {
	if r.Submitted != nil && Terminal(r.Submitted.Status) {
		return r.finish(r.Submitted)
	}
	delay := 10 * time.Millisecond
	for {
		st, err := r.Poll(ctx)
		if err != nil {
			return nil, err
		}
		if Terminal(st.Status) {
			return r.finish(st)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < 500*time.Millisecond {
			delay += delay / 2
		}
	}
}

func (r *RemoteExploration) finish(st *ExploreStatus) (*ExploreStatus, error) {
	if st.Status == StatusDone {
		return st, nil
	}
	return st, fmt.Errorf("service: exploration %s %s: %s", st.ID, st.Status, st.Error)
}
