package service

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"react/internal/scenario"
)

// This file is the cache-boundary suite for the cell-granular store:
// eviction at exactly the configured capacities, DELETE of views whose
// cells are shared with live work, and the coalescing race where
// overlapping submissions must collapse to one simulation per cell.

// fastSpec3 is fastSpec with a third buffer, for overlap tests.
const fastSpec3 = `{
	"name": "svc-fast3",
	"trace": {"gen": "steady", "mean": 0.01, "duration": 30},
	"workload": {"bench": "DE"},
	"buffers": [{"preset": "770 µF"}, {"preset": "10 mF"}, {"preset": "REACT"}]
}`

// blockerSpec returns a one-cell unfingerprintable spec whose only buffer
// pins a worker inside its constructor until release — the deterministic
// way to keep later submissions queued.
func blockerSpec(started chan<- int, release <-chan struct{}) *scenario.Spec {
	s := blockingSpec(2, started, release)
	s.Buffers = s.Buffers[1:] // drop the preset; keep only the blocker
	return s
}

// TestCellEvictionAtExactCapacity pins the cell-LRU bound: a cache filled
// to exactly CacheCells evicts nothing, one cell past it evicts the least
// recently used, and evicted addresses re-simulate on resubmission.
func TestCellEvictionAtExactCapacity(t *testing.T) {
	_, c := newTestService(t, Config{CacheCells: 2})
	ctx := context.Background()
	a, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c.Metrics(ctx)
	if m.CellEntries != 2 || m.CellEvictions != 0 {
		t.Fatalf("at exact capacity: entries %d evictions %d, want 2 and 0", m.CellEntries, m.CellEvictions)
	}
	// Two fresh addresses displace both cached cells.
	b := strings.Replace(fastSpec, `"duration": 30`, `"duration": 31`, 1)
	if _, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(b)}); err != nil {
		t.Fatal(err)
	}
	m, _ = c.Metrics(ctx)
	if m.CellEntries != 2 || m.CellEvictions != 2 {
		t.Errorf("past capacity: entries %d evictions %d, want 2 and 2", m.CellEntries, m.CellEvictions)
	}
	// The first run's view still serves whole-run repeats even though its
	// cells were evicted; forget it so the resubmission exercises the cell
	// index, which must miss on the evicted addresses and simulate afresh.
	if err := (&RemoteRun{c: c, ID: a.ID}).Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	misses := m.CellMisses
	st, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone {
		t.Fatalf("resubmission did not finish: %+v", st)
	}
	m, _ = c.Metrics(ctx)
	if m.CellMisses != misses+2 {
		t.Errorf("cell misses went %d -> %d on an evicted resubmission, want +2", misses, m.CellMisses)
	}
}

// TestDeleteRunningRunKeepsSweepSharedCells pins the refcounting: a run
// that coalesced onto a live sweep's in-flight cells is DELETEd, and the
// shared cells must keep simulating for the sweep.
func TestDeleteRunningRunKeepsSweepSharedCells(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 1})
	ctx := context.Background()
	started := make(chan int, 4)
	release := make(chan struct{})
	unblock := mustUnblock(t, release)
	srv.Submit(blockerSpec(started, release), scenario.RunOptions{})
	<-started // the blocker owns the only worker; everything below queues

	spec, err := scenario.ParseSpec([]byte(fastSpec))
	if err != nil {
		t.Fatal(err)
	}
	ax, err := ResolveSweepAxes(spec, &SweepRequest{Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sweep := srv.SubmitSweep(spec, ax)
	if sweep.NewCells != 4 {
		t.Fatalf("sweep scheduled %d fresh cells, want 4", sweep.NewCells)
	}

	// A plain run of the same spec coalesces per cell onto the sweep's
	// seed-1 cells.
	run := srv.Submit(spec.Clone(), scenario.RunOptions{})
	if !run.Coalesced {
		t.Fatalf("overlapping run did not coalesce: %+v", run)
	}
	// DELETE the run mid-flight: the shared cells are still wanted by the
	// live sweep and must survive.
	rr := &RemoteRun{c: c, ID: run.ID}
	if err := rr.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	unblock()

	final, err := (&RemoteSweep{c: c, ID: sweep.ID}).Wait(ctx)
	if err != nil {
		t.Fatalf("the sweep must survive the shared run's deletion: %v", err)
	}
	for _, cell := range final.Cells {
		if !cell.Done || cell.Error != "" || cell.Result == nil {
			t.Fatalf("sweep cell lost to the run's cancellation: %+v", cell)
		}
	}
	m, _ := c.Metrics(ctx)
	if want := uint64(5); m.SimsCompleted != want { // 1 blocker + 4 sweep cells
		t.Errorf("%d simulations, want %d (the deleted run must add none, the sweep must lose none)", m.SimsCompleted, want)
	}
}

// TestDeleteFinishedRunKeepsSweepSharedCells pins the forget path: DELETE
// of a completed run drops its cached cells — except ones a live sweep is
// holding, which must survive and serve later submissions.
func TestDeleteFinishedRunKeepsSweepSharedCells(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 1})
	ctx := context.Background()
	run, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan int, 4)
	release := make(chan struct{})
	unblock := mustUnblock(t, release)
	srv.Submit(blockerSpec(started, release), scenario.RunOptions{})
	<-started

	// The sweep's seed-1 cells are cache hits on the finished run's cells;
	// its seed-2 cells queue behind the blocker, keeping the sweep live.
	spec, err := scenario.ParseSpec([]byte(fastSpec))
	if err != nil {
		t.Fatal(err)
	}
	ax, err := ResolveSweepAxes(spec, &SweepRequest{Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sweep := srv.SubmitSweep(spec, ax)
	if sweep.CachedCells != 2 || sweep.NewCells != 2 {
		t.Fatalf("sweep cache disposition %d cached / %d new, want 2 / 2", sweep.CachedCells, sweep.NewCells)
	}

	if err := (&RemoteRun{c: c, ID: run.ID}).Cancel(ctx); err != nil { // DELETE the finished run
		t.Fatal(err)
	}
	// The shared cells survive the forget: a resubmission is still served
	// from the cache while the sweep lives.
	misses0, _ := c.Metrics(ctx)
	again, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Submitted.Cached {
		t.Error("cells shared with a live sweep must survive the run's deletion")
	}
	m, _ := c.Metrics(ctx)
	if m.CellMisses != misses0.CellMisses {
		t.Errorf("cell misses went %d -> %d, want unchanged", misses0.CellMisses, m.CellMisses)
	}

	unblock()
	if _, err := (&RemoteSweep{c: c, ID: sweep.ID}).Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescingRaceOneSimulationPerCell is the -race coalescing probe:
// many concurrent clients sweep overlapping buffer subsets of one spec,
// and every distinct cell must be simulated exactly once.
func TestCoalescingRaceOneSimulationPerCell(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	ctx := context.Background()
	subsets := [][]string{
		{"770 µF"}, {"10 mF"}, {"REACT"},
		{"770 µF", "10 mF"}, {"10 mF", "REACT"}, {"770 µF", "REACT"},
		{"770 µF", "10 mF", "REACT"},
	}
	const clients = 14
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		got  []*SweepStatus
	)
	for i := 0; i < clients; i++ {
		sub := subsets[i%len(subsets)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec3), Buffers: sub})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			got = append(got, st)
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d/%d clients failed, first: %v", len(errs), clients, errs[0])
	}

	// Every client that asked for a buffer saw the identical result.
	ref := map[string]float64{}
	for _, st := range got {
		for _, cell := range st.Cells {
			if cell.Result == nil {
				t.Fatalf("cell %s missing a result", cell.Buffer)
			}
			blocks := cell.Result.Metrics["blocks"]
			if prev, ok := ref[cell.Buffer]; ok && prev != blocks {
				t.Errorf("%s diverged across clients: %v vs %v", cell.Buffer, prev, blocks)
			}
			ref[cell.Buffer] = blocks
		}
	}

	m, _ := c.Metrics(ctx)
	if m.SimsCompleted != 3 {
		t.Errorf("%d simulations for 3 distinct cells across %d overlapping sweeps, want exactly 3", m.SimsCompleted, clients)
	}
	if m.CellMisses != 3 {
		t.Errorf("%d cell misses, want 3 (single flight per address)", m.CellMisses)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", m.QueueDepth)
	}
}

// TestDeleteFinishedSweepForgetsItsCells mirrors the run-forget contract
// at sweep granularity: once nothing live references the cells, DELETE
// drops them and a resubmission simulates afresh.
func TestDeleteFinishedSweepForgetsItsCells(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	st, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	rs := &RemoteSweep{c: c, ID: st.ID}
	if err := rs.Cancel(ctx); err != nil { // DELETE a finished sweep forgets it
		t.Fatal(err)
	}
	if _, err := rs.Poll(ctx); err == nil {
		t.Error("a deleted sweep must be forgotten")
	}
	again, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if again.Submitted.Cached {
		t.Error("the forgotten sweep's cells must not serve cache hits")
	}
	if _, err := (&RemoteRun{c: c, ID: again.Submitted.ID}).Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRunAndSweepNamespaces pins the path separation: a sweep id is not a
// run and vice versa.
func TestRunAndSweepNamespaces(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	sw, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sw.ID, "s") {
		t.Errorf("sweep id %q should be s-prefixed", sw.ID)
	}
	if _, err := (&RemoteRun{c: c, ID: sw.ID}).Poll(ctx); err == nil {
		t.Error("GET /runs/{sweep-id} must 404")
	}
	run, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&RemoteSweep{c: c, ID: run.ID}).Poll(ctx); err == nil {
		t.Error("GET /sweeps/{run-id} must 404")
	}
}
