package service

// Observability suite: content negotiation on /metrics, the Prometheus
// exposition contract (every series parses; the cell-sim histogram count
// tracks sims_completed exactly), progress reporting, trace trees for
// local submissions, and concurrent scrapes racing a live sweep (run
// under -race in CI).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"react/internal/explore"
	"react/internal/obs"
	"react/internal/scenario"
)

// scrapeText GETs path and returns the body and content type.
func scrapeText(t *testing.T, base, path, accept string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsExposition: /metrics serves parseable Prometheus text by
// default and the JSON report under Accept: application/json;
// /metrics.json always serves JSON; and the cell-sim histogram's count
// equals sims_completed on both formats — the invariant CI asserts
// against a live daemon.
func TestMetricsExposition(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	ctx := context.Background()

	if _, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)}); err != nil {
		t.Fatal(err)
	}

	text, ctype := scrapeText(t, c.base, "/metrics", "")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type = %q, want text exposition 0.0.4", ctype)
	}
	samples, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimsCompleted == 0 {
		t.Fatal("fixture run simulated nothing")
	}
	// The count==sims invariant only holds exactly on a quiescent server;
	// the run above is synchronous-complete, so it is quiescent here.
	if got := samples["react_cell_sim_duration_seconds_count"]; got != float64(m.SimsCompleted) {
		t.Errorf("histogram count %g != sims_completed %d", got, m.SimsCompleted)
	}
	if got := samples["react_sims_completed_total"]; got != float64(m.SimsCompleted) {
		t.Errorf("text sims counter %g != JSON sims_completed %d", got, m.SimsCompleted)
	}
	if samples["react_start_time_seconds"] <= 0 {
		t.Error("react_start_time_seconds missing or zero")
	}
	found := false
	for key := range samples {
		if strings.HasPrefix(key, "react_build_info{") {
			found = true
			if samples[key] != 1 {
				t.Errorf("%s = %g, want 1", key, samples[key])
			}
		}
	}
	if !found {
		t.Error("react_build_info series missing")
	}

	// Content negotiation: Accept: application/json flips /metrics to the
	// JSON report, and /metrics.json serves it unconditionally.
	for _, probe := range []struct{ path, accept string }{
		{"/metrics", "application/json"},
		{"/metrics.json", ""},
	} {
		body, ctype := scrapeText(t, c.base, probe.path, probe.accept)
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("GET %s (Accept %q): content type %q", probe.path, probe.accept, ctype)
		}
		var jm Metrics
		if err := json.Unmarshal([]byte(body), &jm); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", probe.path, err)
		}
		if jm.SimsCompleted != m.SimsCompleted {
			t.Errorf("GET %s: sims_completed %d, want %d", probe.path, jm.SimsCompleted, m.SimsCompleted)
		}
		if jm.StartTime.IsZero() {
			t.Errorf("GET %s: start_time missing", probe.path)
		}
		if jm.Build["go_version"] == "" {
			t.Errorf("GET %s: build info missing", probe.path)
		}
	}
}

// TestConcurrentScrapeDuringSweep races both metrics formats against a
// live sweep — the scrape path reads every counter, histogram, and
// mu-guarded gauge while the scheduler is writing them, so this test is
// only meaningful under -race (CI runs the package that way).
func TestConcurrentScrapeDuringSweep(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	ctx := context.Background()

	sw, err := c.SweepAsync(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				text, _ := scrapeText(t, c.base, "/metrics", "")
				if _, err := obs.ParsePrometheus(strings.NewReader(text)); err != nil {
					t.Errorf("mid-sweep scrape does not parse: %v", err)
					return
				}
				if _, err := c.Metrics(ctx); err != nil {
					t.Errorf("mid-sweep JSON metrics: %v", err)
					return
				}
			}
		}()
	}

	st, err := sw.Wait(ctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone {
		t.Fatalf("sweep finished %s", st.Status)
	}
}

// TestRunProgressAndTraceTree: a completed run reports full progress
// (cells done, ticks simulated or fast-forwarded) and a retrievable span
// tree — one run root whose batch spans parent the per-cell sim spans.
func TestRunProgressAndTraceTree(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	ctx := context.Background()

	r, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone {
		t.Fatalf("run finished %s", st.Status)
	}
	if st.Progress.CellsTotal != 2 || st.Progress.CellsDone != 2 {
		t.Errorf("progress %+v, want 2/2 cells", st.Progress)
	}
	if st.Progress.TicksSimulated+st.Progress.TicksFastForwarded == 0 {
		t.Error("progress reports zero ticks for a freshly simulated run")
	}
	if st.TraceID == "" {
		t.Fatal("run status carries no trace id")
	}

	tr, err := r.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != st.TraceID {
		t.Errorf("trace id %s != status trace id %s", tr.TraceID, st.TraceID)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "run" {
		t.Fatalf("trace roots %+v, want one 'run' root", tr.Roots)
	}
	root := tr.Roots[0]
	if root.Attrs["status"] != string(StatusDone) {
		t.Errorf("root status attr %q", root.Attrs["status"])
	}
	sims := 0
	for _, b := range root.Children {
		if b.Name != "batch" {
			t.Errorf("run child %q, want batch", b.Name)
			continue
		}
		for _, s := range b.Children {
			if s.Name == "sim" {
				sims++
				if s.EndUnixNs == 0 {
					t.Error("sim span never ended")
				}
			}
		}
	}
	if sims != 2 {
		t.Errorf("trace shows %d sim spans, want 2", sims)
	}

	// The raw per-node endpoint serves the same trace flat.
	raw, err := c.TraceSpans(ctx, st.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Spans) < 4 { // run + >=1 batch + 2 sims
		t.Errorf("raw trace has %d spans, want >= 4", len(raw.Spans))
	}

	// A second identical submission is a pure cache hit that returns the
	// original view — including its trace, which documents the work that
	// actually produced the cached result.
	st2, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.TraceID != st.TraceID {
		t.Errorf("cached resubmission: cached=%v trace=%q (first %q)", st2.Cached, st2.TraceID, st.TraceID)
	}
}

// TestTraceEndpointErrors: malformed and unknown ids are clean 4xxs.
func TestTraceEndpointErrors(t *testing.T) {
	_, c := newTestService(t, Config{})
	for _, path := range []string{
		"/traces/nothex",
		"/traces/00000000000000000000000000000000",
		"/runs/does-not-exist/trace",
	} {
		resp, err := http.Get(c.base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("GET %s: HTTP %d, want 4xx", path, resp.StatusCode)
		}
	}
}

// TestClusterTracePropagation is the cross-node tracing acceptance test:
// an exploration submitted to node A fans peer-owned cells to node B over
// traceparent-carrying forwards, so B's batch and sim spans land in A's
// trace — and A's /explorations/{id}/trace endpoint merges both nodes'
// fragments into one tree under one trace ID.
func TestClusterTracePropagation(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{Workers: 2})
	a, b := nodes[0], nodes[1]
	ctx := context.Background()

	// Probe seed sets until the ring lands cells on both nodes (same
	// idiom as TestClusterSweepThenExplorationZeroNewSims).
	var seeds []uint64
	var want map[string]int
	for _, base := range []uint64{1, 5, 9, 13} {
		seeds = []uint64{base, base + 1, base + 2, base + 3}
		want = ownerCounts(t, []string{a.url, b.url}, seeds)
		if want[a.url] > 0 && want[b.url] > 0 {
			break
		}
	}
	if want[a.url] == 0 || want[b.url] == 0 {
		t.Fatalf("degenerate shard split %v for every candidate seed set", want)
	}

	spec, err := scenario.ParseSpec([]byte(fastSpec))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := a.client.ExploreAsync(ctx, &explore.Space{
		Spec:    spec,
		Presets: []string{"770 µF", "REACT"},
		Seeds:   seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ex.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone {
		t.Fatalf("exploration finished %s", st.Status)
	}
	if st.TraceID == "" {
		t.Fatal("exploration status carries no trace id")
	}

	// B recorded spans under A's trace ID: the traceparent crossed the
	// peer forward, so the remote batch groups carry the originating
	// node's trace.
	rawB, err := b.client.TraceSpans(ctx, st.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	remoteSims := 0
	for _, sp := range rawB.Spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("node B span %s carries trace %s, want %s", sp.SpanID, sp.TraceID, st.TraceID)
		}
		if sp.Name == "sim" && sp.Node == b.url {
			remoteSims++
		}
	}
	if remoteSims == 0 {
		t.Fatalf("node B recorded no sim spans under A's trace (%d spans total)", len(rawB.Spans))
	}

	// The merged tree from A: one root, fragments from both nodes, and
	// the peer hop visible as a span attributed to A.
	tr, err := ex.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != st.TraceID {
		t.Errorf("trace id %s != status trace id %s", tr.TraceID, st.TraceID)
	}
	if len(tr.PeersFailed) != 0 {
		t.Errorf("peer fetch failed for %v with healthy peers", tr.PeersFailed)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "exploration" {
		t.Fatalf("merged trace roots %+v, want one 'exploration' root", tr.Roots)
	}
	nodesSeen := map[string]bool{}
	names := map[string]int{}
	var walk func(n *obs.SpanTree)
	walk = func(n *obs.SpanTree) {
		nodesSeen[n.Node] = true
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Roots[0])
	if !nodesSeen[a.url] || !nodesSeen[b.url] {
		t.Errorf("merged tree spans nodes %v, want both %s and %s", nodesSeen, a.url, b.url)
	}
	if names["peer"] == 0 {
		t.Error("merged tree shows no peer span for the cross-node fan-out")
	}
	if names["sim"] < len(seeds)*2 {
		t.Errorf("merged tree shows %d sim spans, want %d", names["sim"], len(seeds)*2)
	}
}
