package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"react/internal/explore"
	"react/internal/obs"
	"react/internal/scenario"
	"react/internal/sim"
)

// This file is the service face of the design-space exploration subsystem
// (internal/explore): POST /explorations runs a declarative explore.Space
// asynchronously, with every probed point attached to the shared
// content-addressed cell cache. Explorations therefore dedupe against each
// other, against sweeps, and against plain runs — a bisection submitted
// after a covering grid touches only cached addresses and performs zero
// new simulations. GET serves partial per-cell results while the strategy
// is still probing; the assembled result (points, bests, frontiers)
// appears when it drains.

// SubmitExplore resolves and launches an exploration, returning its
// submission view. It is the Go-level core of POST /explorations; a space
// that fails to resolve returns the error synchronously and nothing is
// tracked.
func (s *Server) SubmitExplore(sp *explore.Space) (*ExploreStatus, error) {
	return s.submitExplore(sp, obs.SpanContext{})
}

// submitExplore is SubmitExplore with the submitter's span context.
func (s *Server) submitExplore(sp *explore.Space, parent obs.SpanContext) (*ExploreStatus, error) {
	plan, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	s.explorations.Add(1)

	s.mu.Lock()
	v := s.newViewLocked("exploration", "x", plan.Base, scenario.RunOptions{}, parent)
	v.plan = plan
	v.seeds = plan.Seeds
	vctx, cancel := context.WithCancel(s.ctx)
	v.vcancel = cancel
	s.views[v.id] = v
	s.mu.Unlock()

	s.jobs.Add(1)
	go func() {
		defer s.jobs.Done()
		defer cancel()
		res, err := plan.Run(vctx, s.exploreEvaluator(v, vctx))
		s.mu.Lock()
		v.expResult, v.expErr = res, err
		s.finalizeLocked(v)
		s.mu.Unlock()
	}()
	return s.exploreStatus(v), nil
}

// exploreEvaluator adapts the shared cell cache into the exploration
// engine's batch evaluator: each probed cell is attached exactly like a
// run or sweep cell — cached, coalesced with in-flight work, or freshly
// scheduled over the global semaphore — and the batch completes when every
// attached cell does.
func (s *Server) exploreEvaluator(v *view, vctx context.Context) explore.Evaluator {
	return func(ctx context.Context, cells []explore.Cell) ([]sim.Result, error) {
		s.mu.Lock()
		if v.detached || vctx.Err() != nil {
			// The view was deleted (or the server is closing): don't attach
			// cells that could never be released.
			s.mu.Unlock()
			return nil, context.Canceled
		}
		attached := make([]*cell, len(cells))
		points := map[int]bool{}
		for i, ec := range cells {
			key := cellKey{Seed: ec.Seed, DT: resolveDT(ec.Spec, ec.Opt.DT), Buffer: ec.Spec.Buffers[0].DisplayName()}
			attached[i] = s.addCell(v, ec.Spec, 0, ec.Opt, key)
			v.points = append(v.points, ec.Point)
			points[ec.Point] = true
		}
		s.exploreCells.Add(uint64(len(cells)))
		s.explorePoints.Add(uint64(len(points)))
		s.flushPendingLocked()
		s.mu.Unlock()

		out := make([]sim.Result, len(cells))
		for i, c := range attached {
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err != "" {
				if c.err == context.Canceled.Error() {
					return nil, context.Canceled
				}
				return nil, fmt.Errorf("%s seed %d: %s", c.buffer, cells[i].Seed, c.err)
			}
			out[i] = c.res
		}
		return out, nil
	}
}

// exploreStatus snapshots an exploration view into its wire shape. Cell
// slices grow while the strategy probes, so the snapshot is taken under
// the server lock.
func (s *Server) exploreStatus(v *view) *ExploreStatus {
	s.mu.Lock()
	ncells := len(v.cells)
	cells := make([]ExploreCellStatus, ncells)
	doneBy := map[int]int{}
	for i := 0; i < ncells; i++ {
		cs := cellStatus(v.cells[i])
		cells[i] = ExploreCellStatus{
			Point:  v.points[i],
			Buffer: v.keys[i].Buffer,
			Seed:   v.keys[i].Seed,
			DT:     v.keys[i].DT,
			Done:   cs.Done,
			Error:  cs.Error,
			Result: cs.Result,
		}
		if cs.Done && cs.Error == "" {
			doneBy[v.points[i]]++
		}
	}
	res := v.expResult
	plan := v.plan
	// The status is published under both locks (finalizeLocked holds
	// Server.mu and then view.mu), so reading it here — still inside the
	// Server.mu section — keeps it consistent with the result snapshot.
	v.mu.Lock()
	st := &ExploreStatus{
		ID:             v.id,
		Scenario:       plan.Base.Name,
		Strategy:       plan.Strategy,
		TraceID:        v.tctx.TraceID.String(),
		Status:         v.status,
		Error:          v.errMsg,
		Created:        v.created,
		Progress:       progressOf(v.cells),
		Seeds:          plan.Seeds,
		TotalPoints:    len(plan.Points),
		CachedCells:    v.cachedCells,
		CoalescedCells: v.coalescedCells,
		NewCells:       v.newCells,
		Cells:          cells,
	}
	if Terminal(v.status) {
		f := v.finished
		st.Finished = &f
	}
	v.mu.Unlock()
	s.mu.Unlock()

	for _, n := range doneBy {
		if n == len(st.Seeds) {
			st.EvaluatedPoints++
		}
	}
	if st.Status == StatusDone {
		st.Result = res
	}
	return st
}

// --- HTTP handlers ---

func (s *Server) handleExploreSubmit(w http.ResponseWriter, req *http.Request) {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	var sp explore.Space
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding exploration space: %v", err)
		return
	}
	st, err := s.submitExplore(&sp, parentSpan(req))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if Terminal(st.Status) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleExplore(w http.ResponseWriter, req *http.Request) {
	if v := s.lookupView(w, req, "exploration"); v != nil {
		writeJSON(w, http.StatusOK, s.exploreStatus(v))
	}
}

func (s *Server) handleExploreDelete(w http.ResponseWriter, req *http.Request) {
	v := s.lookupView(w, req, "exploration")
	if v == nil {
		return
	}
	s.deleteView(v)
	writeJSON(w, http.StatusOK, s.exploreStatus(v))
}
