package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"react/internal/ckpt"
	"react/internal/explore"
	"react/internal/scenario"
)

// exploreBase is the inline base spec exploration tests derive points
// from: a 30 s steady trace driving DE (milliseconds per cell). The
// declared buffer is replaced by the space's buffer axis.
func exploreBase() *scenario.Spec {
	spec, err := scenario.ParseSpec([]byte(fastSpec))
	if err != nil {
		panic(err)
	}
	return spec
}

func TestExploreEndToEnd(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	space := &explore.Space{
		Spec:    exploreBase(),
		Static:  &explore.StaticAxis{From: 500e-6, To: 5e-3, Points: 3},
		Presets: []string{"REACT"},
		Seeds:   []uint64{1, 2},
		Pareto:  []explore.MetricPair{{X: explore.MetricC, Y: explore.MetricLatency}},
	}
	st, err := c.Explore(ctx, space)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone || st.Result == nil {
		t.Fatalf("exploration did not complete: %+v", st)
	}
	if st.TotalPoints != 4 || st.EvaluatedPoints != 4 || len(st.Cells) != 8 {
		t.Fatalf("shape wrong: %d/%d points, %d cells", st.EvaluatedPoints, st.TotalPoints, len(st.Cells))
	}
	if st.Result.Evaluated != 4 || len(st.Result.Frontiers) != 1 {
		t.Fatalf("result wrong: evaluated %d, %d frontiers", st.Result.Evaluated, len(st.Result.Frontiers))
	}
	for i, pr := range st.Result.Points {
		if !pr.Evaluated || pr.Summary == nil || pr.Summary.Seeds != 2 {
			t.Errorf("point %d not aggregated over both seeds: %+v", i, pr)
		}
	}
	m, _ := c.Metrics(ctx)
	if m.Explorations != 1 || m.ExploreCells != 8 || m.ExplorePoints != 4 {
		t.Errorf("explore counters wrong: %+v", m)
	}

	// The remote result is bit-identical to running the same space
	// locally — the engine and the aggregation are the same code.
	local, err := explore.Run(ctx, space, explore.Local(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Result, local) {
		t.Errorf("remote exploration diverged from the local path:\n got %+v\nwant %+v", st.Result, local)
	}
}

// TestExploreGridThenBisectZeroNewSims is the issue's cache-coherence
// acceptance pin: a bisection exploration submitted after a grid that
// covered its lattice touches only cached cells — cell hits rise, misses
// and simulations stay put.
func TestExploreGridThenBisectZeroNewSims(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	axis := &explore.StaticAxis{From: 300e-6, To: 10e-3, Points: 8}
	grid, err := c.Explore(ctx, &explore.Space{Spec: exploreBase(), Static: axis, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Result == nil || grid.Result.Evaluated != 8 {
		t.Fatalf("grid did not evaluate the lattice: %+v", grid.Result)
	}
	// A target whose boundary falls inside the lattice: on a steady trace
	// blocks fall as capacitance grows (later start), so "blocks ≤ K" is
	// the rising predicate bisection assumes. K sits between two interior
	// lattice points' values, forcing real midpoint probes.
	b4, _ := grid.Result.Points[4].Value("blocks")
	b5, _ := grid.Result.Points[5].Value("blocks")
	k := (b4 + b5) / 2
	m0, _ := c.Metrics(ctx)

	bis, err := c.Explore(ctx, &explore.Space{
		Spec:     exploreBase(),
		Static:   axis,
		Seeds:    []uint64{1},
		Strategy: explore.StrategyBisect,
		Target:   &explore.Target{Metric: "blocks", Max: &k},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bis.NewCells != 0 || bis.CoalescedCells != 0 || bis.CachedCells != len(bis.Cells) {
		t.Errorf("bisection attached fresh cells: %d new, %d coalesced, %d cached of %d",
			bis.NewCells, bis.CoalescedCells, bis.CachedCells, len(bis.Cells))
	}
	m1, _ := c.Metrics(ctx)
	if m1.CellMisses != m0.CellMisses {
		t.Errorf("cell misses went %d -> %d: bisection re-simulated grid cells", m0.CellMisses, m1.CellMisses)
	}
	if m1.SimsCompleted != m0.SimsCompleted {
		t.Errorf("simulations went %d -> %d, want zero new work", m0.SimsCompleted, m1.SimsCompleted)
	}
	if m1.CellHits <= m0.CellHits {
		t.Errorf("cell hits did not rise (%d -> %d)", m0.CellHits, m1.CellHits)
	}
	// The bisection's answer agrees with scanning the covering grid.
	if len(bis.Result.Best) != 1 || !bis.Result.Best[0].Satisfied {
		t.Fatalf("bisection found no satisfying point: %+v", bis.Result.Best)
	}
	want := -1
	for i := range grid.Result.Points {
		if v, ok := grid.Result.Points[i].Value("blocks"); ok && v <= k {
			want = i
			break
		}
	}
	if bis.Result.Best[0].Point != want {
		t.Errorf("bisection best point %d, grid scan says %d", bis.Result.Best[0].Point, want)
	}
	// And the probed points' metrics are the grid's, bit for bit.
	for i, pr := range bis.Result.Points {
		if pr.Evaluated && !reflect.DeepEqual(pr.Metrics, grid.Result.Points[i].Metrics) {
			t.Errorf("point %d diverged between grid and bisection", i)
		}
	}
}

// TestExploreSharesCellsWithRuns pins dedup across resource kinds: an
// exploration whose preset points match an earlier plain run's cells
// attaches them from the cache.
func TestExploreSharesCellsWithRuns(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	if _, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)}); err != nil {
		t.Fatal(err)
	}
	m0, _ := c.Metrics(ctx)
	st, err := c.Explore(ctx, &explore.Space{
		Spec:    exploreBase(),
		Presets: []string{"770 µF", "REACT"}, // exactly the run's buffer set
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedCells != 2 || st.NewCells != 0 {
		t.Errorf("exploration should have been served from the run's cells: %+v", st)
	}
	m1, _ := c.Metrics(ctx)
	if m1.SimsCompleted != m0.SimsCompleted || m1.CellHits != m0.CellHits+2 {
		t.Errorf("cache counters wrong: sims %d->%d hits %d->%d",
			m0.SimsCompleted, m1.SimsCompleted, m0.CellHits, m1.CellHits)
	}
}

// TestExploreCancel pins cancellation mid-flight: the exploration reports
// canceled, publishes no result, and drains its queue.
func TestExploreCancel(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 1})
	ctx := context.Background()
	started := make(chan int, 4)
	release := make(chan struct{})
	unblock := mustUnblock(t, release)
	srv.Submit(blockerSpec(started, release), scenario.RunOptions{})
	<-started

	re, err := c.ExploreAsync(ctx, &explore.Space{
		Spec:    exploreBase(),
		Static:  &explore.StaticAxis{From: 500e-6, To: 5e-3, Points: 4},
		Presets: []string{"REACT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	unblock()
	final, err := re.Wait(ctx)
	if err == nil || final.Status != StatusCanceled {
		t.Fatalf("want a canceled exploration, got status %q err %v", final.Status, err)
	}
	if final.Result != nil {
		t.Error("a cancelled exploration must not publish a result")
	}
	m, _ := c.Metrics(ctx)
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after a cancelled exploration drained, want 0", m.QueueDepth)
	}
}

// TestExploreSubmitRejections covers the synchronous 400s: malformed JSON,
// unknown fields, and unresolvable spaces.
func TestExploreSubmitRejections(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	for label, body := range map[string]string{
		"malformed":        `{"scenario":`,
		"unknown field":    `{"scenario":"energy-attack","presets":["REACT"],"statik":{}}`,
		"no buffer axis":   `{"scenario":"energy-attack"}`,
		"unknown scenario": `{"scenario":"warp","presets":["REACT"]}`,
		"bisect sans goal": `{"scenario":"energy-attack","static":{"from":1e-4,"to":1e-2,"points":4},"strategy":"bisect"}`,
	} {
		resp, err := http.Post(ts.URL+"/explorations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", label, resp.StatusCode)
		}
	}
	// And nothing half-tracked: no exploration id was allocated.
	resp, err := http.Get(ts.URL + "/explorations/x000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("rejected submissions must not be tracked (got HTTP %d)", resp.StatusCode)
	}
}

// TestExploreMLSegmentsBisectZeroNewSims is the checkpoint-axis acceptance
// pin: a joint sweep of the ML partition count (a /workload/segments patch)
// and buffer capacitance on a checkpoint-bearing device, followed by a
// bisection over the same lattice — the bisection must touch only cached
// cells: zero new simulations, cell hits rise, misses stay put.
func TestExploreMLSegmentsBisectZeroNewSims(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	base := exploreBase()
	base.Workload = scenario.WorkloadSpec{Bench: "ML"}
	base.Device.Checkpoint = &ckpt.Config{Scheme: "periodic", Interval: 2}
	axis := &explore.StaticAxis{From: 500e-6, To: 10e-3, Points: 6}
	segs := explore.PatchAxis{Path: "/workload/segments", Values: []float64{2, 4}}

	grid, err := c.Explore(ctx, &explore.Space{
		Spec: base, Static: axis, Patches: []explore.PatchAxis{segs}, Seeds: []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Result == nil || grid.Result.Evaluated != 12 {
		t.Fatalf("grid did not evaluate segments × capacitance: %+v", grid.Result)
	}
	// First-boot latency rises monotonically with capacitance and ignores
	// the partition count, so "latency ≥ k" is the rising predicate
	// bisection assumes; k between two interior lattice points forces real
	// midpoint probes in both segment groups.
	l2, _ := grid.Result.Points[2].Value("latency")
	l3, _ := grid.Result.Points[3].Value("latency")
	if !(l2 < l3) {
		t.Fatalf("latency not rising across the lattice (%g, %g)", l2, l3)
	}
	k := (l2 + l3) / 2
	m0, _ := c.Metrics(ctx)

	bis, err := c.Explore(ctx, &explore.Space{
		Spec: base, Static: axis, Patches: []explore.PatchAxis{segs}, Seeds: []uint64{1},
		Strategy: explore.StrategyBisect,
		Target:   &explore.Target{Metric: "latency", Min: &k},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bis.NewCells != 0 || bis.CachedCells != len(bis.Cells) {
		t.Errorf("bisection attached fresh cells: %d new, %d cached of %d",
			bis.NewCells, bis.CachedCells, len(bis.Cells))
	}
	m1, _ := c.Metrics(ctx)
	if m1.CellMisses != m0.CellMisses || m1.SimsCompleted != m0.SimsCompleted {
		t.Errorf("bisection re-simulated covered cells: misses %d -> %d, sims %d -> %d",
			m0.CellMisses, m1.CellMisses, m0.SimsCompleted, m1.SimsCompleted)
	}
	if m1.CellHits <= m0.CellHits {
		t.Errorf("cell hits did not rise (%d -> %d)", m0.CellHits, m1.CellHits)
	}
	// One best point per segments group, each agreeing with a grid scan.
	if len(bis.Result.Best) != 2 {
		t.Fatalf("want one bisection answer per segments value, got %+v", bis.Result.Best)
	}
	for _, b := range bis.Result.Best {
		if !b.Satisfied {
			t.Errorf("bisection found no satisfying point in a group: %+v", b)
			continue
		}
		if v, ok := bis.Result.Points[b.Point].Value("latency"); !ok || v < k {
			t.Errorf("best point %d does not meet latency >= %g", b.Point, k)
		}
	}
	// The scheme ran: every evaluated cell carries checkpoint counters.
	for i, pr := range grid.Result.Points {
		if pr.Evaluated {
			if _, ok := pr.Value("ckpt_backups"); !ok {
				t.Errorf("point %d missing ckpt_backups: the scheme never reached the device", i)
			}
		}
	}
}
