package service

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"react/internal/scenario"
	"react/internal/sim"
)

// pfSpec has per-seed event randomness (PF arrivals), so a seed sweep has
// real across-seed variance to aggregate.
const pfSpec = `{
	"name": "svc-pf",
	"trace": {"gen": "steady", "mean": 0.01, "duration": 60},
	"workload": {"bench": "PF", "interarrival": 4},
	"buffers": [{"preset": "770 µF"}, {"preset": "REACT"}]
}`

// TestSweepMatchesLocalSeedSweep is the wire-fidelity acceptance check: a
// remote sweep's per-cell results and summary rows must be bit-identical
// to simulating the same spec and seeds locally and aggregating with
// scenario.AggregateSeeds — the code `reactsim -seeds` reports through.
func TestSweepMatchesLocalSeedSweep(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	seeds := []uint64{1, 2, 3, 4}
	st, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(pfSpec), Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 8 || len(st.Summary) != 2 {
		t.Fatalf("sweep shape: %d cells %d summary rows, want 8 and 2", len(st.Cells), len(st.Summary))
	}

	spec, err := scenario.ParseSpec([]byte(pfSpec))
	if err != nil {
		t.Fatal(err)
	}
	for bi, bs := range spec.Buffers {
		name := bs.DisplayName()
		results := make([]sim.Result, len(seeds))
		for si, seed := range seeds {
			res, err := spec.Cell(bi, scenario.RunOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			results[si] = res
			// The wire cell for this (buffer, seed) carries the local
			// run's exact numbers.
			var wire *CellResult
			for _, cell := range st.Cells {
				if cell.Buffer == name && cell.Seed == seed {
					wire = cell.Result
				}
			}
			if wire == nil {
				t.Fatalf("no wire cell for %s seed %d", name, seed)
			}
			if wire.Latency != res.Latency || wire.OnTime != res.OnTime || wire.Metrics["fwd"] != res.Metrics["fwd"] {
				t.Errorf("%s seed %d: wire result diverged from the local cell", name, seed)
			}
		}
		want := scenario.AggregateSeeds(results)
		row, ok := st.Row(name, 0)
		if !ok {
			t.Fatalf("no summary row for %s", name)
		}
		if !reflect.DeepEqual(row.SeedSummary, want) {
			t.Errorf("%s: summary diverged from the local aggregation:\n got %+v\nwant %+v", name, row.SeedSummary, want)
		}
	}
}

// TestSweepBatchesOneTracePassPerSeed pins the batched fan-out: a sweep
// of S seeds over K buffers groups the K cells that share each
// (trace, seed, dt) into one lockstep batch, so the executor walks the
// trace S times — not S×K — and the /metrics counters make that visible.
func TestSweepBatchesOneTracePassPerSeed(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	seeds := []uint64{1, 2, 3}
	st, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(pfSpec), Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 6 { // 3 seeds × 2 buffers
		t.Fatalf("sweep ran %d cells, want 6", len(st.Cells))
	}
	m, _ := c.Metrics(ctx)
	if m.TracePasses != uint64(len(seeds)) {
		t.Errorf("trace passes = %d, want %d: each seed's cells must share one lockstep pass", m.TracePasses, len(seeds))
	}
	if m.TicksSimulated == 0 {
		t.Error("ticks_simulated stayed zero across a six-cell sweep")
	}
	if m.SimsCompleted != 6 {
		t.Errorf("sims completed = %d, want 6 (every cell still retires its own result)", m.SimsCompleted)
	}
}

// TestSweepThenRunPerformsZeroNewSimulations is the issue's acceptance
// criterion on the paper grid: after a seed sweep that included seed 1,
// submitting the scenario as a plain run touches only cached cells —
// metrics show cell hits, and misses stay unchanged.
func TestSweepThenRunPerformsZeroNewSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps a full paper-grid scenario")
	}
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	sw, err := c.Sweep(ctx, SweepRequest{Scenario: "paper-de-rf-cart", SeedFrom: 1, SeedTo: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 10 { // 5 paper buffers × 2 seeds
		t.Fatalf("sweep ran %d cells, want 10", len(sw.Cells))
	}
	m0, _ := c.Metrics(ctx)

	st, err := c.Run(ctx, RunRequest{Scenario: "paper-de-rf-cart"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone || st.Seed != 1 {
		t.Fatalf("run after sweep: %+v", st)
	}
	m1, _ := c.Metrics(ctx)
	if m1.CellMisses != m0.CellMisses {
		t.Errorf("cell misses went %d -> %d: the run re-simulated sweep cells", m0.CellMisses, m1.CellMisses)
	}
	if m1.CellHits != m0.CellHits+5 {
		t.Errorf("cell hits went %d -> %d, want +5", m0.CellHits, m1.CellHits)
	}
	if m1.SimsCompleted != m0.SimsCompleted {
		t.Errorf("simulations went %d -> %d, want zero new work", m0.SimsCompleted, m1.SimsCompleted)
	}
	// And the run's per-buffer results are exactly the sweep's seed-1 cells.
	for _, cell := range st.Cells {
		var fromSweep *CellResult
		for _, sc := range sw.Cells {
			if sc.Buffer == cell.Buffer && sc.Seed == 1 {
				fromSweep = sc.Result
			}
		}
		if fromSweep == nil || cell.Result == nil || cell.Result.Latency != fromSweep.Latency {
			t.Errorf("%s: run result is not the sweep's seed-1 cell", cell.Buffer)
		}
	}
}

// TestSweepDTAxisAndBufferSubset covers the two optional axes: an explicit
// timestep axis (0 meaning the spec default) crossed with a buffer subset,
// with one summary row per (buffer, dt) group, and default-dt cells shared
// with plain runs.
func TestSweepDTAxisAndBufferSubset(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	// A plain run first: the sweep's dt-0 axis must reuse its cells.
	if _, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Sweep(ctx, SweepRequest{
		Spec:    json.RawMessage(fastSpec),
		Seeds:   []uint64{1, 2},
		DTs:     []float64{0, 2e-3},
		Buffers: []string{"REACT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 4 { // 1 buffer × 2 dts × 2 seeds
		t.Fatalf("%d cells, want 4", len(st.Cells))
	}
	if !reflect.DeepEqual(st.Seeds, []uint64{1, 2}) || !reflect.DeepEqual(st.DTs, []float64{1e-3, 2e-3}) {
		t.Errorf("resolved axes wrong: seeds %v dts %v", st.Seeds, st.DTs)
	}
	if !reflect.DeepEqual(st.Buffers, []string{"REACT"}) {
		t.Errorf("buffer subset wrong: %v", st.Buffers)
	}
	if len(st.Summary) != 2 {
		t.Fatalf("%d summary rows, want one per (buffer, dt)", len(st.Summary))
	}
	for _, row := range st.Summary {
		if row.Buffer != "REACT" || row.Seeds != 2 {
			t.Errorf("summary row wrong: %+v", row)
		}
	}
	// The (REACT, default dt, seed 1) cell was simulated by the plain run.
	if st.CachedCells < 1 {
		t.Errorf("the dt-0 seed-1 cell should have been a cache hit: cached %d", st.CachedCells)
	}
}

// TestSweepAxisValidation covers ResolveSweepAxes' rejections.
func TestSweepAxisValidation(t *testing.T) {
	spec, err := scenario.ParseSpec([]byte(fastSpec))
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]SweepRequest{
		"both seed forms":  {Seeds: []uint64{1}, SeedTo: 3},
		"zero seed":        {Seeds: []uint64{1, 0}},
		"empty range":      {SeedFrom: 5, SeedTo: 2},
		"from without to":  {SeedFrom: 3},
		"oversized range":  {SeedFrom: 1, SeedTo: 10000},
		"unknown buffer":   {Buffers: []string{"not-a-buffer"}},
		"negative dt":      {DTs: []float64{-1e-3}},
		"oversized cross":  {SeedFrom: 1, SeedTo: 3000, DTs: []float64{1e-3, 2e-3}},
		"duplicate seed":   {Seeds: []uint64{1, 2, 1}},
		"duplicate buffer": {Buffers: []string{"REACT", "REACT"}},
		// 0 resolves to the spec's default (1 ms here), colliding with the
		// spelled-out value: one axis point, two identical summary rows.
		"duplicate dt after resolution": {DTs: []float64{0, 1e-3}},
	}
	for label, req := range bad {
		if _, err := ResolveSweepAxes(spec, &req); err == nil {
			t.Errorf("%s: must be rejected", label)
		}
	}
	// Defaults resolve: no axes means the spec's one resolved point.
	ax, err := ResolveSweepAxes(spec, &SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ax.Seeds, []uint64{1}) || !reflect.DeepEqual(ax.DTs, []float64{1e-3}) || len(ax.Buffers) != 2 {
		t.Errorf("default axes wrong: %+v", ax)
	}
}

// TestSweepCancel pins cancellation: queued cells drain without
// simulating, the sweep reports canceled, and the addresses are freshly
// simulable afterwards.
func TestSweepCancel(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 1})
	ctx := context.Background()
	started := make(chan int, 4)
	release := make(chan struct{})
	unblock := mustUnblock(t, release)
	srv.Submit(blockerSpec(started, release), scenario.RunOptions{})
	<-started

	sw, err := c.SweepAsync(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	unblock()
	final, err := sw.Wait(ctx)
	if err == nil || final.Status != StatusCanceled {
		t.Fatalf("want a canceled sweep, got status %q err %v", final.Status, err)
	}
	if len(final.Summary) != 0 {
		t.Error("a cancelled sweep must not publish summary rows")
	}
	m, _ := c.Metrics(ctx)
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after a cancelled sweep drained, want 0", m.QueueDepth)
	}
	// The cancelled addresses left the index: a fresh run re-simulates.
	st, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone {
		t.Fatalf("post-cancel run: %+v", st)
	}
}
