package service

import (
	"encoding/json"
	"time"

	"react/internal/buffer"
	"react/internal/explore"
	"react/internal/obs"
	"react/internal/scenario"
	"react/internal/sim"
)

// This file defines the service's HTTP/JSON wire shapes, shared verbatim by
// the server and the Go client.

// Run lifecycle states reported by RunStatus.Status.
const (
	// StatusRunning: the run's cells are queued or simulating; completed
	// cells are already visible in RunStatus.Cells.
	StatusRunning = "running"
	// StatusDone: every cell completed successfully.
	StatusDone = "done"
	// StatusFailed: at least one cell errored; RunStatus.Error carries the
	// first error by cell index.
	StatusFailed = "failed"
	// StatusCanceled: the run was cancelled before draining.
	StatusCanceled = "canceled"
)

// Terminal reports whether a run status is final.
func Terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// RunRequest submits a scenario run: either a registered scenario by name
// or an inline JSON spec (exactly one must be set). Seed 0 means "unset":
// the spec's own seed applies, which itself defaults to 1 — an explicit
// seed 0 is not expressible anywhere in the stack. DT 0 keeps the spec's
// timestep.
type RunRequest struct {
	Scenario string          `json:"scenario,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	DT       float64         `json:"dt,omitempty"`
	// NoForward pins the run's fresh cells to the receiving node even in
	// cluster mode. Set on peer-to-peer forwarded submissions to break
	// forwarding cycles; harmless (and occasionally useful) from clients.
	NoForward bool `json:"no_forward,omitempty"`
}

// CellResult is one buffer's completed simulation, the service's view of a
// sim.Result (recordings excluded).
type CellResult struct {
	Latency       float64            `json:"latency_s"`
	OnTime        float64            `json:"on_time_s"`
	Duration      float64            `json:"duration_s"`
	Duty          float64            `json:"duty"`
	Cycles        int                `json:"cycles"`
	MeanCycle     float64            `json:"mean_cycle_s"`
	Stored        float64            `json:"stored_j"`
	InitialStored float64            `json:"initial_stored_j,omitempty"`
	Metrics       map[string]float64 `json:"metrics"`
	Ledger        buffer.Ledger      `json:"ledger"`
	BalanceError  float64            `json:"energy_balance_error"`
}

func toCellResult(r sim.Result) *CellResult {
	return &CellResult{
		Latency:       r.Latency,
		OnTime:        r.OnTime,
		Duration:      r.Duration,
		Duty:          r.OnFraction(),
		Cycles:        r.Cycles,
		MeanCycle:     r.MeanCycle,
		Stored:        r.Stored,
		InitialStored: r.InitialStored,
		Metrics:       r.Metrics,
		Ledger:        r.Ledger,
		BalanceError:  r.EnergyBalanceError(),
	}
}

// fromCellResult reverses toCellResult as far as the wire shape allows:
// the simulation fields a peer's response carries are enough to assemble
// views, summaries and persisted entries bit-identically (Duty and
// BalanceError are derived, so they are not read back). The workload name
// and any recording are not on the wire and stay zero.
func fromCellResult(cr *CellResult, buffer string) sim.Result {
	return sim.Result{
		Buffer:        buffer,
		Latency:       cr.Latency,
		OnTime:        cr.OnTime,
		Duration:      cr.Duration,
		Cycles:        cr.Cycles,
		MeanCycle:     cr.MeanCycle,
		Stored:        cr.Stored,
		InitialStored: cr.InitialStored,
		Metrics:       cr.Metrics,
		Ledger:        cr.Ledger,
	}
}

// CellStatus is one buffer's slot in a run: pending, failed, or completed
// with its result — partial results are visible while the run drains.
type CellStatus struct {
	Buffer string      `json:"buffer"`
	Done   bool        `json:"done"`
	Error  string      `json:"error,omitempty"`
	Result *CellResult `json:"result,omitempty"`
}

// Progress is a view's completion accounting, updated on every poll while
// the view drains: cells done over total, plus the terminal cells'
// executor tick counts (cells served from cache or by a cluster peer cost
// this node no stepping and contribute zero ticks).
type Progress struct {
	CellsDone          int    `json:"cells_done"`
	CellsTotal         int    `json:"cells_total"`
	TicksSimulated     uint64 `json:"ticks_simulated"`
	TicksFastForwarded uint64 `json:"ticks_fastforwarded"`
}

// RunStatus is the submit/poll view of a run.
type RunStatus struct {
	ID          string `json:"id"`
	Scenario    string `json:"scenario"`
	Seed        uint64 `json:"seed"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// TraceID addresses the run's span tree (GET /runs/{id}/trace).
	TraceID string `json:"trace_id,omitempty"`
	Status  string `json:"status"`
	// Cached marks a submission served entirely from the result cache;
	// Coalesced marks one attached to an identical run already in flight.
	// Both are properties of the submission, false on later polls.
	Cached    bool         `json:"cached,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	Error     string       `json:"error,omitempty"`
	Created   time.Time    `json:"created"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Progress  Progress     `json:"progress"`
	Cells     []CellStatus `json:"cells"`
}

// Result returns the completed cell for a buffer display name.
func (st *RunStatus) Result(buffer string) (*CellResult, bool) {
	for _, c := range st.Cells {
		if c.Buffer == buffer && c.Result != nil {
			return c.Result, true
		}
	}
	return nil, false
}

// SweepRequest submits a sweep: one spec (a registered scenario by name or
// an inline JSON spec, exactly one) crossed with a seed axis, an optional
// timestep axis, and an optional buffer subset.
//
// The seed axis is either an explicit list (each ≥ 1) or a range
// seed_from..seed_to (from defaults to 1); with neither, the spec's own
// resolved seed is the single point. The dt axis defaults to the spec's
// timestep; dt 0 in the list means "the spec's default". The buffer subset
// names buffer display names of the spec; empty means every buffer.
type SweepRequest struct {
	Scenario string          `json:"scenario,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Seeds    []uint64        `json:"seeds,omitempty"`
	SeedFrom uint64          `json:"seed_from,omitempty"`
	SeedTo   uint64          `json:"seed_to,omitempty"`
	DTs      []float64       `json:"dts,omitempty"`
	Buffers  []string        `json:"buffers,omitempty"`
}

// SweepCellStatus is one (buffer, dt, seed) cell of a sweep: pending,
// failed, or completed with its result — partial results are visible while
// the sweep drains.
type SweepCellStatus struct {
	Buffer string      `json:"buffer"`
	Seed   uint64      `json:"seed"`
	DT     float64     `json:"dt"`
	Done   bool        `json:"done"`
	Error  string      `json:"error,omitempty"`
	Result *CellResult `json:"result,omitempty"`
}

// SweepSummary is one aggregate row of a completed sweep: one (buffer, dt)
// group's across-seed statistics, computed by scenario.AggregateSeeds —
// the same code `reactsim -seeds` reports through, so remote summaries are
// bit-identical to local sweeps of the same spec and seeds.
type SweepSummary struct {
	Buffer string  `json:"buffer"`
	DT     float64 `json:"dt"`
	scenario.SeedSummary
}

// SweepStatus is the submit/poll view of a sweep: the resolved axes, every
// cell's state, and (once done) the per-axis summary rows. CachedCells,
// CoalescedCells and NewCells are the submission's cache disposition: how
// many cells were served from the cache, joined in flight, and freshly
// simulated.
type SweepStatus struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	// TraceID addresses the sweep's span tree (GET /sweeps/{id}/trace).
	TraceID        string            `json:"trace_id,omitempty"`
	Status         string            `json:"status"`
	Error          string            `json:"error,omitempty"`
	Created        time.Time         `json:"created"`
	Finished       *time.Time        `json:"finished,omitempty"`
	Progress       Progress          `json:"progress"`
	Seeds          []uint64          `json:"seeds"`
	DTs            []float64         `json:"dts"`
	Buffers        []string          `json:"buffers"`
	CachedCells    int               `json:"cached_cells"`
	CoalescedCells int               `json:"coalesced_cells"`
	NewCells       int               `json:"new_cells"`
	Cells          []SweepCellStatus `json:"cells"`
	Summary        []SweepSummary    `json:"summary,omitempty"`
}

// Row returns the completed summary row for a buffer display name and
// resolved timestep (pass 0 for a single-dt sweep's only axis point).
func (st *SweepStatus) Row(buffer string, dt float64) (*SweepSummary, bool) {
	for i := range st.Summary {
		//lint:reactlint-ignore dtarith row lookup by the exact submitted axis value, which the summary echoes bit-for-bit
		if st.Summary[i].Buffer == buffer && (dt == 0 || st.Summary[i].DT == dt) {
			return &st.Summary[i], true
		}
	}
	return nil, false
}

// ExploreCellStatus is one probed cell of an exploration: seed Seed of
// lattice point Point. Cells appear batch by batch as the strategy probes,
// and carry results as they complete.
type ExploreCellStatus struct {
	Point  int         `json:"point"`
	Buffer string      `json:"buffer"`
	Seed   uint64      `json:"seed"`
	DT     float64     `json:"dt"`
	Done   bool        `json:"done"`
	Error  string      `json:"error,omitempty"`
	Result *CellResult `json:"result,omitempty"`
}

// ExploreStatus is the submit/poll view of an exploration. While the
// strategy probes, Cells grows and the cache accounting
// (CachedCells/CoalescedCells/NewCells) grows with it; the assembled
// explore.Result — evaluated points, bisection bests, Pareto frontiers —
// appears once the exploration is done. Its numbers are computed by the
// same engine a local `reactsim -explore` runs, so remote results are
// bit-identical to local ones for the same space and seeds.
type ExploreStatus struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Strategy string `json:"strategy"`
	// TraceID addresses the exploration's span tree
	// (GET /explorations/{id}/trace), merged across cluster peers.
	TraceID         string              `json:"trace_id,omitempty"`
	Status          string              `json:"status"`
	Error           string              `json:"error,omitempty"`
	Created         time.Time           `json:"created"`
	Finished        *time.Time          `json:"finished,omitempty"`
	Progress        Progress            `json:"progress"`
	Seeds           []uint64            `json:"seeds"`
	TotalPoints     int                 `json:"total_points"`
	EvaluatedPoints int                 `json:"evaluated_points"`
	CachedCells     int                 `json:"cached_cells"`
	CoalescedCells  int                 `json:"coalesced_cells"`
	NewCells        int                 `json:"new_cells"`
	Cells           []ExploreCellStatus `json:"cells"`
	Result          *explore.Result     `json:"result,omitempty"`
}

// ScenarioInfo is one registry entry in the GET /scenarios listing.
type ScenarioInfo struct {
	Name        string   `json:"name"`
	Title       string   `json:"title,omitempty"`
	Paper       bool     `json:"paper,omitempty"`
	Long        bool     `json:"long,omitempty"`
	Bench       string   `json:"bench"`
	Trace       string   `json:"trace"`
	Buffers     []string `json:"buffers"`
	Fingerprint string   `json:"fingerprint"`
}

func toScenarioInfo(s *scenario.Spec) ScenarioInfo {
	info := ScenarioInfo{
		Name:  s.Name,
		Title: s.Title,
		Paper: s.Paper,
		Long:  s.Long,
		Bench: s.Workload.Bench,
		Trace: s.Trace.Gen,
	}
	for _, bs := range s.Buffers {
		info.Buffers = append(info.Buffers, bs.DisplayName())
	}
	if fp, err := s.Fingerprint(); err == nil {
		info.Fingerprint = fp
	}
	return info
}

// Metrics is the JSON metrics report (GET /metrics.json, or GET /metrics
// with Accept: application/json): cache effectiveness at both granularities
// (whole-run submissions and content-addressed cells), queue state and
// simulation throughput. The same counters back the Prometheus text
// exposition at GET /metrics.
type Metrics struct {
	UptimeS float64 `json:"uptime_s"`
	// StartTime is when the server started; Build is the binary's build
	// metadata (Go toolchain, module version, VCS revision when stamped).
	StartTime     time.Time         `json:"start_time"`
	Build         map[string]string `json:"build,omitempty"`
	Workers       int               `json:"workers"`
	Submitted     uint64            `json:"runs_submitted"`
	Sweeps        uint64            `json:"sweeps_submitted"`
	Explorations  uint64            `json:"explorations_submitted"`
	ExplorePoints uint64            `json:"explore_points_evaluated"`
	ExploreCells  uint64            `json:"explore_cells"`
	CacheHits     uint64            `json:"cache_hits"`
	Coalesced     uint64            `json:"coalesced"`
	CacheMisses   uint64            `json:"cache_misses"`
	CacheHitRate  float64           `json:"cache_hit_rate"`
	CacheEntries  int               `json:"cache_entries"`
	CacheCapacity int               `json:"cache_capacity"`
	Evictions     uint64            `json:"cache_evictions"`
	CellHits      uint64            `json:"cell_hits"`
	CellCoalesced uint64            `json:"cell_coalesced"`
	CellMisses    uint64            `json:"cell_misses"`
	CellHitRate   float64           `json:"cell_hit_rate"`
	CellEntries   int               `json:"cell_entries"`
	CellCapacity  int               `json:"cell_capacity"`
	CellEvictions uint64            `json:"cell_evictions"`
	RunsTracked   int               `json:"runs_tracked"`
	RunsActive    int               `json:"runs_active"`
	QueueDepth    int               `json:"queue_depth"`
	CellsRunning  int               `json:"cells_running"`
	SimsCompleted uint64            `json:"sims_completed"`
	SimsFailed    uint64            `json:"sims_failed"`
	// SimsPerSec is the lifetime average (sims completed over uptime) and
	// decays toward zero while the server idles; SimsPerSec60 is the
	// trailing-minute rate — the number to watch on a live node.
	SimsPerSec   float64 `json:"sims_per_sec"`
	SimsPerSec60 float64 `json:"sims_per_sec_60s"`
	// DroppedSpans counts spans discarded by the span store's bounds.
	DroppedSpans uint64 `json:"dropped_spans,omitempty"`

	// Batched-executor accounting: cell-ticks actually stepped, cell-ticks
	// skipped by the dead-time fast-forward, and lockstep passes over a
	// trace (one per batch, however many cells shared it — a sweep of S
	// seeds over K buffers makes S passes, not S×K).
	TicksSimulated     uint64 `json:"ticks_simulated"`
	TicksFastForwarded uint64 `json:"ticks_fastforwarded"`
	TracePasses        uint64 `json:"trace_passes"`

	// Disk-tier accounting, present when the node has a persistent store:
	// entries on disk, memory misses served from (or missed by) disk,
	// write-throughs, and entries quarantined as corrupt since open.
	DiskEnabled     bool   `json:"disk_enabled,omitempty"`
	DiskCells       int    `json:"disk_cells,omitempty"`
	DiskHits        uint64 `json:"disk_hits,omitempty"`
	DiskMisses      uint64 `json:"disk_misses,omitempty"`
	DiskPuts        uint64 `json:"disk_puts,omitempty"`
	DiskQuarantined uint64 `json:"disk_quarantined,omitempty"`

	// Cluster accounting, present in cluster mode: ring identity, peer
	// run submissions (with retries), fan-outs degraded to local
	// simulation, and cells answered by peers.
	ClusterSelf   string `json:"cluster_self,omitempty"`
	ClusterPeers  int    `json:"cluster_peers,omitempty"`
	PeerRequests  uint64 `json:"peer_requests,omitempty"`
	PeerRetries   uint64 `json:"peer_retries,omitempty"`
	PeerFallbacks uint64 `json:"peer_fallbacks,omitempty"`
	PeerCells     uint64 `json:"peer_cells,omitempty"`
}

// TraceResponse is the GET trace report. The per-view endpoints
// (/runs/{id}/trace and friends) return the assembled tree, merged across
// cluster peers; the raw endpoint (/traces/{id}) returns this node's flat
// spans only — the primitive the merge is built from.
type TraceResponse struct {
	TraceID string          `json:"trace_id"`
	Spans   []obs.Span      `json:"spans,omitempty"`
	Roots   []*obs.SpanTree `json:"roots,omitempty"`
	// Dropped counts spans the span store discarded from this trace;
	// Peers lists cluster members whose spans could not be merged (the
	// tree is still served, just incomplete).
	Dropped     uint64   `json:"dropped_spans,omitempty"`
	PeersFailed []string `json:"peers_failed,omitempty"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}
