// Package service is the simulation-as-a-service layer behind cmd/reactd:
// an HTTP/JSON API over the scenario registry and the experiment engine,
// with a content-addressed, single-flight result cache.
//
// Every submission is resolved to a canonical fingerprint
// (scenario.Spec.FingerprintRun), and the cache coalesces work at that
// address: a repeat of a completed run is served in O(1), and concurrent
// identical submissions attach to the one in-flight run instead of
// simulating twice. Runs execute asynchronously — a submit returns a run
// id immediately, cells fan out per buffer over a bounded worker pool
// (runner.Submit), and partial results are visible while the run drains.
//
// Endpoints:
//
//	GET    /scenarios  registry listing with fingerprints
//	POST   /runs       submit a run (named scenario or inline spec)
//	GET    /runs/{id}  poll status and (partial) results
//	DELETE /runs/{id}  cancel an in-flight run / forget a finished one
//	GET    /metrics    cache hit rate, queue depth, sims/sec
package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/runner"
	"react/internal/scenario"
	"react/internal/sim"
)

// DefaultCacheRuns bounds the finished runs kept for reuse when
// Config.CacheRuns is zero.
const DefaultCacheRuns = 64

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently simulating cells across all runs
	// (0 = GOMAXPROCS).
	Workers int
	// CacheRuns bounds the finished runs kept for content-addressed reuse
	// (0 = DefaultCacheRuns). In-flight runs are never evicted.
	CacheRuns int
}

// Server implements the service over http.Handler. Create with New, shut
// down with Close.
type Server struct {
	workers   int
	cacheRuns int
	mux       *http.ServeMux
	ctx       context.Context
	shutdown  context.CancelFunc
	sem       chan struct{}
	jobs      sync.WaitGroup
	start     time.Time

	// Monotonic counters (atomic: bumped from cell goroutines).
	submitted, hits, coalesced, misses, evictions atomic.Uint64
	cellsQueued, cellsDone                        atomic.Uint64 // finished cells of any outcome (queue depth)
	simsOK, simsFailed                            atomic.Uint64 // actual simulations: succeeded / errored

	// mu guards the run stores. Lock order: mu before run.mu.
	mu   sync.Mutex
	seq  int
	runs map[string]*run // every tracked run, by id
	byFP map[string]*run // single-flight index: running or done runs
	lru  *list.List      // cached done runs, most recently used first
	junk *list.List      // failed/cancelled runs kept briefly for polling
}

// junkRuns bounds the failed/cancelled runs kept around for polling. They
// are tracked separately from the result cache so that non-reusable runs
// never evict reusable cached results.
const junkRuns = 32

// run is one tracked submission's state.
type run struct {
	id      string
	fp      string // "" when the spec has no canonical encoding
	spec    *scenario.Spec
	opt     scenario.RunOptions
	created time.Time
	job     *runner.Job
	elem    *list.Element // slot in home once terminal
	home    *list.List    // the LRU (done) or junk (failed/cancelled) list

	mu       sync.Mutex
	status   string
	canceled bool
	errMsg   string
	finished time.Time
	cells    []cellState
}

type cellState struct {
	done bool
	err  string
	res  sim.Result
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheRuns := cfg.CacheRuns
	if cacheRuns <= 0 {
		cacheRuns = DefaultCacheRuns
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers:   workers,
		cacheRuns: cacheRuns,
		ctx:       ctx,
		shutdown:  cancel,
		sem:       make(chan struct{}, workers),
		start:     time.Now(),
		runs:      map[string]*run{},
		byFP:      map[string]*run{},
		lru:       list.New(),
		junk:      list.New(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("DELETE /runs/{id}", s.handleDelete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every in-flight run and waits for the workers to drain.
// The HTTP listener (if any) is the caller's to shut down first.
func (s *Server) Close() {
	s.shutdown()
	s.jobs.Wait()
}

// Submit resolves, deduplicates and (if needed) launches a run, returning
// its submission view. It is the Go-level core of POST /runs.
func (s *Server) Submit(spec *scenario.Spec, opt scenario.RunOptions) *RunStatus {
	s.submitted.Add(1)
	// A spec with no canonical encoding (Go-only constructors) still runs;
	// it just cannot be deduplicated or cached.
	fp, _ := spec.FingerprintRun(opt)

	s.mu.Lock()
	if fp != "" {
		if r := s.byFP[fp]; r != nil {
			r.mu.Lock()
			status := r.status
			r.mu.Unlock()
			if status == StatusDone {
				s.hits.Add(1)
				s.lru.MoveToFront(r.elem)
				s.mu.Unlock()
				st := s.view(r)
				st.Cached = true
				return st
			}
			if status == StatusRunning {
				s.coalesced.Add(1)
				s.mu.Unlock()
				st := s.view(r)
				st.Coalesced = true
				return st
			}
			// A failed or cancelled run should have left the index; fall
			// through and replace it.
		}
	}
	s.misses.Add(1)
	s.seq++
	r := &run{
		id:      fmt.Sprintf("r%06d", s.seq),
		fp:      fp,
		spec:    spec,
		opt:     opt,
		created: time.Now(),
		status:  StatusRunning,
		cells:   make([]cellState, len(spec.Buffers)),
	}
	s.runs[r.id] = r
	if fp != "" {
		s.byFP[fp] = r
	}
	s.launch(r)
	s.mu.Unlock()
	return s.view(r)
}

// launch fans the run's cells out over the shared pool. Called with s.mu
// held; returns immediately.
func (s *Server) launch(r *run) {
	n := len(r.spec.Buffers)
	s.cellsQueued.Add(uint64(n))
	r.job = runner.Submit(s.ctx, &runner.Runner{Workers: n}, n, func(ctx context.Context, i int) error {
		// The per-run pool admits every cell; the semaphore is the global
		// concurrency bound across runs.
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.cellsDone.Add(1)
			return ctx.Err()
		}
		defer func() { <-s.sem }()
		res, err := r.spec.Cell(i, r.opt)
		r.mu.Lock()
		if err != nil {
			r.cells[i] = cellState{done: true, err: err.Error()}
		} else {
			r.cells[i] = cellState{done: true, res: res}
		}
		r.mu.Unlock()
		s.cellsDone.Add(1)
		if err != nil {
			s.simsFailed.Add(1)
			return fmt.Errorf("%s: %w", r.spec.Buffers[i].DisplayName(), err)
		}
		s.simsOK.Add(1)
		return nil
	})
	s.jobs.Add(1)
	go func() {
		defer s.jobs.Done()
		err := r.job.Wait()
		s.finalize(r, err)
	}()
}

// finalize records a drained run's outcome and manages the cache: done
// runs stay addressable by fingerprint (bounded by LRU eviction), failed
// and cancelled runs leave the single-flight index so a resubmission
// simulates afresh.
func (s *Server) finalize(r *run, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	switch {
	case err == nil:
		r.status = StatusDone
	case errors.Is(err, context.Canceled) || r.canceled:
		r.status = StatusCanceled
		r.errMsg = context.Canceled.Error()
	default:
		r.status = StatusFailed
		r.errMsg = err.Error()
	}
	r.finished = time.Now()
	status := r.status
	r.mu.Unlock()

	// Cells never dispatched (cancellation landed mid-batch) bumped the
	// queued counter but ran no fn; reconcile so queue depth returns to 0.
	if completed, _, total := r.job.Progress(); total > completed {
		s.cellsDone.Add(uint64(total - completed))
	}

	if status == StatusDone {
		r.home = s.lru
		r.elem = s.lru.PushFront(r)
		for s.lru.Len() > s.cacheRuns {
			s.evict(s.lru.Back().Value.(*run))
			s.evictions.Add(1)
		}
		return
	}
	// Failed and cancelled runs leave the single-flight index (a
	// resubmission simulates afresh) and are kept only briefly for
	// polling, never displacing cached results.
	if r.fp != "" && s.byFP[r.fp] == r {
		delete(s.byFP, r.fp)
	}
	r.home = s.junk
	r.elem = s.junk.PushFront(r)
	for s.junk.Len() > junkRuns {
		s.evict(s.junk.Back().Value.(*run))
	}
}

// evict forgets a terminal run. Called with s.mu held.
func (s *Server) evict(r *run) {
	r.home.Remove(r.elem)
	delete(s.runs, r.id)
	if r.fp != "" && s.byFP[r.fp] == r {
		delete(s.byFP, r.fp)
	}
}

// view snapshots a run into its wire shape.
func (s *Server) view(r *run) *RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &RunStatus{
		ID:          r.id,
		Scenario:    r.spec.Name,
		Seed:        r.opt.Seed,
		Fingerprint: r.fp,
		Status:      r.status,
		Error:       r.errMsg,
		Created:     r.created,
		Cells:       make([]CellStatus, len(r.cells)),
	}
	if st.Seed == 0 {
		if st.Seed = r.spec.Seed; st.Seed == 0 {
			st.Seed = 1
		}
	}
	if Terminal(r.status) {
		f := r.finished
		st.Finished = &f
	}
	for i, c := range r.cells {
		cs := CellStatus{Buffer: r.spec.Buffers[i].DisplayName(), Done: c.done, Error: c.err}
		if c.done && c.err == "" {
			cs.Result = toCellResult(c.res)
		}
		st.Cells[i] = cs
	}
	return st
}

// metrics snapshots the counters.
func (s *Server) metrics() *Metrics {
	s.mu.Lock()
	tracked := len(s.runs)
	entries := s.lru.Len()
	active := tracked - entries - s.junk.Len()
	s.mu.Unlock()

	queued, done := s.cellsQueued.Load(), s.cellsDone.Load()
	m := &Metrics{
		UptimeS:       time.Since(s.start).Seconds(),
		Workers:       s.workers,
		Submitted:     s.submitted.Load(),
		CacheHits:     s.hits.Load(),
		Coalesced:     s.coalesced.Load(),
		CacheMisses:   s.misses.Load(),
		CacheEntries:  entries,
		CacheCapacity: s.cacheRuns,
		Evictions:     s.evictions.Load(),
		RunsTracked:   tracked,
		RunsActive:    active,
		QueueDepth:    int(queued - done),
		CellsRunning:  len(s.sem),
		SimsCompleted: s.simsOK.Load(),
		SimsFailed:    s.simsFailed.Load(),
	}
	if m.Submitted > 0 {
		m.CacheHitRate = float64(m.CacheHits+m.Coalesced) / float64(m.Submitted)
	}
	if m.UptimeS > 0 {
		m.SimsPerSec = float64(m.SimsCompleted) / m.UptimeS
	}
	return m
}

// --- HTTP handlers ---

// maxSpecBytes bounds an inline spec submission.
const maxSpecBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	specs := scenario.All()
	out := struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}{Scenarios: make([]ScenarioInfo, 0, len(specs))}
	for _, spec := range specs {
		out.Scenarios = append(out.Scenarios, toScenarioInfo(spec))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var rr RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding run request: %v", err)
		return
	}
	var (
		spec *scenario.Spec
		err  error
	)
	switch {
	case rr.Scenario != "" && len(rr.Spec) > 0:
		writeError(w, http.StatusBadRequest, "set either scenario or spec, not both")
		return
	case rr.Scenario != "":
		var ok bool
		if spec, ok = scenario.Lookup(rr.Scenario); !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q (GET /scenarios lists the registry)", rr.Scenario)
			return
		}
	case len(rr.Spec) > 0:
		if spec, err = scenario.ParseSpec(rr.Spec); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "a run needs a scenario name or an inline spec")
		return
	}
	if rr.DT < 0 {
		writeError(w, http.StatusBadRequest, "dt must be positive")
		return
	}
	st := s.Submit(spec, scenario.RunOptions{Seed: rr.Seed, DT: rr.DT})
	code := http.StatusAccepted
	if Terminal(st.Status) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleRun(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	r := s.runs[req.PathValue("id")]
	s.mu.Unlock()
	if r == nil {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.view(r))
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	r := s.runs[id]
	if r == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no run %q", id)
		return
	}
	r.mu.Lock()
	terminal := Terminal(r.status)
	if !terminal {
		// Leave the single-flight index immediately so new identical
		// submissions start fresh instead of attaching to a dying run.
		r.canceled = true
		if r.fp != "" && s.byFP[r.fp] == r {
			delete(s.byFP, r.fp)
		}
	} else {
		s.evict(r) // an explicit forget; not counted as a cache eviction
	}
	r.mu.Unlock()
	s.mu.Unlock()
	if !terminal {
		r.job.Cancel()
	}
	writeJSON(w, http.StatusOK, s.view(r))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics())
}
