// Package service is the simulation-as-a-service layer behind cmd/reactd:
// an HTTP/JSON API over the scenario registry and the experiment engine,
// with a content-addressed, single-flight result cache.
//
// The cache operates at cell granularity — one buffer of one spec under
// resolved seed/timestep options (scenario.Spec.FingerprintCell). Runs and
// sweeps are views assembled from shared cell entries: a repeat of a
// completed cell is served in O(1), concurrent submissions that overlap on
// any cell attach to the one in-flight simulation instead of duplicating
// it, and a run submitted while a sweep covering its cells is in flight
// coalesces per cell. Work executes asynchronously — a submit returns an
// id immediately, fresh cells fan out over a bounded global semaphore, and
// partial results are visible while a view drains.
//
// Endpoints:
//
//	GET    /scenarios    registry listing with fingerprints
//	POST   /runs         submit a run (named scenario or inline spec)
//	GET    /runs/{id}    poll status and (partial) results
//	DELETE /runs/{id}    cancel an in-flight run / forget a finished one
//	POST   /sweeps       submit a sweep: spec × seed list/range × dt axis × buffer subset
//	GET    /sweeps/{id}  poll per-cell results and the per-axis summary
//	DELETE /sweeps/{id}  cancel an in-flight sweep / forget a finished one
//	GET    /metrics      Prometheus text exposition (JSON via Accept: application/json)
//	GET    /metrics.json the JSON metrics report, unconditionally
//	GET    /traces/{id}  this node's raw spans for a trace id (peer merge primitive)
//
// plus a trace view per submission kind — GET /runs/{id}/trace,
// /sweeps/{id}/trace, /explorations/{id}/trace — assembling the submission's
// span tree, merged across cluster peers so a forwarded exploration renders
// as one tree however many nodes simulated its cells.
//
// Every submission is traced: a root span is minted at submit (or adopted
// from the client's traceparent header), batch groups and cell simulations
// nest under it, and peer fan-out propagates the context so remote spans
// carry the originating trace id.
package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/explore"
	"react/internal/obs"
	"react/internal/scenario"
	"react/internal/sim"
	"react/internal/store"
)

// DefaultCacheRuns bounds the finished run/sweep views kept for reuse when
// Config.CacheRuns is zero.
const DefaultCacheRuns = 64

// DefaultCacheCells bounds the finished cells kept for content-addressed
// reuse when Config.CacheCells is zero. Cells are the unit of cached work;
// a typical view holds four to six of them.
const DefaultCacheCells = 512

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently simulating cells across all runs and
	// sweeps (0 = GOMAXPROCS).
	Workers int
	// CacheRuns bounds the finished run/sweep views kept for polling and
	// whole-run deduplication (0 = DefaultCacheRuns). In-flight views are
	// never evicted. Evicting a view does not evict its cells.
	CacheRuns int
	// CacheCells bounds the finished cells kept for content-addressed
	// reuse (0 = DefaultCacheCells). In-flight cells are never evicted.
	CacheCells int
	// Store, when set, backs the cell cache with a persistent disk tier:
	// completed cells write through, LRU eviction demotes to disk instead
	// of deleting, and a cache miss consults the disk before simulating.
	// The store stays the caller's to Close (after Server.Close).
	Store *store.Store
	// Peers, when non-empty, turns on cluster mode: the base URLs of the
	// other reactd nodes sharing the cell space. Ownership of a cell is
	// rendezvous hashing of its fingerprint over the ring (Peers + Self),
	// so every node must be configured with the same member URL strings.
	Peers []string
	// Self is this node's own advertised base URL, required with Peers.
	// It may also appear in Peers; the ring is the deduplicated union.
	Self string
	// PeerTimeout bounds each HTTP request to a peer
	// (0 = DefaultPeerTimeout).
	PeerTimeout time.Duration
	// Logger, when set, receives structured request and lifecycle logs
	// (one line per HTTP request, with a server-scoped request id). Nil
	// discards logs — the default keeps the service silent, as before.
	Logger *slog.Logger
}

// Server implements the service over http.Handler. Create with New, shut
// down with Close.
type Server struct {
	workers    int
	cacheRuns  int
	cacheCells int
	store      *store.Store // nil = memory-only
	cluster    *cluster     // nil = single node
	mux        *http.ServeMux
	ctx        context.Context
	shutdown   context.CancelFunc
	sem        chan struct{}
	jobs       sync.WaitGroup
	start      time.Time
	log        *slog.Logger
	reqSeq     atomic.Uint64 // HTTP request-id mint

	// Observability: the metrics registry behind GET /metrics, the span
	// store behind the trace endpoints, and the sliding sims/sec window.
	// The counters below are registry handles — still lock-free atomics,
	// bumped from cell goroutines — so the JSON report and the Prometheus
	// exposition read one set of numbers.
	reg   *obs.Registry
	spans *obs.SpanStore
	rate  *obs.RateWindow // completed sims over the trailing minute
	node  string          // span attribution: cluster self URL, or "local"

	// Monotonic counters.
	submitted, hits, coalesced, misses, evictions   *obs.Counter // run submissions
	sweeps                                          *obs.Counter // sweep submissions
	explorations                                    *obs.Counter // exploration submissions
	explorePoints, exploreCells                     *obs.Counter // exploration points evaluated / cells attached
	cellHits, cellCoalesced, cellMisses, cellEvicts *obs.Counter // cell attachments
	cellsQueued, cellsDone                          *obs.Counter // scheduled cells of any outcome (queue depth)
	simsOK, simsFailed                              *obs.Counter // actual simulations: succeeded / errored
	// Batched-executor accounting (sim.Stats totals across every batch).
	ticksSimulated, ticksFastForwarded, tracePasses *obs.Counter
	// Disk-tier accounting (zero without a Store).
	diskHits, diskMisses, diskPuts *obs.Counter
	// Peer fan-out accounting (zero without cluster mode).
	peerRequests, peerRetries, peerFallbacks, peerCells *obs.Counter

	// Latency and shape distributions.
	hCellSim    *obs.Histogram // wall time of the batch pass that produced each cell
	hBatchCells *obs.Histogram // cells per lockstep batch
	hQueueWait  *obs.Histogram // enqueue → worker-slot acquisition
	hPeerRTT    *obs.Histogram // peer submission round trip (submit → terminal)
	hDiskPut    *obs.Histogram // disk-tier write-through latency
	hDiskGet    *obs.Histogram // disk-tier promote-read latency

	// mu guards the stores below and every cell/view list-membership and
	// refcount field. Lock order: mu before view.mu.
	mu      sync.Mutex
	seq     int
	views   map[string]*view // every tracked run and sweep, by id
	byFP    map[string]*view // whole-run single-flight index: running or done runs
	cells   map[string]*cell // cell single-flight index: running or cached cells
	cellLRU *list.List       // cached done cells, most recently used first
	viewLRU *list.List       // done views kept for polling/dedup, MRU first
	junk    *list.List       // failed/cancelled views kept briefly for polling
	// pending holds fresh cells attached but not yet scheduled: a
	// submission attaches all its cells first, then flushPendingLocked groups
	// them by (trace, seed, dt) batch key so cells sharing a trace pass
	// run in lockstep (scenario.RunBatch) instead of one pass each.
	pending []pendingCell
}

// pendingCell is one fresh cell awaiting batch scheduling. noFwd pins the
// cell to this node even in cluster mode — set on peer-forwarded
// submissions so a forwarded cell is answered where it lands, whatever
// this node's own ring config says.
type pendingCell struct {
	c     *cell
	spec  *scenario.Spec
	i     int
	opt   scenario.RunOptions
	noFwd bool
	// tctx is the attaching view's root span context: the parent of the
	// batch-group span this cell's simulation will nest under.
	tctx obs.SpanContext
}

// batchKey groups pending cells that can share one lockstep trace pass:
// the same trace spec, effective seed and effective timestep (recording
// cadence rides along because it is uniform per batch call).
type batchKey struct {
	trace scenario.TraceSpec
	seed  uint64
	dt    float64
	rec   float64
}

// junkRuns bounds the failed/cancelled views kept around for polling. They
// are tracked separately from the done views so that non-reusable views
// never evict reusable ones.
const junkRuns = 32

// maxSweepCells bounds one sweep's fan-out (seeds × dts × buffers).
const maxSweepCells = 4096

// cell is one content-addressed unit of simulation work: a single buffer
// of a spec under resolved options. Cells are shared between every view
// that needs them; res/err are immutable once done is closed.
type cell struct {
	fp     string // "" when the cell has no canonical encoding
	buffer string // display name
	cancel context.CancelFunc

	// refs counts the live (non-terminal) views attached; a running cell
	// whose refs drop to zero is cancelled. Guarded by Server.mu, like the
	// LRU slot below.
	refs  int
	elem  *list.Element
	inLRU bool

	done chan struct{} // closed when terminal
	res  sim.Result
	err  string // "" = ok

	// Per-cell tick accounting from the batch executor (sim.CellStats),
	// written before done closes — the close is the happens-before edge, as
	// for res — and zero for cached, disk-promoted and peer-fetched cells.
	ticks, ffTicks uint64
}

// terminal reports whether the cell has finished (any outcome).
func (c *cell) terminal() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// cellKey labels one cell slot of a view with its axis coordinates.
type cellKey struct {
	Seed   uint64
	DT     float64 // resolved timestep
	Buffer string  // display name
}

// view is one tracked submission — a run, a sweep, or an exploration —
// assembled from shared cells.
type view struct {
	id      string
	kind    string // "run", "sweep" or "exploration"
	fp      string // whole-run fingerprint; "" for sweeps and uncacheable specs
	spec    *scenario.Spec
	opt     scenario.RunOptions
	created time.Time
	cells   []*cell
	keys    []cellKey // index-parallel to cells

	// noFwd pins the view's fresh cells to this node in cluster mode;
	// set on peer-forwarded submissions.
	noFwd bool

	// Tracing: the submission's root span (ended at finalization) and its
	// context, under which every batch and cell span nests. The context is
	// immutable after creation; root's methods are internally synchronized.
	tctx obs.SpanContext
	root *obs.ActiveSpan

	// Sweep axes, resolved at submission.
	seeds   []uint64
	dts     []float64
	buffers []string

	// Exploration state: the resolved plan, the engine's per-view cancel,
	// each cell's point index (parallel to cells), and — once the engine
	// drains — its result or error. An exploration attaches cells batch by
	// batch as its strategy probes the lattice, so cells/keys/points and
	// the cache accounting below GROW over the view's lifetime; all of it
	// is guarded by Server.mu.
	plan      *explore.Plan
	vcancel   context.CancelFunc
	points    []int
	expResult *explore.Result
	expErr    error

	// Submission-time cache accounting (immutable after creation for runs
	// and sweeps; grows under Server.mu for explorations).
	cachedCells, coalescedCells, newCells int

	elem *list.Element // slot in home once terminal
	home *list.List    // the viewLRU (done) or junk (failed/cancelled) list

	// detached (cell refs already released) is only touched during
	// release, which runs with Server.mu held — it belongs to that lock,
	// not to the view's own mutex below.
	detached bool

	mu       sync.Mutex
	status   string
	canceled bool
	errMsg   string
	finished time.Time
}

// New builds a ready-to-serve Server. It fails only on an invalid cluster
// configuration (Config.Peers/Self).
func New(cfg Config) (*Server, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheRuns := cfg.CacheRuns
	if cacheRuns <= 0 {
		cacheRuns = DefaultCacheRuns
	}
	cacheCells := cfg.CacheCells
	if cacheCells <= 0 {
		cacheCells = DefaultCacheCells
	}
	cl, err := newCluster(cfg.Self, cfg.Peers, cfg.PeerTimeout)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers:    workers,
		cacheRuns:  cacheRuns,
		cacheCells: cacheCells,
		store:      cfg.Store,
		cluster:    cl,
		ctx:        ctx,
		shutdown:   cancel,
		sem:        make(chan struct{}, workers),
		start:      time.Now(),
		log:        cfg.Logger,
		node:       "local",
		views:      map[string]*view{},
		byFP:       map[string]*view{},
		cells:      map[string]*cell{},
		cellLRU:    list.New(),
		viewLRU:    list.New(),
		junk:       list.New(),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if cl != nil {
		s.node = cl.self
	}
	s.initObs()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleViewTrace("run"))
	mux.HandleFunc("DELETE /runs/{id}", s.handleDelete)
	mux.HandleFunc("POST /sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweep)
	mux.HandleFunc("GET /sweeps/{id}/trace", s.handleViewTrace("sweep"))
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleSweepDelete)
	mux.HandleFunc("POST /explorations", s.handleExploreSubmit)
	mux.HandleFunc("GET /explorations/{id}", s.handleExplore)
	mux.HandleFunc("GET /explorations/{id}/trace", s.handleViewTrace("exploration"))
	mux.HandleFunc("DELETE /explorations/{id}", s.handleExploreDelete)
	mux.HandleFunc("GET /traces/{id}", s.handleTraceRaw)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux = mux
	return s, nil
}

// initObs builds the metrics registry, the span store, and the sliding
// sims/sec window. Counter handles land on the Server fields the rest of
// this file bumps; gauges read live state through closures (a scrape takes
// s.mu briefly for the cache sizes — registration order is New-time only,
// and nothing holding s.mu ever scrapes, so the lock order is one-way).
func (s *Server) initObs() {
	r := obs.NewRegistry()
	s.reg = r
	s.spans = obs.NewSpanStore(0, 0)
	s.rate = obs.NewRateWindow(60)

	s.submitted = r.Counter("react_runs_submitted_total", "Run submissions accepted (POST /runs and peer forwards).")
	s.hits = r.Counter("react_run_cache_hits_total", "Run submissions served entirely from cache.")
	s.coalesced = r.Counter("react_run_coalesced_total", "Run submissions attached to identical in-flight work.")
	s.misses = r.Counter("react_run_cache_misses_total", "Run submissions that scheduled at least one fresh cell.")
	s.evictions = r.Counter("react_run_evictions_total", "Finished run/sweep views evicted by LRU pressure.")
	s.sweeps = r.Counter("react_sweeps_submitted_total", "Sweep submissions accepted.")
	s.explorations = r.Counter("react_explorations_submitted_total", "Exploration submissions accepted.")
	s.explorePoints = r.Counter("react_explore_points_total", "Lattice points probed by exploration strategies.")
	s.exploreCells = r.Counter("react_explore_cells_total", "Cells attached by exploration strategies.")
	s.cellHits = r.Counter("react_cell_hits_total", "Cell attachments served from the cache (memory or disk).")
	s.cellCoalesced = r.Counter("react_cell_coalesced_total", "Cell attachments joined to an in-flight simulation.")
	s.cellMisses = r.Counter("react_cell_misses_total", "Cell attachments that scheduled a fresh simulation.")
	s.cellEvicts = r.Counter("react_cell_evictions_total", "Cached cells evicted by LRU pressure.")
	s.cellsQueued = r.Counter("react_cells_queued_total", "Cells handed to the scheduler (any outcome).")
	s.cellsDone = r.Counter("react_cells_done_total", "Scheduled cells that reached a terminal state.")
	s.simsOK = r.Counter("react_sims_completed_total", "Local simulations that completed successfully.")
	s.simsFailed = r.Counter("react_sims_failed_total", "Local simulations that errored.")
	s.ticksSimulated = r.Counter("react_ticks_simulated_total", "Cell-ticks actually stepped by the batch executor.")
	s.ticksFastForwarded = r.Counter("react_ticks_fastforwarded_total", "Cell-ticks skipped by the dead-time fast-forward.")
	s.tracePasses = r.Counter("react_trace_passes_total", "Lockstep passes over a trace (one per batch).")
	s.diskHits = r.Counter("react_disk_hits_total", "Memory misses served from the disk tier.")
	s.diskMisses = r.Counter("react_disk_misses_total", "Memory misses the disk tier could not serve.")
	s.diskPuts = r.Counter("react_disk_puts_total", "Cells written through to the disk tier.")
	s.peerRequests = r.Counter("react_peer_requests_total", "Run submissions sent to cluster peers.")
	s.peerRetries = r.Counter("react_peer_retries_total", "Peer submissions retried after a transport failure.")
	s.peerFallbacks = r.Counter("react_peer_fallbacks_total", "Peer fan-outs degraded to local simulation.")
	s.peerCells = r.Counter("react_peer_cells_total", "Cells answered by cluster peers.")

	s.hCellSim = r.Histogram("react_cell_sim_duration_seconds",
		"Wall time of the lockstep batch pass that produced each locally simulated cell (observed once per successful cell).",
		obs.DurationBuckets)
	s.hBatchCells = r.Histogram("react_batch_cells",
		"Cells riding one lockstep batch pass.", obs.SizeBuckets)
	s.hQueueWait = r.Histogram("react_queue_wait_seconds",
		"Batch wait from enqueue to worker-slot acquisition.", obs.DurationBuckets)
	s.hPeerRTT = r.Histogram("react_peer_rtt_seconds",
		"Peer run round trip, submission to terminal status.", obs.DurationBuckets)
	s.hDiskPut = r.Histogram("react_disk_put_seconds",
		"Disk-tier write-through latency.", obs.DurationBuckets)
	s.hDiskGet = r.Histogram("react_disk_get_seconds",
		"Disk-tier promote-read latency.", obs.DurationBuckets)

	r.Gauge("react_start_time_seconds", "Unix time the server started.").Set(float64(s.start.UnixNano()) / 1e9)
	r.InfoGauge("react_build_info", "Build metadata; the value is always 1.", obs.BuildInfoLabels())
	r.GaugeFunc("react_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	r.GaugeFunc("react_workers", "Worker-slot bound on concurrently simulating batches.", func() float64 {
		return float64(s.workers)
	})
	r.GaugeFunc("react_cells_running", "Worker slots currently occupied.", func() float64 {
		return float64(len(s.sem))
	})
	r.GaugeFunc("react_queue_depth", "Scheduled cells not yet terminal.", func() float64 {
		return float64(int64(s.cellsQueued.Load() - s.cellsDone.Load()))
	})
	r.GaugeFunc("react_sims_per_sec_60s", "Completed simulations per second over the trailing minute.", s.rate.Rate)
	r.GaugeFunc("react_run_cache_entries", "Finished views held for reuse.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.viewLRU.Len())
	})
	r.GaugeFunc("react_cell_cache_entries", "Finished cells held for content-addressed reuse.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.cellLRU.Len())
	})
	r.GaugeFunc("react_dropped_spans", "Spans dropped by span-store bounds.", func() float64 {
		return float64(s.spans.Dropped())
	})
	if s.store != nil {
		r.GaugeFunc("react_disk_cells", "Cells resident in the disk tier.", func() float64 {
			return float64(s.store.Len())
		})
		r.GaugeFunc("react_disk_quarantined", "Disk entries quarantined as corrupt since open.", func() float64 {
			return float64(s.store.Quarantined())
		})
	}
	if s.cluster != nil {
		r.GaugeFunc("react_cluster_peers", "Other members of the cluster ring.", func() float64 {
			return float64(len(s.cluster.others))
		})
	}
}

// ServeHTTP implements http.Handler. Body handling is normalized here for
// every method: the body (if any) is capped at maxSpecBytes, and whatever
// a handler leaves unread is drained so the connection can be reused —
// the GET/DELETE handlers never read bodies at all, and the POST decoders
// stop at the first JSON value. Every request gets a server-scoped id and
// a structured log line (discarded unless Config.Logger is set).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	began := time.Now()
	rid := s.reqSeq.Add(1)
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
		defer func() {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}()
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	attrs := []any{
		"req_id", rid,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.code,
		"dur_ms", float64(time.Since(began).Microseconds()) / 1e3,
	}
	if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
		if sc, ok := obs.ParseTraceparent(tp); ok {
			attrs = append(attrs, "trace_id", sc.TraceID.String())
		}
	}
	s.log.Info("http", attrs...)
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Close cancels every in-flight cell and waits for the workers to drain.
// The HTTP listener (if any) is the caller's to shut down first.
func (s *Server) Close() {
	s.shutdown()
	s.jobs.Wait()
}

// --- cell lifecycle ---

// attachCellLocked resolves one cell address against the single-flight index:
// a cached cell is reused, an in-flight cell is joined, and a fresh cell
// is scheduled. Called with s.mu held; the returned state is one of
// cellCached / cellInFlight / cellFresh.
const (
	cellCached = iota
	cellInFlight
	cellFresh
)

func (s *Server) attachCellLocked(spec *scenario.Spec, i int, opt scenario.RunOptions, noFwd bool, tctx obs.SpanContext) (*cell, int) {
	fp, _ := spec.FingerprintCell(i, opt)
	if fp != "" {
		if c := s.cells[fp]; c != nil {
			c.refs++
			if c.terminal() {
				// Only successful cells stay in the index, so a terminal
				// index entry is always servable.
				s.cellHits.Add(1)
				if c.inLRU {
					s.cellLRU.MoveToFront(c.elem)
				}
				return c, cellCached
			}
			s.cellCoalesced.Add(1)
			return c, cellInFlight
		}
		// A memory miss consults the disk tier before simulating: a cell
		// demoted by LRU pressure — or computed before a restart — promotes
		// back into the cache as an ordinary hit, without a simulation.
		// The read happens under s.mu; it is one small file, and the
		// alternative (optimistic unlock) would race the single-flight
		// index. A corrupt entry was quarantined by the store and reads
		// as a miss.
		if s.store != nil && s.store.Has(fp) {
			began := time.Now()
			if payload, err := s.store.Get(fp); err == nil {
				s.hDiskGet.Observe(time.Since(began).Seconds())
				if res, derr := decodeCell(payload); derr == nil {
					c := &cell{fp: fp, buffer: spec.Buffers[i].DisplayName(), refs: 1, done: make(chan struct{})}
					c.res = res
					close(c.done)
					s.cells[fp] = c
					s.cacheCellLocked(c)
					s.cellHits.Add(1)
					s.diskHits.Add(1)
					s.spans.Event(tctx, "disk-hit", s.node, map[string]string{"buffer": c.buffer})
					return c, cellCached
				}
				// Decodable by the store but not by us (a payload written
				// by an incompatible build): drop it and resimulate.
				s.store.Delete(fp)
			}
			s.diskMisses.Add(1)
		} else if s.store != nil {
			s.diskMisses.Add(1)
		}
	}
	c := &cell{fp: fp, buffer: spec.Buffers[i].DisplayName(), refs: 1, done: make(chan struct{})}
	if fp != "" {
		s.cells[fp] = c
	}
	s.cellMisses.Add(1)
	s.pending = append(s.pending, pendingCell{c: c, spec: spec, i: i, opt: opt, noFwd: noFwd, tctx: tctx})
	return c, cellFresh
}

// encodeCell and decodeCell are the disk tier's payload codec: the plain
// JSON of a sim.Result. Go's float64 encoding is shortest-representation
// and round-trips bit-exactly, so a grid served from disk is bit-identical
// to the one simulated (recordings excluded — Samples do not persist).
func encodeCell(res sim.Result) ([]byte, error) {
	res.Samples = nil
	return json.Marshal(res)
}

func decodeCell(payload []byte) (sim.Result, error) {
	var res sim.Result
	err := json.Unmarshal(payload, &res)
	return res, err
}

// flushPendingLocked groups the pending fresh cells by batch key and schedules
// one lockstep batch per group, so a sweep's cells sharing a (trace, seed,
// dt) address make one pass over the trace however many buffers ride it.
// In cluster mode each group is further partitioned by ring owner: owned
// (and untransportable) cells run locally, the rest fan out to their
// owners — still grouped, so remote fan-out keeps the
// one-trace-pass-per-seed batching. Called with s.mu held after a
// submission attaches all its cells.
func (s *Server) flushPendingLocked() {
	pend := s.pending
	s.pending = nil
	groups := map[batchKey][]pendingCell{}
	var order []batchKey
	for _, p := range pend {
		k := batchKey{
			trace: p.spec.Trace,
			seed:  p.spec.ResolveSeed(p.opt.Seed),
			dt:    p.spec.ResolveDT(p.opt.DT),
			rec:   p.opt.RecordDT,
		}
		if p.c.fp == "" {
			// Unfingerprintable cells carry arbitrary Go constructors the
			// service cannot reason about (side effects, shared state), so
			// they keep per-cell scheduling: each runs as a batch of one,
			// finishing — and cancelling — independently.
			s.startBatch([]pendingCell{p}, scenario.RunOptions{Seed: k.seed, DT: k.dt, RecordDT: k.rec})
			continue
		}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	for _, k := range order {
		// Fully resolved options apply uniformly to every member, whatever
		// each spec's own defaults were (resolution is deterministic, so
		// results match per-cell runs bit for bit).
		opt := scenario.RunOptions{Seed: k.seed, DT: k.dt, RecordDT: k.rec}
		if s.cluster == nil {
			s.startBatch(groups[k], opt)
			continue
		}
		var local []pendingCell
		byOwner := map[string][]pendingCell{}
		var owners []string
		for _, p := range groups[k] {
			// Cells that cannot travel stay local: forwarded submissions
			// (cycle breaking), preloaded traces (no JSON encoding), and
			// recorded runs (samples are not part of the wire cell result).
			if p.noFwd || p.spec.Trace.Loaded != nil || k.rec != 0 {
				local = append(local, p)
				continue
			}
			owner := s.cluster.owner(p.c.fp)
			if owner == s.cluster.self {
				local = append(local, p)
				continue
			}
			if _, ok := byOwner[owner]; !ok {
				owners = append(owners, owner)
			}
			byOwner[owner] = append(byOwner[owner], p)
		}
		if len(local) > 0 {
			s.startBatch(local, opt)
		}
		for _, owner := range owners {
			s.startPeerGroup(owner, byOwner[owner], opt)
		}
	}
}

// startBatch schedules one lockstep batch over the global semaphore: the
// whole batch occupies a single worker slot and makes a single pass over
// its trace. Each member cell's cancel releases only that member; the
// batch context is cancelled when every member has been released, so one
// abandoned cell never kills siblings another view still wants. Called
// with s.mu held; returns immediately.
func (s *Server) startBatch(group []pendingCell, opt scenario.RunOptions) {
	ctx, cancel := context.WithCancel(s.ctx)
	remaining := int64(len(group))
	for _, p := range group {
		var once sync.Once
		p.c.cancel = func() {
			once.Do(func() {
				if atomic.AddInt64(&remaining, -1) == 0 {
					cancel()
				}
			})
		}
	}
	s.cellsQueued.Add(uint64(len(group)))
	enqueued := time.Now()
	s.jobs.Add(1)
	go func() {
		defer s.jobs.Done()
		defer cancel()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			for _, p := range group {
				s.completeCell(p.c, sim.Result{}, ctx.Err(), cellSimulated, 0, sim.CellStats{})
			}
			return
		}
		s.hQueueWait.Observe(time.Since(enqueued).Seconds())
		s.hBatchCells.Observe(float64(len(group)))
		// One batch span per lockstep pass, one "sim" child per member. A
		// flush drains one submission, so the group shares its view's root
		// span context.
		bspan := s.spans.Start(group[0].tctx, "batch", s.node,
			map[string]string{"cells": strconv.Itoa(len(group))})
		cellSpans := make([]*obs.ActiveSpan, len(group))
		for i, p := range group {
			cellSpans[i] = s.spans.Start(bspan.Context(), "sim", s.node,
				map[string]string{"buffer": p.spec.Buffers[p.i].DisplayName()})
		}
		items := make([]scenario.BatchItem, len(group))
		for i, p := range group {
			items[i] = scenario.BatchItem{Spec: p.spec, Buffer: p.i}
		}
		var st sim.Stats
		began := time.Now()
		res, err := scenario.RunBatch(items, opt, &st)
		dur := time.Since(began)
		<-s.sem
		s.ticksSimulated.Add(st.TicksSimulated)
		s.ticksFastForwarded.Add(st.TicksFastForwarded)
		s.tracePasses.Add(st.TracePasses)
		for _, sp := range cellSpans {
			sp.End(err)
		}
		bspan.End(err)
		if err != nil {
			// A batch fails as a unit: a member that cannot even build its
			// cell poisons the shared pass, and every sibling reports the
			// same labeled error.
			for _, p := range group {
				s.completeCell(p.c, sim.Result{}, err, cellSimulated, 0, sim.CellStats{})
			}
			return
		}
		for i, p := range group {
			s.completeCell(p.c, res[i], nil, cellSimulated, dur, st.Cells[i])
		}
	}()
}

// Cell result origins for completeCell. Only locally simulated results
// count in the sims_* metrics and write through to the disk tier —
// a peer-fetched cell was simulated (and persisted) on its owner, and
// persisting it here would erode the shards' disjointness.
const (
	cellSimulated = iota
	cellFromPeer
)

// completeCell records a cell's outcome and manages the cell cache: a
// successful cell still wanted by the index becomes a cached entry
// (bounded by LRU eviction) and writes through to the disk tier; failed
// and cancelled cells leave the index so a resubmission simulates afresh.
//
// dur is the wall time of the batch pass that produced the cell and cst
// its per-cell tick accounting — both zero for peer-fetched and cancelled
// cells. The sim-duration histogram is observed exactly where simsOK is
// bumped, so its cumulative count always equals sims_completed.
func (s *Server) completeCell(c *cell, res sim.Result, err error, origin int, dur time.Duration, cst sim.CellStats) {
	if err == nil && origin == cellSimulated && c.fp != "" && s.store != nil && res.Samples == nil {
		// Write through before publishing, outside s.mu: the disk write
		// must not stall attachments, and a cell is only servable from
		// disk after it is servable from memory anyway.
		if payload, perr := encodeCell(res); perr == nil {
			began := time.Now()
			if s.store.Put(c.fp, payload) == nil {
				s.diskPuts.Add(1)
				s.hDiskPut.Observe(time.Since(began).Seconds())
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		c.res = res
		c.ticks = cst.TicksSimulated
		c.ffTicks = cst.TicksFastForwarded
		if origin == cellSimulated {
			s.simsOK.Add(1)
			s.rate.Add(1)
			s.hCellSim.Observe(dur.Seconds())
		}
		if c.fp != "" && s.cells[c.fp] == c {
			s.cacheCellLocked(c)
		}
	case errors.Is(err, context.Canceled):
		c.err = context.Canceled.Error()
		s.dropCellIndex(c)
	default:
		c.err = err.Error()
		if origin == cellSimulated {
			s.simsFailed.Add(1)
		}
		s.dropCellIndex(c)
	}
	close(c.done)
	s.cellsDone.Add(1)
}

// cacheCellLocked files a terminal successful cell in the LRU and evicts
// the overflow. Called with s.mu held.
func (s *Server) cacheCellLocked(c *cell) {
	c.elem = s.cellLRU.PushFront(c)
	c.inLRU = true
	for s.cellLRU.Len() > s.cacheCells {
		s.evictCell(s.cellLRU.Back().Value.(*cell))
		s.cellEvicts.Add(1)
	}
}

// evictCell drops a cached cell from memory. With a disk tier this is a
// demotion, not a deletion: the cell's entry stays on disk, and the next
// attachment of its address promotes it back without a simulation.
// Called with s.mu held.
func (s *Server) evictCell(c *cell) {
	s.cellLRU.Remove(c.elem)
	c.inLRU = false
	s.dropCellIndex(c)
}

// dropCellIndex removes a cell from the single-flight index if it still
// owns its address. Called with s.mu held.
func (s *Server) dropCellIndex(c *cell) {
	if c.fp != "" && s.cells[c.fp] == c {
		delete(s.cells, c.fp)
	}
}

// releaseCellsLocked detaches a view from its cells: refcounts drop, and a
// running cell nobody else wants is cancelled and leaves the index so new
// identical submissions start fresh instead of attaching to a dying cell.
// Called with s.mu held; idempotent.
func (s *Server) releaseCellsLocked(v *view) {
	if v.detached {
		return
	}
	v.detached = true
	for _, c := range v.cells {
		c.refs--
		if !c.terminal() && c.refs == 0 {
			if c.cancel != nil {
				c.cancel()
			}
			s.dropCellIndex(c)
		}
	}
}

// --- view lifecycle ---

// newViewLocked allocates a tracked view, minting its root span: a fresh
// trace normally, or a child of the submitter's span when the submission
// carried a traceparent (a client propagating its own trace, or a peer
// forwarding cells — either way the view's spans join the caller's trace).
// Called with s.mu held.
func (s *Server) newViewLocked(kind, prefix string, spec *scenario.Spec, opt scenario.RunOptions, parent obs.SpanContext) *view {
	s.seq++
	v := &view{
		id:      fmt.Sprintf("%s%06d", prefix, s.seq),
		kind:    kind,
		spec:    spec,
		opt:     opt,
		created: time.Now(),
		status:  StatusRunning,
	}
	v.root = s.spans.Start(parent, kind, s.node, map[string]string{"scenario": spec.Name})
	v.root.SetAttr("id", v.id)
	v.tctx = v.root.Context()
	return v
}

// addCell attaches one cell to the view and keeps the submission-time
// cache accounting, returning the shared cell. Called with s.mu held.
func (s *Server) addCell(v *view, spec *scenario.Spec, i int, opt scenario.RunOptions, key cellKey) *cell {
	c, state := s.attachCellLocked(spec, i, opt, v.noFwd, v.tctx)
	v.cells = append(v.cells, c)
	v.keys = append(v.keys, key)
	switch state {
	case cellCached:
		v.cachedCells++
	case cellInFlight:
		v.coalescedCells++
	case cellFresh:
		v.newCells++
	}
	return c
}

// track publishes the view and arranges its finalization: synchronously
// when every cell is already terminal (a pure cache hit), otherwise
// through a waiter goroutine. Called with s.mu held.
func (s *Server) trackLocked(v *view) {
	s.views[v.id] = v
	allDone := true
	for _, c := range v.cells {
		if !c.terminal() {
			allDone = false
			break
		}
	}
	if allDone {
		s.finalizeLocked(v)
		return
	}
	s.jobs.Add(1)
	go func() {
		defer s.jobs.Done()
		for _, c := range v.cells {
			<-c.done
		}
		s.mu.Lock()
		s.finalizeLocked(v)
		s.mu.Unlock()
	}()
}

// finalizeLocked records a drained view's outcome and files it: done views
// stay pollable and (for runs) addressable by fingerprint, bounded by LRU
// eviction; failed and cancelled views leave the whole-run index and are
// kept only briefly, never displacing reusable views. Called with s.mu
// held.
func (s *Server) finalizeLocked(v *view) {
	s.releaseCellsLocked(v)
	v.mu.Lock()
	status, errMsg := StatusDone, ""
	if v.kind == "exploration" {
		// An exploration's outcome is the engine's, not the cells': bisect
		// legitimately leaves lattice points unevaluated, and a shared cell
		// failing surfaces as the engine error.
		switch {
		case v.canceled || errors.Is(v.expErr, context.Canceled):
			status, errMsg = StatusCanceled, context.Canceled.Error()
		case v.expErr != nil:
			status, errMsg = StatusFailed, v.expErr.Error()
		}
	} else {
		for _, c := range v.cells {
			if c.err == "" {
				continue
			}
			if c.err == context.Canceled.Error() {
				status, errMsg = StatusCanceled, c.err
			} else {
				status, errMsg = StatusFailed, fmt.Sprintf("%s: %s", c.buffer, c.err)
			}
			break
		}
	}
	if v.canceled {
		status, errMsg = StatusCanceled, context.Canceled.Error()
	}
	v.status = status
	v.errMsg = errMsg
	v.finished = time.Now()
	v.mu.Unlock()
	v.root.SetAttr("status", status)
	if status == StatusDone {
		v.root.End(nil)
	} else {
		v.root.End(errors.New(errMsg))
	}

	if status == StatusDone {
		v.home = s.viewLRU
		v.elem = s.viewLRU.PushFront(v)
		for s.viewLRU.Len() > s.cacheRuns {
			s.evictView(s.viewLRU.Back().Value.(*view))
			s.evictions.Add(1)
		}
		return
	}
	if v.fp != "" && s.byFP[v.fp] == v {
		delete(s.byFP, v.fp)
	}
	v.home = s.junk
	v.elem = s.junk.PushFront(v)
	for s.junk.Len() > junkRuns {
		s.evictView(s.junk.Back().Value.(*view))
	}
}

// evictView forgets a terminal view (its cells stay cached). Called with
// s.mu held.
func (s *Server) evictView(v *view) {
	v.home.Remove(v.elem)
	delete(s.views, v.id)
	if v.fp != "" && s.byFP[v.fp] == v {
		delete(s.byFP, v.fp)
	}
}

// forgetView is the explicit DELETE of a terminal view: the view is
// dropped and so are its cached cells — from the disk tier too, unlike
// an LRU demotion — except cells still referenced by a live view (a sweep
// in flight over the same addresses), which must survive. Called with
// s.mu held.
func (s *Server) forgetView(v *view) {
	s.evictView(v)
	for _, c := range v.cells {
		if c.refs != 0 {
			continue
		}
		if c.inLRU {
			s.evictCell(c) // an explicit forget; not counted as a cache eviction
		}
		// Delete the disk entry unless another live cell owns the address
		// (it would just re-persist, but why thrash).
		if s.store != nil && c.fp != "" && s.cells[c.fp] == nil {
			s.store.Delete(c.fp)
		}
	}
}

// getStatus snapshots a view's status under its own lock.
func (v *view) getStatus() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.status
}

// --- run submission ---

// Submit resolves, deduplicates and (if needed) launches a run, returning
// its submission view. It is the Go-level core of POST /runs.
func (s *Server) Submit(spec *scenario.Spec, opt scenario.RunOptions) *RunStatus {
	return s.submit(spec, opt, false, obs.SpanContext{})
}

// submit is Submit plus the cluster-internal noFwd flag (RunRequest
// .NoForward): a forwarded run's fresh cells never forward again. parent,
// when valid, nests the run's root span under the submitter's trace (the
// HTTP layer fills it from the traceparent header).
func (s *Server) submit(spec *scenario.Spec, opt scenario.RunOptions, noFwd bool, parent obs.SpanContext) *RunStatus {
	s.submitted.Add(1)
	// A spec with no canonical encoding (Go-only constructors) still runs;
	// it just cannot be deduplicated or cached.
	fp, _ := spec.FingerprintRun(opt)

	s.mu.Lock()
	if fp != "" {
		if v := s.byFP[fp]; v != nil {
			status := v.getStatus()
			if status == StatusDone {
				s.hits.Add(1)
				s.viewLRU.MoveToFront(v.elem)
				s.mu.Unlock()
				st := s.runStatus(v)
				st.Cached = true
				return st
			}
			if status == StatusRunning {
				s.coalesced.Add(1)
				s.mu.Unlock()
				st := s.runStatus(v)
				st.Coalesced = true
				return st
			}
			// A failed or cancelled run should have left the index; fall
			// through and replace it.
		}
	}
	v := s.newViewLocked("run", "r", spec, opt, parent)
	v.fp = fp
	v.noFwd = noFwd
	seed := ResolveSeed(spec, opt.Seed)
	for i := range spec.Buffers {
		s.addCell(v, spec, i, opt, cellKey{Seed: seed, DT: resolveDT(spec, opt.DT), Buffer: spec.Buffers[i].DisplayName()})
	}
	s.flushPendingLocked()
	// The submission's cache disposition: a run with no fresh cells was
	// served entirely from shared cells — from the cache when nothing is
	// in flight, coalesced otherwise.
	switch {
	case v.newCells > 0:
		s.misses.Add(1)
	case v.coalescedCells > 0:
		s.coalesced.Add(1)
	default:
		s.hits.Add(1)
	}
	if fp != "" {
		s.byFP[fp] = v
	}
	s.trackLocked(v)
	s.mu.Unlock()
	st := s.runStatus(v)
	st.Cached = v.newCells == 0 && v.coalescedCells == 0
	st.Coalesced = v.newCells == 0 && v.coalescedCells > 0
	return st
}

// --- sweep submission ---

// SweepAxes is a sweep's resolved parameter grid: the cross product of
// seeds × timesteps × a buffer subset of one spec.
type SweepAxes struct {
	// Seeds are the resolved per-cell seeds (never 0), in sweep order.
	Seeds []uint64
	// DTs are the resolved timesteps in seconds.
	DTs []float64
	// Buffers are spec buffer indices.
	Buffers []int
}

// ResolveSweepAxes validates a SweepRequest's axes against a spec and
// resolves defaults: no seeds means the spec's one resolved seed, a seed
// range spans [from, to] with from defaulting to 1, no dts means the
// spec's one resolved timestep, and no buffer subset means every buffer.
// The seed and dt rules live in scenario (ResolveSeedAxis/ResolveDTAxis),
// shared with the exploration subsystem.
func ResolveSweepAxes(spec *scenario.Spec, req *SweepRequest) (SweepAxes, error) {
	var ax SweepAxes
	var err error
	if ax.Seeds, err = spec.ResolveSeedAxis(req.Seeds, req.SeedFrom, req.SeedTo, maxSweepCells); err != nil {
		return ax, fmt.Errorf("sweep: %w", err)
	}
	if ax.DTs, err = spec.ResolveDTAxis(req.DTs); err != nil {
		return ax, fmt.Errorf("sweep: %w", err)
	}
	if len(req.Buffers) > 0 {
		seenBuf := map[int]bool{}
		for _, name := range req.Buffers {
			idx := -1
			for i, bs := range spec.Buffers {
				if bs.DisplayName() == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return ax, fmt.Errorf("sweep: spec has no buffer %q", name)
			}
			if seenBuf[idx] {
				return ax, fmt.Errorf("sweep: duplicate buffer %q", name)
			}
			seenBuf[idx] = true
			ax.Buffers = append(ax.Buffers, idx)
		}
	} else {
		for i := range spec.Buffers {
			ax.Buffers = append(ax.Buffers, i)
		}
	}
	total := len(ax.Seeds) * len(ax.DTs) * len(ax.Buffers)
	if total > maxSweepCells {
		return ax, fmt.Errorf("sweep: %d cells exceed the %d-cell bound", total, maxSweepCells)
	}
	return ax, nil
}

// SubmitSweep launches a sweep over the resolved axes, returning its
// submission view. Cells are attached buffer-major, then by timestep, then
// by seed, so each (buffer, dt) group's seeds are contiguous and in order.
// It is the Go-level core of POST /sweeps.
func (s *Server) SubmitSweep(spec *scenario.Spec, ax SweepAxes) *SweepStatus {
	return s.submitSweep(spec, ax, obs.SpanContext{})
}

// submitSweep is SubmitSweep with the submitter's span context.
func (s *Server) submitSweep(spec *scenario.Spec, ax SweepAxes, parent obs.SpanContext) *SweepStatus {
	s.sweeps.Add(1)
	s.mu.Lock()
	v := s.newViewLocked("sweep", "s", spec, scenario.RunOptions{}, parent)
	v.seeds = ax.Seeds
	v.dts = ax.DTs
	for _, bi := range ax.Buffers {
		v.buffers = append(v.buffers, spec.Buffers[bi].DisplayName())
	}
	for _, bi := range ax.Buffers {
		name := spec.Buffers[bi].DisplayName()
		for _, dt := range ax.DTs {
			for _, seed := range ax.Seeds {
				opt := scenario.RunOptions{Seed: seed, DT: dt}
				s.addCell(v, spec, bi, opt, cellKey{Seed: seed, DT: dt, Buffer: name})
			}
		}
	}
	s.flushPendingLocked()
	s.trackLocked(v)
	s.mu.Unlock()
	return s.sweepStatus(v)
}

// ResolveSeed resolves the effective seed of a spec under an override:
// 0 means the spec's seed, which itself defaults to 1 (the scenario
// layer's rule, shared via Spec.ResolveSeed).
func ResolveSeed(spec *scenario.Spec, seed uint64) uint64 {
	return spec.ResolveSeed(seed)
}

// resolveDT resolves the effective timestep of a spec under an override,
// mirroring the engine's defaults (0 → the spec's → 1 ms).
func resolveDT(spec *scenario.Spec, dt float64) float64 {
	return spec.ResolveDT(dt)
}

// --- wire snapshots ---

// cellStatus snapshots one shared cell into its wire shape.
func cellStatus(c *cell) CellStatus {
	cs := CellStatus{Buffer: c.buffer}
	if c.terminal() {
		cs.Done = true
		cs.Error = c.err
		if c.err == "" {
			cs.Result = toCellResult(c.res)
		}
	}
	return cs
}

// progressOf aggregates a view's cell completion into the wire Progress:
// cells done over total, plus the terminal cells' tick accounting (zero
// for cached and peer-fetched cells, which cost this node no stepping).
func progressOf(cells []*cell) Progress {
	p := Progress{CellsTotal: len(cells)}
	for _, c := range cells {
		if c.terminal() {
			p.CellsDone++
			p.TicksSimulated += c.ticks
			p.TicksFastForwarded += c.ffTicks
		}
	}
	return p
}

// runStatus snapshots a run view into its wire shape.
func (s *Server) runStatus(v *view) *RunStatus {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := &RunStatus{
		ID:          v.id,
		Scenario:    v.spec.Name,
		Seed:        ResolveSeed(v.spec, v.opt.Seed),
		Fingerprint: v.fp,
		TraceID:     v.tctx.TraceID.String(),
		Status:      v.status,
		Error:       v.errMsg,
		Created:     v.created,
		Progress:    progressOf(v.cells),
		Cells:       make([]CellStatus, len(v.cells)),
	}
	if Terminal(v.status) {
		f := v.finished
		st.Finished = &f
	}
	for i, c := range v.cells {
		st.Cells[i] = cellStatus(c)
	}
	return st
}

// sweepStatus snapshots a sweep view into its wire shape, including the
// per-(buffer, dt) across-seed summary once the sweep is done.
func (s *Server) sweepStatus(v *view) *SweepStatus {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := &SweepStatus{
		ID:             v.id,
		Scenario:       v.spec.Name,
		TraceID:        v.tctx.TraceID.String(),
		Status:         v.status,
		Error:          v.errMsg,
		Created:        v.created,
		Progress:       progressOf(v.cells),
		Seeds:          v.seeds,
		DTs:            v.dts,
		Buffers:        v.buffers,
		CachedCells:    v.cachedCells,
		CoalescedCells: v.coalescedCells,
		NewCells:       v.newCells,
		Cells:          make([]SweepCellStatus, len(v.cells)),
	}
	if Terminal(v.status) {
		f := v.finished
		st.Finished = &f
	}
	for i, c := range v.cells {
		cs := cellStatus(c)
		st.Cells[i] = SweepCellStatus{
			Buffer: v.keys[i].Buffer,
			Seed:   v.keys[i].Seed,
			DT:     v.keys[i].DT,
			Done:   cs.Done,
			Error:  cs.Error,
			Result: cs.Result,
		}
	}
	if v.status == StatusDone {
		// Cells are buffer-major then dt then seed: each summary group's
		// results are contiguous and already in seed order.
		n := len(v.seeds)
		for g := 0; g+n <= len(v.cells); g += n {
			results := make([]sim.Result, n)
			for j := 0; j < n; j++ {
				results[j] = v.cells[g+j].res
			}
			st.Summary = append(st.Summary, SweepSummary{
				Buffer:      v.keys[g].Buffer,
				DT:          v.keys[g].DT,
				SeedSummary: scenario.AggregateSeeds(results),
			})
		}
	}
	return st
}

// metrics snapshots the counters.
func (s *Server) metrics() *Metrics {
	s.mu.Lock()
	tracked := len(s.views)
	runEntries := s.viewLRU.Len()
	cellEntries := s.cellLRU.Len()
	active := tracked - runEntries - s.junk.Len()
	s.mu.Unlock()

	queued, done := s.cellsQueued.Load(), s.cellsDone.Load()
	m := &Metrics{
		UptimeS:       time.Since(s.start).Seconds(),
		StartTime:     s.start,
		Build:         obs.BuildInfoLabels(),
		Workers:       s.workers,
		Submitted:     s.submitted.Load(),
		Sweeps:        s.sweeps.Load(),
		Explorations:  s.explorations.Load(),
		ExplorePoints: s.explorePoints.Load(),
		ExploreCells:  s.exploreCells.Load(),
		CacheHits:     s.hits.Load(),
		Coalesced:     s.coalesced.Load(),
		CacheMisses:   s.misses.Load(),
		CacheEntries:  runEntries,
		CacheCapacity: s.cacheRuns,
		Evictions:     s.evictions.Load(),
		CellHits:      s.cellHits.Load(),
		CellCoalesced: s.cellCoalesced.Load(),
		CellMisses:    s.cellMisses.Load(),
		CellEntries:   cellEntries,
		CellCapacity:  s.cacheCells,
		CellEvictions: s.cellEvicts.Load(),
		RunsTracked:   tracked,
		RunsActive:    active,
		QueueDepth:    int(queued - done),
		CellsRunning:  len(s.sem),
		SimsCompleted: s.simsOK.Load(),
		SimsFailed:    s.simsFailed.Load(),

		TicksSimulated:     s.ticksSimulated.Load(),
		TicksFastForwarded: s.ticksFastForwarded.Load(),
		TracePasses:        s.tracePasses.Load(),
	}
	if s.store != nil {
		m.DiskEnabled = true
		m.DiskCells = s.store.Len()
		m.DiskHits = s.diskHits.Load()
		m.DiskMisses = s.diskMisses.Load()
		m.DiskPuts = s.diskPuts.Load()
		m.DiskQuarantined = s.store.Quarantined()
	}
	if s.cluster != nil {
		m.ClusterSelf = s.cluster.self
		m.ClusterPeers = len(s.cluster.others)
		m.PeerRequests = s.peerRequests.Load()
		m.PeerRetries = s.peerRetries.Load()
		m.PeerFallbacks = s.peerFallbacks.Load()
		m.PeerCells = s.peerCells.Load()
	}
	if m.Submitted > 0 {
		m.CacheHitRate = float64(m.CacheHits+m.Coalesced) / float64(m.Submitted)
	}
	if attach := m.CellHits + m.CellCoalesced + m.CellMisses; attach > 0 {
		m.CellHitRate = float64(m.CellHits+m.CellCoalesced) / float64(attach)
	}
	if m.UptimeS > 0 {
		// The lifetime average decays toward zero on an idle server; the
		// windowed rate beside it is the operationally honest number.
		m.SimsPerSec = float64(m.SimsCompleted) / m.UptimeS
	}
	m.SimsPerSec60 = s.rate.Rate()
	m.DroppedSpans = s.spans.Dropped()
	return m
}

// --- HTTP handlers ---

// maxSpecBytes bounds an inline spec submission.
const maxSpecBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	specs := scenario.All()
	out := struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}{Scenarios: make([]ScenarioInfo, 0, len(specs))}
	for _, spec := range specs {
		out.Scenarios = append(out.Scenarios, toScenarioInfo(spec))
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveSpec resolves a submission's scenario selection — a registry name
// or an inline spec, exactly one — writing the HTTP error itself on
// failure (nil return).
func (s *Server) resolveSpec(w http.ResponseWriter, name string, inline json.RawMessage) *scenario.Spec {
	switch {
	case name != "" && len(inline) > 0:
		writeError(w, http.StatusBadRequest, "set either scenario or spec, not both")
		return nil
	case name != "":
		spec, ok := scenario.Lookup(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q (GET /scenarios lists the registry)", name)
			return nil
		}
		return spec
	case len(inline) > 0:
		spec, err := scenario.ParseSpec(inline)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return nil
		}
		return spec
	default:
		writeError(w, http.StatusBadRequest, "a submission needs a scenario name or an inline spec")
		return nil
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var rr RunRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding run request: %v", err)
		return
	}
	spec := s.resolveSpec(w, rr.Scenario, rr.Spec)
	if spec == nil {
		return
	}
	opt := scenario.RunOptions{Seed: rr.Seed, DT: rr.DT}
	if err := opt.Validate(); err != nil {
		// Zero means "the spec's default", so the contract is finite and
		// non-negative — not "positive".
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.submit(spec, opt, rr.NoForward, parentSpan(req))
	code := http.StatusAccepted
	if Terminal(st.Status) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, req *http.Request) {
	var sr SweepRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding sweep request: %v", err)
		return
	}
	spec := s.resolveSpec(w, sr.Scenario, sr.Spec)
	if spec == nil {
		return
	}
	ax, err := ResolveSweepAxes(spec, &sr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.submitSweep(spec, ax, parentSpan(req))
	code := http.StatusAccepted
	if Terminal(st.Status) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// lookupView fetches a tracked view of the given kind, 404ing otherwise.
func (s *Server) lookupView(w http.ResponseWriter, req *http.Request, kind string) *view {
	id := req.PathValue("id")
	s.mu.Lock()
	v := s.views[id]
	s.mu.Unlock()
	if v == nil || v.kind != kind {
		writeError(w, http.StatusNotFound, "no %s %q", kind, id)
		return nil
	}
	return v
}

func (s *Server) handleRun(w http.ResponseWriter, req *http.Request) {
	if v := s.lookupView(w, req, "run"); v != nil {
		writeJSON(w, http.StatusOK, s.runStatus(v))
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	if v := s.lookupView(w, req, "sweep"); v != nil {
		writeJSON(w, http.StatusOK, s.sweepStatus(v))
	}
}

// deleteView cancels an in-flight view or forgets a finished one. Shared
// cells referenced by another live view survive either way.
func (s *Server) deleteView(v *view) {
	s.mu.Lock()
	v.mu.Lock()
	terminal := Terminal(v.status)
	if !terminal {
		v.canceled = true
	}
	v.mu.Unlock()
	if !terminal {
		// Leave the whole-run index immediately so new identical
		// submissions start fresh instead of attaching to a dying run, and
		// release the cells: ones nobody else wants are cancelled. An
		// exploration's engine is stopped too, so no further batches attach.
		if v.vcancel != nil {
			v.vcancel()
		}
		if v.fp != "" && s.byFP[v.fp] == v {
			delete(s.byFP, v.fp)
		}
		s.releaseCellsLocked(v)
	} else {
		s.forgetView(v)
	}
	s.mu.Unlock()
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	v := s.lookupView(w, req, "run")
	if v == nil {
		return
	}
	s.deleteView(v)
	writeJSON(w, http.StatusOK, s.runStatus(v))
}

func (s *Server) handleSweepDelete(w http.ResponseWriter, req *http.Request) {
	v := s.lookupView(w, req, "sweep")
	if v == nil {
		return
	}
	s.deleteView(v)
	writeJSON(w, http.StatusOK, s.sweepStatus(v))
}

// handleMetrics serves the Prometheus text exposition by default; a client
// asking for application/json (the pre-observability shape, still served
// unconditionally at /metrics.json) gets the JSON report instead.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if strings.Contains(req.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, s.metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics())
}

// parentSpan extracts the submitter's span context from a request's
// traceparent header; the zero context (mint a fresh trace) otherwise.
func parentSpan(req *http.Request) obs.SpanContext {
	sc, _ := obs.ParseTraceparent(req.Header.Get(obs.TraceparentHeader))
	return sc
}
