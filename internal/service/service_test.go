package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"react/internal/buffer"
	"react/internal/scenario"
)

// fastSpec is a small inline scenario: a 30 s steady trace driving DE on
// two buffers — milliseconds of simulation per cell.
const fastSpec = `{
	"name": "svc-fast",
	"trace": {"gen": "steady", "mean": 0.01, "duration": 30},
	"workload": {"bench": "DE"},
	"buffers": [{"preset": "770 µF"}, {"preset": "REACT"}]
}`

func newTestService(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

func TestScenariosEndpointListsRegistry(t *testing.T) {
	_, c := newTestService(t, Config{})
	infos, err := c.Scenarios(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(scenario.Names()) {
		t.Fatalf("listed %d scenarios, registry has %d", len(infos), len(scenario.Names()))
	}
	byName := map[string]ScenarioInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	ea, ok := byName["energy-attack"]
	if !ok {
		t.Fatal("energy-attack missing from the listing")
	}
	if ea.Bench != "RT" || len(ea.Buffers) != 4 || !strings.HasPrefix(ea.Fingerprint, scenario.FingerprintPrefix) {
		t.Errorf("energy-attack listing wrong: %+v", ea)
	}
}

// TestLoadSmoke is the load-smoke acceptance test: N concurrent clients
// submit the identical run; the cache must collapse them into exactly one
// simulation per cell, and every client must receive the same results.
func TestLoadSmoke(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	const clients = 12
	req := RunRequest{Spec: json.RawMessage(fastSpec)}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		got  []*RunStatus
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.Run(context.Background(), req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			got = append(got, st)
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d/%d clients failed, first: %v", len(errs), clients, errs[0])
	}

	// Every client saw the same run: same id, same completed cells.
	first := got[0]
	if first.Status != StatusDone || len(first.Cells) != 2 {
		t.Fatalf("unexpected final status: %+v", first)
	}
	ref, ok := first.Result("REACT")
	if !ok || ref.Metrics["blocks"] <= 0 {
		t.Fatalf("REACT cell missing a result: %+v", first.Cells)
	}
	for _, st := range got[1:] {
		if st.ID != first.ID {
			t.Errorf("clients saw different runs: %s vs %s", st.ID, first.ID)
		}
		r, ok := st.Result("REACT")
		if !ok || r.Metrics["blocks"] != ref.Metrics["blocks"] {
			t.Errorf("results diverged across clients")
		}
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheMisses != 1 {
		t.Errorf("%d simulations launched for %d identical submissions, want exactly 1 (single-flight)", m.CacheMisses, clients)
	}
	if m.CacheHits+m.Coalesced != clients-1 {
		t.Errorf("hits %d + coalesced %d, want %d deduplicated submissions", m.CacheHits, m.Coalesced, clients-1)
	}
	if m.SimsCompleted != 2 {
		t.Errorf("%d cells simulated, want the spec's 2", m.SimsCompleted)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", m.QueueDepth)
	}

	// A repeat after completion is a pure cache hit served as done.
	rr, err := c.RunAsync(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Submitted.Cached || rr.Submitted.Status != StatusDone {
		t.Errorf("repeat submission not served from cache: %+v", rr.Submitted)
	}
}

func TestNamedScenarioRunAndSeedAddressing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full registered scenario")
	}
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	st, err := c.Run(ctx, RunRequest{Scenario: "energy-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scenario != "energy-attack" || st.Seed != 1 || len(st.Cells) != 4 {
		t.Fatalf("unexpected run view: %+v", st)
	}
	// A different seed is a different content address: a fresh simulation.
	st2, err := c.Run(ctx, RunRequest{Scenario: "energy-attack", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Fingerprint == st.Fingerprint {
		t.Error("seed 2 must not share seed 1's fingerprint")
	}
	m, _ := c.Metrics(ctx)
	if m.CacheMisses != 2 || m.CacheHits != 0 {
		t.Errorf("want two independent simulations, got misses %d hits %d", m.CacheMisses, m.CacheHits)
	}
	// The explicit default seed maps onto the already-cached address.
	st3, err := c.Run(ctx, RunRequest{Scenario: "energy-attack", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != st.ID {
		t.Error("seed 1 spelled out must hit the defaulted run's cache entry")
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	for label, req := range map[string]RunRequest{
		"empty":         {},
		"both":          {Scenario: "energy-attack", Spec: json.RawMessage(fastSpec)},
		"unknown":       {Scenario: "not-a-scenario"},
		"invalid spec":  {Spec: json.RawMessage(`{"name":"x"}`)},
		"negative seed": {Spec: json.RawMessage(fastSpec), DT: -1},
	} {
		if _, err := c.RunAsync(ctx, req); err == nil {
			t.Errorf("%s: submission must fail", label)
		}
	}
	if err := c.do(ctx, http.MethodGet, "/runs/r999999", nil, &RunStatus{}); err == nil {
		t.Error("polling an unknown run must 404")
	}
}

// blockingSpec returns an unfingerprintable spec whose cell i blocks inside
// its buffer constructor until released — the deterministic probe for
// cancellation and partial-result visibility. Cell 0 is a plain preset that
// completes immediately.
func blockingSpec(n int, started chan<- int, release <-chan struct{}) *scenario.Spec {
	bufs := []scenario.BufferSpec{{Preset: "770 µF"}}
	for i := 1; i < n; i++ {
		i := i
		bufs = append(bufs, scenario.BufferSpec{
			Label: fmt.Sprintf("blocker-%d", i),
			New: func() buffer.Buffer {
				started <- i
				<-release
				return buffer.NewStatic(buffer.StaticConfig{Name: fmt.Sprintf("blocker-%d", i), C: 1e-3, VMax: 3.6})
			},
		})
	}
	return &scenario.Spec{
		Name:     "svc-blocking",
		Trace:    scenario.TraceSpec{Gen: "steady", Mean: 0.01, Duration: 10},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  bufs,
	}
}

// mustUnblock returns an idempotent closer for a blocker's release channel
// and registers it via t.Cleanup (LIFO: it runs before newTestService's
// srv.Close), so a fatal mid-test still frees the pinned constructor
// instead of wedging the worker drain and hanging the package.
func mustUnblock(t *testing.T, release chan struct{}) func() {
	released := false
	unblock := func() {
		if !released {
			released = true
			close(release)
		}
	}
	t.Cleanup(unblock)
	return unblock
}

func TestPartialResultsVisibleWhileRunning(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 2})
	started := make(chan int, 4)
	release := make(chan struct{})
	unblock := mustUnblock(t, release)
	st := srv.Submit(blockingSpec(2, started, release), scenario.RunOptions{})
	if st.Fingerprint != "" {
		t.Fatal("a custom-constructor spec must not be content-addressed")
	}
	<-started // the blocker cell is pinned inside its constructor
	rr := &RemoteRun{c: c, ID: st.ID}
	deadline := time.After(10 * time.Second)
	for {
		poll, err := rr.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res, ok := poll.Result("770 µF"); ok {
			if poll.Status != StatusRunning {
				t.Errorf("status %q while a cell still blocks, want running", poll.Status)
			}
			if res.Duration <= 0 {
				t.Error("partial result carries no data")
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("the preset cell never surfaced a partial result")
		case <-time.After(5 * time.Millisecond):
		}
	}
	unblock()
	if _, err := rr.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCancelStopsARun(t *testing.T) {
	srv, c := newTestService(t, Config{Workers: 1})
	started := make(chan int, 8)
	release := make(chan struct{})
	unblock := mustUnblock(t, release)
	// Workers=1: a blocker holds the only slot; later cells queue.
	spec := blockingSpec(4, started, release)
	spec.Buffers[0], spec.Buffers[1] = spec.Buffers[1], spec.Buffers[0]
	st := srv.Submit(spec, scenario.RunOptions{})
	<-started // blocker pinned on the single worker

	rr := &RemoteRun{c: c, ID: st.ID}
	if err := rr.Cancel(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Wait until the queued cells have observed the cancellation (done with
	// an error, never simulated) before releasing the pinned blocker —
	// otherwise freeing the worker races the cancellation delivery.
	deadline := time.After(10 * time.Second)
	for {
		poll, err := rr.Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cancelled := 0
		for _, cell := range poll.Cells {
			if cell.Done && cell.Error != "" {
				cancelled++
			}
		}
		if cancelled >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queued cells never drained after cancellation")
		case <-time.After(2 * time.Millisecond):
		}
	}
	unblock()
	final, err := rr.Wait(context.Background())
	if err == nil || final.Status != StatusCanceled {
		t.Fatalf("want a canceled run, got status %q err %v", final.Status, err)
	}
	simulated := 0
	for _, cell := range final.Cells {
		if cell.Done && cell.Error == "" {
			simulated++
		}
	}
	if simulated >= len(final.Cells) {
		t.Errorf("all %d cells simulated despite cancellation", simulated)
	}
	// Cancelled cells still drain through the scheduler: the queue must
	// read empty once the run is terminal.
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after a cancelled run drained, want 0", m.QueueDepth)
	}
}

func TestEvictionBoundsTheRunViews(t *testing.T) {
	_, c := newTestService(t, Config{CacheRuns: 1})
	ctx := context.Background()
	a, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	// A different duration is a different address; it evicts run view A.
	b := strings.Replace(fastSpec, `"duration": 30`, `"duration": 31`, 1)
	if _, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(b)}); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Metrics(ctx)
	if m.Evictions != 1 || m.CacheEntries != 1 {
		t.Errorf("evictions %d entries %d, want 1 and 1", m.Evictions, m.CacheEntries)
	}
	if _, err := (&RemoteRun{c: c, ID: a.ID}).Poll(ctx); err == nil {
		t.Error("the evicted run must be forgotten")
	}
	// Evicting the view does not evict its cells: resubmitting A is served
	// from the cell cache without a single new simulation.
	before := m.CellMisses
	a2, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Submitted.Cached || a2.Submitted.Status != StatusDone {
		t.Errorf("the evicted view's cells must still serve the resubmission: %+v", a2.Submitted)
	}
	if a2.Submitted.ID == a.ID {
		t.Error("the resubmission must be a fresh view, not the evicted one")
	}
	m, _ = c.Metrics(ctx)
	if m.CellMisses != before {
		t.Errorf("cell misses went %d -> %d on a fully cached resubmission", before, m.CellMisses)
	}
}

func TestDeleteForgetsFinishedRun(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()
	st, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	rr := &RemoteRun{c: c, ID: st.ID}
	if err := rr.Cancel(ctx); err != nil { // DELETE on a finished run forgets it
		t.Fatal(err)
	}
	if _, err := rr.Poll(ctx); err == nil {
		t.Error("a deleted run must be forgotten")
	}
	// And the next identical submission re-simulates rather than hitting a
	// dangling cache entry.
	again, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if again.Submitted.Cached {
		t.Error("the forgotten run must not serve cache hits")
	}
}

// TestFailedRunsDoNotEvictCachedResults pins the two-tier bookkeeping: a
// run that fails (or is cancelled) must not occupy a result-cache slot,
// so it can never displace a reusable completed run.
func TestFailedRunsDoNotEvictCachedResults(t *testing.T) {
	srv, c := newTestService(t, Config{CacheRuns: 1})
	ctx := context.Background()
	if _, err := c.Run(ctx, RunRequest{Spec: json.RawMessage(fastSpec)}); err != nil {
		t.Fatal(err)
	}
	// A zero-capacitance static buffer passes no validation on the Go
	// submit path and errors at Cell build time: a failed run.
	bad := &scenario.Spec{
		Name:     "svc-bad-static",
		Trace:    scenario.TraceSpec{Gen: "steady", Mean: 0.01, Duration: 10},
		Workload: scenario.WorkloadSpec{Bench: "DE"},
		Buffers:  []scenario.BufferSpec{{Label: "broken", Static: &scenario.StaticSpec{C: 0}}},
	}
	st := srv.Submit(bad, scenario.RunOptions{})
	deadline := time.After(10 * time.Second)
	for {
		poll, err := (&RemoteRun{c: c, ID: st.ID}).Poll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if Terminal(poll.Status) {
			if poll.Status != StatusFailed {
				t.Fatalf("status %q, want failed", poll.Status)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("run never finished")
		case <-time.After(2 * time.Millisecond):
		}
	}
	m, _ := c.Metrics(ctx)
	if m.Evictions != 0 || m.CacheEntries != 1 {
		t.Errorf("evictions %d entries %d: the failed run displaced the cached result", m.Evictions, m.CacheEntries)
	}
	again, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Submitted.Cached {
		t.Error("the completed run must still be served from the cache")
	}
}

func TestDialRejectsBadAddresses(t *testing.T) {
	if _, err := Dial("not a url"); err == nil {
		t.Error("garbage must not dial")
	}
	if _, err := Dial("ftp://localhost"); err == nil {
		t.Error("non-http schemes must not dial")
	}
	if _, err := Dial("http://127.0.0.1:1"); err == nil {
		t.Error("a dead port must not dial")
	}
}
