package service

import (
	"net/http"
	"sort"
	"sync"

	"react/internal/obs"
)

// This file serves the request-tracing endpoints. Every submission mints a
// root span (or adopts the submitter's traceparent), batch groups and cell
// simulations nest under it, and peer fan-out carries the context in the
// traceparent header — so a cross-node exploration is one trace whose spans
// are scattered over the ring. The per-view endpoints reassemble it:
// this node's spans, plus every peer's (GET /traces/{id}, the flat
// primitive), deduplicated by span id and built into a tree.

// handleTraceRaw serves this node's raw spans for a trace id: the peer
// merge primitive, also handy for debugging a single node.
func (s *Server) handleTraceRaw(w http.ResponseWriter, req *http.Request) {
	tid, ok := obs.ParseTraceID(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusBadRequest, "malformed trace id %q (want 32 hex digits)", req.PathValue("id"))
		return
	}
	spans, dropped := s.spans.Spans(tid)
	writeJSON(w, http.StatusOK, TraceResponse{
		TraceID: tid.String(),
		Spans:   spans,
		Dropped: dropped,
	})
}

// handleViewTrace serves a view's assembled span tree, merged across
// cluster peers so forwarded work appears under the originating trace.
func (s *Server) handleViewTrace(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		v := s.lookupView(w, req, kind)
		if v == nil {
			return
		}
		writeJSON(w, http.StatusOK, s.assembleTrace(req, v.tctx.TraceID))
	}
}

// assembleTrace merges this node's spans for tid with every peer's and
// builds the tree. Peer fetches run concurrently under the request context
// (each already bounded by the peer client's per-request timeout); an
// unreachable peer degrades the tree, never the response.
func (s *Server) assembleTrace(req *http.Request, tid obs.TraceID) TraceResponse {
	local, dropped := s.spans.Spans(tid)
	resp := TraceResponse{TraceID: tid.String(), Dropped: dropped}
	spans := local
	if s.cluster != nil {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, peer := range s.cluster.others {
			client := s.cluster.clients[peer]
			wg.Add(1)
			go func(peer string) {
				defer wg.Done()
				remote, err := client.TraceSpans(req.Context(), tid.String())
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					resp.PeersFailed = append(resp.PeersFailed, peer)
					return
				}
				spans = append(spans, remote.Spans...)
				resp.Dropped += remote.Dropped
			}(peer)
		}
		wg.Wait()
		sort.Strings(resp.PeersFailed)
	}
	// Deduplicate by span id: a peer may echo spans this node already has
	// (or two peers may both have fetched from a third).
	seen := make(map[string]bool, len(spans))
	merged := spans[:0]
	for _, sp := range spans {
		if seen[sp.SpanID] {
			continue
		}
		seen[sp.SpanID] = true
		merged = append(merged, sp)
	}
	resp.Roots = obs.BuildTree(merged)
	return resp
}
