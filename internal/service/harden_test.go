package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClientRequestTimeout: a daemon that stops answering fails client
// calls within the per-request timeout instead of pinning them forever.
// Dial's /metrics probe answers; /scenarios stalls.
func TestClientRequestTimeout(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics.json" {
			writeJSON(w, http.StatusOK, &Metrics{})
			return
		}
		<-stall
	}))
	t.Cleanup(func() { close(stall); ts.Close() })

	c, err := Dial(ts.URL, WithRequestTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Scenarios(context.Background()); err == nil {
		t.Fatal("call against a stalled daemon returned")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("stalled call took %v to fail, want ~200ms", elapsed)
	}

	// A caller's tighter context wins over the per-request bound.
	slow, err := Dial(ts.URL, WithRequestTimeout(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := slow.Scenarios(ctx); err == nil {
		t.Fatal("call outlived its context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("context-bounded call took %v to fail", elapsed)
	}
}

// TestBodyHandlingNormalized: every handler shares one body policy — the
// maxSpecBytes cap applies to any method, an unread GET/DELETE body is
// drained rather than wedging the connection, and an oversized submission
// is a clean 4xx.
func TestBodyHandlingNormalized(t *testing.T) {
	_, c := newTestService(t, Config{})
	hc := &http.Client{}

	// Oversized POST: rejected, not served, not crashed.
	big := `{"scenario":"energy-attack","spec-pad":"` + strings.Repeat("x", maxSpecBytes) + `"}`
	resp, err := hc.Post(c.base+"/runs", "application/json", strings.NewReader(big))
	if err == nil {
		if resp.StatusCode < 400 {
			t.Errorf("oversized run request got HTTP %d, want an error", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// GET with an (ignored) body over a keep-alive connection: the server
	// must drain it so the next request on the same connection parses.
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodGet, c.base+"/metrics", bytes.NewReader([]byte(`{"junk":true}`)))
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatalf("GET with body #%d: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET with body #%d: HTTP %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The server stayed healthy throughout.
	if _, err := c.Metrics(context.Background()); err != nil {
		t.Fatal(err)
	}
}
