package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"react/internal/store"
)

// openStore opens (or reopens) a test store on dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// sweepReq is the shared grid the persistence tests populate and re-read:
// 3 seeds × 2 buffers of fastSpec = 6 cells.
func sweepReq() SweepRequest {
	return SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1, 2, 3}}
}

// TestRestartServesGridFromDisk is the restart-persistence acceptance
// test: a sweep populates the disk tier, the daemon "restarts" (new
// Server, same store dir), and re-running the sweep serves the whole grid
// from disk — sims stay 0, and the summary rows are bit-identical.
func TestRestartServesGridFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1 := openStore(t, dir)
	_, c1 := newTestService(t, Config{Workers: 2, Store: st1})
	before, err := c1.Sweep(ctx, sweepReq())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c1.Metrics(ctx)
	if m.SimsCompleted != 6 || m.DiskPuts != 6 || !m.DiskEnabled {
		t.Fatalf("populate pass: sims %d, disk puts %d, enabled %v; want 6, 6, true", m.SimsCompleted, m.DiskPuts, m.DiskEnabled)
	}
	st1.Close()
	if st1.Len() != 6 {
		t.Fatalf("store holds %d cells, want 6", st1.Len())
	}

	// The restarted daemon: cold memory, warm disk.
	st2 := openStore(t, dir)
	_, c2 := newTestService(t, Config{Workers: 2, Store: st2})
	after, err := c2.Sweep(ctx, sweepReq())
	if err != nil {
		t.Fatal(err)
	}
	m, _ = c2.Metrics(ctx)
	if m.SimsCompleted != 0 {
		t.Errorf("restarted daemon simulated %d cells, want 0", m.SimsCompleted)
	}
	if m.DiskHits != 6 || m.CellHits != 6 {
		t.Errorf("disk hits %d, cell hits %d; want 6 each", m.DiskHits, m.CellHits)
	}
	if after.CachedCells != 6 || after.NewCells != 0 {
		t.Errorf("re-sweep disposition: %d cached, %d new; want 6, 0", after.CachedCells, after.NewCells)
	}

	// Bit-identical summaries: the disk round trip must not perturb a
	// single float.
	b, _ := json.Marshal(before.Summary)
	a, _ := json.Marshal(after.Summary)
	if string(a) != string(b) {
		t.Errorf("summaries diverged across the restart:\n%s\n%s", b, a)
	}
}

// corruptOneCell truncates one stored cell file, returning how many files
// it mangled (always 1).
func corruptOneCell(t *testing.T, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "cells", "*", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cell files to corrupt: %v (%d)", err, len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptCellQuarantinedAndResimulated: a truncated cell file is
// quarantined on read, the cell resimulates, and the server stays up —
// one corrupt file costs one sim, not an outage.
func TestCorruptCellQuarantinedAndResimulated(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1 := openStore(t, dir)
	_, c1 := newTestService(t, Config{Workers: 2, Store: st1})
	if _, err := c1.Sweep(ctx, sweepReq()); err != nil {
		t.Fatal(err)
	}
	st1.Close()
	corruptOneCell(t, dir)

	st2 := openStore(t, dir)
	_, c2 := newTestService(t, Config{Workers: 2, Store: st2})
	after, err := c2.Sweep(ctx, sweepReq())
	if err != nil {
		t.Fatal(err)
	}
	if after.Status != StatusDone {
		t.Fatalf("sweep over a corrupt store did not finish: %+v", after)
	}
	m, _ := c2.Metrics(ctx)
	if m.SimsCompleted != 1 {
		t.Errorf("resimulated %d cells, want exactly the 1 corrupted", m.SimsCompleted)
	}
	if m.DiskQuarantined != 1 || m.DiskHits != 5 || m.DiskMisses != 1 {
		t.Errorf("quarantined %d, disk hits %d, misses %d; want 1, 5, 1", m.DiskQuarantined, m.DiskHits, m.DiskMisses)
	}
	// The resimulated cell wrote back: the store is whole again.
	if st2.Len() != 6 {
		t.Errorf("store holds %d cells after repair, want 6", st2.Len())
	}
	q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.json"))
	if len(q) != 1 {
		t.Errorf("quarantine holds %d files, want the 1 corrupt entry", len(q))
	}
}

// TestEvictionDemotesToDisk: LRU pressure drops a cell from memory but not
// from disk, and the next attachment of its address promotes it back
// without a simulation.
func TestEvictionDemotesToDisk(t *testing.T) {
	ctx := context.Background()
	st := openStore(t, t.TempDir())
	_, c := newTestService(t, Config{Workers: 2, CacheCells: 1, Store: st})

	if _, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	m0, _ := c.Metrics(ctx)
	if m0.SimsCompleted != 4 || m0.CellEvictions != 3 || m0.CellEntries != 1 {
		t.Fatalf("populate pass: sims %d, evictions %d, entries %d; want 4, 3, 1", m0.SimsCompleted, m0.CellEvictions, m0.CellEntries)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d cells, want all 4 (eviction must demote, not delete)", st.Len())
	}

	// Re-sweeping finds every cell on disk (or, for at most the one
	// memory slot, still cached — which cell occupies it depends on
	// completion order, so only a lower bound is exact).
	if _, err := c.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	m1, _ := c.Metrics(ctx)
	if m1.SimsCompleted != m0.SimsCompleted {
		t.Errorf("re-sweep simulated (%d -> %d sims); every cell was on disk or in memory", m0.SimsCompleted, m1.SimsCompleted)
	}
	if m1.DiskHits < 3 || m1.DiskHits > 4 {
		t.Errorf("disk hits %d, want 3 or 4 promoted cells", m1.DiskHits)
	}
	if m1.CellHits != m0.CellHits+4 {
		t.Errorf("cell hits %d -> %d, want +4", m0.CellHits, m1.CellHits)
	}
}

// TestForgetDeletesDiskEntries: the explicit DELETE of a finished view
// removes its cells from the disk tier too — unlike an LRU demotion.
func TestForgetDeletesDiskEntries(t *testing.T) {
	ctx := context.Background()
	st := openStore(t, t.TempDir())
	_, c := newTestService(t, Config{Workers: 2, Store: st})

	rr, err := c.RunAsync(ctx, RunRequest{Spec: json.RawMessage(fastSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d cells, want 2", st.Len())
	}
	if err := rr.Cancel(ctx); err != nil { // DELETE of a finished run = forget
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("store holds %d cells after forget, want 0", st.Len())
	}
}
