package service

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"react/internal/explore"
	"react/internal/scenario"
)

// testNode is one in-process cluster member: a Server behind a real TCP
// listener (peers dial each other over loopback) plus a dialed client.
type testNode struct {
	srv    *Server
	client *Client
	url    string
	http   *http.Server
}

// newTestCluster boots n reactd nodes sharing one ring. Listeners are
// created first so every node knows the full member list before any
// server starts.
func newTestCluster(t *testing.T, n int, cfg Config) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		c := cfg
		c.Self = urls[i]
		c.Peers = urls
		srv, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i])
		nodes[i] = &testNode{srv: srv, url: urls[i], http: hs}
	}
	t.Cleanup(func() {
		// HTTP first so no new work lands, then the servers (in-flight
		// peer fetches fail over to local simulation and drain).
		for _, nd := range nodes {
			nd.http.Close()
		}
		for _, nd := range nodes {
			nd.srv.Close()
		}
	})
	for _, nd := range nodes {
		client, err := Dial(nd.url)
		if err != nil {
			t.Fatal(err)
		}
		nd.client = client
	}
	return nodes
}

// ownerCounts computes, from the ring alone, how many of the sweep's
// cells each member owns — the test's independent model of the shard
// split (ownership is a pure function of member set and fingerprint).
func ownerCounts(t *testing.T, urls []string, seeds []uint64) map[string]int {
	t.Helper()
	cl, err := newCluster(urls[0], urls, time.Second)
	if err != nil || cl == nil {
		t.Fatalf("newCluster: %v (%v)", cl, err)
	}
	spec, err := scenario.ParseSpec([]byte(fastSpec))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := range spec.Buffers {
		for _, seed := range seeds {
			fp, err := spec.FingerprintCell(i, scenario.RunOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			counts[cl.owner(fp)]++
		}
	}
	return counts
}

// TestClusterSweepThenExplorationZeroNewSims is the 2-node acceptance
// test: a sweep submitted to node A shards its cells across the ring
// (each cell simulated exactly once, on its owner), and a later
// overlapping exploration on node B simulates nothing anywhere — B's cell
// hits rise, sims stay flat on both nodes.
func TestClusterSweepThenExplorationZeroNewSims(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{Workers: 2})
	a, b := nodes[0], nodes[1]
	ctx := context.Background()

	// Ownership depends on the OS-assigned member ports, so probe candidate
	// seed sets for one that lands cells on both nodes (each candidate is
	// degenerate with probability 2^-7; four make a miss astronomically
	// unlikely).
	var seeds []uint64
	var want map[string]int
	for _, base := range []uint64{1, 5, 9, 13} {
		seeds = []uint64{base, base + 1, base + 2, base + 3}
		want = ownerCounts(t, []string{a.url, b.url}, seeds)
		if want[a.url] > 0 && want[b.url] > 0 {
			break
		}
	}
	if want[a.url] == 0 || want[b.url] == 0 {
		t.Fatalf("degenerate shard split %v for every candidate seed set", want)
	}

	sw, err := a.client.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status != StatusDone || len(sw.Cells) != 8 {
		t.Fatalf("sweep did not complete: %+v", sw)
	}

	ma0, _ := a.client.Metrics(ctx)
	mb0, _ := b.client.Metrics(ctx)
	if got := int(ma0.SimsCompleted); got != want[a.url] {
		t.Errorf("node A simulated %d cells, owns %d", got, want[a.url])
	}
	if got := int(mb0.SimsCompleted); got != want[b.url] {
		t.Errorf("node B simulated %d cells, owns %d", got, want[b.url])
	}
	if ma0.PeerCells != uint64(want[b.url]) {
		t.Errorf("node A fetched %d peer cells, want %d", ma0.PeerCells, want[b.url])
	}
	// Fan-out reuses the batch grouping: at most one peer request per
	// (seed) batch key, not one per cell.
	if ma0.PeerRequests == 0 || ma0.PeerRequests > uint64(len(seeds)) {
		t.Errorf("node A made %d peer requests for %d batch keys", ma0.PeerRequests, len(seeds))
	}
	if ma0.PeerFallbacks != 0 {
		t.Errorf("node A degraded %d times with a healthy peer", ma0.PeerFallbacks)
	}

	// The overlapping exploration on B: same physics, same seeds — every
	// point served by B's own cache or by A, zero new simulations.
	spec, _ := scenario.ParseSpec([]byte(fastSpec))
	ex, err := b.client.Explore(ctx, &explore.Space{
		Spec:    spec,
		Presets: []string{"770 µF", "REACT"},
		Seeds:   seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Status != StatusDone {
		t.Fatalf("exploration did not complete: %+v", ex)
	}
	ma1, _ := a.client.Metrics(ctx)
	mb1, _ := b.client.Metrics(ctx)
	if ma1.SimsCompleted != ma0.SimsCompleted || mb1.SimsCompleted != mb0.SimsCompleted {
		t.Errorf("exploration simulated: A %d->%d, B %d->%d; want flat",
			ma0.SimsCompleted, ma1.SimsCompleted, mb0.SimsCompleted, mb1.SimsCompleted)
	}
	if mb1.CellHits <= mb0.CellHits {
		t.Errorf("node B cell hits did not rise (%d -> %d)", mb0.CellHits, mb1.CellHits)
	}
}

// TestClusterResultsMatchSingleNode pins proxied results bit-identically:
// the same sweep on a lone node and through the cluster produces the same
// summary rows, whichever node simulated each cell.
func TestClusterResultsMatchSingleNode(t *testing.T) {
	ctx := context.Background()
	_, solo := newTestService(t, Config{Workers: 2})
	req := SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: []uint64{1, 2, 3}}
	want, err := solo.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	nodes := newTestCluster(t, 2, Config{Workers: 2})
	got, err := nodes[0].client.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want.Summary)
	gj, _ := json.Marshal(got.Summary)
	if string(wj) != string(gj) {
		t.Errorf("clustered summary diverged from single-node:\n%s\n%s", wj, gj)
	}
}

// TestClusterDegradesWhenPeerDown: with its peer unreachable, a node
// retries once, falls back to local simulation, and still answers — a
// dead peer costs latency, never availability.
func TestClusterDegradesWhenPeerDown(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{Workers: 2, PeerTimeout: 500 * time.Millisecond})
	a, b := nodes[0], nodes[1]
	b.http.Close() // B is down before any work lands

	ctx := context.Background()
	seeds := []uint64{1, 2, 3, 4}
	want := ownerCounts(t, []string{a.url, b.url}, seeds)

	sw, err := a.client.Sweep(ctx, SweepRequest{Spec: json.RawMessage(fastSpec), Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status != StatusDone || len(sw.Cells) != 8 {
		t.Fatalf("sweep did not survive the dead peer: %+v", sw)
	}
	for _, cs := range sw.Cells {
		if !cs.Done || cs.Error != "" || cs.Result == nil {
			t.Fatalf("cell not served locally after fallback: %+v", cs)
		}
	}
	m, _ := a.client.Metrics(ctx)
	if m.SimsCompleted != 8 {
		t.Errorf("node A simulated %d cells, want all 8 (fallback)", m.SimsCompleted)
	}
	if m.PeerFallbacks == 0 || m.PeerRetries == 0 {
		t.Errorf("no fallback/retry recorded: %+v", m)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after fallback drain, want 0", m.QueueDepth)
	}
	_ = want // the split is irrelevant once everything runs locally
}

// TestNoForwardPinsCells: a no_forward run submitted to the non-owner
// simulates where it lands — the cycle-breaking contract peer fan-out
// relies on.
func TestNoForwardPinsCells(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{Workers: 2})
	a, b := nodes[0], nodes[1]
	ctx := context.Background()

	req := RunRequest{Spec: json.RawMessage(fastSpec), NoForward: true}
	if _, err := a.client.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	ma, _ := a.client.Metrics(ctx)
	mb, _ := b.client.Metrics(ctx)
	if ma.SimsCompleted != 2 || ma.PeerRequests != 0 {
		t.Errorf("no_forward run forwarded: %d sims, %d peer requests on A", ma.SimsCompleted, ma.PeerRequests)
	}
	if mb.SimsCompleted != 0 {
		t.Errorf("node B simulated %d cells for A's pinned run", mb.SimsCompleted)
	}
}
