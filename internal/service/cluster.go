package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/obs"
	"react/internal/scenario"
	"react/internal/sim"
)

// This file is the service's cluster mode: a static peer ring sharding the
// content-addressed cell cache across reactd nodes. Ownership is rendezvous
// (highest-random-weight) hashing over a cell's fingerprint — every node
// computes the same owner from the same peer list, no coordination, and
// removing a peer only reassigns that peer's cells. Any node accepts a
// run, sweep, or exploration; cells it does not own are fanned out to
// their owners over the ordinary HTTP API as no-forward run submissions,
// one per (owner, spec, seed, dt) batch group, so remote fan-out keeps the
// one-trace-pass-per-seed batching the local scheduler has. The owner
// answers from its memory cache, its disk tier, or by simulating; results
// proxy back into this node's view assembly as ordinary cell completions.
// An unreachable owner degrades to local simulation (per-request timeout
// plus a single retry), so a dead peer costs latency and duplicated work,
// never availability.
//
// Cells that cannot travel stay local: unfingerprintable specs (Go-only
// constructors), Loaded traces (no JSON encoding), and recorded runs
// (RecordDT is not expressible in a RunRequest, and sample streams are
// not part of the wire cell result anyway).

// DefaultPeerTimeout bounds each HTTP request to a peer when
// Config.PeerTimeout is zero.
const DefaultPeerTimeout = 5 * time.Second

// cluster is the resolved static ring.
type cluster struct {
	self    string             // this node's advertised base URL
	members []string           // the full ring, self included, sorted
	others  []string           // members minus self, sorted
	clients map[string]*Client // one per other member
}

// newCluster validates and normalizes the peer list. Self is added to the
// ring if absent; a ring of one (or an empty peer list) means cluster mode
// is off and nil is returned. Every node must be configured with the same
// member URL strings — ownership is a pure function of (member set, cell
// fingerprint), and nodes that disagree on the spelling of a URL disagree
// on the shards.
func newCluster(self string, peers []string, timeout time.Duration) (*cluster, error) {
	if len(peers) == 0 {
		return nil, nil
	}
	if self == "" {
		return nil, fmt.Errorf("service: cluster mode needs the node's own advertised URL (Config.Self) to locate itself in the peer ring")
	}
	selfURL, err := normalizePeerURL(self)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{selfURL: true}
	for _, p := range peers {
		u, err := normalizePeerURL(p)
		if err != nil {
			return nil, err
		}
		set[u] = true
	}
	if len(set) < 2 {
		return nil, nil // a ring of one is just a single node
	}
	cl := &cluster{self: selfURL, clients: map[string]*Client{}}
	for m := range set {
		cl.members = append(cl.members, m)
	}
	sort.Strings(cl.members)
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	for _, m := range cl.members {
		if m == cl.self {
			continue
		}
		pc, err := newPeerClient(m, timeout)
		if err != nil {
			return nil, err // unreachable: m is already normalized
		}
		cl.others = append(cl.others, m)
		cl.clients[m] = pc
	}
	return cl, nil
}

// normalizePeerURL canonicalizes one ring member URL.
func normalizePeerURL(raw string) (string, error) {
	u, err := url.Parse(strings.TrimSpace(raw))
	if err != nil {
		return "", fmt.Errorf("service: peer %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("service: peer %q: want an http(s) base URL", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// owner returns the ring member owning a fingerprint: the member whose
// rendezvous weight for it is highest.
func (cl *cluster) owner(fp string) string {
	best, bestW := "", uint64(0)
	for _, m := range cl.members {
		h := fnv.New64a()
		io.WriteString(h, m)
		h.Write([]byte{0})
		io.WriteString(h, fp)
		if w := h.Sum64(); best == "" || w > bestW {
			best, bestW = m, w
		}
	}
	return best
}

// --- peer fan-out scheduling ---

// startPeerGroup fans one batch-key group's non-owned cells out to their
// owner. Members sharing a spec travel in one run submission (the owner's
// scheduler then batches them into one trace pass); members of distinct
// specs — exploration probes with per-point derived specs — go one
// submission each. Called with s.mu held.
func (s *Server) startPeerGroup(owner string, members []pendingCell, opt scenario.RunOptions) {
	var specs []*scenario.Spec
	bySpec := map[*scenario.Spec][]pendingCell{}
	for _, p := range members {
		if _, ok := bySpec[p.spec]; !ok {
			specs = append(specs, p.spec)
		}
		bySpec[p.spec] = append(bySpec[p.spec], p)
	}
	for _, sp := range specs {
		s.startPeerBatch(owner, sp, bySpec[sp], opt)
	}
}

// startPeerBatch submits one group of same-spec cells to their owner and
// feeds the results back in as cell completions. Each member's cancel
// releases only that member; when every member is released the fetch is
// abandoned (and the remote run cancelled, best-effort). Transport-level
// failure retries once and then degrades to local simulation — the cells
// re-enter the local scheduler as one batch. Called with s.mu held.
func (s *Server) startPeerBatch(owner string, spec *scenario.Spec, group []pendingCell, opt scenario.RunOptions) {
	ctx, cancel := context.WithCancel(s.ctx)
	remaining := int64(len(group))
	for _, p := range group {
		var once sync.Once
		p.c.cancel = func() {
			once.Do(func() {
				if atomic.AddInt64(&remaining, -1) == 0 {
					cancel()
				}
			})
		}
	}
	s.cellsQueued.Add(uint64(len(group)))
	s.jobs.Add(1)
	go func() {
		defer s.jobs.Done()
		defer cancel()
		// The peer span carries the view's trace across the wire: its
		// context rides the forwarded submission's traceparent header, so
		// the owner's run/batch/sim spans join this trace as its children.
		pspan := s.spans.Start(group[0].tctx, "peer", s.node,
			map[string]string{"peer": owner, "cells": fmt.Sprint(len(group))})
		pctx := obs.ContextWithSpan(ctx, pspan.Context())
		results, cellErrs, err := s.fetchFromPeer(pctx, owner, spec, group, opt)
		pspan.End(err)
		switch {
		case err == nil:
			s.peerCells.Add(uint64(len(group)))
			for _, p := range group {
				name := p.spec.Buffers[p.i].DisplayName()
				if msg, bad := cellErrs[name]; bad {
					s.completeCell(p.c, sim.Result{}, fmt.Errorf("peer %s: %s", owner, msg), cellFromPeer, 0, sim.CellStats{})
					continue
				}
				s.completeCell(p.c, results[name], nil, cellFromPeer, 0, sim.CellStats{})
			}
		case ctx.Err() != nil:
			// Released by every view (or the server is closing).
			for _, p := range group {
				s.completeCell(p.c, sim.Result{}, context.Canceled, cellFromPeer, 0, sim.CellStats{})
			}
		default:
			// The owner is unreachable: degrade to local simulation. Members
			// nobody wants anymore are finished as cancelled; the rest
			// re-enter the scheduler as one batch (handing the queue
			// accounting over to startBatch with them).
			s.peerFallbacks.Add(1)
			var live, dead []pendingCell
			s.mu.Lock()
			for _, p := range group {
				if p.c.refs > 0 {
					live = append(live, p)
				} else {
					dead = append(dead, p)
				}
			}
			s.cellsQueued.Add(^uint64(uint64(len(live)) - 1)) // -len(live)
			if len(live) > 0 {
				s.startBatch(live, opt)
			}
			s.mu.Unlock()
			for _, p := range dead {
				s.completeCell(p.c, sim.Result{}, context.Canceled, cellFromPeer, 0, sim.CellStats{})
			}
		}
	}()
}

// fetchFromPeer runs one same-spec cell group on its owner through the
// public API and maps the owner's terminal run status back onto buffer
// display names. The error return is transport-level only (unreachable,
// timed out, remotely cancelled) — the signal to retry and then degrade;
// per-cell simulation errors come back in cellErrs and are terminal.
func (s *Server) fetchFromPeer(ctx context.Context, owner string, spec *scenario.Spec, group []pendingCell, opt scenario.RunOptions) (map[string]sim.Result, map[string]string, error) {
	client := s.cluster.clients[owner]
	derived := spec
	if len(group) != len(spec.Buffers) {
		derived = spec.Clone()
		derived.Buffers = derived.Buffers[:0]
		for _, p := range group {
			derived.Buffers = append(derived.Buffers, spec.Buffers[p.i])
		}
	}
	data, err := json.Marshal(derived)
	if err != nil {
		return nil, map[string]string{derived.Buffers[0].DisplayName(): err.Error()}, nil
	}
	// NoForward breaks forwarding cycles: whatever the owner's own ring
	// config says, a forwarded cell is answered where it lands.
	req := RunRequest{Spec: data, Seed: opt.Seed, DT: opt.DT, NoForward: true}

	s.peerRequests.Add(1)
	began := time.Now()
	st, err := runOnPeer(ctx, client, req)
	if err != nil && ctx.Err() == nil {
		s.peerRetries.Add(1)
		st, err = runOnPeer(ctx, client, req)
	}
	if err != nil {
		return nil, nil, err
	}
	s.hPeerRTT.Observe(time.Since(began).Seconds())
	results := map[string]sim.Result{}
	cellErrs := map[string]string{}
	for _, cs := range st.Cells {
		switch {
		case cs.Error != "":
			cellErrs[cs.Buffer] = cs.Error
		case cs.Result != nil:
			results[cs.Buffer] = fromCellResult(cs.Result, cs.Buffer)
		}
	}
	for _, p := range group {
		name := p.spec.Buffers[p.i].DisplayName()
		if _, ok := results[name]; !ok {
			if _, bad := cellErrs[name]; !bad {
				cellErrs[name] = fmt.Sprintf("no result for buffer %q in the peer's response", name)
			}
		}
	}
	return results, cellErrs, nil
}

// runOnPeer submits one run to a peer and waits for a terminal status. A
// remotely failed run is a valid terminal answer (its per-cell errors are
// authoritative); a remotely cancelled one — someone deleted our view on
// the owner — is a transport-level error so the caller retries afresh.
func runOnPeer(ctx context.Context, client *Client, req RunRequest) (*RunStatus, error) {
	rr, err := client.RunAsync(ctx, req)
	if err != nil {
		return nil, err
	}
	st, werr := rr.Wait(ctx)
	if st == nil {
		return nil, werr
	}
	if st.Status == StatusCanceled {
		return nil, fmt.Errorf("service: peer cancelled run %s underfoot", st.ID)
	}
	return st, nil
}
