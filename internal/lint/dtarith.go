package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"react/internal/lint/analysis"
)

// DTArith guards the time-arithmetic invariant PR 3 established after the
// `t += dt` drift bug regenerated all 28 goldens: simulation time is
// derived from the integer tick index (t = float64(tick)*dt), never
// accumulated in floating point, and float64 physics values are never
// compared with ==/!= (a tolerance compare, or an explicit reasoned
// suppression where exactness is the point).
var DTArith = &analysis.Analyzer{
	Name: "dtarith",
	Doc: `flag floating-point time accumulation and exact float comparison

t += dt accumulates rounding error against the tick grid (~3e-9 s per 4e5
ticks in PR 3 — enough to deliver one extra trace sample and drift every
record point). Derive time as float64(tick)*dt. Float equality is exact
bit comparison: use math.Abs(a-b) <= tol, or suppress with a reason where
exact identity is the invariant being checked.`,
	Run: runDTArith,
}

func runDTArith(pass *analysis.Pass) error {
	info := pass.TypesInfo
	analysis.Inspect(pass.Files, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkTimeAccum(pass, n)
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			tx, ty := info.TypeOf(n.X), info.TypeOf(n.Y)
			if tx == nil || ty == nil || !analysis.IsFloat(tx) || !analysis.IsFloat(ty) {
				return true
			}
			if floatCompareExempt(info, n) {
				return true
			}
			pass.Reportf(n.Pos(), "%s compares float64 values bit-exactly; use a tolerance (math.Abs(a-b) <= tol), or suppress with a reason if exact identity is the invariant", types.ExprString(n))
		}
		return true
	})
	return nil
}

// checkTimeAccum flags `t += dt` and `t = t + dt` shapes: a float
// time-like accumulator advanced by a timestep-like addend.
func checkTimeAccum(pass *analysis.Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	lhs := n.Lhs[0]
	var addend ast.Expr
	switch n.Tok {
	case token.ADD_ASSIGN:
		addend = n.Rhs[0]
	case token.ASSIGN:
		// t = t + dt (either operand order).
		bin, ok := n.Rhs[0].(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return
		}
		ls := types.ExprString(lhs)
		switch {
		case types.ExprString(bin.X) == ls:
			addend = bin.Y
		case types.ExprString(bin.Y) == ls:
			addend = bin.X
		default:
			return
		}
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil || !analysis.IsFloat(t) {
		return
	}
	if !timeLikeName(lastName(lhs)) || !mentionsTimestep(addend) {
		return
	}
	pass.Reportf(n.Pos(), "%s accumulates simulation time in floating point and drifts off the tick grid (the PR 3 bug); derive it from the tick index: %s = float64(tick)*dt", types.ExprString(n.Lhs[0])+" "+n.Tok.String()+" "+types.ExprString(n.Rhs[0]), types.ExprString(n.Lhs[0]))
}

// lastName is the final identifier of an lvalue: x -> x, s.OnTime -> OnTime.
func lastName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return lastName(x.X)
	case *ast.IndexExpr:
		return lastName(x.X)
	case *ast.StarExpr:
		return lastName(x.X)
	}
	return ""
}

// timeLikeName matches accumulators that represent a point or span on the
// simulated clock.
func timeLikeName(name string) bool {
	l := strings.ToLower(name)
	if l == "t" || l == "now" {
		return true
	}
	return strings.Contains(l, "time") || strings.Contains(l, "clock") || strings.Contains(l, "elapsed")
}

// mentionsTimestep reports whether the addend references a dt-like value.
func mentionsTimestep(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch x := n.(type) {
		case *ast.Ident:
			name = x.Name
		case *ast.SelectorExpr:
			name = x.Sel.Name
		default:
			return true
		}
		l := strings.ToLower(name)
		if l == "dt" || l == "timestep" || strings.HasSuffix(l, "dt") {
			found = true
			return false
		}
		return true
	})
	return found
}

// floatCompareExempt lists the float ==/!= shapes that are exact by
// construction: a constant operand (sentinels like 0 are representable
// exactly), x != x (the NaN test), and comparison against math.Inf/NaN.
func floatCompareExempt(info *types.Info, n *ast.BinaryExpr) bool {
	if isConstExpr(info, n.X) || isConstExpr(info, n.Y) {
		return true
	}
	if types.ExprString(n.X) == types.ExprString(n.Y) {
		return true // x != x is the canonical NaN check
	}
	return isInfOrNaNCall(info, n.X) || isInfOrNaNCall(info, n.Y)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isInfOrNaNCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && analysis.IsPkgFunc(info, call, "math", "Inf", "NaN")
}
