package lint_test

import (
	"testing"

	"react/internal/lint"
	"react/internal/lint/analysis"
	"react/internal/lint/linttest"
)

// TestDTArith includes the PR 3 drift regression: the exact t += dt shape
// that lagged the tick grid must be flagged, and the float64(tick)*dt
// replacement must not be.
func TestDTArith(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.DTArith}, "dtarith/drift")
}
