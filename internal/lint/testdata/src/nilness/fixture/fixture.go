// Package fixture exercises the syntactic provably-nil checks: a branch
// whose condition proves a value nil must not dereference it.
package fixture

// T is a small struct to dereference.
type T struct {
	F int
}

// Deref dereferences inside the branch that proved p nil.
func Deref(p *T) int {
	if p == nil {
		return p.F // want "nil on this path"
	}
	return p.F
}

// ElseDeref has p provably nil in the else branch of the != guard.
func ElseDeref(p *T) int {
	if p != nil {
		return p.F
	} else {
		return p.F // want "nil on this path"
	}
}

// Reassigned is fine: p gains a value before the use.
func Reassigned(p *T) int {
	if p == nil {
		p = &T{}
		return p.F
	}
	return p.F
}

// NilCall calls a provably nil function value.
func NilCall(f func() int) int {
	if f == nil {
		return f() // want "nil on this path"
	}
	return f()
}

// Head indexes a provably nil slice.
func Head(xs []float64) float64 {
	if xs == nil {
		return xs[0] // want "nil on this path"
	}
	return xs[0]
}

// Msg calls a method through a provably nil interface.
func Msg(err error) string {
	if err == nil {
		return err.Error() // want "nil on this path"
	}
	return err.Error()
}
