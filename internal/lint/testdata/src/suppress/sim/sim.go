// Package sim seeds suppression directives for the directive-hygiene
// test, which asserts the resulting findings directly: a want comment
// cannot share a line with the directive it checks (a line has one
// comment), so this fixture is matched by TestSuppressionDirectives
// rather than by want annotations.
package sim

import "time"

// Covered is silenced by a well-formed directive.
func Covered() int64 {
	//lint:reactlint-ignore determinism fixture exercises a valid suppression
	return time.Now().Unix()
}

// Unknown names a rule that does not exist: the directive is a finding
// and the wall-clock read stays flagged.
func Unknown() int64 {
	//lint:reactlint-ignore nosuchrule this rule does not exist
	return time.Now().Unix()
}

// Reasonless omits the mandatory reason: same deal.
func Reasonless() int64 {
	//lint:reactlint-ignore determinism
	return time.Now().Unix()
}
