// Package service exercises the mutex-below-fields layout contract and
// the no-bare-contexts-in-handlers rule. Its import path ends in
// /service, putting it in lockhygiene's scope.
package service

import (
	"context"
	"net/http"
	"sync"
)

// Server follows the repo layout: fields declared below mu are guarded by
// it; atomics live above.
type Server struct {
	hits int64 // atomic, above the mutex: unguarded by convention

	mu    sync.Mutex
	count int
	views map[string]int
}

// Bump writes a guarded field without the lock.
func (s *Server) Bump() {
	s.count++ // want "outside"
}

// Put writes through a guarded map without the lock.
func (s *Server) Put(k string) {
	s.views[k] = 1 // want "outside"
}

// BumpSafe locks first: fine.
func (s *Server) BumpSafe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

// bumpLocked documents that its caller holds s.mu: fine.
func (s *Server) bumpLocked() {
	s.count++
}

// New mutates a value still local to the constructor: fine, nothing has
// escaped to another goroutine yet.
func New() *Server {
	s := &Server{views: map[string]int{}}
	s.count = 1
	return s
}

// handle must not detach request work onto a bare context; the guarded
// write below is under the lock and fine.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "detaches"
	_ = ctx
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

// reset is allowed by an explicit reasoned suppression.
func (s *Server) reset() {
	//lint:reactlint-ignore lockhygiene fixture demonstrates a reasoned suppression
	s.count = 0
}
