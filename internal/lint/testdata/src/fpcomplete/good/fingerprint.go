package good

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

//lint:fpcomplete-target Spec DeviceSpec
//lint:fpcomplete-allow Spec.Name presentation metadata, not physics

// canonical is the hashed form: Device rides along wholesale, and the
// Go-only profile pointer is replaced by a digest of its content.
type canonical struct {
	Mean   float64    `json:"mean"`
	Device DeviceSpec `json:"device"`
	Prof   string     `json:"prof,omitempty"`
}

// Fingerprint hashes the canonical encoding of the spec.
func Fingerprint(s Spec) (string, error) {
	c := canonical{Mean: s.Mean, Device: s.Device}
	if s.Device.Prof != nil {
		c.Prof = fmt.Sprintf("%v", s.Device.Prof.Pts)
	}
	data, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}
