// Package good models a spec whose canonical form accounts for every
// JSON-visible field: fpcomplete must stay silent.
package good

// Spec is the catalogue entry: Name is presentation, the rest is physics.
type Spec struct {
	Name   string     `json:"name"`
	Mean   float64    `json:"mean"`
	Device DeviceSpec `json:"device"`
}

// DeviceSpec is encoded wholesale by the canonical form; Prof is Go-only
// and replaced by a content digest.
type DeviceSpec struct {
	VOn  float64  `json:"v_on"`
	Prof *Profile `json:"-"`
}

// Profile is runtime state resolved from the spec.
type Profile struct {
	Pts []float64
}
