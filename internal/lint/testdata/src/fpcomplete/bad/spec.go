// Package bad adds physics fields the canonical form never hashes: the
// exact mistake fpcomplete turns into a build break — two physically
// different specs would share a content address.
package bad

// Spec grew a Leak knob nobody taught fingerprint.go about.
type Spec struct {
	Name   string     `json:"name"`
	Mean   float64    `json:"mean"`
	Leak   float64    `json:"leak"` // want "neither canonicalized"
	Device DeviceSpec `json:"device"`
}

// DeviceSpec carries a Go-only field that is neither digested nor
// allowlisted: wholesale JSON encoding skips json:"-", so it is unhashed.
type DeviceSpec struct {
	VOn float64  `json:"v_on"`
	Cal *Profile `json:"-"` // want "neither canonicalized"
}

// Profile is runtime state resolved from the spec.
type Profile struct {
	Pts []float64
}
