package bad

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

//lint:fpcomplete-target Spec DeviceSpec
//lint:fpcomplete-allow Spec.Name presentation metadata, not physics

// canonical misses Spec.Leak entirely, and DeviceSpec.Cal is skipped by
// the wholesale encoding (json:"-").
type canonical struct {
	Mean   float64    `json:"mean"`
	Device DeviceSpec `json:"device"`
}

// Fingerprint hashes the (incomplete) canonical encoding.
func Fingerprint(s Spec) (string, error) {
	data, err := json.Marshal(canonical{Mean: s.Mean, Device: s.Device})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}
