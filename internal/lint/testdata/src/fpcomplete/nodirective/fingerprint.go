// Package nodirective has a fingerprint.go that never declares its
// contract: fpcomplete demands the target directive.
package nodirective // want "declares no"

import "encoding/json"

// canonical hashes something, but nothing says which spec types it must
// account for.
type canonical struct {
	Mean float64 `json:"mean"`
}

// Encode returns the canonical encoding.
func Encode(mean float64) ([]byte, error) {
	return json.Marshal(canonical{Mean: mean})
}
