// Package drift is the dtarith fixture. Drift reproduces the exact shape
// of the PR 3 bug: the simulated clock accumulated by repeated dt
// addition lagged the tick grid by ~3e-9 s over 4e5 ticks — enough to
// deliver one extra trace sample and shift every record point.
package drift

import "math"

// Drift accumulates simulation time in floating point (the PR 3 bug).
func Drift(ticks int, dt float64) float64 {
	t := 0.0
	for i := 0; i < ticks; i++ {
		t += dt // want "accumulates simulation time"
	}
	return t
}

// DriftSpelledOut is the same bug written as t = t + dt.
func DriftSpelledOut(ticks int, dt float64) float64 {
	t := 0.0
	for i := 0; i < ticks; i++ {
		t = t + dt // want "accumulates simulation time"
	}
	return t
}

// OnGrid is the sanctioned form: time derived from the integer tick index
// stays exactly on the grid.
func OnGrid(ticks int, dt float64) float64 {
	var t float64
	for tick := 0; tick < ticks; tick++ {
		t = float64(tick) * dt
	}
	return t
}

// Energy accumulates a non-time quantity: integrating a signal is fine.
func Energy(p, dt float64, n int) float64 {
	var e float64
	for i := 0; i < n; i++ {
		e += p * dt
	}
	return e
}

// Eq compares physics values bit-exactly.
func Eq(a, b float64) bool {
	return a == b // want "bit-exactly"
}

// Tol is the sanctioned tolerance compare.
func Tol(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// IsNaN uses the canonical x != x test: exempt.
func IsNaN(x float64) bool {
	return x != x
}

// Sentinel compares against a constant: sentinels are exactly
// representable, so the compare is exact by construction.
func Sentinel(x float64) bool {
	return x == 0
}

// Unbounded compares against math.Inf: exempt.
func Unbounded(x float64) bool {
	return x == math.Inf(1)
}

// Suppressed shows a reasoned directive silencing an exact compare.
func Suppressed(a, b float64) bool {
	//lint:reactlint-ignore dtarith exact identity is the invariant this fixture asserts
	return a == b
}
