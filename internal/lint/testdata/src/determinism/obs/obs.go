// Package obs is the observability fixture: its import path ends in /obs,
// so it carries the partial determinism contract — wall-clock reads are
// exempt (span and metric timestamps are wall-clock by design), but
// randomness and order-sensitive map iteration stay forbidden, because
// exposition and trace output must not depend on the Go map seed.
package obs

import (
	"math/rand" // want "randomness in simulation packages"
	"sort"
	"time"
)

// SpanStart stamps a span with the wall clock: exempt in obs packages.
func SpanStart() int64 {
	return time.Now().UnixNano()
}

// SpanDuration uses the Since helper: also exempt here.
func SpanDuration(start time.Time) time.Duration {
	return time.Since(start)
}

// Jitter is still forbidden: sampling decisions must be seeded.
func Jitter() float64 {
	return rand.Float64()
}

// Expose appends metric names under map iteration without a sort: the
// exposition would follow the map seed.
func Expose(families map[string]float64) []string {
	var lines []string
	for name := range families {
		lines = append(lines, name) // want "order nondeterministic"
	}
	return lines
}

// ExposeSorted is the sanctioned collect-then-sort idiom.
func ExposeSorted(families map[string]float64) []string {
	var lines []string
	for name := range families {
		lines = append(lines, name)
	}
	sort.Strings(lines)
	return lines
}
