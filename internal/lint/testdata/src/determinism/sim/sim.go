// Package sim is a determinism fixture: its import path ends in /sim, so
// it sits inside the bit-identical determinism contract.
package sim

import (
	"encoding/json"
	"math/rand" // want "randomness in simulation packages"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want "reads the wall clock"
}

// Elapsed uses the Since helper.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "reads the wall clock"
}

// Roll uses the forbidden global generator.
func Roll() float64 {
	return rand.Float64()
}

// Keys appends under map iteration without a sort: element order follows
// the map seed.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "order nondeterministic"
	}
	return keys
}

// SortedKeys is the sanctioned collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates floats in map order: FP addition is not associative.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "order-dependent"
	}
	return total
}

// PerKey accumulates into an entry addressed by the range key: per-key
// work is order-independent.
func PerKey(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// Digest serializes inside map iteration.
func Digest(m map[string]int) []byte {
	var blob []byte
	for k := range m {
		b, _ := json.Marshal(k)   // want "serializes in nondeterministic order"
		blob = append(blob, b...) // want "order nondeterministic"
	}
	return blob
}

// Suppressed shows a reasoned directive silencing a finding.
func Suppressed() int64 {
	//lint:reactlint-ignore determinism fixture demonstrates a reasoned suppression
	return time.Now().Unix()
}
