// Package other sits outside the determinism scope (no sim/scenario/
// explore/runner/experiments path segment): wall-clock reads are fine
// here, so the analyzer must stay silent.
package other

import "time"

// Uptime may read the wall clock: this package is not under the
// bit-identical contract.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
