// Package fixture exercises the used-after shadow heuristic: an inner
// redeclaration only counts when the outer variable of identical type is
// read again after the inner scope closes.
package fixture

import "errors"

func helper() (int, error) {
	return 1, nil
}

// Shadowed is the classic lost-error shape: the inner err hides the outer
// one, which the final return still reads.
func Shadowed(cond bool) error {
	var err error
	if cond {
		v, err := helper() // want "shadows"
		if err != nil {
			return err
		}
		_ = v
	}
	return err
}

// Scoped is fine: the outer err is never read after the inner block.
func Scoped(cond bool) error {
	err := errors.New("outer")
	if err != nil {
		return err
	}
	if cond {
		_, err := helper()
		if err != nil {
			return err
		}
	}
	return nil
}

// Param is fine: closure parameters are intentional shadows.
func Param(xs []int) int {
	n := 0
	add := func(n int) int { return n + 1 }
	for _, x := range xs {
		n += add(x)
	}
	return n
}

// DifferentType is fine: the heuristic requires identical types.
func DifferentType(cond bool) error {
	var err error
	if cond {
		err := "not an error"
		_ = err
	}
	return err
}
