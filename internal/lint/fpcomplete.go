package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"strings"

	"react/internal/lint/analysis"
)

// FPComplete cross-checks the spec types against the canonicalization code
// in fingerprint.go: every exported field of every declared target type
// must be hashed (explicitly referenced in fingerprint.go, or a member of
// a struct the canonical form encodes wholesale) or sit on an explicit
// allowlist of non-physics exclusions. Adding a spec field without
// deciding its cache identity is a build break, not a hand audit — a
// missed field means two physically different runs share a content
// address, which the cluster's disk tier turns into silent cross-node
// cache poisoning.
//
// fingerprint.go declares its own contract with directives:
//
//	//lint:fpcomplete-target Spec TraceSpec ckpt.Config ...
//	//lint:fpcomplete-allow Spec.Title catalogue metadata, not physics
var FPComplete = &analysis.Analyzer{
	Name: "fpcomplete",
	Doc: `every spec field must be fingerprinted or explicitly excluded

Checks the //lint:fpcomplete-target types of a package's fingerprint.go:
a field is covered when fingerprint.go mentions it, when its struct is
encoded wholesale into the canonical form, or when an
//lint:fpcomplete-allow directive excludes it with a reason.`,
	Run: runFPComplete,
}

const (
	targetDirective = "//lint:fpcomplete-target"
	allowDirective  = "//lint:fpcomplete-allow"
)

func runFPComplete(pass *analysis.Pass) error {
	var fpFile *ast.File
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "fingerprint.go" {
			fpFile = f
			break
		}
	}
	if fpFile == nil {
		return nil
	}

	targets, allow := fpDirectives(pass, fpFile)
	if len(targets) == 0 {
		pass.Reportf(fpFile.Name.Pos(), "fingerprint.go declares no %s directive; list the spec types whose fields the canonical form must account for", targetDirective)
		return nil
	}

	mentions := fpMentions(fpFile)
	wholesale := fpWholesale(pass, fpFile)

	for _, tg := range targets {
		named := resolveTargetType(pass, tg.name)
		if named == nil {
			pass.Reportf(tg.pos, "%s %s: no struct type with that name is visible from this package", targetDirective, tg.name)
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(tg.pos, "%s %s: not a struct type", targetDirective, tg.name)
			continue
		}
		local := named.Obj().Pkg() == pass.Pkg
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			jsonName := jsonTagName(st.Tag(i), f.Name())
			if allow[named.Obj().Name()+"."+f.Name()] {
				continue
			}
			if mentions[f.Name()] {
				continue
			}
			if wholesale[named] && jsonName != "-" {
				continue
			}
			pos := tg.pos
			if local {
				pos = f.Pos()
			}
			pass.Reportf(pos, "field %s.%s (json %q) is neither canonicalized in fingerprint.go nor allowlisted: two physically different specs would share a content address; hash it or add %s %s.%s <reason>",
				named.Obj().Name(), f.Name(), jsonName, allowDirective, named.Obj().Name(), f.Name())
		}
	}
	return nil
}

type fpTarget struct {
	name string
	pos  token.Pos
}

// fpDirectives parses the target and allow directives out of
// fingerprint.go's comments.
func fpDirectives(pass *analysis.Pass, f *ast.File) ([]fpTarget, map[string]bool) {
	var targets []fpTarget
	allow := map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			switch {
			case strings.HasPrefix(c.Text, targetDirective):
				for _, name := range strings.Fields(strings.TrimPrefix(c.Text, targetDirective)) {
					targets = append(targets, fpTarget{name: name, pos: c.Pos()})
				}
			case strings.HasPrefix(c.Text, allowDirective):
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowDirective))
				switch {
				case len(fields) == 0 || !strings.Contains(fields[0], "."):
					pass.Reportf(c.Pos(), "%s wants Type.Field followed by a reason", allowDirective)
				case len(fields) < 2:
					pass.Reportf(c.Pos(), "%s %s gives no reason: every exclusion must say why the field is not physics", allowDirective, fields[0])
				default:
					allow[fields[0]] = true
				}
			}
		}
	}
	return targets, allow
}

// resolveTargetType resolves "Spec" in the package scope or "ckpt.Config"
// through the package's direct imports (matched by package name, so
// aliased imports resolve too — the types, not the spelling, decide).
func resolveTargetType(pass *analysis.Pass, name string) *types.Named {
	lookupIn := pass.Pkg.Scope()
	typeName := name
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		pkgName, tn := name[:dot], name[dot+1:]
		lookupIn = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				lookupIn = imp.Scope()
				typeName = tn
				break
			}
		}
		if lookupIn == nil {
			return nil
		}
	}
	obj := lookupIn.Lookup(typeName)
	if obj == nil {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// fpMentions collects every field-shaped name fingerprint.go touches:
// selector names, composite-literal keys, and the fields of the canonical
// structs it declares. A mentioned field has, at minimum, been looked at
// by the canonicalization author.
func fpMentions(f *ast.File) map[string]bool {
	m := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			m[n.Sel.Name] = true
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				m[id.Name] = true
			}
		case *ast.StructType:
			for _, fld := range n.Fields.List {
				for _, name := range fld.Names {
					m[name.Name] = true
				}
			}
		}
		return true
	})
	return m
}

// fpWholesale computes the set of named struct types the canonical form
// encodes in their entirety: the types of fields of structs declared in
// fingerprint.go, transitively (json.Marshal recurses, so a new
// JSON-visible field of a wholesale type is hashed automatically).
func fpWholesale(pass *analysis.Pass, f *ast.File) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	var add func(t types.Type)
	add = func(t types.Type) {
		switch x := t.(type) {
		case *types.Pointer:
			add(x.Elem())
			return
		case *types.Slice:
			add(x.Elem())
			return
		case *types.Array:
			add(x.Elem())
			return
		case *types.Map:
			add(x.Elem())
			return
		}
		named, ok := t.(*types.Named)
		if !ok || out[named] {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		out[named] = true
		for i := 0; i < st.NumFields(); i++ {
			if jsonTagName(st.Tag(i), st.Field(i).Name()) != "-" {
				add(st.Field(i).Type())
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
			return true
		}
		if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
			if st, ok := obj.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if jsonTagName(st.Tag(i), st.Field(i).Name()) != "-" {
						add(st.Field(i).Type())
					}
				}
			}
		}
		return true
	})
	return out
}

// jsonTagName returns the field's effective JSON key, or "-" when the
// encoder skips it.
func jsonTagName(tag, fieldName string) string {
	t := reflect.StructTag(tag).Get("json")
	if t == "" {
		return fieldName
	}
	name, _, _ := strings.Cut(t, ",")
	if name == "" {
		return fieldName
	}
	return name
}
