package lint_test

import (
	"testing"

	"react/internal/lint"
	"react/internal/lint/analysis"
	"react/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.Determinism},
		"determinism/sim", "determinism/other", "determinism/obs")
}
