package lint

import (
	"go/ast"
	"go/types"

	"react/internal/lint/analysis"
)

// Shadow is a stdlib-only port of the stock x/tools shadow analyzer (the
// offline build cannot vendor the original), with its noise heuristics: a
// declaration only counts as a harmful shadow when the outer variable has
// the identical type AND is used again after the inner scope closes — the
// case where a reader (or a later edit) plausibly confuses the two.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc: `flag shadowed variables that are used after the shadowing scope

An inner x := ... hiding an outer x of the same type is reported when the
outer x is read after the inner scope ends — the pattern where an
assignment intended for the outer variable silently lands on the inner
one.`,
	Run: runShadow,
}

func runShadow(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Scopes that don't count as "enclosing function scope": package and
	// file scopes (shadowing a global is idiomatic Go, vet skips it too).
	outerExcluded := map[*types.Scope]bool{
		types.Universe:   true,
		pass.Pkg.Scope(): true,
	}
	for _, f := range pass.Files {
		if s, ok := info.Scopes[f]; ok {
			outerExcluded[s] = true
		}
	}

	// Function-signature scopes hold parameters, results, and receivers;
	// declaring a closure parameter over an outer name is idiomatic and the
	// stock analyzer skips it too (it only inspects := and var).
	paramScopes := map[*types.Scope]bool{}
	for node, s := range info.Scopes {
		if _, ok := node.(*ast.FuncType); ok {
			paramScopes[s] = true
		}
	}

	for id, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		inner := v.Parent()
		if inner == nil || outerExcluded[inner] || paramScopes[inner] || inner.Parent() == nil {
			continue
		}
		outerScope, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
		if outerObj == nil || outerObj == obj || outerExcluded[outerScope] {
			continue
		}
		outerVar, ok := outerObj.(*types.Var)
		if !ok || outerVar.IsField() || !types.Identical(v.Type(), outerVar.Type()) {
			continue
		}
		if usedAfter(info, outerVar, inner, outerScope) {
			pass.Reportf(id.Pos(), "declaration of %q shadows a %s declared at %s which is used again after this scope ends",
				id.Name, v.Type(), pass.Fset.Position(outerVar.Pos()))
		}
	}
	return nil
}

// usedAfter reports whether outerVar is referenced after the inner scope
// ends but still within its own scope.
func usedAfter(info *types.Info, outerVar *types.Var, inner, outer *types.Scope) bool {
	for useID, useObj := range info.Uses {
		if useObj == outerVar && useID.Pos() > inner.End() && useID.Pos() < outer.End() {
			return true
		}
	}
	return false
}
