package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"react/internal/lint/analysis"
)

// lockScopeSegments names the packages under the shared-state contract:
// the daemon's caches/views and the disk store.
var lockScopeSegments = []string{"service", "store"}

// LockHygiene enforces the service/store locking conventions: fields
// declared below a struct's sync.Mutex are guarded by it (the Server and
// Store structs document exactly this layout), so writes to them must
// happen with the mutex held, in a *Locked helper, or on a
// still-function-local value; and request handlers must not detach work
// onto context.Background() — a handler's work belongs to r.Context() so
// a disconnected client actually cancels it.
var LockHygiene = &analysis.Analyzer{
	Name: "lockhygiene",
	Doc: `guarded-field writes under the owning mutex; no bare contexts in handlers

In service/store packages: a write to a field declared below a sync.Mutex
must follow a <recv>.<mu>.Lock() call in the same function, live in a
function suffixed "Locked" (caller holds the lock), or target a value
still local to the constructor. Handlers (any function taking
http.ResponseWriter or *http.Request) must not call
context.Background/TODO.`,
	Run: runLockHygiene,
}

func runLockHygiene(pass *analysis.Pass) error {
	if !pathInScope(pass.PkgPath, lockScopeSegments) {
		return nil
	}
	guards := collectGuardedFields(pass)
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedWrites(pass, fd, guards)
			checkHandlerContexts(pass, fd, reported)
		}
	}
	return nil
}

// collectGuardedFields maps each field declared below its struct's first
// sync.Mutex/RWMutex to that mutex's name.
func collectGuardedFields(pass *analysis.Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mutexName := ""
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if mutexName == "" {
				if isSyncMutex(f.Type()) {
					mutexName = f.Name()
				}
				continue
			}
			if !isSyncMutex(f.Type()) {
				guards[f] = mutexName
			}
		}
	}
	return guards
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// checkGuardedWrites flags writes to guarded fields outside a locked
// context.
func checkGuardedWrites(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // caller-holds-lock convention
	}
	info := pass.TypesInfo
	var writes []ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			writes = append(writes, n.Lhs...)
		case *ast.IncDecStmt:
			writes = append(writes, n.X)
		}
		return true
	})
	for _, w := range writes {
		sel, fvar := guardedSelector(info, w, guards)
		if sel == nil {
			continue
		}
		// A value still local to this function hasn't escaped to other
		// goroutines yet — the constructor pattern.
		if root := analysis.RootIdent(sel.X); root != nil {
			if obj := analysis.ObjectOf(info, root); obj != nil &&
				obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End() {
				continue
			}
		}
		mu := guards[fvar]
		if lockHeldBefore(info, fd.Body, sel.X, mu, w.Pos()) {
			continue
		}
		pass.Reportf(w.Pos(), "write to %s outside %s.%s.Lock(): the field is declared below the mutex and is guarded by it; lock first, use an atomic, or suffix the function name with Locked",
			types.ExprString(w), types.ExprString(sel.X), mu)
	}
}

// guardedSelector unwraps a write target (s.f, s.f[k], *s.f, ...) to the
// field selection and returns it when the field is guarded.
func guardedSelector(info *types.Info, e ast.Expr, guards map[*types.Var]string) (*ast.SelectorExpr, *types.Var) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			selInfo, ok := info.Selections[x]
			if !ok || selInfo.Kind() != types.FieldVal {
				return nil, nil
			}
			fvar, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return nil, nil
			}
			if _, guarded := guards[fvar]; guarded {
				return x, fvar
			}
			// s.inner.field: the inner selection may itself be guarded.
			e = x.X
		default:
			return nil, nil
		}
	}
}

// lockHeldBefore reports whether the function body calls
// <recv>.<mu>.Lock() (or the promoted <recv>.Lock()) before pos. This is
// a hygiene heuristic, not a proof: an Unlock between the calls is not
// tracked — suppress with a reason when the flow is genuinely safe.
func lockHeldBefore(info *types.Info, body *ast.BlockStmt, recv ast.Expr, mu string, pos token.Pos) bool {
	recvStr := types.ExprString(recv)
	want := recvStr + "." + mu + ".Lock"
	wantPromoted := recvStr + ".Lock"
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || held {
			return !held
		}
		fun := types.ExprString(call.Fun)
		if fun == want || fun == wantPromoted {
			held = true
			return false
		}
		return true
	})
	return held
}

// checkHandlerContexts flags context.Background/TODO inside request
// handlers (functions or literals with http.ResponseWriter / *http.Request
// parameters).
func checkHandlerContexts(pass *analysis.Pass, fd *ast.FuncDecl, reported map[token.Pos]bool) {
	info := pass.TypesInfo
	var visit func(ft *ast.FuncType, body *ast.BlockStmt)
	visit = func(ft *ast.FuncType, body *ast.BlockStmt) {
		if !isHandlerSignature(info, ft) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.IsPkgFunc(info, call, "context", "Background", "TODO") && !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "request handler detaches onto %s: work started for a request must derive from r.Context() so a disconnected client cancels it (use the server's lifecycle context for intentionally detached work)",
					types.ExprString(call.Fun))
			}
			return true
		})
	}
	visit(fd.Type, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			visit(fl.Type, fl.Body)
		}
		return true
	})
}

func isHandlerSignature(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		t := info.TypeOf(p.Type)
		if t == nil {
			continue
		}
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "net/http" {
			continue
		}
		if n := named.Obj().Name(); n == "Request" || n == "ResponseWriter" {
			return true
		}
	}
	return false
}
