// Package lint is reactlint: a suite of domain-specific analyzers that
// turn this repo's correctness invariants — bit-identical determinism,
// tick-index time arithmetic, fingerprint completeness, lock hygiene —
// into build breaks instead of test-by-test vigilance. cmd/reactlint is
// the multichecker binary; DESIGN.md ("Invariants and enforcement")
// documents which analyzer guards which invariant family and the
// suppression policy.
//
// A finding is silenced only by an explicit, reasoned directive on the
// flagged line or the line above it:
//
//	//lint:reactlint-ignore <rule> <reason>
//
// A directive with a missing or unknown rule, or no reason, is itself a
// diagnostic — suppressions must say what they suppress and why.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"react/internal/lint/analysis"
	"react/internal/lint/load"
)

// Analyzers returns the full reactlint suite in reporting order: the four
// domain analyzers plus the general-purpose nilness and shadow checks
// (stdlib-only ports of the stock x/tools passes, which the offline build
// cannot vendor).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		DTArith,
		FPComplete,
		LockHygiene,
		Nilness,
		Shadow,
	}
}

// ByName resolves a comma-separated rule list against the suite.
func ByName(rules string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if rules == "" {
		return all, nil
	}
	var out []*analysis.Analyzer
	for _, r := range strings.Split(rules, ",") {
		r = strings.TrimSpace(r)
		found := false
		for _, a := range all {
			if a.Name == r {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", r, strings.Join(ruleNames(), ", "))
		}
	}
	return out, nil
}

func ruleNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Finding is one diagnostic after suppression filtering.
type Finding struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Rule)
}

// IgnoreDirective is the suppression comment prefix.
const IgnoreDirective = "//lint:reactlint-ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	rule string
	line int // the directive's own line; it covers line and line+1
}

// RunPackage runs the analyzers over one loaded package and returns the
// surviving findings sorted by position. Malformed suppression directives
// are reported as findings of the pseudo-rule "reactlint-ignore".
func RunPackage(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var raw []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			raw = append(raw, Finding{Rule: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sups, bad := collectSuppressions(fset, pkg)
	var out []Finding
	for _, f := range raw {
		if !suppressed(sups[f.Pos.Filename], f) {
			out = append(out, f)
		}
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out, nil
}

// collectSuppressions scans every comment for ignore directives. A
// well-formed directive names a known rule and gives a reason; anything
// else is reported rather than silently doing nothing.
func collectSuppressions(fset *token.FileSet, pkg *load.Package) (map[string][]suppression, []Finding) {
	sups := map[string][]suppression{}
	var bad []Finding
	known := map[string]bool{}
	for _, n := range ruleNames() {
		known[n] = true
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{Rule: "reactlint-ignore", Pos: pos,
						Message: "suppression names no rule: want //lint:reactlint-ignore <rule> <reason>"})
				case !known[fields[0]]:
					bad = append(bad, Finding{Rule: "reactlint-ignore", Pos: pos,
						Message: fmt.Sprintf("suppression names unknown rule %q (have %s)", fields[0], strings.Join(ruleNames(), ", "))})
				case len(fields) < 2:
					bad = append(bad, Finding{Rule: "reactlint-ignore", Pos: pos,
						Message: fmt.Sprintf("suppression of %q gives no reason: every ignore must say why", fields[0])})
				default:
					sups[pos.Filename] = append(sups[pos.Filename], suppression{rule: fields[0], line: pos.Line})
				}
			}
		}
	}
	return sups, bad
}

// suppressed reports whether a directive covers the finding: same rule, on
// the finding's line or the line above it.
func suppressed(sups []suppression, f Finding) bool {
	for _, s := range sups {
		if s.rule == f.Rule && (s.line == f.Pos.Line || s.line == f.Pos.Line-1) {
			return true
		}
	}
	return false
}
