// Package linttest runs reactlint analyzers over fixture packages the way
// golang.org/x/tools/go/analysis/analysistest does (which the offline
// build cannot vendor): fixture sources under testdata/src/<pkg> annotate
// the lines where diagnostics are expected with
//
//	code()  // want "regexp" "second regexp"
//
// and Run fails the test on any missed, surplus, or mismatched finding.
// Suppression directives are honored before matching, so fixtures assert
// both that rules fire and that reasoned ignores silence them.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"react/internal/lint"
	"react/internal/lint/analysis"
	"react/internal/lint/load"
)

// wantRx extracts the quoted expectation patterns from a // want comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkgdir> for each pkgdir, applies the analyzers
// (with suppression filtering), and matches findings against the // want
// annotations.
func Run(t *testing.T, analyzers []*analysis.Analyzer, pkgdirs ...string) {
	t.Helper()
	loader := load.New()
	for _, pkgdir := range pkgdirs {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgdir))
		pkg, err := loader.LoadDir(dir, pkgdir, ".")
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgdir, err)
		}
		findings, err := lint.RunPackage(loader.Fset, pkg, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkgdir, err)
		}
		checkExpectations(t, loader.Fset, pkg, findings)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// checkExpectations compares findings with the fixture's want comments,
// line by line.
func checkExpectations(t *testing.T, fset *token.FileSet, pkg *load.Package, findings []lint.Finding) {
	t.Helper()
	wants := map[string]map[int][]*expectation{} // file -> line -> patterns
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]*expectation{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{rx: rx})
				}
			}
		}
	}
	for _, f := range findings {
		exps := wants[f.Pos.Filename][f.Pos.Line]
		found := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(f.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s: missing expected finding matching %q", fmt.Sprintf("%s:%d", file, line), e.rx)
				}
			}
		}
	}
}
