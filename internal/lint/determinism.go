package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"react/internal/lint/analysis"
)

// deterministicSegments names the packages under the bit-identical
// determinism contract (ROADMAP tier-1): every table, golden file, and
// cached cell must regenerate identically for any worker count, batch
// size, and Go map seed.
var deterministicSegments = []string{"sim", "scenario", "explore", "runner", "experiments"}

// obsSegments names the observability packages, which sit under a partial
// contract: wall-clock reads are allowed there — span and metric
// timestamps are wall-clock by design — but seeded randomness and ordered
// map iteration still apply, because Prometheus exposition, trace
// assembly, and timeline flushes must serialize identically for any Go
// map seed. The exemption is only for the obs packages themselves:
// sim-layer probe implementations live in sim-scope packages and must
// derive every timestamp from tick arithmetic (the sim.Probe contract).
var obsSegments = []string{"obs"}

// Determinism forbids the ambient-nondeterminism entry points in the
// simulation packages: wall-clock time, math/rand, and map-range iteration
// whose body is order-sensitive (appends to outer slices without a
// subsequent sort, accumulates floats, or feeds JSON/hash serialization).
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in simulation packages

In packages ` + strings.Join(deterministicSegments, "/") + `: no time.Now/Since/Until
(derive times from the tick index), no math/rand (use react/internal/rng),
and no order-sensitive bodies under unordered map iteration — collect the
keys, sort them, then iterate (the scenario.meanStd invariant).

In packages ` + strings.Join(obsSegments, "/") + `: the wall-clock checks are waived
(observability timestamps are wall-clock by design) but the randomness and
map-iteration rules still apply — exposition and trace output must not
depend on the map seed.`,
	Run: runDeterminism,
}

// pathInScope reports whether any slash-separated segment of pkgPath is in
// segments — "react/internal/sim" and a fixture's "determinism/sim" both
// match "sim".
func pathInScope(pkgPath string, segments []string) bool {
	for _, part := range strings.Split(pkgPath, "/") {
		for _, s := range segments {
			if part == s {
				return true
			}
		}
	}
	return false
}

func runDeterminism(pass *analysis.Pass) error {
	// obs packages carry the partial contract: no wall-clock findings, but
	// the randomness and map-iteration rules run as usual.
	obsScope := pathInScope(pass.PkgPath, obsSegments)
	if !obsScope && !pathInScope(pass.PkgPath, deterministicSegments) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: randomness in simulation packages must come from react/internal/rng (seeded, platform-stable splitmix64)", path)
			}
		}
	}
	// Walk function by function so each map range knows its enclosing
	// body (the collect-sort-iterate idiom is judged per function).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if !obsScope && analysis.IsPkgFunc(pass.TypesInfo, n, "time", "Now", "Since", "Until") {
						sel := n.Fun.(*ast.SelectorExpr)
						pass.Reportf(n.Pos(), "time.%s reads the wall clock, which is nondeterministic across runs; derive simulation times from the tick index (float64(tick)*dt)", sel.Sel.Name)
					}
				case *ast.RangeStmt:
					if t := pass.TypesInfo.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							checkMapRange(pass, fd.Body, n)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkMapRange flags order-sensitive work in the body of a map range.
func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	keyObj := rangeVarObj(info, rs.Key)

	// declaredOutside reports whether the written expression's root object
	// outlives the range statement (loop-local accumulation is fine).
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		root := analysis.RootIdent(e)
		if root == nil {
			return nil, true // conservative: complex targets are "outside"
		}
		obj := analysis.ObjectOf(info, root)
		if obj == nil {
			return nil, false
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return obj, false
		}
		return obj, true
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := n.Lhs[0]
				t := info.TypeOf(lhs)
				if t == nil || !analysis.IsFloat(t) {
					return true
				}
				// Accumulating into a map entry addressed by the range key
				// is per-key and therefore order-independent.
				if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
					if id, ok := ix.Index.(*ast.Ident); ok && analysis.ObjectOf(info, id) == keyObj {
						return true
					}
				}
				if _, outside := declaredOutside(lhs); outside {
					pass.Reportf(n.Pos(), "floating-point accumulation of %s over unordered map iteration is order-dependent; iterate sorted keys (the scenario.meanStd invariant)", types.ExprString(lhs))
				}
			case token.ASSIGN:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
						continue
					}
					dst := n.Lhs[i]
					obj, outside := declaredOutside(dst)
					if !outside || obj == nil {
						continue
					}
					if !sortedAfter(pass, funcBody, rs, obj) {
						pass.Reportf(n.Pos(), "appending to %s while ranging over an unordered map makes element order nondeterministic; iterate sorted keys, or sort %s before it is consumed", types.ExprString(dst), types.ExprString(dst))
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := serializationSink(info, n); ok {
				pass.Reportf(n.Pos(), "%s inside an unordered map range serializes in nondeterministic order; iterate sorted keys", name)
			}
		}
		return true
	})
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Defs[id]
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := analysis.ObjectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether the function sorts the accumulated slice
// after the range completes — the sanctioned collect-keys-then-sort idiom.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if root := analysis.RootIdent(arg); root != nil && analysis.ObjectOf(pass.TypesInfo, root) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hashPkgs are the packages whose Write/Sum receivers count as hash sinks.
var hashPkgs = map[string]bool{
	"hash": true, "crypto/sha256": true, "crypto/sha512": true,
	"crypto/sha1": true, "crypto/md5": true, "hash/fnv": true,
	"hash/crc32": true, "hash/crc64": true, "hash/adler32": true,
	"hash/maphash": true,
}

// serializationSink recognizes calls whose output depends on call order:
// JSON encoding and hash writes.
func serializationSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if analysis.IsPkgFunc(info, call, "encoding/json", "Marshal", "MarshalIndent") {
		return "json." + sel.Sel.Name, true
	}
	// Method sinks: (*json.Encoder).Encode, (hash.Hash).Write/Sum.
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return "", false
	}
	named := namedOf(recv)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	pkgPath, typeName := named.Obj().Pkg().Path(), named.Obj().Name()
	if pkgPath == "encoding/json" && typeName == "Encoder" && fn.Name() == "Encode" {
		return "json.Encoder.Encode", true
	}
	if hashPkgs[pkgPath] && (fn.Name() == "Write" || fn.Name() == "Sum") {
		return "hash " + typeName + "." + fn.Name(), true
	}
	return "", false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
