// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package and reports position-tagged diagnostics.
//
// The repo builds offline with a stdlib-only module, so the real x/tools
// framework is not importable here; this package keeps the same shape
// (Analyzer, Pass, Diagnostic, an analysistest-style fixture runner in
// internal/lint/linttest) so the reactlint analyzers port to the upstream
// API mechanically if the dependency ever lands. Only the pieces reactlint
// needs exist: no facts, no modular analysis, no SuggestedFixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Name doubles as the rule key
// the suppression directive (//lint:reactlint-ignore <rule> <reason>)
// references.
type Analyzer struct {
	// Name is the rule's identifier: lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description `reactlint -list` prints.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's syntax and types to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources, comments attached.
	Files []*ast.File
	// PkgPath is the package's import path. Fixture packages loaded from a
	// testdata directory get their directory-relative path, so analyzers
	// that scope themselves by path segment ("sim", "service", ...) behave
	// identically on fixtures and on the real tree.
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives each diagnostic; the driver owns collection,
	// suppression filtering, and ordering.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file's AST in order, calling f exactly as
// ast.Inspect does: descend while f returns true.
func Inspect(files []*ast.File, f func(ast.Node) bool) {
	for _, file := range files {
		ast.Inspect(file, f)
	}
}

// IsPkgFunc reports whether the called expression resolves to the named
// function of the named package (e.g. "time", "Now"). It sees through
// import aliases because it resolves the *types.Func, not the source text.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsFloat reports whether t's underlying type is a floating-point basic
// type (or an untyped float constant type).
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// RootIdent returns the leftmost identifier of a chain of selections,
// index and star expressions (the `s` of s.cache.entries[k]), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to its object via Uses then Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
