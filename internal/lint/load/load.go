// Package load turns Go package patterns into parsed, type-checked
// packages for the reactlint analyzers — a miniature of
// golang.org/x/tools/go/packages built from the standard library only.
//
// Package metadata and compiled export data come from one
// `go list -export -deps -json` invocation (offline and build-cached: the
// go tool reuses its build cache, so repeat reactlint runs re-typecheck
// only the analyzed sources, never the dependency graph). The packages
// matching the patterns are then re-typechecked from source — analyzers
// need syntax trees and a fully populated types.Info — while every
// dependency, standard library included, is imported from its export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path (or, for LoadDir fixture packages, the
	// caller-chosen path).
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads packages against one shared FileSet and export-data cache.
// Not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet
	// exports maps import path -> compiled export data file.
	exports map[string]string
	imp     types.Importer
}

// New returns an empty Loader.
func New() *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// lookup feeds the gc importer from the export-data map go list built.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	p, ok := l.exports[path]
	if !ok || p == "" {
		return nil, fmt.Errorf("no export data for %q (not in the go list dependency graph)", path)
	}
	return os.Open(p)
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and records every
// package's export data; it returns the entries in listing order.
func (l *Loader) goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,Export,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off keeps the file lists pure Go, so everything the analyzers
	// parse is also everything the compiler saw.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load resolves the patterns in dir (the module root, typically ".") and
// returns the matched packages parsed and type-checked from source, in
// deterministic import-path order. Dependencies are never re-typechecked —
// they import from export data.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := l.goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		p, err := l.check(e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir parses every non-test .go file in dir as a single package named
// pkgPath and type-checks it; imports resolve to export data listed from
// listDir (""=cwd, which must lie inside a module for the go tool to run).
// This is the fixture path: linttest points it at testdata/src/<pkg>.
func (l *Loader) LoadDir(dir, pkgPath, listDir string) (*Package, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)
	// Pre-resolve the fixture's imports to export data.
	asts, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	var missing []string
	seen := map[string]bool{}
	for _, f := range asts {
		for _, im := range f.Imports {
			path, err := strconv.Unquote(im.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			if _, ok := l.exports[path]; !ok {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		if _, err := l.goList(listDir, missing); err != nil {
			return nil, err
		}
	}
	return l.checkParsed(pkgPath, dir, asts)
}

// parse parses source files with comments preserved (the suppression
// directives and fixture expectations live in comments).
func (l *Loader) parse(files []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, f := range files {
		a, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, a)
	}
	return asts, nil
}

func (l *Loader) check(pkgPath, dir string, files []string) (*Package, error) {
	asts, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	return l.checkParsed(pkgPath, dir, asts)
}

func (l *Loader) checkParsed(pkgPath, dir string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: l.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Files: asts, Types: tpkg, Info: info}, nil
}
