package lint_test

import (
	"testing"

	"react/internal/lint"
	"react/internal/lint/analysis"
	"react/internal/lint/linttest"
)

func TestNilness(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.Nilness}, "nilness/fixture")
}
