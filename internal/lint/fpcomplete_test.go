package lint_test

import (
	"testing"

	"react/internal/lint"
	"react/internal/lint/analysis"
	"react/internal/lint/linttest"
)

// TestFPComplete proves the fingerprint contract both ways: a canonical
// form covering every field passes, and a spec growing an unhashed
// physics field (or an undigested json:"-" field) becomes a diagnostic —
// which CI turns into a build break.
func TestFPComplete(t *testing.T) {
	linttest.Run(t, []*analysis.Analyzer{lint.FPComplete},
		"fpcomplete/good", "fpcomplete/bad", "fpcomplete/nodirective")
}
