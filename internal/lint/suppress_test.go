package lint_test

import (
	"path/filepath"
	"testing"

	"react/internal/lint"
	"react/internal/lint/analysis"
	"react/internal/lint/load"
)

// TestSuppressionDirectives pins the directive hygiene rules on the
// suppress/sim fixture: a well-formed //lint:reactlint-ignore silences
// its finding; a directive naming an unknown rule or giving no reason is
// itself a finding AND leaves the original diagnostic standing.
func TestSuppressionDirectives(t *testing.T) {
	loader := load.New()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppress", "sim"), "suppress/sim", ".")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := lint.RunPackage(loader.Fset, pkg, []*analysis.Analyzer{lint.Determinism})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type want struct {
		rule    string
		funcDoc string // which fixture function the finding belongs to
	}
	wants := []want{
		{"reactlint-ignore", "Unknown"},    // unknown rule in the directive
		{"determinism", "Unknown"},         // ...so time.Now stays flagged
		{"reactlint-ignore", "Reasonless"}, // reason is mandatory
		{"determinism", "Reasonless"},      // ...so time.Now stays flagged
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d (a valid suppression must silence Covered; malformed ones must not)", len(findings), len(wants))
	}
	rules := map[string]int{}
	for _, f := range findings {
		rules[f.Rule]++
	}
	if rules["reactlint-ignore"] != 2 || rules["determinism"] != 2 {
		t.Fatalf("rule mix %v, want 2 reactlint-ignore + 2 determinism", rules)
	}
}
