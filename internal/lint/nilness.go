package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"react/internal/lint/analysis"
)

// Nilness is a syntactic port of the stock x/tools nilness analyzer (the
// offline build cannot vendor the SSA-based original): inside a branch
// whose condition proves an expression nil, a dereference of that same
// expression is a guaranteed panic.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: `flag dereferences of provably-nil values

if x == nil { ... x.f ... } (and the x != nil else-branch) panics at the
use; the condition and the dereference cannot both be intended.`,
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) error {
	info := pass.TypesInfo
	analysis.Inspect(pass.Files, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		expr := nilComparedExpr(bin)
		if expr == nil {
			return true
		}
		var branch *ast.BlockStmt
		if bin.Op == token.EQL {
			branch = ifs.Body
		} else {
			branch, _ = ifs.Else.(*ast.BlockStmt)
		}
		if branch == nil {
			return true
		}
		checkNilBranch(pass, info, expr, branch)
		return true
	})
	return nil
}

// nilComparedExpr returns the non-nil side of an x ==/!= nil comparison,
// when the other side is the predeclared nil.
func nilComparedExpr(bin *ast.BinaryExpr) ast.Expr {
	if isNilIdent(bin.Y) {
		return bin.X
	}
	if isNilIdent(bin.X) {
		return bin.Y
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkNilBranch reports the first dereference of expr inside the branch
// where it is known nil, stopping once expr may have been reassigned.
func checkNilBranch(pass *analysis.Pass, info *types.Info, expr ast.Expr, branch *ast.BlockStmt) {
	exprStr := types.ExprString(expr)
	t := info.TypeOf(expr)
	if t == nil {
		return
	}
	reassigned := token.NoPos
	ast.Inspect(branch, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if types.ExprString(lhs) == exprStr && (reassigned == token.NoPos || as.Pos() < reassigned) {
					reassigned = as.Pos()
				}
			}
		}
		return true
	})
	done := false
	ast.Inspect(branch, func(n ast.Node) bool {
		if done || (reassigned != token.NoPos && n != nil && n.Pos() >= reassigned) {
			return false
		}
		if pos, kind := derefOf(info, n, expr, exprStr, t); kind != "" {
			pass.Reportf(pos, "%s is nil on this path (see the condition above) and this %s panics", exprStr, kind)
			done = true
			return false
		}
		return true
	})
}

// derefOf reports whether n dereferences expr (matched textually) in a way
// that panics on nil for expr's type.
func derefOf(info *types.Info, n ast.Node, expr ast.Expr, exprStr string, t types.Type) (token.Pos, string) {
	switch x := n.(type) {
	case *ast.StarExpr:
		if isPointer(t) && types.ExprString(x.X) == exprStr {
			return x.Pos(), "dereference"
		}
	case *ast.SelectorExpr:
		if types.ExprString(x.X) != exprStr {
			return token.NoPos, ""
		}
		sel, ok := info.Selections[x]
		if !ok {
			return token.NoPos, ""
		}
		switch {
		case isPointer(t) && sel.Kind() == types.FieldVal:
			return x.Pos(), "field access"
		case isInterface(t) && sel.Kind() == types.MethodVal:
			return x.Pos(), "method call on a nil interface"
		}
	case *ast.IndexExpr:
		if types.ExprString(x.X) == exprStr {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				return x.Pos(), "index of a nil slice"
			}
		}
	case *ast.CallExpr:
		if _, isSig := t.Underlying().(*types.Signature); isSig && types.ExprString(x.Fun) == exprStr {
			return x.Pos(), "call of a nil function"
		}
	}
	return token.NoPos, ""
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
