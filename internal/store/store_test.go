package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// key returns a well-formed content address derived from s.
func key(s string) string {
	return Prefix + fmt.Sprintf("%x", sha256.Sum256([]byte(s)))
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	payload := []byte(`{"latency":1.25,"metrics":{"blocks":42}}`)
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get before put: %v, want ErrNotFound", err)
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip changed the payload: %q != %q", got, payload)
	}
	if s.Len() != 1 || !s.Has(k) {
		t.Errorf("index: len %d has %v, want 1 and true", s.Len(), s.Has(k))
	}
	// Overwrite replaces atomically.
	if err := s.Put(k, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(k); string(got) != "{}" {
		t.Errorf("overwrite not visible: %q", got)
	}
	if s.Len() != 1 {
		t.Errorf("overwrite grew the index to %d", s.Len())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{key("a"), key("b"), key("c")}
	for i, k := range keys {
		if err := s.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(keys[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v, want ErrClosed", err)
	}

	// Drop a stale tmp file to prove reopen clears it.
	if err := os.WriteFile(filepath.Join(dir, tmpDir, "stale-123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(keys) {
		t.Fatalf("reopened index has %d entries, want %d", s2.Len(), len(keys))
	}
	for i, k := range keys {
		got, err := s2.Get(k)
		if err != nil || string(got) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Errorf("entry %s did not survive reopen: %q, %v", k, got, err)
		}
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, tmpDir, "*")); len(stale) != 0 {
		t.Errorf("stale tmp files survived reopen: %v", stale)
	}
}

func TestDeleteRemovesEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	if err := s.Put(k, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
	if err := s.Delete(k); err != nil {
		t.Errorf("double delete must be a no-op, got %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Errorf("deleted entry resurfaced on reopen (%d indexed)", s2.Len())
	}
}

func TestBadKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"",
		"abcdef0123456789",                  // no prefix
		Prefix + "xyz",                      // not hex
		Prefix + "ABCDEF0123456789",         // uppercase
		Prefix + "ab",                       // too short to shard
		Prefix + "../../../../etc/passwd1f", // traversal attempt
	} {
		if err := s.Put(k, []byte("{}")); err == nil {
			t.Errorf("Put(%q) must reject the key", k)
		}
		if _, err := s.Get(k); err == nil {
			t.Errorf("Get(%q) must reject the key", k)
		}
	}
}

// findEntryFile returns the on-disk path of a stored key.
func findEntryFile(t *testing.T, dir, k string) string {
	t.Helper()
	hex := strings.TrimPrefix(k, Prefix)
	path := filepath.Join(dir, cellsDir, hex[:2], hex+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry file for %s missing: %v", k, err)
	}
	return path
}

func TestCorruptEntriesQuarantined(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"bit flip in payload": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Flip a digit inside the payload: still valid JSON, wrong CRC.
			i := bytes.Index(data, []byte(`"blocks":42`))
			if i < 0 {
				return errors.New("payload marker missing")
			}
			data[i+len(`"blocks":4`)] = '7'
			return os.WriteFile(path, data, 0o644)
		},
		"emptied": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := key("victim")
			if err := s.Put(k, []byte(`{"metrics":{"blocks":42}}`)); err != nil {
				t.Fatal(err)
			}
			path := findEntryFile(t, dir, k)
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("get of corrupt entry: %v, want ErrCorrupt", err)
			}
			if s.Quarantined() != 1 {
				t.Errorf("quarantined %d, want 1", s.Quarantined())
			}
			// The evidence moved aside; the address reads as a plain miss and
			// is writable again.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still servable on disk")
			}
			q, _ := filepath.Glob(filepath.Join(dir, quarantineDir, "*.json"))
			if len(q) != 1 {
				t.Errorf("quarantine holds %d files, want 1", len(q))
			}
			if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("second get: %v, want ErrNotFound", err)
			}
			if err := s.Put(k, []byte(`{"metrics":{"blocks":42}}`)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(k); err != nil {
				t.Fatalf("re-put after quarantine: %v", err)
			}
		})
	}
}

// TestMisfiledEntryNeverServed: an entry whose envelope key disagrees with
// its address (a hand-copied or renamed file) is quarantined, not served.
func TestMisfiledEntryNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := key("a"), key("b")
	if err := s.Put(ka, []byte(`{"who":"a"}`)); err != nil {
		t.Fatal(err)
	}
	// Copy a's file into b's slot.
	data, err := os.ReadFile(findEntryFile(t, dir, ka))
	if err != nil {
		t.Fatal(err)
	}
	hexB := strings.TrimPrefix(kb, Prefix)
	pathB := filepath.Join(dir, cellsDir, hexB[:2], hexB+".json")
	if err := os.MkdirAll(filepath.Dir(pathB), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathB, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(kb); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misfiled entry served: %v, want ErrCorrupt", err)
	}
	if got, err := s2.Get(ka); err != nil || string(got) != `{"who":"a"}` {
		t.Fatalf("the original entry must be unaffected: %q, %v", got, err)
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := key(fmt.Sprintf("cell-%d", i))
			payload := []byte(fmt.Sprintf(`{"i":%d}`, i))
			if err := s.Put(k, payload); err != nil {
				t.Error(err)
				return
			}
			got, err := s.Get(k)
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("cell %d: %q, %v", i, got, err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != n {
		t.Errorf("index has %d entries, want %d", s.Len(), n)
	}
}
