// Package store is the persistent disk tier under the service's cell
// cache: a content-addressed store mapping a cell fingerprint
// ("sha256:<hex>") to its result payload, laid out as
//
//	<dir>/cells/<hex[0:2]>/<hex>.json   one envelope per cell
//	<dir>/quarantine/<hex>.json         entries that failed validation
//	<dir>/tmp/                          in-flight writes (cleared on Open)
//
// plus a compact in-memory index (the key set, rebuilt by a directory
// scan on Open) so a miss never touches the disk. Writes are atomic —
// payloads land in tmp/ and are renamed into place — so a crash mid-write
// leaves either the old entry or none, never a torn file. Every entry is
// wrapped in an envelope carrying its key, payload length and CRC32;
// reads validate all three and move anything that fails into quarantine
// rather than serving it (or deleting the evidence), so one corrupt file
// costs one re-simulation, not an outage.
//
// The store holds opaque payload bytes: the service layer encodes cell
// results as JSON before Put and decodes after Get, which keeps this
// package free of simulation types and reusable for any content-addressed
// blob (the fingerprint → metrics mapping is exactly the audit-log
// triangle: content hash as the key, cheap index, bulk store).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Prefix is the accepted key prefix; keys are scenario cell fingerprints.
const Prefix = "sha256:"

// Sentinel errors. Get wraps details around them; test with errors.Is.
var (
	// ErrNotFound: the key has no entry.
	ErrNotFound = errors.New("store: not found")
	// ErrCorrupt: the entry failed validation and was quarantined.
	ErrCorrupt = errors.New("store: corrupt entry quarantined")
	// ErrClosed: the store was closed.
	ErrClosed = errors.New("store: closed")
)

// envelope is the on-disk frame around one payload. Len and CRC32 are
// validated against the raw payload bytes on every read; Key ties the
// file's content to its address so a misfiled entry can never be served.
type envelope struct {
	V    int             `json:"v"`
	Key  string          `json:"key"`
	Len  int             `json:"len"`
	CRC  uint32          `json:"crc32"`
	Cell json.RawMessage `json:"cell"`
}

const envelopeV = 1

// Store is a content-addressed on-disk payload store. Safe for concurrent
// use; create with Open.
type Store struct {
	dir string

	mu          sync.Mutex
	index       map[string]struct{}
	quarantined uint64
	closed      bool
}

// Open creates (or reopens) a store rooted at dir, building the index
// from the entries already on disk and clearing stale in-flight writes.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{cellsDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: opening %s: %w", dir, err)
		}
	}
	// A crash can strand tmp files; they are garbage by construction
	// (their rename never happened).
	stale, _ := filepath.Glob(filepath.Join(dir, tmpDir, "*"))
	for _, f := range stale {
		os.Remove(f)
	}
	s := &Store{dir: dir, index: map[string]struct{}{}}
	shards, err := os.ReadDir(filepath.Join(dir, cellsDir))
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, cellsDir, shard.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
		}
		for _, e := range entries {
			hex, ok := strings.CutSuffix(e.Name(), ".json")
			if !ok || e.IsDir() || !validHex(hex) || !strings.HasPrefix(hex, shard.Name()) {
				continue // not ours; leave it alone
			}
			s.index[Prefix+hex] = struct{}{}
		}
	}
	return s, nil
}

const (
	cellsDir      = "cells"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
)

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Quarantined returns how many corrupt entries this store has quarantined
// since Open.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Close marks the store closed; subsequent calls fail with ErrClosed.
// Writes are atomic and synchronous, so there is nothing to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// validHex reports whether hex looks like a lowercase hex digest usable as
// a file name (the shard prefix needs at least two characters).
func validHex(hex string) bool {
	if len(hex) < 8 {
		return false
	}
	for _, c := range hex {
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'f' {
			continue
		}
		return false
	}
	return true
}

// path resolves a key to its entry path, validating the key shape.
func (s *Store) path(key string) (string, string, error) {
	hex, ok := strings.CutPrefix(key, Prefix)
	if !ok || !validHex(hex) {
		return "", "", fmt.Errorf("store: key %q: want %s<lowercase hex>", key, Prefix)
	}
	return filepath.Join(s.dir, cellsDir, hex[:2], hex+".json"), hex, nil
}

// Put stores payload under key, atomically replacing any existing entry.
func (s *Store) Put(key string, payload []byte) error {
	path, hex, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	data, err := json.Marshal(envelope{
		V: envelopeV, Key: key, Len: len(payload), CRC: crc32.ChecksumIEEE(payload), Cell: payload,
	})
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), hex+"-*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, errors.Join(werr, cerr))
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	s.mu.Lock()
	s.index[key] = struct{}{}
	s.mu.Unlock()
	return nil
}

// Get returns the payload stored under key. A missing entry returns
// ErrNotFound; an entry that fails envelope, length, key or CRC validation
// is moved into quarantine/ and reported as ErrCorrupt (a later Get of the
// same key is then a plain miss).
func (s *Store) Get(key string) ([]byte, error) {
	path, hex, err := s.path(key)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := s.index[key]; !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Deleted underfoot (concurrent Delete); treat as a miss.
			s.drop(key)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: reading %s: %w", key, err)
	}
	var env envelope
	if uerr := json.Unmarshal(data, &env); uerr != nil {
		return nil, s.quarantine(key, hex, path, fmt.Sprintf("undecodable envelope: %v", uerr))
	}
	switch {
	case env.Key != key:
		return nil, s.quarantine(key, hex, path, fmt.Sprintf("entry is keyed %q", env.Key))
	case env.Len != len(env.Cell):
		return nil, s.quarantine(key, hex, path, fmt.Sprintf("payload length %d, envelope says %d", len(env.Cell), env.Len))
	case crc32.ChecksumIEEE(env.Cell) != env.CRC:
		return nil, s.quarantine(key, hex, path, "payload CRC mismatch")
	}
	return env.Cell, nil
}

// Has reports whether key is indexed (without touching the disk).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Delete removes the entry stored under key, if any.
func (s *Store) Delete(key string) error {
	path, _, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	delete(s.index, key)
	s.mu.Unlock()
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting %s: %w", key, err)
	}
	return nil
}

// drop forgets an index entry.
func (s *Store) drop(key string) {
	s.mu.Lock()
	delete(s.index, key)
	s.mu.Unlock()
}

// quarantine moves a failed entry aside — preserving the evidence — and
// drops it from the index, returning the ErrCorrupt to surface.
func (s *Store) quarantine(key, hex, path, detail string) error {
	s.mu.Lock()
	if _, ok := s.index[key]; ok {
		delete(s.index, key)
		s.quarantined++
		if err := os.Rename(path, filepath.Join(s.dir, quarantineDir, hex+".json")); err != nil {
			// Removal is second-best: never leave a corrupt entry servable.
			os.Remove(path)
		}
	}
	s.mu.Unlock()
	return fmt.Errorf("%w: %s: %s", ErrCorrupt, key, detail)
}
