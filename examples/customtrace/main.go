// Customtrace: build a REACT deployment for your own harvester.
//
// This example shows the workflow a downstream user follows:
//
//  1. construct (or load) a harvested-power trace — here a synthetic
//     thermal-gradient harvester that cycles with machine duty, exported
//     and re-imported through the CSV codec to show the round trip;
//  2. size a custom REACT bank configuration for the platform, checking
//     every bank against the paper's Equation 2 sizing bound;
//  3. run the simulation through a realistic converter model and read the
//     energy ledger.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"react"
)

func main() {
	// 1. A machine-room thermal harvester: ~40 min, power swings with the
	// machine's 90 s duty cycle plus slow drift.
	tr := &react.Trace{Name: "thermal harvester", DT: 1, Power: make([]float64, 2400)}
	for i := range tr.Power {
		t := float64(i)
		duty := 0.0
		if math.Mod(t, 90) < 35 { // machine on 35 s of every 90 s
			duty = 1
		}
		drift := 0.75 + 0.25*math.Sin(2*math.Pi*t/2400)
		tr.Power[i] = (0.15e-3 + 3.2e-3*duty) * drift
	}

	// Round-trip through the CSV codec, as you would with a real recording.
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := react.ReadTraceCSV(tr.Name, &buf)
	if err != nil {
		log.Fatal(err)
	}
	s := loaded.Stats()
	fmt.Printf("trace: %s — %.0f s, mean %.2f mW, CV %.0f%%\n\n", tr.Name, s.Duration, s.Mean*1e3, s.CV*100)

	// 2. A custom REACT sizing: smaller LLB for a lower-power platform,
	// three banks. Validate each bank against Equation 2.
	cfg := react.DefaultConfig()
	cfg.LLB.C = 470e-6
	cfg.LLB.Name = "custom LLB"
	cfg.Banks = []react.BankSpec{
		{N: 3, UnitC: 330e-6, LeakI: 0.3e-6, VRated: 6.3},
		{N: 3, UnitC: 680e-6, LeakI: 0.5e-6, VRated: 6.3},
		{N: 2, UnitC: 2.2e-3, LeakI: 0.2e-6, VRated: 5.5},
	}
	fmt.Println("bank sizing check against Equation 2:")
	for i, b := range cfg.Banks {
		limit := react.MaxUnitCapacitance(b.N, cfg.LLB.C, cfg.VLow, cfg.VHigh)
		spike := react.VoltageAfterReclaim(b.N, b.UnitC, cfg.LLB.C, cfg.VLow)
		status := "ok"
		if b.UnitC >= limit {
			status = "TOO LARGE"
		}
		fmt.Printf("  bank %d: %4.0f µF ×%d  reclaim spike %.2f V  (limit %.0f µF) %s\n",
			i+1, b.UnitC*1e6, b.N, spike, limit*1e6, status)
	}
	fmt.Printf("capacitance range: %.0f µF – %.2f mF\n\n", cfg.LLB.C*1e6, cfg.MaxCapacitance()*1e3)

	// 3. Run through a boost-converter model (the trace is raw harvester
	// output here, not pre-converted replay power).
	prof := react.DefaultProfile()
	dev := react.NewDevice(prof, react.NewSenseCompute(prof.SleepI))
	res, err := react.Run(react.SimConfig{
		Frontend: react.NewFrontend(loaded, react.SolarBoostConverter()),
		Buffer:   react.NewREACT(cfg),
		Device:   dev,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("latency   %.1f s\n", res.Latency)
	fmt.Printf("duty      %.0f%%\n", res.OnFraction()*100)
	fmt.Printf("samples   %.0f (missed %.0f)\n", res.Metrics["samples"], res.Metrics["missed"])
	l := res.Ledger
	fmt.Printf("ledger    harvested %.1f mJ = consumed %.1f + clipped %.1f + leaked %.1f + switching %.1f + overhead %.1f + residual %.1f\n",
		l.Harvested*1e3, l.Consumed*1e3, l.Clipped*1e3, l.Leaked*1e3, l.SwitchLoss*1e3, l.Overhead*1e3, res.Stored*1e3)
	fmt.Printf("balance   %.2e relative error\n", res.EnergyBalanceError())
}
