// Quickstart: simulate a batteryless device on a bursty RF power trace,
// once with a conventional fixed 770 µF buffer capacitor and once with a
// REACT adaptive buffer, and compare what the device got done.
package main

import (
	"fmt"
	"log"

	"react"
)

func main() {
	tr := react.RFCart(1) // bursty office RF trace (313 s, 2.12 mW mean)

	run := func(buf react.Buffer) react.Result {
		dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(tr, nil),
			Buffer:   buf,
			Device:   dev,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	static := run(react.NewStatic(react.StaticConfig{
		Name: "770 µF static", C: 770e-6, VMax: 3.6, LeakI: 0.77e-6, VRated: 6.3,
	}))
	adaptive := run(react.NewREACT(react.DefaultConfig()))

	fmt.Printf("trace: %s (%.0f s, mean %.2f mW)\n\n", tr.Name, tr.Duration(), tr.Stats().Mean*1e3)
	for _, r := range []react.Result{static, adaptive} {
		fmt.Printf("%-14s latency %5.1f s   on-time %5.1f s   AES blocks %5.0f   clipped %5.1f mJ\n",
			r.Buffer, r.Latency, r.OnTime, r.Metrics["blocks"], r.Ledger.Clipped*1e3)
	}
	gain := adaptive.Metrics["blocks"]/static.Metrics["blocks"] - 1
	fmt.Printf("\nREACT did %.0f%% more work: it starts as fast as the small buffer\n", gain*100)
	fmt.Println("but expands its capacitor banks during power bursts instead of clipping.")
}
