// Solarsense: a periodic environmental sensor on harvested solar power.
//
// The device sleeps with its microphone powered and wakes every five
// seconds to sample and filter a reading — the paper's Sense-and-Compute
// workload. Solar power on a walking route is brutally bursty: long shaded
// stretches below the sleep floor, short sunny bursts far above it. The
// example sweeps the classic design space (one fixed buffer size per run)
// and then shows what the adaptive buffer does to the tradeoff.
package main

import (
	"fmt"
	"log"

	"react"
)

func main() {
	tr := react.SolarCampus(1)
	s := tr.Stats()
	fmt.Printf("trace: %s — %.0f s, mean %.2f mW, CV %.0f%%, peak %.1f mW\n\n",
		tr.Name, s.Duration, s.Mean*1e3, s.CV*100, s.Peak*1e3)
	fmt.Printf("%-14s %9s %9s %9s %9s %9s\n",
		"buffer", "latency", "duty", "samples", "missed", "clipped")

	deadlines := s.Duration / 5 // one sensing deadline every 5 s

	for _, c := range []float64{470e-6, 1e-3, 4.7e-3, 10e-3, 22e-3} {
		res := run(tr, react.NewStatic(react.StaticConfig{
			Name: fmt.Sprintf("%g mF static", c*1e3), C: c, VMax: 3.6,
			LeakI: c * 1e-3, VRated: 6.3,
		}))
		report(res, deadlines)
	}
	res := run(tr, react.NewREACT(react.DefaultConfig()))
	report(res, deadlines)

	fmt.Println("\nSmall buffers wake quickly but discard burst energy as heat;")
	fmt.Println("large ones capture the bursts but sleep through the morning.")
	fmt.Println("REACT starts like the smallest and stores like the largest.")
}

func run(tr *react.Trace, buf react.Buffer) react.Result {
	prof := react.DefaultProfile()
	dev := react.NewDevice(prof, react.NewSenseCompute(prof.SleepI))
	res, err := react.Run(react.SimConfig{
		Frontend: react.NewFrontend(tr, nil),
		Buffer:   buf,
		Device:   dev,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func report(r react.Result, deadlines float64) {
	latency := "never"
	if r.Latency >= 0 {
		latency = fmt.Sprintf("%.0f s", r.Latency)
	}
	fmt.Printf("%-14s %9s %8.0f%% %6.0f/%.0f %9.0f %7.1f mJ\n",
		r.Buffer, latency, r.OnFraction()*100,
		r.Metrics["samples"], deadlines, r.Metrics["missed"], r.Ledger.Clipped*1e3)
}
