// Packetforward: the paper's hardest workload — receive unpredictable
// radio packets (a reactivity problem) and retransmit them (a persistence
// problem) from harvested RF power.
//
// The example contrasts three strategies on the same trace and arrival
// schedule:
//
//   - a small static buffer, which catches packets but wastes its energy
//     on doomed transmissions it can never finish;
//   - a large static buffer, which transmits comfortably but sleeps
//     through the first minutes (and the packets that arrive then);
//   - REACT, whose software waits for a capacitance level that guarantees
//     the transmission energy (§3.4.1) and otherwise stays listening.
//
// It also prints the REACT level ladder so the guarantee is visible.
package main

import (
	"fmt"
	"log"

	"react"
)

func main() {
	const (
		seed             = 1
		meanInterarrival = 6.0 // seconds between packets on average
	)
	tr := react.RFCart(seed)

	// Show the level ladder: what energy each REACT capacitance level
	// guarantees, and which level a 5 mJ transmission needs.
	rb := react.NewREACT(react.DefaultConfig())
	fmt.Println("REACT capacitance levels and their energy guarantees:")
	for lvl := 0; lvl <= rb.MaxLevel(); lvl++ {
		fmt.Printf("  level %2d: %6.2f mJ\n", lvl, rb.GuaranteedEnergy(lvl)*1e3)
	}
	const txEnergy = 4.95e-3 * 1.4 // transmission cost with safety margin
	if lvl, ok := react.LevelFor(rb, txEnergy); ok {
		fmt.Printf("a %.1f mJ transmission needs level %d\n\n", txEnergy*1e3, lvl)
	}

	fmt.Printf("%-14s %8s %8s %8s %8s %10s\n", "buffer", "rx", "tx", "missed", "txFailed", "wastedTX")
	buffers := []react.Buffer{
		react.NewStatic(react.StaticConfig{Name: "770 µF static", C: 770e-6, VMax: 3.6, LeakI: 0.77e-6, VRated: 6.3}),
		react.NewStatic(react.StaticConfig{Name: "17 mF static", C: 17e-3, VMax: 3.6, LeakI: 17e-6, VRated: 6.3}),
		react.NewREACT(react.DefaultConfig()),
	}
	for _, buf := range buffers {
		prof := react.DefaultProfile()
		wl := react.NewPacketForward(prof.SleepI, seed, tr.Duration()+120, meanInterarrival)
		dev := react.NewDevice(prof, wl)
		res, err := react.Run(react.SimConfig{
			Frontend: react.NewFrontend(tr, nil),
			Buffer:   buf,
			Device:   dev,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-14s %8.0f %8.0f %8.0f %8.0f %8.1f mJ\n",
			res.Buffer, m["rx"], m["tx"], m["missed"], m["tx_failed"],
			m["tx_failed"]*4.95)
	}
	fmt.Println("\nThe small buffer browns out mid-transmission, every time; the big")
	fmt.Println("one misses early arrivals. REACT listens early AND transmits safely.")
}
