package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// set builds the explicit-flag set the CLI derives from flag.Visit.
func set(flags ...string) map[string]bool {
	m := map[string]bool{}
	for _, f := range flags {
		m[f] = true
	}
	return m
}

// TestCheckModeConflicts pins the satellite fix: conflicting mode flags
// are an error (exit 2 in main), never a silent precedence.
func TestCheckModeConflicts(t *testing.T) {
	bad := map[string]map[string]bool{
		"scenario with explore":       set("scenario", "explore"),
		"scenario with scenario-file": set("scenario", "scenario-file"),
		"list with scenario":          set("list", "scenario"),
		"list with explore":           set("list", "explore"),
		"explore with scenario-file":  set("explore", "scenario-file"),
		"all four modes":              set("list", "scenario", "scenario-file", "explore"),
		"target without explore":      set("target", "scenario"),
		"seed with seeds":             set("seed", "seeds"),
		"seeds with scenario-file":    set("seeds", "scenario-file"),
		"seeds with scenario":         set("seeds", "scenario"),
		"seeds with explore":          set("seeds", "explore"),
		"remote seeds with explore":   set("remote", "seeds", "explore"),
		"remote with list":            set("remote", "list"),
	}
	for label, explicit := range bad {
		if err := checkModeConflicts(explicit); err == nil {
			t.Errorf("%s: must be rejected", label)
		}
	}
	good := map[string]map[string]bool{
		"bare run":             set("trace", "buffer", "seed"),
		"single-cell sweep":    set("seeds", "buffer"),
		"scenario":             set("scenario", "seed", "workers", "json"),
		"scenario file":        set("scenario-file", "json"),
		"explore":              set("explore", "target", "workers", "json"),
		"list":                 set("list"),
		"remote seed sweep":    set("remote", "scenario", "seeds"),
		"remote scenario-file": set("remote", "scenario-file", "seeds"),
		"remote exploration":   set("remote", "explore", "target"),
		"nothing explicit":     set(),
	}
	for label, explicit := range good {
		if err := checkModeConflicts(explicit); err != nil {
			t.Errorf("%s: spuriously rejected: %v", label, err)
		}
	}
}

func TestParseTarget(t *testing.T) {
	tgt, err := parseTarget("latency<=0.5")
	if err != nil || tgt.Metric != "latency" || tgt.Max == nil || *tgt.Max != 0.5 || tgt.Min != nil {
		t.Fatalf("ceiling parse wrong: %+v, %v", tgt, err)
	}
	tgt, err = parseTarget("blocks>=100")
	if err != nil || tgt.Metric != "blocks" || tgt.Min == nil || *tgt.Min != 100 {
		t.Fatalf("floor parse wrong: %+v, %v", tgt, err)
	}
	// Bare "=" is ceiling shorthand.
	tgt, err = parseTarget("dead_time=0.1")
	if err != nil || tgt.Max == nil || *tgt.Max != 0.1 {
		t.Fatalf("shorthand parse wrong: %+v, %v", tgt, err)
	}
	for _, bad := range []string{"latency", "<=5", "latency<=x", ""} {
		if _, err := parseTarget(bad); err == nil {
			t.Errorf("%q: must be rejected", bad)
		}
	}
}

// TestRunExploreSmoke is the -explore short-mode smoke: a tiny grid space
// runs end to end from a file through the local evaluator, in both human
// and JSON form, and a bisection via -target finds a design.
func TestRunExploreSmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "space.json")
	space := `{
		"spec": {
			"name": "cli-smoke",
			"trace": {"gen": "steady", "mean": 0.01, "duration": 20},
			"workload": {"bench": "DE"},
			"buffers": [{"preset": "REACT"}]
		},
		"static": {"from": 500e-6, "to": 5e-3, "points": 3},
		"presets": ["REACT"],
		"pareto": [{"x": "c", "y": "latency"}]
	}`
	if err := os.WriteFile(path, []byte(space), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExplore(path, "", "", 2, false); err != nil {
		t.Fatalf("grid exploration failed: %v", err)
	}
	if err := runExplore(path, "", "", 2, true); err != nil {
		t.Fatalf("JSON exploration failed: %v", err)
	}
	// -target implies bisection when the space names no strategy; duty on
	// a steady trace is high everywhere, so the floor is met immediately.
	if err := runExplore(path, "duty>=0.1", "", 1, false); err == nil {
		t.Fatal("bisection over a space with presets must be rejected")
	}
	bisect := strings.Replace(space, `"presets": ["REACT"],`, "", 1)
	path2 := filepath.Join(dir, "bisect.json")
	if err := os.WriteFile(path2, []byte(bisect), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExplore(path2, "duty>=0.1", "", 1, false); err != nil {
		t.Fatalf("bisection exploration failed: %v", err)
	}
	// A malformed space file is a load-time error, not a panic.
	if err := runExplore(filepath.Join(dir, "missing.json"), "", "", 1, false); err == nil {
		t.Fatal("missing space file must error")
	}
}
