// Command reactsim runs one simulation cell: a power trace driving an
// energy buffer powering a benchmark workload, and reports the outcome.
//
// Usage:
//
//	reactsim [-trace name|-tracefile f.csv] [-buffer name] [-bench name]
//	         [-seed n] [-dt s] [-record file.csv] [-v]
//
// Buffers: "770 µF", "10 mF", "17 mF", "Morphy", "REACT", plus the
// related-work extensions "Capybara" and "Dewdrop".
// Benchmarks: DE, SC, RT, PF.
// Traces: cart, obstructed, mobile, campus, commute, pedestrian, night.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"react/internal/experiments"
	"react/internal/trace"
)

func namedTrace(name string, seed uint64) (*trace.Trace, error) {
	switch name {
	case "cart":
		return trace.RFCart(seed), nil
	case "obstructed":
		return trace.RFObstructed(seed), nil
	case "mobile":
		return trace.RFMobile(seed), nil
	case "campus":
		return trace.SolarCampus(seed), nil
	case "commute":
		return trace.SolarCommute(seed), nil
	case "pedestrian":
		return trace.Fig1Pedestrian(seed), nil
	case "night":
		return trace.Night(seed), nil
	}
	return nil, fmt.Errorf("unknown trace %q (want cart, obstructed, mobile, campus, commute, pedestrian, night)", name)
}

func main() {
	var (
		traceName = flag.String("trace", "cart", "built-in trace name")
		traceFile = flag.String("tracefile", "", "CSV trace file (overrides -trace)")
		bufName   = flag.String("buffer", "REACT", `buffer design ("770 µF", "10 mF", "17 mF", "Morphy", "REACT", "Capybara", "Dewdrop")`)
		bench     = flag.String("bench", "DE", "benchmark (DE, SC, RT, PF)")
		seed      = flag.Uint64("seed", 1, "trace/event seed")
		dt        = flag.Float64("dt", 1e-3, "integration timestep (s)")
		record    = flag.String("record", "", "write a voltage/state CSV recording to this file")
		verbose   = flag.Bool("v", false, "print the full energy ledger")
	)
	flag.Parse()

	tr, err := loadTrace(*traceName, *traceFile, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactsim:", err)
		os.Exit(1)
	}

	opt := experiments.Options{Seed: *seed, DT: *dt}
	if *record != "" {
		opt.RecordDT = 0.5
	}
	res, err := experiments.RunCell(tr, *bufName, *bench, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactsim:", err)
		os.Exit(1)
	}

	s := tr.Stats()
	fmt.Printf("trace    %s (%.0f s, %.3g mW mean, CV %.0f%%)\n", tr.Name, s.Duration, s.Mean*1e3, s.CV*100)
	fmt.Printf("buffer   %s\n", res.Buffer)
	fmt.Printf("bench    %s\n", res.Workload)
	if res.Latency < 0 {
		fmt.Printf("latency  never started\n")
	} else {
		fmt.Printf("latency  %.2f s\n", res.Latency)
	}
	fmt.Printf("on-time  %.1f s of %.1f s (%.1f%% duty)\n", res.OnTime, res.Duration, res.OnFraction()*100)
	fmt.Printf("cycles   %d (mean %.1f s)\n", res.Cycles, res.MeanCycle)
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("metric   %-10s %.0f\n", k, res.Metrics[k])
	}
	if *verbose {
		l := res.Ledger
		fmt.Printf("ledger   harvested %.4f J\n", l.Harvested)
		fmt.Printf("ledger   consumed  %.4f J\n", l.Consumed)
		fmt.Printf("ledger   clipped   %.4f J\n", l.Clipped)
		fmt.Printf("ledger   leaked    %.4f J\n", l.Leaked)
		fmt.Printf("ledger   switching %.4f J\n", l.SwitchLoss)
		fmt.Printf("ledger   overhead  %.4f J\n", l.Overhead)
		fmt.Printf("ledger   residual  %.4f J\n", res.Stored)
		fmt.Printf("ledger   balance error %.2e\n", res.EnergyBalanceError())
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteSeriesCSV(f, res.Buffer, res.Samples); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d samples to %s\n", len(res.Samples), *record)
	}
}

func loadTrace(name, file string, seed uint64) (*trace.Trace, error) {
	if file == "" {
		return namedTrace(name, seed)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(file, f)
}
